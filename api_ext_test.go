package corral_test

import (
	"sort"
	"testing"

	"corral"
)

func TestReplanViaAPI(t *testing.T) {
	cluster := smallCluster()
	wave1 := smallWorkload(41)
	plan1, err := corral.PlanOnline(cluster, wave1)
	if err != nil {
		t.Fatal(err)
	}
	// Second wave arrives at t=100; racks of still-running wave-1 jobs are
	// committed.
	wave2 := smallWorkload(42)
	for i, j := range wave2 {
		j.ID = len(wave1) + 1 + i
		j.Arrival = 100
	}
	// Sorted by job ID: Assignments is a map, and the commitment order
	// fed to Replan must not depend on its random iteration order.
	ids := make([]int, 0, len(plan1.Assignments))
	for id := range plan1.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var commitments []corral.Commitment
	for _, id := range ids {
		if a := plan1.Assignments[id]; a.End() > 100 {
			commitments = append(commitments, corral.Commitment{Racks: a.Racks, Until: a.End()})
		}
	}
	plan2, err := corral.Replan(cluster, wave2, 100, commitments)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan2.Assignments {
		if a.Start < 100 {
			t.Fatalf("replanned job %d starts at %g before now", a.JobID, a.Start)
		}
	}
	merged := corral.MergePlans(plan1, plan2)
	if len(merged.Assignments) != len(wave1)+len(wave2) {
		t.Fatalf("merged plan covers %d jobs, want %d",
			len(merged.Assignments), len(wave1)+len(wave2))
	}
	// The merged plan drives a real simulation of both waves.
	res, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: merged, Seed: 41,
	}, append(corral.CloneJobs(wave1), wave2...))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("merged-plan simulation went nowhere")
	}
}

func TestFailureInjectionViaAPI(t *testing.T) {
	cluster := smallCluster()
	jobs := smallWorkload(43)
	res, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 43,
		Failures: []corral.Failure{{At: 1, Machine: 0}, {At: 2, Machine: 5}},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Jobs {
		if res.Jobs[i].CompletionTime <= 0 {
			t.Fatalf("job %d lost to failures", res.Jobs[i].ID)
		}
	}
}

func TestStragglersAndSpeculationViaAPI(t *testing.T) {
	cluster := smallCluster()
	base := corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 44,
		StragglerFraction: 0.3, StragglerSlowdown: 15,
	}
	slow, err := corral.Simulate(base, smallWorkload(44))
	if err != nil {
		t.Fatal(err)
	}
	spec := base
	spec.Speculation = true
	fast, err := corral.Simulate(spec, smallWorkload(44))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= slow.Makespan {
		t.Fatalf("speculation did not help: %g vs %g", fast.Makespan, slow.Makespan)
	}
}

func TestRemoteStorageViaAPI(t *testing.T) {
	cluster := smallCluster()
	cluster.RemoteStorageBandwidth = 4e9
	res, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 45,
		RemoteStorageInput: true,
	}, smallWorkload(45))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("remote-storage simulation went nowhere")
	}
}

func TestInMemoryViaAPI(t *testing.T) {
	cluster := smallCluster()
	jobs := smallWorkload(46)
	plain, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 46,
	}, corral.CloneJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 46,
		InMemoryInput: true,
	}, corral.CloneJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	// No replicated writes -> strictly less network traffic.
	if mem.CrossRackBytes >= plain.CrossRackBytes {
		t.Fatalf("in-memory cross-rack %g >= plain %g", mem.CrossRackBytes, plain.CrossRackBytes)
	}
}
