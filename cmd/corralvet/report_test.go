package main

import (
	"go/token"
	"testing"

	"corral/internal/analysis"
)

// The -json / -report document is a CI artifact: its bytes must be a
// pure function of the findings, with no null-vs-empty drift between a
// clean and a dirty tree.

func TestReportGoldenClean(t *testing.T) {
	rep := buildReport([]*analysis.Analyzer{analysis.MapOrder, analysis.SweepSafe}, 3, nil)
	b, err := rep.marshal()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "version": 2,
  "checks": [
    "maporder",
    "sweepsafe"
  ],
  "packages": 3,
  "count": 0,
  "findings": []
}
`
	if string(b) != want {
		t.Errorf("clean report drifted:\n got: %s\nwant: %s", b, want)
	}
}

func TestReportGoldenWithFindings(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:     token.Position{Filename: "a.go", Line: 3, Column: 7},
			Check:   "sweepsafe",
			Message: "non-slot write to sum captured by a parallelFor closure",
			Related: []analysis.Related{{
				Pos:     token.Position{Filename: "a.go", Line: 1, Column: 9},
				Message: "closure passed to parallelFor here",
			}},
			Fix: "write only slots[i]",
		},
		{
			// No related/fix: the omitempty fields must vanish, not nullify.
			Pos:     token.Position{Filename: "b.go", Line: 10, Column: 2},
			Check:   "wallclock",
			Message: "time.Now in a simulation package",
		},
	}
	rep := buildReport([]*analysis.Analyzer{analysis.SweepSafe}, 1, diags)
	b, err := rep.marshal()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "version": 2,
  "checks": [
    "sweepsafe"
  ],
  "packages": 1,
  "count": 2,
  "findings": [
    {
      "file": "a.go",
      "line": 3,
      "col": 7,
      "check": "sweepsafe",
      "message": "non-slot write to sum captured by a parallelFor closure",
      "related": [
        {
          "file": "a.go",
          "line": 1,
          "col": 9,
          "message": "closure passed to parallelFor here"
        }
      ],
      "fix": "write only slots[i]"
    },
    {
      "file": "b.go",
      "line": 10,
      "col": 2,
      "check": "wallclock",
      "message": "time.Now in a simulation package"
    }
  ]
}
`
	if string(b) != want {
		t.Errorf("report drifted:\n got: %s\nwant: %s", b, want)
	}
}

func TestReportMarshalIsDeterministic(t *testing.T) {
	rep := buildReport(analysis.Analyzers(), 12, []analysis.Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 1, Column: 1}, Check: "floateq", Message: "m"},
	})
	first, err := rep.marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := rep.marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("marshal %d differs from first:\n%s\nvs\n%s", i, again, first)
		}
	}
	if first[len(first)-1] != '\n' {
		t.Error("report must end with a newline for clean artifact diffs")
	}
}
