// Command corralvet runs the corral determinism & simulation-safety
// analyzer suite (internal/analysis) over the given package patterns.
//
// Usage:
//
//	go run ./cmd/corralvet ./...
//	go run ./cmd/corralvet -c maporder,floateq ./internal/netsim
//	go run ./cmd/corralvet -tests ./...
//	go run ./cmd/corralvet -list
//
// Exit status: 0 if clean, 1 if any diagnostic was reported, 2 on load
// or usage errors. Findings print one per line as
//
//	file:line:col: [check] message
//
// and intentional findings are suppressed in the source with a
// //corralvet:ok <check> <reason> comment on the flagged line or the
// line directly above (see DESIGN.md, "Determinism contract").
package main

import (
	"flag"
	"fmt"
	"os"

	"corral/internal/analysis"
)

func main() {
	checks := flag.String("c", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: corralvet [-c checks] [-tests] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corralvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corralvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "corralvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
