// Command corralvet runs the corral contract-analyzer suite
// (internal/analysis) over the given package patterns: the five
// determinism checks from v1 (maporder, wallclock, seedrand, floateq,
// ctxtime), the v2 concurrency/allocation contract checks (sweepsafe,
// hotalloc, tracearg) and the suppression-inventory audit
// (suppressstale).
//
// Usage:
//
//	go run ./cmd/corralvet ./...
//	go run ./cmd/corralvet -checks maporder,floateq ./internal/netsim
//	go run ./cmd/corralvet -skip suppressstale ./internal/...
//	go run ./cmd/corralvet -tests ./...
//	go run ./cmd/corralvet -json ./...              # machine-readable findings on stdout
//	go run ./cmd/corralvet -report corralvet.json ./...  # human text + JSON artifact
//	go run ./cmd/corralvet -v ./...                 # per-check timing on stderr
//	go run ./cmd/corralvet -list
//
// Exit status distinguishes the failure mode so CI can attribute it:
// 0 the tree is clean, 1 at least one finding was reported, 2 the
// command could not run at all (usage, load or parse/type error).
// Findings print one per line as
//
//	file:line:col: [check] message
//
// (with related positions and a suggested fix indented below, when the
// analyzer provides them), and intentional findings are suppressed in
// the source with a //corralvet:ok <check> <reason> comment on the
// flagged line or the line directly above (see DESIGN.md, "Determinism
// contract" and "Static contracts").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"corral/internal/analysis"
)

func main() {
	var checks, skip string
	flag.StringVar(&checks, "c", "", "comma-separated subset of checks to run (default: all)")
	flag.StringVar(&checks, "checks", "", "alias of -c")
	flag.StringVar(&skip, "skip", "", "comma-separated checks to exclude from the selection")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "write the findings as JSON to stdout instead of text")
	reportFile := flag.String("report", "", "also write the JSON findings report to this file (CI artifact)")
	verbose := flag.Bool("v", false, "print per-check timing to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: corralvet [-checks list] [-skip list] [-tests] [-json] [-report file] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	analyzers, err := analysis.Select(checks, skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corralvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corralvet:", err)
		os.Exit(2)
	}
	var clock func() time.Time
	if *verbose {
		clock = time.Now
	}
	diags, timings := analysis.RunAnalyzersTimed(pkgs, analyzers, clock)
	if *verbose {
		// Suite order, so a CI failure is attributable to a specific
		// analyzer at a glance.
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "corralvet: %-13s %v\n", a.Name, timings[a.Name].Round(time.Microsecond))
		}
	}

	rep := buildReport(analyzers, len(pkgs), diags)
	if *reportFile != "" {
		b, err := rep.marshal()
		if err == nil {
			err = os.WriteFile(*reportFile, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "corralvet: writing report:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		b, err := rep.marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "corralvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "corralvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
