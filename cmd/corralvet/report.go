package main

// Machine-readable corralvet output for CI annotation and artifact
// upload. The schema is stable and the findings arrive pre-sorted in
// (file, line, col, check) order from analysis.RunAnalyzers, so two runs
// over the same tree produce byte-identical JSON — the same property the
// analyzers themselves enforce on the simulator.

import (
	"encoding/json"

	"corral/internal/analysis"
)

// reportVersion bumps when the JSON schema changes incompatibly.
const reportVersion = 2

// Report is the top-level -json / -report document.
type Report struct {
	Version  int           `json:"version"`
	Checks   []string      `json:"checks"`   // analyzers that ran, in suite order
	Packages int           `json:"packages"` // packages analyzed
	Count    int           `json:"count"`    // len(findings)
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Col     int           `json:"col"`
	Check   string        `json:"check"`
	Message string        `json:"message"`
	Related []jsonRelated `json:"related,omitempty"`
	Fix     string        `json:"fix,omitempty"`
}

type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// buildReport assembles the JSON document from a finished run.
func buildReport(analyzers []*analysis.Analyzer, packages int, diags []analysis.Diagnostic) Report {
	rep := Report{
		Version:  reportVersion,
		Checks:   []string{},
		Packages: packages,
		Count:    len(diags),
		Findings: []jsonFinding{}, // [] not null when clean
	}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, a.Name)
	}
	for _, d := range diags {
		f := jsonFinding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
			Fix:     d.Fix,
		}
		for _, r := range d.Related {
			f.Related = append(f.Related, jsonRelated{
				File: r.Pos.Filename, Line: r.Pos.Line, Col: r.Pos.Column, Message: r.Message,
			})
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

// marshal renders the report with a trailing newline, ready for a file
// or stdout.
func (r Report) marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
