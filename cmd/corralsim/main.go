// Command corralsim regenerates the paper's tables and figures.
//
// Usage:
//
//	corralsim -list
//	corralsim -exp fig6 -size m -seed 1
//	corralsim -exp all -size s
//
// Sizes: s (toy, seconds), m (default, scaled 7-rack cluster), l (closest
// to the paper's job counts; minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"corral"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID (see -list), or \"all\"")
		size   = flag.String("size", "m", "experiment scale: s, m or l")
		seed   = flag.Int64("seed", 1, "random seed")
		list   = flag.Bool("list", false, "list available experiments")
		asJSON = flag.Bool("json", false, "emit key outcome values as JSON")
		chaosI = flag.String("chaos-intensities", "",
			"comma-separated fault intensities for the chaos sweep (implies -exp chaos)")
		fuzzTraces = flag.Int("fuzz-traces", 0,
			"trace count for the corralcheck fuzzer (implies -exp fuzz; 0 = bundled default)")
		arrivalRates = flag.String("arrival-rates", "",
			"comma-separated arrival-rate multipliers for the overload sweep (implies -exp overload)")
		plannerBudget = flag.Float64("planner-budget", 0,
			"planner deadline budget in simulated seconds for the overload sweep (0 = bundled default)")
		replanWindow = flag.Float64("replan-window", 0,
			"replan-storm suppression window in simulated seconds for the overload sweep (0 = bundled default)")
		admissionLimit = flag.Int("admission-limit", 0,
			"max concurrently admitted jobs for the overload sweep (0 = bundled default)")
		machinesList = flag.String("machines", "",
			"comma-separated machine counts for the datacenter-scale suite, e.g. 2000,10000 (implies -exp scale; empty = the size's ladder)")
		workers = flag.Int("workers", 0,
			"worker pool bound for parallel experiment sweeps (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
		tracePath = flag.String("trace", "",
			"write a deterministic simulation-time event trace to this file (.jsonl = flat JSONL; any other extension = Chrome trace-event JSON, loadable in Perfetto)")
		snapshotAt = flag.String("snapshot-at", "",
			"capture the crash-resume scenario run at this point (\"ev:N\" = after N events, \"t:SECONDS\" = at simulated time, bare N = ev:N) and write the snapshot to -snapshot-out")
		snapshotOut = flag.String("snapshot-out", "",
			"snapshot output file for -snapshot-at (default snapshot.json)")
		resumePath = flag.String("resume", "",
			"resume a snapshot file written by -snapshot-at: restore, audit, run to completion and print the outcome")
	)
	flag.Parse()
	ov := overloadFlags{
		arrivalRates:   *arrivalRates,
		plannerBudget:  *plannerBudget,
		replanWindow:   *replanWindow,
		admissionLimit: *admissionLimit,
	}
	if err := validateFlagCombos(*exp, *snapshotAt, *snapshotOut, *resumePath, *machinesList, ov); err != nil {
		fmt.Fprintln(os.Stderr, "corralsim:", err)
		flag.Usage()
		os.Exit(2)
	}
	corral.SetSweepWorkers(*workers)

	var collector *corral.TraceCollector
	if *tracePath != "" {
		collector = corral.NewTraceCollector()
		corral.InstallTraceCollector(collector)
	}
	// writeTrace flushes the collected trace; idempotent so error paths can
	// flush before exiting without double-writing on the deferred call.
	writeTrace := func() {
		if collector == nil {
			return
		}
		c := collector
		collector = nil
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*tracePath, ".jsonl") {
			err = c.WriteJSONL(f)
		} else {
			err = c.WriteChrome(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("writing trace %s: %v", *tracePath, err))
		}
	}
	defer writeTrace()

	if *snapshotAt != "" {
		target, err := parseTarget(*snapshotAt)
		if err != nil {
			fatal(err)
		}
		sz, err := parseSize(*size)
		if err != nil {
			fatal(err)
		}
		snap, err := corral.CaptureScenarioSnapshot(sz, *seed, target)
		if err != nil {
			fatal(err)
		}
		raw, err := corral.EncodeSnapshot(snap)
		if err != nil {
			fatal(err)
		}
		out := *snapshotOut
		if out == "" {
			out = "snapshot.json"
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: seed %d captured at event %d (t=%.3f s, %d bytes)\n",
			out, snap.Meta.Seed, snap.Meta.EventIndex, snap.Meta.SimTime, len(raw))
		return
	}

	if *resumePath != "" {
		raw, err := os.ReadFile(*resumePath)
		if err != nil {
			fatal(err)
		}
		snap, err := corral.DecodeSnapshot(raw)
		if err != nil {
			fatal(err)
		}
		mon := corral.NewInvariantMonitor(snap.Spec.Topology)
		res, err := corral.ResumeSnapshot(snap, corral.ResumeOptions{Probe: mon})
		if err != nil {
			fatal(err)
		}
		writeTrace()
		fmt.Printf("resumed %s from event %d (t=%.3f s): makespan %.3f s, %d events, %d jobs (%d failed), %d replans\n",
			*resumePath, snap.Meta.EventIndex, snap.Meta.SimTime,
			res.Makespan, res.Events, len(res.Jobs), res.FailedJobs, res.Replans)
		if n := mon.ViolationCount(); n != 0 {
			fatal(fmt.Errorf("resumed run raised %d invariant violations: %v", n, mon.Violations()))
		}
		return
	}

	if *fuzzTraces > 0 || *exp == "fuzz" {
		sz, err := parseSize(*size)
		if err != nil {
			fatal(err)
		}
		report, err := corral.RunFuzzExperiment(sz, *seed, *fuzzTraces)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(map[string]map[string]float64{"fuzz": report.Values})
			return
		}
		fmt.Println(report)
		if report.Values["violations"] != 0 {
			writeTrace()
			fatal(fmt.Errorf("%g invariant violations", report.Values["violations"]))
		}
		return
	}

	// The scale suite exits non-zero when a cell's determinism, resume or
	// plan (serial-equivalence / wall-clock budget) verification fails —
	// that is the CI gate's red signal.
	if *machinesList != "" || *exp == "scale" {
		sz, err := parseSize(*size)
		if err != nil {
			fatal(err)
		}
		var machines []int
		if *machinesList != "" {
			if machines, err = parseInts(*machinesList, "machine count"); err != nil {
				fatal(err)
			}
		}
		report, err := corral.RunScaleExperiment(sz, *seed, machines)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(map[string]map[string]float64{"scale": report.Values})
		} else {
			fmt.Println(report)
		}
		if n := report.Values["verification_failures"]; n != 0 {
			writeTrace()
			fatal(fmt.Errorf("%g scale cells failed determinism/resume/plan verification", n))
		}
		return
	}

	if *chaosI != "" {
		sz, err := parseSize(*size)
		if err != nil {
			fatal(err)
		}
		intensities, err := parseFloats(*chaosI, "intensity")
		if err != nil {
			fatal(err)
		}
		report, err := corral.RunChaosExperiment(sz, *seed, intensities)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(map[string]map[string]float64{"chaos": report.Values})
			return
		}
		fmt.Println(report)
		return
	}

	// The overload sweep gets its own dispatch whenever a knob or the rate
	// list is set; a bare -exp overload falls through to the registry with
	// the bundled defaults.
	if ov.arrivalRates != "" || (*exp == "overload" && ov.knobsSet()) {
		sz, err := parseSize(*size)
		if err != nil {
			fatal(err)
		}
		var rates []float64
		if ov.arrivalRates != "" {
			if rates, err = parseFloats(ov.arrivalRates, "arrival rate"); err != nil {
				fatal(err)
			}
		}
		report, err := corral.RunOverloadSweep(corral.OverloadParams{
			Size: sz, Seed: *seed, Rates: rates,
			Budget: ov.plannerBudget, Window: ov.replanWindow, AdmissionLimit: ov.admissionLimit,
		})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(map[string]map[string]float64{"overload": report.Values})
			return
		}
		fmt.Println(report)
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range corral.Experiments() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Description)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: corralsim -exp <id>")
		}
		return
	}

	sz, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range corral.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	jsonOut := map[string]map[string]float64{}
	for _, id := range ids {
		report, err := corral.RunExperiment(id, sz, *seed)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			jsonOut[id] = report.Values
			continue
		}
		fmt.Println(report)
	}
	if *asJSON {
		emitJSON(jsonOut)
	}
}

func emitJSON(v map[string]map[string]float64) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func parseSize(s string) (corral.ExperimentSize, error) {
	switch s {
	case "s", "small":
		return corral.SizeSmall, nil
	case "m", "medium":
		return corral.SizeMedium, nil
	case "l", "large", "full":
		return corral.SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q (want s, m or l)", s)
}

// overloadFlags bundles the overload-sweep knobs for validation and
// dispatch.
type overloadFlags struct {
	arrivalRates   string
	plannerBudget  float64
	replanWindow   float64
	admissionLimit int
}

// knobsSet reports whether any hardening knob deviates from its default.
func (f overloadFlags) knobsSet() bool {
	return f.plannerBudget > 0 || f.replanWindow > 0 || f.admissionLimit > 0
}

// validateFlagCombos rejects flag combinations with no coherent meaning;
// the caller prints usage and exits non-zero.
func validateFlagCombos(exp, snapshotAt, snapshotOut, resume, machines string, ov overloadFlags) error {
	if machines != "" {
		if exp != "" && exp != "scale" {
			return fmt.Errorf("-machines implies -exp scale and cannot be combined with -exp %s", exp)
		}
		if resume != "" {
			return fmt.Errorf("-resume cannot be combined with -machines")
		}
		if snapshotAt != "" {
			return fmt.Errorf("-snapshot-at cannot be combined with -machines")
		}
		if ov.arrivalRates != "" || ov.knobsSet() {
			return fmt.Errorf("-machines cannot be combined with overload sweep flags")
		}
	}
	if resume != "" && exp != "" {
		return fmt.Errorf("-resume cannot be combined with -exp: a resumed run replays its snapshot's own spec")
	}
	if resume != "" && snapshotAt != "" {
		return fmt.Errorf("-resume and -snapshot-at are mutually exclusive")
	}
	if snapshotAt != "" && exp != "" {
		return fmt.Errorf("-snapshot-at cannot be combined with -exp: it captures the crash-resume scenario run")
	}
	if snapshotOut != "" && snapshotAt == "" {
		return fmt.Errorf("-snapshot-out requires -snapshot-at")
	}
	if ov.plannerBudget < 0 {
		return fmt.Errorf("-planner-budget must be non-negative (simulated seconds; 0 = default)")
	}
	if ov.replanWindow < 0 {
		return fmt.Errorf("-replan-window must be non-negative (simulated seconds; 0 = default)")
	}
	if ov.admissionLimit < 0 {
		return fmt.Errorf("-admission-limit must be non-negative (0 = default)")
	}
	if ov.arrivalRates != "" && exp != "" && exp != "overload" {
		return fmt.Errorf("-arrival-rates implies -exp overload and cannot be combined with -exp %s", exp)
	}
	if ov.knobsSet() && ov.arrivalRates == "" && exp != "overload" {
		return fmt.Errorf("-planner-budget, -replan-window and -admission-limit configure the overload sweep: add -exp overload or -arrival-rates")
	}
	if ov.arrivalRates != "" || ov.knobsSet() {
		if resume != "" {
			return fmt.Errorf("-resume cannot be combined with overload sweep flags")
		}
		if snapshotAt != "" {
			return fmt.Errorf("-snapshot-at cannot be combined with overload sweep flags")
		}
	}
	return nil
}

// parseTarget parses a -snapshot-at value: "ev:N" (after N events),
// "t:SECONDS" (first event boundary at or past that simulated time), or a
// bare integer meaning ev:N.
func parseTarget(s string) (corral.CheckpointTarget, error) {
	switch {
	case strings.HasPrefix(s, "ev:"):
		n, err := strconv.ParseUint(s[len("ev:"):], 10, 64)
		if err != nil || n == 0 {
			return corral.CheckpointTarget{}, fmt.Errorf("bad -snapshot-at %q: want a positive event index", s)
		}
		return corral.CheckpointTarget{EventIndex: n}, nil
	case strings.HasPrefix(s, "t:"):
		v, err := strconv.ParseFloat(s[len("t:"):], 64)
		if err != nil || v < 0 {
			return corral.CheckpointTarget{}, fmt.Errorf("bad -snapshot-at %q: want a non-negative time in seconds", s)
		}
		return corral.CheckpointTarget{SimTime: v}, nil
	default:
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil || n == 0 {
			return corral.CheckpointTarget{}, fmt.Errorf("bad -snapshot-at %q: want \"ev:N\", \"t:SECONDS\" or a positive event index", s)
		}
		return corral.CheckpointTarget{EventIndex: n}, nil
	}
}

func parseInts(s, noun string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s %q: want a positive integer", noun, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s, noun string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", noun, part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corralsim:", err)
	os.Exit(1)
}
