package main

import (
	"strings"
	"testing"
)

func TestValidateFlagCombos(t *testing.T) {
	cases := []struct {
		name                                 string
		exp, snapshotAt, snapshotOut, resume string
		wantErr                              string
	}{
		{name: "plain experiment", exp: "fig6"},
		{name: "snapshot alone", snapshotAt: "ev:100"},
		{name: "snapshot with out", snapshotAt: "t:10", snapshotOut: "s.json"},
		{name: "resume alone", resume: "s.json"},
		{name: "resume with exp", exp: "fig6", resume: "s.json", wantErr: "-resume cannot be combined with -exp"},
		{name: "resume with snapshot", snapshotAt: "ev:5", resume: "s.json", wantErr: "mutually exclusive"},
		{name: "snapshot with exp", exp: "fig6", snapshotAt: "ev:5", wantErr: "-snapshot-at cannot be combined with -exp"},
		{name: "out without at", snapshotOut: "s.json", wantErr: "-snapshot-out requires -snapshot-at"},
	}
	for _, c := range cases {
		err := validateFlagCombos(c.exp, c.snapshotAt, c.snapshotOut, c.resume)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseTarget(t *testing.T) {
	for _, c := range []struct {
		in      string
		wantEv  uint64
		wantT   float64
		wantErr bool
	}{
		{in: "ev:123", wantEv: 123},
		{in: "456", wantEv: 456},
		{in: "t:12.5", wantT: 12.5},
		{in: "t:0", wantT: 0},
		{in: "ev:0", wantErr: true},
		{in: "0", wantErr: true},
		{in: "t:-1", wantErr: true},
		{in: "ev:abc", wantErr: true},
		{in: "whenever", wantErr: true},
		{in: "", wantErr: true},
	} {
		got, err := parseTarget(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseTarget(%q): no error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseTarget(%q): %v", c.in, err)
			continue
		}
		if got.EventIndex != c.wantEv || got.SimTime != c.wantT {
			t.Errorf("parseTarget(%q) = %+v, want ev=%d t=%g", c.in, got, c.wantEv, c.wantT)
		}
	}
}
