package main

import (
	"strings"
	"testing"
)

func TestValidateFlagCombos(t *testing.T) {
	cases := []struct {
		name                                           string
		exp, snapshotAt, snapshotOut, resume, machines string
		ov                                             overloadFlags
		wantErr                                        string
	}{
		{name: "plain experiment", exp: "fig6"},
		{name: "snapshot alone", snapshotAt: "ev:100"},
		{name: "snapshot with out", snapshotAt: "t:10", snapshotOut: "s.json"},
		{name: "resume alone", resume: "s.json"},
		{name: "resume with exp", exp: "fig6", resume: "s.json", wantErr: "-resume cannot be combined with -exp"},
		{name: "resume with snapshot", snapshotAt: "ev:5", resume: "s.json", wantErr: "mutually exclusive"},
		{name: "snapshot with exp", exp: "fig6", snapshotAt: "ev:5", wantErr: "-snapshot-at cannot be combined with -exp"},
		{name: "out without at", snapshotOut: "s.json", wantErr: "-snapshot-out requires -snapshot-at"},

		// Overload sweep flags.
		{name: "overload alone", exp: "overload"},
		{name: "overload with knobs", exp: "overload",
			ov: overloadFlags{plannerBudget: 0.5, replanWindow: 10, admissionLimit: 4}},
		{name: "rates imply overload", ov: overloadFlags{arrivalRates: "1,4"}},
		{name: "rates with explicit overload", exp: "overload", ov: overloadFlags{arrivalRates: "1,2,4"}},
		{name: "rates with knobs only", ov: overloadFlags{arrivalRates: "4", admissionLimit: 2}},
		{name: "negative budget", exp: "overload", ov: overloadFlags{plannerBudget: -1},
			wantErr: "-planner-budget must be non-negative"},
		{name: "negative window", exp: "overload", ov: overloadFlags{replanWindow: -0.1},
			wantErr: "-replan-window must be non-negative"},
		{name: "negative limit", exp: "overload", ov: overloadFlags{admissionLimit: -2},
			wantErr: "-admission-limit must be non-negative"},
		{name: "rates with other exp", exp: "fig6", ov: overloadFlags{arrivalRates: "1,4"},
			wantErr: "-arrival-rates implies -exp overload"},
		{name: "knobs without overload", exp: "fig6", ov: overloadFlags{plannerBudget: 0.5},
			wantErr: "configure the overload sweep"},
		{name: "knobs with nothing else", ov: overloadFlags{admissionLimit: 3},
			wantErr: "configure the overload sweep"},
		{name: "rates with resume", resume: "s.json", ov: overloadFlags{arrivalRates: "1,4"},
			wantErr: "-resume cannot be combined with overload sweep flags"},
		{name: "rates with snapshot", snapshotAt: "ev:5", ov: overloadFlags{arrivalRates: "1,4"},
			wantErr: "-snapshot-at cannot be combined with overload sweep flags"},

		// Scale suite flags.
		{name: "scale alone", exp: "scale"},
		{name: "machines implies scale", machines: "2000"},
		{name: "machines with explicit scale", exp: "scale", machines: "2000,10000"},
		{name: "machines with other exp", exp: "fig6", machines: "2000",
			wantErr: "-machines implies -exp scale"},
		{name: "machines with resume", resume: "s.json", machines: "2000",
			wantErr: "-resume cannot be combined with -machines"},
		{name: "machines with snapshot", snapshotAt: "ev:5", machines: "2000",
			wantErr: "-snapshot-at cannot be combined with -machines"},
		{name: "machines with rates", machines: "2000", ov: overloadFlags{arrivalRates: "1,4"},
			wantErr: "-machines cannot be combined with overload sweep flags"},
	}
	for _, c := range cases {
		err := validateFlagCombos(c.exp, c.snapshotAt, c.snapshotOut, c.resume, c.machines, c.ov)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("2000, 5000,10000", "machine count")
	if err != nil || len(got) != 3 || got[0] != 2000 || got[1] != 5000 || got[2] != 10000 {
		t.Errorf("parseInts = %v, %v; want [2000 5000 10000]", got, err)
	}
	for _, bad := range []string{"", "abc", "2000,-5", "0", "1.5"} {
		if _, err := parseInts(bad, "machine count"); err == nil {
			t.Errorf("parseInts(%q): no error", bad)
		}
	}
}

func TestParseTarget(t *testing.T) {
	for _, c := range []struct {
		in      string
		wantEv  uint64
		wantT   float64
		wantErr bool
	}{
		{in: "ev:123", wantEv: 123},
		{in: "456", wantEv: 456},
		{in: "t:12.5", wantT: 12.5},
		{in: "t:0", wantT: 0},
		{in: "ev:0", wantErr: true},
		{in: "0", wantErr: true},
		{in: "t:-1", wantErr: true},
		{in: "ev:abc", wantErr: true},
		{in: "whenever", wantErr: true},
		{in: "", wantErr: true},
	} {
		got, err := parseTarget(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseTarget(%q): no error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseTarget(%q): %v", c.in, err)
			continue
		}
		if got.EventIndex != c.wantEv || got.SimTime != c.wantT {
			t.Errorf("parseTarget(%q) = %+v, want ev=%d t=%g", c.in, got, c.wantEv, c.wantT)
		}
	}
}
