package main

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Baseline is the JSON envelope: environment header plus one entry per
// benchmark, in input order.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line. Pkg is the package the benchmark
// came from (tracked from the pkg: headers a multi-package `go test -bench`
// run interleaves), so benchmarks with the same name in different packages
// key distinctly in comparisons.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parse consumes `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8    4    272841 ns/op    12.3 custom_metric
//
// i.e. a name (with optional -GOMAXPROCS suffix), an iteration count,
// then (value, unit) pairs. Unrecognized lines (PASS, ok, test logs) are
// skipped.
func parse(sc *bufio.Scanner) (*Baseline, error) {
	b := &Baseline{Benchmarks: []Benchmark{}}
	curPkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			curPkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if b.Pkg == "" {
				b.Pkg = curPkg
			}
			continue
		case strings.HasPrefix(line, "goarch:"):
			b.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			b.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		bm, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		bm.Pkg = curPkg
		b.Benchmarks = append(b.Benchmarks, *bm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

func parseLine(fields []string) (*Benchmark, error) {
	bm := &Benchmark{Metrics: map[string]float64{}}
	bm.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(bm.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(bm.Name[i+1:]); err == nil {
			bm.Procs = procs
			bm.Name = bm.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count %q: %v", fields[1], err)
	}
	bm.Iterations = iters
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd metric field count %d", len(rest))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value %q: %v", rest[i], err)
		}
		bm.Metrics[rest[i+1]] = v
	}
	return bm, nil
}
