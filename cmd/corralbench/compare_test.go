package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

const multiPkgSample = `goos: linux
goarch: amd64
pkg: corral
cpu: Some CPU @ 2.40GHz
BenchmarkFig6_BatchMakespan-8   	       1	  27284100 ns/op	        12.30 makespan_reduction_pct
pkg: corral/internal/netsim
BenchmarkRecomputeGrouped10k-8  	    1000	    700000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func mustParse(t *testing.T, s string) *Baseline {
	t.Helper()
	b, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseTracksPerBenchmarkPkg(t *testing.T) {
	b := mustParse(t, multiPkgSample)
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
	if got := b.Benchmarks[0].Pkg; got != "corral" {
		t.Errorf("first benchmark pkg = %q, want corral", got)
	}
	if got := b.Benchmarks[1].Pkg; got != "corral/internal/netsim" {
		t.Errorf("second benchmark pkg = %q, want corral/internal/netsim", got)
	}
	// Envelope keeps the first pkg header for backward compatibility.
	if b.Pkg != "corral" {
		t.Errorf("envelope pkg = %q, want corral", b.Pkg)
	}
}

func bench(pkg, name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Pkg: pkg, Iterations: 1, Metrics: metrics}
}

func TestCompareIdenticalBaselines(t *testing.T) {
	mk := func() *Baseline {
		return &Baseline{Benchmarks: []Benchmark{
			bench("corral", "Fig6", map[string]float64{"ns/op": 100, "makespan_reduction_pct": 12.3}),
			bench("corral/internal/netsim", "Recompute", map[string]float64{"ns/op": 700, "allocs/op": 0}),
		}}
	}
	rep := compareBaselines(mk(), mk(), 10, false)
	if len(rep.Failures) != 0 || len(rep.Warnings) != 0 {
		t.Fatalf("identical baselines: failures=%v warnings=%v", rep.Failures, rep.Warnings)
	}
	if rep.Compared != 2 {
		t.Fatalf("Compared = %d, want 2", rep.Compared)
	}
}

func TestCompareSemanticDriftFails(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"makespan_reduction_pct": 12.3}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"makespan_reduction_pct": math.Nextafter(12.3, 13)}),
	}}
	rep := compareBaselines(old, fresh, 10, false)
	if len(rep.Failures) != 1 {
		t.Fatalf("ulp-level semantic drift: failures = %v, want exactly 1", rep.Failures)
	}
	if !strings.Contains(rep.Failures[0], "makespan_reduction_pct") {
		t.Errorf("failure does not name the metric: %q", rep.Failures[0])
	}
}

func TestCompareTimingDriftIsAdvisory(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"ns/op": 100, "B/op": 50}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"ns/op": 300, "B/op": 52}),
	}}
	rep := compareBaselines(old, fresh, 25, false)
	if len(rep.Failures) != 0 {
		t.Fatalf("timing drift must never fail: %v", rep.Failures)
	}
	// ns/op drifted 200% (> tol), B/op only 4% (< tol).
	if len(rep.Warnings) != 1 || !strings.Contains(rep.Warnings[0], "ns/op") {
		t.Fatalf("warnings = %v, want exactly one about ns/op", rep.Warnings)
	}
}

func TestCompareMissingAndExtraBenchmarksFail(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Old", map[string]float64{"ns/op": 1}),
		bench("corral", "Shared", map[string]float64{"ns/op": 1}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Shared", map[string]float64{"ns/op": 1}),
		bench("corral", "New", map[string]float64{"ns/op": 1}),
	}}
	rep := compareBaselines(old, fresh, 10, false)
	if len(rep.Failures) != 2 {
		t.Fatalf("failures = %v, want one missing + one extra", rep.Failures)
	}
	joined := strings.Join(rep.Failures, "\n")
	if !strings.Contains(joined, "Old") || !strings.Contains(joined, "New") {
		t.Errorf("failures do not name both benchmarks: %v", rep.Failures)
	}
}

func TestCompareMissingAndExtraMetricsFail(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"gone_metric": 1, "ns/op": 5}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"new_metric": 1, "ns/op": 5}),
	}}
	rep := compareBaselines(old, fresh, 10, false)
	if len(rep.Failures) != 2 {
		t.Fatalf("failures = %v, want one missing + one extra metric", rep.Failures)
	}
}

func TestCompareSameNameDifferentPkgStaysDistinct(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "X", map[string]float64{"frac": 0.5}),
		bench("corral/internal/netsim", "X", map[string]float64{"frac": 0.9}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "X", map[string]float64{"frac": 0.5}),
		bench("corral/internal/netsim", "X", map[string]float64{"frac": 0.9}),
	}}
	rep := compareBaselines(old, fresh, 10, false)
	if len(rep.Failures) != 0 || rep.Compared != 2 {
		t.Fatalf("pkg-qualified keys: failures=%v compared=%d", rep.Failures, rep.Compared)
	}
}

func TestCompareLegacyBaselineWithoutPkgKeysOnName(t *testing.T) {
	// Baselines written before per-benchmark pkg tracking have no pkg on
	// any benchmark; a fresh run with pkgs must still line up by name.
	old := &Baseline{Benchmarks: []Benchmark{
		bench("", "Fig6", map[string]float64{"frac": 0.5}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"frac": 0.5}),
	}}
	rep := compareBaselines(old, fresh, 10, false)
	if len(rep.Failures) != 0 || rep.Compared != 1 {
		t.Fatalf("legacy fallback: failures=%v compared=%d", rep.Failures, rep.Compared)
	}
}

func TestDriftPct(t *testing.T) {
	if got := driftPct(100, 100); got != 0 {
		t.Errorf("driftPct(100, 100) = %g, want 0", got)
	}
	if got := driftPct(100, 110); math.Abs(got-10) > 1e-9 {
		t.Errorf("driftPct(100, 110) = %g, want 10", got)
	}
	if got := driftPct(0, 1); !math.IsInf(got, 1) {
		t.Errorf("driftPct(0, 1) = %g, want +Inf", got)
	}
	if got := driftPct(0, 0); got != 0 {
		t.Errorf("driftPct(0, 0) = %g, want 0", got)
	}
}

func TestCompareSubsetSkipsBaselineOnlyBenchmarks(t *testing.T) {
	old := &Baseline{Benchmarks: []Benchmark{
		bench("corral", "Fig6", map[string]float64{"frac": 0.5}),
		bench("corral/internal/netsim", "RecomputeIncremental10k", map[string]float64{"ns/op": 7}),
	}}
	fresh := &Baseline{Benchmarks: []Benchmark{
		bench("corral/internal/netsim", "RecomputeIncremental10k", map[string]float64{"ns/op": 7}),
	}}
	rep := compareBaselines(old, fresh, 10, true)
	if len(rep.Failures) != 0 || rep.Compared != 1 || rep.Skipped != 1 {
		t.Fatalf("subset: failures=%v compared=%d skipped=%d", rep.Failures, rep.Compared, rep.Skipped)
	}
	// Subset mode still fails on run-only benchmarks: new benchmarks must
	// land with a baseline refresh.
	freshExtra := &Baseline{Benchmarks: []Benchmark{
		bench("corral/internal/netsim", "RecomputeIncremental10k", map[string]float64{"ns/op": 7}),
		bench("corral/internal/netsim", "BrandNew", map[string]float64{"ns/op": 1}),
	}}
	rep = compareBaselines(old, freshExtra, 10, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "BrandNew") {
		t.Fatalf("subset extra: failures=%v, want one about BrandNew", rep.Failures)
	}
}
