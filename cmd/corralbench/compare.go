package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Comparison semantics (-compare mode):
//
// A benchmark run carries two kinds of metrics. Timing/allocation metrics
// (ns/op, B/op, allocs/op, MB/s) depend on the machine the run happened on,
// so they can never gate CI; they are compared against -tol and reported as
// advisory warnings only. Every other metric is a semantic outcome
// republished from an experiment report (prediction MAPE, LP gap,
// cross-rack fractions, ...). Those are pure functions of the seed and
// experiment size — machine-independent — so they must match the baseline
// bit for bit: any drift means the simulation's behavior changed and the
// baseline must be consciously regenerated with `make bench`.
//
// Machine-dependent envelope fields (goos, goarch, cpu) and per-benchmark
// procs/iterations are ignored entirely.
var advisoryMetrics = map[string]bool{
	"ns/op":     true,
	"B/op":      true,
	"allocs/op": true,
	"MB/s":      true,
}

// driftReport separates hard failures (semantic drift, missing/extra
// benchmarks or metrics) from advisory warnings (timing drift beyond -tol).
type driftReport struct {
	Failures []string
	Warnings []string
	Compared int // benchmarks matched on both sides
	Skipped  int // baseline-only benchmarks skipped in subset mode
}

func (r *driftReport) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *driftReport) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// loadBaseline reads a Baseline previously written by this tool.
func loadBaseline(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(buf, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// benchKey keys a benchmark by (pkg, name) so same-named benchmarks from
// different packages in a multi-package run stay distinct. Baselines written
// before per-benchmark pkg tracking have no pkg on any entry; when one side
// is such a legacy file, both sides fall back to name-only keys.
func keyed(b *Baseline, usePkg bool) map[string]*Benchmark {
	m := make(map[string]*Benchmark, len(b.Benchmarks))
	for i := range b.Benchmarks {
		bm := &b.Benchmarks[i]
		k := bm.Name
		if usePkg {
			k = bm.Pkg + "\x00" + bm.Name
		}
		m[k] = bm
	}
	return m
}

func hasPerBenchPkg(b *Baseline) bool {
	for i := range b.Benchmarks {
		if b.Benchmarks[i].Pkg != "" {
			return true
		}
	}
	return false
}

func displayName(bm *Benchmark) string {
	if bm.Pkg != "" {
		return bm.Pkg + "." + bm.Name
	}
	return bm.Name
}

// compareBaselines diffs a fresh run against the committed baseline. With
// subset, benchmarks present only in the baseline are skipped rather than
// failed — the mode for CI jobs that run a single package's benchmarks
// against the repository-wide baseline. Fresh benchmarks absent from the
// baseline still fail either way: a new benchmark must land together with
// a `make bench` refresh.
func compareBaselines(old, fresh *Baseline, tolPct float64, subset bool) *driftReport {
	rep := &driftReport{}
	usePkg := hasPerBenchPkg(old) && hasPerBenchPkg(fresh)
	oldBy, freshBy := keyed(old, usePkg), keyed(fresh, usePkg)

	keys := make([]string, 0, len(oldBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ob := oldBy[k]
		fb, ok := freshBy[k]
		if !ok {
			if subset {
				rep.Skipped++
				continue
			}
			rep.failf("benchmark %s is in the baseline but missing from this run", displayName(ob))
			continue
		}
		rep.Compared++
		compareMetrics(rep, ob, fb, tolPct)
	}

	extra := make([]string, 0)
	for k, fb := range freshBy {
		if _, ok := oldBy[k]; !ok {
			extra = append(extra, displayName(fb))
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rep.failf("benchmark %s is new (not in the baseline; refresh it with `make bench`)", name)
	}
	return rep
}

func compareMetrics(rep *driftReport, ob, fb *Benchmark, tolPct float64) {
	name := displayName(ob)
	units := make([]string, 0, len(ob.Metrics))
	for u := range ob.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		want := ob.Metrics[u]
		got, ok := fb.Metrics[u]
		if !ok {
			rep.failf("%s: metric %q is in the baseline but missing from this run", name, u)
			continue
		}
		if advisoryMetrics[u] {
			if pct := driftPct(want, got); pct > tolPct {
				rep.warnf("%s: %s drifted %.1f%% (baseline %v, got %v; advisory, tol %.1f%%)",
					name, u, pct, want, got, tolPct)
			}
			continue
		}
		// Semantic metrics are deterministic simulation outcomes: exact
		// bit equality, not an epsilon test.
		if math.Float64bits(got) != math.Float64bits(want) {
			rep.failf("%s: semantic metric %s changed: baseline %v, got %v (delta %+g)",
				name, u, want, got, got-want)
		}
	}
	for u := range fb.Metrics {
		if _, ok := ob.Metrics[u]; !ok {
			rep.failf("%s: metric %q is new (not in the baseline; refresh it with `make bench`)", name, u)
		}
	}
}

// driftPct is the relative drift of got from want, in percent. A zero
// baseline with a nonzero result counts as infinite drift.
func driftPct(want, got float64) float64 {
	diff := math.Abs(got - want)
	if diff == 0 { // exact no-drift short-circuit (literal sentinel, floateq-exempt)
		return 0
	}
	if want == 0 { // guard before dividing by a zero baseline (literal sentinel, floateq-exempt)
		return math.Inf(1)
	}
	return diff / math.Abs(want) * 100
}
