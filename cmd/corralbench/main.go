// Command corralbench converts `go test -bench` text output into a
// machine-readable JSON baseline, so benchmark trajectories can be
// diffed and tracked in version control.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | corralbench -o BENCH_baseline.json
//
// Every benchmark line is parsed into its name, GOMAXPROCS suffix,
// iteration count and metric pairs (ns/op plus any custom b.ReportMetric
// values the harness republishes from the experiment reports). Header
// lines (goos/goarch/pkg/cpu) are carried into the JSON envelope.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	baseline, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(baseline.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}
	buf, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("corralbench: wrote %d benchmarks to %s\n", len(baseline.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corralbench:", err)
	os.Exit(1)
}
