// Command corralbench converts `go test -bench` text output into a
// machine-readable JSON baseline, so benchmark trajectories can be
// diffed and tracked in version control.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | corralbench -o BENCH_baseline.json
//	go test -run '^$' -bench . -benchtime 1x . ./internal/netsim | corralbench -compare BENCH_baseline.json -tol 25
//
// Every benchmark line is parsed into its name, package, GOMAXPROCS
// suffix, iteration count and metric pairs (ns/op plus any custom
// b.ReportMetric values the harness republishes from the experiment
// reports). Header lines (goos/goarch/pkg/cpu) are carried into the JSON
// envelope.
//
// With -compare, the parsed run is diffed against a committed baseline:
// semantic metrics (deterministic simulation outcomes) must match bit for
// bit and any drift exits non-zero; timing metrics (ns/op, B/op,
// allocs/op, MB/s) are machine-dependent and only warn past -tol percent.
// -o still works in compare mode, so CI can upload the fresh JSON as an
// artifact even when the gate fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	compare := flag.String("compare", "",
		"baseline JSON to diff against; semantic metric drift exits non-zero")
	tol := flag.Float64("tol", 10,
		"advisory tolerance (percent) for timing metrics (ns/op, B/op, allocs/op, MB/s) in -compare mode")
	subset := flag.Bool("subset", false,
		"in -compare mode, treat the run as a subset of the baseline: benchmarks present only in the baseline are skipped instead of failing (for CI jobs that run one package's benchmarks against the full baseline)")
	flag.Parse()

	baseline, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(baseline.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}
	buf, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	switch {
	case *out == "" && *compare == "":
		os.Stdout.Write(buf)
	case *out != "":
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("corralbench: wrote %d benchmarks to %s\n", len(baseline.Benchmarks), *out)
	}

	if *compare == "" {
		return
	}
	old, err := loadBaseline(*compare)
	if err != nil {
		fatal(err)
	}
	rep := compareBaselines(old, baseline, *tol, *subset)
	if *subset && rep.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "corralbench: note: %d baseline-only benchmark(s) skipped (-subset)\n", rep.Skipped)
	}
	for _, w := range rep.Warnings {
		fmt.Fprintln(os.Stderr, "corralbench: warning:", w)
	}
	for _, f := range rep.Failures {
		fmt.Fprintln(os.Stderr, "corralbench: FAIL:", f)
	}
	if len(rep.Failures) > 0 {
		fatal(fmt.Errorf("%d semantic drift(s) vs %s (regenerate with `make bench` if intended)",
			len(rep.Failures), *compare))
	}
	fmt.Printf("corralbench: OK: %d benchmarks match %s (%d advisory warnings, tol %g%%)\n",
		rep.Compared, *compare, len(rep.Warnings), *tol)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corralbench:", err)
	os.Exit(1)
}
