package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: corral
cpu: Some CPU @ 2.40GHz
BenchmarkFig6_BatchMakespan-8   	       1	  27284100 ns/op	        12.30 makespan_reduction_pct
BenchmarkLPGap 	       2	   5000000 ns/op
some unrelated log line
PASS
ok  	corral	1.234s
`

func TestParse(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || b.Goarch != "amd64" || b.Pkg != "corral" {
		t.Fatalf("header = %q/%q/%q", b.Goos, b.Goarch, b.Pkg)
	}
	if !strings.Contains(b.CPU, "2.40GHz") {
		t.Fatalf("cpu = %q", b.CPU)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
	fig6 := b.Benchmarks[0]
	if fig6.Name != "Fig6_BatchMakespan" || fig6.Procs != 8 || fig6.Iterations != 1 {
		t.Fatalf("fig6 = %+v", fig6)
	}
	if fig6.Metrics["ns/op"] != 27284100 {
		t.Fatalf("fig6 ns/op = %g", fig6.Metrics["ns/op"])
	}
	if fig6.Metrics["makespan_reduction_pct"] != 12.30 {
		t.Fatalf("fig6 custom metric = %g", fig6.Metrics["makespan_reduction_pct"])
	}
	// No -procs suffix: the name survives intact.
	if b.Benchmarks[1].Name != "LPGap" || b.Benchmarks[1].Procs != 0 {
		t.Fatalf("lpgap = %+v", b.Benchmarks[1])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 1 5 ns/op 7", // dangling metric value
		"BenchmarkX-8 1 bogus ns/op",
	} {
		if _, err := parse(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from benchmark-free input", len(b.Benchmarks))
	}
}
