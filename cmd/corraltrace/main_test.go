package main

// Golden test for the summarizer. The JSONL fixture is generated from two
// pinned deterministic runs — one exercising the planner-budget fallback
// chain plus replan-storm suppression, one exercising admission control —
// so the summary covers the overload-degradation block end to end.
// Regenerate both testdata files after a deliberate trace-schema or
// runtime change with:
//
//	UPDATE_TRACE_GOLDEN=1 go test ./cmd/corraltrace/
import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corral/internal/job"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/topology"
	"corral/internal/trace"
)

func fixtureJob(id int) *job.Job {
	return job.MapReduce(id, "shuffle", job.Profile{
		InputBytes:   512e6,
		ShuffleBytes: 2e9,
		OutputBytes:  100e6,
		MapTasks:     8,
		ReduceTasks:  8,
		MapRate:      2e8,
		ReduceRate:   2e8,
	})
}

// overloadFixture produces the committed trace bytes: run "budget" hits
// the incremental fallback tier at t=1 (rack 0 loses its machine
// majority under a budget between the incremental and full planner
// costs) and then has an all-rack uplink flap at t=21 suppressed by the
// still-open 30s replan window; run "admission" defers one arrival and
// sheds two past the queue cap.
func overloadFixture(t *testing.T) []byte {
	t.Helper()
	const gbps = 1e9 / 8
	topo := topology.Config{
		Racks:            4,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
	c := trace.NewCollector()

	j1, j2 := fixtureJob(1), fixtureJob(2)
	j2.Arrival = 20
	inc, full := planner.CostIncremental(2, 4, 2), planner.CostFull(2, 4, 2)
	var flaps []runtime.LinkFault
	for r := 0; r < topo.Racks; r++ {
		flaps = append(flaps,
			runtime.LinkFault{At: 21, Rack: r, Factor: 0},
			runtime.LinkFault{At: 21.2, Rack: r, Factor: 1})
	}
	if _, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, BlockSize: 64e6, Seed: 39,
		Plan: &planner.Plan{
			Objective: planner.MinimizeMakespan,
			Assignments: map[int]*planner.Assignment{
				1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 15},
				2: {JobID: 2, Racks: []int{0}, Start: 20, EstLatency: 15},
			},
		},
		ReplanOnFailure: true,
		PlannerBudget:   (inc + full) / 2,
		ReplanWindow:    30,
		Failures: []runtime.Failure{
			{At: 1, Machine: 0}, {At: 1, Machine: 1}, {At: 1, Machine: 2},
		},
		LinkFaults: flaps,
		Trace:      c.NewRun("budget"),
	}, []*job.Job{j1, j2}); err != nil {
		t.Fatal(err)
	}

	jobs := make([]*job.Job, 4)
	for i := range jobs {
		jobs[i] = fixtureJob(i + 1)
		jobs[i].Arrival = 0.1 * float64(i)
	}
	if _, err := runtime.Run(runtime.Options{
		Topology: topo, BlockSize: 64e6, Seed: 5,
		AdmissionLimit: 1, AdmissionQueueCap: 1,
		Trace: c.NewRun("admission"),
	}, jobs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSummaryGolden pins both the fixture bytes (trace schema stability)
// and the rendered summary, including the overload-degradation block.
func TestSummaryGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "overload.trace.jsonl")
	golden := filepath.Join("testdata", "overload.summary.golden")
	raw := overloadFixture(t)
	if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := summarize(&out, bytes.NewReader(raw), 3); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes) and %s (%d bytes)", fixture, len(raw), golden, out.Len())
		return
	}
	committed, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_TRACE_GOLDEN=1 go test ./cmd/corraltrace/)", err)
	}
	if !bytes.Equal(raw, committed) {
		t.Errorf("regenerated trace differs from committed fixture (%d vs %d bytes); "+
			"if the schema or runtime change is deliberate, refresh with UPDATE_TRACE_GOLDEN=1",
			len(raw), len(committed))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := summarize(&out, bytes.NewReader(committed), 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("summary drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
	// The fixture must actually exercise the degradation block — guard
	// against a regenerated fixture silently losing the overload events.
	for _, needle := range []string{
		"overload degradation:", "incremental", "suppressed",
		"admission control:", "shed",
	} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("summary lost %q (fixture no longer exercises the overload path)", needle)
		}
	}
}
