// Command corraltrace summarizes a JSONL trace written by
// corralsim -trace out.jsonl (or any corral.TraceCollector.WriteJSONL
// output). For every simulation run in the trace it reports
//
//   - a per-job time-in-state breakdown: time spent queued (waiting for a
//     slot), in retry backoff, running map attempts, shuffling, and
//     running post-shuffle reduce compute — summed over finished attempts
//     of all the job's tasks, and
//
//   - the most contended links: average utilization integrated over the
//     run (a step function between link_util change points), with peak
//     utilization and the time spent at or above 99% capacity.
//
// Planner runs (plan_start/plan_assign/plan_done) are summarized as the
// chosen rack sets, and overload-hardening activity (budget misses and
// fallback tiers, suppressed replans, deferred and shed arrivals with the
// peak admission-queue depth) is rolled up into a degradation line. The
// output is a pure function of the trace bytes.
//
// Usage:
//
//	corraltrace trace.jsonl
//	corraltrace -top 10 trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// event mirrors the JSONL schema of internal/trace: run-header lines set
// Run, event lines set Ev. Absent numeric fields decode as 0; the
// summarizer only reads fields the emitting kind is defined to carry.
type event struct {
	Run    *int    `json:"run"`
	Label  string  `json:"label"`
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	Role   string  `json:"role"`
	Job    int     `json:"job"`
	Stage  int     `json:"stage"`
	Task   int     `json:"task"`
	Att    int     `json:"att"`
	Mach   int     `json:"mach"`
	Link   int     `json:"link"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail"`
}

func main() {
	var (
		top = flag.Int("top", 5, "number of most-contended links to show per run")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: corraltrace [-top N] trace.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := summarize(os.Stdout, f, *top); err != nil {
		fatal(err)
	}
}

// summarize streams the JSONL trace, cutting it into runs at header lines
// and printing one summary per run.
func summarize(w io.Writer, r io.Reader, top int) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var run *runSummary
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(b, &e); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if e.Run != nil {
			if run != nil {
				run.print(w, top)
			}
			run = newRunSummary(e.Label)
			continue
		}
		if run == nil {
			run = newRunSummary("(unlabeled)")
		}
		run.add(&e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if run == nil {
		return fmt.Errorf("empty trace")
	}
	run.print(w, top)
	return nil
}

// taskKey identifies one task across its attempts.
type taskKey struct {
	role  string
	job   int
	stage int
	task  int
}

// jobStats accumulates one job's time-in-state totals.
type jobStats struct {
	name    string
	queued  float64
	backoff float64
	mapRun  float64
	shuffle float64
	reduce  float64
	done    float64
	failed  bool
}

// linkStats integrates one link's utilization step function.
type linkStats struct {
	name     string
	lastT    float64
	lastUtil float64
	integral float64
	peak     float64
	saturate float64 // time at >= 99% utilization
}

type runSummary struct {
	label     string
	end       float64
	jobs      map[int]*jobStats
	links     map[int]*linkStats
	queuedAt  map[taskKey]float64
	startAt   map[taskKey]float64
	shuffleAt map[taskKey]float64
	plans     []string
	replans   int

	// Overload-hardening roll-up.
	suppressed     int
	budgetExceeded int
	degradeInc     int // fallback tier 1: commitments-only incremental replan
	degradeGreedy  int // fallback tier 2: greedy Yarn-CS placement
	deferred       int
	shed           int
	peakQueue      int
}

func newRunSummary(label string) *runSummary {
	return &runSummary{
		label:     label,
		jobs:      map[int]*jobStats{},
		links:     map[int]*linkStats{},
		queuedAt:  map[taskKey]float64{},
		startAt:   map[taskKey]float64{},
		shuffleAt: map[taskKey]float64{},
	}
}

func (rs *runSummary) job(id int) *jobStats {
	js := rs.jobs[id]
	if js == nil {
		js = &jobStats{}
		rs.jobs[id] = js
	}
	return js
}

func (rs *runSummary) add(e *event) {
	if e.T > rs.end {
		rs.end = e.T
	}
	k := taskKey{e.Role, e.Job, e.Stage, e.Task}
	switch e.Ev {
	case "link_meta":
		rs.links[e.Link] = &linkStats{name: e.Detail}
	case "job_submit":
		rs.job(e.Job).name = e.Detail
	case "job_fail":
		rs.job(e.Job).failed = true
	case "job_done":
		rs.job(e.Job).done = e.T
	case "task_queued":
		rs.queuedAt[k] = e.T
	case "task_backoff":
		rs.job(e.Job).backoff += e.Value
	case "task_start":
		if q, ok := rs.queuedAt[k]; ok {
			rs.job(e.Job).queued += e.T - q
			delete(rs.queuedAt, k)
		}
		rs.startAt[k] = e.T
		delete(rs.shuffleAt, k)
	case "shuffle_done":
		// Reduce tasks only; role is carried by the key ("reduce").
		rs.shuffleAt[taskKey{"reduce", e.Job, e.Stage, e.Task}] = e.T
	case "task_finish":
		js := rs.job(e.Job)
		switch e.Role {
		case "map":
			js.mapRun += e.Value
		case "reduce":
			start, haveStart := rs.startAt[k]
			if s, ok := rs.shuffleAt[k]; ok && haveStart {
				js.shuffle += s - start
				js.reduce += e.T - s
			} else {
				js.reduce += e.Value
			}
		}
		delete(rs.startAt, k)
		delete(rs.shuffleAt, k)
	case "link_util":
		ls := rs.links[e.Link]
		if ls == nil {
			ls = &linkStats{name: fmt.Sprintf("link%d", e.Link)}
			rs.links[e.Link] = ls
		}
		ls.advance(e.T)
		ls.lastUtil = e.Value
		if e.Value > ls.peak {
			ls.peak = e.Value
		}
	case "replan":
		rs.replans++
	case "plan_budget_exceeded":
		rs.budgetExceeded++
	case "degrade":
		if e.Att == 2 {
			rs.degradeGreedy++
		} else {
			rs.degradeInc++
		}
	case "replan_suppressed":
		rs.suppressed++
	case "job_deferred":
		rs.deferred++
		if d := int(e.Value); d > rs.peakQueue {
			rs.peakQueue = d
		}
	case "job_shed":
		rs.shed++
		if d := int(e.Value); d > rs.peakQueue {
			rs.peakQueue = d
		}
	case "plan_assign":
		rs.plans = append(rs.plans,
			fmt.Sprintf("  job %-4d prio %-3d start %8.1fs racks [%s]",
				e.Job, e.Att, e.Value, e.Detail))
	}
}

// advance integrates the current utilization level up to time t.
func (ls *linkStats) advance(t float64) {
	if dt := t - ls.lastT; dt > 0 {
		ls.integral += ls.lastUtil * dt
		if ls.lastUtil >= 0.99 {
			ls.saturate += dt
		}
	}
	ls.lastT = t
}

func (rs *runSummary) print(w io.Writer, top int) {
	fmt.Fprintf(w, "run %s\n", rs.label)
	if rs.replans > 0 {
		fmt.Fprintf(w, "  %d failure-triggered replan(s)\n", rs.replans)
	}
	if rs.budgetExceeded+rs.suppressed+rs.degradeInc+rs.degradeGreedy+rs.deferred+rs.shed > 0 {
		fmt.Fprintf(w, "  overload degradation: %d budget miss(es) -> %d incremental / %d greedy fallback(s), %d replan(s) suppressed\n",
			rs.budgetExceeded, rs.degradeInc, rs.degradeGreedy, rs.suppressed)
		fmt.Fprintf(w, "  admission control: %d deferred, %d shed, peak queue depth %d\n",
			rs.deferred, rs.shed, rs.peakQueue)
	}
	if len(rs.plans) > 0 {
		fmt.Fprintf(w, "  planned assignments:\n")
		for _, p := range rs.plans {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
	if len(rs.jobs) > 0 {
		ids := make([]int, 0, len(rs.jobs))
		for id := range rs.jobs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintf(w, "  %-24s %10s %10s %10s %10s %10s %10s\n",
			"job", "queued", "backoff", "map", "shuffle", "reduce", "done@")
		for _, id := range ids {
			js := rs.jobs[id]
			name := js.name
			if name == "" {
				name = fmt.Sprintf("job%d", id)
			}
			if len(name) > 18 {
				name = name[:18]
			}
			doneCol := fmt.Sprintf("%.1fs", js.done)
			if js.failed {
				doneCol = "FAILED"
			} else if js.done == 0 {
				doneCol = "-"
			}
			fmt.Fprintf(w, "  %-24s %9.1fs %9.1fs %9.1fs %9.1fs %9.1fs %10s\n",
				fmt.Sprintf("%d %s", id, name),
				js.queued, js.backoff, js.mapRun, js.shuffle, js.reduce, doneCol)
		}
	}
	if len(rs.links) > 0 && rs.end > 0 {
		ids := make([]int, 0, len(rs.links))
		for id := range rs.links {
			rs.links[id].advance(rs.end)
			ids = append(ids, id)
		}
		// Most contended first: by time-integrated utilization, link id ties.
		sort.Slice(ids, func(a, b int) bool {
			x, y := rs.links[ids[a]], rs.links[ids[b]]
			if x.integral != y.integral {
				return x.integral > y.integral
			}
			return ids[a] < ids[b]
		})
		if top > len(ids) {
			top = len(ids)
		}
		shown := 0
		for _, id := range ids[:top] {
			ls := rs.links[id]
			if ls.integral == 0 {
				break
			}
			if shown == 0 {
				fmt.Fprintf(w, "  top contended links (avg / peak util, time saturated):\n")
			}
			shown++
			fmt.Fprintf(w, "    %-24s %5.1f%% / %5.1f%%  %8.1fs\n",
				ls.name, 100*ls.integral/rs.end, 100*ls.peak, ls.saturate)
		}
	}
	fmt.Fprintf(w, "  end of trace: %s\n\n", fmtSeconds(rs.end))
}

func fmtSeconds(s float64) string {
	if math.IsInf(s, 0) || math.IsNaN(s) {
		return fmt.Sprint(s)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", s), "0"), ".") + "s"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corraltrace:", err)
	os.Exit(1)
}
