// Command corralsnap inspects and compares corral snapshot files.
//
// Usage:
//
//	corralsnap inspect FILE         summarize one snapshot
//	corralsnap diff FILE1 FILE2     field-level diff of two snapshots
//
// inspect prints the schema version, capture point, run spec summary and
// state summary of a snapshot written by corralsim -snapshot-at or the
// public CaptureSnapshot/EncodeSnapshot API. diff walks every field of
// both snapshots and prints each differing path; it exits 0 when the
// snapshots are identical, 1 when they differ, 2 on usage or decode
// errors.
package main

import (
	"fmt"
	"os"

	"corral/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		if len(os.Args) != 3 {
			usage()
		}
		inspect(load(os.Args[2]))
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		a, b := load(os.Args[2]), load(os.Args[3])
		diffs := snapshot.Diff(a, b)
		if len(diffs) == 0 {
			fmt.Println("snapshots are identical")
			return
		}
		for _, d := range diffs {
			fmt.Println(d)
		}
		os.Exit(1)
	default:
		usage()
	}
}

func load(path string) *snapshot.Snapshot {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	s, err := snapshot.Decode(raw)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return s
}

func inspect(s *snapshot.Snapshot) {
	fmt.Printf("version:    %d\n", s.Version)
	fmt.Printf("captured:   event %d, t=%.3f s\n", s.Meta.EventIndex, s.Meta.SimTime)
	fmt.Printf("label:      %s\n", s.Meta.Label)
	fmt.Printf("scheduler:  %s (seed %d)\n", s.Spec.Scheduler, s.Spec.Seed)
	policy := s.Spec.Policy
	if policy == "" {
		policy = "default (grouped max-min)"
	}
	fmt.Printf("network:    %s\n", policy)
	t := s.Spec.Topology
	fmt.Printf("cluster:    %d racks x %d machines x %d slots\n",
		t.Racks, t.MachinesPerRack, t.SlotsPerMachine)
	fmt.Printf("jobs:       %d (planned assignments: %d)\n", len(s.Spec.Jobs), planned(s))
	fmt.Printf("faults:     %d machine, %d link, %d AM, %d corruption; task crash p=%.3f\n",
		len(s.Spec.Failures), len(s.Spec.LinkFaults), len(s.Spec.AMFailures),
		len(s.Spec.Corruptions), s.Spec.TaskFailureProb)

	st := &s.State
	fmt.Printf("state:      %d pending events, %d rng draws\n", len(st.DES.Pending), st.RNGDraws)
	submitted, done := 0, 0
	for _, j := range st.Runtime.Jobs {
		if j.Submitted {
			submitted++
		}
		if j.Completion >= 0 || j.Failed {
			done++
		}
	}
	fmt.Printf("jobs state: %d submitted, %d finished, %d in-flight attempts, %d replans\n",
		submitted, done, len(st.Runtime.Running), st.Runtime.Replans)
	if st.Net != nil {
		fmt.Printf("network:    %d flows (%d served), %.3g bytes total\n",
			len(st.Net.Flows), st.Net.FlowsServed, st.Net.TotalBytes)
	}
	if st.DFS != nil {
		fmt.Printf("dfs:        %d files, %d repairs recorded\n",
			len(st.DFS.Files), len(st.Runtime.Repairs))
	}
}

func planned(s *snapshot.Snapshot) int {
	if s.Spec.Plan == nil {
		return 0
	}
	return len(s.Spec.Plan.Assignments)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: corralsnap inspect FILE | corralsnap diff FILE1 FILE2")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corralsnap:", err)
	os.Exit(2)
}
