// Command workloadgen emits one of the paper's workloads as JSON, for use
// with corralplan or custom tooling. It can also emit a seeded chaos fault
// trace (transient machine failures + rack-uplink degradation windows) for
// the default cluster shape.
//
// Usage:
//
//	workloadgen -workload w1 -jobs 50 -scale 0.1 -window 600 > jobs.json
//	workloadgen -fault-trace -intensity 0.3 -horizon 600 > faults.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"corral"
)

func main() {
	var (
		name   = flag.String("workload", "w1", "workload: w1, w2, w3 or tpch")
		jobs   = flag.Int("jobs", 0, "job count (0 = workload default)")
		scale  = flag.Float64("scale", 1, "byte-size scale factor")
		seed   = flag.Int64("seed", 1, "random seed")
		window = flag.Float64("window", 0, "arrival window in seconds (0 = batch)")
		dbGB   = flag.Float64("tpch-db-gb", 200, "TPC-H database size in GB")

		trace     = flag.Bool("fault-trace", false, "emit a chaos fault trace instead of jobs")
		intensity = flag.Float64("intensity", 0.3, "fault trace: expected failures per machine over the horizon")
		horizon   = flag.Float64("horizon", 600, "fault trace: horizon in simulated seconds")
		racks     = flag.Int("racks", 0, "fault trace: rack count (0 = default cluster)")
		perRack   = flag.Int("machines-per-rack", 0, "fault trace: machines per rack (0 = default cluster)")
	)
	flag.Parse()

	if *trace {
		cluster := corral.DefaultCluster()
		if *racks > 0 {
			cluster.Racks = *racks
		}
		if *perRack > 0 {
			cluster.MachinesPerRack = *perRack
		}
		failures, faults := corral.GenChaosTrace(cluster, *seed, *intensity, *horizon)
		emit(struct {
			Failures   []corral.Failure
			LinkFaults []corral.LinkFault
		}{failures, faults})
		return
	}

	cfg := corral.WorkloadConfig{
		Seed: *seed, Jobs: *jobs, Scale: *scale, ArrivalWindow: *window,
	}
	var out []*corral.Job
	switch *name {
	case "w1":
		out = corral.W1(cfg)
	case "w2":
		out = corral.W2(cfg)
	case "w3":
		out = corral.W3(cfg)
	case "tpch":
		out = corral.TPCH(cfg, *dbGB*1e9)
	default:
		fmt.Fprintf(os.Stderr, "workloadgen: unknown workload %q\n", *name)
		os.Exit(1)
	}

	emit(out)
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}
