// Command workloadgen emits one of the paper's workloads as JSON, for use
// with corralplan or custom tooling.
//
// Usage:
//
//	workloadgen -workload w1 -jobs 50 -scale 0.1 -window 600 > jobs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"corral"
)

func main() {
	var (
		name   = flag.String("workload", "w1", "workload: w1, w2, w3 or tpch")
		jobs   = flag.Int("jobs", 0, "job count (0 = workload default)")
		scale  = flag.Float64("scale", 1, "byte-size scale factor")
		seed   = flag.Int64("seed", 1, "random seed")
		window = flag.Float64("window", 0, "arrival window in seconds (0 = batch)")
		dbGB   = flag.Float64("tpch-db-gb", 200, "TPC-H database size in GB")
	)
	flag.Parse()

	cfg := corral.WorkloadConfig{
		Seed: *seed, Jobs: *jobs, Scale: *scale, ArrivalWindow: *window,
	}
	var out []*corral.Job
	switch *name {
	case "w1":
		out = corral.W1(cfg)
	case "w2":
		out = corral.W2(cfg)
	case "w3":
		out = corral.W3(cfg)
	case "tpch":
		out = corral.TPCH(cfg, *dbGB*1e9)
	default:
		fmt.Fprintf(os.Stderr, "workloadgen: unknown workload %q\n", *name)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}
