// Command corralplan runs Corral's offline planner over a workload JSON
// (as produced by workloadgen) and prints the schedule: each job's rack
// set R_j, priority p_j, planned start and estimated latency.
//
// Usage:
//
//	workloadgen -workload w1 -jobs 20 -scale 0.1 | corralplan -racks 7 -machines 30
//	corralplan -in jobs.json -objective online -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"corral"
)

func main() {
	var (
		in       = flag.String("in", "-", "input workload JSON (\"-\" = stdin)")
		racks    = flag.Int("racks", 7, "number of racks")
		machines = flag.Int("machines", 30, "machines per rack")
		slots    = flag.Int("slots", 8, "slots per machine")
		nicGbps  = flag.Float64("nic-gbps", 10, "NIC bandwidth in Gbit/s")
		oversub  = flag.Float64("oversub", 5, "rack-to-core oversubscription")
		obj      = flag.String("objective", "batch", "batch (makespan) or online (avg completion)")
		asJSON   = flag.Bool("json", false, "emit the plan as JSON")
	)
	flag.Parse()

	jobs, err := readJobs(*in)
	if err != nil {
		fatal(err)
	}
	cluster := corral.ClusterConfig{
		Racks:            *racks,
		MachinesPerRack:  *machines,
		SlotsPerMachine:  *slots,
		NICBandwidth:     *nicGbps * 1e9 / 8,
		Oversubscription: *oversub,
	}
	if err := cluster.Validate(); err != nil {
		fatal(err)
	}

	var plan *corral.Plan
	switch *obj {
	case "batch":
		plan, err = corral.PlanBatch(cluster, jobs)
	case "online":
		plan, err = corral.PlanOnline(cluster, jobs)
	default:
		err = fmt.Errorf("unknown objective %q", *obj)
	}
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fatal(err)
		}
		return
	}

	assignments := make([]*corral.Assignment, 0, len(plan.Assignments))
	for _, a := range plan.Assignments {
		assignments = append(assignments, a)
	}
	sort.Slice(assignments, func(i, j int) bool {
		return assignments[i].Priority < assignments[j].Priority
	})
	fmt.Printf("%-6s %-4s %-16s %-10s %-10s\n", "job", "prio", "racks", "start", "est-latency")
	for _, a := range assignments {
		racksStr := ""
		for i, rk := range a.Racks {
			if i > 0 {
				racksStr += ","
			}
			racksStr += fmt.Sprintf("%d", rk)
		}
		fmt.Printf("%-6d %-4d %-16s %-10.1f %-10.1f\n",
			a.JobID, a.Priority, racksStr, a.Start, a.EstLatency)
	}
	fmt.Printf("\nestimated makespan: %.1f s\n", plan.Makespan)
	fmt.Printf("estimated avg completion: %.1f s\n", plan.AvgCompletion)
}

func readJobs(path string) ([]*corral.Job, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var jobs []*corral.Job
	if err := json.NewDecoder(r).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("decoding workload: %w", err)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corralplan:", err)
	os.Exit(1)
}
