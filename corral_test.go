package corral_test

import (
	"fmt"
	"testing"

	"corral"
)

func smallCluster() corral.ClusterConfig {
	c := corral.DefaultCluster()
	c.MachinesPerRack = 4
	c.SlotsPerMachine = 2
	c.Racks = 4
	return c
}

func smallWorkload(seed int64) []*corral.Job {
	return corral.W1(corral.WorkloadConfig{
		Seed: seed, Jobs: 9, Scale: 1.0 / 40, TaskScale: 1.0 / 40,
	})
}

func TestDefaultClusterIsPaper(t *testing.T) {
	c := corral.DefaultCluster()
	if c.Machines() != 210 {
		t.Fatalf("default cluster has %d machines, want 210", c.Machines())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanAndSimulateEndToEnd(t *testing.T) {
	cluster := smallCluster()
	jobs := smallWorkload(1)
	plan, err := corral.PlanBatch(cluster, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != len(jobs) {
		t.Fatalf("plan covers %d jobs, want %d", len(plan.Assignments), len(jobs))
	}
	res, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 1,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	lb := corral.BatchLowerBound(cluster, jobs)
	if lb <= 0 {
		t.Fatal("no lower bound")
	}
	if plan.Makespan < lb*(1-1e-9) {
		t.Fatalf("planned makespan %g below LP bound %g", plan.Makespan, lb)
	}
}

func TestSchedulerComparison(t *testing.T) {
	cluster := smallCluster()
	jobs := smallWorkload(2)
	plan, err := corral.PlanBatch(cluster, jobs)
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]*corral.Result{}
	for name, cfg := range map[string]corral.SimConfig{
		"yarn":   {Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 3},
		"corral": {Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 3},
	} {
		res, err := corral.Simulate(cfg, corral.CloneJobs(jobs))
		if err != nil {
			t.Fatal(err)
		}
		results[name] = res
	}
	if results["corral"].CrossRackBytes >= results["yarn"].CrossRackBytes {
		t.Fatalf("Corral cross-rack %g >= Yarn %g",
			results["corral"].CrossRackBytes, results["yarn"].CrossRackBytes)
	}
}

func TestOnlinePlanRespectsArrivals(t *testing.T) {
	cluster := smallCluster()
	jobs := corral.W1(corral.WorkloadConfig{
		Seed: 4, Jobs: 6, Scale: 1.0 / 40, TaskScale: 1.0 / 40, ArrivalWindow: 100,
	})
	plan, err := corral.PlanOnline(cluster, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if a := plan.Assignments[j.ID]; a.Start < j.Arrival-1e-9 {
			t.Fatalf("job %d planned before arrival", j.ID)
		}
	}
	if lb := corral.OnlineLowerBound(cluster, jobs); lb <= 0 || lb > plan.AvgCompletion*(1+1e-9) {
		t.Fatalf("online bound %g vs heuristic %g", lb, plan.AvgCompletion)
	}
}

func TestLatencyModel(t *testing.T) {
	m := corral.NewLatencyModel(corral.DefaultCluster())
	j := corral.NewMapReduce(1, "probe", corral.Profile{
		InputBytes: 10e9, ShuffleBytes: 10e9, OutputBytes: 1e9,
		MapTasks: 40, ReduceTasks: 20, MapRate: 1e8, ReduceRate: 1e8,
	})
	resp := m.Response(j, m.DefaultAlpha())
	if resp.Racks() != 7 {
		t.Fatalf("response domain %d, want 7", resp.Racks())
	}
	if best := resp.ArgMin(); best < 1 || best > 7 {
		t.Fatalf("ArgMin = %d", best)
	}
}

func TestVarysPolicyAvailable(t *testing.T) {
	cluster := smallCluster()
	jobs := smallWorkload(5)
	res, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS,
		Network: corral.VarysCoflow(), Seed: 5,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("Varys run produced nothing")
	}
}

func TestExperimentRegistryViaAPI(t *testing.T) {
	list := corral.Experiments()
	if len(list) < 20 {
		t.Fatalf("%d experiments, want >= 20", len(list))
	}
	r, err := corral.RunExperiment("table1", corral.SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) == 0 {
		t.Fatal("experiment produced no values")
	}
	if _, err := corral.RunExperiment("bogus", corral.SizeSmall, 1); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestMarkAdHocViaAPI(t *testing.T) {
	jobs := corral.MarkAdHoc(smallWorkload(6))
	for _, j := range jobs {
		if !j.AdHoc {
			t.Fatal("MarkAdHoc did not mark")
		}
	}
}

func TestTPCHViaAPI(t *testing.T) {
	qs := corral.TPCH(corral.WorkloadConfig{Seed: 7, Jobs: 3, Scale: 0.01}, 0)
	if len(qs) != 3 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if !q.IsDAG() {
			t.Fatal("TPCH query is not a DAG")
		}
	}
}

// ExamplePlanBatch demonstrates the quickstart flow.
func ExamplePlanBatch() {
	cluster := corral.ClusterConfig{
		Racks: 2, MachinesPerRack: 2, SlotsPerMachine: 2,
		NICBandwidth: 10e9 / 8, Oversubscription: 5,
	}
	jobs := []*corral.Job{
		corral.NewMapReduce(1, "logs-a", corral.Profile{
			InputBytes: 1e9, ShuffleBytes: 2e9, OutputBytes: 1e8,
			MapTasks: 4, ReduceTasks: 4, MapRate: 2e8, ReduceRate: 2e8,
		}),
		corral.NewMapReduce(2, "logs-b", corral.Profile{
			InputBytes: 1e9, ShuffleBytes: 2e9, OutputBytes: 1e8,
			MapTasks: 4, ReduceTasks: 4, MapRate: 2e8, ReduceRate: 2e8,
		}),
	}
	plan, err := corral.PlanBatch(cluster, jobs)
	if err != nil {
		panic(err)
	}
	a, b := plan.Assignments[1], plan.Assignments[2]
	fmt.Println("jobs isolated:", len(a.Racks) == 1 && len(b.Racks) == 1 && a.Racks[0] != b.Racks[0])
	// Output: jobs isolated: true
}
