// Package corral is a from-scratch reproduction of "Network-Aware
// Scheduling for Data-Parallel Jobs: Plan When You Can" (Jalaparti et al.,
// SIGCOMM 2015) — the Corral scheduling framework — together with every
// substrate its evaluation needs: a discrete-event cluster simulator with
// a flow-level network model (max-min fair "TCP" and a Varys-style coflow
// scheduler), an HDFS-like replicated block store, a YARN-like capacity
// scheduler with delay scheduling, the ShuffleWatcher and LocalShuffle
// baselines, the paper's workload generators, the LP relaxation lower
// bound, and a harness regenerating every table and figure.
//
// # Quick start
//
//	cluster := corral.DefaultCluster()
//	jobs := corral.W1(corral.WorkloadConfig{Seed: 1, Jobs: 20, Scale: 0.05})
//	plan, _ := corral.PlanBatch(cluster, jobs)
//	res, _ := corral.Simulate(corral.SimConfig{
//		Cluster:   cluster,
//		Scheduler: corral.SchedulerCorral,
//		Plan:      plan,
//	}, jobs)
//	fmt.Println(res.Makespan)
//
// See the examples/ directory for runnable programs and cmd/corralsim for
// the experiment harness.
package corral

import (
	"corral/internal/experiments"
	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/lp"
	"corral/internal/model"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/topology"
	"corral/internal/trace"
	"corral/internal/workload"
)

// ClusterConfig describes the simulated cluster: racks, machines, slots,
// NIC bandwidth (bytes/sec), rack-to-core oversubscription and background
// core traffic.
type ClusterConfig = topology.Config

// DefaultCluster returns the paper's evaluation cluster: 7 racks x 30
// machines, 8 slots each, 10 Gbps NICs at 5:1 oversubscription.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  8,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}
}

// Job is a (possibly DAG-structured) data-parallel job.
type Job = job.Job

// Profile is the per-stage 5-tuple ⟨D^I, D^S, D^O, N^M, N^R⟩ plus task
// processing rates (§4.3).
type Profile = job.Profile

// Stage is one vertex of a job DAG.
type Stage = job.Stage

// NewMapReduce builds a single-stage MapReduce job.
func NewMapReduce(id int, name string, p Profile) *Job {
	return job.MapReduce(id, name, p)
}

// Plan is the offline planner's output: {R_j, p_j, T_j} per job.
type Plan = planner.Plan

// Assignment is one job's planned rack set, priority and start time.
type Assignment = planner.Assignment

// PlanBatch runs Corral's offline planner minimizing makespan (§4.1 batch
// scenario) with the paper's default data-imbalance penalty. Ad-hoc jobs
// in the list are skipped — the planner cannot see them (§3.1); they run
// on otherwise-idle resources at execution time.
func PlanBatch(cluster ClusterConfig, jobs []*Job) (*Plan, error) {
	return planner.New(planner.Input{
		Cluster:   model.FromTopology(cluster),
		Jobs:      plannable(jobs),
		Alpha:     -1,
		Objective: planner.MinimizeMakespan,
	})
}

// PlanOnline runs the offline planner minimizing average completion time
// (§4.1 online scenario; jobs carry arrival times). Ad-hoc jobs are
// skipped, as in PlanBatch.
func PlanOnline(cluster ClusterConfig, jobs []*Job) (*Plan, error) {
	return planner.New(planner.Input{
		Cluster:   model.FromTopology(cluster),
		Jobs:      plannable(jobs),
		Alpha:     -1,
		Objective: planner.MinimizeAvgCompletion,
	})
}

func plannable(jobs []*Job) []*Job {
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if !j.AdHoc {
			out = append(out, j)
		}
	}
	return out
}

// Scheduler selects the cluster scheduling policy.
type Scheduler = runtime.Kind

// The four evaluated schedulers (§6.1).
const (
	SchedulerYarnCS         = runtime.YarnCS
	SchedulerCorral         = runtime.Corral
	SchedulerLocalShuffle   = runtime.LocalShuffle
	SchedulerShuffleWatcher = runtime.ShuffleWatcher
)

// FlowPolicy allocates link bandwidth among flows.
type FlowPolicy = netsim.Policy

// TCP returns the reference max-min fair sharing policy (the TCP
// emulation). It is stateless and may be shared across simulations.
// SimConfig.Network == nil selects TCPIncremental instead, which computes
// bit-identical rates faster.
func TCP() FlowPolicy { return netsim.MaxMinFair{} }

// TCPGrouped returns the grouped max-min allocator: bit-identical rates to
// TCP, computed over path equivalence classes instead of individual flows
// (an order of magnitude faster at 10k flows). The returned policy carries
// reusable scratch state — use a fresh instance per concurrently running
// simulation.
func TCPGrouped() FlowPolicy { return netsim.NewGroupedMaxMin() }

// TCPIncremental returns the incremental max-min allocator: bit-identical
// rates to TCP and TCPGrouped, but on each recompute it re-waterfills only
// the connected components of the link–flow graph whose membership or
// capacity changed since the previous allocation, falling back to a full
// grouped pass when too much of the graph is dirty. The returned policy
// carries reusable scratch state — use a fresh instance per concurrently
// running simulation. This is the default when SimConfig.Network is nil.
func TCPIncremental() FlowPolicy { return netsim.NewIncrementalMaxMin() }

// VarysCoflow returns the Varys-style coflow scheduler (SEBF + MADD with
// work-conserving backfill), used in the Fig 14 comparison.
func VarysCoflow() FlowPolicy { return netsim.Varys{} }

// SimConfig configures one simulated execution.
type SimConfig struct {
	Cluster   ClusterConfig
	Scheduler Scheduler
	// Plan is required for SchedulerCorral and SchedulerLocalShuffle.
	Plan *Plan
	// Network selects the flow-level policy; nil means TCPIncremental
	// (max-min fair rates, incrementally recomputed).
	Network FlowPolicy
	// FlowEpoch > 0 batches flow-rate recomputations to multiples of this
	// many simulated seconds: flow starts and cancellations within an epoch
	// share one recompute at the epoch boundary (completions stay exact).
	// Zero recomputes at every change, the exact legacy behavior.
	FlowEpoch float64
	// Seed drives data placement and other randomized choices.
	Seed int64
	// FailedMachines are unreachable from time zero (§3.1 failure
	// handling: Corral drops a job's placement constraints when a majority
	// of its racks' machines are dead).
	FailedMachines []int
	// Failures kills machines at points in simulated time; their running
	// tasks are re-executed elsewhere. A Failure with Downtime > 0 is
	// transient: the machine recovers and rejoins the slot pool and DFS
	// replica set.
	Failures []Failure
	// LinkFaults fail or scale rack uplinks at points in simulated time;
	// in-flight flows re-share via the max-min recompute (flows crossing a
	// fully failed link park until capacity is restored).
	LinkFaults []LinkFault
	// ReplanOnFailure re-invokes the offline planner when a fault breaks a
	// planned job's rack set (rack-majority loss or uplink failure), with
	// commitments for unaffected jobs — instead of only dropping the
	// affected job's constraints.
	ReplanOnFailure bool
	// DisableReReplication turns off the DFS repair daemon that re-creates
	// under-replicated blocks on surviving machines after a failure.
	DisableReReplication bool
	// StragglerFraction/StragglerSlowdown inject task outliers (§3.3);
	// Speculation enables the speculative re-execution watchdog.
	StragglerFraction float64
	StragglerSlowdown float64
	Speculation       bool
	// RemoteStorageInput reads job input from a separate storage cluster
	// over Cluster.RemoteStorageBandwidth (§7 "Remote storage").
	RemoteStorageInput bool
	// InMemoryInput models Spark-like in-memory data: no replicated output
	// writes, network-bound shuffles remain (§7 "In-memory systems").
	InMemoryInput bool
	// TaskFailureProb crashes each task attempt with this probability;
	// crashed attempts retry with exponential backoff up to
	// MaxTaskAttempts (default 4, YARN's mapreduce.map.maxattempts),
	// after which the job fails terminally. Machines accumulating
	// BlacklistThreshold failed attempts (default 3; negative disables)
	// are blacklisted out of the slot pool for BlacklistCooldown seconds.
	TaskFailureProb    float64
	MaxTaskAttempts    int
	RetryBackoff       float64
	BlacklistThreshold int
	BlacklistCooldown  float64
	// AMFailures kill jobs' application masters at points in simulated
	// time. A restarted job attempt (capped at MaxAMAttempts, default 2)
	// reuses completed map outputs surviving on live machines and keeps
	// its planned rack set.
	AMFailures     []AMFailure
	MaxAMAttempts  int
	AMRestartDelay float64
	// Corruptions silently corrupt one DFS replica on a machine at a
	// point in simulated time; reads checksum-detect corruption, fail
	// over to the next-closest clean replica and enqueue the bad replica
	// for re-replication.
	Corruptions []Corruption
	// PlannerBudget is the planning deadline in simulated seconds. When
	// > 0, every failure-triggered replan is charged a deterministic cost
	// (a function of jobs x racks x stages) and takes effect only after
	// that latency; plans whose cost exceeds the budget degrade down the
	// fallback chain full plan -> commitments-only incremental replan ->
	// greedy unconstrained placement. Zero keeps planning instantaneous
	// (the legacy behavior); Result.Degradations counts the tiers taken.
	PlannerBudget float64
	// ReplanWindow enables replan-storm suppression: each debounce window
	// of this many simulated seconds allows MaxReplansPerWindow immediate
	// replans (default 1), coalesces the rest into one replan at the
	// window's end, and stretches subsequent windows exponentially (up to
	// 8x) while storms persist. Zero disables suppression.
	ReplanWindow        float64
	MaxReplansPerWindow int
	// AdmissionLimit bounds how many jobs run concurrently: excess
	// arrivals park in a FIFO admission queue of AdmissionQueueCap entries
	// (default 4x the limit) and are deterministically shed beyond it.
	// Zero admits everything immediately (the legacy behavior).
	AdmissionLimit    int
	AdmissionQueueCap int
	// Probe receives runtime lifecycle events (task attempts, machine
	// state, AM restarts, job terminality); attach an InvariantMonitor to
	// check the run. Nil disables probing.
	Probe InvariantProbe
	// Trace, if set, receives the run's deterministic simulation-time event
	// stream. When nil, the simulation asks the installed process-wide
	// TraceCollector for a run tracer; with no collector installed either,
	// tracing is disabled at zero cost.
	Trace *Tracer
}

// Failure kills one machine at a point in simulated time; Downtime > 0
// makes it transient.
type Failure = runtime.Failure

// LinkFault fails or rescales one rack's uplink/downlink pair at a point
// in simulated time (Factor 0 = outage, 1 = full capacity).
type LinkFault = runtime.LinkFault

// AMFailure kills one job's application master at a point in simulated
// time.
type AMFailure = runtime.AMFailure

// Corruption silently corrupts one DFS replica on a machine at a point
// in simulated time.
type Corruption = runtime.Corruption

// InvariantProbe receives runtime lifecycle events; InvariantEvent is
// one such event.
type (
	InvariantProbe = invariants.Probe
	InvariantEvent = invariants.Event
)

// InvariantMonitor checks runtime lifecycle invariants (slot
// conservation, no attempts on dead or blacklisted machines, job
// terminality, feasible link rates, DFS byte accounting) as a run
// streams events into it.
type InvariantMonitor = invariants.Monitor

// NewInvariantMonitor builds a monitor for a cluster of the given shape;
// pass it as SimConfig.Probe and inspect Violations afterwards.
func NewInvariantMonitor(cluster ClusterConfig) *InvariantMonitor {
	return invariants.NewMonitor(cluster.Machines(), cluster.SlotsPerMachine)
}

// Result is a simulation outcome.
type Result = runtime.Result

// JobResult is one job's outcome within a Result.
type JobResult = runtime.JobResult

// Simulate executes the jobs on the simulated cluster and returns per-job
// and aggregate metrics.
func Simulate(cfg SimConfig, jobs []*Job) (*Result, error) {
	return runtime.Run(simOptions(cfg), jobs)
}

func simOptions(cfg SimConfig) runtime.Options {
	return runtime.Options{
		Topology:             cfg.Cluster,
		Scheduler:            cfg.Scheduler,
		Plan:                 cfg.Plan,
		Network:              cfg.Network,
		FlowEpoch:            cfg.FlowEpoch,
		Seed:                 cfg.Seed,
		FailedMachines:       cfg.FailedMachines,
		Failures:             cfg.Failures,
		LinkFaults:           cfg.LinkFaults,
		ReplanOnFailure:      cfg.ReplanOnFailure,
		DisableReReplication: cfg.DisableReReplication,
		StragglerFraction:    cfg.StragglerFraction,
		StragglerSlowdown:    cfg.StragglerSlowdown,
		Speculation:          cfg.Speculation,
		RemoteStorageInput:   cfg.RemoteStorageInput,
		InMemoryInput:        cfg.InMemoryInput,
		TaskFailureProb:      cfg.TaskFailureProb,
		MaxTaskAttempts:      cfg.MaxTaskAttempts,
		RetryBackoff:         cfg.RetryBackoff,
		BlacklistThreshold:   cfg.BlacklistThreshold,
		BlacklistCooldown:    cfg.BlacklistCooldown,
		AMFailures:           cfg.AMFailures,
		MaxAMAttempts:        cfg.MaxAMAttempts,
		AMRestartDelay:       cfg.AMRestartDelay,
		Corruptions:          cfg.Corruptions,
		PlannerBudget:        cfg.PlannerBudget,
		ReplanWindow:         cfg.ReplanWindow,
		MaxReplansPerWindow:  cfg.MaxReplansPerWindow,
		AdmissionLimit:       cfg.AdmissionLimit,
		AdmissionQueueCap:    cfg.AdmissionQueueCap,
		Probe:                cfg.Probe,
		Trace:                cfg.Trace,
	}
}

// Snapshot is a versioned, deterministic serialization of a complete
// mid-flight simulation: the full run input (Spec), the capture point
// (Meta) and a deep export of all observable state (State). See
// internal/snapshot for the schema and restore-audit contract.
type Snapshot = snapshot.Snapshot

// CheckpointTarget names a point to snapshot at: after EventIndex fired
// events (when > 0), otherwise at the first event boundary reaching
// SimTime.
type CheckpointTarget = runtime.CheckpointTarget

// ResumeOptions reattaches the observer hooks (invariant probe, tracer,
// repair callback) that a snapshot deliberately excludes.
type ResumeOptions = runtime.ResumeOptions

// SimulateWithSnapshots runs like Simulate but captures a snapshot at each
// target, passing it to fn between event firings; fn returning false
// stops the simulation immediately. Targets the run never reaches make
// the result come back with an error naming them.
func SimulateWithSnapshots(cfg SimConfig, jobs []*Job, targets []CheckpointTarget, fn func(*Snapshot) bool) (*Result, error) {
	return runtime.RunWithSnapshots(simOptions(cfg), jobs, targets, fn)
}

// CaptureSnapshot runs the simulation until the target and returns the
// snapshot captured there, tearing the run down immediately after.
func CaptureSnapshot(cfg SimConfig, jobs []*Job, target CheckpointTarget) (*Snapshot, error) {
	return runtime.CaptureAt(simOptions(cfg), jobs, target)
}

// ResumeSnapshot reconstitutes a snapshotted run and continues it to
// completion. The runtime is rebuilt from the snapshot's Spec,
// deterministically replayed to the capture point, audited field-by-field
// against the snapshot's State (any mismatch is a hard error and an
// invariant violation), and then run to the end. A resumed run's Result
// and trace are bit-identical to the uninterrupted run's.
func ResumeSnapshot(snap *Snapshot, ro ResumeOptions) (*Result, error) {
	return runtime.Resume(snap, ro)
}

// EncodeSnapshot serializes a snapshot to its canonical, checksummed byte
// form; equal snapshots encode to equal bytes.
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return snapshot.Encode(s) }

// DecodeSnapshot parses a snapshot, rejecting unknown versions, corrupted
// sections and schema drift with a clear error — never a partial restore.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return snapshot.Decode(data) }

// DiffSnapshots returns human-readable field paths differing between two
// snapshots (empty when identical).
func DiffSnapshots(a, b *Snapshot) []string { return snapshot.Diff(a, b) }

// Tracer records one run's deterministic simulation-time event stream
// (task lifecycle, machine state, flows, link utilization, DFS activity,
// planner decisions). A nil *Tracer is valid everywhere and disables
// tracing at zero cost.
type Tracer = trace.Tracer

// TraceCollector aggregates the tracers of every run in a process and
// exports them — in an order independent of execution interleaving — as
// flat JSONL (WriteJSONL) or Chrome trace-event JSON loadable in Perfetto
// (WriteChrome).
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty collector; register runs with NewRun
// or install it process-wide with InstallTraceCollector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// InstallTraceCollector makes c the process-wide collector that Simulate,
// PlanBatch, PlanOnline and Replan register their runs with when no
// explicit Tracer is configured. Install(nil) disables implicit tracing
// again.
func InstallTraceCollector(c *TraceCollector) { trace.Install(c) }

// Commitment reserves racks until an expected completion time during a
// replan (§3.1 periodic replanning).
type Commitment = planner.Commitment

// Replan reruns the offline planner at time now for pending jobs while
// honoring commitments from in-flight work (§3.1: "the offline planner
// will periodically receive updated estimates ... and update the
// guidelines"). Objective: average completion time.
func Replan(cluster ClusterConfig, jobs []*Job, now float64, commitments []Commitment) (*Plan, error) {
	return planner.Replan(planner.Input{
		Cluster:   model.FromTopology(cluster),
		Jobs:      plannable(jobs),
		Alpha:     -1,
		Objective: planner.MinimizeAvgCompletion,
	}, now, commitments)
}

// MergePlans overlays a replan onto an existing plan; see planner.MergePlans.
func MergePlans(prev, next *Plan) *Plan { return planner.MergePlans(prev, next) }

// WorkloadConfig parameterises the workload generators.
type WorkloadConfig = workload.Config

// W1 generates the Quantcast-derived workload (§6.1).
func W1(cfg WorkloadConfig) []*Job { return workload.W1(cfg) }

// W2 generates the SWIM/Yahoo-derived skewed workload (§6.1).
func W2(cfg WorkloadConfig) []*Job { return workload.W2(cfg) }

// W3 generates the Microsoft Cosmos-derived workload (Table 1).
func W3(cfg WorkloadConfig) []*Job { return workload.W3(cfg) }

// TPCH generates Hive-style TPC-H DAG queries over a database of dbBytes
// (0 selects 200 GB, §6.3).
func TPCH(cfg WorkloadConfig, dbBytes float64) []*Job {
	return workload.TPCH(cfg, dbBytes)
}

// CloneJobs deep-copies a job list.
func CloneJobs(jobs []*Job) []*Job { return workload.Clone(jobs) }

// MarkAdHoc flags jobs as unplannable ad-hoc work (§6.4).
func MarkAdHoc(jobs []*Job) []*Job { return workload.MarkAdHoc(jobs) }

// LatencyModel exposes the §4.3 response functions for a cluster.
type LatencyModel = model.Cluster

// NewLatencyModel derives the analytic latency model from a cluster
// config.
func NewLatencyModel(cluster ClusterConfig) LatencyModel {
	return model.FromTopology(cluster)
}

// BatchLowerBound returns the exact LP-Batch relaxation optimum (Appendix
// A): a makespan no rack-granular schedule can beat.
func BatchLowerBound(cluster ClusterConfig, jobs []*Job) float64 {
	return lp.BatchLowerBound(model.FromTopology(cluster), jobs, -1)
}

// OnlineLowerBound returns a lower bound on average completion time for
// the online scenario.
func OnlineLowerBound(cluster ClusterConfig, jobs []*Job) float64 {
	return lp.OnlineLowerBound(model.FromTopology(cluster), jobs, -1)
}

// ExperimentSize selects the scale of a reproduction experiment.
type ExperimentSize = experiments.Size

// Experiment scales: small (tests), medium (default), large (closest to
// the paper's job counts).
const (
	SizeSmall  = experiments.SizeS
	SizeMedium = experiments.SizeM
	SizeLarge  = experiments.SizeL
)

// ExperimentReport holds an experiment's tables and key numeric outcomes.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one of the paper's tables or figures by ID
// (e.g. "fig6", "table1"; see Experiments for the full list).
func RunExperiment(id string, size ExperimentSize, seed int64) (*ExperimentReport, error) {
	f, ok := experiments.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return f(experiments.Params{Size: size, Seed: seed})
}

// Experiments lists the available experiment IDs and descriptions in the
// paper's order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{ID: e.ID, Description: e.Desc})
	}
	return out
}

// ExperimentInfo names one reproducible table or figure.
type ExperimentInfo struct {
	ID          string
	Description string
}

// ChaosParams configures a chaos sweep; ChaosReport is its outcome.
type (
	ChaosParams = experiments.ChaosParams
	ChaosReport = experiments.ChaosReport
	ChaosRun    = experiments.ChaosRun
)

// GenChaosTrace builds a seeded fault trace — transient machine failures
// plus rack-uplink degradation windows — for the given cluster. The trace
// is a pure function of the arguments and never removes capacity
// permanently: every uplink fault is paired with a restore, every machine
// failure with a recovery.
func GenChaosTrace(cluster ClusterConfig, seed int64, intensity, horizon float64) ([]Failure, []LinkFault) {
	return experiments.GenChaosTrace(cluster, seed, intensity, horizon)
}

// RunChaos replays seeded fault traces of increasing intensity against
// the online W1 workload under Yarn-CS, constraint-drop-only Corral, and
// Corral with failure-triggered replanning.
func RunChaos(p ChaosParams) (*ChaosReport, error) { return experiments.RunChaos(p) }

// RunChaosExperiment renders a chaos sweep as an ExperimentReport; nil or
// empty intensities select the bundled default sweep.
func RunChaosExperiment(size ExperimentSize, seed int64, intensities []float64) (*ExperimentReport, error) {
	if len(intensities) == 0 {
		intensities = experiments.DefaultChaosIntensities
	}
	return experiments.ChaosWithIntensities(experiments.Params{Size: size, Seed: seed}, intensities)
}

// FuzzParams configures a corralcheck sweep; FuzzReport is its outcome.
type (
	FuzzParams = experiments.FuzzParams
	FuzzReport = experiments.FuzzReport
)

// RunFuzz executes the corralcheck property fuzzer: seeded randomized
// workload + fault traces (machine failures, uplink degradation, task
// crashes, AM kills, DFS corruption) replayed under Yarn-CS,
// constraint-drop Corral and replanning Corral with the invariant
// monitor attached. The report is a pure function of the params.
func RunFuzz(p FuzzParams) (*FuzzReport, error) { return experiments.RunFuzz(p) }

// RunFuzzExperiment renders a corralcheck sweep as an ExperimentReport;
// traces <= 0 selects the bundled default trace count.
func RunFuzzExperiment(size ExperimentSize, seed int64, traces int) (*ExperimentReport, error) {
	if traces <= 0 {
		traces = experiments.DefaultFuzzTraces
	}
	return experiments.FuzzWithTraces(experiments.Params{Size: size, Seed: seed}, traces)
}

// OverloadParams configures an overload sweep; OverloadReport is its
// outcome and OverloadRun one arrival rate's row.
type (
	OverloadParams = experiments.OverloadParams
	OverloadReport = experiments.OverloadReport
	OverloadRun    = experiments.OverloadRun
)

// Degradations counts which planner-fallback tiers a budgeted run took
// (full plan / incremental replan / greedy placement).
type Degradations = runtime.Degradations

// RunOverload sweeps arrival rates past saturation under a fault storm,
// comparing Yarn-CS, unhardened replanning Corral (with the replan-rate
// invariant armed) and budgeted Corral with storm suppression and
// admission control.
func RunOverload(p OverloadParams) (*OverloadReport, error) {
	return experiments.RunOverload(p)
}

// RunOverloadExperiment renders an overload sweep as an ExperimentReport;
// nil or empty rates select the bundled default sweep.
func RunOverloadExperiment(size ExperimentSize, seed int64, rates []float64) (*ExperimentReport, error) {
	return experiments.OverloadWithRates(experiments.Params{Size: size, Seed: seed}, rates)
}

// RunOverloadSweep renders an overload sweep with full knob control —
// arrival rates, planner budget, replan window and admission limit (the
// corralsim overload flags). Zero knob values keep the bundled defaults.
func RunOverloadSweep(p OverloadParams) (*ExperimentReport, error) {
	return experiments.OverloadSweep(p)
}

// RunScaleExperiment renders the datacenter-scale fast-path sweep as an
// ExperimentReport (the corralsim -exp scale / -machines path). Each cell
// in machines is a synthetic cluster of that many machines (40 per rack)
// streaming an online W1 window under Corral, reporting wall-clock, heap
// allocations and events/sec alongside the semantic Result metrics, and
// re-verifying determinism and snapshot/resume equivalence at that scale.
// nil machines selects the Size's ladder (s: 2k; m: 2k/5k; l: 2k/5k/10k).
func RunScaleExperiment(size ExperimentSize, seed int64, machines []int) (*ExperimentReport, error) {
	return experiments.ScaleWithMachines(experiments.Params{Size: size, Seed: seed}, machines)
}

// PlannerCostFull returns the simulated latency charged for a full
// two-phase plan over jobs jobs, racks racks and stages total stages —
// the deterministic cost model SimConfig.PlannerBudget is compared
// against when choosing a fallback tier. Use it to size budgets.
func PlannerCostFull(jobs, racks, stages int) float64 {
	return planner.CostFull(jobs, racks, stages)
}

// PlannerCostIncremental returns the simulated latency charged for a
// commitments-only incremental replan (the middle fallback tier).
func PlannerCostIncremental(jobs, racks, stages int) float64 {
	return planner.CostIncremental(jobs, racks, stages)
}

// ResumeParams configures a crash-resume equivalence sweep; ResumeReport
// is its outcome.
type (
	ResumeParams = experiments.ResumeParams
	ResumeReport = experiments.ResumeReport
)

// RunResumeEquivalence runs the crash-resume equivalence sweep for one
// seed: a fault-heavy monitored baseline is snapshotted at random
// mid-flight event indices, each captured run is torn down, restored from
// the serialized snapshot bytes, run to completion, and required to
// finish with a bit-identical Result and trace export.
func RunResumeEquivalence(p ResumeParams) (*ResumeReport, error) {
	return experiments.RunResumeEquivalence(p)
}

// CaptureScenarioSnapshot captures the crash-resume scenario run for
// (size, seed) — the corral-replan fuzz configuration — at the given
// target. This is what corralsim -snapshot-at writes and what the
// canned corpus under internal/experiments/testdata is built from.
func CaptureScenarioSnapshot(size ExperimentSize, seed int64, target CheckpointTarget) (*Snapshot, error) {
	return experiments.ScenarioSnapshot(size, seed, target)
}

// SetSweepWorkers bounds the worker pool experiment sweeps (chaos
// intensities, fuzz traces, sensitivity points, ablation cells) fan out
// over. n <= 0 restores the default (GOMAXPROCS); 1 forces serial
// execution. The worker count changes wall-clock time only — sweep results
// are bit-identical for any value.
func SetSweepWorkers(n int) { experiments.SetSweepWorkers(n) }

// UnknownExperimentError reports an unrecognized experiment ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "corral: unknown experiment " + e.ID
}
