module corral

go 1.22
