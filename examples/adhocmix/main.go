// Ad-hoc mix (§6.4): schedule recurring jobs with Corral while unplanned
// ad-hoc jobs share the cluster, and show that *both* groups finish
// faster — the recurring jobs free core bandwidth the ad-hoc jobs then
// use. Also demonstrates the §3.1 failure fallback: with most machines of
// a job's planned racks dead, Corral releases the placement constraints.
//
//	go run ./examples/adhocmix
package main

import (
	"fmt"
	"log"

	"corral"
)

func main() {
	cluster := corral.ClusterConfig{
		Racks:            5,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}
	// Background transfers consume half the core bandwidth (§6.1).
	cluster.BackgroundPerRack = 0.5 * cluster.RackUplinkCapacity()

	build := func() []*corral.Job {
		recurring := corral.W1(corral.WorkloadConfig{
			Seed: 21, Jobs: 14, Scale: 1.0 / 16, TaskScale: 1.0 / 16,
			ArrivalWindow: 60,
		})
		adhoc := corral.MarkAdHoc(corral.W1(corral.WorkloadConfig{
			Seed: 22, Jobs: 7, Scale: 1.0 / 16, TaskScale: 1.0 / 16,
		}))
		for i, j := range adhoc {
			j.ID = len(recurring) + 1 + i
		}
		return append(recurring, adhoc...)
	}

	group := func(res *corral.Result, adhoc bool) (mean float64, n int) {
		for i := range res.Jobs {
			if res.Jobs[i].AdHoc == adhoc {
				mean += res.Jobs[i].CompletionTime
				n++
			}
		}
		return mean / float64(n), n
	}

	yarn, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 9,
	}, build())
	if err != nil {
		log.Fatal(err)
	}
	jobs := build()
	plan, err := corral.PlanOnline(cluster, jobs)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 9,
	}, jobs)
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range []struct {
		name  string
		adhoc bool
	}{{"recurring", false}, {"ad-hoc", true}} {
		ym, n := group(yarn, g.adhoc)
		cm, _ := group(cres, g.adhoc)
		fmt.Printf("%-10s (%2d jobs): mean completion yarn-cs %6.1fs -> corral %6.1fs\n",
			g.name, n, ym, cm)
	}

	// Failure handling: kill 3 of 4 machines in rack 0 and rerun. Jobs
	// planned onto rack 0 fall back to unconstrained placement and still
	// finish.
	failed := []int{0, 1, 2}
	fres, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan,
		Seed: 9, FailedMachines: failed,
	}, build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith machines %v dead: all %d jobs still completed (makespan %.1fs)\n",
		failed, len(fres.Jobs), fres.Makespan)
}
