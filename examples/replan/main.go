// Periodic replanning (§3.1): the planner "periodically receives updated
// estimates of future workload, reruns the planning problem, and updates
// the guidelines". Here a second wave of jobs becomes known only at t=60s;
// the replan schedules it around commitments from the still-running first
// wave, and the merged plan drives one simulation.
//
//	go run ./examples/replan
package main

import (
	"fmt"
	"log"
	"sort"

	"corral"
)

func main() {
	cluster := corral.ClusterConfig{
		Racks:            5,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}
	cluster.BackgroundPerRack = 0.5 * cluster.RackUplinkCapacity()

	wave1 := corral.W1(corral.WorkloadConfig{
		Seed: 31, Jobs: 8, Scale: 1.0 / 20, TaskScale: 1.0 / 20,
	})
	wave2 := corral.W1(corral.WorkloadConfig{
		Seed: 32, Jobs: 8, Scale: 1.0 / 20, TaskScale: 1.0 / 20,
	})
	const wave2At = 60.0
	for i, j := range wave2 {
		j.ID = len(wave1) + 1 + i
		j.Arrival = wave2At
	}

	// Plan wave 1 alone — wave 2 is not known yet.
	plan1, err := corral.PlanOnline(cluster, wave1)
	if err != nil {
		log.Fatal(err)
	}

	// At t=60 the second wave's estimates arrive. Jobs from wave 1 that
	// are expected to still be running hold their racks as commitments
	// (sorted by job ID: Assignments is a map, and commitment order must
	// not depend on its random iteration order).
	ids := make([]int, 0, len(plan1.Assignments))
	for id := range plan1.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var commitments []corral.Commitment
	for _, id := range ids {
		if a := plan1.Assignments[id]; a.End() > wave2At {
			commitments = append(commitments, corral.Commitment{Racks: a.Racks, Until: a.End()})
		}
	}
	plan2, err := corral.Replan(cluster, wave2, wave2At, commitments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replanned wave 2 around %d commitments:\n", len(commitments))
	for _, j := range wave2 {
		a := plan2.Assignments[j.ID]
		fmt.Printf("  job %-2d -> racks %v, planned start %.1fs\n", j.ID, a.Racks, a.Start)
	}

	merged := corral.MergePlans(plan1, plan2)
	all := append(corral.CloneJobs(wave1), corral.CloneJobs(wave2)...)

	corralRes, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: merged, Seed: 31,
	}, corral.CloneJobs(all))
	if err != nil {
		log.Fatal(err)
	}
	yarnRes, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 31,
	}, corral.CloneJobs(all))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navg completion: yarn-cs %.1fs -> corral (replanned) %.1fs\n",
		yarnRes.AvgCompletionTime(), corralRes.AvgCompletionTime())
	fmt.Printf("cross-rack traffic: %.1f GB -> %.1f GB\n",
		yarnRes.CrossRackBytes/1e9, corralRes.CrossRackBytes/1e9)
}
