// Quickstart: plan a small batch of shuffle-heavy MapReduce jobs with
// Corral's offline planner and compare the simulated execution against
// YARN's capacity scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"corral"
)

func main() {
	// A small cluster: 4 racks x 4 machines, 10 Gbps NICs, 5:1
	// oversubscription to the core — full bisection bandwidth inside each
	// rack, a congested core between racks.
	cluster := corral.ClusterConfig{
		Racks:            4,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}

	// Four recurring shuffle-heavy jobs: each fits in a single rack, so a
	// good plan isolates them spatially and their shuffles never touch the
	// oversubscribed core.
	var jobs []*corral.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, corral.NewMapReduce(i, fmt.Sprintf("etl-%d", i), corral.Profile{
			InputBytes:   512e6,
			ShuffleBytes: 2e9,
			OutputBytes:  100e6,
			MapTasks:     8,
			ReduceTasks:  8,
			MapRate:      2e8,
			ReduceRate:   2e8,
		}))
	}

	// Offline planning: joint data + compute placement (§4).
	plan, err := corral.PlanBatch(cluster, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offline plan:")
	for _, j := range jobs {
		a := plan.Assignments[j.ID]
		fmt.Printf("  %s -> racks %v, priority %d, planned start %.1fs\n",
			j.Name, a.Racks, a.Priority, a.Start)
	}
	fmt.Printf("  LP lower bound on makespan: %.1fs (planned: %.1fs)\n\n",
		corral.BatchLowerBound(cluster, jobs), plan.Makespan)

	// Execute under both schedulers and compare.
	for _, run := range []struct {
		name string
		cfg  corral.SimConfig
	}{
		{"yarn-cs", corral.SimConfig{Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 42}},
		{"corral", corral.SimConfig{Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 42}},
	} {
		res, err := corral.Simulate(run.cfg, corral.CloneJobs(jobs))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s makespan %6.1fs   cross-rack %6.2f GB   compute %6.0f task-sec\n",
			run.name, res.Makespan, res.CrossRackBytes/1e9, res.TaskSeconds)
	}
}
