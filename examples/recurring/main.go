// Recurring pipeline: the §2 motivation end-to-end. Synthesize a month of
// recurring-job telemetry, predict tomorrow's input sizes with the paper's
// averaging predictor, plan the predicted workload online, then execute
// the *actual* (noisy) workload against the plan — the Fig 13a situation.
//
//	go run ./examples/recurring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corral"
)

func main() {
	cluster := corral.ClusterConfig{
		Racks:            5,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}
	// Background transfers consume half the core bandwidth (§6.1).
	cluster.BackgroundPerRack = 0.5 * cluster.RackUplinkCapacity()

	// Tomorrow's schedule: 12 recurring jobs arriving 8 seconds apart.
	// Each has a "predicted" input size (what the planner sees) and an
	// "actual" size differing by a few percent (what really runs).
	rng := rand.New(rand.NewSource(7))
	var predicted, actual []*corral.Job
	fmt.Println("job      predicted    actual      error")
	for i := 1; i <= 12; i++ {
		base := (1.5 + rng.Float64()*6) * 1e9
		noise := 1 + rng.NormFloat64()*0.065 // the paper's 6.5% error
		mk := func(in float64) *corral.Job {
			j := corral.NewMapReduce(i, fmt.Sprintf("hourly-%d", i), corral.Profile{
				InputBytes:   in,
				ShuffleBytes: in * 2.5,
				OutputBytes:  in * 0.3,
				MapTasks:     int(in/256e6) + 1,
				ReduceTasks:  int(in/512e6) + 1,
				MapRate:      2e8,
				ReduceRate:   2e8,
			})
			j.Arrival = float64(i-1) * 8
			return j
		}
		predicted = append(predicted, mk(base))
		actual = append(actual, mk(base*noise))
		fmt.Printf("%-8s %8.2f GB %8.2f GB %+7.1f%%\n",
			predicted[i-1].Name, base/1e9, base*noise/1e9, (noise-1)*100)
	}

	// Plan on predictions; run reality.
	plan, err := corral.PlanOnline(cluster, predicted)
	if err != nil {
		log.Fatal(err)
	}
	corralRes, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 7,
	}, corral.CloneJobs(actual))
	if err != nil {
		log.Fatal(err)
	}
	yarnRes, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 7,
	}, corral.CloneJobs(actual))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\navg completion: yarn-cs %.1fs -> corral %.1fs\n",
		yarnRes.AvgCompletionTime(), corralRes.AvgCompletionTime())
	fmt.Printf("cross-rack traffic: %.1f GB -> %.1f GB\n",
		yarnRes.CrossRackBytes/1e9, corralRes.CrossRackBytes/1e9)
}
