// TPC-H DAGs: run Hive-style DAG queries (§6.3) as recurring jobs planned
// by Corral while an ad-hoc MapReduce batch competes for the cluster, and
// compare query latencies against the capacity scheduler.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"
	"sort"

	"corral"
)

func main() {
	cluster := corral.ClusterConfig{
		Racks:            5,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10e9 / 8,
		Oversubscription: 5,
	}
	// Background transfers consume half the core bandwidth (§6.1).
	cluster.BackgroundPerRack = 0.5 * cluster.RackUplinkCapacity()

	build := func() []*corral.Job {
		// Six TPC-H-shaped queries over a (scaled) shared database,
		// arriving over ninety seconds.
		queries := corral.TPCH(corral.WorkloadConfig{
			Seed: 11, Jobs: 6, Scale: 0.05, ArrivalWindow: 90,
		}, 0)
		// Plus interfering ad-hoc MapReduce work at t = 0.
		noise := corral.MarkAdHoc(corral.W1(corral.WorkloadConfig{
			Seed: 12, Jobs: 8, Scale: 1.0 / 25, TaskScale: 1.0 / 25,
		}))
		for i, j := range noise {
			j.ID = len(queries) + 1 + i
		}
		return append(queries, noise...)
	}

	queryTimes := func(res *corral.Result) []float64 {
		var out []float64
		for i := range res.Jobs {
			if !res.Jobs[i].AdHoc {
				out = append(out, res.Jobs[i].CompletionTime)
			}
		}
		sort.Float64s(out)
		return out
	}

	yarnJobs := build()
	yarn, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerYarnCS, Seed: 3,
	}, yarnJobs)
	if err != nil {
		log.Fatal(err)
	}

	corralJobs := build()
	plan, err := corral.PlanOnline(cluster, corralJobs) // ad-hoc jobs are skipped automatically
	if err != nil {
		log.Fatal(err)
	}
	cres, err := corral.Simulate(corral.SimConfig{
		Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 3,
	}, corralJobs)
	if err != nil {
		log.Fatal(err)
	}

	y, c := queryTimes(yarn), queryTimes(cres)
	fmt.Println("query completion times (seconds), sorted:")
	fmt.Printf("  yarn-cs: ")
	for _, v := range y {
		fmt.Printf("%7.1f", v)
	}
	fmt.Printf("\n  corral:  ")
	for _, v := range c {
		fmt.Printf("%7.1f", v)
	}
	med := func(v []float64) float64 { return v[len(v)/2] }
	fmt.Printf("\nmedian: yarn-cs %.1fs -> corral %.1fs\n", med(y), med(c))
}
