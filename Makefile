# Mirrors .github/workflows/ci.yml: `make check` is the full tier-1 gate
# locally, in the same order CI runs it.

GO ?= go

.PHONY: check build vet fmt-check test race corralvet chaos fuzz bench

check: build vet fmt-check test race corralvet chaos fuzz
	@echo "check: all gates passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

corralvet:
	$(GO) run ./cmd/corralvet ./...

# Chaos gate: two-seed determinism of the full fault-injection sweep plus
# the graceful-degradation acceptance (replan <= drop <= yarn on the
# bundled trace). -count=1 defeats the test cache so the sweep really runs.
chaos:
	$(GO) test ./internal/experiments -run 'TestChaos' -count=1 -v

# corralcheck gate: the fixed-seed fuzzer replays the bundled randomized
# workload+fault traces (task crashes, machine/link faults, AM kills, DFS
# corruption) under all three schedulers with the invariant monitor
# attached, plus the attrition-sweep acceptance (every job completes at
# every bundled crash rate, completion degrades monotonically).
fuzz:
	$(GO) test ./internal/experiments -run 'TestFuzz|TestAttritionSweep' -count=1 -v

# Perf baseline: every benchmark once on the fast "s" profile, captured
# as machine-readable JSON for trajectory tracking.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/corralbench -o BENCH_baseline.json
