# Mirrors .github/workflows/ci.yml: `make ci-local` runs the same gates as
# the CI job matrix (fast-gate, test, race, chaos-fuzz, bench-regression),
# serially. `make check` is the historical alias without the bench gate.

GO ?= go

.PHONY: check ci-local fast-gate build vet fmt-check test race corralvet \
	chaos fuzz overload trace-determinism resume-determinism bench bench-compare \
	scale scale-bench-compare scale-nightly

check: build vet fmt-check test race chaos fuzz overload trace-determinism resume-determinism
	@echo "check: all gates passed"

# One target per CI job, in the workflow's job order.
ci-local: fast-gate test trace-determinism resume-determinism race chaos fuzz overload bench-compare scale scale-bench-compare
	@echo "ci-local: all CI jobs passed"

fast-gate: build vet fmt-check

build:
	$(GO) build ./...

# vet is go vet plus the full corralvet suite (all nine checks), so a
# seeded contract violation — a shared write in a parallelFor closure, a
# fmt call on a //corral:hotpath function — fails `make vet` directly.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/corralvet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Standalone corralvet run with the machine-readable report, mirroring
# the CI fast-gate step (the same run `make vet` performs without the
# artifact).
corralvet:
	$(GO) run ./cmd/corralvet -report corralvet.json ./...

# Chaos gate: two-seed determinism of the full fault-injection sweep plus
# the graceful-degradation acceptance (replan <= drop <= yarn on the
# bundled trace). -count=1 defeats the test cache so the sweep really runs.
chaos:
	$(GO) test ./internal/experiments -run 'TestChaos' -count=1 -v

# corralcheck gate: the fixed-seed fuzzer replays the bundled randomized
# workload+fault traces (task crashes, machine/link faults, AM kills, DFS
# corruption) under all three schedulers with the invariant monitor
# attached, plus the attrition-sweep acceptance (every job completes at
# every bundled crash rate, completion degrades monotonically).
fuzz:
	$(GO) test ./internal/experiments -run 'TestFuzz|TestAttritionSweep' -count=1 -v

# Overload gate: at 4x the saturating arrival rate under a fault storm,
# budgeted Corral (planner deadline budget + replan-storm suppression +
# admission control) must finish with the armed replan-rate and
# admission-queue bounds clean and every job completed or shed, while the
# unhardened replanning configuration demonstrably trips the replan-rate
# bound (anti-vacuity); the sweep is bit-identical across seeds, worker
# counts and a mid-storm snapshot/resume. -count=1 defeats the test cache.
overload:
	$(GO) test ./internal/experiments -run 'TestOverload' -count=1 -v
	$(GO) test ./internal/runtime -run 'TestReplanSuppression|TestPlannerBudget|TestAdmission|TestOverload' -count=1

# Resume-determinism gate: runs restored from mid-flight snapshots must
# finish with a bit-identical Result and trace export at any sweep worker
# count, the restore audit must catch any single corrupted state field,
# and the snapshot codec's golden file must not drift. A failing
# equivalence point persists its snapshot to
# internal/experiments/resume-failure.snap.json (uploaded as a CI
# artifact) for corralsnap inspection. -count=1 defeats the test cache.
resume-determinism:
	$(GO) test ./internal/experiments -run 'TestResume' -count=1 -v
	$(GO) test ./internal/runtime -run 'TestSnapshot' -count=1
	$(GO) test ./internal/snapshot -count=1

# Trace-determinism gate: replaying a traced suite must reproduce the
# JSONL and Chrome exports byte for byte, independent of seed plumbing,
# sweep worker count and registration order — and the disabled tracer must
# stay allocation-free. -count=1 defeats the test cache.
trace-determinism:
	$(GO) test ./internal/experiments -run 'TestTrace|TestTracing' -count=1 -v
	$(GO) test ./internal/trace -count=1

# Datacenter-scale gate: the 2k + 5k cells of the scale suite with full
# verification (same-seed determinism rerun + mid-flight snapshot/resume
# + plan serial-equivalence and wall-clock budget at every cell).
# corralsim exits non-zero on any verification failure; the JSON report
# lands in scale-report.json (uploaded as a CI artifact even on red).
scale:
	$(GO) run ./cmd/corralsim -exp scale -size m -seed 1 -json > scale-report.json

# Scale benchmark comparison: the recompute micro-benchmarks, the
# datacenter-scale planning benchmarks (2k + 10k cell shapes) and the
# end-to-end scale sweep, diffed against the full committed baseline in
# -subset mode (baseline-only entries are skipped, semantic drift and new
# benchmarks still fail). `make bench` remains the only producer of
# BENCH_baseline.json.
scale-bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleSweep|BenchmarkPlan2k|BenchmarkPlan10k' -benchtime 1x . \
		| $(GO) run ./cmd/corralbench -o scale-fresh.json -compare BENCH_baseline.json -tol 50 -subset
	$(GO) test -run '^$$' -bench 'BenchmarkRecompute' -benchtime 1x ./internal/netsim \
		| $(GO) run ./cmd/corralbench -compare BENCH_baseline.json -tol 50 -subset

# Nightly ladder: the full 2k/5k/10k sweep (minutes of wall time) plus
# extended fuzz and resume sweeps; see .github/workflows/nightly.yml.
scale-nightly:
	$(GO) run ./cmd/corralsim -exp scale -size l -seed 1 -json > scale-report.json
	$(GO) run ./cmd/corralsim -fuzz-traces 100 -size s -seed 1
	$(GO) test ./internal/experiments -run 'TestResume' -count=1

# Perf baseline: every benchmark once on the fast "s" profile — the
# experiment harness in the repo root, the netsim allocator
# micro-benchmarks and the tracer's emit/export overhead — captured as
# machine-readable JSON for trajectory tracking. Rerun this (and commit
# the result) whenever a semantic metric or the benchmark set
# intentionally changes.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/netsim ./internal/trace ./internal/analysis \
		| $(GO) run ./cmd/corralbench -o BENCH_baseline.json

# Benchmark-regression gate: rerun the same benchmarks and diff against
# the committed baseline. Semantic metrics must match bit for bit;
# timing metrics (ns/op, B/op, ...) are machine-dependent and only warn
# past the tolerance. The fresh JSON lands in bench-fresh.json (uploaded
# as a CI artifact) for inspection.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/netsim ./internal/trace ./internal/analysis \
		| $(GO) run ./cmd/corralbench -o bench-fresh.json -compare BENCH_baseline.json -tol 50
