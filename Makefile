# Mirrors .github/workflows/ci.yml: `make check` is the full tier-1 gate
# locally, in the same order CI runs it.

GO ?= go

.PHONY: check build vet fmt-check test race corralvet chaos

check: build vet fmt-check test race corralvet chaos
	@echo "check: all gates passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

corralvet:
	$(GO) run ./cmd/corralvet ./...

# Chaos gate: two-seed determinism of the full fault-injection sweep plus
# the graceful-degradation acceptance (replan <= drop <= yarn on the
# bundled trace). -count=1 defeats the test cache so the sweep really runs.
chaos:
	$(GO) test ./internal/experiments -run 'TestChaos' -count=1 -v
