package job

import (
	"math"
	"testing"
	"testing/quick"
)

func validProfile() Profile {
	return Profile{
		InputBytes:   1e9,
		ShuffleBytes: 5e8,
		OutputBytes:  2e8,
		MapTasks:     10,
		ReduceTasks:  4,
		MapRate:      1e8,
		ReduceRate:   1e8,
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
		ok     bool
	}{
		{"valid", func(p *Profile) {}, true},
		{"negative input", func(p *Profile) { p.InputBytes = -1 }, false},
		{"negative shuffle", func(p *Profile) { p.ShuffleBytes = -1 }, false},
		{"negative output", func(p *Profile) { p.OutputBytes = -1 }, false},
		{"zero maps", func(p *Profile) { p.MapTasks = 0 }, false},
		{"negative reduces", func(p *Profile) { p.ReduceTasks = -1 }, false},
		{"zero reduces ok (map-only)", func(p *Profile) { p.ReduceTasks = 0 }, true},
		{"zero map rate", func(p *Profile) { p.MapRate = 0 }, false},
		{"zero reduce rate with reducers", func(p *Profile) { p.ReduceRate = 0 }, false},
		{"zero reduce rate map-only", func(p *Profile) { p.ReduceRate = 0; p.ReduceTasks = 0 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProfile()
			tc.mutate(&p)
			err := p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate = nil, want error")
			}
		})
	}
}

func TestProfileSlots(t *testing.T) {
	p := validProfile()
	if got := p.Slots(); got != 10 {
		t.Fatalf("Slots = %d, want 10 (maps dominate)", got)
	}
	p.ReduceTasks = 50
	if got := p.Slots(); got != 50 {
		t.Fatalf("Slots = %d, want 50 (reduces dominate)", got)
	}
}

func TestMapReduceConstructor(t *testing.T) {
	j := MapReduce(3, "wordcount", validProfile())
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.IsDAG() {
		t.Fatal("single-stage job reported as DAG")
	}
	if !j.Recurring {
		t.Fatal("MapReduce constructor should mark the job recurring")
	}
	if j.InputBytes() != 1e9 || j.ShuffleBytes() != 5e8 || j.OutputBytes() != 2e8 {
		t.Fatalf("aggregate bytes wrong: %g %g %g", j.InputBytes(), j.ShuffleBytes(), j.OutputBytes())
	}
	if j.Slots() != 10 {
		t.Fatalf("Slots = %d, want 10", j.Slots())
	}
	if j.TotalTasks() != 14 {
		t.Fatalf("TotalTasks = %d, want 14", j.TotalTasks())
	}
}

// diamond builds a 4-stage diamond DAG: 0 -> {1,2} -> 3.
func diamond() *Job {
	p := validProfile()
	return &Job{
		ID:   1,
		Name: "diamond",
		Stages: []Stage{
			{Name: "extract", Profile: p},
			{Name: "left", Profile: p, Upstream: []int{0}},
			{Name: "right", Profile: p, Upstream: []int{0}},
			{Name: "join", Profile: p, Upstream: []int{1, 2}},
		},
	}
}

func TestDAGValidate(t *testing.T) {
	j := diamond()
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	// Forward reference breaks topological order.
	j.Stages[1].Upstream = []int{3}
	if err := j.Validate(); err == nil {
		t.Fatal("forward upstream reference not rejected")
	}
	// Self reference.
	j.Stages[1].Upstream = []int{1}
	if err := j.Validate(); err == nil {
		t.Fatal("self reference not rejected")
	}
	empty := &Job{ID: 2}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty job not rejected")
	}
}

func TestDAGAggregates(t *testing.T) {
	j := diamond()
	// Only stage 0 is a source.
	if got := j.InputBytes(); got != 1e9 {
		t.Fatalf("InputBytes = %g, want 1e9", got)
	}
	// Only stage 3 is a sink.
	if got := j.OutputBytes(); got != 2e8 {
		t.Fatalf("OutputBytes = %g, want 2e8", got)
	}
	if got := j.ShuffleBytes(); got != 4*5e8 {
		t.Fatalf("ShuffleBytes = %g, want %g", got, 4*5e8)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	j := diamond()
	// Make stage 2 heavier than stage 1: critical path 0-2-3.
	w := func(s int) float64 {
		if s == 2 {
			return 10
		}
		return 1
	}
	path := j.CriticalPath(w)
	want := []int{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathSingleStage(t *testing.T) {
	j := MapReduce(1, "x", validProfile())
	path := j.CriticalPath(func(int) float64 { return 5 })
	if len(path) != 1 || path[0] != 0 {
		t.Fatalf("path = %v, want [0]", path)
	}
}

func TestCriticalPathChain(t *testing.T) {
	p := validProfile()
	j := &Job{ID: 1, Stages: []Stage{
		{Name: "a", Profile: p},
		{Name: "b", Profile: p, Upstream: []int{0}},
		{Name: "c", Profile: p, Upstream: []int{1}},
	}}
	path := j.CriticalPath(func(int) float64 { return 1 })
	if len(path) != 3 {
		t.Fatalf("chain critical path = %v, want all 3 stages", path)
	}
}

func TestCriticalPathDisconnectedSinks(t *testing.T) {
	p := validProfile()
	// Two independent stages; heaviest one is the path.
	j := &Job{ID: 1, Stages: []Stage{
		{Name: "a", Profile: p},
		{Name: "b", Profile: p},
	}}
	path := j.CriticalPath(func(s int) float64 { return float64(s + 1) })
	if len(path) != 1 || path[0] != 1 {
		t.Fatalf("path = %v, want [1]", path)
	}
}

// Property: the critical path weight is an upper bound over every
// individual stage weight, and the path is a valid chain in the DAG.
func TestQuickCriticalPath(t *testing.T) {
	f := func(weights []float64) bool {
		j := diamond()
		w := func(s int) float64 {
			if s < len(weights) {
				return math.Abs(weights[s]) + 0.001
			}
			return 1
		}
		path := j.CriticalPath(w)
		if len(path) == 0 {
			return false
		}
		sum := 0.0
		for i, s := range path {
			sum += w(s)
			if i > 0 {
				// Consecutive path stages must be connected.
				connected := false
				for _, u := range j.Stages[s].Upstream {
					if u == path[i-1] {
						connected = true
					}
				}
				if !connected {
					return false
				}
			}
		}
		for s := range j.Stages {
			if w(s) > sum+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
