// Package job models data-parallel jobs: simple MapReduce jobs described
// by the paper's 5-tuple ⟨D^I, D^S, D^O, N^M, N^R⟩ (§4.3) and general
// DAG-structured jobs (Hive/Tez style) whose every stage is itself modeled
// as a MapReduce job, composed along the DAG's critical path.
//
// Determinism obligations: jobs are plain data; all derived quantities
// (critical paths, totals) are pure functions of the job definition.
package job

import (
	"fmt"
)

// Profile is the paper's per-(stage-)job characterization: the 5-tuple
// plus the average per-task processing rates B_M and B_R estimated from
// previous runs of the same recurring job.
type Profile struct {
	InputBytes   float64 // D^I: bytes read by the map phase
	ShuffleBytes float64 // D^S: bytes moved map→reduce
	OutputBytes  float64 // D^O: bytes written by the reduce phase
	MapTasks     int     // N^M
	ReduceTasks  int     // N^R
	MapRate      float64 // B_M: bytes/sec one map task processes
	ReduceRate   float64 // B_R: bytes/sec one reduce task processes
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.InputBytes < 0 || p.ShuffleBytes < 0 || p.OutputBytes < 0:
		return fmt.Errorf("job: negative data size in profile %+v", p)
	case p.MapTasks <= 0:
		return fmt.Errorf("job: MapTasks = %d, must be positive", p.MapTasks)
	case p.ReduceTasks < 0:
		return fmt.Errorf("job: ReduceTasks = %d, must be >= 0", p.ReduceTasks)
	case p.MapRate <= 0:
		return fmt.Errorf("job: MapRate = %g, must be positive", p.MapRate)
	case p.ReduceTasks > 0 && p.ReduceRate <= 0:
		return fmt.Errorf("job: ReduceRate = %g with %d reduce tasks", p.ReduceRate, p.ReduceTasks)
	}
	return nil
}

// Slots returns the maximum parallelism of one stage: the larger of its
// map and reduce task counts. This is the "number of slots requested"
// quantity plotted in Fig 2.
func (p Profile) Slots() int {
	if p.ReduceTasks > p.MapTasks {
		return p.ReduceTasks
	}
	return p.MapTasks
}

// Stage is one vertex in a job's DAG.
type Stage struct {
	Name    string
	Profile Profile
	// Upstream lists the stage indices whose output this stage consumes.
	// Source stages (reading job input from the DFS) have none.
	Upstream []int
}

// Job is a (possibly DAG-structured) data-parallel job.
type Job struct {
	ID      int
	Name    string
	Arrival float64 // submission time, seconds (0 in the batch scenario)
	Stages  []Stage // topologically ordered: edges go low index → high
	AdHoc   bool    // true for jobs the planner cannot see (§6.4)

	// Recurring marks jobs with predictable characteristics. The planner
	// only plans Recurring (or otherwise known-in-advance) jobs.
	Recurring bool
}

// MapReduce builds a single-stage job from a profile.
func MapReduce(id int, name string, p Profile) *Job {
	return &Job{
		ID:        id,
		Name:      name,
		Recurring: true,
		Stages:    []Stage{{Name: "mr", Profile: p}},
	}
}

// Validate checks profile validity and that the DAG is topologically
// ordered with in-range upstream references.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("job %d: no stages", j.ID)
	}
	for i, s := range j.Stages {
		if err := s.Profile.Validate(); err != nil {
			return fmt.Errorf("job %d stage %d: %w", j.ID, i, err)
		}
		for _, u := range s.Upstream {
			if u < 0 || u >= i {
				return fmt.Errorf("job %d stage %d: upstream %d not earlier in topological order", j.ID, i, u)
			}
		}
	}
	return nil
}

// IsDAG reports whether the job has more than one stage.
func (j *Job) IsDAG() bool { return len(j.Stages) > 1 }

// InputBytes returns the bytes the job reads from the DFS: the sum over
// source stages of their input sizes.
func (j *Job) InputBytes() float64 {
	t := 0.0
	for _, s := range j.Stages {
		if len(s.Upstream) == 0 {
			t += s.Profile.InputBytes
		}
	}
	return t
}

// ShuffleBytes returns total intermediate bytes across all stages.
func (j *Job) ShuffleBytes() float64 {
	t := 0.0
	for _, s := range j.Stages {
		t += s.Profile.ShuffleBytes
	}
	return t
}

// OutputBytes returns the bytes written by sink stages (stages no other
// stage consumes).
func (j *Job) OutputBytes() float64 {
	consumed := make([]bool, len(j.Stages))
	for _, s := range j.Stages {
		for _, u := range s.Upstream {
			consumed[u] = true
		}
	}
	t := 0.0
	for i, s := range j.Stages {
		if !consumed[i] {
			t += s.Profile.OutputBytes
		}
	}
	return t
}

// Slots returns the job's requested slot count: the maximum stage
// parallelism over the DAG.
func (j *Job) Slots() int {
	m := 0
	for _, s := range j.Stages {
		if v := s.Profile.Slots(); v > m {
			m = v
		}
	}
	return m
}

// TotalTasks returns the number of tasks across all stages.
func (j *Job) TotalTasks() int {
	t := 0
	for _, s := range j.Stages {
		t += s.Profile.MapTasks + s.Profile.ReduceTasks
	}
	return t
}

// CriticalPath returns the stage indices of the heaviest source→sink path,
// where each stage's weight is given by weight(stageIndex). This is the
// path P used to compose DAG latency in §4.3: L_j(r) = Σ_{s∈P} L_s(r).
func (j *Job) CriticalPath(weight func(stage int) float64) []int {
	n := len(j.Stages)
	best := make([]float64, n)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	for i := 0; i < n; i++ {
		best[i] = weight(i)
		for _, u := range j.Stages[i].Upstream {
			if cand := best[u] + weight(i); cand > best[i] {
				best[i] = cand
				prev[i] = u
			}
		}
	}
	// Find the heaviest sink.
	consumed := make([]bool, n)
	for _, s := range j.Stages {
		for _, u := range s.Upstream {
			consumed[u] = true
		}
	}
	end, endW := -1, -1.0
	for i := 0; i < n; i++ {
		if consumed[i] {
			continue
		}
		if best[i] > endW {
			end, endW = i, best[i]
		}
	}
	var path []int
	for v := end; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse to source→sink order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}
