// Package model implements the latency response functions L_j(r) of §4.3:
// fast analytic estimates of a job's completion time as a function of the
// number of racks r allocated to it. The planner uses these as proxies for
// real latency; they are deliberately simple (the paper stresses they
// "need not be highly accurate").
//
// The MapReduce model sums three sequential stage latencies:
//
//	L_j(r) = l_map(r) + l_shuffle(r) + l_reduce(r)
//
// with wave counts w(r) = ⌈N / (r·k·s)⌉ for k machines per rack and s
// simultaneous tasks per machine (the paper presents s = 1 and notes the
// extension to s > 1), and a shuffle bounded by the slower of the
// cross-core and in-rack transfer (§4.3 (a)/(b)).
//
// General DAGs are handled by modelling every stage as a MapReduce job and
// summing along the DAG's critical path. §4.5's data-imbalance penalty
// α·D^I/r is available via Response.
//
// Determinism obligations: every response function is a pure function of
// the job tuple and cluster shape — closed-form arithmetic with no
// randomness, time or iteration-order dependence.
package model

import (
	"math"

	"corral/internal/job"
	"corral/internal/topology"
)

// Cluster carries the topology parameters the model needs.
type Cluster struct {
	Racks            int
	MachinesPerRack  int     // k
	SlotsPerMachine  int     // s: simultaneous tasks per machine
	NICBandwidth     float64 // B, bytes/sec
	Oversubscription float64 // V (> 1 for an oversubscribed core)

	// OutputReplicas models the replicated DFS write of terminal-stage
	// outputs: with ρ ≥ 2 replicas, one copy of each reduce task's output
	// crosses the core, which adds w_reduce·(D^O/N^R)/(B/V) to the reduce
	// latency. The paper's §4.3 model omits writes; this extension keeps
	// the planner's estimates consistent with an HDFS-like execution layer
	// (see DESIGN.md). Zero selects 3 (the HDFS default); 1 disables the
	// term (no remote copies).
	OutputReplicas int
}

// FromTopology extracts model parameters from a topology config.
func FromTopology(cfg topology.Config) Cluster {
	return Cluster{
		Racks:            cfg.Racks,
		MachinesPerRack:  cfg.MachinesPerRack,
		SlotsPerMachine:  cfg.SlotsPerMachine,
		NICBandwidth:     cfg.NICBandwidth,
		Oversubscription: cfg.Oversubscription,
	}
}

// waves returns ⌈tasks / (r·k·s)⌉, the number of sequential task waves.
func (c Cluster) waves(tasks, r int) float64 {
	capac := r * c.MachinesPerRack * c.SlotsPerMachine
	return math.Ceil(float64(tasks) / float64(capac))
}

// MapLatency returns l_map(r) = w_map(r) · (D^I/N^M)/B_M.
func (c Cluster) MapLatency(p job.Profile, r int) float64 {
	perTask := p.InputBytes / float64(p.MapTasks)
	return c.waves(p.MapTasks, r) * perTask / p.MapRate
}

// ReduceLatency returns l_reduce(r) = w_reduce(r) · (D^O/N^R)/B_R.
func (c Cluster) ReduceLatency(p job.Profile, r int) float64 {
	if p.ReduceTasks == 0 {
		return 0
	}
	perTask := p.OutputBytes / float64(p.ReduceTasks)
	return c.waves(p.ReduceTasks, r) * perTask / p.ReduceRate
}

// WriteLatency returns the replicated-output-write extension for terminal
// stages: each reduce task pushes one copy of its output across the core
// at the machine's core share B/V (the in-rack forwarding copy overlaps
// and is not the bottleneck). Zero when OutputReplicas <= 1.
func (c Cluster) WriteLatency(p job.Profile, r int) float64 {
	replicas := c.OutputReplicas
	if replicas == 0 {
		replicas = 3
	}
	if replicas <= 1 || p.ReduceTasks == 0 || p.OutputBytes <= 0 {
		return 0
	}
	perTask := p.OutputBytes / float64(p.ReduceTasks)
	return c.waves(p.ReduceTasks, r) * perTask / (c.NICBandwidth / c.Oversubscription)
}

// ShuffleLatency returns l_shuffle(r) = w_reduce(r) · max(l_core, l_local).
//
// Per §4.3, with per-machine shuffle share D^S/(r·k):
//
//	D_core(r)  = D^S/(r·k) · (r−1)/r   (0 when r = 1)
//	l_core     = D_core / (B/V)
//	D_local(r) = D^S/(r·k) · 1/r, of which 1/k stays on-machine
//	l_local    = D_local · (k−1)/k / (B − B/V)
//
// With s simultaneous tasks per machine the NIC is shared, which the
// original waves/bandwidth extension absorbs: per-machine data volumes are
// unchanged, so no further adjustment is needed.
func (c Cluster) ShuffleLatency(p job.Profile, r int) float64 {
	if p.ReduceTasks == 0 || p.ShuffleBytes == 0 {
		return 0
	}
	k := float64(c.MachinesPerRack)
	perMachine := p.ShuffleBytes / (float64(r) * k)

	var lcore float64
	if r > 1 {
		dcore := perMachine * float64(r-1) / float64(r)
		lcore = dcore / (c.NICBandwidth / c.Oversubscription)
	}

	dlocal := perMachine / float64(r)
	localBW := c.NICBandwidth - c.NICBandwidth/c.Oversubscription
	if localBW <= 0 {
		// No oversubscription (V = 1): the core is as fast as the NICs and
		// in-rack transfers get the full NIC.
		localBW = c.NICBandwidth
	}
	llocal := dlocal * (k - 1) / k / localBW

	return c.waves(p.ReduceTasks, r) * math.Max(lcore, llocal)
}

// StageLatency returns the full MapReduce latency of one stage profile on
// r racks.
func (c Cluster) StageLatency(p job.Profile, r int) float64 {
	return c.MapLatency(p, r) + c.ShuffleLatency(p, r) + c.ReduceLatency(p, r)
}

// JobLatency returns L_j(r): the stage latency for single-stage jobs, or
// the critical-path sum for DAGs, in both cases adding the write extension
// for terminal (sink) stages. The critical path is recomputed per r
// because stage weights depend on r.
func (c Cluster) JobLatency(j *job.Job, r int) float64 {
	if !j.IsDAG() {
		p := j.Stages[0].Profile
		return c.StageLatency(p, r) + c.WriteLatency(p, r)
	}
	consumed := make([]bool, len(j.Stages))
	for _, s := range j.Stages {
		for _, u := range s.Upstream {
			consumed[u] = true
		}
	}
	weight := func(s int) float64 {
		w := c.StageLatency(j.Stages[s].Profile, r)
		if !consumed[s] {
			w += c.WriteLatency(j.Stages[s].Profile, r)
		}
		return w
	}
	total := 0.0
	for _, s := range j.CriticalPath(weight) {
		total += weight(s)
	}
	// Parallel DAG branches off the critical path still occupy slots: the
	// allocation must also cover the job's total compute work. Without
	// this bound the planner under-provisions bushy DAGs (e.g. multi-scan
	// TPC-H queries) whose critical path is short but whose aggregate
	// task demand is large.
	if wb := c.computeWorkBound(j, r); wb > total {
		total = wb
	}
	return total
}

// computeWorkBound returns total task-seconds across all stages divided by
// the allocation's slot count — a lower bound on any schedule's length.
func (c Cluster) computeWorkBound(j *job.Job, r int) float64 {
	work := 0.0
	for _, s := range j.Stages {
		p := s.Profile
		work += p.InputBytes / p.MapRate
		if p.ReduceTasks > 0 {
			work += p.OutputBytes / p.ReduceRate
		}
	}
	return work / float64(r*c.MachinesPerRack*c.SlotsPerMachine)
}

// ResponseFunc tabulates L'_j(r) for r = 1..R; index 0 holds L'(1).
type ResponseFunc []float64

// At returns L'(r). r must be in [1, len].
func (f ResponseFunc) At(r int) float64 { return f[r-1] }

// Racks returns R, the domain size.
func (f ResponseFunc) Racks() int { return len(f) }

// ArgMin returns the r minimizing L'(r) (smallest r on ties).
func (f ResponseFunc) ArgMin() int {
	best := 1
	for r := 2; r <= len(f); r++ {
		if f[r-1] < f[best-1] {
			best = r
		}
	}
	return best
}

// Response tabulates the penalized response function
// L'_j(r) = L_j(r) + α·D^I_j/r for r = 1..Racks (§4.5). α = 0 disables the
// data-imbalance penalty; DefaultAlpha gives the paper's choice.
func (c Cluster) Response(j *job.Job, alpha float64) ResponseFunc {
	out := make(ResponseFunc, c.Racks)
	in := j.InputBytes()
	for r := 1; r <= c.Racks; r++ {
		out[r-1] = c.JobLatency(j, r) + alpha*in/float64(r)
	}
	return out
}

// DefaultAlpha is the paper's tradeoff coefficient: the inverse of the
// bandwidth between an individual rack and the core, so the penalty term
// approximates the time to upload the job's per-rack input share (§4.5).
func (c Cluster) DefaultAlpha() float64 {
	rackUplink := float64(c.MachinesPerRack) * c.NICBandwidth / c.Oversubscription
	return 1 / rackUplink
}
