package model

import (
	"math"
	"testing"
	"testing/quick"

	"corral/internal/job"
)

const gbps = 1e9 / 8

// paperCluster mirrors the evaluation cluster: 7 racks x 30 machines,
// 10 Gbps NICs, 5:1 oversubscription, one task per machine (the paper's
// presentation assumption) unless overridden.
func paperCluster() Cluster {
	return Cluster{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  1,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

func shuffleHeavy() job.Profile {
	return job.Profile{
		InputBytes:   100e9,
		ShuffleBytes: 100e9,
		OutputBytes:  10e9,
		MapTasks:     30,
		ReduceTasks:  30,
		MapRate:      1e9,
		ReduceRate:   1e9,
	}
}

func TestWaves(t *testing.T) {
	c := paperCluster()
	// 30 tasks on 1 rack x 30 machines x 1 slot = 1 wave.
	if w := c.waves(30, 1); w != 1 {
		t.Fatalf("waves(30,1) = %g, want 1", w)
	}
	if w := c.waves(31, 1); w != 2 {
		t.Fatalf("waves(31,1) = %g, want 2", w)
	}
	if w := c.waves(31, 2); w != 1 {
		t.Fatalf("waves(31,2) = %g, want 1", w)
	}
	c.SlotsPerMachine = 8
	if w := c.waves(240, 1); w != 1 {
		t.Fatalf("waves(240,1) with 8 slots = %g, want 1", w)
	}
}

func TestMapLatency(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	// One wave; per-task input = 100e9/30; rate 1e9 -> 3.333s.
	want := (100e9 / 30) / 1e9
	if got := c.MapLatency(p, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MapLatency = %g, want %g", got, want)
	}
	// Two waves when tasks double.
	p.MapTasks = 60
	p2 := p
	want2 := 2 * (100e9 / 60) / 1e9
	if got := c.MapLatency(p2, 1); math.Abs(got-want2) > 1e-9 {
		t.Fatalf("MapLatency 2 waves = %g, want %g", got, want2)
	}
}

func TestReduceLatencyMapOnly(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	p.ReduceTasks = 0
	if got := c.ReduceLatency(p, 1); got != 0 {
		t.Fatalf("map-only ReduceLatency = %g, want 0", got)
	}
	if got := c.ShuffleLatency(p, 1); got != 0 {
		t.Fatalf("map-only ShuffleLatency = %g, want 0", got)
	}
}

func TestShuffleSingleRackUsesLocalOnly(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	// r=1: no core component. Per machine: 100e9/30; local fraction
	// (k-1)/k at B - B/V = 8 Gbps... = 10*gbps*(4/5).
	perMachine := 100e9 / 30.0
	localBW := 10*gbps - 10*gbps/5
	want := perMachine * (29.0 / 30) / localBW
	if got := c.ShuffleLatency(p, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ShuffleLatency(1) = %g, want %g", got, want)
	}
}

func TestShuffleLatencyShrinksWithRacks(t *testing.T) {
	// §3.3's worked example: shuffle latency decreases with r for large
	// shuffles (approaching V/r · S/B).
	c := paperCluster()
	p := shuffleHeavy()
	p.ReduceTasks = 210 // keep one wave at every r... actually 7 waves at r=1
	prev := math.Inf(1)
	for r := 1; r <= 7; r++ {
		l := c.ShuffleLatency(p, r)
		if l > prev*(1+1e-9) {
			t.Fatalf("shuffle latency increased from %g to %g at r=%d", prev, l, r)
		}
		prev = l
	}
}

func TestShuffleCoreBoundMatchesFormula(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	r := 7
	// Core-bound for a big shuffle: w * (DS/(r k))·((r-1)/r)/(B/V).
	perMachine := p.ShuffleBytes / (7.0 * 30)
	want := perMachine * (6.0 / 7) / (10 * gbps / 5)
	got := c.ShuffleLatency(p, r)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ShuffleLatency(7) = %g, want %g", got, want)
	}
}

func TestV1NoOversubscription(t *testing.T) {
	c := paperCluster()
	c.Oversubscription = 1
	p := shuffleHeavy()
	got := c.ShuffleLatency(p, 2)
	if math.IsInf(got, 1) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("V=1 shuffle latency = %g, want finite positive", got)
	}
}

func TestStageLatencyIsSumOfPhases(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	for r := 1; r <= 7; r++ {
		want := c.MapLatency(p, r) + c.ShuffleLatency(p, r) + c.ReduceLatency(p, r)
		if got := c.StageLatency(p, r); got != want {
			t.Fatalf("StageLatency(%d) = %g, want %g", r, got, want)
		}
	}
}

func TestJobLatencyDAGUsesCriticalPath(t *testing.T) {
	c := paperCluster()
	small := shuffleHeavy()
	small.InputBytes, small.ShuffleBytes, small.OutputBytes = 1e9, 1e9, 1e8
	big := shuffleHeavy()
	j := &job.Job{ID: 1, Stages: []job.Stage{
		{Name: "src", Profile: small},
		{Name: "light", Profile: small, Upstream: []int{0}},
		{Name: "heavy", Profile: big, Upstream: []int{0}},
		{Name: "sink", Profile: small, Upstream: []int{1, 2}},
	}}
	got := c.JobLatency(j, 2)
	// Sink stage additionally pays the replicated-write term.
	want := c.StageLatency(small, 2) + c.StageLatency(big, 2) +
		c.StageLatency(small, 2) + c.WriteLatency(small, 2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DAG latency = %g, want %g (path through heavy stage)", got, want)
	}
	// And it must exceed any single-branch underestimate.
	if got <= c.StageLatency(big, 2) {
		t.Fatal("DAG latency not accumulating the path")
	}
}

func TestWriteLatency(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	// One wave of 30 reducers, per-task output 10e9/30, core share B/V.
	want := (10e9 / 30.0) / (10 * gbps / 5)
	if got := c.WriteLatency(p, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("WriteLatency = %g, want %g", got, want)
	}
	// Disabled with replication 1.
	c.OutputReplicas = 1
	if got := c.WriteLatency(p, 1); got != 0 {
		t.Fatalf("WriteLatency with 1 replica = %g, want 0", got)
	}
	c.OutputReplicas = 0
	pm := p
	pm.ReduceTasks = 0
	if got := c.WriteLatency(pm, 1); got != 0 {
		t.Fatalf("map-only WriteLatency = %g, want 0", got)
	}
	// Single-stage job latency includes the write term.
	j := job.MapReduce(1, "x", p)
	if got := c.JobLatency(j, 1); math.Abs(got-(c.StageLatency(p, 1)+c.WriteLatency(p, 1))) > 1e-9 {
		t.Fatalf("JobLatency missing write term: %g", got)
	}
}

func TestResponsePenalty(t *testing.T) {
	c := paperCluster()
	j := job.MapReduce(1, "x", shuffleHeavy())
	alpha := c.DefaultAlpha()
	plain := c.Response(j, 0)
	pen := c.Response(j, alpha)
	if plain.Racks() != 7 || pen.Racks() != 7 {
		t.Fatalf("response domain = %d, want 7", plain.Racks())
	}
	for r := 1; r <= 7; r++ {
		wantDelta := alpha * 100e9 / float64(r)
		if math.Abs((pen.At(r)-plain.At(r))-wantDelta) > 1e-9 {
			t.Fatalf("penalty at r=%d = %g, want %g", r, pen.At(r)-plain.At(r), wantDelta)
		}
	}
	// Penalty decreases with r, favoring spreading data.
	if pen.At(1)-plain.At(1) <= pen.At(7)-plain.At(7) {
		t.Fatal("penalty should shrink as racks grow")
	}
}

func TestDefaultAlpha(t *testing.T) {
	c := paperCluster()
	// Rack uplink = 30 * 10Gbps / 5 = 60 Gbps.
	want := 1 / (60 * gbps)
	if got := c.DefaultAlpha(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("DefaultAlpha = %g, want %g", got, want)
	}
}

func TestArgMin(t *testing.T) {
	f := ResponseFunc{5, 3, 3, 9}
	if got := f.ArgMin(); got != 2 {
		t.Fatalf("ArgMin = %d, want 2 (first minimum)", got)
	}
}

// Property: latencies are finite, positive for non-trivial jobs, and the
// penalized response exceeds the raw response.
func TestQuickLatencySanity(t *testing.T) {
	c := paperCluster()
	f := func(in, sh, out uint32, nm, nr uint8) bool {
		p := job.Profile{
			InputBytes:   float64(in%1000+1) * 1e8,
			ShuffleBytes: float64(sh%1000) * 1e8,
			OutputBytes:  float64(out%1000) * 1e8,
			MapTasks:     int(nm%200) + 1,
			ReduceTasks:  int(nr % 200),
			MapRate:      1e9,
			ReduceRate:   1e9,
		}
		if p.Validate() != nil {
			return true
		}
		j := job.MapReduce(1, "q", p)
		raw := c.Response(j, 0)
		pen := c.Response(j, c.DefaultAlpha())
		for r := 1; r <= c.Racks; r++ {
			lr := raw.At(r)
			if math.IsNaN(lr) || math.IsInf(lr, 0) || lr <= 0 {
				return false
			}
			if pen.At(r) < lr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for jobs with a single wave at every allocation, latency is
// non-increasing for r >= 2. (The step from r=1 to r=2 may legitimately
// increase latency — the cross-core term (r−1)/r² peaks at r=2 — which is
// exactly the case §4.2 notes: "if the latency of the longest job
// increases when its allocation is increased by one rack, it will continue
// to be the longest and its allocation will be increased again".)
func TestQuickMonotoneShuffleForOneWaveJobs(t *testing.T) {
	c := paperCluster()
	f := func(sh uint32) bool {
		p := job.Profile{
			InputBytes:   1e9,
			ShuffleBytes: float64(sh%10000+1) * 1e7,
			OutputBytes:  1e9,
			MapTasks:     20, // < 30 => single wave at any r
			ReduceTasks:  20,
			MapRate:      1e9,
			ReduceRate:   1e9,
		}
		prev := math.Inf(1)
		for r := 2; r <= c.Racks; r++ {
			l := c.StageLatency(p, r)
			if l > prev*(1+1e-12) {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCorePeaksAtTwoRacks(t *testing.T) {
	// Documents the non-monotonicity: with a 5:1 oversubscription, moving a
	// shuffle-heavy one-wave job from 1 to 2 racks makes it slower.
	c := paperCluster()
	p := shuffleHeavy()
	p.MapTasks, p.ReduceTasks = 20, 20
	if c.StageLatency(p, 2) <= c.StageLatency(p, 1) {
		t.Fatalf("expected latency bump at r=2: L(1)=%g L(2)=%g",
			c.StageLatency(p, 1), c.StageLatency(p, 2))
	}
}

func TestComputeWorkBoundFloorsBushyDAGs(t *testing.T) {
	c := paperCluster()
	p := shuffleHeavy()
	p.ShuffleBytes, p.OutputBytes = 0, 0
	p.ReduceTasks = 0
	// Eight parallel scan branches feeding one sink: the critical path is
	// two stages, but eight branches' work must fit in the slots.
	stages := []job.Stage{}
	for i := 0; i < 8; i++ {
		stages = append(stages, job.Stage{Name: "scan", Profile: p})
	}
	sinkProfile := p
	stages = append(stages, job.Stage{
		Name: "sink", Profile: sinkProfile,
		Upstream: []int{0, 1, 2, 3, 4, 5, 6, 7},
	})
	j := &job.Job{ID: 1, Stages: stages}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	// On one rack (30 slots), total map work = 9 stages x 100 GB / 1 GB/s
	// = 900 task-seconds over 30 slots = 30 s; the two-stage critical path
	// alone is only ~6.7 s.
	got := c.JobLatency(j, 1)
	if got < 29 {
		t.Fatalf("bushy DAG latency = %g, want >= work bound ~30", got)
	}
	// With all racks the work bound shrinks sevenfold.
	if wide := c.JobLatency(j, 7); wide >= got {
		t.Fatalf("widening did not help the bushy DAG: %g -> %g", got, wide)
	}
}
