package experiments

import (
	"reflect"
	"testing"
)

// TestFuzzGate is the corralcheck acceptance gate: the bundled fixed-seed
// sweep runs at least DefaultFuzzTraces randomized workload+fault traces
// under all three scheduler configurations with zero invariant
// violations, and the traces demonstrably exercised the fault machinery
// (jobs completed, and across the sweep at least one trace injected each
// fault class).
func TestFuzzGate(t *testing.T) {
	rep, err := RunFuzz(FuzzParams{Size: SizeS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traces < DefaultFuzzTraces {
		t.Fatalf("ran %d traces, want >= %d", rep.Traces, DefaultFuzzTraces)
	}
	if want := rep.Traces * len(fuzzSchedulers); rep.Runs != want {
		t.Fatalf("executed %d runs, want %d", rep.Runs, want)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("%d invariant violations:\n%v", len(rep.Violations), rep.Violations)
	}
	if rep.Completed == 0 {
		t.Fatal("no job completed across the sweep (vacuous gate)")
	}
	if len(rep.Completions) != rep.Completed {
		t.Fatalf("completions slice has %d entries for %d completed jobs",
			len(rep.Completions), rep.Completed)
	}
}

// TestFuzzTraceCoverage: the generator must actually produce every fault
// class somewhere in the bundled sweep — a fuzzer that never injects AM
// kills or corruption proves nothing about them.
func TestFuzzTraceCoverage(t *testing.T) {
	prof := profileFor(SizeS)
	var machineFaults, linkFaults, amKills, corruptions, crashy int
	for i := 0; i < DefaultFuzzTraces; i++ {
		seed := int64(1) + int64(i)*7919
		tr := genFuzzTrace(prof, seed, 100, []int{1, 2, 3, 4, 5})
		if len(tr.Failures) > 0 {
			machineFaults++
		}
		if len(tr.LinkFaults) > 0 {
			linkFaults++
		}
		if len(tr.AMFailures) > 0 {
			amKills++
		}
		if len(tr.Corruptions) > 0 {
			corruptions++
		}
		if tr.TaskFailureProb > 0.01 {
			crashy++
		}
		for _, af := range tr.AMFailures {
			if af.At < 0 || af.At > 100 {
				t.Fatalf("trace %d: AM failure outside horizon: %+v", i, af)
			}
		}
		for _, c := range tr.Corruptions {
			if c.Machine < 0 || c.Machine >= prof.topo.Machines() {
				t.Fatalf("trace %d: corruption targets bad machine: %+v", i, c)
			}
		}
	}
	for _, cls := range []struct {
		name string
		n    int
	}{
		{"machine failures", machineFaults},
		{"link faults", linkFaults},
		{"AM kills", amKills},
		{"corruptions", corruptions},
		{"task crashes", crashy},
	} {
		if cls.n == 0 {
			t.Errorf("no trace in the bundled sweep injects %s", cls.name)
		}
	}
}

// TestFuzzDeterminism: the whole sweep is a pure function of the params,
// and the seed genuinely reaches the generated traces.
func TestFuzzDeterminism(t *testing.T) {
	params := func(seed int64) FuzzParams {
		return FuzzParams{Size: SizeS, Seed: seed, Traces: 4}
	}
	reports := map[int64]*FuzzReport{}
	for _, seed := range []int64{3, 77} {
		first, err := RunFuzz(params(seed))
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		second, err := RunFuzz(params(seed))
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: fuzz sweep not reproducible", seed)
		}
		reports[seed] = first
	}
	if reflect.DeepEqual(reports[int64(3)], reports[int64(77)]) {
		t.Error("seeds 3 and 77 produced identical fuzz reports; the seed is not reaching the traces")
	}
}

// TestAttritionSweepGate is the tentpole acceptance gate: with retries,
// backoff and blacklisting at their defaults, every job completes at
// every bundled crash probability, and average completion time degrades
// monotonically as the crash rate rises.
func TestAttritionSweepGate(t *testing.T) {
	rep, err := RunAttrition(Params{Size: SizeS, Seed: 1}, DefaultAttritionProbs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != len(DefaultAttritionProbs) {
		t.Fatalf("%d runs for %d probabilities", len(rep.Runs), len(DefaultAttritionProbs))
	}
	prev := rep.Clean.AvgCompletionTime()
	for _, run := range rep.Runs {
		if run.Result.FailedJobs != 0 {
			t.Errorf("p=%g: %d jobs failed; retries must carry every job to completion",
				run.Prob, run.Result.FailedJobs)
		}
		for _, jr := range run.Result.Jobs {
			if !jr.Failed && jr.CompletionTime <= 0 {
				t.Fatalf("p=%g: job %d never completed", run.Prob, jr.ID)
			}
		}
		avg := run.Result.AvgCompletionTime()
		if avg < prev {
			t.Errorf("p=%g: avg completion %.3f improved on previous level %.3f; degradation must be monotone",
				run.Prob, avg, prev)
		}
		prev = avg
	}
}
