package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// scaleTestCell keeps the scale tests inside unit-test budgets: 200
// machines is 5 racks of 40 — big enough to exercise the cross-rack fabric
// and the mid-flight snapshot, small enough for seconds of wall time.
const scaleTestCell = 200

// TestScaleDeterminism mirrors TestBatchDeterminism for the scale suite:
// the same seed must reproduce the cell's full runtime.Result bit for bit,
// and the cell's own built-in verification (same-seed rerun plus mid-flight
// snapshot/resume) must pass. Two seeds guard against seed-plumbing
// mistakes a single seed would hide.
func TestScaleDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		p := ScaleParams{Seed: seed, Machines: []int{scaleTestCell}}
		first, err := RunScale(p)
		if err != nil {
			t.Fatalf("seed %d: first sweep: %v", seed, err)
		}
		second, err := RunScale(p)
		if err != nil {
			t.Fatalf("seed %d: second sweep: %v", seed, err)
		}
		for i := range first.Cells {
			a, b := first.Cells[i], second.Cells[i]
			if !a.DeterminismOK || !a.ResumeOK {
				t.Errorf("seed %d: cell %d machines failed verification: %s", seed, a.Machines, a.Detail)
			}
			if !reflect.DeepEqual(a.Result, b.Result) {
				t.Errorf("seed %d: %d machines not reproducible across sweeps:\n run1: %+v\n run2: %+v",
					seed, a.Machines, summarize(a.Result), summarize(b.Result))
			}
		}
	}
}

// TestScaleSeedsActuallyDiffer guards the vacuous-pass direction: distinct
// seeds must change the workload, or TestScaleDeterminism proves nothing.
func TestScaleSeedsActuallyDiffer(t *testing.T) {
	a, err := RunScale(ScaleParams{Seed: 1, Machines: []int{scaleTestCell}, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(ScaleParams{Seed: 42, Machines: []int{scaleTestCell}, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells[0].Result, b.Cells[0].Result) {
		t.Error("seeds 1 and 42 produced identical scale results; the seed is not reaching the simulation")
	}
}

// TestScalePolicyEquivalence is the tentpole's contract at the integration
// level: the incremental allocator, the grouped full recompute and the
// original per-pass MaxMinFair must drive bit-identical simulations — same
// events, same completions, same makespan — because they compute the same
// max-min allocation, just at different cost.
func TestScalePolicyEquivalence(t *testing.T) {
	results := map[string]*ScaleReport{}
	for _, net := range []string{"", "maxmin-incremental", "maxmin-grouped", "maxmin"} {
		rep, err := RunScale(ScaleParams{Seed: 7, Machines: []int{scaleTestCell}, Network: net, SkipVerify: true})
		if err != nil {
			t.Fatalf("network %q: %v", net, err)
		}
		results[net] = rep
	}
	base := results[""].Cells[0].Result
	for net, rep := range results {
		if !reflect.DeepEqual(rep.Cells[0].Result, base) {
			t.Errorf("network %q diverged from the default allocator:\n got:  %+v\n want: %+v",
				net, summarize(rep.Cells[0].Result), summarize(base))
		}
	}
}

// TestScaleWorkerCountInvariance pins the sweep-pool contract for the
// report path: every semantic key (everything not wallclock_-prefixed) is
// identical whether the intra-cell verification fans out over 1 or 8
// workers.
func TestScaleWorkerCountInvariance(t *testing.T) {
	defer SetSweepWorkers(0)
	run := func(workers int) *Report {
		t.Helper()
		SetSweepWorkers(workers)
		r, err := ScaleWithMachines(Params{Size: SizeS, Seed: 3}, []int{scaleTestCell})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	serial, parallel := run(1), run(8)
	if got := serial.Values["verification_failures"]; got != 0 {
		t.Fatalf("verification_failures = %v, want 0", got)
	}
	for _, k := range serial.Keys() {
		if strings.HasPrefix(k, "wallclock_") {
			continue
		}
		if serial.Values[k] != parallel.Values[k] {
			t.Errorf("key %q differs across worker counts: serial %v, parallel %v",
				k, serial.Values[k], parallel.Values[k])
		}
	}
	if len(serial.Keys()) != len(parallel.Keys()) {
		t.Errorf("key sets differ: serial %d keys, parallel %d", len(serial.Keys()), len(parallel.Keys()))
	}
}

// TestScaleParamErrors covers the sweep's input validation.
func TestScaleParamErrors(t *testing.T) {
	if _, err := RunScale(ScaleParams{Machines: []int{10}}); err == nil {
		t.Error("sub-rack cell accepted; want error")
	}
	if _, err := RunScale(ScaleParams{Machines: []int{scaleTestCell}, Network: "bogus"}); err == nil {
		t.Error("unknown network policy accepted; want error")
	}
}

// TestScaleLadder pins the Size ladders CI and nightly reference.
func TestScaleLadder(t *testing.T) {
	for _, tc := range []struct {
		size Size
		want []int
	}{
		{SizeS, []int{2000}},
		{SizeM, []int{2000, 5000}},
		{SizeL, []int{2000, 5000, 10000}},
	} {
		if got := ScaleLadder(tc.size); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ScaleLadder(%v) = %v, want %v", tc.size, got, tc.want)
		}
	}
}
