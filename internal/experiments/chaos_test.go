package experiments

import (
	"reflect"
	"testing"
)

// TestChaosDeterminism: the full chaos sweep — trace generation plus three
// scheduler runs per intensity — must be a pure function of (params, seed).
// Two seeds guard against a constant-seed fallback passing vacuously.
func TestChaosDeterminism(t *testing.T) {
	params := func(seed int64) ChaosParams {
		return ChaosParams{Size: SizeS, Seed: seed, Intensities: []float64{0.2, 0.5}}
	}
	reports := map[int64]*ChaosReport{}
	for _, seed := range []int64{1, 42} {
		first, err := RunChaos(params(seed))
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		second, err := RunChaos(params(seed))
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: chaos sweep not reproducible", seed)
		}
		reports[seed] = first
	}
	if reflect.DeepEqual(reports[int64(1)], reports[int64(42)]) {
		t.Error("seeds 1 and 42 produced identical chaos reports; the seed is not reaching the traces")
	}
}

// TestChaosTraceShape sanity-checks generated traces: bounded within the
// horizon, transient downtimes, and every uplink degradation paired with a
// restore so no fault is permanent.
func TestChaosTraceShape(t *testing.T) {
	topo := profileFor(SizeS).topo
	failures, faults := GenChaosTrace(topo, 7, 0.5, 100)
	if len(failures) == 0 {
		t.Fatal("intensity 0.5 produced no machine failures")
	}
	for _, f := range failures {
		if f.At < 0 || f.At >= 100 {
			t.Fatalf("failure outside horizon: %+v", f)
		}
		if f.Downtime <= 0 || f.Downtime > 100*0.15*1.5 {
			t.Fatalf("downtime out of bounds: %+v", f)
		}
		if f.Machine < 0 || f.Machine >= topo.Machines() {
			t.Fatalf("failure targets bad machine: %+v", f)
		}
	}
	degraded := map[int]float64{} // rack -> last factor seen
	for _, lf := range faults {
		if lf.Rack < 0 || lf.Rack >= topo.Racks {
			t.Fatalf("fault targets bad rack: %+v", lf)
		}
		degraded[lf.Rack] = lf.Factor
	}
	for r, f := range degraded {
		if f != 1 {
			t.Errorf("rack %d trace ends degraded (factor %g); faults must always restore", r, f)
		}
	}
	if f0, _ := GenChaosTrace(topo, 7, 0, 100); f0 != nil {
		t.Error("zero intensity should produce an empty trace")
	}
}

// TestChaosGracefulDegradation is the acceptance gate on the bundled
// trace: at every fault intensity, Corral with failure-triggered
// replanning completes jobs on average no later than constraint-drop-only
// Corral, and no later than the Yarn-CS baseline.
func TestChaosGracefulDegradation(t *testing.T) {
	rep, err := RunChaos(ChaosParams{Size: SizeS, Seed: 1, Intensities: DefaultChaosIntensities})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for _, run := range rep.Runs {
		y, d, pl := avgCompletion(run.Yarn), avgCompletion(run.CorralDrop), avgCompletion(run.CorralReplan)
		if pl > d+eps {
			t.Errorf("intensity %g: replanning degraded Corral: %.3f > drop-only %.3f",
				run.Intensity, pl, d)
		}
		if pl > y+eps {
			t.Errorf("intensity %g: Corral+replan lost to Yarn-CS: %.3f > %.3f",
				run.Intensity, pl, y)
		}
		for _, res := range []struct {
			name string
			avg  float64
		}{{"yarn", y}, {"drop", d}, {"replan", pl}} {
			if res.avg <= 0 {
				t.Errorf("intensity %g: %s jobs did not all complete", run.Intensity, res.name)
			}
		}
	}
}
