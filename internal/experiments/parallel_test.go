package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetSweepWorkers(workers)
		hits := make([]int32, 100)
		if err := parallelFor(len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	SetSweepWorkers(0)
	if err := parallelFor(0, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Fatalf("n=0: unexpected error: %v", err)
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	defer SetSweepWorkers(0)
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		SetSweepWorkers(workers)
		err := parallelFor(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got error %v, want the lowest-index error %v", workers, err, errLow)
		}
	}
}

// TestSweepWorkerCountInvariance is the core parallel-sweep determinism
// gate: the same chaos sweep must produce a DeepEqual report whether the
// cells run serially or across a wide worker pool — worker scheduling must
// never leak into Results.
func TestSweepWorkerCountInvariance(t *testing.T) {
	defer SetSweepWorkers(0)
	p := ChaosParams{Size: SizeS, Seed: 7, Intensities: []float64{0.2, 0.5}}
	SetSweepWorkers(1)
	serial, err := RunChaos(p)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	SetSweepWorkers(8)
	parallel, err := RunChaos(p)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("chaos sweep results differ between 1 and 8 workers")
	}
}

// TestParallelSweepTwoSeedReplay replays a parallel chaos sweep twice per
// seed with the full worker pool: reports must be bit-identical per seed
// and differ across seeds (anti-vacuity).
func TestParallelSweepTwoSeedReplay(t *testing.T) {
	defer SetSweepWorkers(0)
	SetSweepWorkers(8)
	reports := map[int64]*ChaosReport{}
	for _, seed := range []int64{3, 9} {
		p := ChaosParams{Size: SizeS, Seed: seed, Intensities: []float64{0.3}}
		first, err := RunChaos(p)
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		second, err := RunChaos(p)
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: parallel chaos sweep not bit-identical across replays", seed)
		}
		reports[seed] = first
	}
	if reflect.DeepEqual(reports[int64(3)], reports[int64(9)]) {
		t.Error("seeds 3 and 9 produced identical parallel sweeps; seed plumbing is broken")
	}
}

// TestGroupedPolicyResultsIdentical is the runtime-level half of the
// allocator differential: a full simulated execution (placement, shuffle,
// DFS writes, accounting) must produce a DeepEqual Result under the
// reference MaxMinFair and the grouped fast path.
func TestGroupedPolicyResultsIdentical(t *testing.T) {
	prof := profileFor(SizeS)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, 11, 0)
	plan, err := planJobs(topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p netsim.Policy) *runtime.Result {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: 11,
			Network: p,
		}, workload.Clone(jobs))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return res
	}
	ref := run(netsim.MaxMinFair{})
	got := run(netsim.NewGroupedMaxMin())
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("results diverge between MaxMinFair and GroupedMaxMin:\n maxmin:  %+v\n grouped: %+v", ref, got)
	}
}
