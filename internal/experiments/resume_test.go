package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"corral/internal/invariants"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/workload"
)

// failureArtifact is where a failing equivalence point's snapshot is
// persisted so CI can upload it for offline debugging (corralsnap inspect).
const failureArtifact = "resume-failure.snap.json"

// resumeSweep runs the equivalence sweep for one seed at a given worker
// count, failing the test on infrastructure errors and persisting the
// first mismatching point's snapshot as an artifact.
func resumeSweep(t *testing.T, seed int64, workers int) *ResumeReport {
	t.Helper()
	SetSweepWorkers(workers)
	defer SetSweepWorkers(0)
	rep, err := RunResumeEquivalence(ResumeParams{Size: SizeS, Seed: seed, Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range rep.Points {
		if !pt.Match && pt.Snapshot != nil {
			if werr := os.WriteFile(failureArtifact, pt.Snapshot, 0o644); werr == nil {
				t.Logf("wrote mismatching snapshot to %s", failureArtifact)
			}
			break
		}
	}
	return rep
}

// TestResumeDeterminism is the crash-resume equivalence gate: for two
// seeds and three random mid-flight snapshot points each, a run restored
// from serialized snapshot bytes must finish with a bit-identical Result
// and trace export, at any sweep worker count.
func TestResumeDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		for _, workers := range []int{1, 8} {
			rep := resumeSweep(t, seed, workers)
			if ms := rep.Mismatches(); len(ms) != 0 {
				t.Fatalf("seed %d workers %d: %d equivalence mismatches:\n%s",
					seed, workers, len(ms), strings.Join(ms, "\n"))
			}
		}
	}
}

// TestResumeSeedsActuallyDiffer guards the gate against vacuity: if two
// seeds produced identical baselines, the equivalence sweep could pass on
// a constant-output bug.
func TestResumeSeedsActuallyDiffer(t *testing.T) {
	prof := profileFor(SizeS)
	var traces [][]byte
	for _, seed := range []int64{1, 42} {
		opts, jobs, err := resumeScenario(prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, tr, err := tracedBaseline(opts, jobs, "seed-diff")
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	if string(traces[0]) == string(traces[1]) {
		t.Fatal("seeds 1 and 42 produced identical baseline traces; equivalence checks are vacuous")
	}
}

// --- canned snapshot corpus -------------------------------------------------

var corpusSeeds = []int64{11, 23, 37}

func corpusDir() string { return filepath.Join("testdata", "snapshots") }

// TestFuzzSnapshotCorpus replays the canned mid-flight snapshots under
// testdata/snapshots: each must decode, resume cleanly under the invariant
// monitor, and finish with exactly the committed Result. The corpus is a
// cross-build compatibility gate — it catches schema or semantics drift
// that same-build round-trip tests cannot. Regenerate deliberately with
// UPDATE_SNAPSHOT_CORPUS=1 (and bump snapshot.Version if the schema
// changed). Name matches the `make fuzz` test pattern.
func TestFuzzSnapshotCorpus(t *testing.T) {
	if os.Getenv("UPDATE_SNAPSHOT_CORPUS") != "" {
		regenerateCorpus(t)
		return
	}
	prof := profileFor(SizeS)
	for _, seed := range corpusSeeds {
		name := fmt.Sprintf("fuzz-seed%d", seed)
		raw, err := os.ReadFile(filepath.Join(corpusDir(), name+".snap.json"))
		if err != nil {
			t.Fatalf("%v (regenerate with UPDATE_SNAPSHOT_CORPUS=1 go test ./internal/experiments/ -run TestFuzzSnapshotCorpus)", err)
		}
		wantRes, err := os.ReadFile(filepath.Join(corpusDir(), name+".result.json"))
		if err != nil {
			t.Fatal(err)
		}
		snap, err := snapshot.Decode(raw)
		if err != nil {
			t.Fatalf("%s: corpus snapshot does not decode: %v", name, err)
		}
		mon := invariants.NewMonitor(prof.topo.Machines(), prof.topo.SlotsPerMachine)
		res, err := runtime.Resume(snap, runtime.ResumeOptions{Probe: mon})
		if err != nil {
			t.Fatalf("%s: resume: %v", name, err)
		}
		if n := mon.ViolationCount(); n != 0 {
			t.Fatalf("%s: resumed corpus run raised %d violations: %v", name, n, mon.Violations())
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wantRes) {
			t.Fatalf("%s: resumed Result drifted from committed outcome\ngot:  %s\nwant: %s", name, got, wantRes)
		}
	}
}

func regenerateCorpus(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(corpusDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	prof := profileFor(SizeS)
	for _, seed := range corpusSeeds {
		name := fmt.Sprintf("fuzz-seed%d", seed)
		opts, jobs, err := resumeScenario(prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := runtime.Run(opts, workload.Clone(jobs))
		if err != nil {
			t.Fatal(err)
		}
		snap, err := runtime.CaptureAt(opts, workload.Clone(jobs),
			runtime.CheckpointTarget{EventIndex: base.Events / 2})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := snapshot.Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Resume(snap, runtime.ResumeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("%s: resume != baseline while regenerating corpus", name)
		}
		resRaw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(corpusDir(), name+".snap.json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(corpusDir(), name+".result.json"), resRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d snapshot bytes, captured at event %d)", name, len(raw), snap.Meta.EventIndex)
	}
}
