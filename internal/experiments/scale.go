package experiments

// Scale: the datacenter-scale fast-path suite (the "scale" registry entry
// and corralsim -exp scale). Each cell builds a synthetic 2k/5k/10k-machine
// cluster, streams a long online W1 arrival window through the Corral
// scheduler, and reports wall-clock, heap allocations and events/sec
// alongside the usual semantic Result metrics — the numbers the incremental
// max-min recompute and the allocation-lean event core are gated on.
//
// Every cell also re-verifies the repo's two standing contracts at scale:
//
//   - Determinism: the cell reruns with the same seed and the full
//     runtime.Result must be bit-identical (DeepEqual), exactly the
//     TestBatchDeterminism obligation at 2k-10k machines.
//   - Snapshot/resume equivalence: the cell is captured mid-flight at half
//     its event count, round-tripped through the snapshot codec, resumed,
//     and the resumed Result must again be bit-identical (the PR 7
//     crash-resume contract).
//
//   - Plan equivalence: for cells small enough to afford it, the offline
//     plan is recomputed with the legacy serial provisioning engine
//     (planner.Input.Serial) and must be DeepEqual to the fast path's —
//     the provisioning fast path's bit-identity contract, re-proven at
//     scale-suite shapes on every CI run.
//
// Plan wall-clock is a first-class gated metric: each cell carries a
// generous per-cell budget (planBudgetSeconds, ~15× above measured fast-
// path times) and a cell whose plan exceeds it fails verification. This is
// the one deliberately host-dependent verdict — it exists to catch a
// regression to pre-fast-path planning times (~80 s per 10k plan), which
// no bit-exact comparison can see.
//
// Determinism obligations: all other semantic outputs (Result fields, job
// counts, the remaining verification verdicts) are pure functions of
// ScaleParams. Wall-clock, allocation and events/sec figures are
// measurements of the host machine and are exported only under
// "wallclock_"-prefixed report keys, which the determinism tests and CI
// comparisons exclude by convention (the same split planning.go uses for
// Fig 5 planner running times).

import (
	"fmt"
	"reflect"
	goruntime "runtime"
	"time"

	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/topology"
	"corral/internal/workload"
)

// scaleMachinesPerRack fixes the rack width of the synthetic clusters (the
// Fig 5 planner-scaling model uses the same 40-machine racks).
const scaleMachinesPerRack = 40

// ScaleLadder returns the machine counts the given Size sweeps: the small
// cell is CI's quick gate, medium adds the 5k cell, and large is the full
// 2k/5k/10k nightly ladder.
func ScaleLadder(size Size) []int {
	switch size {
	case SizeS:
		return []int{2000}
	case SizeL:
		return []int{2000, 5000, 10000}
	default:
		return []int{2000, 5000}
	}
}

// ScaleParams configures a scale sweep.
type ScaleParams struct {
	Size Size
	Seed int64
	// Machines overrides the Size's ladder with explicit cell sizes (the
	// corralsim -machines flag); nil selects ScaleLadder(Size).
	Machines []int
	// Network selects the flow policy by snapshot-spec name ("" = the
	// default incremental max-min; "maxmin-grouped" = the pre-incremental
	// full recompute, kept for before/after measurements).
	Network string
	// SkipVerify drops the determinism-rerun and snapshot/resume checks,
	// leaving only the timed run — for pure measurement sweeps.
	SkipVerify bool
}

// ScaleCell is one machine count's outcome.
type ScaleCell struct {
	Machines int
	Racks    int
	Jobs     int
	Result   *runtime.Result
	// PlanObjective is the offline plan's estimated objective value — a
	// pure function of the cell parameters, exported as a semantic key so
	// any change to planner output shows up as gated drift.
	PlanObjective float64

	// Verification verdicts (true when SkipVerify is set: nothing failed).
	// PlanOK covers both the serial-equivalence check (cells up to
	// scalePlanEquivMachines) and the plan wall-clock budget.
	DeterminismOK bool
	ResumeOK      bool
	PlanOK        bool
	Detail        string // first divergence when a verdict is false

	// Host measurements — excluded from determinism comparisons.
	PlanSeconds  float64
	WallSeconds  float64
	EventsPerSec float64
	AllocObjects float64 // heap objects allocated during the timed run
	AllocMB      float64 // heap bytes allocated during the timed run, MB
}

// ScaleReport is the sweep outcome.
type ScaleReport struct {
	Cells []ScaleCell
}

// Failures returns the cells whose determinism, resume or plan check
// failed.
func (r *ScaleReport) Failures() []string {
	var out []string
	for _, c := range r.Cells {
		if !c.DeterminismOK || !c.ResumeOK || !c.PlanOK {
			out = append(out, fmt.Sprintf("%d machines: %s", c.Machines, c.Detail))
		}
	}
	return out
}

// scalePlanEquivMachines caps the cells that rerun provisioning with the
// legacy serial engine for the plan-equivalence check: the serial engine
// is exactly what the fast path replaced (~1 s per 2k plan, ~80 s per 10k
// plan), so re-proving bit-identity on every run is only affordable on
// the small cell. Larger cells rely on the budget gate plus the planner's
// own differential fuzz tests.
const scalePlanEquivMachines = 2000

// planBudgetSeconds is the per-cell plan wall-clock gate: machines/4000
// seconds (0.5 s at 2k, 2.5 s at 10k) — roughly 15× above measured
// fast-path times on a developer machine and far below the pre-fast-path
// serial engine (~1 s at 2k, ~80 s at 10k), so a regression to serial
// provisioning trips it even on a much faster host.
func planBudgetSeconds(machines int) float64 { return float64(machines) / 4000 }

// scaleTopo builds the synthetic cluster for one cell: machines/40 racks of
// 40 machines, 2 slots each, 10 Gbps NICs at 5:1 oversubscription.
func scaleTopo(machines int) topology.Config {
	racks := machines / scaleMachinesPerRack
	if racks < 1 {
		racks = 1
	}
	return topology.Config{
		Racks:            racks,
		MachinesPerRack:  scaleMachinesPerRack,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

// scaleWorkload generates the cell's online W1 stream. The job count grows
// sublinearly past the 2k cell (160 + machines/50: 200 jobs at 2k, 360 at
// 10k): the offline planner's provisioning phase is superlinear in
// jobs × racks, and the suite measures the *simulator's* scaling — racks,
// machines, concurrent flows — not the planner's, which Fig 5 already
// covers. Bytes and task counts are scaled down so cells complete in CI
// time while keeping thousands of concurrent flows in the air.
func scaleWorkload(machines int, seed int64) []*job.Job {
	return workload.W1(workload.Config{
		Seed:          seed,
		Jobs:          160 + machines/50,
		Scale:         1.0 / 8,
		TaskScale:     1.0 / 8,
		ArrivalWindow: float64(machines) / 20,
	})
}

// scalePolicy resolves ScaleParams.Network to a fresh policy instance per
// run (allocator scratch state must never be shared across concurrent
// runs). "" returns nil: the runtime's own default.
func scalePolicy(name string) (netsim.Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "maxmin-incremental":
		return netsim.NewIncrementalMaxMin(), nil
	case "maxmin-grouped":
		return netsim.NewGroupedMaxMin(), nil
	case "maxmin":
		return netsim.MaxMinFair{}, nil
	}
	return nil, fmt.Errorf("scale: unknown network policy %q", name)
}

// runScaleCell measures one cell and runs its verification passes.
func runScaleCell(p ScaleParams, machines int) (ScaleCell, error) {
	cell := ScaleCell{Machines: machines}
	topo := scaleTopo(machines)
	cell.Racks = topo.Racks
	jobs := scaleWorkload(machines, p.Seed)
	cell.Jobs = len(jobs)

	planStart := time.Now() //corralvet:ok wallclock the scale suite measures the planner's real running time per cell
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return cell, fmt.Errorf("scale %d machines: plan: %w", machines, err)
	}
	cell.PlanSeconds = time.Since(planStart).Seconds() //corralvet:ok wallclock the scale suite measures the planner's real running time per cell
	cell.PlanObjective = plan.ObjectiveValue()

	opts := func() (runtime.Options, error) {
		pol, err := scalePolicy(p.Network)
		if err != nil {
			return runtime.Options{}, err
		}
		return runtime.Options{
			Topology:  topo,
			Scheduler: runtime.Corral,
			Plan:      plan,
			Network:   pol,
			Seed:      p.Seed,
		}, nil
	}

	// Timed run: the measurement the CI scale gate and CHANGES.md
	// before/after numbers come from. MemStats deltas count every heap
	// allocation the run makes (the alloc-lean event core's target).
	o, err := opts()
	if err != nil {
		return cell, err
	}
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now() //corralvet:ok wallclock the scale suite measures simulator throughput (wall-clock, events/sec)
	res, err := runtime.Run(o, workload.Clone(jobs))
	if err != nil {
		return cell, fmt.Errorf("scale %d machines: run: %w", machines, err)
	}
	cell.WallSeconds = time.Since(start).Seconds() //corralvet:ok wallclock the scale suite measures simulator throughput (wall-clock, events/sec)
	goruntime.ReadMemStats(&after)
	cell.Result = res
	cell.AllocObjects = float64(after.Mallocs - before.Mallocs)
	cell.AllocMB = float64(after.TotalAlloc-before.TotalAlloc) / 1e6
	if cell.WallSeconds > 0 {
		cell.EventsPerSec = float64(res.Events) / cell.WallSeconds
	}

	cell.DeterminismOK, cell.ResumeOK, cell.PlanOK = true, true, true
	if p.SkipVerify {
		return cell, nil
	}

	// Plan wall-clock budget: the deliberately host-dependent gate (see
	// the package comment) that catches a regression to pre-fast-path
	// planning times.
	if budget := planBudgetSeconds(machines); cell.PlanSeconds > budget {
		cell.PlanOK = false
		cell.Detail = fmt.Sprintf("plan took %.2fs, budget %.2fs (fast-path regression?)",
			cell.PlanSeconds, budget)
	}

	// Verification passes are independent of each other, so they fan out
	// over the sweep pool; each writes only its own index-addressed detail
	// slot (sweepsafe), merged serially below.
	details := make([]string, 3)
	if err := parallelFor(3, func(i int) error {
		o, err := opts()
		if err != nil {
			return err
		}
		switch i {
		case 0: // determinism rerun: same seed, bit-identical Result
			again, err := runtime.Run(o, workload.Clone(jobs))
			if err != nil {
				return fmt.Errorf("scale %d machines: determinism rerun: %w", machines, err)
			}
			if !reflect.DeepEqual(again, res) {
				details[i] = fmt.Sprintf("rerun diverged (makespan %.6f vs %.6f, events %d vs %d)",
					again.Makespan, res.Makespan, again.Events, res.Events)
			}
		case 1: // snapshot at half the events, codec round-trip, resume
			snap, err := runtime.CaptureAt(o, workload.Clone(jobs),
				runtime.CheckpointTarget{EventIndex: res.Events / 2})
			if err != nil {
				return fmt.Errorf("scale %d machines: capture: %w", machines, err)
			}
			raw, err := snapshot.Encode(snap)
			if err != nil {
				return fmt.Errorf("scale %d machines: encode: %w", machines, err)
			}
			decoded, err := snapshot.Decode(raw)
			if err != nil {
				return fmt.Errorf("scale %d machines: decode: %w", machines, err)
			}
			resumed, err := runtime.Resume(decoded, runtime.ResumeOptions{})
			if err != nil {
				details[i] = fmt.Sprintf("resume failed: %v", err)
				return nil
			}
			if !reflect.DeepEqual(resumed, res) {
				details[i] = fmt.Sprintf("resumed Result diverged (makespan %.6f vs %.6f)",
					resumed.Makespan, res.Makespan)
			}
		case 2: // plan equivalence: fast path vs legacy serial provisioning
			if machines > scalePlanEquivMachines {
				return nil
			}
			serial, err := planJobsSerial(topo, jobs, planner.MinimizeAvgCompletion)
			if err != nil {
				return fmt.Errorf("scale %d machines: serial plan: %w", machines, err)
			}
			if !reflect.DeepEqual(serial, plan) {
				details[i] = fmt.Sprintf("fast-path plan diverged from serial reference (objective %.6f vs %.6f)",
					plan.ObjectiveValue(), serial.ObjectiveValue())
			}
		}
		return nil
	}); err != nil {
		return cell, err
	}
	if details[0] != "" {
		cell.DeterminismOK, cell.Detail = false, details[0]
	}
	if details[1] != "" {
		cell.ResumeOK = false
		if cell.Detail == "" {
			cell.Detail = details[1]
		}
	}
	if details[2] != "" {
		cell.PlanOK = false
		if cell.Detail == "" {
			cell.Detail = details[2]
		}
	}
	return cell, nil
}

// RunScale runs the scale sweep. Cells run serially (never through the
// sweep pool) so each cell's wall-clock measures an unloaded host; only the
// intra-cell verification passes parallelize.
func RunScale(p ScaleParams) (*ScaleReport, error) {
	cells := p.Machines
	if len(cells) == 0 {
		cells = ScaleLadder(p.Size)
	}
	rep := &ScaleReport{}
	for _, m := range cells {
		if m < scaleMachinesPerRack {
			return nil, fmt.Errorf("scale: cell of %d machines is below one %d-machine rack", m, scaleMachinesPerRack)
		}
		cell, err := runScaleCell(p, m)
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// ScaleWithMachines renders a scale sweep as an ExperimentReport for an
// explicit cell list (the corralsim -machines flag); nil machines selects
// the Size's ladder.
func ScaleWithMachines(p Params, machines []int) (*Report, error) {
	rep, err := RunScale(ScaleParams{Size: p.Size, Seed: p.Seed, Machines: machines})
	if err != nil {
		return nil, err
	}
	r := newReport("scale: datacenter-scale fast path (wall-clock, allocs, events/sec)")
	t := &metrics.Table{
		Title:   "online W1 stream under Corral; verification = same-seed rerun + mid-flight snapshot/resume + plan serial-equivalence/budget",
		Columns: []string{"machines", "racks", "jobs", "events", "makespan (s)", "plan (s)", "wall (s)", "ev/s", "allocs/ev", "deterministic", "resume", "plan ok"},
	}
	verdict := func(ok bool, detail string) string {
		if ok {
			return "yes"
		}
		return "NO: " + detail
	}
	failures := 0
	for _, c := range rep.Cells {
		res := c.Result
		allocsPerEv := 0.0
		if res.Events > 0 {
			allocsPerEv = c.AllocObjects / float64(res.Events)
		}
		t.AddRow(
			fmt.Sprintf("%d", c.Machines), fmt.Sprintf("%d", c.Racks), fmt.Sprintf("%d", c.Jobs),
			fmt.Sprintf("%d", res.Events), metrics.F(res.Makespan, 2),
			metrics.F(c.PlanSeconds, 2), metrics.F(c.WallSeconds, 2),
			metrics.F(c.EventsPerSec, 0), metrics.F(allocsPerEv, 1),
			verdict(c.DeterminismOK, c.Detail), verdict(c.ResumeOK, c.Detail),
			verdict(c.PlanOK, c.Detail))
		if !c.DeterminismOK || !c.ResumeOK || !c.PlanOK {
			failures++
		}
		// Semantic keys: pure functions of (Size, Seed, Machines).
		r.set(fmt.Sprintf("machines_%d_events", c.Machines), float64(res.Events))
		r.set(fmt.Sprintf("machines_%d_makespan", c.Machines), res.Makespan)
		r.set(fmt.Sprintf("machines_%d_jobs", c.Machines), float64(c.Jobs))
		r.set(fmt.Sprintf("machines_%d_failed_jobs", c.Machines), float64(res.FailedJobs))
		r.set(fmt.Sprintf("machines_%d_plan_objective", c.Machines), c.PlanObjective)
		// Host measurements: wallclock_ prefix keeps them out of
		// determinism comparisons and CI metric gates.
		r.set(fmt.Sprintf("wallclock_%d_seconds", c.Machines), c.WallSeconds)
		r.set(fmt.Sprintf("wallclock_%d_plan_seconds", c.Machines), c.PlanSeconds)
		r.set(fmt.Sprintf("wallclock_%d_events_per_sec", c.Machines), c.EventsPerSec)
		r.set(fmt.Sprintf("wallclock_%d_allocs_per_event", c.Machines), allocsPerEv)
		r.set(fmt.Sprintf("wallclock_%d_alloc_mb", c.Machines), c.AllocMB)
	}
	r.table(t)
	r.set("cells", float64(len(rep.Cells)))
	r.set("verification_failures", float64(failures))
	return r, nil
}

// Scale is the registry entry: the Size's full ladder.
func Scale(p Params) (*Report, error) { return ScaleWithMachines(p, nil) }
