package experiments

import (
	"fmt"

	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
)

// Fig8 reports online completion-time distributions for W1/W2/W3 under all
// four schedulers (paper: Corral 30-56% better than Yarn-CS at the median,
// 26-36% on average).
func Fig8(p Params) (*Report, error) {
	r := newReport("Fig 8: completion time CDFs, online arrivals")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	for _, w := range batchWorkloads(p.Size) {
		jobs, err := genOnlineWorkload(w, prof, p.Seed)
		if err != nil {
			return nil, err
		}
		res, err := runAll(topo, jobs, planner.MinimizeAvgCompletion, p.Seed, allSchedulers...)
		if err != nil {
			return nil, err
		}
		t := &metrics.Table{
			Title:   w + ": completion time percentiles (seconds)",
			Columns: []string{"percentile", "yarn-cs", "corral", "local-shuffle", "shufflewatcher"},
		}
		times := map[runtime.Kind][]float64{}
		for _, k := range allSchedulers {
			times[k] = completionTimes(res[k], nil)
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			row := []string{fmt.Sprintf("p%d", int(q*100))}
			for _, k := range allSchedulers {
				row = append(row, metrics.F(metrics.Percentile(times[k], q), 1))
			}
			t.AddRow(row...)
		}
		r.table(t)
		baseMed := metrics.Percentile(times[runtime.YarnCS], 0.5)
		corralMed := metrics.Percentile(times[runtime.Corral], 0.5)
		r.set(w+"_median_reduction_pct", metrics.Reduction(baseMed, corralMed))
		r.set(w+"_avg_reduction_pct", metrics.Reduction(
			res[runtime.YarnCS].AvgCompletionTime(), res[runtime.Corral].AvgCompletionTime()))
	}
	return r, nil
}

// Fig9 reports the online average-completion-time reduction by job size
// bin for W1 (paper: Corral 30-36% across bins; ShuffleWatcher helps small
// jobs but hurts large ones).
func Fig9(p Params) (*Report, error) {
	r := newReport("Fig 9: reduction in average job time by job size, W1 online")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs, err := genOnlineWorkload("W1", prof, p.Seed)
	if err != nil {
		return nil, err
	}
	res, err := runAll(topo, jobs, planner.MinimizeAvgCompletion, p.Seed, allSchedulers...)
	if err != nil {
		return nil, err
	}
	bins := []struct {
		name string
		keep func(*runtime.JobResult) bool
	}{
		{"small", func(j *runtime.JobResult) bool { return j.Name == "w1-small" }},
		{"medium", func(j *runtime.JobResult) bool { return j.Name == "w1-medium" }},
		{"large", func(j *runtime.JobResult) bool { return j.Name == "w1-large" }},
	}
	t := &metrics.Table{
		Title:   "% reduction in average completion time vs Yarn-CS",
		Columns: []string{"bin", "corral", "local-shuffle", "shufflewatcher"},
	}
	for _, b := range bins {
		base := metrics.Mean(completionTimes(res[runtime.YarnCS], b.keep))
		row := []string{b.name}
		for _, k := range []runtime.Kind{runtime.Corral, runtime.LocalShuffle, runtime.ShuffleWatcher} {
			red := metrics.Reduction(base, metrics.Mean(completionTimes(res[k], b.keep)))
			row = append(row, metrics.Pct(red))
			r.set(fmt.Sprintf("%s_%s_avg_reduction_pct", b.name, k), red)
		}
		t.AddRow(row...)
	}
	r.table(t)
	return r, nil
}
