package experiments

// corralcheck: property-based invariant fuzzing, plus the attrition sweep.
//
// The fuzzer generates randomized workload + fault traces — transient
// machine failures, uplink degradation windows, per-attempt task crashes,
// application-master kills and DFS replica corruption, all drawn from one
// seeded rng per trace — and replays each trace under Yarn-CS, Corral
// with the constraint-drop fallback, and Corral with failure-triggered
// replanning, with the invariant monitor (internal/invariants) attached.
// Any violation — slot leak, attempt on a dead or blacklisted machine,
// infeasible link rates, broken DFS byte accounting, a job that neither
// completes nor fails — is collected and reported. A fixed seed makes the
// whole sweep reproducible, so the fuzz gate in CI is a deterministic
// regression test that happens to have been born random.
//
// The attrition sweep is the measurement companion: the online W1
// workload under increasing task-crash probabilities, demonstrating that
// retries + blacklisting keep every job completing while completion
// times degrade smoothly (TestAttritionSweepGate).

import (
	"fmt"
	"math/rand"
	"reflect"

	"corral/internal/invariants"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/workload"
)

// FuzzParams configures a corralcheck sweep.
type FuzzParams struct {
	Size   Size
	Seed   int64
	Traces int // randomized traces; <=0 selects DefaultFuzzTraces
	// Snapshots adds a mid-flight snapshot + resume check per trace: the
	// corral-replan run is captured at its midpoint, restored from the
	// serialized bytes, and the resumed Result must deep-equal the
	// uninterrupted one. Divergence is reported as a violation.
	Snapshots bool
}

// DefaultFuzzTraces is the bundled sweep size; the CI gate runs at least
// this many traces.
const DefaultFuzzTraces = 25

// FuzzTrace is one generated workload + fault configuration.
type FuzzTrace struct {
	Seed            int64
	JobCount        int
	TaskFailureProb float64
	Failures        []runtime.Failure
	LinkFaults      []runtime.LinkFault
	AMFailures      []runtime.AMFailure
	Corruptions     []runtime.Corruption
}

// FuzzReport aggregates a corralcheck sweep.
type FuzzReport struct {
	Traces     int
	Runs       int      // simulation runs executed (3 schedulers per trace)
	Violations []string // labeled invariant violations across all runs
	Completed  int      // jobs that completed, summed over runs
	Failed     int      // jobs that failed terminally (legal under attrition)
	// Completions holds per-job completion times of every monitored run,
	// in run order, for the percentile summary.
	Completions []float64
}

// fuzzSchedulers are the three configurations every trace runs under.
var fuzzSchedulers = []struct {
	name   string
	kind   runtime.Kind
	plan   bool
	replan bool
}{
	{"yarn-cs", runtime.YarnCS, false, false},
	{"corral-drop", runtime.Corral, true, false},
	{"corral-replan", runtime.Corral, true, true},
}

// genFuzzTrace draws one trace configuration. Everything derives from the
// trace rng, so a trace is a pure function of (topology, seed, horizon,
// job IDs).
func genFuzzTrace(prof profile, seed int64, horizon float64, jobIDs []int) FuzzTrace {
	rng := rand.New(rand.NewSource(seed))
	tr := FuzzTrace{Seed: seed}
	// Machine failures + uplink windows reuse the chaos generator at a
	// randomized intensity (kept below the chaos gate's severe end: the
	// fuzzer explores interleavings, not outage Armageddon).
	intensity := 0.05 + 0.3*rng.Float64()
	tr.Failures, tr.LinkFaults = GenChaosTrace(prof.topo, rng.Int63(), intensity, horizon)
	// Task crashes: capped so the attempt budget (4) almost never
	// exhausts — job failures remain legal but rare, keeping the
	// completions summary meaningful.
	tr.TaskFailureProb = 0.12 * rng.Float64()
	// AM kills: each job's master dies within the horizon with p=0.15.
	for _, id := range jobIDs {
		if rng.Float64() < 0.15 {
			tr.AMFailures = append(tr.AMFailures, runtime.AMFailure{
				At: rng.Float64() * horizon, JobID: id,
			})
		}
	}
	// Silent corruption: a few replicas across the cluster.
	for k := rng.Intn(4); k > 0; k-- {
		tr.Corruptions = append(tr.Corruptions, runtime.Corruption{
			At: rng.Float64() * horizon, Machine: rng.Intn(prof.topo.Machines()),
		})
	}
	return tr
}

// RunFuzz executes the corralcheck sweep: Traces randomized traces, each
// replayed under the three scheduler configurations with the invariant
// monitor attached. The returned report is a pure function of the params.
func RunFuzz(p FuzzParams) (*FuzzReport, error) {
	if p.Traces <= 0 {
		p.Traces = DefaultFuzzTraces
	}
	prof := profileFor(p.Size)
	topo := prof.topo
	rep := &FuzzReport{Traces: p.Traces}
	// Each trace — workload generation, planning, clean run, trace
	// generation and the three monitored runs — is fully derived from its
	// own seed, so traces fan out over the sweep worker pool and their
	// outputs merge in trace order (see parallel.go for the rules).
	type traceOut struct {
		runs        int
		violations  []string
		completed   int
		failed      int
		completions []float64
	}
	outs := make([]traceOut, p.Traces)
	if err := parallelFor(p.Traces, func(i int) error {
		out := &outs[i]
		traceSeed := p.Seed + int64(i)*7919
		wrng := rand.New(rand.NewSource(traceSeed))
		// Randomized workload: a small W1 sample with arrivals spread
		// over a window the fuzzer also varies.
		nJobs := 3 + wrng.Intn(5)
		window := 20 + 60*wrng.Float64()
		jobs := workload.W1(prof.wcfg(traceSeed, nJobs, window))
		plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
		if err != nil {
			return fmt.Errorf("fuzz trace %d: plan: %w", i, err)
		}
		clean, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: traceSeed,
		}, workload.Clone(jobs))
		if err != nil {
			return fmt.Errorf("fuzz trace %d: clean run: %w", i, err)
		}
		ids := make([]int, len(jobs))
		for k, j := range jobs {
			ids[k] = j.ID
		}
		tr := genFuzzTrace(prof, traceSeed, clean.Makespan, ids)

		var replanRes *runtime.Result
		var replanOpts runtime.Options
		for _, sc := range fuzzSchedulers {
			mon := invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
			opts := runtime.Options{
				Topology:        topo,
				Scheduler:       sc.kind,
				Seed:            traceSeed,
				Failures:        tr.Failures,
				LinkFaults:      tr.LinkFaults,
				ReplanOnFailure: sc.replan,
				TaskFailureProb: tr.TaskFailureProb,
				AMFailures:      tr.AMFailures,
				Corruptions:     tr.Corruptions,
				Probe:           mon,
			}
			if sc.plan {
				opts.Plan = plan
			}
			res, err := runtime.Run(opts, workload.Clone(jobs))
			out.runs++
			label := fmt.Sprintf("trace %d (seed %d) %s", i, traceSeed, sc.name)
			if err != nil {
				out.violations = append(out.violations,
					fmt.Sprintf("%s: run error: %v", label, err))
				continue
			}
			for _, v := range mon.Violations() {
				out.violations = append(out.violations, label+": "+v)
			}
			if !mon.Ended() {
				out.violations = append(out.violations, label+": monitor never saw SimEnd")
			}
			if sc.replan {
				replanRes = res
				o := opts
				o.Probe = nil
				replanOpts = o
			}
			for k := range res.Jobs {
				jr := &res.Jobs[k]
				if jr.Failed {
					out.failed++
					continue
				}
				out.completed++
				out.completions = append(out.completions, jr.CompletionTime)
			}
		}
		// Mid-flight snapshot + resume check: restore the corral-replan run
		// from its serialized midpoint and require the resumed Result to be
		// bit-identical to the uninterrupted one.
		if p.Snapshots && replanRes != nil && replanRes.Events > 2 {
			label := fmt.Sprintf("trace %d (seed %d) snapshot-resume", i, traceSeed)
			idx := replanRes.Events / 2
			snap, err := runtime.CaptureAt(replanOpts, workload.Clone(jobs), runtime.CheckpointTarget{EventIndex: idx})
			if err != nil {
				out.violations = append(out.violations, fmt.Sprintf("%s: capture@%d: %v", label, idx, err))
				return nil
			}
			raw, err := snapshot.Encode(snap)
			if err != nil {
				out.violations = append(out.violations, fmt.Sprintf("%s: encode: %v", label, err))
				return nil
			}
			decoded, err := snapshot.Decode(raw)
			if err != nil {
				out.violations = append(out.violations, fmt.Sprintf("%s: decode: %v", label, err))
				return nil
			}
			mon := invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
			res, err := runtime.Resume(decoded, runtime.ResumeOptions{Probe: mon})
			out.runs++
			if err != nil {
				out.violations = append(out.violations, fmt.Sprintf("%s: resume@%d: %v", label, idx, err))
				return nil
			}
			for _, v := range mon.Violations() {
				out.violations = append(out.violations, label+": "+v)
			}
			if !reflect.DeepEqual(res, replanRes) {
				out.violations = append(out.violations,
					fmt.Sprintf("%s: resumed Result@%d differs from uninterrupted run", label, idx))
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i := range outs {
		rep.Runs += outs[i].runs
		rep.Violations = append(rep.Violations, outs[i].violations...)
		rep.Completed += outs[i].completed
		rep.Failed += outs[i].failed
		rep.Completions = append(rep.Completions, outs[i].completions...)
	}
	return rep, nil
}

// Fuzz is the corralcheck registry entry: the bundled 25-trace sweep.
func Fuzz(p Params) (*Report, error) {
	return FuzzWithTraces(p, DefaultFuzzTraces)
}

// FuzzWithTraces runs corralcheck with a caller-chosen trace count (the
// corralsim -fuzz-traces flag). Mid-flight snapshot + resume checks are
// always on for the bundled entry.
func FuzzWithTraces(p Params, traces int) (*Report, error) {
	r := newReport("corralcheck: randomized attrition traces under the invariant monitor")
	rep, err := RunFuzz(FuzzParams{Size: p.Size, Seed: p.Seed, Traces: traces, Snapshots: true})
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("%d traces x %d scheduler configs (seed-derived workloads and faults)",
			rep.Traces, len(fuzzSchedulers)),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("sim runs", metrics.F(float64(rep.Runs), 0))
	t.AddRow("invariant violations", metrics.F(float64(len(rep.Violations)), 0))
	t.AddRow("jobs completed", metrics.F(float64(rep.Completed), 0))
	t.AddRow("jobs failed terminally", metrics.F(float64(rep.Failed), 0))
	t.AddRow("completion p50 (s)", metrics.F(metrics.P50(rep.Completions), 1))
	t.AddRow("completion p95 (s)", metrics.F(metrics.P95(rep.Completions), 1))
	t.AddRow("completion p99 (s)", metrics.F(metrics.P99(rep.Completions), 1))
	r.table(t)
	r.set("traces", float64(rep.Traces))
	r.set("runs", float64(rep.Runs))
	r.set("violations", float64(len(rep.Violations)))
	r.set("jobs_completed", float64(rep.Completed))
	r.set("jobs_failed", float64(rep.Failed))
	r.set("completion_p50", metrics.P50(rep.Completions))
	r.set("completion_p95", metrics.P95(rep.Completions))
	r.set("completion_p99", metrics.P99(rep.Completions))
	// Violations are a gate failure; surface them in the rendered report
	// so a failing CI run is diagnosable from the log alone.
	if len(rep.Violations) > 0 {
		vt := &metrics.Table{Title: "violations", Columns: []string{"detail"}}
		for _, v := range rep.Violations {
			vt.AddRow(v)
		}
		r.table(vt)
	}
	return r, nil
}

// --- attrition sweep --------------------------------------------------------

// DefaultAttritionProbs is the bundled sweep of per-attempt crash
// probabilities: mild flakiness up to roughly every eighth attempt
// dying. The top level is chosen below the point where the default
// 4-attempt budget starts failing jobs (p^4 job-killing chains become
// non-negligible across hundreds of attempts beyond ~0.15).
var DefaultAttritionProbs = []float64{0.03, 0.08, 0.12}

// AttritionRun is one crash-probability level's outcome.
type AttritionRun struct {
	Prob   float64
	Result *runtime.Result
}

// AttritionReport is the sweep outcome.
type AttritionReport struct {
	Clean *runtime.Result
	Runs  []AttritionRun
}

// RunAttrition replays the online W1 workload under Corral with
// increasing per-attempt crash probabilities, with retries, backoff and
// blacklisting at their defaults. The invariant monitor is attached to
// every run; violations surface as errors (the sweep is also a check).
func RunAttrition(p Params, probs []float64) (*AttritionReport, error) {
	prof := profileFor(p.Size)
	topo := prof.topo
	jobs, err := genOnlineWorkload("W1", prof, p.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	rep := &AttritionReport{}
	// Crash-probability levels are independent monitored runs: fan them out
	// and collect in level order (see parallel.go for the rules).
	levels := append([]float64{0}, probs...)
	results := make([]*runtime.Result, len(levels))
	if err := parallelFor(len(levels), func(i int) error {
		prob := levels[i]
		mon := invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
			TaskFailureProb: prob, Probe: mon,
		}, workload.Clone(jobs))
		if err != nil {
			return fmt.Errorf("attrition p=%g: %w", prob, err)
		}
		if n := mon.ViolationCount(); n != 0 {
			return fmt.Errorf("attrition p=%g: %d invariant violations: %v",
				prob, n, mon.Violations())
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	rep.Clean = results[0]
	for i, prob := range probs {
		rep.Runs = append(rep.Runs, AttritionRun{Prob: prob, Result: results[i+1]})
	}
	return rep, nil
}

// Attrition is the registry entry: the bundled crash-probability sweep
// with completion-time percentiles per level.
func Attrition(p Params) (*Report, error) {
	r := newReport("Attrition: task retries + blacklisting under rising crash rates")
	rep, err := RunAttrition(p, DefaultAttritionProbs)
	if err != nil {
		return nil, err
	}
	cleanAvg := rep.Clean.AvgCompletionTime()
	t := &metrics.Table{
		Title:   "online W1 under Corral; per-attempt crash probability sweep",
		Columns: []string{"crash prob", "avg (s)", "p50", "p95", "p99", "failed jobs", "slowdown"},
	}
	r.set("clean_avg_completion", cleanAvg)
	for _, run := range rep.Runs {
		ct := run.Result.CompletionTimes()
		avg := run.Result.AvgCompletionTime()
		// Slowdown is +Inf when the clean baseline completed no jobs
		// (cleanAvg 0); F renders that as "+Inf", keeping the row valid.
		t.AddRow(metrics.F(run.Prob, 2), metrics.F(avg, 1),
			metrics.F(metrics.P50(ct), 1), metrics.F(metrics.P95(ct), 1), metrics.F(metrics.P99(ct), 1),
			metrics.F(float64(run.Result.FailedJobs), 0),
			metrics.F(metrics.Slowdown(cleanAvg, avg), 2))
		key := func(s string) string { return fmt.Sprintf("%s_p%02.0f", s, run.Prob*100) }
		r.set(key("avg"), avg)
		r.set(key("p95"), metrics.P95(ct))
		r.set(key("failed_jobs"), float64(run.Result.FailedJobs))
	}
	r.table(t)
	return r, nil
}
