package experiments

import (
	"reflect"
	"testing"

	"corral/internal/runtime"
)

// TestBatchDeterminism is the determinism regression gate: the same seed
// must reproduce the size-S batch suite bit for bit — the full
// runtime.Result structs (per-job completions, reduce-time vectors,
// cross-rack bytes, event counts), not just the makespan. Two seeds guard
// against seed-plumbing mistakes that a single seed would hide (e.g. a
// component falling back to a constant default seed would still be
// "deterministic" for one seed). Run with -race in CI so hidden
// concurrency, which would also break determinism, surfaces here.
func TestBatchDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		p := Params{Size: SizeS, Seed: seed}
		first, err := batchSuite(p, batchWorkloads(SizeS))
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		second, err := batchSuite(p, batchWorkloads(SizeS))
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		for _, w := range batchWorkloads(SizeS) {
			for _, k := range allSchedulers {
				a, b := first[w][k], second[w][k]
				if a == nil || b == nil {
					t.Fatalf("seed %d: %s/%v missing result", seed, w, k)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("seed %d: %s under %v not reproducible:\n run1: %+v\n run2: %+v",
						seed, w, k, summarize(a), summarize(b))
				}
			}
		}
	}
}

// TestSeedsActuallyDiffer guards the other direction: if two different
// seeds produce identical full results, the seed is not being threaded
// into the workload and runtime at all, and TestBatchDeterminism would
// pass vacuously.
func TestSeedsActuallyDiffer(t *testing.T) {
	a, err := batchSuite(Params{Size: SizeS, Seed: 1}, []string{"W3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := batchSuite(Params{Size: SizeS, Seed: 42}, []string{"W3"})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a["W3"][runtime.YarnCS], b["W3"][runtime.YarnCS]) {
		t.Error("seeds 1 and 42 produced identical results; the seed is not reaching the simulation")
	}
}

// summarize keeps failure output readable: the full Result (with per-job
// reduce vectors) is too large to dump wholesale.
func summarize(r *runtime.Result) map[string]any {
	return map[string]any{
		"makespan":       r.Makespan,
		"crossRackBytes": r.CrossRackBytes,
		"taskSeconds":    r.TaskSeconds,
		"inputRackCoV":   r.InputRackCoV,
		"events":         r.Events,
		"jobs":           len(r.Jobs),
	}
}
