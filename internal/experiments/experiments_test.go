package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func run(t *testing.T, f Func) *Report {
	t.Helper()
	r, err := f(Params{Size: SizeS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) == 0 {
		t.Fatal("report has no tables")
	}
	if !strings.Contains(r.String(), "###") {
		t.Fatal("report renders empty")
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) < 20 {
		t.Fatalf("registry has %d experiments, want >= 20", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := Lookup(e.ID); !ok {
			t.Fatalf("Lookup(%s) failed", e.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown ID succeeded")
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Size
		ok   bool
	}{
		{"s", SizeS, true}, {"small", SizeS, true},
		{"m", SizeM, true}, {"", SizeM, true},
		{"l", SizeL, true}, {"full", SizeL, true},
		{"xl", 0, false},
	} {
		got, err := ParseSize(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParseSize(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParseSize(%q) did not error", tc.in)
		}
	}
}

func TestFig1Predictability(t *testing.T) {
	r := run(t, Fig1)
	mape := r.Values["prediction_mape_pct"]
	if mape <= 1 || mape > 12 {
		t.Fatalf("MAPE = %g%%, want ~6.5%%", mape)
	}
}

func TestFig2Fractions(t *testing.T) {
	r := run(t, Fig2)
	for i, want := range []float64{0.75, 0.87, 0.95} {
		got := r.Values[keyf("cluster%d_under_one_rack_frac", i+1)]
		if got < want-0.03 || got > want+0.03 {
			t.Fatalf("cluster %d fraction = %g, want ~%g", i+1, got, want)
		}
	}
}

func keyf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestTable1Shape(t *testing.T) {
	r := run(t, Table1)
	if v := r.Values["input_gb_p50"]; v < 5 || v > 10 {
		t.Fatalf("input p50 = %g GB, want ~7.1", v)
	}
	if v := r.Values["shuffle_gb_p95"]; v < 50 || v > 100 {
		t.Fatalf("shuffle p95 = %g GB, want ~71.5", v)
	}
}

func TestLPGapSmall(t *testing.T) {
	r := run(t, LPGap)
	for _, k := range r.Keys() {
		gap := r.Values[k]
		if gap < -1e-6 {
			t.Fatalf("%s = %g%%: heuristic beat the LP lower bound", k, gap)
		}
		// The batch bound is the exact LP optimum; the online bound is the
		// documented weaker relaxation (per-job floor / fluid SRPT), so its
		// gap can be much larger than the paper's 15% vs their LP-Online.
		limit := 120.0
		if strings.Contains(k, "online") {
			limit = 300
		}
		if gap > limit {
			t.Fatalf("%s = %g%%: gap implausibly large", k, gap)
		}
	}
}

func TestFig5Scales(t *testing.T) {
	r := run(t, Fig5)
	if len(r.Values) < 3 {
		t.Fatal("fig5 measured fewer than 3 points")
	}
	for k, v := range r.Values {
		if v < 0 {
			t.Fatalf("%s = %g", k, v)
		}
	}
}

func TestFig6CorralWins(t *testing.T) {
	r := run(t, Fig6)
	// W3 is the stable anchor at the toy size; W1's large-job tail is a
	// coin flip there, so it only gets a "not catastrophic" bound.
	red := r.Values["W3_corral_makespan_reduction_pct"]
	if red <= 0 {
		t.Fatalf("Corral W3 makespan reduction = %g%%, want positive", red)
	}
	if red > 80 {
		t.Fatalf("Corral W3 makespan reduction = %g%%, implausibly large", red)
	}
	if w1 := r.Values["W1_corral_makespan_reduction_pct"]; w1 < -20 {
		t.Fatalf("Corral W1 makespan reduction = %g%%, collapsed", w1)
	}
}

func TestFig7aCrossRackDrops(t *testing.T) {
	r := run(t, Fig7a)
	red := r.Values["W1_corral_crossrack_reduction_pct"]
	if red < 20 {
		t.Fatalf("Corral cross-rack reduction = %g%%, paper range 20-90%%", red)
	}
}

func TestFig7cReduceTimes(t *testing.T) {
	r := run(t, Fig7c)
	if red := r.Values["reduce_time_median_reduction_pct"]; red <= 0 {
		t.Fatalf("median reduce-time reduction = %g%%, want positive", red)
	}
}

func TestFig8OnlineWins(t *testing.T) {
	r := run(t, Fig8)
	if red := r.Values["W1_median_reduction_pct"]; red <= 0 {
		t.Fatalf("online median reduction = %g%%, want positive", red)
	}
}

func TestFig9Bins(t *testing.T) {
	r := run(t, Fig9)
	found := 0
	for _, k := range r.Keys() {
		if strings.Contains(k, "corral") {
			found++
		}
	}
	if found != 3 {
		t.Fatalf("fig9 corral bins = %d, want 3", found)
	}
}

func TestFig10Queries(t *testing.T) {
	r := run(t, Fig10)
	if red := r.Values["mean_reduction_pct"]; red <= -20 {
		t.Fatalf("TPC-H mean reduction = %g%%, want not-large-negative", red)
	}
}

func TestFig11BothGroupsBenefit(t *testing.T) {
	r := run(t, Fig11)
	if red := r.Values["recurring_mean_reduction_pct"]; red <= 0 {
		t.Fatalf("recurring mean reduction = %g%%, want positive", red)
	}
	// Ad-hoc should at least not be badly hurt.
	if red := r.Values["ad-hoc_mean_reduction_pct"]; red < -25 {
		t.Fatalf("ad-hoc mean reduction = %g%%", red)
	}
}

func TestFig12TrendWithLoad(t *testing.T) {
	r := run(t, Fig12)
	lo := r.Values["makespan_reduction_pct_bg50"]
	hi := r.Values["makespan_reduction_pct_bg67"]
	if hi < lo-5 {
		t.Fatalf("benefit shrank with background: %g%% -> %g%%", lo, hi)
	}
}

func TestFig13aRobust(t *testing.T) {
	r := run(t, Fig13a)
	for _, k := range r.Keys() {
		if r.Values[k] <= -10 {
			t.Fatalf("%s = %g%%: size error destroyed the benefit", k, r.Values[k])
		}
	}
}

func TestFig13bRobust(t *testing.T) {
	r := run(t, Fig13b)
	base := r.Values["avgtime_reduction_pct_delayed0"]
	worst := r.Values["avgtime_reduction_pct_delayed50"]
	if base <= 0 {
		t.Fatalf("zero-error reduction = %g%%, want positive", base)
	}
	if worst < -15 {
		t.Fatalf("50%%-delayed reduction = %g%%, collapsed", worst)
	}
}

func TestFig14Ordering(t *testing.T) {
	r := run(t, Fig14)
	corralTCP := r.Values["corral+tcp_median_reduction_pct"]
	corralVarys := r.Values["corral+varys_median_reduction_pct"]
	if corralTCP <= 0 {
		t.Fatalf("corral+tcp median reduction = %g%%, want positive", corralTCP)
	}
	if corralVarys < corralTCP-15 {
		t.Fatalf("corral+varys (%g%%) much worse than corral+tcp (%g%%)", corralVarys, corralTCP)
	}
}

func TestBalanceCoV(t *testing.T) {
	r := run(t, Balance)
	if r.Values["cov_corral"] > r.Values["cov_hdfs"]+0.05 {
		t.Fatalf("Corral CoV %g worse than HDFS %g", r.Values["cov_corral"], r.Values["cov_hdfs"])
	}
}

func TestAblations(t *testing.T) {
	ra := run(t, AblationAlpha)
	if ra.Values["cov_alpha_on"] > ra.Values["cov_alpha_off"]+0.05 {
		t.Fatalf("alpha penalty worsened balance: %g vs %g",
			ra.Values["cov_alpha_on"], ra.Values["cov_alpha_off"])
	}
	rp := run(t, AblationProvision)
	if rp.Values["makespan_full"] > rp.Values["makespan_onerack"]*1.001 {
		t.Fatalf("full provisioning (%g) worse than one-rack baseline (%g)",
			rp.Values["makespan_full"], rp.Values["makespan_onerack"])
	}
	run(t, AblationPriority)
	rd := run(t, AblationDelay)
	if len(rd.Values) < 4 {
		t.Fatal("delay ablation produced too few values")
	}
}

func TestExtRemoteStorage(t *testing.T) {
	r := run(t, ExtRemoteStorage)
	if red := r.Values["crossrack_reduction_pct"]; red <= 0 {
		t.Fatalf("remote-storage cross-rack reduction = %g%%, want positive", red)
	}
}

func TestExtInMemory(t *testing.T) {
	r := run(t, ExtInMemory)
	if red := r.Values["crossrack_reduction_pct"]; red <= 0 {
		t.Fatalf("in-memory cross-rack reduction = %g%%, want positive", red)
	}
}

func TestExtFailures(t *testing.T) {
	r := run(t, ExtFailures)
	if r.Values["makespan_failed"] <= 0 {
		t.Fatal("failed run produced no makespan")
	}
	if r.Values["slowdown_pct"] > 200 {
		t.Fatalf("failure slowdown = %g%%, implausibly large", r.Values["slowdown_pct"])
	}
}

func TestExtSpeculation(t *testing.T) {
	r := run(t, ExtSpeculation)
	clean := r.Values["makespan_clean"]
	strag := r.Values["makespan_stragglers"]
	spec := r.Values["makespan_speculation"]
	if strag <= clean {
		t.Fatalf("stragglers did not hurt: %g vs %g", strag, clean)
	}
	if spec >= strag {
		t.Fatalf("speculation did not help: %g vs %g", spec, strag)
	}
}

func TestExtReplan(t *testing.T) {
	r := run(t, ExtReplan)
	yarn := r.Values["avg_yarn"]
	replan := r.Values["avg_replan"]
	oracle := r.Values["avg_oracle"]
	if replan <= 0 || oracle <= 0 {
		t.Fatal("replan experiment incomplete")
	}
	// Replanning should not be wildly worse than the oracle, and should
	// roughly track Corral's advantage over Yarn-CS.
	if replan > oracle*1.5 {
		t.Fatalf("replanned avg %g much worse than oracle %g", replan, oracle)
	}
	if replan > yarn*1.3 {
		t.Fatalf("replanned avg %g much worse than yarn %g", replan, yarn)
	}
}

func TestExtSharedData(t *testing.T) {
	r := run(t, ExtSharedData)
	smart := r.Values["crossrack_gb_shared"]
	perJob := r.Values["crossrack_gb_perjob"]
	uniform := r.Values["crossrack_gb_uniform"]
	if smart > perJob+1e-9 || smart > uniform+1e-9 {
		t.Fatalf("dataset-aware placement (%g) worse than per-job (%g) or uniform (%g)",
			smart, perJob, uniform)
	}
}
