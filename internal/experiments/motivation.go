package experiments

import (
	"fmt"
	"math"

	"corral/internal/metrics"
	"corral/internal/workload"
)

// Fig1 regenerates the §2 motivation telemetry: normalized input sizes of
// six recurring jobs over ten days, plus the averaging predictor's mean
// absolute percentage error (paper: ~6.5%).
func Fig1(p Params) (*Report, error) {
	r := newReport("Fig 1: recurring-job input size over ten days (normalized, log10)")
	series := workload.GenerateSeries(workload.SeriesConfig{Seed: p.Seed + 1, Jobs: 20, Days: 30})

	t := &metrics.Table{
		Title:   "normalized input size per day (first daily run, days 20-29)",
		Columns: []string{"job", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9"},
	}
	for si := 0; si < 6; si++ {
		s := &series[si]
		base := s.Actual(20, 0)
		row := []string{s.Name}
		for d := 20; d < 30; d++ {
			v := s.Actual(d, 0) / base
			row = append(row, metrics.F(math.Log10(v)+1, 3)) // log10 scale, shifted
		}
		t.AddRow(row...)
	}
	r.table(t)

	mape := workload.PredictionError(series, 7)
	t2 := &metrics.Table{Title: "predictor quality", Columns: []string{"metric", "value"}}
	t2.AddRow("mean abs. percentage error", metrics.Pct(100*mape))
	t2.AddRow("paper reports", "6.5%")
	r.table(t2)
	r.set("prediction_mape_pct", 100*mape)
	return r, nil
}

// Fig2 regenerates the slots-per-job CDF across three production clusters:
// 75%, 87% and 95% of jobs fit under one rack (240 slots).
func Fig2(p Params) (*Report, error) {
	r := newReport("Fig 2: CDF of compute slots requested per job")
	fractions := []float64{0.75, 0.87, 0.95}
	t := &metrics.Table{
		Title:   "cumulative fraction of jobs by requested slots",
		Columns: []string{"slots", "cluster-1", "cluster-2", "cluster-3"},
	}
	var clusters [][]int
	for i, f := range fractions {
		clusters = append(clusters, workload.SlotsPerJobMix(p.Seed+int64(i)+10, 20000, f))
	}
	for _, cut := range []int{1, 10, 100, 240, 1000, 10000} {
		row := []string{fmt.Sprintf("%d", cut)}
		for _, c := range clusters {
			under := 0
			for _, s := range c {
				if s <= cut {
					under++
				}
			}
			row = append(row, metrics.F(float64(under)/float64(len(c)), 3))
		}
		t.AddRow(row...)
	}
	r.table(t)
	for i, c := range clusters {
		under := 0
		for _, s := range c {
			if s <= 240 {
				under++
			}
		}
		r.set(fmt.Sprintf("cluster%d_under_one_rack_frac", i+1), float64(under)/float64(len(c)))
	}
	return r, nil
}

// Table1 regenerates the W3 workload characteristics table: task counts
// and data sizes at the 50th and 95th percentiles.
func Table1(p Params) (*Report, error) {
	r := newReport("Table 1: characteristics of workload W3 (Cosmos)")
	// Use an unscaled sample so the table is in the paper's units.
	jobs := workload.W3(workload.Config{Seed: p.Seed + 2, Jobs: 2000})
	var tasks, inputs, shuffles []float64
	for _, j := range jobs {
		tasks = append(tasks, float64(j.TotalTasks()))
		inputs = append(inputs, j.InputBytes()/workload.GB)
		shuffles = append(shuffles, j.ShuffleBytes()/workload.GB)
	}
	t := &metrics.Table{
		Title:   "W3 percentiles (paper: tasks 180/2060, input 7.1/162.3 GB, shuffle 6/71.5 GB)",
		Columns: []string{"metric", "50%-tile", "95%-tile"},
	}
	t.AddRow("number of tasks", metrics.F(metrics.Percentile(tasks, 0.5), 0), metrics.F(metrics.Percentile(tasks, 0.95), 0))
	t.AddRow("input data size (GB)", metrics.F(metrics.Percentile(inputs, 0.5), 1), metrics.F(metrics.Percentile(inputs, 0.95), 1))
	t.AddRow("intermediate data size (GB)", metrics.F(metrics.Percentile(shuffles, 0.5), 1), metrics.F(metrics.Percentile(shuffles, 0.95), 1))
	r.table(t)
	r.set("tasks_p50", metrics.Percentile(tasks, 0.5))
	r.set("tasks_p95", metrics.Percentile(tasks, 0.95))
	r.set("input_gb_p50", metrics.Percentile(inputs, 0.5))
	r.set("input_gb_p95", metrics.Percentile(inputs, 0.95))
	r.set("shuffle_gb_p50", metrics.Percentile(shuffles, 0.5))
	r.set("shuffle_gb_p95", metrics.Percentile(shuffles, 0.95))
	return r, nil
}
