package experiments

// Overload: graceful degradation under streaming-arrival overload plus a
// fault storm. The online W1 workload's arrival window is compressed by a
// rate factor (rate 1 is the paper's sustained-overlap regime, rate 4 is
// 4x past it) while a seeded chaos trace batters the cluster, and each
// rate runs under three configurations:
//
//   - Yarn-CS: the baseline, no planning at all.
//   - Corral-replan: failure-triggered replanning with none of the PR 8
//     hardening — every fault replans immediately, every arrival is
//     admitted. An armed invariant monitor demonstrates the failure mode:
//     the replan-rate bound trips during the storm (anti-vacuity for the
//     new invariants).
//   - Budgeted Corral: the same replanning behind a planner deadline
//     budget, replan-storm suppression and admission control. The same
//     monitor bounds must stay clean, and the run must still complete.
//
// Everything is a pure function of OverloadParams: the workload, plan,
// storm trace and every simulation are seeded, and cells fan out over the
// sweep pool with index-addressed slots (parallel.go determinism rules).

import (
	"fmt"

	"corral/internal/invariants"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/topology"
	"corral/internal/workload"
)

// DefaultOverloadRates sweeps from the nominal online regime to 8x past it.
var DefaultOverloadRates = []float64{1, 2, 4, 8}

// Overload-hardening defaults for the sweep. The replan window and storm
// are sized relative to the clean-run horizon so the sweep stresses every
// Size the same way; the monitor allows replanBoundMax replans per window
// (immediate replans plus the coalesced fire of an adjacent window can
// legitimately land in one sliding window).
const (
	overloadBudget    = 0.1  // planner deadline, simulated seconds
	overloadWindowDiv = 20.0 // replan window = horizon / this
	overloadStorm     = 0.3  // chaos-trace intensity of the machine-failure storm
	overloadFlapDiv   = 6.0  // uplink flap period = replan window / this
	replanBoundMax    = 3
)

// genFlapStorm builds the replan-storm half of the fault trace: a
// switch-flap schedule where rack uplinks drop out (factor 0) and restore
// on a staggered cycle across the middle of the horizon. Every isolation
// of a rack hosting a constrained job forces a replan request, so with
// flaps arriving several times per replan window the unhardened
// configuration replans at the flap rate — exactly the storm the
// suppression window exists to coalesce. The schedule is a pure function
// of the arguments: no rng.
func genFlapStorm(topo topology.Config, window, horizon float64) []runtime.LinkFault {
	period := window / overloadFlapDiv
	down := period / 2
	var out []runtime.LinkFault
	i := 0
	for at := 0.05 * horizon; at < 0.55*horizon; at += period {
		r := i % topo.Racks
		out = append(out,
			runtime.LinkFault{At: at, Rack: r, Factor: 0},
			runtime.LinkFault{At: at + down, Rack: r, Factor: 1})
		i++
	}
	return out
}

// OverloadParams configures an overload sweep. The three knob fields
// mirror the corralsim flags; zero keeps the bundled default, which is
// sized off the clean-run horizon.
type OverloadParams struct {
	Size  Size
	Seed  int64
	Rates []float64 // arrival-window compression factors; nil = defaults

	Budget         float64 // planner deadline (sim s); 0 = overloadBudget
	Window         float64 // replan window (sim s); 0 = horizon/overloadWindowDiv
	AdmissionLimit int     // concurrent admitted jobs; 0 = 2*racks
}

// OverloadRun is one arrival rate's outcome under the three configurations.
type OverloadRun struct {
	Rate         float64
	Yarn         *runtime.Result
	CorralReplan *runtime.Result // replanning, no hardening
	Budgeted     *runtime.Result // budget + suppression + admission control
	// Invariant-monitor violation counts with BoundReplanRate armed on both
	// Corral configurations and BoundAdmissionQueue armed on the budgeted
	// one. CorralReplanViolations > 0 during the storm is the anti-vacuity
	// signal; BudgetedViolations must be 0.
	CorralReplanViolations int
	BudgetedViolations     int
}

// OverloadReport is the full sweep outcome. PlannerBudget, ReplanWindow
// and AdmissionLimit record the knob values the budgeted configuration
// actually ran with (defaults resolved).
type OverloadReport struct {
	Horizon        float64 // clean Corral makespan at rate 1; storm spans it
	PlannerBudget  float64
	ReplanWindow   float64
	AdmissionLimit int
	Clean          *runtime.Result
	Runs           []OverloadRun
}

// RunOverload runs the overload sweep. The clean rate-1 Corral run fixes
// the horizon; the same storm trace then replays at every rate so rows
// differ only in arrival pressure.
func RunOverload(p OverloadParams) (*OverloadReport, error) {
	rates := p.Rates
	if len(rates) == 0 {
		rates = DefaultOverloadRates
	}
	prof := profileFor(p.Size)
	topo := prof.topo
	jobs, err := genOnlineWorkload("W1", prof, p.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	clean, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
	}, workload.Clone(jobs))
	if err != nil {
		return nil, err
	}
	rep := &OverloadReport{
		Horizon:        clean.Makespan,
		PlannerBudget:  p.Budget,
		ReplanWindow:   p.Window,
		AdmissionLimit: p.AdmissionLimit,
		Clean:          clean,
	}
	if rep.PlannerBudget <= 0 {
		rep.PlannerBudget = overloadBudget
	}
	if rep.ReplanWindow <= 0 {
		rep.ReplanWindow = clean.Makespan / overloadWindowDiv
	}
	if rep.AdmissionLimit <= 0 {
		rep.AdmissionLimit = 2 * topo.Racks
	}
	failures, _ := GenChaosTrace(topo, p.Seed, overloadStorm, rep.Horizon)
	faults := genFlapStorm(topo, rep.ReplanWindow, rep.Horizon)

	type cfg struct {
		kind     runtime.Kind
		plan     *planner.Plan
		replan   bool
		hardened bool
	}
	cfgs := []cfg{
		{runtime.YarnCS, nil, false, false},
		{runtime.Corral, plan, true, false},
		{runtime.Corral, plan, true, true},
	}
	results := make([]*runtime.Result, len(rates)*len(cfgs))
	violations := make([]int, len(results))
	if err := parallelFor(len(results), func(ci int) error {
		rate, c := rates[ci/len(cfgs)], cfgs[ci%len(cfgs)]
		opts := runtime.Options{
			Topology: topo, Scheduler: c.kind, Plan: c.plan, Seed: p.Seed,
			Failures: failures, LinkFaults: faults, ReplanOnFailure: c.replan,
		}
		var mon *invariants.Monitor
		if c.kind == runtime.Corral {
			mon = invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
			mon.BoundReplanRate(replanBoundMax, rep.ReplanWindow)
			opts.Probe = mon
		}
		if c.hardened {
			opts.PlannerBudget = rep.PlannerBudget
			opts.ReplanWindow = rep.ReplanWindow
			opts.AdmissionLimit = rep.AdmissionLimit
			mon.BoundAdmissionQueue(4 * rep.AdmissionLimit)
		}
		// Compress the arrival window: rate r packs the same arrivals into
		// 1/r of the nominal window.
		cell := workload.Clone(jobs)
		for _, j := range cell {
			j.Arrival /= rate
		}
		res, err := runtime.Run(opts, cell)
		if err != nil {
			return err
		}
		results[ci] = res
		if mon != nil {
			violations[ci] = mon.ViolationCount()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, rate := range rates {
		rep.Runs = append(rep.Runs, OverloadRun{
			Rate:                   rate,
			Yarn:                   results[i*len(cfgs)],
			CorralReplan:           results[i*len(cfgs)+1],
			Budgeted:               results[i*len(cfgs)+2],
			CorralReplanViolations: violations[i*len(cfgs)+1],
			BudgetedViolations:     violations[i*len(cfgs)+2],
		})
	}
	return rep, nil
}

// avgCompleted averages completion time over non-failed jobs: shed jobs
// record a zero completion time and must not drag the average down.
func avgCompleted(res *runtime.Result) float64 {
	s, n := 0.0, 0
	for i := range res.Jobs {
		if !res.Jobs[i].Failed {
			s += res.Jobs[i].CompletionTime
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Overload is the registry entry: the default rate sweep.
func Overload(p Params) (*Report, error) {
	return OverloadWithRates(p, nil)
}

// OverloadWithRates runs the overload sweep at caller-chosen arrival rates
// (the corralsim -arrival-rates flag) with default hardening knobs.
func OverloadWithRates(p Params, rates []float64) (*Report, error) {
	return OverloadSweep(OverloadParams{Size: p.Size, Seed: p.Seed, Rates: rates})
}

// OverloadSweep renders an overload sweep with full knob control (the
// corralsim -planner-budget, -replan-window and -admission-limit flags).
func OverloadSweep(op OverloadParams) (*Report, error) {
	r := newReport("Overload: graceful degradation under streaming arrivals + fault storm")
	rep, err := RunOverload(op)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("online W1, storm horizon %.1fs, planner budget %.2fs, replan window %.1fs, admission limit %d; avg completion (s) of completed jobs",
			rep.Horizon, rep.PlannerBudget, rep.ReplanWindow, rep.AdmissionLimit),
		Columns: []string{"rate", "yarn-cs", "corral replan", "viol", "budgeted", "viol",
			"replans", "suppressed", "degr f/i/g", "deferred", "shed", "peak q"},
	}
	r.set("clean_avg_completion", avgCompleted(rep.Clean))
	for _, run := range rep.Runs {
		b := run.Budgeted
		d := b.Degradations
		t.AddRow(metrics.F(run.Rate, 0),
			metrics.F(avgCompleted(run.Yarn), 1),
			metrics.F(avgCompleted(run.CorralReplan), 1),
			metrics.D(run.CorralReplanViolations),
			metrics.F(avgCompleted(b), 1),
			metrics.D(run.BudgetedViolations),
			metrics.D(b.Replans),
			metrics.D(b.ReplansSuppressed),
			fmt.Sprintf("%d/%d/%d", d.Full, d.Incremental, d.Greedy),
			metrics.D(b.Deferred), metrics.D(b.Shed), metrics.D(b.MaxAdmissionQueue))
		key := func(s string) string { return fmt.Sprintf("%s_r%02.0f", s, run.Rate) }
		r.set(key("avg_yarn"), avgCompleted(run.Yarn))
		r.set(key("avg_corral_replan"), avgCompleted(run.CorralReplan))
		r.set(key("avg_budgeted"), avgCompleted(b))
		r.set(key("violations_unsuppressed"), float64(run.CorralReplanViolations))
		r.set(key("violations_budgeted"), float64(run.BudgetedViolations))
		r.set(key("replans_budgeted"), float64(b.Replans))
		r.set(key("suppressed"), float64(b.ReplansSuppressed))
		r.set(key("degraded"), float64(d.Incremental+d.Greedy))
		r.set(key("deferred"), float64(b.Deferred))
		r.set(key("shed"), float64(b.Shed))
		r.set(key("peak_queue"), float64(b.MaxAdmissionQueue))
	}
	r.table(t)
	return r, nil
}
