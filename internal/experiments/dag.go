package experiments

import (
	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// Fig10 reproduces the DAG-workload experiment (§6.3): TPC-H queries run
// as recurring (planned) jobs while a batch of W1 MapReduce jobs runs
// alongside under Yarn-CS scheduling. Paper: ~18.5% median / 21% mean
// query-time reduction with Corral.
func Fig10(p Params) (*Report, error) {
	r := newReport("Fig 10: TPC-H query completion times with Corral")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)

	build := func() []*job.Job {
		queries := workload.TPCH(workload.Config{
			Scale: prof.scale, Seed: p.Seed + 4, Jobs: prof.tpchJobs,
			ArrivalWindow: prof.arrival / 2,
		}, 0)
		// Interfering MapReduce batch, always run as ad-hoc under Yarn-CS
		// policies (submitted at t=0 like the paper's batch).
		noise := workload.MarkAdHoc(workload.W1(prof.wcfg(p.Seed+5, prof.w1Jobs/2, 0)))
		workload.Renumber(noise, len(queries)+1)
		return append(queries, noise...)
	}

	isQuery := func(j *runtime.JobResult) bool { return !j.AdHoc }

	// Yarn-CS baseline: queries unplanned too.
	baseJobs := build()
	yarn, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.YarnCS, Seed: p.Seed,
	}, baseJobs)
	if err != nil {
		return nil, err
	}
	// Corral: plan only the queries.
	corralJobs := build()
	plan, err := planJobs(topo, corralJobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	corral, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
	}, corralJobs)
	if err != nil {
		return nil, err
	}

	yq := completionTimes(yarn, isQuery)
	cq := completionTimes(corral, isQuery)
	t := &metrics.Table{
		Title:   "query completion time percentiles (seconds)",
		Columns: []string{"percentile", "yarn-cs", "corral", "reduction"},
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		y, c := metrics.Percentile(yq, q), metrics.Percentile(cq, q)
		t.AddRow(metrics.F(q, 2), metrics.F(y, 1), metrics.F(c, 1), metrics.Pct(metrics.Reduction(y, c)))
	}
	r.table(t)
	r.set("median_reduction_pct", metrics.Reduction(metrics.Percentile(yq, 0.5), metrics.Percentile(cq, 0.5)))
	r.set("mean_reduction_pct", metrics.Reduction(metrics.Mean(yq), metrics.Mean(cq)))
	return r, nil
}
