package experiments

// Extension experiments covering the paper's §7 discussion topics and the
// runtime features the §3.3 model abstracts away (failures, outliers).
// These have no paper figure to match; they demonstrate that Corral's
// benefits persist (or degrade gracefully) outside the core evaluation.

import (
	"fmt"
	"math/rand"
	"sort"

	"corral/internal/datadeps"
	"corral/internal/metrics"
	"corral/internal/model"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// ExtRemoteStorage reproduces the §7 "Remote storage" scenario: inputs
// live in a separate storage cluster (Azure Storage / S3) behind a shared
// interconnect. Corral cannot pre-place input data, but still isolates
// shuffles and reduces.
func ExtRemoteStorage(p Params) (*Report, error) {
	r := newReport("Extension (§7): remote storage cluster")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	// Interconnect sized at twice one rack uplink: a shared bottleneck.
	topo.RemoteStorageBandwidth = 2 * prof.topo.RackUplinkCapacity()

	jobs := genWorkload("W1", prof, p.Seed, 0)
	plan, err := planJobs(topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "W1 batch with inputs fetched from remote storage",
		Columns: []string{"scheduler", "makespan (s)", "cross-rack GB"},
	}
	var results [2]*runtime.Result
	for i, k := range []runtime.Kind{runtime.YarnCS, runtime.Corral} {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: k, Plan: plan, Seed: p.Seed,
			RemoteStorageInput: true,
		}, workload.Clone(jobs))
		if err != nil {
			return nil, err
		}
		results[i] = res
		t.AddRow(k.String(), metrics.F(res.Makespan, 1), metrics.F(res.CrossRackBytes/1e9, 1))
	}
	r.table(t)
	r.set("makespan_reduction_pct", metrics.Reduction(results[0].Makespan, results[1].Makespan))
	r.set("crossrack_reduction_pct", metrics.Reduction(results[0].CrossRackBytes, results[1].CrossRackBytes))
	return r, nil
}

// ExtInMemory reproduces the §7 "In-memory systems" argument: even with
// Spark-like in-memory data (no replicated output writes), shuffles remain
// network-bound and Corral's locality still pays.
func ExtInMemory(p Params) (*Report, error) {
	r := newReport("Extension (§7): in-memory data (Spark-like)")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, p.Seed, 0)
	plan, err := planJobs(topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "W1 batch without replicated output writes",
		Columns: []string{"scheduler", "makespan (s)", "cross-rack GB"},
	}
	var results [2]*runtime.Result
	for i, k := range []runtime.Kind{runtime.YarnCS, runtime.Corral} {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: k, Plan: plan, Seed: p.Seed,
			InMemoryInput: true,
		}, workload.Clone(jobs))
		if err != nil {
			return nil, err
		}
		results[i] = res
		t.AddRow(k.String(), metrics.F(res.Makespan, 1), metrics.F(res.CrossRackBytes/1e9, 1))
	}
	r.table(t)
	r.set("makespan_reduction_pct", metrics.Reduction(results[0].Makespan, results[1].Makespan))
	r.set("crossrack_reduction_pct", metrics.Reduction(results[0].CrossRackBytes, results[1].CrossRackBytes))
	return r, nil
}

// ExtFailures measures Corral's behavior under cascading mid-run machine
// failures (§7 "Dealing with failures"): tasks re-execute, majority-dead
// rack sets fall back to unconstrained placement, and the batch still
// completes with bounded slowdown.
func ExtFailures(p Params) (*Report, error) {
	r := newReport("Extension (§3.1/§7): mid-run machine failures")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, p.Seed, 0)
	plan, err := planJobs(topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		return nil, err
	}
	clean, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
	}, workload.Clone(jobs))
	if err != nil {
		return nil, err
	}
	// Kill 10% of machines, spread over the first half of the clean
	// makespan.
	var failures []runtime.Failure
	n := topo.Machines() / 10
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		failures = append(failures, runtime.Failure{
			At:      clean.Makespan / 2 * float64(i+1) / float64(n+1),
			Machine: i * topo.Machines() / n,
		})
	}
	failed, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
		Failures: failures,
	}, workload.Clone(jobs))
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Corral, W1 batch, %d machines failing mid-run", n),
		Columns: []string{"run", "makespan (s)"},
	}
	t.AddRow("no failures", metrics.F(clean.Makespan, 1))
	t.AddRow("with failures", metrics.F(failed.Makespan, 1))
	r.table(t)
	r.set("makespan_clean", clean.Makespan)
	r.set("makespan_failed", failed.Makespan)
	r.set("slowdown_pct", -metrics.Reduction(clean.Makespan, failed.Makespan))
	return r, nil
}

// ExtSpeculation quantifies straggler injection (§3.3's "outliers") and
// the speculative-execution mitigation on the W1 batch under Corral.
func ExtSpeculation(p Params) (*Report, error) {
	r := newReport("Extension (§3.3): stragglers and speculative execution")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, p.Seed, 0)
	plan, err := planJobs(topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "Corral, W1 batch, 10% stragglers at 6x slowdown",
		Columns: []string{"configuration", "makespan (s)"},
	}
	configs := []struct {
		name           string
		fraction       float64
		speculate      bool
		keyForMakespan string
	}{
		{"no stragglers", 0, false, "makespan_clean"},
		{"stragglers, no speculation", 0.1, false, "makespan_stragglers"},
		{"stragglers + speculation", 0.1, true, "makespan_speculation"},
	}
	for _, c := range configs {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
			StragglerFraction: c.fraction, Speculation: c.speculate,
		}, workload.Clone(jobs))
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, metrics.F(res.Makespan, 1))
		r.set(c.keyForMakespan, res.Makespan)
	}
	r.table(t)
	return r, nil
}

// ExtReplan demonstrates §3.1's periodic replanning: a second wave of jobs
// becomes known mid-run. "replan" plans the first wave, then replans the
// second around commitments; "oracle" plans both waves upfront; Yarn-CS
// sees neither plan.
func ExtReplan(p Params) (*Report, error) {
	r := newReport("Extension (§3.1): periodic replanning for a late second wave")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)

	wave1 := genWorkload("W1", prof, p.Seed, 0)
	wave2 := workload.Renumber(genWorkload("W1", prof, p.Seed+50, 0), len(wave1)+1)
	plan1, err := planJobs(topo, wave1, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	// The second wave arrives at half the first wave's planned makespan.
	at := plan1.Makespan / 2
	for _, j := range wave2 {
		j.Arrival = at
	}
	all := append(workload.Clone(wave1), workload.Clone(wave2)...)

	// Replanned: commitments from wave-1 assignments still running at t.
	// Assignments is a map; iterate its keys sorted so the commitment
	// order (and thus the replan's float accumulation order) is stable.
	ids := make([]int, 0, len(plan1.Assignments))
	for id := range plan1.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var commitments []planner.Commitment
	for _, id := range ids {
		if a := plan1.Assignments[id]; a.End() > at {
			commitments = append(commitments, planner.Commitment{Racks: a.Racks, Until: a.End()})
		}
	}
	in2 := planner.Input{
		Cluster:   model.FromTopology(topo),
		Jobs:      wave2,
		Alpha:     -1,
		Objective: planner.MinimizeAvgCompletion,
	}
	plan2, err := planner.Replan(in2, at, commitments)
	if err != nil {
		return nil, err
	}
	replanned := planner.MergePlans(plan1, plan2)

	// Oracle: both waves known upfront.
	oracle, err := planJobs(topo, all, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}

	t := &metrics.Table{
		Title:   "two-wave workload: average completion time (seconds)",
		Columns: []string{"strategy", "avg completion (s)"},
	}
	for _, c := range []struct {
		name string
		kind runtime.Kind
		plan *planner.Plan
		key  string
	}{
		{"yarn-cs (no plan)", runtime.YarnCS, nil, "avg_yarn"},
		{"corral, replanned", runtime.Corral, replanned, "avg_replan"},
		{"corral, oracle plan", runtime.Corral, oracle, "avg_oracle"},
	} {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: c.kind, Plan: c.plan, Seed: p.Seed,
		}, workload.Clone(all))
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, metrics.F(res.AvgCompletionTime(), 1))
		r.set(c.key, res.AvgCompletionTime())
	}
	r.table(t)
	return r, nil
}

// ExtSharedData demonstrates the §7 "Data-job dependencies" extension:
// when datasets are shared by multiple jobs, the dataset-aware fractional
// placement (datadeps) reduces cross-rack input reads versus the paper's
// default one-dataset-per-job assumption and versus uniform spreading.
func ExtSharedData(p Params) (*Report, error) {
	r := newReport("Extension (§7): data-job dependencies (shared datasets)")
	prof := profileFor(p.Size)
	rng := rand.New(rand.NewSource(p.Seed + 77))

	// Jobs planned as usual; then datasets shared among them.
	jobs := genWorkload("W1", prof, p.Seed, 0)
	plan, err := planJobs(prof.topo, jobs, planner.MinimizeMakespan)
	if err != nil {
		return nil, err
	}
	in := datadeps.Input{
		Racks:    prof.topo.Racks,
		JobRacks: map[int][]int{},
	}
	for _, j := range jobs {
		in.JobRacks[j.ID] = plan.Assignments[j.ID].Racks
	}
	nDatasets := len(jobs) / 3
	if nDatasets < 2 {
		nDatasets = 2
	}
	for d := 1; d <= nDatasets; d++ {
		in.Datasets = append(in.Datasets, datadeps.Dataset{ID: d, Bytes: 1})
	}
	for _, j := range jobs {
		// Each job reads 1-3 shared datasets, splitting its input bytes.
		k := rng.Intn(3) + 1
		for x := 0; x < k; x++ {
			in.Reads = append(in.Reads, datadeps.Read{
				DatasetID: rng.Intn(nDatasets) + 1,
				JobID:     j.ID,
				Bytes:     j.InputBytes() / float64(k),
			})
		}
	}
	smart, err := datadeps.Place(in)
	if err != nil {
		return nil, err
	}
	smartGB := datadeps.CrossRackReadBytes(in, smart) / 1e9
	perJobGB := datadeps.CrossRackReadBytes(in, datadeps.PerJobPlacement(in)) / 1e9
	uniformGB := datadeps.CrossRackReadBytes(in, datadeps.UniformPlacement(in)) / 1e9

	t := &metrics.Table{
		Title:   "cross-rack input reads for shared datasets (GB)",
		Columns: []string{"placement", "cross-rack GB"},
	}
	t.AddRow("uniform (HDFS random)", metrics.F(uniformGB, 2))
	t.AddRow("per-job (paper default)", metrics.F(perJobGB, 2))
	t.AddRow("dataset-aware LP (§7)", metrics.F(smartGB, 2))
	r.table(t)
	r.set("crossrack_gb_uniform", uniformGB)
	r.set("crossrack_gb_perjob", perJobGB)
	r.set("crossrack_gb_shared", smartGB)
	return r, nil
}
