package experiments

import (
	"fmt"
	"time"

	"corral/internal/job"
	"corral/internal/lp"
	"corral/internal/metrics"
	"corral/internal/model"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// genWorkload builds one of the named MapReduce workloads at the profile's
// scale. window > 0 spreads arrivals (online scenario).
func genWorkload(name string, prof profile, seed int64, window float64) []*job.Job {
	switch name {
	case "W1":
		return workload.W1(prof.wcfg(seed, prof.w1Jobs, window))
	case "W2":
		return workload.W2(prof.wcfg(seed, prof.w2Jobs, window))
	case "W3":
		return workload.W3(prof.wcfg(seed, prof.w3Jobs, window))
	}
	panic("experiments: unknown workload " + name)
}

// genOnlineWorkload builds an online instance of the named workload whose
// arrival window is sized relative to the workload's own (estimated) batch
// makespan, reproducing the paper's load regime: arrivals over 60 min for
// batches whose makespan exceeds 60 min, i.e. sustained overlap. Arrivals
// are drawn normalized and then scaled, so the job mix is identical across
// window choices.
func genOnlineWorkload(name string, prof profile, seed int64) ([]*job.Job, error) {
	jobs := genWorkload(name, prof, seed, 1) // normalized arrivals in [0,1]
	plan, err := planner.New(planner.Input{
		Cluster: model.FromTopology(prof.topo),
		Jobs:    jobs,
		Alpha:   -1,
	})
	if err != nil {
		return nil, err
	}
	window := 0.6 * plan.Makespan
	for _, j := range jobs {
		j.Arrival *= window
	}
	return jobs, nil
}

// LPGap reports how close the two-phase heuristics come to the LP
// relaxation lower bound (§4.2: within 3% for batch makespan, 15% for
// online average completion time).
func LPGap(p Params) (*Report, error) {
	r := newReport("§4.2: heuristic vs LP-relaxation lower bound")
	prof := profileFor(p.Size)
	cm := model.FromTopology(prof.topo)

	t := &metrics.Table{
		Title:   "gap = heuristic/LP − 1 (paper: ~3% batch, ~15% online)",
		Columns: []string{"workload", "scenario", "heuristic", "LP bound", "gap"},
	}
	for _, w := range []string{"W1", "W2", "W3"} {
		for _, online := range []bool{false, true} {
			obj := planner.MinimizeMakespan
			scenario := "batch"
			var jobs []*job.Job
			if online {
				obj = planner.MinimizeAvgCompletion
				scenario = "online"
				var err error
				jobs, err = genOnlineWorkload(w, prof, p.Seed)
				if err != nil {
					return nil, err
				}
			} else {
				jobs = genWorkload(w, prof, p.Seed, 0)
			}
			plan, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: -1, Objective: obj})
			if err != nil {
				return nil, err
			}
			var heuristic, bound float64
			if online {
				heuristic = plan.AvgCompletion
				bound = lp.OnlineLowerBound(cm, jobs, -1)
			} else {
				heuristic = plan.Makespan
				bound = lp.BatchLowerBound(cm, jobs, -1)
			}
			gap := heuristic/bound - 1
			t.AddRow(w, scenario, metrics.F(heuristic, 1), metrics.F(bound, 1), metrics.Pct(100*gap))
			r.set(fmt.Sprintf("%s_%s_gap_pct", w, scenario), 100*gap)
		}
	}
	r.table(t)
	return r, nil
}

// Fig5 measures the offline planner's running time as the number of jobs
// grows, on a large cluster model (paper: 4000 machines / 100 racks, ~55 s
// at 500 jobs on a 2015 desktop).
func Fig5(p Params) (*Report, error) {
	r := newReport("Fig 5: offline planner running time vs number of jobs")
	var sizes []int
	racks := 100
	switch p.Size {
	case SizeS:
		sizes = []int{10, 25, 50}
		racks = 20
	case SizeL:
		sizes = []int{100, 200, 300, 400, 500}
	default:
		sizes = []int{50, 100, 200}
	}
	cm := model.Cluster{
		Racks:            racks,
		MachinesPerRack:  40,
		SlotsPerMachine:  1,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("planner wall time, %d racks x 40 machines", racks),
		Columns: []string{"jobs", "seconds"},
	}
	for _, n := range sizes {
		jobs := workload.W1(workload.Config{Seed: p.Seed + 3, Jobs: n})
		start := time.Now() //corralvet:ok wallclock Fig 5 measures the planner's real running time, not simulated time
		if _, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: -1}); err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds() //corralvet:ok wallclock Fig 5 measures the planner's real running time, not simulated time
		t.AddRow(fmt.Sprintf("%d", n), metrics.F(secs, 3))
		r.set(fmt.Sprintf("planner_seconds_%djobs", n), secs)
	}
	r.table(t)
	return r, nil
}

// Balance reports the data-balance CoV of Corral's input placement vs the
// HDFS default (§6.2: Corral ≤0.004 vs HDFS ≤0.014 on the paper cluster).
func Balance(p Params) (*Report, error) {
	r := newReport("§6.2: input data balance across racks (CoV)")
	prof := profileFor(p.Size)
	jobs := genWorkload("W1", prof, p.Seed, 0)

	results, err := runAll(prof.topo, jobs, planner.MinimizeMakespan, p.Seed,
		runtime.YarnCS, runtime.Corral)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "coefficient of variation of input bytes per rack",
		Columns: []string{"placement", "CoV"},
	}
	t.AddRow("hdfs-default (Yarn-CS)", metrics.F(results[runtime.YarnCS].InputRackCoV, 4))
	t.AddRow("corral", metrics.F(results[runtime.Corral].InputRackCoV, 4))
	r.table(t)
	r.set("cov_hdfs", results[runtime.YarnCS].InputRackCoV)
	r.set("cov_corral", results[runtime.Corral].InputRackCoV)
	return r, nil
}
