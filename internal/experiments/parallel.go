package experiments

// Parallel sweep infrastructure. Experiment sweeps (chaos intensities, fuzz
// traces, sensitivity points, ablation cells) are embarrassingly parallel:
// every cell runs on its own des.Simulator with its own rng, network and
// cluster state, and runtime.Run shares nothing mutable across runs (plans
// are read-only; job sets are cloned per run). parallelFor fans cells out
// over a bounded worker pool.
//
// Determinism obligations: worker scheduling must never leak into results.
// Call sites therefore (1) precompute every cell's inputs before the fan-
// out, (2) have each cell write only to its own index-addressed slot, and
// (3) merge/aggregate slots serially in index order after the pool drains —
// so reductions see operands in exactly the order the old serial loops
// used, and reports are bit-identical for any worker count
// (TestParallelSweepDeterminism, TestSweepWorkerCountInvariance).

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"corral/internal/planner"
)

// sweepWorkers is the configured worker bound; <=0 means GOMAXPROCS.
var sweepWorkers atomic.Int64

// SetSweepWorkers bounds the worker pool used by experiment sweeps. n <= 0
// restores the default (GOMAXPROCS); n == 1 forces serial execution. The
// setting changes wall-clock only, never results. The bound is forwarded
// to the planner's provisioning pool so one -workers flag governs both.
func SetSweepWorkers(n int) {
	sweepWorkers.Store(int64(n))
	planner.SetWorkers(n)
}

// SweepWorkers reports the current effective worker bound.
func SweepWorkers() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return goruntime.GOMAXPROCS(0)
}

// parallelFor runs fn(0..n-1) across the worker pool and returns the
// lowest-index error, or nil. fn must confine its writes to cell i's own
// result slot; any shared aggregation belongs after parallelFor returns.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	w := SweepWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
