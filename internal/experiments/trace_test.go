package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"corral/internal/trace"
)

// traceExport runs the size-S batch suite with a process-wide collector
// installed and returns the two trace exports. The collector is always
// uninstalled again so other tests in the package run untraced.
func traceExport(t *testing.T, seed int64, workers int) (jsonl, chrome []byte) {
	t.Helper()
	SetSweepWorkers(workers)
	defer SetSweepWorkers(0)
	c := trace.NewCollector()
	trace.Install(c)
	defer trace.Install(nil)
	if _, err := batchSuite(Params{Size: SizeS, Seed: seed}, batchWorkloads(SizeS)); err != nil {
		t.Fatal(err)
	}
	var j, g bytes.Buffer
	if err := c.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChrome(&g); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), g.Bytes()
}

// TestTraceReplayBitIdentical is the trace analogue of
// TestBatchDeterminism: replaying the suite under the same seed must
// reproduce both exports byte for byte — event content, ordering and
// float formatting included. Two seeds guard against a constant-seed
// fallback passing vacuously.
func TestTraceReplayBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		j1, g1 := traceExport(t, seed, 0)
		j2, g2 := traceExport(t, seed, 0)
		if !bytes.Equal(j1, j2) {
			t.Errorf("seed %d: JSONL export not reproducible across replays", seed)
		}
		if !bytes.Equal(g1, g2) {
			t.Errorf("seed %d: Chrome export not reproducible across replays", seed)
		}
		if len(j1) == 0 || len(g1) == 0 {
			t.Fatalf("seed %d: empty trace export; nothing was traced", seed)
		}
	}
}

// TestTraceWorkerInvariance pins the collector's ordering contract: the
// sweep worker count changes only which goroutine registers a run first,
// and the sorted export must hide that completely.
func TestTraceWorkerInvariance(t *testing.T) {
	j1, g1 := traceExport(t, 1, 1)
	j8, g8 := traceExport(t, 1, 8)
	if !bytes.Equal(j1, j8) {
		t.Error("JSONL export differs between -workers 1 and -workers 8")
	}
	if !bytes.Equal(g1, g8) {
		t.Error("Chrome export differs between -workers 1 and -workers 8")
	}
}

// TestTraceSeedsDiffer guards against vacuous passes above: different
// seeds must produce different traces, or the trace is not actually
// observing the simulation.
func TestTraceSeedsDiffer(t *testing.T) {
	j1, _ := traceExport(t, 1, 0)
	j42, _ := traceExport(t, 42, 0)
	if bytes.Equal(j1, j42) {
		t.Error("seeds 1 and 42 produced identical traces; the trace is not observing the runs")
	}
}

// TestTracingDoesNotPerturbResults: attaching the tracer must be pure
// observation — the full Result structs with tracing enabled must equal
// the untraced ones bit for bit.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	p := Params{Size: SizeS, Seed: 7}
	plain, err := batchSuite(p, []string{"W1"})
	if err != nil {
		t.Fatal(err)
	}
	trace.Install(trace.NewCollector())
	defer trace.Install(nil)
	traced, err := batchSuite(p, []string{"W1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range allSchedulers {
		if !reflect.DeepEqual(plain["W1"][k], traced["W1"][k]) {
			t.Errorf("tracing perturbed the %v result:\n plain:  %+v\n traced: %+v",
				k, summarize(plain["W1"][k]), summarize(traced["W1"][k]))
		}
	}
}
