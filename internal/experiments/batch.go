package experiments

import (
	"fmt"

	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
)

// batchSuite runs W1/W2/W3 as batches under all four schedulers; Fig 6 and
// Fig 7a/b/c are different views of the same runs.
func batchSuite(p Params, workloads []string) (map[string]map[runtime.Kind]*runtime.Result, error) {
	prof := profileFor(p.Size)
	out := make(map[string]map[runtime.Kind]*runtime.Result, len(workloads))
	topo := prof.withBackground(prof.bgFrac)
	for _, w := range workloads {
		jobs := genWorkload(w, prof, p.Seed, 0)
		res, err := runAll(topo, jobs, planner.MinimizeMakespan, p.Seed, allSchedulers...)
		if err != nil {
			return nil, err
		}
		out[w] = res
	}
	return out, nil
}

func batchWorkloads(size Size) []string {
	if size == SizeS {
		// W1's tail at toy scale is a handful of large jobs (high
		// variance); W3's lognormal mix is the statistically stable anchor.
		return []string{"W1", "W3"}
	}
	return []string{"W1", "W2", "W3"}
}

// Fig6 reports batch makespan reduction relative to Yarn-CS (paper: Corral
// 10-33%, LocalShuffle mixed, ShuffleWatcher significantly negative).
func Fig6(p Params) (*Report, error) {
	r := newReport("Fig 6: reduction in makespan vs Yarn-CS (batch)")
	suite, err := batchSuite(p, batchWorkloads(p.Size))
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "% reduction in makespan (higher is better; negative = worse than Yarn-CS)",
		Columns: []string{"workload", "corral", "local-shuffle", "shufflewatcher"},
	}
	for _, w := range batchWorkloads(p.Size) {
		res := suite[w]
		base := res[runtime.YarnCS].Makespan
		row := []string{w}
		for _, k := range []runtime.Kind{runtime.Corral, runtime.LocalShuffle, runtime.ShuffleWatcher} {
			red := metrics.Reduction(base, res[k].Makespan)
			row = append(row, metrics.Pct(red))
			r.set(fmt.Sprintf("%s_%s_makespan_reduction_pct", w, k), red)
		}
		t.AddRow(row...)
	}
	r.table(t)
	return r, nil
}

// Fig7a reports cross-rack data reduction vs Yarn-CS (paper: 20-90% for
// Corral).
func Fig7a(p Params) (*Report, error) {
	r := newReport("Fig 7a: reduction in cross-rack data vs Yarn-CS (batch)")
	suite, err := batchSuite(p, batchWorkloads(p.Size))
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "% reduction in bytes crossing the rack-core boundary",
		Columns: []string{"workload", "corral", "local-shuffle", "shufflewatcher"},
	}
	for _, w := range batchWorkloads(p.Size) {
		res := suite[w]
		base := res[runtime.YarnCS].CrossRackBytes
		row := []string{w}
		for _, k := range []runtime.Kind{runtime.Corral, runtime.LocalShuffle, runtime.ShuffleWatcher} {
			red := metrics.Reduction(base, res[k].CrossRackBytes)
			row = append(row, metrics.Pct(red))
			r.set(fmt.Sprintf("%s_%s_crossrack_reduction_pct", w, k), red)
		}
		t.AddRow(row...)
	}
	r.table(t)
	return r, nil
}

// Fig7b reports compute-hours reduction vs Yarn-CS (paper: up to ~20% for
// Corral; ShuffleWatcher can look better here while losing on makespan).
func Fig7b(p Params) (*Report, error) {
	r := newReport("Fig 7b: reduction in compute-hours vs Yarn-CS (batch)")
	suite, err := batchSuite(p, batchWorkloads(p.Size))
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "% reduction in total task wall-clock time",
		Columns: []string{"workload", "corral", "local-shuffle", "shufflewatcher"},
	}
	for _, w := range batchWorkloads(p.Size) {
		res := suite[w]
		base := res[runtime.YarnCS].TaskSeconds
		row := []string{w}
		for _, k := range []runtime.Kind{runtime.Corral, runtime.LocalShuffle, runtime.ShuffleWatcher} {
			red := metrics.Reduction(base, res[k].TaskSeconds)
			row = append(row, metrics.Pct(red))
			r.set(fmt.Sprintf("%s_%s_computehours_reduction_pct", w, k), red)
		}
		t.AddRow(row...)
	}
	r.table(t)
	return r, nil
}

// Fig7c reports the distribution of per-job average reduce-task times for
// W1 (paper: Corral ~40% better at the median, more at the tail).
func Fig7c(p Params) (*Report, error) {
	r := newReport("Fig 7c: per-job average reduce time, W1 batch")
	suite, err := batchSuite(p, []string{"W1"})
	if err != nil {
		return nil, err
	}
	res := suite["W1"]
	collect := func(k runtime.Kind) []float64 {
		var v []float64
		for i := range res[k].Jobs {
			if avg := res[k].Jobs[i].AvgReduceTime(); avg > 0 {
				v = append(v, avg)
			}
		}
		return v
	}
	yarn := collect(runtime.YarnCS)
	corral := collect(runtime.Corral)
	t := &metrics.Table{
		Title:   "average reduce time percentiles (seconds)",
		Columns: []string{"percentile", "yarn-cs", "corral", "reduction"},
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		y := metrics.Percentile(yarn, q)
		c := metrics.Percentile(corral, q)
		t.AddRow(fmt.Sprintf("p%d", int(q*100)), metrics.F(y, 1), metrics.F(c, 1),
			metrics.Pct(metrics.Reduction(y, c)))
	}
	r.table(t)
	r.set("reduce_time_median_reduction_pct",
		metrics.Reduction(metrics.Percentile(yarn, 0.5), metrics.Percentile(corral, 0.5)))
	r.set("reduce_time_p90_reduction_pct",
		metrics.Reduction(metrics.Percentile(yarn, 0.9), metrics.Percentile(corral, 0.9)))
	return r, nil
}
