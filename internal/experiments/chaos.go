package experiments

// Chaos: seeded full-stack fault injection. A fault trace (transient
// machine failures plus rack-uplink degradation windows) is generated from
// (topology, seed, intensity, horizon) and replayed against the same W1
// batch under three configurations — the Yarn-CS baseline, Corral with the
// paper's constraint-drop fallback only, and Corral with failure-triggered
// replanning — to measure how gracefully each degrades as fault intensity
// grows. Everything is a pure function of the parameters: traces come from
// one seeded rng walked in index order, and the runs themselves are
// deterministic, so identical ChaosParams reproduce identical ChaosReports
// bit for bit (TestChaosDeterminism).

import (
	"fmt"
	"math/rand"

	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/topology"
	"corral/internal/workload"
)

// chaosFactors are the uplink degradation levels a window can apply: full
// outage, or capacity cut to a quarter or half. Every window is closed by
// a factor-1 restore, so no fault is permanent and no job can wedge.
var chaosFactors = [...]float64{0, 0.25, 0.5}

// GenChaosTrace builds a fault trace for the given topology. intensity is
// the expected number of failures per machine over the horizon (so 0.3
// means roughly 30% of machines fail once); rack uplinks each suffer one
// degradation window with probability min(1, intensity). Machine downtimes
// and degradation windows are bounded fractions of the horizon, and every
// uplink fault is paired with a restore — traces never permanently remove
// capacity. The trace is a pure function of the arguments.
func GenChaosTrace(topo topology.Config, seed int64, intensity, horizon float64) ([]runtime.Failure, []runtime.LinkFault) {
	if intensity <= 0 || horizon <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	mttf := horizon / intensity
	mttr := 0.15 * horizon

	var failures []runtime.Failure
	for m := 0; m < topo.Machines(); m++ {
		t := rng.ExpFloat64() * mttf
		for t < horizon {
			down := mttr * (0.5 + rng.Float64())
			failures = append(failures, runtime.Failure{At: t, Machine: m, Downtime: down})
			t += down + rng.ExpFloat64()*mttf
		}
	}

	var faults []runtime.LinkFault
	for r := 0; r < topo.Racks; r++ {
		if rng.Float64() >= intensity {
			continue
		}
		start := rng.Float64() * 0.8 * horizon
		dur := 0.1 * horizon * (0.5 + rng.Float64())
		factor := chaosFactors[rng.Intn(len(chaosFactors))]
		faults = append(faults,
			runtime.LinkFault{At: start, Rack: r, Factor: factor},
			runtime.LinkFault{At: start + dur, Rack: r, Factor: 1})
	}
	return failures, faults
}

// ChaosParams configures a chaos sweep.
type ChaosParams struct {
	Size        Size
	Seed        int64
	Intensities []float64
}

// ChaosRun is one intensity level's outcome under the three schedulers.
type ChaosRun struct {
	Intensity    float64
	Yarn         *runtime.Result
	CorralDrop   *runtime.Result // Corral, constraint-drop fallback only
	CorralReplan *runtime.Result // Corral with failure-triggered replanning
}

// ChaosReport is the full sweep outcome.
type ChaosReport struct {
	Horizon float64 // clean Corral makespan; fault traces span it
	Clean   *runtime.Result
	Runs    []ChaosRun
}

// RunChaos runs the online W1 workload under each fault intensity and
// scheduler configuration. The online regime (arrivals spread over the
// run, planned for average completion) is where the paper's completion-
// time wins live (Fig 8/9) — and the realistic setting for chaos: faults
// hit an operating cluster, not a one-shot batch. The fault horizon is
// the clean Corral makespan, so traces stress the whole nominal run.
func RunChaos(p ChaosParams) (*ChaosReport, error) {
	prof := profileFor(p.Size)
	topo := prof.topo
	jobs, err := genOnlineWorkload("W1", prof, p.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	clean, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
	}, workload.Clone(jobs))
	if err != nil {
		return nil, err
	}
	rep := &ChaosReport{Horizon: clean.Makespan, Clean: clean}
	// Every (intensity, scheduler config) cell is an independent simulation:
	// precompute the traces, fan the cells out over the sweep worker pool,
	// and assemble Runs in intensity order afterwards (see parallel.go for
	// the determinism rules).
	type cfg struct {
		kind   runtime.Kind
		plan   *planner.Plan
		replan bool
	}
	cfgs := []cfg{
		{runtime.YarnCS, nil, false},
		{runtime.Corral, plan, false},
		{runtime.Corral, plan, true},
	}
	type trace struct {
		failures []runtime.Failure
		faults   []runtime.LinkFault
	}
	traces := make([]trace, len(p.Intensities))
	for i, intensity := range p.Intensities {
		traces[i].failures, traces[i].faults = GenChaosTrace(topo, p.Seed, intensity, rep.Horizon)
	}
	results := make([]*runtime.Result, len(p.Intensities)*len(cfgs))
	if err := parallelFor(len(results), func(ci int) error {
		tr, c := traces[ci/len(cfgs)], cfgs[ci%len(cfgs)]
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: c.kind, Plan: c.plan, Seed: p.Seed,
			Failures: tr.failures, LinkFaults: tr.faults, ReplanOnFailure: c.replan,
		}, workload.Clone(jobs))
		if err != nil {
			return err
		}
		results[ci] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for i, intensity := range p.Intensities {
		rep.Runs = append(rep.Runs, ChaosRun{
			Intensity:    intensity,
			Yarn:         results[i*len(cfgs)],
			CorralDrop:   results[i*len(cfgs)+1],
			CorralReplan: results[i*len(cfgs)+2],
		})
	}
	return rep, nil
}

// DefaultChaosIntensities is the bundled sweep: mild to severe.
var DefaultChaosIntensities = []float64{0.1, 0.3, 0.5}

func avgCompletion(res *runtime.Result) float64 {
	return res.AvgCompletionTime()
}

// Chaos is the registry entry: the default sweep rendered as a table of
// average job completion times and slowdowns relative to the clean run.
func Chaos(p Params) (*Report, error) {
	return ChaosWithIntensities(p, DefaultChaosIntensities)
}

// ChaosWithIntensities runs the chaos sweep at caller-chosen intensities
// (the corralsim -chaos-intensities flag).
func ChaosWithIntensities(p Params, intensities []float64) (*Report, error) {
	r := newReport("Chaos: graceful degradation under machine and uplink faults")
	rep, err := RunChaos(ChaosParams{Size: p.Size, Seed: p.Seed, Intensities: intensities})
	if err != nil {
		return nil, err
	}
	cleanAvg := avgCompletion(rep.Clean)
	t := &metrics.Table{
		Title: fmt.Sprintf("online W1, fault horizon %.1fs; avg completion (s) and slowdown vs clean Corral",
			rep.Horizon),
		Columns: []string{"intensity", "yarn-cs", "corral (drop)", "corral (replan)",
			"replan p50", "replan p95", "replan p99", "replan slowdown"},
	}
	r.set("clean_avg_completion", cleanAvg)
	r.set("clean_p95_completion", metrics.P95(rep.Clean.CompletionTimes()))
	for _, run := range rep.Runs {
		y, d, pl := avgCompletion(run.Yarn), avgCompletion(run.CorralDrop), avgCompletion(run.CorralReplan)
		ct := run.CorralReplan.CompletionTimes()
		// Slowdown is +Inf when the clean baseline completed no jobs
		// (cleanAvg 0); F renders that as "+Inf", keeping the row valid.
		t.AddRow(metrics.F(run.Intensity, 2), metrics.F(y, 1), metrics.F(d, 1), metrics.F(pl, 1),
			metrics.F(metrics.P50(ct), 1), metrics.F(metrics.P95(ct), 1), metrics.F(metrics.P99(ct), 1),
			metrics.F(metrics.Slowdown(cleanAvg, pl), 2))
		key := func(s string) string { return fmt.Sprintf("%s_i%02.0f", s, run.Intensity*100) }
		r.set(key("avg_yarn"), y)
		r.set(key("avg_corral_drop"), d)
		r.set(key("avg_corral_replan"), pl)
		r.set(key("p95_corral_replan"), metrics.P95(ct))
		r.set(key("replans"), float64(run.CorralReplan.Replans))
		r.set(key("repair_bytes"), run.CorralReplan.RepairBytes)
	}
	r.table(t)
	return r, nil
}
