package experiments

import (
	"fmt"
	"sort"

	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/model"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// AblationAlpha toggles the §4.5 data-imbalance penalty and reports its
// effect on data balance (CoV) and makespan.
func AblationAlpha(p Params) (*Report, error) {
	r := newReport("Ablation: data-imbalance penalty α (§4.5)")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, p.Seed, 0)
	cm := model.FromTopology(topo)

	t := &metrics.Table{
		Title:   "Corral with and without the α·D_I/r penalty",
		Columns: []string{"alpha", "input CoV", "makespan (s)"},
	}
	// Both ablation cells (penalty off / on) plan and simulate
	// independently; fan them out and render in cell order (parallel.go).
	alphas := []float64{0, -1} // 0 = off, -1 = paper default
	results := make([]*runtime.Result, len(alphas))
	if err := parallelFor(len(alphas), func(i int) error {
		plan, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: alphas[i]})
		if err != nil {
			return err
		}
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
		}, workload.Clone(jobs))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for i, alpha := range alphas {
		res := results[i]
		label := "default (1/rack-uplink)"
		key := "on"
		if alpha == 0 {
			label, key = "off", "off"
		}
		t.AddRow(label, metrics.F(res.InputRackCoV, 4), metrics.F(res.Makespan, 1))
		r.set("cov_alpha_"+key, res.InputRackCoV)
		r.set("makespan_alpha_"+key, res.Makespan)
	}
	r.table(t)
	return r, nil
}

// AblationProvision compares the paper's run-to-the-end provisioning loop
// (explore all J·R allocations) against stopping at the first candidate
// (every job one rack), quantifying what the search buys.
func AblationProvision(p Params) (*Report, error) {
	r := newReport("Ablation: provisioning search depth (§4.2)")
	prof := profileFor(p.Size)
	cm := model.FromTopology(prof.topo)
	jobs := genWorkload("W1", prof, p.Seed, 0)

	full, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: -1})
	if err != nil {
		return nil, err
	}
	// One-rack-per-job baseline: evaluate via a single-rack response cap by
	// planning on a 1-rack "view" of each job. Reuse the planner with a
	// cluster of the same racks but force r_j = 1 by giving the scheduler
	// jobs whose response beyond r=1 is prohibitive — simpler: compute the
	// LPT schedule directly here.
	single := singleRackMakespan(cm, jobs)

	t := &metrics.Table{
		Title:   "estimated makespan under the response functions",
		Columns: []string{"strategy", "makespan (s)"},
	}
	t.AddRow("full provisioning search", metrics.F(full.Makespan, 1))
	t.AddRow("all jobs on one rack (LPT)", metrics.F(single, 1))
	r.table(t)
	r.set("makespan_full", full.Makespan)
	r.set("makespan_onerack", single)
	return r, nil
}

// listItem is one job reduced to (width, latency) for LIST scheduling.
type listItem struct {
	width int
	lat   float64
}

// listSchedule runs the Fig 4 LIST allocation over the items in order and
// returns the makespan.
func listSchedule(racks int, items []listItem) float64 {
	f := make([]float64, racks)
	makespan := 0.0
	for _, it := range items {
		sort.Float64s(f)
		start := f[it.width-1]
		finish := start + it.lat
		for i := 0; i < it.width; i++ {
			f[i] = finish
		}
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

// singleRackMakespan computes the LPT makespan when every job is pinned to
// one rack.
func singleRackMakespan(cm model.Cluster, jobs []*job.Job) float64 {
	items := make([]listItem, len(jobs))
	for i, j := range jobs {
		items[i] = listItem{width: 1, lat: cm.Response(j, cm.DefaultAlpha()).At(1)}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].lat > items[b].lat })
	return listSchedule(cm.Racks, items)
}

// AblationPriority compares the prioritization phase's widest-job-first
// ordering against plain LPT (longest first, ignoring width).
func AblationPriority(p Params) (*Report, error) {
	r := newReport("Ablation: widest-job-first vs plain LPT prioritization")
	prof := profileFor(p.Size)
	cm := model.FromTopology(prof.topo)
	jobs := genWorkload("W1", prof, p.Seed, 0)

	plan, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: -1})
	if err != nil {
		return nil, err
	}
	lptOnly := lptMakespan(cm, jobs)

	t := &metrics.Table{
		Title:   "estimated makespan under the response functions",
		Columns: []string{"ordering", "makespan (s)"},
	}
	t.AddRow("widest-job first (paper)", metrics.F(plan.Makespan, 1))
	t.AddRow("plain LPT (width-blind)", metrics.F(lptOnly, 1))
	r.table(t)
	r.set("makespan_widest_first", plan.Makespan)
	r.set("makespan_plain_lpt", lptOnly)
	return r, nil
}

// AblationDelay sweeps the Yarn-CS delay-scheduling patience and reports
// makespan and cross-rack bytes: too little patience loses locality, too
// much idles slots.
func AblationDelay(p Params) (*Report, error) {
	r := newReport("Ablation: delay-scheduling patience (Yarn-CS)")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	jobs := genWorkload("W1", prof, p.Seed, 0)
	machines := topo.Machines()

	t := &metrics.Table{
		Title:   "Yarn-CS batch behavior vs patience (in scheduling opportunities)",
		Columns: []string{"node-local patience", "makespan (s)", "cross-rack GB"},
	}
	// Patience levels fan out as independent cells and render in level
	// order (parallel.go).
	mults := []float64{0.1, 1, 4}
	patience := make([]int, len(mults))
	for i, mult := range mults {
		d1 := int(float64(machines) * mult)
		if d1 < 1 {
			d1 = 1
		}
		patience[i] = d1
	}
	results := make([]*runtime.Result, len(mults))
	if err := parallelFor(len(mults), func(i int) error {
		res, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.YarnCS, Seed: p.Seed,
			DelayNodeLocal: patience[i], DelayRackLocal: 2 * patience[i],
		}, workload.Clone(jobs))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for i, d1 := range patience {
		res := results[i]
		t.AddRow(fmt.Sprintf("%d", d1), metrics.F(res.Makespan, 1), metrics.F(res.CrossRackBytes/1e9, 1))
		r.set(fmt.Sprintf("makespan_d%d", d1), res.Makespan)
		r.set(fmt.Sprintf("crossrack_gb_d%d", d1), res.CrossRackBytes/1e9)
	}
	r.table(t)
	return r, nil
}

// lptMakespan schedules each job on its latency-minimizing rack count with
// plain longest-processing-time ordering (no widest-first criterion) using
// the same LIST allocation as the planner's prioritization phase.
func lptMakespan(cm model.Cluster, jobs []*job.Job) float64 {
	items := make([]listItem, len(jobs))
	for i, j := range jobs {
		f := cm.Response(j, cm.DefaultAlpha())
		r := f.ArgMin()
		items[i] = listItem{width: r, lat: f.At(r)}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].lat > items[b].lat })
	return listSchedule(cm.Racks, items)
}
