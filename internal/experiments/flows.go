package experiments

import (
	"fmt"

	"corral/internal/metrics"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/topology"
	"corral/internal/workload"
)

// Fig14 crosses job schedulers {Yarn-CS, Corral} with flow schedulers
// {TCP (max-min fair), Varys} on the large simulated topology (paper: 2000
// machines, 50 racks x 40, 1 Gbps NICs; Yarn+Varys ≈ −46% at the median
// vs Yarn+TCP; Corral+TCP beats Yarn+Varys; Corral+Varys is best).
func Fig14(p Params) (*Report, error) {
	r := newReport("Fig 14: job schedulers x flow schedulers")
	var topo topology.Config
	var nJobs int
	var window float64
	scale := 1.0 / 8
	switch p.Size {
	case SizeS:
		topo = topology.Config{Racks: 5, MachinesPerRack: 4, SlotsPerMachine: 2,
			NICBandwidth: 1 * gbps, Oversubscription: 5}
		nJobs, window, scale = 30, 150, 1.0/80
	case SizeL:
		topo = topology.Config{Racks: 50, MachinesPerRack: 10, SlotsPerMachine: 5,
			NICBandwidth: 1 * gbps, Oversubscription: 5}
		nJobs, window, scale = 200, 900, 1.0/8
	default:
		topo = topology.Config{Racks: 10, MachinesPerRack: 8, SlotsPerMachine: 4,
			NICBandwidth: 1 * gbps, Oversubscription: 5}
		nJobs, window, scale = 60, 450, 1.0/16
	}

	jobs := workload.W1(workload.Config{
		Scale: scale, TaskScale: scale * 4, Seed: p.Seed + 8, Jobs: nJobs,
		ArrivalWindow: window,
	})
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}

	combos := []struct {
		label string
		sched runtime.Kind
		net   netsim.Policy
	}{
		{"yarn-cs+tcp", runtime.YarnCS, netsim.MaxMinFair{}},
		{"yarn-cs+varys", runtime.YarnCS, netsim.Varys{}},
		{"corral+tcp", runtime.Corral, netsim.MaxMinFair{}},
		{"corral+varys", runtime.Corral, netsim.Varys{}},
	}
	// The four scheduler x flow-policy combos fan out as independent cells
	// (parallel.go). MaxMinFair and Varys are stateless values, safe to
	// hand to concurrent runs; the plan is read-only.
	combosTimes := make([][]float64, len(combos))
	if err := parallelFor(len(combos), func(i int) error {
		c := combos[i]
		res, err := runtime.Run(runtime.Options{
			Topology:  topo,
			Scheduler: c.sched,
			Network:   c.net,
			Plan:      plan,
			Seed:      p.Seed,
		}, workload.Clone(jobs))
		if err != nil {
			return err
		}
		combosTimes[i] = completionTimes(res, nil)
		return nil
	}); err != nil {
		return nil, err
	}
	times := map[string][]float64{}
	for i, c := range combos {
		times[c.label] = combosTimes[i]
	}

	t := &metrics.Table{
		Title:   "completion time percentiles (seconds)",
		Columns: []string{"percentile", "yarn-cs+tcp", "yarn-cs+varys", "corral+tcp", "corral+varys"},
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		row := []string{fmt.Sprintf("p%d", int(q*100))}
		for _, c := range combos {
			row = append(row, metrics.F(metrics.Percentile(times[c.label], q), 1))
		}
		t.AddRow(row...)
	}
	r.table(t)

	base := metrics.Percentile(times["yarn-cs+tcp"], 0.5)
	for _, c := range combos[1:] {
		r.set(c.label+"_median_reduction_pct",
			metrics.Reduction(base, metrics.Percentile(times[c.label], 0.5)))
	}
	return r, nil
}
