package experiments

import (
	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// Fig11 reproduces the mixed recurring + ad-hoc experiment (§6.4): 100
// recurring jobs arriving online plus 50 ad-hoc jobs submitted as a batch.
// Planning the recurring jobs with Corral speeds up both groups (paper:
// recurring 33%/27% mean/median; ad-hoc 37% faster at p90, makespan −28%).
func Fig11(p Params) (*Report, error) {
	r := newReport("Fig 11: mixed recurring + ad hoc jobs")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)

	nRecur := prof.w1Jobs
	nAdhoc := prof.w1Jobs / 2

	build := func() ([]*job.Job, error) {
		recurring, err := genOnlineWorkload("W1", prof, p.Seed+6)
		if err != nil {
			return nil, err
		}
		adhoc := workload.MarkAdHoc(workload.W1(prof.wcfg(p.Seed+7, nAdhoc, 0)))
		workload.Renumber(adhoc, nRecur+1)
		return append(recurring, adhoc...), nil
	}

	yarnJobs, err := build()
	if err != nil {
		return nil, err
	}
	yarn, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.YarnCS, Seed: p.Seed,
	}, yarnJobs)
	if err != nil {
		return nil, err
	}
	corralJobs, err := build()
	if err != nil {
		return nil, err
	}
	plan, err := planJobs(topo, corralJobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return nil, err
	}
	corral, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: p.Seed,
	}, corralJobs)
	if err != nil {
		return nil, err
	}

	groups := []struct {
		name string
		keep func(*runtime.JobResult) bool
	}{
		{"recurring", func(j *runtime.JobResult) bool { return !j.AdHoc }},
		{"ad-hoc", func(j *runtime.JobResult) bool { return j.AdHoc }},
	}
	t := &metrics.Table{
		Title:   "completion time vs Yarn-CS by job group",
		Columns: []string{"group", "metric", "yarn-cs", "corral", "reduction"},
	}
	for _, g := range groups {
		y := completionTimes(yarn, g.keep)
		c := completionTimes(corral, g.keep)
		rows := []struct {
			metric string
			yv, cv float64
		}{
			{"mean", metrics.Mean(y), metrics.Mean(c)},
			{"median", metrics.Percentile(y, 0.5), metrics.Percentile(c, 0.5)},
			{"p90", metrics.Percentile(y, 0.9), metrics.Percentile(c, 0.9)},
		}
		for _, row := range rows {
			red := metrics.Reduction(row.yv, row.cv)
			t.AddRow(g.name, row.metric, metrics.F(row.yv, 1), metrics.F(row.cv, 1), metrics.Pct(red))
			r.set(g.name+"_"+row.metric+"_reduction_pct", red)
		}
	}
	r.table(t)

	// Ad-hoc makespan.
	adhocMakespan := func(res *runtime.Result) float64 {
		m := 0.0
		for i := range res.Jobs {
			if res.Jobs[i].AdHoc && res.Jobs[i].Completion > m {
				m = res.Jobs[i].Completion
			}
		}
		return m
	}
	ym, cm := adhocMakespan(yarn), adhocMakespan(corral)
	t2 := &metrics.Table{Title: "ad-hoc batch makespan", Columns: []string{"scheduler", "seconds"}}
	t2.AddRow("yarn-cs", metrics.F(ym, 1))
	t2.AddRow("corral", metrics.F(cm, 1))
	r.table(t2)
	r.set("adhoc_makespan_reduction_pct", metrics.Reduction(ym, cm))
	return r, nil
}
