package experiments

import (
	"fmt"

	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/workload"
)

// sensitivitySeeds returns the seeds a sensitivity sweep averages over —
// the sweeps are the noisiest experiments (one number per configuration),
// so every size averages three runs, as the paper averages repeated
// cluster runs.
func sensitivitySeeds(p Params) []int64 {
	return []int64{p.Seed, p.Seed + 101, p.Seed + 202}
}

// Fig12 sweeps background core traffic (paper: 30/35/40 Gbps per rack ≈
// 50/58/67% of the 60 Gbps uplink) and reports Corral's benefit over
// Yarn-CS, which should grow substantially with load.
func Fig12(p Params) (*Report, error) {
	r := newReport("Fig 12: benefit vs background traffic, W1")
	prof := profileFor(p.Size)
	fracs := []float64{0.50, 0.58, 0.67}
	seeds := sensitivitySeeds(p)

	t := &metrics.Table{
		Title:   "% reduction vs Yarn-CS as background load grows",
		Columns: []string{"background", "makespan (batch)", "avg job time (online)"},
	}
	// One cell per (background level, seed); each runs its own batch and
	// online simulations. Cells fan out over the sweep worker pool and the
	// per-level averages reduce in seed order, exactly as the old serial
	// loops did (see parallel.go for the determinism rules).
	type cellOut struct {
		makespanRed, avgRed float64
	}
	cells := make([]cellOut, len(fracs)*len(seeds))
	if err := parallelFor(len(cells), func(ci int) error {
		frac, seed := fracs[ci/len(seeds)], seeds[ci%len(seeds)]
		topo := prof.withBackground(frac)
		batch := genWorkload("W1", prof, seed, 0)
		bres, err := runAll(topo, batch, planner.MinimizeMakespan, seed,
			runtime.YarnCS, runtime.Corral)
		if err != nil {
			return err
		}
		cells[ci].makespanRed = metrics.Reduction(bres[runtime.YarnCS].Makespan, bres[runtime.Corral].Makespan)

		online, err := genOnlineWorkload("W1", prof, seed)
		if err != nil {
			return err
		}
		ores, err := runAll(topo, online, planner.MinimizeAvgCompletion, seed,
			runtime.YarnCS, runtime.Corral)
		if err != nil {
			return err
		}
		cells[ci].avgRed = metrics.Reduction(ores[runtime.YarnCS].AvgCompletionTime(), ores[runtime.Corral].AvgCompletionTime())
		return nil
	}); err != nil {
		return nil, err
	}
	for fi, frac := range fracs {
		var makespanRed, avgRed float64
		for si := range seeds {
			makespanRed += cells[fi*len(seeds)+si].makespanRed
			avgRed += cells[fi*len(seeds)+si].avgRed
		}
		makespanRed /= float64(len(seeds))
		avgRed /= float64(len(seeds))

		label := fmt.Sprintf("%d%% uplink", int(frac*100))
		t.AddRow(label, metrics.Pct(makespanRed), metrics.Pct(avgRed))
		r.set(fmt.Sprintf("makespan_reduction_pct_bg%d", int(frac*100)), makespanRed)
		r.set(fmt.Sprintf("avgtime_reduction_pct_bg%d", int(frac*100)), avgRed)
	}
	r.table(t)
	return r, nil
}

// Fig13a injects input-size prediction error: the planner plans on the
// predicted (unperturbed) workload while the cluster runs jobs whose data
// volumes differ by up to ±err (paper: benefits stay 25-35% up to 50%).
func Fig13a(p Params) (*Report, error) {
	r := newReport("Fig 13a: robustness to error in predicted data size, W1 batch")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	seeds := sensitivitySeeds(p)

	type seedState struct {
		predicted []*job.Job
		plan      *planner.Plan
	}
	states := make([]seedState, len(seeds))
	for i, seed := range seeds {
		predicted := genWorkload("W1", prof, seed, 0)
		plan, err := planJobs(topo, predicted, planner.MinimizeMakespan)
		if err != nil {
			return nil, err
		}
		states[i] = seedState{predicted: predicted, plan: plan}
	}

	t := &metrics.Table{
		Title:   "% reduction in makespan vs Yarn-CS under size error",
		Columns: []string{"error", "reduction"},
	}
	// (error level, seed) grid, fanned out per the parallel.go rules: the
	// seed states are precomputed above, each cell runs its own pair of
	// simulations, and per-level averages reduce in seed order.
	errFracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	reds := make([]float64, len(errFracs)*len(seeds))
	if err := parallelFor(len(reds), func(ci int) error {
		errFrac, i := errFracs[ci/len(seeds)], ci%len(seeds)
		seed := seeds[i]
		actual := workload.PerturbSizes(states[i].predicted, errFrac, seed+int64(errFrac*100))
		yarn, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.YarnCS, Seed: seed,
		}, workload.Clone(actual))
		if err != nil {
			return err
		}
		corral, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: states[i].plan, Seed: seed,
		}, workload.Clone(actual))
		if err != nil {
			return err
		}
		reds[ci] = metrics.Reduction(yarn.Makespan, corral.Makespan)
		return nil
	}); err != nil {
		return nil, err
	}
	for fi, errFrac := range errFracs {
		red := 0.0
		for si := range seeds {
			red += reds[fi*len(seeds)+si]
		}
		red /= float64(len(seeds))
		t.AddRow(metrics.Pct(100*errFrac), metrics.Pct(red))
		r.set(fmt.Sprintf("makespan_reduction_pct_err%d", int(errFrac*100)), red)
	}
	r.table(t)
	return r, nil
}

// Fig13b injects job start-time error: a fraction f of jobs is delayed by
// up to ±t (t sized like the paper: several times the inter-arrival time)
// while the plan assumed the original arrivals (paper: benefit declines
// from ~40% to ≥25% as f goes 0→50%).
func Fig13b(p Params) (*Report, error) {
	r := newReport("Fig 13b: robustness to error in job arrival times, W1 online")
	prof := profileFor(p.Size)
	topo := prof.withBackground(prof.bgFrac)
	seeds := sensitivitySeeds(p)

	type seedState struct {
		predicted []*job.Job
		plan      *planner.Plan
		delay     float64
	}
	states := make([]seedState, len(seeds))
	for i, seed := range seeds {
		predicted, err := genOnlineWorkload("W1", prof, seed)
		if err != nil {
			return nil, err
		}
		plan, err := planJobs(topo, predicted, planner.MinimizeAvgCompletion)
		if err != nil {
			return nil, err
		}
		window := 0.0
		for _, j := range predicted {
			if j.Arrival > window {
				window = j.Arrival
			}
		}
		// The paper's t = 4 min on a 60-min window (~6.67x the mean
		// inter-arrival gap); keep the same ratio at our window size.
		states[i] = seedState{predicted: predicted, plan: plan, delay: window * 4 / 60}
	}

	t := &metrics.Table{
		Title:   "% reduction in average job time vs Yarn-CS under arrival error",
		Columns: []string{"% jobs delayed", "reduction"},
	}
	// Same (level, seed) grid fan-out as Fig13a, per the parallel.go rules.
	delayFracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	reds := make([]float64, len(delayFracs)*len(seeds))
	if err := parallelFor(len(reds), func(ci int) error {
		f, i := delayFracs[ci/len(seeds)], ci%len(seeds)
		seed, st := seeds[i], states[i]
		actual := workload.PerturbArrivals(st.predicted, f, st.delay, seed+int64(f*100))
		yarn, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.YarnCS, Seed: seed,
		}, workload.Clone(actual))
		if err != nil {
			return err
		}
		corral, err := runtime.Run(runtime.Options{
			Topology: topo, Scheduler: runtime.Corral, Plan: st.plan, Seed: seed,
		}, workload.Clone(actual))
		if err != nil {
			return err
		}
		reds[ci] = metrics.Reduction(yarn.AvgCompletionTime(), corral.AvgCompletionTime())
		return nil
	}); err != nil {
		return nil, err
	}
	for fi, f := range delayFracs {
		red := 0.0
		for si := range seeds {
			red += reds[fi*len(seeds)+si]
		}
		red /= float64(len(seeds))
		t.AddRow(metrics.Pct(100*f), metrics.Pct(red))
		r.set(fmt.Sprintf("avgtime_reduction_pct_delayed%d", int(f*100)), red)
	}
	r.table(t)
	return r, nil
}
