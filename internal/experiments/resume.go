package experiments

// Crash-resume equivalence harness: the measurement companion to
// internal/runtime's snapshot layer, and the "resume" registry entry.
//
// The harness takes one fault-heavy monitored run as a baseline, snapshots
// the same spec at several random mid-flight event indices, tears each
// captured run down, restores from the serialized snapshot bytes, runs the
// resumed simulation to completion, and requires the outcome to be
// indistinguishable from the uninterrupted baseline: the final Result
// deep-equal, the full trace export byte-identical, and the invariant
// monitor silent on every resumed run. Snapshot points fan out over the
// sweep worker pool; each point is a pure function of (size, seed, point
// index), so the report is worker-count invariant like every other sweep.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"

	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/trace"
	"corral/internal/workload"
)

// DefaultResumePoints is how many mid-flight snapshot points each seed is
// checked at.
const DefaultResumePoints = 3

// ResumeParams configures a crash-resume equivalence sweep.
type ResumeParams struct {
	Size   Size
	Seed   int64
	Points int // snapshot points; <=0 selects DefaultResumePoints
}

// ResumePoint is one snapshot-and-resume check.
type ResumePoint struct {
	EventIndex uint64
	SimTime    float64
	Match      bool
	Detail     string // first divergence when Match is false
	// Snapshot holds the encoded snapshot of a mismatching point so a
	// failing gate can persist it as a debugging artifact; nil on match.
	Snapshot []byte
}

// ResumeReport is the sweep outcome for one seed.
type ResumeReport struct {
	Seed   int64
	Events uint64 // baseline event count
	Points []ResumePoint
}

// Mismatches returns the failing points' descriptions.
func (r *ResumeReport) Mismatches() []string {
	var out []string
	for _, p := range r.Points {
		if !p.Match {
			out = append(out, fmt.Sprintf("seed %d event %d (t=%.3f): %s",
				r.Seed, p.EventIndex, p.SimTime, p.Detail))
		}
	}
	return out
}

// resumeScenario builds the fault-heavy run the harness snapshots: the
// corral-replan fuzz configuration (plan + failure-triggered replanning +
// machine/link/AM/corruption faults + task crashes), which touches every
// state category a snapshot must carry.
func resumeScenario(prof profile, seed int64) (runtime.Options, []*job.Job, error) {
	topo := prof.topo
	wrng := rand.New(rand.NewSource(seed))
	nJobs := 3 + wrng.Intn(5)
	window := 20 + 60*wrng.Float64()
	jobs := workload.W1(prof.wcfg(seed, nJobs, window))
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		return runtime.Options{}, nil, fmt.Errorf("resume scenario seed %d: plan: %w", seed, err)
	}
	clean, err := runtime.Run(runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: seed,
	}, workload.Clone(jobs))
	if err != nil {
		return runtime.Options{}, nil, fmt.Errorf("resume scenario seed %d: clean run: %w", seed, err)
	}
	ids := make([]int, len(jobs))
	for k, j := range jobs {
		ids[k] = j.ID
	}
	tr := genFuzzTrace(prof, seed, clean.Makespan, ids)
	opts := runtime.Options{
		Topology:        topo,
		Scheduler:       runtime.Corral,
		Plan:            plan,
		Seed:            seed,
		ReplanOnFailure: true,
		Failures:        tr.Failures,
		LinkFaults:      tr.LinkFaults,
		AMFailures:      tr.AMFailures,
		Corruptions:     tr.Corruptions,
		TaskFailureProb: tr.TaskFailureProb,
	}
	return opts, jobs, nil
}

// tracedBaseline runs the scenario uninterrupted with a tracer and the
// invariant monitor attached, returning the result and trace export.
func tracedBaseline(opts runtime.Options, jobs []*job.Job, label string) (*runtime.Result, []byte, error) {
	c := trace.NewCollector()
	mon := invariants.NewMonitor(opts.Topology.Machines(), opts.Topology.SlotsPerMachine)
	opts.Trace = c.NewRun(label)
	opts.Probe = mon
	res, err := runtime.Run(opts, workload.Clone(jobs))
	if err != nil {
		return nil, nil, err
	}
	if n := mon.ViolationCount(); n != 0 {
		return nil, nil, fmt.Errorf("baseline run raised %d invariant violations: %v", n, mon.Violations())
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		return nil, nil, err
	}
	return res, buf.Bytes(), nil
}

// RunResumeEquivalence runs the crash-resume equivalence sweep for one
// seed. Infrastructure failures (a run that errors outright) return an
// error; equivalence violations are reported as mismatched points so the
// caller can render and persist them.
func RunResumeEquivalence(p ResumeParams) (*ResumeReport, error) {
	if p.Points <= 0 {
		p.Points = DefaultResumePoints
	}
	prof := profileFor(p.Size)
	opts, jobs, err := resumeScenario(prof, p.Seed)
	if err != nil {
		return nil, err
	}
	label := fmt.Sprintf("resume-eq/seed%d", p.Seed)
	base, baseTrace, err := tracedBaseline(opts, jobs, label)
	if err != nil {
		return nil, err
	}
	if base.Events < 10 {
		return nil, fmt.Errorf("resume seed %d: baseline fired only %d events", p.Seed, base.Events)
	}
	rep := &ResumeReport{Seed: p.Seed, Events: base.Events, Points: make([]ResumePoint, p.Points)}
	// Random mid-flight indices, drawn from their own stream so point k is
	// independent of the point count.
	prng := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
	indices := make([]uint64, p.Points)
	for i := range indices {
		indices[i] = 1 + uint64(prng.Int63n(int64(base.Events-1)))
	}
	// Each point is an independent capture + resume: fan out over the
	// sweep worker pool and collect in point order (see parallel.go).
	if err := parallelFor(p.Points, func(i int) error {
		pt := &rep.Points[i]
		pt.EventIndex = indices[i]
		snap, err := runtime.CaptureAt(opts, workload.Clone(jobs), runtime.CheckpointTarget{EventIndex: indices[i]})
		if err != nil {
			return fmt.Errorf("resume seed %d point %d: capture: %w", p.Seed, i, err)
		}
		pt.SimTime = snap.Meta.SimTime
		// Round-trip through the codec: equivalence must hold for the
		// serialized form a crashed process would restart from.
		raw, err := snapshot.Encode(snap)
		if err != nil {
			return fmt.Errorf("resume seed %d point %d: encode: %w", p.Seed, i, err)
		}
		decoded, err := snapshot.Decode(raw)
		if err != nil {
			return fmt.Errorf("resume seed %d point %d: decode: %w", p.Seed, i, err)
		}
		c := trace.NewCollector()
		mon := invariants.NewMonitor(opts.Topology.Machines(), opts.Topology.SlotsPerMachine)
		res, err := runtime.Resume(decoded, runtime.ResumeOptions{
			Trace: c.NewRun(label),
			Probe: mon,
		})
		if err != nil {
			pt.Detail = fmt.Sprintf("resume failed: %v", err)
			pt.Snapshot = raw
			return nil
		}
		if n := mon.ViolationCount(); n != 0 {
			pt.Detail = fmt.Sprintf("resumed run raised %d invariant violations: %v", n, mon.Violations())
			pt.Snapshot = raw
			return nil
		}
		if !reflect.DeepEqual(res, base) {
			pt.Detail = fmt.Sprintf("final Result differs from uninterrupted run (resumed %+v, base %+v)", res, base)
			pt.Snapshot = raw
			return nil
		}
		var buf bytes.Buffer
		if err := c.WriteJSONL(&buf); err != nil {
			return err
		}
		if !bytes.Equal(buf.Bytes(), baseTrace) {
			pt.Detail = fmt.Sprintf("trace export differs from uninterrupted run (%d vs %d bytes)",
				buf.Len(), len(baseTrace))
			pt.Snapshot = raw
			return nil
		}
		pt.Match = true
		return nil
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// ScenarioSnapshot captures the crash-resume scenario run for (size,
// seed) at the given target — the corralsim -snapshot-at entry point.
func ScenarioSnapshot(size Size, seed int64, target runtime.CheckpointTarget) (*snapshot.Snapshot, error) {
	opts, jobs, err := resumeScenario(profileFor(size), seed)
	if err != nil {
		return nil, err
	}
	return runtime.CaptureAt(opts, workload.Clone(jobs), target)
}

// DefaultResumeSeeds are the seeds the registry entry and CI gate check.
var DefaultResumeSeeds = []int64{1, 42}

// Resume is the registry entry: the crash-resume equivalence sweep over
// the default seeds, DefaultResumePoints random mid-flight snapshot points
// each. Any mismatch surfaces in the report; the CI gate fails on it.
func Resume(p Params) (*Report, error) {
	r := newReport("resume: crash-resume equivalence of snapshotted runs")
	t := &metrics.Table{
		Title:   "snapshot / tear down / restore / run to completion vs uninterrupted run",
		Columns: []string{"seed", "events", "snapshot@", "t (s)", "bit-identical"},
	}
	mismatches := 0
	points := 0
	for _, seed := range DefaultResumeSeeds {
		rp := ResumeParams{Size: p.Size, Seed: p.Seed + seed, Points: DefaultResumePoints}
		rep, err := RunResumeEquivalence(rp)
		if err != nil {
			return nil, err
		}
		for _, pt := range rep.Points {
			points++
			verdict := "yes"
			if !pt.Match {
				mismatches++
				verdict = "NO: " + pt.Detail
			}
			t.AddRow(metrics.F(float64(rep.Seed), 0), metrics.F(float64(rep.Events), 0),
				metrics.F(float64(pt.EventIndex), 0), metrics.F(pt.SimTime, 2), verdict)
		}
	}
	r.table(t)
	r.set("seeds", float64(len(DefaultResumeSeeds)))
	r.set("points", float64(points))
	r.set("mismatches", float64(mismatches))
	return r, nil
}
