package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"corral/internal/invariants"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/trace"
	"corral/internal/workload"
)

// overloadGateRates: nominal load plus 4x past saturation — the ISSUE's
// acceptance point for graceful degradation.
var overloadGateRates = []float64{1, 4}

// TestOverloadGracefulDegradation is the CI gate: at 4x the saturating
// arrival rate under a fault storm, the budgeted configuration completes
// with a bounded admission queue and replan rate (armed monitor clean),
// while the unhardened replanning configuration trips the replan-rate
// bound — the anti-vacuity proof that the new invariants can fail.
func TestOverloadGracefulDegradation(t *testing.T) {
	rep, err := RunOverload(OverloadParams{Size: SizeS, Seed: 1, Rates: overloadGateRates})
	if err != nil {
		t.Fatal(err)
	}
	stormy := 0
	for _, run := range rep.Runs {
		if run.BudgetedViolations != 0 {
			t.Errorf("rate %g: budgeted run raised %d invariant violations; bounds must hold",
				run.Rate, run.BudgetedViolations)
		}
		stormy += run.CorralReplanViolations
		b := run.Budgeted
		for _, jr := range b.Jobs {
			if jr.Failed && jr.FailReason != "shed: admission queue at capacity" {
				t.Errorf("rate %g: job %d failed (%q); budgeted runs must complete or shed",
					run.Rate, jr.ID, jr.FailReason)
			}
			if !jr.Failed && jr.CompletionTime <= 0 {
				t.Errorf("rate %g: job %d admitted but never completed", run.Rate, jr.ID)
			}
		}
		if b.MaxAdmissionQueue > 4*rep.AdmissionLimit {
			t.Errorf("rate %g: admission queue peaked at %d, above cap %d",
				run.Rate, b.MaxAdmissionQueue, 4*rep.AdmissionLimit)
		}
	}
	if stormy == 0 {
		t.Error("unhardened replanning never tripped the replan-rate bound (anti-vacuity: the storm is too weak)")
	}
	// The hardening must actually engage at 4x: suppression, degradation or
	// admission pressure has to show up, or the sweep proves nothing.
	last := rep.Runs[len(rep.Runs)-1].Budgeted
	engaged := last.ReplansSuppressed + last.Deferred + last.Shed +
		last.Degradations.Incremental + last.Degradations.Greedy
	if engaged == 0 {
		t.Error("no overload machinery engaged at 4x the saturating rate (vacuous sweep)")
	}
}

// The full sweep — workload, plan, storm trace, 3 configurations per rate,
// armed monitors — must be a pure function of (params, seed). Two seeds
// guard against a constant-seed fallback passing vacuously.
func TestOverloadDeterminism(t *testing.T) {
	reports := map[int64]*OverloadReport{}
	for _, seed := range []int64{1, 42} {
		first, err := RunOverload(OverloadParams{Size: SizeS, Seed: seed, Rates: overloadGateRates})
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		second, err := RunOverload(OverloadParams{Size: SizeS, Seed: seed, Rates: overloadGateRates})
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: overload sweep not reproducible", seed)
		}
		reports[seed] = first
	}
	if reflect.DeepEqual(reports[int64(1)], reports[int64(42)]) {
		t.Error("seeds 1 and 42 produced identical sweeps (determinism test is vacuous)")
	}
}

// Worker scheduling must never leak into the report: the sweep is
// bit-identical serial and with 8 workers.
func TestOverloadWorkerInvariance(t *testing.T) {
	defer SetSweepWorkers(0)
	run := func(workers int) *Report {
		SetSweepWorkers(workers)
		rep, err := OverloadWithRates(Params{Size: SizeS, Seed: 7}, overloadGateRates)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("overload report differs between 1 and 8 sweep workers")
	}
}

// TestOverloadResumeEquivalence snapshots the budgeted 4x-overload cell
// mid-storm — with a non-empty admission queue, suppression windows open
// and deferred plan adoptions in flight — tears it down, restores from the
// serialized bytes and requires the resumed run to be indistinguishable
// from the uninterrupted one.
func TestOverloadResumeEquivalence(t *testing.T) {
	prof := profileFor(SizeS)
	topo := prof.topo
	rep, err := RunOverload(OverloadParams{Size: SizeS, Seed: 1, Rates: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := genOnlineWorkload("W1", prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planJobs(topo, jobs, planner.MinimizeAvgCompletion)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		j.Arrival /= 4
	}
	failures, _ := GenChaosTrace(topo, 1, overloadStorm, rep.Horizon)
	faults := genFlapStorm(topo, rep.ReplanWindow, rep.Horizon)
	opts := runtime.Options{
		Topology: topo, Scheduler: runtime.Corral, Plan: plan, Seed: 1,
		Failures: failures, LinkFaults: faults, ReplanOnFailure: true,
		PlannerBudget: overloadBudget, ReplanWindow: rep.ReplanWindow,
		AdmissionLimit: rep.AdmissionLimit,
	}
	base, baseTrace, err := tracedBaseline(opts, jobs, "overload-eq")
	if err != nil {
		t.Fatal(err)
	}
	if base.Deferred == 0 && base.ReplansSuppressed == 0 {
		t.Fatal("overload cell engaged no hardening; resume test would prove nothing")
	}
	for _, frac := range []float64{0.3, 0.6} {
		idx := uint64(float64(base.Events) * frac)
		snap, err := runtime.CaptureAt(opts, workload.Clone(jobs), runtime.CheckpointTarget{EventIndex: idx})
		if err != nil {
			t.Fatalf("capture at %d: %v", idx, err)
		}
		raw, err := snapshot.Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := snapshot.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		c := trace.NewCollector()
		mon := invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
		res, err := runtime.Resume(decoded, runtime.ResumeOptions{Trace: c.NewRun("overload-eq"), Probe: mon})
		if err != nil {
			t.Fatalf("resume from event %d: %v", idx, err)
		}
		if n := mon.ViolationCount(); n != 0 {
			t.Fatalf("resume from event %d raised %d violations: %v", idx, n, mon.Violations())
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("resume from event %d: Result differs from uninterrupted run", idx)
		}
		var buf bytes.Buffer
		if err := c.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), baseTrace) {
			t.Fatalf("resume from event %d: trace export differs (%d vs %d bytes)", idx, buf.Len(), len(baseTrace))
		}
	}
}
