// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 motivation plots, §4 planner quality/scaling, §6
// cluster/simulation results). Each experiment is a pure function from
// Params to a Report, shared by the corralsim CLI, the benchmark harness
// in the repository root, and the integration tests.
//
// Simulations run at a configurable Size. Absolute seconds differ from the
// paper (the workloads are byte- and task-scaled to keep runs fast); the
// reproduction target is the shape: who wins, by what rough factor, where
// trends cross.
//
// Determinism obligations: every Report is a pure function of Params
// (including Params.Seed) — reruns reproduce every metric bit for bit,
// which TestBatchDeterminism enforces. The only wall-clock reads are the
// annotated planner-running-time measurements for Fig 5.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"corral/internal/job"
	"corral/internal/metrics"
	"corral/internal/model"
	"corral/internal/planner"
	"corral/internal/runtime"
	"corral/internal/topology"
	"corral/internal/workload"
)

// Size selects the experiment scale.
type Size int

// Experiment scales.
const (
	// SizeS is for unit tests: a toy cluster, seconds of wall time.
	SizeS Size = iota
	// SizeM is the default for benchmarks and the CLI: a scaled-down
	// 7-rack cluster preserving the paper's structural ratios.
	SizeM
	// SizeL approaches the paper's job counts; minutes of wall time.
	SizeL
)

// ParseSize maps "s"/"m"/"l" to a Size.
func ParseSize(s string) (Size, error) {
	switch strings.ToLower(s) {
	case "s", "small":
		return SizeS, nil
	case "m", "medium", "":
		return SizeM, nil
	case "l", "large", "full":
		return SizeL, nil
	}
	return 0, fmt.Errorf("experiments: unknown size %q (want s/m/l)", s)
}

// Params configures an experiment run.
type Params struct {
	Size Size
	Seed int64
}

// Report is an experiment's output: human-readable tables plus named
// numeric outcomes for tests and EXPERIMENTS.md.
type Report struct {
	Name   string
	Tables []*metrics.Table
	Values map[string]float64
	keys   []string // insertion order of Values
}

func newReport(name string) *Report {
	return &Report{Name: name, Values: map[string]float64{}}
}

func (r *Report) set(key string, v float64) {
	if _, ok := r.Values[key]; !ok {
		r.keys = append(r.keys, key)
	}
	r.Values[key] = v
}

func (r *Report) table(t *metrics.Table) { r.Tables = append(r.Tables, t) }

// Keys returns the outcome keys in insertion order.
func (r *Report) Keys() []string { return append([]string(nil), r.keys...) }

// String renders all tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n", r.Name)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Func is an experiment entry point.
type Func func(Params) (*Report, error)

// Registry maps experiment IDs to their functions, in the paper's order.
func Registry() []struct {
	ID   string
	Desc string
	Run  Func
} {
	return []struct {
		ID   string
		Desc string
		Run  Func
	}{
		{"fig1", "recurring-job input sizes and predictability (§2, Fig 1)", Fig1},
		{"fig2", "CDF of slots requested per job (§2, Fig 2)", Fig2},
		{"table1", "W3 workload characteristics (Table 1)", Table1},
		{"lpgap", "heuristic vs LP relaxation gap (§4.2)", LPGap},
		{"fig5", "offline planner running time vs #jobs (Fig 5)", Fig5},
		{"fig6", "batch makespan reduction vs Yarn-CS (Fig 6)", Fig6},
		{"fig7a", "cross-rack data reduction (Fig 7a)", Fig7a},
		{"fig7b", "compute-hours reduction (Fig 7b)", Fig7b},
		{"fig7c", "CDF of average reduce time, W1 batch (Fig 7c)", Fig7c},
		{"fig8", "online completion-time CDFs (Fig 8)", Fig8},
		{"fig9", "online avg job time reduction by size bin (Fig 9)", Fig9},
		{"fig10", "TPC-H query completion times (Fig 10)", Fig10},
		{"fig11", "mixed recurring + ad hoc jobs (Fig 11)", Fig11},
		{"fig12", "benefit vs background traffic (Fig 12)", Fig12},
		{"fig13a", "robustness to input-size error (Fig 13a)", Fig13a},
		{"fig13b", "robustness to arrival-time error (Fig 13b)", Fig13b},
		{"fig14", "job schedulers x flow schedulers, large sim (Fig 14)", Fig14},
		{"balance", "input data balance across racks (§6.2)", Balance},
		{"ablation-alpha", "ablation: data-imbalance penalty on/off (§4.5)", AblationAlpha},
		{"ablation-provision", "ablation: provisioning stopping rule (§4.2)", AblationProvision},
		{"ablation-priority", "ablation: widest-job-first vs plain LPT", AblationPriority},
		{"ablation-delay", "ablation: delay-scheduling patience (Yarn-CS)", AblationDelay},
		{"ext-remote", "extension: inputs in a remote storage cluster (§7)", ExtRemoteStorage},
		{"ext-inmemory", "extension: Spark-like in-memory data (§7)", ExtInMemory},
		{"ext-failures", "extension: mid-run machine failures (§3.1/§7)", ExtFailures},
		{"ext-speculation", "extension: stragglers + speculative execution (§3.3)", ExtSpeculation},
		{"ext-replan", "extension: periodic replanning for late jobs (§3.1)", ExtReplan},
		{"ext-shared-data", "extension: shared datasets / data-job dependencies (§7)", ExtSharedData},
		{"chaos", "chaos: graceful degradation under machine + uplink fault traces", Chaos},
		{"overload", "overload: budgeted planning, storm suppression + admission control under arrival-rate sweeps", Overload},
		{"attrition", "attrition: task retries + blacklisting under rising crash rates", Attrition},
		{"fuzz", "corralcheck: randomized fault traces under the invariant monitor", Fuzz},
		{"resume", "resume: crash-resume equivalence of snapshotted runs", Resume},
		{"scale", "scale: datacenter-scale fast path (wall-clock, allocs, events/sec at 2k-10k machines)", Scale},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Func, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// --- shared scale profiles -------------------------------------------------

const gbps = 1e9 / 8

// profile bundles the cluster and workload scaling for one Size.
type profile struct {
	topo      topology.Config
	scale     float64 // workload byte scale
	taskScale float64 // W1 task-count scale
	w1Jobs    int
	w2Jobs    int
	w3Jobs    int
	tpchJobs  int
	arrival   float64 // online arrival window, seconds
	bgFrac    float64 // background as a fraction of rack uplink
}

func profileFor(size Size) profile {
	switch size {
	case SizeS:
		return profile{
			topo: topology.Config{
				Racks: 5, MachinesPerRack: 4, SlotsPerMachine: 2,
				NICBandwidth: 10 * gbps, Oversubscription: 5,
			},
			scale: 1.0 / 20, taskScale: 1.0 / 20,
			w1Jobs: 21, w2Jobs: 40, w3Jobs: 16, tpchJobs: 5,
			arrival: 120, bgFrac: 0.5,
		}
	case SizeL:
		return profile{
			topo: topology.Config{
				Racks: 7, MachinesPerRack: 15, SlotsPerMachine: 8,
				NICBandwidth: 10 * gbps, Oversubscription: 5,
			},
			scale: 1.0 / 4, taskScale: 1.0 / 4,
			w1Jobs: 90, w2Jobs: 400, w3Jobs: 200, tpchJobs: 15,
			arrival: 2400, bgFrac: 0.5,
		}
	default: // SizeM
		return profile{
			topo: topology.Config{
				Racks: 7, MachinesPerRack: 8, SlotsPerMachine: 4,
				NICBandwidth: 10 * gbps, Oversubscription: 5,
			},
			scale: 1.0 / 8, taskScale: 1.0 / 8,
			w1Jobs: 45, w2Jobs: 120, w3Jobs: 60, tpchJobs: 10,
			arrival: 600, bgFrac: 0.5,
		}
	}
}

// withBackground returns the profile's topology with background traffic at
// the given fraction of the rack uplink.
func (p profile) withBackground(frac float64) topology.Config {
	t := p.topo
	t.BackgroundPerRack = frac * t.RackUplinkCapacity()
	return t
}

func (p profile) wcfg(seed int64, jobs int, window float64) workload.Config {
	return workload.Config{
		Scale: p.scale, Seed: seed, Jobs: jobs, ArrivalWindow: window,
		TaskScale: p.taskScale,
	}
}

// planJobs runs the offline planner for the given objective.
func planJobs(topo topology.Config, jobs []*job.Job, obj planner.Objective) (*planner.Plan, error) {
	return planJobsWith(topo, jobs, obj, false)
}

// planJobsSerial plans with the legacy serial provisioning engine — the
// scale suite's plan-equivalence reference (bit-identical by contract).
func planJobsSerial(topo topology.Config, jobs []*job.Job, obj planner.Objective) (*planner.Plan, error) {
	return planJobsWith(topo, jobs, obj, true)
}

func planJobsWith(topo topology.Config, jobs []*job.Job, obj planner.Objective, serial bool) (*planner.Plan, error) {
	var planned []*job.Job
	for _, j := range jobs {
		if !j.AdHoc {
			planned = append(planned, j)
		}
	}
	return planner.New(planner.Input{
		Cluster:   model.FromTopology(topo),
		Jobs:      planned,
		Alpha:     -1,
		Objective: obj,
		Serial:    serial,
	})
}

// runAll runs the same workload under every scheduler in kinds, planning
// once for the plan-driven schedulers.
func runAll(topo topology.Config, jobs []*job.Job, obj planner.Objective, seed int64, kinds ...runtime.Kind) (map[runtime.Kind]*runtime.Result, error) {
	var plan *planner.Plan
	needPlan := false
	for _, k := range kinds {
		if k == runtime.Corral || k == runtime.LocalShuffle {
			needPlan = true
		}
	}
	if needPlan {
		var err error
		plan, err = planJobs(topo, jobs, obj)
		if err != nil {
			return nil, err
		}
	}
	// Each scheduler's run is independent (the plan is read-only, jobs are
	// cloned per run), so kinds fan out over the sweep worker pool and the
	// result map is assembled in kind order afterwards (parallel.go).
	results := make([]*runtime.Result, len(kinds))
	if err := parallelFor(len(kinds), func(i int) error {
		res, err := runtime.Run(runtime.Options{
			Topology:  topo,
			Scheduler: kinds[i],
			Plan:      plan,
			Seed:      seed,
		}, workload.Clone(jobs))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	out := make(map[runtime.Kind]*runtime.Result, len(kinds))
	for i, k := range kinds {
		out[k] = results[i]
	}
	return out, nil
}

// completionTimes extracts per-job completion times filtered by a
// predicate (nil = all jobs).
func completionTimes(res *runtime.Result, keep func(*runtime.JobResult) bool) []float64 {
	var out []float64
	for i := range res.Jobs {
		if keep == nil || keep(&res.Jobs[i]) {
			out = append(out, res.Jobs[i].CompletionTime)
		}
	}
	sort.Float64s(out)
	return out
}

var allSchedulers = []runtime.Kind{runtime.YarnCS, runtime.Corral, runtime.LocalShuffle, runtime.ShuffleWatcher}
