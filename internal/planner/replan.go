package planner

// Periodic replanning (§3.1): "The offline planner will periodically
// receive updated estimates of future workload, rerun the planning
// problem, and update the guidelines to the cluster scheduler."
//
// A replan happens while earlier jobs are still executing. Their rack
// assignments cannot change (the model assumes no preemption and no
// allocation changes mid-job, §4.1), so they enter the new plan as
// commitments: the committed racks are unavailable until the committed
// job's expected completion. The prioritization phase simply starts from
// non-zero rack-availability times.

import (
	"fmt"
	"sort"

	"corral/internal/job"
	"corral/internal/model"
)

// Commitment reserves a set of racks until an expected completion time —
// one per still-running (or already-scheduled) job from a previous plan.
type Commitment struct {
	Racks []int
	Until float64
}

// commitmentAvailability builds the per-rack initial availability vector:
// every rack free at now, pushed later by any commitment covering it.
// Rack indices are validated here — before any job-count early return —
// so an out-of-range commitment is reported even for an empty replan.
func commitmentAvailability(R int, now float64, commitments []Commitment) ([]float64, error) {
	initF := make([]float64, R)
	for i := range initF {
		initF[i] = now
	}
	for _, c := range commitments {
		for _, r := range c.Racks {
			if r < 0 || r >= R {
				return nil, fmt.Errorf("planner: commitment rack %d out of range", r)
			}
			if c.Until > initF[r] {
				initF[r] = c.Until
			}
		}
	}
	return initF, nil
}

// clampArrivals returns the job list with arrivals earlier than now
// clamped to now. Clamping happens on shallow copies — the caller's
// *job.Job values are shared with the runtime, and mutating their Arrival
// in place corrupted arrival-based metrics (e.g. Slowdown) computed after
// a replan. The input slice is returned unchanged when nothing clamps.
func clampArrivals(jobs []*job.Job, now float64) []*job.Job {
	out := jobs
	copied := false
	for i, j := range jobs {
		if j.Arrival >= now {
			continue
		}
		if !copied {
			out = append([]*job.Job(nil), jobs...)
			copied = true
		}
		cp := *j
		cp.Arrival = now
		out[i] = &cp
	}
	return out
}

// Replan runs the two-phase planning algorithm for the given (pending)
// jobs at time now, honoring commitments from in-flight work. Arrival
// times earlier than now are treated as now; the caller's jobs are never
// mutated.
func Replan(in Input, now float64, commitments []Commitment) (*Plan, error) {
	R := in.Cluster.Racks
	if R <= 0 {
		return nil, fmt.Errorf("planner: cluster has %d racks", R)
	}
	initF, err := commitmentAvailability(R, now, commitments)
	if err != nil {
		return nil, err
	}
	in.Jobs = clampArrivals(in.Jobs, now)
	return planTwoPhase(in, now, initF)
}

// ReplanIncremental is the budget-constrained middle tier of the fallback
// chain: it skips the provisioning phase entirely, keeps each job's
// previously provisioned rack count (widths, keyed by job ID; jobs
// without an entry default to one rack) and runs a single prioritization
// pass against the commitments. Cost: CostIncremental instead of
// CostFull — one pass instead of J·(R−1)+1. Like Replan, it never
// mutates the caller's jobs.
func ReplanIncremental(in Input, now float64, commitments []Commitment, widths map[int]int) (*Plan, error) {
	J := len(in.Jobs)
	R := in.Cluster.Racks
	if R <= 0 {
		return nil, fmt.Errorf("planner: cluster has %d racks", R)
	}
	initF, err := commitmentAvailability(R, now, commitments)
	if err != nil {
		return nil, err
	}

	plan := &Plan{Assignments: make(map[int]*Assignment, J), Objective: in.Objective}
	if J == 0 {
		return plan, nil
	}
	// Validate every job before emitting plan_start so a rejected input
	// cannot leave an unbalanced trace (plan_start with no plan_done).
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	in.Jobs = clampArrivals(in.Jobs, now)
	tr := in.tracer()
	tr.PlanStart(now, J, in.Objective.String())
	alpha := in.Alpha
	if alpha < 0 {
		alpha = in.Cluster.DefaultAlpha()
	}
	resp := make([]model.ResponseFunc, J)
	rj := make([]int, J)
	for i, j := range in.Jobs {
		resp[i] = in.Cluster.Response(j, alpha)
		// Keyed map reads are deterministic; only range order is not.
		w := widths[j.ID]
		if w < 1 {
			w = 1
		}
		if w > R {
			w = R
		}
		rj[i] = w
	}

	sched := newScheduler(in, resp)
	sched.initF = initF
	final := sched.run(rj)
	for rank, idx := range final.order {
		j := in.Jobs[idx]
		plan.Assignments[j.ID] = &Assignment{
			JobID:      j.ID,
			Racks:      append([]int(nil), final.racks[idx]...),
			Start:      final.start[idx],
			Priority:   rank,
			EstLatency: resp[idx].At(rj[idx]),
		}
	}
	plan.Makespan = final.makespan
	plan.AvgCompletion = final.avgCompletion
	traceAssignments(tr, now, plan)
	return plan, nil
}

// MergePlans overlays a replan onto an existing plan: assignments for jobs
// in next replace (or add to) those in prev; jobs only in prev are kept.
// Priorities are renumbered by planned start so the cluster scheduler sees
// one consistent ordering.
//
// Metrics: Makespan is the max of both plans (committed work from prev may
// outlast everything in next). AvgCompletion is carried from next — the
// merged assignments no longer know their jobs' arrivals, so the online
// metric cannot be recomputed here, and next's value is the freshest
// estimate over the jobs the replan could still influence.
func MergePlans(prev, next *Plan) *Plan {
	merged := &Plan{
		Assignments:   make(map[int]*Assignment, len(prev.Assignments)+len(next.Assignments)),
		Objective:     next.Objective,
		Makespan:      next.Makespan,
		AvgCompletion: next.AvgCompletion,
	}
	for id, a := range prev.Assignments {
		copyA := *a
		merged.Assignments[id] = &copyA
	}
	for id, a := range next.Assignments {
		copyA := *a
		merged.Assignments[id] = &copyA
	}
	// Renumber priorities by (start, jobID).
	ids := make([]int, 0, len(merged.Assignments))
	for id := range merged.Assignments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(x, y int) bool {
		a, b := merged.Assignments[ids[x]], merged.Assignments[ids[y]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.JobID < b.JobID
	})
	for rank, id := range ids {
		merged.Assignments[id].Priority = rank
	}
	if prev.Makespan > merged.Makespan {
		merged.Makespan = prev.Makespan
	}
	return merged
}
