package planner

// Periodic replanning (§3.1): "The offline planner will periodically
// receive updated estimates of future workload, rerun the planning
// problem, and update the guidelines to the cluster scheduler."
//
// A replan happens while earlier jobs are still executing. Their rack
// assignments cannot change (the model assumes no preemption and no
// allocation changes mid-job, §4.1), so they enter the new plan as
// commitments: the committed racks are unavailable until the committed
// job's expected completion. The prioritization phase simply starts from
// non-zero rack-availability times.

import (
	"fmt"
	"sort"

	"corral/internal/model"
)

// Commitment reserves a set of racks until an expected completion time —
// one per still-running (or already-scheduled) job from a previous plan.
type Commitment struct {
	Racks []int
	Until float64
}

// Replan runs the two-phase planning algorithm for the given (pending)
// jobs at time now, honoring commitments from in-flight work. Arrival
// times earlier than now are clamped to now.
func Replan(in Input, now float64, commitments []Commitment) (*Plan, error) {
	J := len(in.Jobs)
	R := in.Cluster.Racks
	if R <= 0 {
		return nil, fmt.Errorf("planner: cluster has %d racks", R)
	}
	// Initial rack availability from commitments.
	initF := make([]float64, R)
	for i := range initF {
		initF[i] = now
	}
	for _, c := range commitments {
		for _, r := range c.Racks {
			if r < 0 || r >= R {
				return nil, fmt.Errorf("planner: commitment rack %d out of range", r)
			}
			if c.Until > initF[r] {
				initF[r] = c.Until
			}
		}
	}

	plan := &Plan{Assignments: make(map[int]*Assignment, J), Objective: in.Objective}
	if J == 0 {
		return plan, nil
	}
	tr := in.tracer()
	tr.PlanStart(now, J, in.Objective.String())
	alpha := in.Alpha
	if alpha < 0 {
		alpha = in.Cluster.DefaultAlpha()
	}
	resp := make([]model.ResponseFunc, J)
	for i, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.Arrival < now {
			j.Arrival = now
		}
		resp[i] = in.Cluster.Response(j, alpha)
	}

	rj := make([]int, J)
	for i := range rj {
		rj[i] = 1
	}
	sched := newScheduler(in, resp)
	sched.initF = initF

	bestObj := sched.run(rj).objective(in.Objective)
	bestRj := append([]int(nil), rj...)
	for {
		longest, longestLat := -1, -1.0
		for i := range rj {
			if rj[i] >= R {
				continue
			}
			if l := resp[i].At(rj[i]); l > longestLat {
				longest, longestLat = i, l
			}
		}
		if longest == -1 {
			break
		}
		rj[longest]++
		if obj := sched.run(rj).objective(in.Objective); obj < bestObj {
			bestObj = obj
			copy(bestRj, rj)
		}
	}

	final := sched.run(bestRj)
	order := make([]int, J)
	copy(order, final.order)
	for rank, idx := range order {
		j := in.Jobs[idx]
		plan.Assignments[j.ID] = &Assignment{
			JobID:      j.ID,
			Racks:      append([]int(nil), final.racks[idx]...),
			Start:      final.start[idx],
			Priority:   rank,
			EstLatency: resp[idx].At(bestRj[idx]),
		}
	}
	plan.Makespan = final.makespan
	plan.AvgCompletion = final.avgCompletion
	traceAssignments(tr, now, plan)
	return plan, nil
}

// ReplanIncremental is the budget-constrained middle tier of the fallback
// chain: it skips the provisioning phase entirely, keeps each job's
// previously provisioned rack count (widths, keyed by job ID; jobs
// without an entry default to one rack) and runs a single prioritization
// pass against the commitments. Cost: CostIncremental instead of
// CostFull — one pass instead of J·(R−1)+1.
func ReplanIncremental(in Input, now float64, commitments []Commitment, widths map[int]int) (*Plan, error) {
	J := len(in.Jobs)
	R := in.Cluster.Racks
	if R <= 0 {
		return nil, fmt.Errorf("planner: cluster has %d racks", R)
	}
	initF := make([]float64, R)
	for i := range initF {
		initF[i] = now
	}
	for _, c := range commitments {
		for _, r := range c.Racks {
			if r < 0 || r >= R {
				return nil, fmt.Errorf("planner: commitment rack %d out of range", r)
			}
			if c.Until > initF[r] {
				initF[r] = c.Until
			}
		}
	}

	plan := &Plan{Assignments: make(map[int]*Assignment, J), Objective: in.Objective}
	if J == 0 {
		return plan, nil
	}
	tr := in.tracer()
	tr.PlanStart(now, J, in.Objective.String())
	alpha := in.Alpha
	if alpha < 0 {
		alpha = in.Cluster.DefaultAlpha()
	}
	resp := make([]model.ResponseFunc, J)
	rj := make([]int, J)
	for i, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.Arrival < now {
			j.Arrival = now
		}
		resp[i] = in.Cluster.Response(j, alpha)
		// Keyed map reads are deterministic; only range order is not.
		w := widths[j.ID]
		if w < 1 {
			w = 1
		}
		if w > R {
			w = R
		}
		rj[i] = w
	}

	sched := newScheduler(in, resp)
	sched.initF = initF
	final := sched.run(rj)
	order := make([]int, J)
	copy(order, final.order)
	for rank, idx := range order {
		j := in.Jobs[idx]
		plan.Assignments[j.ID] = &Assignment{
			JobID:      j.ID,
			Racks:      append([]int(nil), final.racks[idx]...),
			Start:      final.start[idx],
			Priority:   rank,
			EstLatency: resp[idx].At(rj[idx]),
		}
	}
	plan.Makespan = final.makespan
	plan.AvgCompletion = final.avgCompletion
	traceAssignments(tr, now, plan)
	return plan, nil
}

// MergePlans overlays a replan onto an existing plan: assignments for jobs
// in next replace (or add to) those in prev; jobs only in prev are kept.
// Priorities are renumbered by planned start so the cluster scheduler sees
// one consistent ordering.
func MergePlans(prev, next *Plan) *Plan {
	merged := &Plan{
		Assignments: make(map[int]*Assignment, len(prev.Assignments)+len(next.Assignments)),
		Objective:   next.Objective,
		Makespan:    next.Makespan,
	}
	for id, a := range prev.Assignments {
		copyA := *a
		merged.Assignments[id] = &copyA
	}
	for id, a := range next.Assignments {
		copyA := *a
		merged.Assignments[id] = &copyA
	}
	// Renumber priorities by (start, jobID).
	ids := make([]int, 0, len(merged.Assignments))
	for id := range merged.Assignments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(x, y int) bool {
		a, b := merged.Assignments[ids[x]], merged.Assignments[ids[y]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.JobID < b.JobID
	})
	for rank, id := range ids {
		merged.Assignments[id].Priority = rank
	}
	if prev.Makespan > merged.Makespan {
		merged.Makespan = prev.Makespan
	}
	return merged
}
