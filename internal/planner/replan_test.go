package planner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"corral/internal/job"
	"corral/internal/trace"
)

func jobsOf(js ...*job.Job) []*job.Job { return js }

func TestReplanEmpty(t *testing.T) {
	p, err := Replan(Input{Cluster: testClusterModel()}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 0 {
		t.Fatal("empty replan has assignments")
	}
}

func TestReplanRespectsCommitments(t *testing.T) {
	c := testClusterModel()
	c.Racks = 2
	j := mkJob(1, 50, 100, 10, 30, 30)
	// Rack 0 is committed until t=1000; the new job must either run on
	// rack 1 (start >= now) or wait for rack 0.
	p, err := Replan(Input{Cluster: c, Jobs: jobsOf(j)}, 50, []Commitment{{Racks: []int{0}, Until: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assignments[1]
	if len(a.Racks) == 1 && a.Racks[0] == 1 {
		if a.Start < 50 {
			t.Fatalf("start %g before now", a.Start)
		}
	} else {
		// Uses rack 0 (possibly among others): cannot start before 1000.
		if a.Start < 1000 {
			t.Fatalf("job on committed rack starts at %g, want >= 1000", a.Start)
		}
	}
}

func TestReplanClampsPastArrivals(t *testing.T) {
	c := testClusterModel()
	j := mkJob(1, 10, 10, 5, 10, 5)
	j.Arrival = 10 // in the past relative to now=500
	p, err := Replan(Input{Cluster: c, Jobs: jobsOf(j), Objective: MinimizeAvgCompletion}, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignments[1].Start < 500 {
		t.Fatalf("replanned start %g before now=500", p.Assignments[1].Start)
	}
}

func TestReplanInvalidCommitmentRack(t *testing.T) {
	c := testClusterModel()
	if _, err := Replan(Input{Cluster: c}, 0, []Commitment{{Racks: []int{99}, Until: 1}}); err == nil {
		t.Fatal("out-of-range commitment rack not rejected")
	}
}

func TestReplanWithoutCommitmentsMatchesFreshPlanShape(t *testing.T) {
	c := testClusterModel()
	rng := rand.New(rand.NewSource(4))
	jobs := randomJobs(rng, 20)
	for _, j := range jobs {
		j.Arrival = 0
	}
	fresh, err := New(Input{Cluster: c, Jobs: jobs, Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Replan(Input{Cluster: c, Jobs: jobs, Alpha: -1}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh.Makespan-re.Makespan) > 1e-9 {
		t.Fatalf("replan at t=0 with no commitments differs: %g vs %g",
			fresh.Makespan, re.Makespan)
	}
}

func TestMergePlans(t *testing.T) {
	prev := &Plan{Assignments: map[int]*Assignment{
		1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 10},
		2: {JobID: 2, Racks: []int{1}, Start: 5, EstLatency: 10},
	}, Makespan: 15}
	next := &Plan{Assignments: map[int]*Assignment{
		2: {JobID: 2, Racks: []int{2}, Start: 20, EstLatency: 5},
		3: {JobID: 3, Racks: []int{0}, Start: 12, EstLatency: 5},
	}, Makespan: 25}
	merged := MergePlans(prev, next)
	if len(merged.Assignments) != 3 {
		t.Fatalf("merged %d assignments, want 3", len(merged.Assignments))
	}
	if merged.Assignments[2].Racks[0] != 2 {
		t.Fatal("replan did not override job 2")
	}
	if merged.Assignments[1].Racks[0] != 0 {
		t.Fatal("job 1 lost its assignment")
	}
	// Priorities follow start order: job1 (0), job3 (12), job2 (20).
	if merged.Assignments[1].Priority != 0 ||
		merged.Assignments[3].Priority != 1 ||
		merged.Assignments[2].Priority != 2 {
		t.Fatalf("merged priorities wrong: %d %d %d",
			merged.Assignments[1].Priority,
			merged.Assignments[3].Priority,
			merged.Assignments[2].Priority)
	}
	if merged.Makespan != 25 {
		t.Fatalf("merged makespan %g, want 25", merged.Makespan)
	}
	// Originals untouched.
	if prev.Assignments[2].Racks[0] != 1 {
		t.Fatal("MergePlans mutated its input")
	}
}

// Property: replanned starts never precede now or the commitment horizon
// of any rack they use.
func TestQuickReplanCommitments(t *testing.T) {
	c := testClusterModel()
	f := func(seed int64, n uint8, horizon uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomJobs(rng, int(n%10)+1)
		now := float64(horizon % 500)
		until := now + float64(horizon%1000)
		committed := rng.Intn(c.Racks)
		p, err := Replan(Input{Cluster: c, Jobs: jobs, Alpha: -1}, now,
			[]Commitment{{Racks: []int{committed}, Until: until}})
		if err != nil {
			return false
		}
		for _, a := range p.Assignments {
			if a.Start < now-1e-9 {
				return false
			}
			for _, r := range a.Racks {
				if r == committed && a.Start < until-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Regression: Replan and ReplanIncremental used to clamp j.Arrival = now
// on the caller's *job.Job — mutating jobs shared with the runtime and
// corrupting arrival-based metrics (e.g. Slowdown) computed afterwards.
// Clamping must happen on local copies only.
func TestReplanDoesNotMutateInputJobs(t *testing.T) {
	c := testClusterModel()
	jobs := jobsOf(mkJob(1, 10, 10, 5, 10, 5), mkJob(2, 20, 30, 5, 20, 10))
	jobs[0].Arrival = 10 // both in the past relative to now=500
	jobs[1].Arrival = 42

	if _, err := Replan(Input{Cluster: c, Jobs: jobs, Objective: MinimizeAvgCompletion}, 500, nil); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Arrival != 10 || jobs[1].Arrival != 42 {
		t.Fatalf("Replan mutated input arrivals: got %g, %g", jobs[0].Arrival, jobs[1].Arrival)
	}

	if _, err := ReplanIncremental(Input{Cluster: c, Jobs: jobs, Objective: MinimizeAvgCompletion},
		500, nil, map[int]int{1: 2, 2: 3}); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Arrival != 10 || jobs[1].Arrival != 42 {
		t.Fatalf("ReplanIncremental mutated input arrivals: got %g, %g", jobs[0].Arrival, jobs[1].Arrival)
	}
}

// Regression: MergePlans carried Makespan forward but left AvgCompletion
// silently zero. It now carries next's value (the merged assignments no
// longer know their arrivals, so the online metric cannot be recomputed;
// next's estimate covers the jobs the replan could still influence).
func TestMergePlansCarriesAvgCompletion(t *testing.T) {
	prev := &Plan{Assignments: map[int]*Assignment{
		1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 10},
	}, Makespan: 10, AvgCompletion: 10, Objective: MinimizeAvgCompletion}
	next := &Plan{Assignments: map[int]*Assignment{
		2: {JobID: 2, Racks: []int{1}, Start: 20, EstLatency: 5},
	}, Makespan: 25, AvgCompletion: 12.5, Objective: MinimizeAvgCompletion}
	merged := MergePlans(prev, next)
	if merged.AvgCompletion != 12.5 {
		t.Fatalf("merged AvgCompletion = %g, want next's 12.5", merged.AvgCompletion)
	}
}

// Regression: New, Replan and ReplanIncremental used to emit plan_start
// before validating jobs, so a rejected input left an unbalanced trace
// (plan_start with no plan_done). Validation now runs first: an erroring
// plan emits nothing.
func TestPlanTraceBalancedOnValidationError(t *testing.T) {
	c := testClusterModel()
	bad := mkJob(1, 10, 10, 10, 10, 10)
	bad.Stages[0].Profile.MapTasks = 0

	calls := []func(in Input) error{
		func(in Input) error { _, err := New(in); return err },
		func(in Input) error { _, err := Replan(in, 100, nil); return err },
		func(in Input) error { _, err := ReplanIncremental(in, 100, nil, nil); return err },
	}
	for i, call := range calls {
		tr := trace.New("test")
		err := call(Input{Cluster: c, Jobs: jobsOf(bad), Trace: tr})
		if err == nil {
			t.Fatalf("call %d: invalid job not rejected", i)
		}
		starts, dones := 0, 0
		for _, e := range tr.Events() {
			switch e.Kind {
			case trace.KPlanStart:
				starts++
			case trace.KPlanDone:
				dones++
			}
		}
		if starts != dones {
			t.Fatalf("call %d: unbalanced trace after validation error: %d plan_start, %d plan_done",
				i, starts, dones)
		}
		if starts != 0 {
			t.Fatalf("call %d: erroring plan emitted %d plan_start events, want 0", i, starts)
		}
	}
}
