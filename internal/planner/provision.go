package planner

// Provisioning fast path. The §4.2 provisioning phase explores a chain of
// J·(R−1)+1 candidate allocations — start every job at one rack, then
// repeatedly widen the job with the longest current estimate — and keeps
// the candidate whose prioritization objective is smallest. Two structural
// facts make this chain cheap to evaluate at datacenter scale without
// changing a single output bit:
//
//  1. The chain itself never looks at the prioritization results: the job
//     to widen next is chosen purely from resp[i].At(rj[i]), which depends
//     only on the widths so far. The whole chain can therefore be
//     precomputed up front (buildChain) and the candidate evaluations
//     fanned out over a bounded work-stealing pool (the
//     experiments/parallel.go pattern), with a serial index-order argmin
//     afterwards — the strict `<` of the legacy loop — so the winner is
//     identical for any worker count.
//
//  2. Consecutive candidates differ in exactly one job's width, so a
//     worker walking a contiguous block of the chain can maintain the
//     prioritization sort order incrementally (one-element reposition
//     instead of a full J·log J re-sort), and a candidate's objective
//     needs no materialized rack sets at all: the start time of a job is
//     the k-th smallest rack-availability time, which depends only on the
//     sorted *multiset* of times — never on which rack holds one. The
//     evaluator therefore group-compresses rack availability into sorted
//     (time, count) runs, replacing the legacy scheduler's O(R)-per-job
//     flat merge and per-job rack-set sort with a few group operations.
//
// The legacy serial path (provisionSerial: the scheduler evaluated once
// per candidate, exactly the pre-fast-path code) stays as the
// differential-test reference — the MaxMinFair-vs-GroupedMaxMin playbook:
// TestProvisionFastMatchesSerial proves the two produce DeepEqual plans
// across seeded random workloads, objectives and commitments.
//
// Determinism obligations: candidate objectives are pure functions of
// (jobs, cluster, widths); block decomposition and worker scheduling feed
// neither the values nor the reduction order.

import (
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"corral/internal/job"
	"corral/internal/model"
)

// planWorkersBound is the configured provisioning worker bound; <= 0
// means GOMAXPROCS.
var planWorkersBound atomic.Int64

// SetWorkers bounds the worker pool the provisioning fast path fans
// candidate evaluations over. n <= 0 restores the default (GOMAXPROCS);
// n == 1 forces serial evaluation. The setting changes wall-clock only,
// never results (TestProvisionWorkerCountInvariance).
func SetWorkers(n int) { planWorkersBound.Store(int64(n)) }

// Workers reports the current effective provisioning worker bound.
func Workers() int {
	if n := int(planWorkersBound.Load()); n > 0 {
		return n
	}
	return goruntime.GOMAXPROCS(0)
}

// parallelFor runs fn(0..n-1) across the provisioning worker pool. fn
// must confine its writes to block i's own index-addressed state; any
// shared reduction belongs after parallelFor returns (the same contract
// corralvet's sweepsafe check enforces on experiments.parallelFor).
func parallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// buildChain replays the widening rule without evaluating any candidate:
// chain[t] is the job widened to produce candidate t+1 (candidate 0 is
// all-ones). The rule is verbatim the legacy loop's — widen the job with
// the longest current estimate among those not yet cluster-wide, first
// index on ties — so the precomputed chain visits exactly the allocations
// the serial path visits, in the same order.
func buildChain(resp []model.ResponseFunc, J, R int) []int {
	chain := make([]int, 0, J*(R-1))
	rj := make([]int, J)
	for i := range rj {
		rj[i] = 1
	}
	for {
		longest, longestLat := -1, -1.0
		for i := range rj {
			if rj[i] >= R {
				continue
			}
			if l := resp[i].At(rj[i]); l > longestLat {
				longest, longestLat = i, l
			}
		}
		if longest == -1 {
			break
		}
		rj[longest]++
		chain = append(chain, longest)
	}
	return chain
}

// fGroup is a maximal run of racks sharing one availability time in the
// sorted rack-availability sequence.
type fGroup struct {
	f float64 // availability time
	n int     // racks carrying it
}

// groupsFromInitF compresses an initial rack-availability vector into
// sorted (time, count) runs. nil (New: every rack free at 0) is a single
// group spanning the cluster.
func groupsFromInitF(initF []float64, R int) []fGroup {
	if initF == nil {
		return []fGroup{{f: 0, n: R}}
	}
	fs := append([]float64(nil), initF...)
	sort.Float64s(fs)
	groups := make([]fGroup, 0, 8)
	for _, f := range fs {
		//corralvet:ok floateq exact identity intended: bit-equal availability times collapse into one group; any difference, however small, starts a new run
		if n := len(groups); n > 0 && groups[n-1].f == f {
			groups[n-1].n++
		} else {
			groups = append(groups, fGroup{f: f, n: 1})
		}
	}
	return groups
}

// jobLess is the prioritization order (Fig 4) shared by the legacy
// scheduler's full sort, the evaluator's block-entry sort and the
// incremental reposition: online orders by arrival first; both scenarios
// then take widest-first, longest-first, with the job ID as the final
// tie-break. The ID step makes this a strict total order, so any valid
// sort — full, stable or binary-search reinsertion — produces the one
// identical permutation.
func jobLess(online bool, jobs []*job.Job, resp []model.ResponseFunc, rj []int, a, b int) bool {
	if online {
		//corralvet:ok floateq exact identity intended: sort key comparison — any arrival difference, however small, orders the jobs; ties fall through
		if jobs[a].Arrival != jobs[b].Arrival {
			return jobs[a].Arrival < jobs[b].Arrival
		}
	}
	if rj[a] != rj[b] {
		return rj[a] > rj[b]
	}
	la, lb := resp[a].At(rj[a]), resp[b].At(rj[b])
	//corralvet:ok floateq exact identity intended: sort key comparison — any latency difference, however small, orders the jobs; ties fall through to the ID tie-break
	if la != lb {
		return la > lb
	}
	return jobs[a].ID < jobs[b].ID
}

// evaluator computes one candidate objective per call, reusing per-worker
// scratch so steady-state evaluation allocates nothing (pinned by
// TestEvaluatorSteadyStateZeroAlloc and corralvet's hotalloc check via
// the //corral:hotpath markers).
type evaluator struct {
	jobs       []*job.Job
	resp       []model.ResponseFunc
	online     bool
	rj         []int
	order      []int // job indices in prioritization order, maintained incrementally
	initGroups []fGroup
	groups     []fGroup // scratch: rack availability as sorted (time, count) runs
}

func newEvaluator(in Input, resp []model.ResponseFunc, initGroups []fGroup) *evaluator {
	J := len(in.Jobs)
	return &evaluator{
		jobs:       in.Jobs,
		resp:       resp,
		online:     in.Objective == MinimizeAvgCompletion,
		rj:         make([]int, J),
		order:      make([]int, J),
		initGroups: initGroups,
		groups:     make([]fGroup, len(initGroups)+J+1),
	}
}

// reset seeds the evaluator at the candidate with widths rj: one full
// stable sort at block entry; widen maintains the order incrementally
// from there.
func (e *evaluator) reset(rj []int) {
	copy(e.rj, rj)
	for i := range e.order {
		e.order[i] = i
	}
	sort.SliceStable(e.order, func(x, y int) bool {
		return jobLess(e.online, e.jobs, e.resp, e.rj, e.order[x], e.order[y])
	})
}

// widen applies rj[w]++ and repositions w in the prioritization order: a
// one-element deletion plus binary-search reinsertion (an O(J) memmove)
// in place of the full J·log J re-sort — consecutive provisioning
// candidates differ in exactly this one key, and jobLess is a strict
// total order, so the repositioned sequence is the unique sorted
// permutation the full sort would produce.
//
//corral:hotpath widen runs once per provisioning candidate, J·(R−1) times per plan.
func (e *evaluator) widen(w int) {
	e.rj[w]++
	order := e.order
	J := len(order)
	i := 0
	for order[i] != w {
		i++
	}
	copy(order[i:], order[i+1:])
	rest := order[:J-1]
	lo, hi := 0, len(rest)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if jobLess(e.online, e.jobs, e.resp, e.rj, w, rest[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	copy(order[lo+1:], order[lo:J-1])
	order[lo] = w
}

// objective runs one prioritization pass over the current widths and
// returns the candidate's objective value, bit-identical to
// scheduler.run(rj).objective(in.Objective).
//
// Bit-identity argument: a job's start time is the k-th smallest rack
// availability (legacy: rackF[k-1].f), which depends only on the sorted
// multiset of availability times, never on which rack carries one — and
// the k earliest racks all adopt the same finish time. So the multiset
// evolves identically whether tracked as the legacy flat (time, rackID)
// sequence or as compressed (time, count) runs, and rack identities can
// be dropped entirely: finish = max(start, arrival) + lat, makespan and
// the completion sum accumulate over the same job order with the same
// float operations. Equal-time runs merge; where the legacy flat list
// interleaves equal-time racks by ID, any prefix drawn from the combined
// run removes the same multiset of times regardless of the interleaving.
//
//corral:hotpath objective runs once per provisioning candidate, J·(R−1)+1 times per plan.
func (e *evaluator) objective() float64 {
	groups := e.groups[:len(e.initGroups)]
	copy(groups, e.initGroups)
	head := 0 // groups[head:] is live; the prefix is consumed scratch
	makespan, sum := 0.0, 0.0
	for _, idx := range e.order {
		k := e.rj[idx]
		lat := e.resp[idx].At(k)
		arr := 0.0
		if e.online {
			arr = e.jobs[idx].Arrival
		}
		// start = availability of the k-th earliest rack: walk the runs.
		need := k
		gi := head
		for groups[gi].n < need {
			need -= groups[gi].n
			gi++
		}
		start := groups[gi].f
		if arr > start {
			start = arr
		}
		finish := start + lat
		// Consume the k earliest racks: drop whole runs, shrink the last.
		groups[gi].n -= need
		if groups[gi].n == 0 {
			gi++
		}
		head = gi
		// Reinsert them as one run at finish, keeping groups sorted.
		lo, hi := head, len(groups)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if groups[mid].f > finish {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		//corralvet:ok floateq exact identity intended: a run carrying the bit-identical finish time absorbs the reassigned racks; rack identities never reach the objective
		if lo > head && groups[lo-1].f == finish {
			groups[lo-1].n += k
		} else if head > 0 {
			// Slide the (short) live prefix left into the consumed slot.
			copy(groups[head-1:], groups[head:lo])
			groups[lo-1] = fGroup{f: finish, n: k}
			head--
		} else {
			// No consumed slot free: grow at the tail.
			groups = groups[:len(groups)+1]
			copy(groups[lo+1:], groups[lo:len(groups)-1])
			groups[lo] = fGroup{f: finish, n: k}
		}
		if finish > makespan {
			makespan = finish
		}
		sum += finish - arr
	}
	if e.online {
		return sum / float64(len(e.jobs))
	}
	return makespan
}

// provision explores the widening chain and returns the best widths
// vector. Input.Serial selects the legacy reference engine.
func provision(in Input, resp []model.ResponseFunc, initF []float64) []int {
	if in.Serial {
		return provisionSerial(in, resp, initF)
	}
	return provisionFast(in, resp, initF)
}

// provisionFast is the parallel/incremental engine: precompute the chain,
// fan contiguous candidate blocks over the worker pool (each block with
// its own evaluator scratch), then take the serial index-order argmin —
// the legacy loop's strict `<` update rule, so the earliest candidate
// wins ties and the result is worker-count-invariant.
func provisionFast(in Input, resp []model.ResponseFunc, initF []float64) []int {
	J, R := len(in.Jobs), in.Cluster.Racks
	chain := buildChain(resp, J, R)
	C := len(chain) + 1
	initGroups := groupsFromInitF(initF, R)
	objs := make([]float64, C)

	// Contiguous blocks amortize the block-entry sort and width replay;
	// a few blocks per worker keeps the stealing pool balanced. Block
	// geometry affects wall-clock only: every objs[t] is a pure function
	// of candidate t.
	nb := Workers() * 4
	if nb > C {
		nb = C
	}
	if nb < 1 {
		nb = 1
	}
	parallelFor(nb, func(b int) {
		lo, hi := b*C/nb, (b+1)*C/nb
		out := objs[lo:hi] // this block's own slots
		ev := newEvaluator(in, resp, initGroups)
		rj := make([]int, J)
		for i := range rj {
			rj[i] = 1
		}
		for t := 0; t < lo; t++ {
			rj[chain[t]]++
		}
		ev.reset(rj)
		out[0] = ev.objective()
		for t := lo + 1; t < hi; t++ {
			ev.widen(chain[t-1])
			out[t-lo] = ev.objective()
		}
	})

	best := 0
	for t := 1; t < C; t++ {
		if objs[t] < objs[best] {
			best = t
		}
	}
	bestRj := make([]int, J)
	for i := range bestRj {
		bestRj[i] = 1
	}
	for t := 0; t < best; t++ {
		bestRj[chain[t]]++
	}
	return bestRj
}

// provisionSerial is the legacy engine, kept verbatim as the differential
// reference: one scheduler, every candidate evaluated in chain order with
// a full prioritization run, best kept under strict `<`.
func provisionSerial(in Input, resp []model.ResponseFunc, initF []float64) []int {
	R := in.Cluster.Racks
	rj := make([]int, len(in.Jobs))
	for i := range rj {
		rj[i] = 1
	}
	sched := newScheduler(in, resp)
	sched.initF = initF

	bestObj := sched.run(rj).objective(in.Objective)
	bestRj := append([]int(nil), rj...)
	for {
		// Widen the longest job that is not yet cluster-wide.
		longest, longestLat := -1, -1.0
		for i := range rj {
			if rj[i] >= R {
				continue
			}
			if l := resp[i].At(rj[i]); l > longestLat {
				longest, longestLat = i, l
			}
		}
		if longest == -1 {
			break
		}
		rj[longest]++
		if obj := sched.run(rj).objective(in.Objective); obj < bestObj {
			bestObj = obj
			copy(bestRj, rj)
		}
	}
	return bestRj
}
