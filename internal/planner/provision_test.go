package planner

// Differential tests for the provisioning fast path: the parallel /
// incremental / group-compressed engine must produce Plans DeepEqual to
// the legacy serial reference (Input.Serial) — the same playbook that
// proved GroupedMaxMin bit-identical to MaxMinFair.

import (
	"math/rand"
	"reflect"
	"testing"

	"corral/internal/model"
)

// randomCommitments reserves a few random rack sets until random times.
func randomCommitments(rng *rand.Rand, R int, now float64) []Commitment {
	n := rng.Intn(4)
	cs := make([]Commitment, 0, n)
	for i := 0; i < n; i++ {
		racks := rng.Perm(R)[:rng.Intn(R)+1]
		cs = append(cs, Commitment{Racks: racks, Until: now + rng.Float64()*5000})
	}
	return cs
}

// TestProvisionFastMatchesSerial fuzzes the fast path against the legacy
// serial engine across seeded random workloads × {batch, online} ×
// {fresh plan, replan with commitments}: the Plans must be DeepEqual —
// same rack sets, starts, priorities, latencies and metrics, bit for bit.
func TestProvisionFastMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, obj := range []Objective{MinimizeMakespan, MinimizeAvgCompletion} {
			rng := rand.New(rand.NewSource(seed))
			jobs := randomJobs(rng, rng.Intn(40)+1)
			in := Input{Cluster: testClusterModel(), Jobs: jobs, Alpha: -1, Objective: obj}

			fast, err := New(in)
			if err != nil {
				t.Fatal(err)
			}
			ser := in
			ser.Serial = true
			slow, err := New(ser)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("seed %d %s: fast plan differs from serial reference\nfast: %+v\nserial: %+v",
					seed, obj, fast, slow)
			}
			checkPlanInvariants(t, in, fast)

			now := rng.Float64() * 2000
			cs := randomCommitments(rng, in.Cluster.Racks, now)
			fastR, err := Replan(in, now, cs)
			if err != nil {
				t.Fatal(err)
			}
			slowR, err := Replan(ser, now, cs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fastR, slowR) {
				t.Fatalf("seed %d %s replan: fast plan differs from serial reference", seed, obj)
			}
		}
	}
}

// TestProvisionWorkerCountInvariance pins the determinism contract: the
// worker pool size changes wall-clock only, never the plan.
func TestProvisionWorkerCountInvariance(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(7))
	in := Input{
		Cluster:   testClusterModel(),
		Jobs:      randomJobs(rng, 40),
		Alpha:     -1,
		Objective: MinimizeAvgCompletion,
	}
	SetWorkers(1)
	one, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	eight, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("plan differs between 1 and 8 provisioning workers")
	}
}

// TestProvisionSeedsDiffer is the anti-vacuity guard: if DeepEqual were
// trivially true (e.g. both engines returning empty plans), different
// seeds would agree too.
func TestProvisionSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Plan {
		rng := rand.New(rand.NewSource(seed))
		p, err := New(Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 20), Alpha: -1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if reflect.DeepEqual(mk(1), mk(2)) {
		t.Fatal("plans for different seeds are identical; differential test is vacuous")
	}
}

// TestBuildChainMatchesSerialWidening replays both widening rules side by
// side: the precomputed chain must visit exactly the widths the serial
// loop visits, in order.
func TestBuildChainMatchesSerialWidening(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 15), Alpha: -1}
	J, R := len(in.Jobs), in.Cluster.Racks
	resp := responseFuncs(t, in)

	chain := buildChain(resp, J, R)
	if want := J * (R - 1); len(chain) != want {
		t.Fatalf("chain length %d, want %d", len(chain), want)
	}
	rj := make([]int, J)
	for i := range rj {
		rj[i] = 1
	}
	for step, w := range chain {
		longest, longestLat := -1, -1.0
		for i := range rj {
			if rj[i] >= R {
				continue
			}
			if l := resp[i].At(rj[i]); l > longestLat {
				longest, longestLat = i, l
			}
		}
		if longest != w {
			t.Fatalf("step %d: chain widens job %d, serial rule widens %d", step, w, longest)
		}
		rj[w]++
	}
}

// TestEvaluatorSteadyStateZeroAlloc pins the per-candidate hot path
// (widen + objective) at zero allocations; corralvet's hotalloc check
// guards the same property statically via the //corral:hotpath markers.
func TestEvaluatorSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 30), Alpha: -1, Objective: MinimizeAvgCompletion}
	J, R := len(in.Jobs), in.Cluster.Racks
	resp := responseFuncs(t, in)
	chain := buildChain(resp, J, R)

	ev := newEvaluator(in, resp, groupsFromInitF(nil, R))
	rj := make([]int, J)
	for i := range rj {
		rj[i] = 1
	}
	ev.reset(rj)
	sink := ev.objective()
	step := 0
	allocs := testing.AllocsPerRun(100, func() {
		ev.widen(chain[step])
		sink += ev.objective()
		step++
	})
	if step >= len(chain) {
		t.Fatalf("alloc run exhausted the %d-step chain", len(chain))
	}
	if allocs != 0 {
		t.Fatalf("evaluator steady state allocates %.1f objects per candidate, want 0", allocs)
	}
	_ = sink
}

// responseFuncs tabulates the test input's response functions the way
// planTwoPhase does.
func responseFuncs(t *testing.T, in Input) []model.ResponseFunc {
	t.Helper()
	alpha := in.Alpha
	if alpha < 0 {
		alpha = in.Cluster.DefaultAlpha()
	}
	resp := make([]model.ResponseFunc, len(in.Jobs))
	for i, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		resp[i] = in.Cluster.Response(j, alpha)
	}
	return resp
}
