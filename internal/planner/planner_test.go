package planner

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"corral/internal/job"
	"corral/internal/model"
)

const gbps = 1e9 / 8

func testClusterModel() model.Cluster {
	return model.Cluster{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  1,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

func mkJob(id int, gbIn, gbShuffle, gbOut float64, maps, reduces int) *job.Job {
	return job.MapReduce(id, "j", job.Profile{
		InputBytes:   gbIn * 1e9,
		ShuffleBytes: gbShuffle * 1e9,
		OutputBytes:  gbOut * 1e9,
		MapTasks:     maps,
		ReduceTasks:  reduces,
		MapRate:      1e9,
		ReduceRate:   1e9,
	})
}

func randomJobs(rng *rand.Rand, n int) []*job.Job {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = mkJob(i+1,
			float64(rng.Intn(500)+1),
			float64(rng.Intn(500)),
			float64(rng.Intn(100)+1),
			rng.Intn(300)+1,
			rng.Intn(100)+1)
		jobs[i].Arrival = rng.Float64() * 3600
	}
	return jobs
}

func TestEmptyPlan(t *testing.T) {
	p, err := New(Input{Cluster: testClusterModel()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 0 || p.Makespan != 0 {
		t.Fatalf("empty plan = %+v", p)
	}
}

func TestInvalidJobRejected(t *testing.T) {
	j := mkJob(1, 10, 10, 10, 10, 10)
	j.Stages[0].Profile.MapTasks = 0
	if _, err := New(Input{Cluster: testClusterModel(), Jobs: []*job.Job{j}}); err == nil {
		t.Fatal("invalid job not rejected")
	}
}

func TestZeroRacksRejected(t *testing.T) {
	c := testClusterModel()
	c.Racks = 0
	if _, err := New(Input{Cluster: c}); err == nil {
		t.Fatal("zero-rack cluster not rejected")
	}
}

// checkPlanInvariants verifies structural properties every plan must have.
func checkPlanInvariants(t *testing.T, in Input, p *Plan) {
	t.Helper()
	R := in.Cluster.Racks
	if len(p.Assignments) != len(in.Jobs) {
		t.Fatalf("plan covers %d jobs, want %d", len(p.Assignments), len(in.Jobs))
	}
	prios := map[int]bool{}
	maxEnd := 0.0
	for _, j := range in.Jobs {
		a := p.Assignments[j.ID]
		if a == nil {
			t.Fatalf("job %d missing from plan", j.ID)
		}
		if len(a.Racks) < 1 || len(a.Racks) > R {
			t.Fatalf("job %d assigned %d racks", j.ID, len(a.Racks))
		}
		if !sort.IntsAreSorted(a.Racks) {
			t.Fatalf("job %d racks not sorted: %v", j.ID, a.Racks)
		}
		seen := map[int]bool{}
		for _, r := range a.Racks {
			if r < 0 || r >= R || seen[r] {
				t.Fatalf("job %d bad rack set %v", j.ID, a.Racks)
			}
			seen[r] = true
		}
		if in.Objective == MinimizeAvgCompletion && a.Start < j.Arrival-1e-9 {
			t.Fatalf("job %d starts %g before arrival %g", j.ID, a.Start, j.Arrival)
		}
		if a.EstLatency <= 0 {
			t.Fatalf("job %d est latency %g", j.ID, a.EstLatency)
		}
		if prios[a.Priority] {
			t.Fatalf("duplicate priority %d", a.Priority)
		}
		prios[a.Priority] = true
		if a.End() > maxEnd {
			maxEnd = a.End()
		}
	}
	if math.Abs(maxEnd-p.Makespan) > 1e-6*math.Max(1, p.Makespan) {
		t.Fatalf("makespan %g != max end %g", p.Makespan, maxEnd)
	}
}

func TestBatchPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 40), Alpha: -1}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, in, p)
}

func TestOnlinePlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := Input{
		Cluster:   testClusterModel(),
		Jobs:      randomJobs(rng, 40),
		Alpha:     -1,
		Objective: MinimizeAvgCompletion,
	}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, in, p)
	if p.AvgCompletion <= 0 {
		t.Fatalf("avg completion = %g", p.AvgCompletion)
	}
}

func TestTwoEqualJobsGetSeparateRacks(t *testing.T) {
	// Two identical one-rack-friendly jobs on a 2-rack cluster must be
	// spatially isolated: that is the core Corral behavior.
	c := testClusterModel()
	c.Racks = 2
	jobs := []*job.Job{
		mkJob(1, 50, 100, 10, 30, 30),
		mkJob(2, 50, 100, 10, 30, 30),
	}
	p, err := New(Input{Cluster: c, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := p.Assignments[1], p.Assignments[2]
	if len(a1.Racks) != 1 || len(a2.Racks) != 1 {
		t.Fatalf("rack counts = %d,%d, want 1,1", len(a1.Racks), len(a2.Racks))
	}
	if a1.Racks[0] == a2.Racks[0] {
		t.Fatal("equal jobs packed onto the same rack instead of isolated")
	}
	if a1.Start != 0 || a2.Start != 0 {
		t.Fatalf("starts = %g,%g, want both 0 (parallel)", a1.Start, a2.Start)
	}
}

func TestProvisioningWidensLongJob(t *testing.T) {
	// One huge job and several tiny ones: the huge job should receive
	// multiple racks.
	c := testClusterModel()
	jobs := []*job.Job{mkJob(1, 5000, 5000, 500, 2000, 2000)}
	for i := 2; i <= 6; i++ {
		jobs = append(jobs, mkJob(i, 1, 1, 1, 10, 5))
	}
	p, err := New(Input{Cluster: c, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Assignments[1].Racks); got < 2 {
		t.Fatalf("huge job allocated %d racks, want >= 2", got)
	}
}

func TestBatchPrioritiesFollowStartOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 25)}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	byPrio := make([]*Assignment, len(in.Jobs))
	for _, a := range p.Assignments {
		byPrio[a.Priority] = a
	}
	for i := 1; i < len(byPrio); i++ {
		if byPrio[i].Start < byPrio[i-1].Start-1e-9 {
			t.Fatalf("priority %d starts at %g before priority %d at %g",
				i, byPrio[i].Start, i-1, byPrio[i-1].Start)
		}
	}
}

func TestOnlineRespectsArrivals(t *testing.T) {
	c := testClusterModel()
	j1 := mkJob(1, 10, 10, 5, 10, 5)
	j2 := mkJob(2, 10, 10, 5, 10, 5)
	j2.Arrival = 10000
	p, err := New(Input{Cluster: c, Jobs: []*job.Job{j1, j2}, Objective: MinimizeAvgCompletion})
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignments[2].Start < 10000 {
		t.Fatalf("late job starts at %g, before its arrival", p.Assignments[2].Start)
	}
	if p.Assignments[1].Priority > p.Assignments[2].Priority {
		t.Fatal("earlier arrival got lower priority")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Plan {
		rng := rand.New(rand.NewSource(9))
		p, err := New(Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 30), Alpha: -1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := run(), run()
	if p1.Makespan != p2.Makespan {
		t.Fatalf("makespan differs across runs: %g vs %g", p1.Makespan, p2.Makespan)
	}
	for id, a1 := range p1.Assignments {
		a2 := p2.Assignments[id]
		if a1.Start != a2.Start || a1.Priority != a2.Priority || len(a1.Racks) != len(a2.Racks) {
			t.Fatalf("job %d assignment differs: %+v vs %+v", id, a1, a2)
		}
	}
}

// naivePrioritize is a direct transcription of Fig 4 used as a reference
// implementation to validate the O(R)-merge optimized scheduler.
func naivePrioritize(in Input, resp []model.ResponseFunc, rj []int) (makespan, avg float64) {
	J := len(in.Jobs)
	order := make([]int, J)
	for i := range order {
		order[i] = i
	}
	batchLess := func(a, b int) bool {
		if rj[a] != rj[b] {
			return rj[a] > rj[b]
		}
		la, lb := resp[a].At(rj[a]), resp[b].At(rj[b])
		if la != lb {
			return la > lb
		}
		return in.Jobs[a].ID < in.Jobs[b].ID
	}
	if in.Objective == MinimizeAvgCompletion {
		sort.SliceStable(order, func(x, y int) bool {
			a, b := order[x], order[y]
			if in.Jobs[a].Arrival != in.Jobs[b].Arrival {
				return in.Jobs[a].Arrival < in.Jobs[b].Arrival
			}
			return batchLess(a, b)
		})
	} else {
		sort.SliceStable(order, func(x, y int) bool { return batchLess(order[x], order[y]) })
	}
	F := make([]float64, in.Cluster.Racks)
	sum := 0.0
	for _, idx := range order {
		// Select rj[idx] racks with smallest (F, id).
		ids := make([]int, len(F))
		for i := range ids {
			ids[i] = i
		}
		sort.SliceStable(ids, func(a, b int) bool {
			if F[ids[a]] != F[ids[b]] {
				return F[ids[a]] < F[ids[b]]
			}
			return ids[a] < ids[b]
		})
		sel := ids[:rj[idx]]
		start := 0.0
		for _, r := range sel {
			if F[r] > start {
				start = F[r]
			}
		}
		arr := in.Jobs[idx].Arrival
		if in.Objective == MinimizeMakespan {
			arr = 0
		}
		if arr > start {
			start = arr
		}
		finish := start + resp[idx].At(rj[idx])
		for _, r := range sel {
			F[r] = finish
		}
		if finish > makespan {
			makespan = finish
		}
		sum += finish - arr
	}
	return makespan, sum / float64(J)
}

// Property: the optimized scheduler matches the naive Fig 4 transcription
// for random job sets, rack counts and both objectives.
func TestQuickOptimizedMatchesNaive(t *testing.T) {
	f := func(seed int64, nJobs uint8, online bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nJobs%30) + 1
		in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, n)}
		if online {
			in.Objective = MinimizeAvgCompletion
		}
		resp := make([]model.ResponseFunc, n)
		for i, j := range in.Jobs {
			resp[i] = in.Cluster.Response(j, in.Cluster.DefaultAlpha())
		}
		rj := make([]int, n)
		for i := range rj {
			rj[i] = rng.Intn(in.Cluster.Racks) + 1
		}
		s := newScheduler(in, resp)
		got := s.run(rj)
		wantMakespan, wantAvg := naivePrioritize(in, resp, rj)
		return math.Abs(got.makespan-wantMakespan) < 1e-6 &&
			math.Abs(got.avgCompletion-wantAvg) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: widening never runs a job on zero racks, and the chosen plan's
// objective is no worse than the all-ones starting allocation.
func TestQuickProvisioningNeverWorseThanOneRackEach(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nJobs%20) + 2
		in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, n), Alpha: -1}
		p, err := New(in)
		if err != nil {
			return false
		}
		resp := make([]model.ResponseFunc, n)
		for i, j := range in.Jobs {
			resp[i] = in.Cluster.Response(j, in.Cluster.DefaultAlpha())
		}
		ones := make([]int, n)
		for i := range ones {
			ones[i] = 1
		}
		s := newScheduler(in, resp)
		base := s.run(ones)
		return p.Makespan <= base.makespan+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDAGJobsPlan(t *testing.T) {
	// TPC-H-like DAG jobs flow through the planner like MapReduce jobs.
	p := validProfileForDAG()
	dag := &job.Job{ID: 1, Name: "q", Recurring: true, Stages: []job.Stage{
		{Name: "scan1", Profile: p},
		{Name: "scan2", Profile: p},
		{Name: "join", Profile: p, Upstream: []int{0, 1}},
		{Name: "agg", Profile: p, Upstream: []int{2}},
	}}
	plan, err := New(Input{Cluster: testClusterModel(), Jobs: []*job.Job{dag}, Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	a := plan.Assignments[1]
	if len(a.Racks) < 1 {
		t.Fatal("DAG job got no racks")
	}
	if a.EstLatency <= 0 {
		t.Fatal("DAG job got no latency estimate")
	}
}

func validProfileForDAG() job.Profile {
	return job.Profile{
		InputBytes: 5e9, ShuffleBytes: 1e9, OutputBytes: 5e8,
		MapTasks: 20, ReduceTasks: 5, MapRate: 1e8, ReduceRate: 1e8,
	}
}

func TestGiantJobsGetWideAllocations(t *testing.T) {
	// A W2-style giant among tiny jobs should receive (nearly) the whole
	// cluster while tiny jobs are packed.
	c := testClusterModel()
	jobs := []*job.Job{mkJob(1, 5500, 9900, 1100, 2000, 1000)}
	for i := 2; i <= 40; i++ {
		jobs = append(jobs, mkJob(i, 0.2, 0.075, 0.05, 1, 1))
	}
	plan, err := New(Input{Cluster: c, Jobs: jobs, Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	giant := plan.Assignments[1]
	if len(giant.Racks) < 3 {
		t.Fatalf("giant allocated %d racks, want >= 3 (paper gives W2 giants 3 of 7)", len(giant.Racks))
	}
	for i := 2; i <= 40; i++ {
		if len(plan.Assignments[i].Racks) != 1 {
			t.Fatalf("tiny job %d spread over %d racks", i, len(plan.Assignments[i].Racks))
		}
	}
}

func TestPlanEstimatesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := Input{Cluster: testClusterModel(), Jobs: randomJobs(rng, 20), Alpha: -1}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	// AvgCompletion (batch: measured from 0) must be <= makespan and > 0.
	if p.AvgCompletion <= 0 || p.AvgCompletion > p.Makespan {
		t.Fatalf("avg completion %g vs makespan %g", p.AvgCompletion, p.Makespan)
	}
	if p.ObjectiveValue() != p.Makespan {
		t.Fatal("batch objective should be makespan")
	}
}
