package planner

import (
	"testing"
)

func TestCostModelShape(t *testing.T) {
	if c := CostFull(0, 7, 0); c != 0 {
		t.Fatalf("CostFull with no jobs = %g, want 0", c)
	}
	if c := CostIncremental(0, 7, 0); c != 0 {
		t.Fatalf("CostIncremental with no jobs = %g, want 0", c)
	}
	// Incremental must be strictly cheaper than full for any non-trivial
	// problem: it runs one prioritization pass instead of J·(R−1)+1.
	for _, tc := range []struct{ j, r, s int }{
		{1, 1, 2}, {1, 7, 2}, {10, 7, 20}, {45, 7, 90}, {200, 20, 400},
	} {
		full, inc := CostFull(tc.j, tc.r, tc.s), CostIncremental(tc.j, tc.r, tc.s)
		if full <= 0 || inc <= 0 {
			t.Fatalf("J=%d R=%d S=%d: non-positive cost full=%g inc=%g", tc.j, tc.r, tc.s, full, inc)
		}
		if inc >= full {
			t.Fatalf("J=%d R=%d S=%d: incremental %g not cheaper than full %g", tc.j, tc.r, tc.s, inc, full)
		}
	}
	// Cost grows monotonically in every driver.
	if CostFull(20, 7, 40) <= CostFull(10, 7, 20) {
		t.Fatal("CostFull not monotone in job count")
	}
	if CostFull(10, 14, 20) <= CostFull(10, 7, 20) {
		t.Fatal("CostFull not monotone in rack count")
	}
	if CostFull(10, 7, 40) <= CostFull(10, 7, 20) {
		t.Fatal("CostFull not monotone in stage count")
	}
}

func TestReplanIncrementalKeepsWidths(t *testing.T) {
	c := testClusterModel()
	jobs := jobsOf(
		mkJob(1, 200, 300, 50, 100, 40),
		mkJob(2, 50, 80, 10, 30, 10),
		mkJob(3, 10, 5, 2, 8, 4),
	)
	widths := map[int]int{1: 3, 2: 2, 3: 1}
	p, err := ReplanIncremental(Input{Cluster: c, Jobs: jobs}, 25, nil, widths)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 3 {
		t.Fatalf("got %d assignments, want 3", len(p.Assignments))
	}
	for id, want := range widths {
		if got := len(p.Assignments[id].Racks); got != want {
			t.Errorf("job %d: %d racks, want width %d preserved", id, got, want)
		}
		if p.Assignments[id].Start < 25 {
			t.Errorf("job %d starts at %g, before now=25", id, p.Assignments[id].Start)
		}
	}
}

func TestReplanIncrementalClampsWidths(t *testing.T) {
	c := testClusterModel() // 7 racks
	jobs := jobsOf(mkJob(1, 50, 100, 10, 30, 30), mkJob(2, 50, 100, 10, 30, 30))
	// Job 1 asks for more racks than exist; job 2 has no width entry.
	p, err := ReplanIncremental(Input{Cluster: c, Jobs: jobs}, 0, nil, map[int]int{1: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Assignments[1].Racks); got != c.Racks {
		t.Fatalf("overwide job clamped to %d racks, want %d", got, c.Racks)
	}
	if got := len(p.Assignments[2].Racks); got != 1 {
		t.Fatalf("width-less job got %d racks, want default 1", got)
	}
}

func TestReplanIncrementalHonorsCommitments(t *testing.T) {
	c := testClusterModel()
	c.Racks = 2
	j := mkJob(1, 50, 100, 10, 30, 30)
	p, err := ReplanIncremental(Input{Cluster: c, Jobs: jobsOf(j)}, 50,
		[]Commitment{{Racks: []int{0}, Until: 1000}}, map[int]int{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assignments[1]
	if len(a.Racks) == 1 && a.Racks[0] == 1 {
		if a.Start < 50 {
			t.Fatalf("start %g before now", a.Start)
		}
	} else if a.Start < 1000 {
		t.Fatalf("job on committed rack starts at %g, want >= 1000", a.Start)
	}
}

func TestReplanIncrementalMatchesFullAtFixedWidths(t *testing.T) {
	// With widths equal to the full replan's chosen provisioning, a single
	// prioritization pass reproduces the same schedule.
	c := testClusterModel()
	jobs := jobsOf(
		mkJob(1, 200, 300, 50, 100, 40),
		mkJob(2, 50, 80, 10, 30, 10),
	)
	full, err := Replan(Input{Cluster: c, Jobs: jobs}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	widths := make(map[int]int, len(full.Assignments))
	for id, a := range full.Assignments {
		widths[id] = len(a.Racks)
	}
	inc, err := ReplanIncremental(Input{Cluster: c, Jobs: jobs}, 10, nil, widths)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Makespan != full.Makespan {
		t.Fatalf("incremental makespan %g != full %g at identical widths", inc.Makespan, full.Makespan)
	}
}
