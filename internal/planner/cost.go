package planner

// Deterministic planner-cost model for "plan when you can": how long a
// planning decision takes in *simulated* seconds, as a pure function of
// the problem shape. The runtime charges this latency before a replan's
// assignments take effect, and compares it against Options.PlannerBudget
// to pick a fallback tier. No wall clock is involved anywhere (the
// corralvet wallclock check applies to this package too): the model is a
// calibrated stand-in for the measured planner runtimes of the paper's
// §5.1 scaling discussion, chosen so cost ratios track the algorithmic
// work actually performed.
//
// Work accounting:
//
//   - A full (re)plan's provisioning phase explores the widening chain of
//     J·(R−1)+1 allocations, and each prioritization pass costs
//     O(J log J + J·R) — approximated here as (J+R) units per pass.
//   - An incremental replan keeps every job's provisioned width and runs
//     a single prioritization pass over the commitments.
//   - Both pay a per-stage term for re-estimating response functions.

const (
	// costBase is the fixed overhead of invoking the planner at all
	// (snapshotting cluster state, building commitments).
	costBase = 0.05
	// costEval is the charge per (job+rack) unit of prioritization work.
	costEval = 1e-4
	// costStage is the charge per job stage for latency re-estimation.
	costStage = 1e-3
)

// CostFull returns the simulated latency of a full two-phase plan over
// jobs jobs on racks racks with stages total stages.
func CostFull(jobs, racks, stages int) float64 {
	if jobs <= 0 {
		return 0
	}
	if racks < 1 {
		racks = 1
	}
	passes := jobs*(racks-1) + 1
	return costBase + costEval*float64(passes)*float64(jobs+racks) + costStage*float64(stages)
}

// CostIncremental returns the simulated latency of a commitments-only
// incremental replan (fixed widths, single prioritization pass).
func CostIncremental(jobs, racks, stages int) float64 {
	if jobs <= 0 {
		return 0
	}
	if racks < 1 {
		racks = 1
	}
	return costBase/5 + costEval*float64(jobs+racks) + costStage*float64(stages)
}
