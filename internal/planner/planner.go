// Package planner implements Corral's offline planning algorithm (§4):
// given predicted characteristics of future jobs, decide for every job j
// the number of racks r_j, the concrete rack set R_j, a start time T_j and
// a priority p_j, so as to minimize makespan (batch scenario) or average
// completion time (online scenario).
//
// The algorithm decomposes into two phases (§4.2):
//
//   - Provisioning: start every job at one rack; repeatedly widen the job
//     with the longest estimated latency by one rack until every job spans
//     the whole cluster. Each of the J·R intermediate allocations is
//     evaluated with the prioritization phase, and the best one wins.
//     At datacenter scale this phase dominates planning wall-clock, so it
//     has a fast engine (provision.go: precomputed widening chain,
//     parallel candidate evaluation, group-compressed objective) that is
//     bit-identical to the straightforward serial loop kept as the
//     differential reference behind Input.Serial.
//
//   - Prioritization (Fig 4): an extension of LPT/LIST scheduling. Jobs
//     are sorted (batch: widest first, then longest; online: by arrival,
//     ties broken as in batch) and greedily assigned the r_j racks that
//     free up earliest.
//
// Latency estimates come from the response functions of internal/model,
// optionally with the §4.5 data-imbalance penalty.
//
// Determinism obligations: a plan is a pure function of the jobs and
// cluster — sorts are total orders with id tie-breaks, and no randomness,
// wall-clock time, worker count or map-iteration order feeds the result.
package planner

import (
	"fmt"
	"slices"
	"sort"

	"corral/internal/job"
	"corral/internal/model"
	"corral/internal/trace"
)

// Objective selects what the planner minimizes.
type Objective int

const (
	// MinimizeMakespan is the batch scenario: all jobs arrive at time 0 and
	// the last completion time matters.
	MinimizeMakespan Objective = iota
	// MinimizeAvgCompletion is the online scenario: jobs arrive over time
	// and the mean of (completion − arrival) matters.
	MinimizeAvgCompletion
)

func (o Objective) String() string {
	if o == MinimizeMakespan {
		return "makespan"
	}
	return "avg-completion"
}

// Input configures one planning run.
type Input struct {
	Cluster model.Cluster
	Jobs    []*job.Job
	// Alpha is the data-imbalance tradeoff coefficient (§4.5). Negative
	// selects the paper's default (inverse rack-to-core bandwidth); zero
	// disables the penalty.
	Alpha     float64
	Objective Objective
	// Serial selects the legacy serial provisioning engine (one full
	// prioritization run per candidate allocation). It exists as the
	// differential-test reference for the fast path and produces
	// bit-identical plans; leave it false outside tests.
	Serial bool
	// Trace, if set, receives plan_start/plan_assign/plan_done events for
	// this invocation. When nil, New and Replan ask the process-wide trace
	// collector for a run tracer (nil again keeps tracing disabled).
	// TraceTime stamps the events: 0 for offline planning, the current
	// simulated time for failure-triggered replans.
	Trace     *trace.Tracer
	TraceTime float64
}

// tracer resolves the invocation's tracer: the explicit Input.Trace, else
// a collector-registered run, else nil (disabled).
func (in *Input) tracer() *trace.Tracer {
	if in.Trace != nil {
		return in.Trace
	}
	return trace.NewRun(fmt.Sprintf("plan/%s/jobs%d", in.Objective, len(in.Jobs)))
}

// traceAssignments reports a materialized schedule to tr in job-ID order.
func traceAssignments(tr *trace.Tracer, now float64, plan *Plan) {
	if !tr.Enabled() {
		return
	}
	ids := make([]int, 0, len(plan.Assignments))
	for id := range plan.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := plan.Assignments[id]
		tr.PlanAssign(now, a.JobID, a.Priority, a.Start, a.Racks)
	}
	tr.PlanDone(now, plan.ObjectiveValue())
}

// Assignment is the planner's output for one job: the tuple {R_j, p_j}
// plus the planned start time and the latency estimate behind it.
type Assignment struct {
	JobID      int
	Racks      []int   // R_j, sorted ascending
	Start      float64 // T_j
	Priority   int     // p_j: 0 is highest; follows planned start order
	EstLatency float64 // L'_j(r_j) used for the schedule
}

// End returns the planned completion time.
func (a *Assignment) End() float64 { return a.Start + a.EstLatency }

// Plan is a complete offline schedule.
type Plan struct {
	Assignments map[int]*Assignment // keyed by job ID
	// Makespan and AvgCompletion are the *estimated* metrics of the chosen
	// schedule under the response-function latencies.
	Makespan      float64
	AvgCompletion float64
	Objective     Objective
}

// ObjectiveValue returns the metric the plan was optimized for.
func (p *Plan) ObjectiveValue() float64 {
	if p.Objective == MinimizeMakespan {
		return p.Makespan
	}
	return p.AvgCompletion
}

// New runs the full two-phase planning algorithm.
func New(in Input) (*Plan, error) {
	if in.Cluster.Racks <= 0 {
		return nil, fmt.Errorf("planner: cluster has %d racks", in.Cluster.Racks)
	}
	return planTwoPhase(in, in.TraceTime, nil)
}

// planTwoPhase is the shared core behind New, Replan and the public
// wrappers: validate, provision (fast or serial per Input.Serial), run the
// final prioritization, materialize. initF seeds per-rack availability
// times (Replan commitments); nil means every rack free at time zero. now
// stamps trace events.
func planTwoPhase(in Input, now float64, initF []float64) (*Plan, error) {
	J := len(in.Jobs)
	plan := &Plan{Assignments: make(map[int]*Assignment, J), Objective: in.Objective}
	if J == 0 {
		return plan, nil
	}
	// Validate every job before emitting plan_start so a rejected input
	// cannot leave an unbalanced trace (plan_start with no plan_done).
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	tr := in.tracer()
	tr.PlanStart(now, J, in.Objective.String())
	alpha := in.Alpha
	if alpha < 0 {
		alpha = in.Cluster.DefaultAlpha()
	}

	// Precompute response functions.
	resp := make([]model.ResponseFunc, J)
	for i, j := range in.Jobs {
		resp[i] = in.Cluster.Response(j, alpha)
	}

	// Provisioning phase: explore the J·(R−1)+1 allocation prefix chain.
	bestRj := provision(in, resp, initF)

	// Materialize the winning schedule with one final prioritization run.
	sched := newScheduler(in, resp)
	sched.initF = initF
	final := sched.run(bestRj)
	for rank, idx := range final.order {
		j := in.Jobs[idx]
		plan.Assignments[j.ID] = &Assignment{
			JobID:      j.ID,
			Racks:      append([]int(nil), final.racks[idx]...),
			Start:      final.start[idx],
			Priority:   rank,
			EstLatency: resp[idx].At(bestRj[idx]),
		}
	}
	plan.Makespan = final.makespan
	plan.AvgCompletion = final.avgCompletion
	traceAssignments(tr, now, plan)
	return plan, nil
}

// schedResult captures one prioritization run.
type schedResult struct {
	order         []int // job indices in scheduling order
	racks         [][]int
	start         []float64
	makespan      float64
	avgCompletion float64
}

func (r *schedResult) objective(o Objective) float64 {
	if o == MinimizeMakespan {
		return r.makespan
	}
	return r.avgCompletion
}

// scheduler holds reusable buffers for repeated prioritization runs. The
// serial provisioning engine calls run once per candidate; the fast path
// only uses it for the single materializing run (candidate objectives go
// through the group-compressed evaluator in provision.go instead).
type scheduler struct {
	in   Input
	resp []model.ResponseFunc

	order []int
	// initF seeds per-rack availability times (used by Replan to honor
	// commitments); nil means all racks free at time zero.
	initF []float64
	// rackF is kept sorted ascending by (F, rackID) so the r_j earliest
	// racks are always a prefix: the Fig 4 selection in O(R) per job.
	rackF  []rackState
	buf    []rackState
	merged []rackState
	result schedResult
}

type rackState struct {
	f  float64
	id int
}

func newScheduler(in Input, resp []model.ResponseFunc) *scheduler {
	J, R := len(in.Jobs), in.Cluster.Racks
	s := &scheduler{
		in:     in,
		resp:   resp,
		order:  make([]int, J),
		rackF:  make([]rackState, R),
		buf:    make([]rackState, R),
		merged: make([]rackState, 0, R),
	}
	s.result.order = make([]int, J)
	s.result.racks = make([][]int, J)
	s.result.start = make([]float64, J)
	return s
}

// run executes the Fig 4 prioritization for the given per-job rack counts
// and returns the resulting schedule. The returned result's slices are
// reused across calls; callers must copy what they keep.
func (s *scheduler) run(rj []int) *schedResult {
	in := s.in
	J := len(in.Jobs)
	online := in.Objective == MinimizeAvgCompletion

	// Sort and re-index jobs per scenario; jobLess (provision.go) is the
	// single prioritization order shared with the fast-path evaluator.
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(x, y int) bool {
		return jobLess(online, in.Jobs, s.resp, rj, s.order[x], s.order[y])
	})

	for i := range s.rackF {
		f := 0.0
		if s.initF != nil {
			f = s.initF[i]
		}
		s.rackF[i] = rackState{f: f, id: i}
	}
	if s.initF != nil {
		// (f, id) with unique ids is a strict total order: the generic sort
		// yields the same permutation sort.Slice did, without reflection.
		slices.SortFunc(s.rackF, func(x, y rackState) int {
			//corralvet:ok floateq exact identity intended: equal-F racks order by id; any F difference, however small, orders by F
			if x.f != y.f {
				if x.f < y.f {
					return -1
				}
				return 1
			}
			return x.id - y.id
		})
	}

	res := &s.result
	copy(res.order, s.order)
	makespan := 0.0
	sumCompletion := 0.0

	for _, idx := range s.order {
		k := rj[idx]
		lat := s.resp[idx].At(k)
		arr := in.Jobs[idx].Arrival
		if in.Objective == MinimizeMakespan {
			arr = 0
		}
		// R_j := the k racks that free earliest (prefix of sorted rackF).
		start := s.rackF[k-1].f
		if arr > start {
			start = arr
		}
		finish := start + lat

		racks := res.racks[idx]
		racks = racks[:0]
		for i := 0; i < k; i++ {
			racks = append(racks, s.rackF[i].id)
		}
		sort.Ints(racks)
		res.racks[idx] = racks
		res.start[idx] = start

		if finish > makespan {
			makespan = finish
		}
		sumCompletion += finish - arr

		s.rebuildRackF(k, finish)
	}

	res.makespan = makespan
	res.avgCompletion = sumCompletion / float64(J)
	return res
}

// rebuildRackF removes the first k entries (just assigned) and re-inserts
// them with F = finish, preserving (F, id) order in O(R).
func (s *scheduler) rebuildRackF(k int, finish float64) {
	R := len(s.rackF)
	// Collect the k reassigned racks, keeping id order (they share F).
	// ids are unique, so the comparator is a strict total order and the
	// reflection-free generic sort produces the identical permutation the
	// old sort.Slice did — this was the planner's hottest line at
	// datacenter scale until the fast-path evaluator (provision.go) took
	// candidate evaluation off this code path.
	reassigned := s.buf[:0]
	for i := 0; i < k; i++ {
		reassigned = append(reassigned, rackState{f: finish, id: s.rackF[i].id})
	}
	slices.SortFunc(reassigned, func(a, b rackState) int { return a.id - b.id })
	// Merge the untouched suffix with the reassigned entries.
	merged := s.merged[:0]
	i, j := k, 0
	for i < R && j < len(reassigned) {
		a, b := s.rackF[i], reassigned[j]
		//corralvet:ok floateq exact identity intended: the reassigned entries carry bit-identical finish values by construction, ties break by id
		if a.f < b.f || (a.f == b.f && a.id < b.id) {
			merged = append(merged, a)
			i++
		} else {
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, s.rackF[i:]...)
	merged = append(merged, reassigned[j:]...)
	copy(s.rackF, merged)
}
