package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptySimulator(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("new simulator clock = %v, want 0", s.Now())
	}
	if s.Step() {
		t.Fatal("Step on empty simulator returned true")
	}
	if got := s.NextEventTime(); got != Inf {
		t.Fatalf("NextEventTime = %v, want Inf", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { order = append(order, at) })
	}
	s.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.At(10, func() {
		if s.Now() != 10 {
			t.Errorf("clock inside event = %v, want 10", s.Now())
		}
	})
	s.Run()
	if s.Now() != 10 {
		t.Fatalf("clock after run = %v, want 10", s.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(5, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 8 {
		t.Fatalf("After(3) from t=5 fired at %v, want 8", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Canceling twice is a no-op.
	e.Cancel()
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	fired := false
	var later *Event
	s.At(1, func() { later.Cancel() })
	later = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event canceled by an earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("RunUntil(2) fired %v, want [1 2]", fired)
	}
	if s.Now() != 2 {
		t.Fatalf("clock = %v, want 2", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("RunUntil(10) total fired = %d, want 4", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("clock advanced to %v, want deadline 10", s.Now())
	}
}

func TestNextEventTimeSkipsCanceled(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.At(2, func() {})
	e.Cancel()
	if got := s.NextEventTime(); got != 2 {
		t.Fatalf("NextEventTime = %v, want 2", got)
	}
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
}

// Property: for any batch of event times, events fire in nondecreasing time
// order and all of them fire.
func TestQuickOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%64) + 1
		times := make([]Time, count)
		var fired []Time
		for i := range times {
			times[i] = Time(rng.Float64() * 1000)
			at := times[i]
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != count {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		sorted := append([]Time(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling during execution preserves causality —
// an event can only schedule at or after its own time, and the clock never
// moves backwards.
func TestQuickCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		last := Time(-1)
		ok := true
		var spawn func()
		remaining := 100
		spawn = func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if remaining <= 0 {
				return
			}
			remaining--
			s.After(Time(rng.Float64()), spawn)
		}
		s.At(0, spawn)
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
