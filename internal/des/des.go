// Package des implements a minimal deterministic discrete-event simulation
// core: a virtual clock and a time-ordered event queue.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO), which keeps simulations deterministic regardless of map
// iteration order elsewhere in the program.
//
// Determinism obligations: a run is a pure function of the sequence of
// Schedule calls — no wall-clock time, no randomness, no map iteration.
// Callers inherit the obligation to schedule events in a deterministic
// order.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is simulation time in seconds.
type Time float64

// Inf is a time later than any event the simulator will ever fire.
const Inf Time = Time(math.MaxFloat64)

// Event is a scheduled callback.
type Event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far; useful for
// instrumentation and runaway detection in tests.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// events that have not been popped yet).
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it always indicates a modelling bug, and silently clamping
// would hide it.
func (s *Simulator) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= deadline, then sets the clock to
// deadline. Events scheduled exactly at deadline do fire.
func (s *Simulator) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		// Peek.
		next := s.events[0]
		if next.canceled {
			heap.Pop(&s.events)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// NextEventTime returns the time of the earliest non-canceled pending event,
// or Inf if none.
func (s *Simulator) NextEventTime() Time {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.canceled {
			heap.Pop(&s.events)
			continue
		}
		return next.at
	}
	return Inf
}

// Seq returns the total number of events ever scheduled — the next event's
// FIFO tie-break sequence number.
func (s *Simulator) Seq() uint64 { return s.seq }

// EventInfo is a snapshot-friendly view of one pending event: its firing
// time and FIFO sequence number, but not its (unserializable) callback.
type EventInfo struct {
	At       Time
	Seq      uint64
	Canceled bool
}

// PendingEvents returns every queued event — including canceled entries
// that have not been popped yet — sorted by (At, Seq). Unlike NextEventTime
// it never mutates the heap, so it is safe to call between Steps of a run
// that will continue.
func (s *Simulator) PendingEvents() []EventInfo {
	out := make([]EventInfo, len(s.events))
	for i, e := range s.events {
		out[i] = EventInfo{At: e.at, Seq: e.seq, Canceled: e.canceled}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At < out[j].At {
			return true
		}
		if out[j].At < out[i].At {
			return false
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
