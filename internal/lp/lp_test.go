package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"corral/internal/job"
	"corral/internal/model"
	"corral/internal/planner"
)

const gbps = 1e9 / 8

func testClusterModel() model.Cluster {
	return model.Cluster{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  1,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

func mkJob(id int, gbIn, gbShuffle, gbOut float64, maps, reduces int) *job.Job {
	return job.MapReduce(id, "j", job.Profile{
		InputBytes:   gbIn * 1e9,
		ShuffleBytes: gbShuffle * 1e9,
		OutputBytes:  gbOut * 1e9,
		MapTasks:     maps,
		ReduceTasks:  reduces,
		MapRate:      1e9,
		ReduceRate:   1e9,
	})
}

func randomJobs(rng *rand.Rand, n int) []*job.Job {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = mkJob(i+1,
			float64(rng.Intn(500)+1),
			float64(rng.Intn(500)),
			float64(rng.Intn(100)+1),
			rng.Intn(300)+1,
			rng.Intn(100)+1)
		jobs[i].Arrival = rng.Float64() * 3600
	}
	return jobs
}

func TestEmpty(t *testing.T) {
	c := testClusterModel()
	if got := BatchLowerBound(c, nil, 0); got != 0 {
		t.Fatalf("empty batch bound = %g", got)
	}
	if got := OnlineLowerBound(c, nil, 0); got != 0 {
		t.Fatalf("empty online bound = %g", got)
	}
}

func TestSingleJobSingleRackCluster(t *testing.T) {
	c := testClusterModel()
	c.Racks = 1
	j := mkJob(1, 100, 100, 10, 30, 30)
	want := c.Response(j, 0).At(1)
	got := BatchLowerBound(c, []*job.Job{j}, 0)
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("single-rack bound = %g, want L(1) = %g", got, want)
	}
}

func TestTwoIdenticalJobsTwoRacks(t *testing.T) {
	// With the r=2 latency bump (shuffle core term), each job alone on its
	// rack is optimal: LP bound should be exactly L(1).
	c := testClusterModel()
	c.Racks = 2
	j1 := mkJob(1, 50, 100, 10, 30, 30)
	j2 := mkJob(2, 50, 100, 10, 30, 30)
	f := c.Response(j1, 0)
	if f.At(2) <= f.At(1) {
		t.Skip("profile does not exhibit the r=2 bump; test premise invalid")
	}
	got := BatchLowerBound(c, []*job.Job{j1, j2}, 0)
	want := f.At(1)
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("bound = %g, want %g", got, want)
	}
}

func TestBoundBelowHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := testClusterModel()
	jobs := randomJobs(rng, 50)
	p, err := planner.New(planner.Input{Cluster: c, Jobs: jobs, Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	lb := BatchLowerBound(c, jobs, -1)
	if lb > p.Makespan*(1+1e-9) {
		t.Fatalf("LP bound %g exceeds heuristic makespan %g", lb, p.Makespan)
	}
	if lb <= 0 {
		t.Fatalf("LP bound = %g, want positive", lb)
	}
	// §4.2 reports the heuristic within a few percent of the LP for their
	// workloads; for random workloads we only require a sane gap.
	if p.Makespan/lb > 3 {
		t.Fatalf("heuristic/LP gap = %g, implausibly large", p.Makespan/lb)
	}
}

func TestOnlineBoundBelowHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := testClusterModel()
	jobs := randomJobs(rng, 50)
	p, err := planner.New(planner.Input{
		Cluster: c, Jobs: jobs, Alpha: -1,
		Objective: planner.MinimizeAvgCompletion,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := OnlineLowerBound(c, jobs, -1)
	if lb > p.AvgCompletion*(1+1e-9) {
		t.Fatalf("online LP bound %g exceeds heuristic avg %g", lb, p.AvgCompletion)
	}
	if lb <= 0 {
		t.Fatal("online bound not positive")
	}
}

func TestMinWorkSingleAllocation(t *testing.T) {
	f := model.ResponseFunc{10, 6, 5} // L(1)=10 L(2)=6 L(3)=5
	// T=5: only r=3 feasible -> work 15.
	if got := minWork(f, 5); math.Abs(got-15) > 1e-9 {
		t.Fatalf("minWork(T=5) = %g, want 15", got)
	}
	// T=10: all feasible; min work = min(10,12,15)=10.
	if got := minWork(f, 10); math.Abs(got-10) > 1e-9 {
		t.Fatalf("minWork(T=10) = %g, want 10", got)
	}
	// T=4: infeasible.
	if got := minWork(f, 4); !math.IsInf(got, 1) {
		t.Fatalf("minWork(T=4) = %g, want +Inf", got)
	}
}

func TestMinWorkMixture(t *testing.T) {
	// L(1)=10 (work 10), L(2)=2 (work 4). At T=6, mixing x on r=2 and r=1:
	// x*2 + (1-x)*10 = 6 -> x = 0.5; work = 0.5*4 + 0.5*10 = 7.
	// Pure r=2 gives work 4 and is feasible, so best stays 4.
	f := model.ResponseFunc{10, 2}
	if got := minWork(f, 6); math.Abs(got-4) > 1e-9 {
		t.Fatalf("minWork = %g, want 4", got)
	}
	// Flip: L(1)=2 (work 2), L(2)=10 (work 20). T=6: pure r=1 work 2.
	f = model.ResponseFunc{2, 10}
	if got := minWork(f, 6); math.Abs(got-2) > 1e-9 {
		t.Fatalf("minWork = %g, want 2", got)
	}
}

func TestMinWorkMixtureBeatsPure(t *testing.T) {
	// Construct a case where mixing across T beats any pure allocation:
	// L(1)=8 work 8; L(2)=1 work 2. T=1.5: pure r=2 feasible, work 2.
	// Mixture can't beat 2 here. Try L(1)=1 work 1, L(2)=8 work 16,
	// T = 0.9: pure infeasible? L(1)=1 > 0.9 -> infeasible entirely.
	f := model.ResponseFunc{1, 8}
	if got := minWork(f, 0.9); !math.IsInf(got, 1) {
		t.Fatalf("minWork below min latency = %g, want +Inf", got)
	}
}

func TestFluidSRPT(t *testing.T) {
	// Two jobs arriving together on a rate-1 resource, works 1 and 2:
	// SRPT: short finishes at 1 (flow 1), long at 3 (flow 3). Sum = 4.
	items := []item{{arrival: 0, work: 1}, {arrival: 0, work: 2}}
	if got := fluidSRPT(items, 1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("fluidSRPT = %g, want 4", got)
	}
	// Preemption: long job arrives first, short preempts it.
	// t=0: long (work 10). t=1: short (work 1) preempts, done t=2 (flow 1).
	// Long done at t=11 (flow 11). Sum = 12.
	items = []item{{arrival: 0, work: 10}, {arrival: 1, work: 1}}
	if got := fluidSRPT(items, 1); math.Abs(got-12) > 1e-9 {
		t.Fatalf("fluidSRPT preemption = %g, want 12", got)
	}
	// Idle gap between arrivals.
	items = []item{{arrival: 0, work: 1}, {arrival: 100, work: 1}}
	if got := fluidSRPT(items, 1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("fluidSRPT with gap = %g, want 2", got)
	}
}

// Property: the batch bound is monotone — adding a job never lowers it —
// and always sits below the heuristic makespan.
func TestQuickBatchBoundProperties(t *testing.T) {
	c := testClusterModel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%15) + 2
		jobs := randomJobs(rng, count)
		all := BatchLowerBound(c, jobs, -1)
		fewer := BatchLowerBound(c, jobs[:count-1], -1)
		if fewer > all*(1+1e-9) {
			return false
		}
		p, err := planner.New(planner.Input{Cluster: c, Jobs: jobs, Alpha: -1})
		if err != nil {
			return false
		}
		return all <= p.Makespan*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
