// Package lp computes lower bounds on the offline planning problem,
// mirroring the paper's Appendix A. The bounds let us report the quality
// of the two-phase heuristics (§4.2: within 3% for batch, 15% for online).
//
// # Batch (LP-Batch)
//
//	min T   s.t.  Σ_r x_jr = 1            ∀j    (2)
//	              T ≥ Σ_r x_jr L_j(r)     ∀j    (3)
//	              T·R ≥ Σ_{j,r} x_jr L_j(r)·r   (4)
//	              x_jr ∈ [0,1]                  (5)
//
// Rather than calling an external solver, we exploit the LP's structure:
// for a fixed T the problem decomposes into J independent two-constraint
// LPs ("minimize the work W_j = Σ_r x_jr·L_j(r)·r subject to Σx = 1 and
// Σ x L ≤ T"), each of which attains its optimum on at most two racks
// counts. Feasibility of T is then Σ_j W_j^min(T) ≤ T·R, which is monotone
// in T, so the optimal T is found by bisection. This yields the exact
// LP optimum to the requested tolerance with no external dependencies.
//
// # Online
//
// The paper only sketches LP-Online. We report the maximum of two valid
// relaxations of the average completion time:
//
//  1. per-job floor: avg_j (L_j^min), since no schedule can finish job j
//     faster than its best response-function latency; and
//  2. fluid SRPT: relax the cluster to a single preemptible resource of
//     rate R rack-seconds/sec on which job j requires w_j = min_r L_j(r)·r
//     work. SRPT minimizes average completion in that relaxation, so its
//     average is a lower bound for any rack-granular schedule.
//
// Determinism obligations: both bounds are pure functions of the jobs and
// cluster — deterministic bisection to a fixed tolerance, no randomness,
// no map iteration.
package lp

import (
	"math"
	"sort"

	"corral/internal/job"
	"corral/internal/model"
)

// Tolerance is the relative bisection tolerance for BatchLowerBound.
const Tolerance = 1e-9

// BatchLowerBound returns the exact optimum of LP-Batch for the given jobs
// under the cluster's response functions (with imbalance penalty alpha;
// pass the same alpha the planner used for an apples-to-apples gap).
func BatchLowerBound(c model.Cluster, jobs []*job.Job, alpha float64) float64 {
	if len(jobs) == 0 {
		return 0
	}
	if alpha < 0 {
		alpha = c.DefaultAlpha()
	}
	resp := make([]model.ResponseFunc, len(jobs))
	for i, j := range jobs {
		resp[i] = c.Response(j, alpha)
	}
	R := float64(c.Racks)

	// Lower bracket: T must cover every job's fastest latency, and the
	// minimum-possible total work must fit in T·R.
	lo := 0.0
	minTotalWork := 0.0
	for _, f := range resp {
		minLat := math.Inf(1)
		minWork := math.Inf(1)
		for r := 1; r <= f.Racks(); r++ {
			if l := f.At(r); l < minLat {
				minLat = l
			}
			if w := f.At(r) * float64(r); w < minWork {
				minWork = w
			}
		}
		if minLat > lo {
			lo = minLat
		}
		minTotalWork += minWork
	}
	if w := minTotalWork / R; w > lo {
		lo = w
	}
	if feasible(lo, resp, R) {
		return lo
	}
	// Upper bracket: grow until feasible (the all-min-latency assignment
	// gives a finite feasible T quickly).
	hi := lo
	for !feasible(hi, resp, R) {
		hi *= 2
	}
	for hi-lo > Tolerance*hi {
		mid := (lo + hi) / 2
		if feasible(mid, resp, R) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// feasible reports whether makespan T admits a fractional assignment.
func feasible(T float64, resp []model.ResponseFunc, R float64) bool {
	total := 0.0
	for _, f := range resp {
		w := minWork(f, T)
		if math.IsInf(w, 1) {
			return false
		}
		total += w
	}
	return total <= T*R*(1+1e-12)
}

// minWork solves the per-job two-constraint LP: minimize Σ x_r L(r)·r
// subject to Σ x_r = 1, Σ x_r L(r) <= T, x >= 0. The optimum lies on a
// vertex supported by at most two rack counts: either a single r with
// L(r) <= T, or a mixture of one r with L <= T and one with L > T whose
// average latency equals T. Returns +Inf when even the fastest single
// allocation exceeds T.
func minWork(f model.ResponseFunc, T float64) float64 {
	R := f.Racks()
	best := math.Inf(1)
	for r := 1; r <= R; r++ {
		if f.At(r) <= T {
			if w := f.At(r) * float64(r); w < best {
				best = w
			}
		}
	}
	if math.IsInf(best, 1) {
		return best
	}
	for r1 := 1; r1 <= R; r1++ {
		l1 := f.At(r1)
		if l1 > T {
			continue
		}
		for r2 := 1; r2 <= R; r2++ {
			l2 := f.At(r2)
			if l2 <= T {
				continue
			}
			// x on r1, 1-x on r2, with mean latency exactly T.
			x := (l2 - T) / (l2 - l1)
			w := x*l1*float64(r1) + (1-x)*l2*float64(r2)
			if w < best {
				best = w
			}
		}
	}
	return best
}

// OnlineLowerBound returns a lower bound on the average completion time of
// any rack-granular schedule for jobs with arrival times.
func OnlineLowerBound(c model.Cluster, jobs []*job.Job, alpha float64) float64 {
	if len(jobs) == 0 {
		return 0
	}
	if alpha < 0 {
		alpha = c.DefaultAlpha()
	}
	J := float64(len(jobs))
	R := float64(c.Racks)

	items := make([]item, len(jobs))
	sumMinLat := 0.0
	for i, j := range jobs {
		f := c.Response(j, alpha)
		it := item{arrival: j.Arrival, work: math.Inf(1), minLat: math.Inf(1)}
		for r := 1; r <= f.Racks(); r++ {
			if l := f.At(r); l < it.minLat {
				it.minLat = l
			}
			if w := f.At(r) * float64(r); w < it.work {
				it.work = w
			}
		}
		items[i] = it
		sumMinLat += it.minLat
	}
	perJobFloor := sumMinLat / J

	fluid := fluidSRPT(items, R) / J
	return math.Max(perJobFloor, fluid)
}

// fluidSRPT simulates shortest-remaining-processing-time on a single
// preemptible resource of the given rate and returns the sum of
// (completion − arrival) over all items.
func fluidSRPT(items []item, rate float64) float64 {
	sort.Slice(items, func(a, b int) bool { return items[a].arrival < items[b].arrival })
	type active struct {
		remaining float64
		arrival   float64
	}
	var pool []active
	now := 0.0
	sumFlow := 0.0
	next := 0
	for next < len(items) || len(pool) > 0 {
		if len(pool) == 0 {
			now = math.Max(now, items[next].arrival)
		}
		// Admit arrivals at or before now.
		for next < len(items) && items[next].arrival <= now {
			pool = append(pool, active{remaining: items[next].work, arrival: items[next].arrival})
			next++
		}
		// Pick smallest remaining.
		sel := 0
		for i := range pool {
			if pool[i].remaining < pool[sel].remaining {
				sel = i
			}
		}
		// Run until it finishes or the next arrival.
		finishAt := now + pool[sel].remaining/rate
		if next < len(items) && items[next].arrival < finishAt {
			dt := items[next].arrival - now
			pool[sel].remaining -= dt * rate
			now = items[next].arrival
			continue
		}
		now = finishAt
		sumFlow += now - pool[sel].arrival
		pool[sel] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	return sumFlow
}

// item is one job reduced to the quantities the bounds need.
type item struct {
	arrival float64
	work    float64 // min_r L(r)·r
	minLat  float64 // min_r L(r)
}
