package runtime

// Snapshot/restore: capture a run mid-flight as a snapshot.Snapshot and
// reconstitute it later, continuing to an identical Result and trace.
//
// The DES heap stores closures, which cannot serialize. Restore is
// therefore replay-based, leaning on the determinism contract every PR
// since the first has pinned: a run is a pure function of (Options, jobs,
// Seed). A snapshot records the full run input (Spec), the capture point
// (Meta.EventIndex) and a deep export of all observable state (State).
// Resume rebuilds the runtime from Spec, re-fires exactly EventIndex
// events, audits the replayed live state field-by-field against the
// captured State — any mismatch is a hard error and an invariant-monitor
// violation — and then runs to completion. Because replay re-emits every
// event from time zero, a tracer attached on resume reproduces the full
// run's trace byte for byte, which is what the crash-resume equivalence
// harness (internal/experiments/resume.go) asserts.
//
// Observer attachments (Probe, Trace, OnMachineRepair) are never part of
// a snapshot: tracing and probing must not perturb a run, so they must
// not perturb a snapshot either. Resumers reattach them via
// ResumeOptions.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/netsim"
	"corral/internal/snapshot"
	"corral/internal/trace"
)

// countingSource wraps the seeded RNG source, counting draws without
// changing the value stream. The draw count is observable state: a
// replayed run must consume exactly as many values as the original.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.draws = 0
	c.src.Seed(seed)
}

// CheckpointTarget names one point to snapshot at: after EventIndex fired
// events when EventIndex > 0, otherwise at the first event boundary whose
// simulated time reaches SimTime. Meta.EventIndex always records the
// actual (event-exact) capture point.
type CheckpointTarget struct {
	EventIndex uint64
	SimTime    float64
}

func (t CheckpointTarget) String() string {
	if t.EventIndex > 0 {
		return fmt.Sprintf("ev:%d", t.EventIndex)
	}
	return fmt.Sprintf("t:%g", t.SimTime)
}

// ResumeOptions reattaches the observer hooks a snapshot deliberately
// excludes.
type ResumeOptions struct {
	Probe           invariants.Probe
	Trace           *trace.Tracer
	OnMachineRepair func(machine int, at float64)
}

// RunWithSnapshots runs like Run but captures a snapshot at each target,
// passing it to fn between event firings. fn returning false stops the
// simulation immediately (RunWithSnapshots then returns (nil, nil)).
// Targets a drained simulation never reaches make the run's Result come
// back with an error naming them.
func RunWithSnapshots(opts Options, jobs []*job.Job, targets []CheckpointTarget, fn func(*snapshot.Snapshot) bool) (*Result, error) {
	for _, t := range targets {
		if t.EventIndex == 0 && t.SimTime < 0 {
			return nil, fmt.Errorf("runtime: invalid snapshot target %v: negative SimTime", t)
		}
	}
	rt, err := newRuntime(opts, jobs)
	if err != nil {
		return nil, err
	}
	spec, err := rt.buildSpec()
	if err != nil {
		return nil, err
	}
	rt.start()
	met := make([]bool, len(targets))
	for rt.sim.Step() {
		for i, t := range targets {
			if met[i] {
				continue
			}
			if t.EventIndex > 0 {
				if rt.sim.Fired() < t.EventIndex {
					continue
				}
			} else if float64(rt.sim.Now()) < t.SimTime {
				continue
			}
			met[i] = true
			if !fn(rt.buildSnapshot(spec)) {
				return nil, nil
			}
		}
	}
	res, err := rt.finish()
	if err != nil {
		return nil, err
	}
	for i, t := range targets {
		if !met[i] {
			return res, fmt.Errorf("runtime: snapshot target %v not reached: simulation ended after %d events at t=%g",
				t, res.Events, float64(rt.sim.Now()))
		}
	}
	return res, nil
}

// CaptureAt runs until the target and returns the snapshot taken there,
// tearing the run down immediately after. Reaching simulation end first is
// an error.
func CaptureAt(opts Options, jobs []*job.Job, target CheckpointTarget) (*snapshot.Snapshot, error) {
	var snap *snapshot.Snapshot
	res, err := RunWithSnapshots(opts, jobs, []CheckpointTarget{target}, func(s *snapshot.Snapshot) bool {
		snap = s
		return false
	})
	if err != nil {
		return nil, err
	}
	if snap == nil {
		var events uint64
		if res != nil {
			events = res.Events
		}
		return nil, fmt.Errorf("runtime: snapshot target %v past simulation end (%d events)", target, events)
	}
	return snap, nil
}

// Resume reconstitutes a snapshotted run and continues it to completion.
// The runtime is rebuilt from the snapshot's Spec and deterministically
// replayed to Meta.EventIndex; the replayed state is then audited
// field-by-field against the snapshot's State section. Any mismatch —
// a corrupted snapshot, or a build whose semantics drifted from the
// snapshotting build — is reported to the probe as an invariant violation
// and returned as an error; the run never continues from unverified state.
func Resume(snap *snapshot.Snapshot, ro ResumeOptions) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("runtime: resuming nil snapshot")
	}
	if snap.Version != snapshot.Version {
		return nil, fmt.Errorf("runtime: snapshot version %d not supported (this build reads version %d)", snap.Version, snapshot.Version)
	}
	opts, jobs, err := optionsFromSpec(&snap.Spec)
	if err != nil {
		return nil, err
	}
	opts.Probe = ro.Probe
	opts.Trace = ro.Trace
	opts.OnMachineRepair = ro.OnMachineRepair
	rt, err := newRuntime(opts, jobs)
	if err != nil {
		return nil, err
	}
	rt.start()
	for rt.sim.Fired() < snap.Meta.EventIndex {
		if !rt.sim.Step() {
			err := fmt.Errorf("snapshot restore audit: event queue drained after %d events, snapshot taken at %d — spec does not reproduce the captured run",
				rt.sim.Fired(), snap.Meta.EventIndex)
			rt.probeAudit(err)
			return nil, err
		}
	}
	if diffs := snapshot.DiffStates(rt.captureState(), &snap.State); len(diffs) > 0 {
		err := fmt.Errorf("snapshot restore audit: replayed state diverges from captured state in %d field(s): %s",
			len(diffs), diffs[0])
		rt.probeAudit(err)
		return nil, err
	}
	// Restored state verified; re-run the DFS byte-conservation audit on it
	// before continuing, so a monitor attached on resume re-checks the
	// restored world, not just the events that follow.
	if rt.opts.Probe != nil {
		if err := rt.store.AuditAccounting(); err != nil {
			rt.probeAudit(err)
		}
	}
	rt.sim.Run()
	return rt.finish()
}

// buildSpec serializes the run's full input. It fails on inputs that
// cannot round-trip: a custom network policy instance or a live
// OnMachineRepair hook.
func (rt *runtime) buildSpec() (snapshot.Spec, error) {
	o := rt.opts
	if o.OnMachineRepair != nil {
		return snapshot.Spec{}, fmt.Errorf("runtime: cannot snapshot a run with an OnMachineRepair hook (closures do not serialize; reattach it via ResumeOptions)")
	}
	policy := ""
	if o.Network != nil {
		policy = o.Network.Name()
		if _, err := policyByName(policy); err != nil {
			return snapshot.Spec{}, fmt.Errorf("runtime: cannot snapshot run with custom network policy %q", policy)
		}
	}
	spec := snapshot.Spec{
		Topology:  o.Topology,
		Scheduler: o.Scheduler.String(),
		Policy:    policy,
		FlowEpoch: o.FlowEpoch,
		Seed:      o.Seed,
		Plan:      o.Plan,

		BlockSize:            o.BlockSize,
		DelayNodeLocal:       o.DelayNodeLocal,
		DelayRackLocal:       o.DelayRackLocal,
		OutputReplication:    o.OutputReplication,
		Heartbeat:            o.Heartbeat,
		ReplanOnFailure:      o.ReplanOnFailure,
		DisableReReplication: o.DisableReReplication,
		StragglerFraction:    o.StragglerFraction,
		StragglerSlowdown:    o.StragglerSlowdown,
		Speculation:          o.Speculation,
		SpeculationThreshold: o.SpeculationThreshold,
		AdhocShare:           o.AdhocShare,
		RemoteStorageInput:   o.RemoteStorageInput,
		InMemoryInput:        o.InMemoryInput,
		TaskFailureProb:      o.TaskFailureProb,
		MaxTaskAttempts:      o.MaxTaskAttempts,
		RetryBackoff:         o.RetryBackoff,
		BlacklistThreshold:   o.BlacklistThreshold,
		BlacklistCooldown:    o.BlacklistCooldown,
		MaxAMAttempts:        o.MaxAMAttempts,
		AMRestartDelay:       o.AMRestartDelay,

		PlannerBudget:       o.PlannerBudget,
		ReplanWindow:        o.ReplanWindow,
		MaxReplansPerWindow: o.MaxReplansPerWindow,
		AdmissionLimit:      o.AdmissionLimit,
		AdmissionQueueCap:   o.AdmissionQueueCap,

		FailedMachines: append([]int(nil), o.FailedMachines...),
	}
	for _, je := range rt.jobs {
		spec.Jobs = append(spec.Jobs, je.job)
	}
	for _, f := range o.Failures {
		spec.Failures = append(spec.Failures, snapshot.Failure{At: f.At, Machine: f.Machine, Downtime: f.Downtime})
	}
	for _, lf := range o.LinkFaults {
		spec.LinkFaults = append(spec.LinkFaults, snapshot.LinkFault{At: lf.At, Rack: lf.Rack, Factor: lf.Factor})
	}
	for _, af := range o.AMFailures {
		spec.AMFailures = append(spec.AMFailures, snapshot.AMFailure{At: af.At, JobID: af.JobID})
	}
	for _, c := range o.Corruptions {
		spec.Corruptions = append(spec.Corruptions, snapshot.Corruption{At: c.At, Machine: c.Machine})
	}
	return spec, nil
}

// policyByName is the inverse of Policy.Name for the bundled policies.
// "" selects the default (a fresh incremental max-min instance per run —
// bit-identical to the grouped and reference allocators, so snapshots
// recorded under any earlier default resume equivalently).
func policyByName(name string) (netsim.Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "maxmin-incremental":
		return netsim.NewIncrementalMaxMin(), nil
	case "maxmin-grouped":
		return netsim.NewGroupedMaxMin(), nil
	case "maxmin":
		return netsim.MaxMinFair{}, nil
	case "varys":
		return netsim.Varys{}, nil
	}
	return nil, fmt.Errorf("runtime: unknown network policy %q in snapshot spec", name)
}

// optionsFromSpec rebuilds the run input a snapshot's Spec records.
func optionsFromSpec(spec *snapshot.Spec) (Options, []*job.Job, error) {
	kind, err := ParseKind(spec.Scheduler)
	if err != nil {
		return Options{}, nil, err
	}
	policy, err := policyByName(spec.Policy)
	if err != nil {
		return Options{}, nil, err
	}
	opts := Options{
		Topology:  spec.Topology,
		Scheduler: kind,
		Network:   policy,
		FlowEpoch: spec.FlowEpoch,
		Seed:      spec.Seed,
		Plan:      spec.Plan,

		BlockSize:            spec.BlockSize,
		DelayNodeLocal:       spec.DelayNodeLocal,
		DelayRackLocal:       spec.DelayRackLocal,
		OutputReplication:    spec.OutputReplication,
		Heartbeat:            spec.Heartbeat,
		ReplanOnFailure:      spec.ReplanOnFailure,
		DisableReReplication: spec.DisableReReplication,
		StragglerFraction:    spec.StragglerFraction,
		StragglerSlowdown:    spec.StragglerSlowdown,
		Speculation:          spec.Speculation,
		SpeculationThreshold: spec.SpeculationThreshold,
		AdhocShare:           spec.AdhocShare,
		RemoteStorageInput:   spec.RemoteStorageInput,
		InMemoryInput:        spec.InMemoryInput,
		TaskFailureProb:      spec.TaskFailureProb,
		MaxTaskAttempts:      spec.MaxTaskAttempts,
		RetryBackoff:         spec.RetryBackoff,
		BlacklistThreshold:   spec.BlacklistThreshold,
		BlacklistCooldown:    spec.BlacklistCooldown,
		MaxAMAttempts:        spec.MaxAMAttempts,
		AMRestartDelay:       spec.AMRestartDelay,

		PlannerBudget:       spec.PlannerBudget,
		ReplanWindow:        spec.ReplanWindow,
		MaxReplansPerWindow: spec.MaxReplansPerWindow,
		AdmissionLimit:      spec.AdmissionLimit,
		AdmissionQueueCap:   spec.AdmissionQueueCap,

		FailedMachines: append([]int(nil), spec.FailedMachines...),
	}
	for _, f := range spec.Failures {
		opts.Failures = append(opts.Failures, Failure{At: f.At, Machine: f.Machine, Downtime: f.Downtime})
	}
	for _, lf := range spec.LinkFaults {
		opts.LinkFaults = append(opts.LinkFaults, LinkFault{At: lf.At, Rack: lf.Rack, Factor: lf.Factor})
	}
	for _, af := range spec.AMFailures {
		opts.AMFailures = append(opts.AMFailures, AMFailure{At: af.At, JobID: af.JobID})
	}
	for _, c := range spec.Corruptions {
		opts.Corruptions = append(opts.Corruptions, Corruption{At: c.At, Machine: c.Machine})
	}
	return opts, spec.Jobs, nil
}

// buildSnapshot assembles the full snapshot at the current event boundary.
func (rt *runtime) buildSnapshot(spec snapshot.Spec) *snapshot.Snapshot {
	return &snapshot.Snapshot{
		Version: snapshot.Version,
		Meta: snapshot.Meta{
			EventIndex: rt.sim.Fired(),
			SimTime:    float64(rt.sim.Now()),
			Seed:       rt.opts.Seed,
			Scheduler:  rt.opts.Scheduler.String(),
			Label:      fmt.Sprintf("sim/%s/seed%d", rt.opts.Scheduler, rt.opts.Seed),
		},
		Spec:  spec,
		State: *rt.captureState(),
	}
}

// captureState deep-exports every piece of observable simulation state.
// Must be called between event firings (a clean heap boundary).
func (rt *runtime) captureState() *snapshot.State {
	st := &snapshot.State{
		DES: snapshot.DESState{
			Now:   float64(rt.sim.Now()),
			Fired: rt.sim.Fired(),
			Seq:   rt.sim.Seq(),
		},
		RNGDraws: rt.rngSrc.draws,
		Net:      rt.net.CaptureState(),
		DFS:      rt.store.CaptureState(),
	}
	for _, e := range rt.sim.PendingEvents() {
		st.DES.Pending = append(st.DES.Pending, snapshot.PendingEvent{
			At: float64(e.At), Seq: e.Seq, Canceled: e.Canceled,
		})
	}
	r := &st.Runtime
	r.FreeSlots = append([]int(nil), rt.freeSlots...)
	r.Dead = append([]bool(nil), rt.dead...)
	r.DeadCount = rt.deadCount
	r.MachineOrder = append([]int(nil), rt.machineOrder...)
	r.Blacklisted = append([]bool(nil), rt.blacklisted...)
	r.MachineFailures = append([]int(nil), rt.machineFailures...)
	r.FailedJobs = rt.failedJobs
	r.RackLinkFactor = append([]float64(nil), rt.rackLinkFactor...)
	r.RecoverAt = make([]float64, len(rt.recoverAt))
	for i, v := range rt.recoverAt {
		if math.IsInf(v, 1) {
			v = -1 // JSON cannot carry +Inf; -1 encodes "none scheduled"
		}
		r.RecoverAt[i] = v
	}
	r.RepairBytes = rt.repairBytes
	r.Replans = rt.replans
	r.Active = rt.active
	r.SWLoad = append([]int(nil), rt.swLoad...)
	r.CoflowID = int64(rt.coflowID)
	r.DispatchPending = rt.dispatchPending
	r.RetryPending = rt.retryPending
	r.Declined = rt.declined
	r.RunningPlanned = rt.runningPlanned
	r.RunningAdhoc = rt.runningAdhoc
	r.HaveAdhoc = rt.haveAdhoc
	r.HavePlanned = rt.havePlanned
	r.LastRepairDone = rt.lastRepairDone
	r.ReplansSuppressed = rt.replansSuppressed
	r.DegradedFull = rt.degradations.Full
	r.DegradedIncremental = rt.degradations.Incremental
	r.DegradedGreedy = rt.degradations.Greedy
	r.ReplanWindowEnd = rt.replanWindowEnd
	r.ReplansInWindow = rt.replansInWindow
	r.ReplanCooldown = rt.replanCooldown
	r.ReplanPending = rt.replanPending
	r.Admitted = rt.admitted
	r.Deferred = rt.deferred
	r.Shed = rt.shed
	r.MaxAdmissionQueue = rt.maxAdmissionQ
	for _, je := range rt.admissionQueue {
		r.AdmissionQueue = append(r.AdmissionQueue, je.job.ID)
	}
	for _, op := range rt.repairList {
		r.Repairs = append(r.Repairs, snapshot.RepairState{
			Src: op.rep.Src, Dst: op.rep.Dst, Slot: op.rep.Slot,
			Bytes: op.rep.Block.Size, Done: op.done, Canceled: op.canceled,
		})
	}
	for _, je := range rt.jobs {
		r.Jobs = append(r.Jobs, captureJob(je))
	}
	for m := 0; m < len(rt.freeSlots); m++ {
		for _, tk := range rt.running[m] {
			a := snapshot.AttemptState{
				Machine: m,
				JobID:   tk.je.job.ID,
				Stage:   tk.st.idx,
				Started: float64(tk.started),
				NoSpec:  tk.noSpec,
				NFlows:  len(tk.flows),
				NEvents: len(tk.events),
			}
			if tk.mapT != nil {
				a.Role, a.Task, a.Attempts = "map", tk.mapT.index, tk.mapT.attempts
			} else {
				a.Role, a.Task, a.Attempts = "reduce", tk.redT.index, tk.redT.attempts
			}
			r.Running = append(r.Running, a)
		}
	}
	return st
}

func captureJob(je *jobExec) snapshot.JobState {
	js := snapshot.JobState{
		ID:            je.job.ID,
		Submitted:     je.submitted,
		Completion:    je.completion,
		Failed:        je.failed,
		FailReason:    je.failReason,
		AMDown:        je.amDown,
		AMAttempt:     je.amAttempt,
		AMFailures:    je.amFailures,
		Skips:         je.skips,
		Constrained:   je.allowedRacks != nil,
		AllowedRacks:  append([]int(nil), je.allowedRacks...),
		TasksLaunched: je.tasksLaunched,
		TaskSeconds:   je.taskSeconds,
		ReduceSeconds: append([]float64(nil), je.reduceSeconds...),
		StagesLeft:    je.stagesLeft,
	}
	if je.assignment != nil {
		js.HasAssignment = true
		js.AssignedRacks = append([]int(nil), je.assignment.Racks...)
		js.Priority = je.assignment.Priority
	}
	for rk, touched := range je.racksTouched {
		if touched {
			js.RacksTouched = append(js.RacksTouched, rk) // ascending by construction
		}
	}
	for _, st := range je.stages {
		js.Stages = append(js.Stages, captureStage(st))
	}
	return js
}

func captureStage(st *stageExec) snapshot.StageState {
	ss := snapshot.StageState{
		Phase:            int(st.phase),
		Coflow:           int64(st.coflow),
		RemoteStorage:    st.remoteStorage,
		UpstreamMachines: append([]int(nil), st.upstreamMachines...),
		PendingMaps:      st.pendingMapCount,
		MapsDone:         st.mapsDone,
		MapsOnRack:       append([]int(nil), st.mapsOnRack...),
		ReducesDone:      st.reducesDone,
		ReduceMachines:   append([]int(nil), st.reduceMachines...),
	}
	for m := range st.mapsOnMachine {
		ss.MapsOnMachine = append(ss.MapsOnMachine, snapshot.MachineCount{Machine: m, Count: st.mapsOnMachine[m]})
	}
	sort.Slice(ss.MapsOnMachine, func(i, j int) bool { return ss.MapsOnMachine[i].Machine < ss.MapsOnMachine[j].Machine })
	ss.ByMachine = captureQueues(st.byMachine)
	ss.ByRack = captureQueues(st.byRack)
	for _, t := range st.anyPref {
		ss.AnyPref = append(ss.AnyPref, t.index)
	}
	for _, t := range st.anywhere {
		ss.Anywhere = append(ss.Anywhere, t.index)
	}
	for _, t := range st.maps {
		ss.Maps = append(ss.Maps, snapshot.TaskState{
			Assigned:   t.assigned,
			Speculated: t.speculated,
			Attempts:   t.attempts,
			DoneOn:     t.doneOn,
			SrcMachine: t.srcMachine,
			Bytes:      t.bytes,
		})
	}
	for _, rT := range st.reduces {
		ss.Reduces = append(ss.Reduces, snapshot.TaskState{
			Speculated: rT.speculated,
			Attempts:   rT.attempts,
			DoneOn:     rT.doneOn,
			SrcMachine: -1,
		})
	}
	for _, rT := range st.reduceQ {
		ss.ReduceQ = append(ss.ReduceQ, rT.index)
	}
	return ss
}

// captureQueues exports a locality-queue map sorted by key. Stale entries
// (tasks already assigned through another bucket, awaiting lazy cleanup)
// are included: future pops depend on them.
func captureQueues(q map[int][]*mapTask) []snapshot.TaskQueue {
	keys := make([]int, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]snapshot.TaskQueue, 0, len(keys))
	for _, k := range keys {
		tq := snapshot.TaskQueue{Key: k}
		for _, t := range q[k] {
			tq.Tasks = append(tq.Tasks, t.index)
		}
		out = append(out, tq)
	}
	return out
}
