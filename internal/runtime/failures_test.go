package runtime

import (
	"testing"

	"corral/internal/job"
	"corral/internal/planner"
)

func TestMidRunFailureTasksReexecute(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	// Kill three machines shortly after the job starts: its in-flight
	// tasks must be re-executed and the job must still complete.
	res := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 21,
		Failures: []Failure{{At: 0.5, Machine: 0}, {At: 0.5, Machine: 1}, {At: 0.7, Machine: 2}},
	}, jobs)
	jr := res.Jobs[0]
	if jr.CompletionTime <= 0 {
		t.Fatal("job did not survive mid-run failures")
	}
	// Compare against a failure-free run: losing in-flight work should not
	// make the job substantially faster. (It can be marginally faster:
	// failures shift the randomized heartbeat order, and a lucky placement
	// may beat the clean run by noise.)
	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 21}, []*job.Job{shuffleJob(1)})
	if jr.CompletionTime < 0.8*clean.Jobs[0].CompletionTime {
		t.Fatalf("failure run (%g) much faster than clean run (%g)",
			jr.CompletionTime, clean.Jobs[0].CompletionTime)
	}
}

func TestMidRunFailureCorralFallback(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	a := plan.Assignments[1]
	if len(a.Racks) != 1 {
		t.Skip("plan spread the job; premise gone")
	}
	// Kill a majority of the assigned rack mid-run.
	lo := a.Racks[0] * topo.MachinesPerRack
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 22,
		Failures: []Failure{
			{At: 0.2, Machine: lo}, {At: 0.2, Machine: lo + 1}, {At: 0.2, Machine: lo + 2},
		},
	}, jobs)
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete after mid-run rack failure")
	}
	if res.Jobs[0].RacksUsed < 2 {
		t.Fatalf("job stayed on %d rack(s); fallback did not trigger", res.Jobs[0].RacksUsed)
	}
}

func TestFailureValidation(t *testing.T) {
	if _, err := Run(Options{Topology: smallTopo(), Failures: []Failure{{At: 1, Machine: 10000}}}, nil); err == nil {
		t.Fatal("out-of-range failure machine not rejected")
	}
	if _, err := Run(Options{Topology: smallTopo(), Failures: []Failure{{At: -1, Machine: 0}}}, nil); err == nil {
		t.Fatal("negative failure time not rejected")
	}
}

func TestFailAllReplicasStillReadable(t *testing.T) {
	// Even when one machine with a replica dies, the remaining replicas
	// keep every block readable (2+1 spread across two racks).
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	var failures []Failure
	// Kill one machine per rack early.
	for r := 0; r < topo.Racks; r++ {
		failures = append(failures, Failure{At: 0.1, Machine: r * topo.MachinesPerRack})
	}
	res := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 23, Failures: failures}, jobs)
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job starved after per-rack failures")
	}
}

func TestStragglersSlowJobsDown(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 24}, mk())
	slow := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 24,
		StragglerFraction: 0.5, StragglerSlowdown: 10,
	}, mk())
	if slow.Makespan <= clean.Makespan {
		t.Fatalf("stragglers did not slow the job: %g vs %g", slow.Makespan, clean.Makespan)
	}
}

func TestSpeculationMitigatesStragglers(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	base := Options{
		Topology: topo, BlockSize: 64e6, Seed: 25,
		StragglerFraction: 0.3, StragglerSlowdown: 20,
	}
	noSpec := mustRun(t, base, mk())
	withSpec := base
	withSpec.Speculation = true
	spec := mustRun(t, withSpec, mk())
	if spec.Makespan >= noSpec.Makespan {
		t.Fatalf("speculation did not help: %g vs %g", spec.Makespan, noSpec.Makespan)
	}
}

func TestSpeculationHarmlessWithoutStragglers(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 26}, mk())
	spec := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 26, Speculation: true}, mk())
	if spec.Makespan != clean.Makespan {
		t.Fatalf("speculation changed a straggler-free run: %g vs %g", spec.Makespan, clean.Makespan)
	}
}

func TestFailureDeterminism(t *testing.T) {
	run := func() *Result {
		topo := smallTopo()
		jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
		return mustRun(t, Options{
			Topology: topo, BlockSize: 64e6, Seed: 27,
			Failures:          []Failure{{At: 1, Machine: 3}, {At: 2, Machine: 7}},
			StragglerFraction: 0.2, Speculation: true,
		}, jobs)
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.CrossRackBytes != b.CrossRackBytes {
		t.Fatalf("failure+straggler run nondeterministic: (%g,%g) vs (%g,%g)",
			a.Makespan, a.CrossRackBytes, b.Makespan, b.CrossRackBytes)
	}
}

func TestManyFailuresNoDeadlock(t *testing.T) {
	// Kill half the cluster in waves while a batch runs.
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 3; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	var failures []Failure
	for i := 0; i < topo.Machines()/2; i++ {
		failures = append(failures, Failure{At: float64(i) * 0.3, Machine: i * 2})
	}
	res := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 28, Failures: failures}, jobs)
	for _, jr := range res.Jobs {
		if jr.CompletionTime <= 0 {
			t.Fatalf("job %d never finished under cascading failures", jr.ID)
		}
	}
}
