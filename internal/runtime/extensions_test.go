package runtime

import (
	"testing"

	"corral/internal/job"
	"corral/internal/planner"
)

func TestRemoteStorageRequiresInterconnect(t *testing.T) {
	if _, err := Run(Options{Topology: smallTopo(), RemoteStorageInput: true}, nil); err == nil {
		t.Fatal("remote storage without interconnect not rejected")
	}
}

func TestRemoteStorageInputFetches(t *testing.T) {
	topo := smallTopo()
	topo.RemoteStorageBandwidth = 20 * gbps
	jobs := []*job.Job{shuffleJob(1)}
	res := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 31, RemoteStorageInput: true,
	}, jobs)
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("remote-storage job did not complete")
	}
	// Input never lands in the DFS: rack CoV must be zero (no stored data).
	if res.InputRackCoV != 0 {
		t.Fatalf("remote-storage run stored input locally (CoV %g)", res.InputRackCoV)
	}
}

func TestRemoteStorageInterconnectBottleneck(t *testing.T) {
	// Halving the interconnect must slow the batch down: input fetches are
	// serialized behind the shared link.
	run := func(bw float64) float64 {
		topo := smallTopo()
		topo.RemoteStorageBandwidth = bw
		var jobs []*job.Job
		for i := 1; i <= 3; i++ {
			jobs = append(jobs, shuffleJob(i))
		}
		res := mustRun(t, Options{
			Topology: topo, BlockSize: 64e6, Seed: 32, RemoteStorageInput: true,
		}, jobs)
		return res.Makespan
	}
	fast := run(40 * gbps)
	slow := run(1 * gbps)
	if slow <= fast {
		t.Fatalf("interconnect bottleneck has no effect: %g vs %g", slow, fast)
	}
}

func TestRemoteStorageCorralStillWins(t *testing.T) {
	// §7: with remote storage, Corral still helps by keeping the shuffle
	// and reduce stages rack-local.
	topo := smallTopo()
	topo.RemoteStorageBandwidth = 40 * gbps
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	yarn := mustRun(t, Options{
		Topology: topo, Scheduler: YarnCS, BlockSize: 64e6, Seed: 33, RemoteStorageInput: true,
	}, jobs)
	corral := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 33, RemoteStorageInput: true,
	}, jobs)
	if corral.CrossRackBytes >= yarn.CrossRackBytes {
		t.Fatalf("Corral cross-rack %g >= Yarn %g under remote storage",
			corral.CrossRackBytes, yarn.CrossRackBytes)
	}
}

func TestInMemoryModeSkipsWrites(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	if len(plan.Assignments[1].Racks) != 1 {
		t.Skip("plan spread the job")
	}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6,
		Seed: 34, InMemoryInput: true,
	}, jobs)
	// With a 1-rack plan and no replicated writes, nothing crosses racks.
	if res.Jobs[0].CrossRackBytes > 1e6 {
		t.Fatalf("in-memory single-rack job moved %g cross-rack bytes",
			res.Jobs[0].CrossRackBytes)
	}
}

func TestInMemoryStillNetworkBound(t *testing.T) {
	// §7's point: even in-memory systems bottleneck on the network, so
	// Corral's shuffle locality still reduces completion time on a
	// shuffle-heavy batch.
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	yarn := mustRun(t, Options{
		Topology: topo, Scheduler: YarnCS, BlockSize: 64e6, Seed: 35, InMemoryInput: true,
	}, jobs)
	corral := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 35, InMemoryInput: true,
	}, jobs)
	if corral.Makespan >= yarn.Makespan {
		t.Fatalf("in-memory Corral %g >= Yarn %g", corral.Makespan, yarn.Makespan)
	}
}
