package runtime

import (
	"reflect"
	"strings"
	"testing"

	"corral/internal/des"
	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/planner"
	"corral/internal/snapshot"
)

// --- option validation -------------------------------------------------------

func TestValidateOverloadRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"negative budget", func(o *Options) { o.PlannerBudget = -1 }, "negative PlannerBudget"},
		{"negative window", func(o *Options) { o.ReplanWindow = -0.5 }, "negative ReplanWindow"},
		{"negative max replans", func(o *Options) { o.MaxReplansPerWindow = -2 }, "negative MaxReplansPerWindow"},
		{"max replans without window", func(o *Options) { o.MaxReplansPerWindow = 3 }, "requires ReplanWindow"},
		{"negative admission limit", func(o *Options) { o.AdmissionLimit = -1 }, "negative AdmissionLimit"},
		{"negative queue cap", func(o *Options) { o.AdmissionQueueCap = -4 }, "negative AdmissionQueueCap"},
		{"queue cap without limit", func(o *Options) { o.AdmissionQueueCap = 8 }, "requires AdmissionLimit"},
	}
	for _, tc := range cases {
		opts := Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 1}
		tc.mut(&opts)
		_, err := newRuntime(opts, []*job.Job{shuffleJob(1)})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// --- replan-storm suppression ------------------------------------------------

// TestReplanSuppressionWindow drives requestReplan at hand-picked instants
// (the Yarn default scheduler makes replanOnFailure itself a no-op, so only
// the window bookkeeping is under test) and checks the debounce, coalesce,
// exponential-cooldown and quiet-decay transitions one by one.
func TestReplanSuppressionWindow(t *testing.T) {
	rt, err := newRuntime(Options{
		Topology: smallTopo(), BlockSize: 64e6, Seed: 1,
		ReplanWindow: 1, // MaxReplansPerWindow defaults to 1
	}, []*job.Job{shuffleJob(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rt.opts.MaxReplansPerWindow != 1 {
		t.Fatalf("MaxReplansPerWindow default = %d, want 1", rt.opts.MaxReplansPerWindow)
	}
	for _, at := range []float64{1.0, 1.5, 1.7, 2.5, 20} {
		rt.sim.At(des.Time(at), rt.requestReplan)
	}
	rt.sim.Run()

	// t=1.0 opens window [1,2) and replans immediately. t=1.5 saturates it:
	// suppressed, pending parked at 2.0, cooldown escalates to 2. t=1.7 is
	// coalesced into the same pending replan. The pending fire at t=2.0
	// opens the stretched window [2,4), so t=2.5 saturates again: cooldown
	// escalates to 4, pending parked at 4.0 and fired there (window [4,8)).
	// By t=20 the run has been quiet past 8 + 1·4, so the cooldown decays
	// back to baseline and the request replans immediately in [20,21).
	if rt.replansSuppressed != 3 {
		t.Fatalf("replansSuppressed = %d, want 3", rt.replansSuppressed)
	}
	if rt.replanCooldown != 0 {
		t.Fatalf("replanCooldown = %d, want 0 (quiet span must decay escalation)", rt.replanCooldown)
	}
	if rt.replanWindowEnd != 21 {
		t.Fatalf("replanWindowEnd = %g, want 21", rt.replanWindowEnd)
	}
	if rt.replanPending {
		t.Fatal("replanPending still set after the queue drained")
	}
}

// A sustained storm must pin the cooldown at its cap and suppress nearly
// every request: N requests cost O(log N) replans, not N.
func TestReplanSuppressionCooldownCap(t *testing.T) {
	rt, err := newRuntime(Options{
		Topology: smallTopo(), BlockSize: 64e6, Seed: 1,
		ReplanWindow: 1,
	}, []*job.Job{shuffleJob(1)})
	if err != nil {
		t.Fatal(err)
	}
	requests := 0
	for at := 1.0; at < 30; at += 0.3 {
		rt.sim.At(des.Time(at), rt.requestReplan)
		requests++
	}
	rt.sim.Run()
	if rt.replanCooldown != maxReplanCooldown {
		t.Fatalf("replanCooldown = %d, want cap %d under a sustained storm",
			rt.replanCooldown, maxReplanCooldown)
	}
	// Every non-suppressed request is one replan invocation; with windows
	// stretching 1→2→4→8 the storm passes through only a handful.
	if passed := requests - rt.replansSuppressed; passed > 10 {
		t.Fatalf("%d of %d requests replanned immediately; suppression is not coalescing", passed, requests)
	}
}

// --- planner budget fallback chain -------------------------------------------

// budgetScenario pins both jobs to rack 0 and guts that rack at t=1, so
// exactly one replan request fires with two affected jobs. The handcrafted
// plan makes the replan input deterministic: J=2, R=4, S=2.
func budgetScenario(t *testing.T, budget float64) (*Result, *countingProbe) {
	t.Helper()
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	j1, j2 := shuffleJob(1), shuffleJob(2)
	j2.Arrival = 20
	plan := &planner.Plan{
		Objective: planner.MinimizeMakespan,
		Assignments: map[int]*planner.Assignment{
			1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 15},
			2: {JobID: 2, Racks: []int{0}, Start: 20, EstLatency: 15},
		},
	}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 39,
		ReplanOnFailure: true,
		PlannerBudget:   budget,
		Probe:           probe,
		Failures: []Failure{
			{At: 1, Machine: 0}, {At: 1, Machine: 1}, {At: 1, Machine: 2},
		},
	}, []*job.Job{j1, j2})
	for _, jr := range res.Jobs {
		if jr.Failed || jr.CompletionTime <= 0 {
			t.Fatalf("budget %g: job %d failed=%v completion=%g",
				budget, jr.ID, jr.Failed, jr.CompletionTime)
		}
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("budget %g: %d invariant violations: %v", budget, n, probe.mon.Violations())
	}
	return res, probe
}

func TestPlannerBudgetFallbackChain(t *testing.T) {
	full := planner.CostFull(2, 4, 2)
	inc := planner.CostIncremental(2, 4, 2)
	if !(inc < full) {
		t.Fatalf("cost model inverted: incremental %g >= full %g", inc, full)
	}

	// Budget above the full-plan cost: no degradation at all.
	res, _ := budgetScenario(t, full*2)
	if res.Degradations != (Degradations{Full: 1}) || res.Replans != 1 {
		t.Fatalf("generous budget: degradations %+v replans %d, want one full plan",
			res.Degradations, res.Replans)
	}

	// Budget between the two planner tiers: degrade to incremental.
	res, _ = budgetScenario(t, (inc+full)/2)
	if res.Degradations != (Degradations{Incremental: 1}) || res.Replans != 1 {
		t.Fatalf("mid budget: degradations %+v replans %d, want one incremental replan",
			res.Degradations, res.Replans)
	}

	// Budget below even the incremental cost: greedy tier, no planner call.
	res, _ = budgetScenario(t, inc/10)
	if res.Degradations != (Degradations{Greedy: 1}) || res.Replans != 0 {
		t.Fatalf("starved budget: degradations %+v replans %d, want greedy only",
			res.Degradations, res.Replans)
	}
}

// A budgeted plan lands at t+cost, not instantly: the same scenario with
// and without a budget must still both complete, and the budgeted run must
// be deterministic.
func TestPlannerBudgetDeterminism(t *testing.T) {
	full := planner.CostFull(2, 4, 2)
	a, _ := budgetScenario(t, full*2)
	b, _ := budgetScenario(t, full*2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed budgeted runs diverged:\na: %+v\nb: %+v", a, b)
	}
	c, _ := budgetScenario(t, planner.CostIncremental(2, 4, 2)/10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("full-plan and greedy runs identical (budget tiers have no effect)")
	}
}

// --- streaming-arrival admission control -------------------------------------

func admissionJobs(arrivals ...float64) []*job.Job {
	jobs := make([]*job.Job, len(arrivals))
	for i, at := range arrivals {
		jobs[i] = shuffleJob(i + 1)
		jobs[i].Arrival = at
	}
	return jobs
}

// AdmissionLimit=1 serializes execution: later arrivals park in the FIFO
// queue and run in arrival order once the slot frees.
func TestAdmissionSerializesArrivals(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	opts := Options{Topology: topo, BlockSize: 64e6, Seed: 3, AdmissionLimit: 1, Probe: probe}
	res := mustRun(t, opts, admissionJobs(0, 0.1, 0.2))
	if res.Deferred != 2 || res.Shed != 0 {
		t.Fatalf("Deferred/Shed = %d/%d, want 2/0", res.Deferred, res.Shed)
	}
	if res.MaxAdmissionQueue != 2 {
		t.Fatalf("MaxAdmissionQueue = %d, want 2", res.MaxAdmissionQueue)
	}
	if probe.kinds[invariants.JobDefer] != 2 {
		t.Fatalf("JobDefer events = %d, want 2", probe.kinds[invariants.JobDefer])
	}
	for i, jr := range res.Jobs {
		if jr.Failed || jr.CompletionTime <= 0 {
			t.Fatalf("job %d failed=%v under admission control", jr.ID, jr.Failed)
		}
		if i > 0 && jr.Completion <= res.Jobs[i-1].Completion {
			t.Fatalf("job %d completed at %g before its predecessor (%g); admission is not FIFO",
				jr.ID, jr.Completion, res.Jobs[i-1].Completion)
		}
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("%d invariant violations: %v", n, probe.mon.Violations())
	}
	// Serialized execution cannot beat unconstrained execution.
	free := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 3}, admissionJobs(0, 0.1, 0.2))
	if res.Makespan < free.Makespan {
		t.Fatalf("serialized makespan %g beat unconstrained %g", res.Makespan, free.Makespan)
	}
}

// Arrivals past the queue cap are shed: a deterministic terminal outcome
// that never counts against FailedJobs and never wedges the run.
func TestAdmissionShedsAtCapacity(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	opts := Options{
		Topology: topo, BlockSize: 64e6, Seed: 5,
		AdmissionLimit: 1, AdmissionQueueCap: 1, Probe: probe,
	}
	res := mustRun(t, opts, admissionJobs(0, 0.1, 0.2, 0.3))
	if res.Deferred != 1 || res.Shed != 2 {
		t.Fatalf("Deferred/Shed = %d/%d, want 1/2", res.Deferred, res.Shed)
	}
	if res.FailedJobs != 0 {
		t.Fatalf("FailedJobs = %d; shed jobs must not count as attrition failures", res.FailedJobs)
	}
	if probe.kinds[invariants.JobShed] != 2 {
		t.Fatalf("JobShed events = %d, want 2", probe.kinds[invariants.JobShed])
	}
	for _, jr := range res.Jobs[:2] {
		if jr.Failed {
			t.Fatalf("admitted/queued job %d was marked failed", jr.ID)
		}
	}
	for _, jr := range res.Jobs[2:] {
		if !jr.Failed || !strings.Contains(jr.FailReason, "shed") {
			t.Fatalf("job %d failed=%v reason=%q, want shed outcome", jr.ID, jr.Failed, jr.FailReason)
		}
		if jr.CompletionTime != 0 {
			t.Fatalf("shed job %d has completion time %g, want 0 (shed at arrival)", jr.ID, jr.CompletionTime)
		}
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("%d invariant violations: %v", n, probe.mon.Violations())
	}
}

// Same seed, same admission pressure: bit-identical results.
func TestAdmissionDeterminism(t *testing.T) {
	run := func() *Result {
		return mustRun(t, Options{
			Topology: smallTopo(), BlockSize: 64e6, Seed: 9,
			AdmissionLimit: 2, AdmissionQueueCap: 1,
		}, admissionJobs(0, 0.5, 1, 1.5, 2))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed admission runs diverged:\na: %+v\nb: %+v", a, b)
	}
}

// --- snapshot round-trip of overload state -----------------------------------

// Capturing mid-queue must serialize the admission and suppression state
// and restore it exactly: the resumed run equals the uninterrupted one.
func TestOverloadSnapshotRoundTrip(t *testing.T) {
	opts := Options{
		Topology: smallTopo(), BlockSize: 64e6, Seed: 21,
		AdmissionLimit: 1, ReplanWindow: 2,
	}
	jobs := func() []*job.Job { return admissionJobs(0, 0.1, 0.2) }
	base := mustRun(t, opts, jobs())
	if base.Deferred != 2 {
		t.Fatalf("Deferred = %d, want 2 (scenario must exercise the queue)", base.Deferred)
	}

	// Capture at t=1: job 1 is running, jobs 2 and 3 are parked.
	snap, err := CaptureAt(opts, jobs(), CheckpointTarget{SimTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := snap.State.Runtime
	if st.Admitted != 1 || st.Deferred != 2 || st.MaxAdmissionQueue != 2 {
		t.Fatalf("captured Admitted/Deferred/MaxAdmissionQueue = %d/%d/%d, want 1/2/2",
			st.Admitted, st.Deferred, st.MaxAdmissionQueue)
	}
	if !reflect.DeepEqual(st.AdmissionQueue, []int{2, 3}) {
		t.Fatalf("captured AdmissionQueue = %v, want [2 3]", st.AdmissionQueue)
	}
	if snap.Spec.AdmissionLimit != 1 || snap.Spec.ReplanWindow != 2 {
		t.Fatalf("spec lost overload options: %+v", snap.Spec)
	}

	// Round-trip through the codec, then resume: bit-identical Result.
	raw, err := snapshot.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(decoded, ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, base) {
		t.Fatalf("resumed mid-queue run differs from uninterrupted run:\nresumed: %+v\nbase:    %+v", res, base)
	}
}
