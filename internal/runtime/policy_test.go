package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"corral/internal/job"
	"corral/internal/model"
	"corral/internal/planner"
	"corral/internal/topology"
)

// TestPlanPrioritiesOrderJobs pins two planned jobs to the same single
// rack; the higher-priority one must finish first even if submitted
// second in ID order.
func TestPlanPrioritiesOrderJobs(t *testing.T) {
	topo := topology.Config{
		Racks: 2, MachinesPerRack: 2, SlotsPerMachine: 1,
		NICBandwidth: 10 * gbps, Oversubscription: 5,
	}
	j1, j2 := shuffleJob(1), shuffleJob(2)
	// Hand-built plan: both jobs on rack 0, job 2 at higher priority.
	plan := &planner.Plan{Assignments: map[int]*planner.Assignment{
		1: {JobID: 1, Racks: []int{0}, Priority: 1, EstLatency: 10},
		2: {JobID: 2, Racks: []int{0}, Priority: 0, EstLatency: 10},
	}}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 51,
	}, []*job.Job{j1, j2})
	var c1, c2 float64
	for _, jr := range res.Jobs {
		if jr.ID == 1 {
			c1 = jr.Completion
		} else {
			c2 = jr.Completion
		}
	}
	if c2 >= c1 {
		t.Fatalf("high-priority job finished at %g, after low-priority at %g", c2, c1)
	}
}

// TestDelaySchedulingAchievesLocality compares Yarn-CS with normal
// patience against zero patience: patience must reduce remote map reads
// (visible as cross-rack bytes beyond the writes).
func TestDelaySchedulingAchievesLocality(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job {
		var jobs []*job.Job
		for i := 1; i <= 4; i++ {
			// Map-heavy, shuffle-free jobs isolate the input-read traffic.
			jobs = append(jobs, job.MapReduce(i, "scan", job.Profile{
				InputBytes: 2e9, MapTasks: 32, MapRate: 2e8,
			}))
		}
		return jobs
	}
	patient := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 52}, mk())
	impatient := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 52,
		DelayNodeLocal: 1, DelayRackLocal: 2,
	}, mk())
	if patient.CrossRackBytes >= impatient.CrossRackBytes {
		t.Fatalf("patience did not improve locality: %g vs %g cross-rack bytes",
			patient.CrossRackBytes, impatient.CrossRackBytes)
	}
}

// TestWorkConservationUnderConstraints verifies Corral's cluster scheduler
// is work-conserving: a job constrained to rack 0 cannot leave rack 1's
// slots idle for an unconstrained job.
func TestWorkConservationUnderConstraints(t *testing.T) {
	topo := smallTopo()
	planned := shuffleJob(1)
	adhoc := shuffleJob(2)
	adhoc.AdHoc = true
	adhoc.Recurring = false
	plan := &planner.Plan{Assignments: map[int]*planner.Assignment{
		1: {JobID: 1, Racks: []int{0}, Priority: 0, EstLatency: 10},
	}}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 53,
	}, []*job.Job{planned, adhoc})
	// Both finish; the ad-hoc job is not serialized behind the planned one
	// (it has three other racks all to itself).
	var cPlanned, cAdhoc float64
	for _, jr := range res.Jobs {
		if jr.AdHoc {
			cAdhoc = jr.Completion
		} else {
			cPlanned = jr.Completion
		}
	}
	if cAdhoc > 3*cPlanned {
		t.Fatalf("ad-hoc job starved: %g vs planned %g", cAdhoc, cPlanned)
	}
}

// TestSlotAccountingRestored checks every slot returns to the pool after a
// run with aborts and failures in the mix.
func TestSlotAccountingRestored(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
	rt, err := newRuntime(Options{
		Topology: topo, BlockSize: 64e6, Seed: 54,
		StragglerFraction: 0.3, Speculation: true,
		Failures: []Failure{{At: 1, Machine: 9}},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.run(); err != nil {
		t.Fatal(err)
	}
	for m, free := range rt.freeSlots {
		switch {
		case rt.dead[m] && free != 0:
			t.Fatalf("dead machine %d has %d slots", m, free)
		case !rt.dead[m] && free != topo.SlotsPerMachine:
			t.Fatalf("machine %d ended with %d free slots, want %d", m, free, topo.SlotsPerMachine)
		}
	}
	if rt.runningPlanned != 0 || rt.runningAdhoc != 0 {
		t.Fatalf("queue counters leaked: planned=%d adhoc=%d", rt.runningPlanned, rt.runningAdhoc)
	}
	for m, lst := range rt.running {
		if len(lst) != 0 {
			t.Fatalf("machine %d still tracks %d attempts", m, len(lst))
		}
	}
}

// TestPlannerEstimateTracksSimulation sanity-checks the §4.3 model: the
// planner's estimated makespan for an isolated job should be within a
// small factor of the simulated Corral run.
func TestPlannerEstimateTracksSimulation(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	cm := model.FromTopology(topo)
	plan, err := planner.New(planner.Input{Cluster: cm, Jobs: jobs, Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 55,
	}, jobs)
	est := plan.Makespan
	act := res.Makespan
	ratio := act / est
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("model estimate %g vs simulated %g (ratio %g): model far off", est, act, ratio)
	}
}

// Property: arbitrary job mixes with arbitrary failures, stragglers and
// scheduler choices always terminate with every job complete, no slot
// leaked and non-negative accounting.
func TestQuickRuntimeInvariants(t *testing.T) {
	f := func(seed int64, sched uint8, failPattern uint8, stragglers bool) bool {
		topo := smallTopo()
		rng := rand.New(rand.NewSource(seed))
		var jobs []*job.Job
		n := rng.Intn(5) + 2
		for i := 1; i <= n; i++ {
			j := job.MapReduce(i, "q", job.Profile{
				InputBytes:   float64(rng.Intn(20)+1) * 1e8,
				ShuffleBytes: float64(rng.Intn(30)) * 1e8,
				OutputBytes:  float64(rng.Intn(10)) * 1e8,
				MapTasks:     rng.Intn(12) + 1,
				ReduceTasks:  rng.Intn(8),
				MapRate:      2e8,
				ReduceRate:   2e8,
			})
			j.Arrival = rng.Float64() * 20
			jobs = append(jobs, j)
		}
		kind := Kind(int(sched) % 4)
		var plan *planner.Plan
		if kind == Corral || kind == LocalShuffle {
			var err error
			plan, err = planner.New(planner.Input{
				Cluster: model.FromTopology(topo), Jobs: jobs, Alpha: -1,
			})
			if err != nil {
				return false
			}
		}
		var failures []Failure
		for i := 0; i < int(failPattern%4); i++ {
			failures = append(failures, Failure{
				At:      rng.Float64() * 10,
				Machine: rng.Intn(topo.Machines()),
			})
		}
		opts := Options{
			Topology: topo, Scheduler: kind, Plan: plan, BlockSize: 64e6,
			Seed: seed, Failures: failures,
		}
		if stragglers {
			opts.StragglerFraction = 0.2
			opts.Speculation = true
		}
		res, err := Run(opts, jobs)
		if err != nil {
			return false
		}
		if len(res.Jobs) != n {
			return false
		}
		for _, jr := range res.Jobs {
			if jr.CompletionTime <= 0 || jr.CrossRackBytes < 0 || jr.TaskSeconds <= 0 {
				return false
			}
		}
		return res.Makespan > 0 && res.CrossRackBytes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
