package runtime

// Attrition: task-attempt failure injection, retry/backoff, machine
// blacklisting, application-master restart and DFS corruption handling.
//
// These model the attrition a long-running YARN cluster sees between the
// hard machine failures of failures.go: containers crash (OOM, disk
// hiccups, preemption), whole application masters die and are relaunched
// by the resource manager, and disks silently corrupt block replicas.
//
//   - Task attempts crash with probability TaskFailureProb, rolled per
//     attempt from the runtime's seeded rng. A crashed attempt counts
//     against the task's attempt budget (MaxTaskAttempts, default 4) and
//     re-enters the pending queues after a deterministic exponential
//     backoff: RetryBackoff·2^(k−1) for the k-th crash. Exhausting the
//     budget fails the job terminally, as YARN does.
//   - Every failed attempt also counts against its machine. A machine
//     accumulating BlacklistThreshold failures is blacklisted: it keeps
//     its running work but receives no new attempts and is skipped by the
//     dispatch heartbeat (so delay scheduling does not wait for it).
//     After BlacklistCooldown it rejoins through the same
//     OnMachineRepair hook transient machine recoveries use, with its
//     failure count reset.
//   - AMFailures kill a job's application master: all running attempts
//     are lost and the job stops scheduling until the resource manager
//     relaunches it AMRestartDelay later. The restarted attempt reuses
//     completed map outputs that survive on live machines and recomputes
//     the rest; a stage that lost any map output rewinds to the map phase
//     (the rack-aggregated shuffle cannot be partially re-fed). Rack
//     commitments (allowedRacks, the plan assignment) survive restart —
//     the plan is a property of the job, not of the AM attempt. The
//     MaxAMAttempts-th failure is terminal.
//   - Corruptions flip one replica on a machine to corrupt in the DFS.
//     Detection is read-driven (checksums): replicaClosest skips corrupt
//     copies and hands the block to the repair daemon, whose traffic is
//     counted in Result.RepairBytes like post-failure re-replication.

import (
	"fmt"
	"math"

	"corral/internal/des"
	"corral/internal/dfs"
	"corral/internal/invariants"
	"corral/internal/trace"
)

// AMFailure kills job JobID's application master at a point in simulated
// time. A failure while the job is unsubmitted, already terminal, or
// already restarting is absorbed.
type AMFailure struct {
	At    float64
	JobID int
}

// Corruption silently corrupts one DFS block replica held on Machine at a
// point in simulated time. The replica is chosen deterministically from
// the runtime's seeded rng among blocks that keep at least one clean live
// replica elsewhere (a scrubbed DFS never lets silent corruption eat the
// last copy; modelling that would just wedge the read forever).
type Corruption struct {
	At      float64
	Machine int
}

// probe forwards a lifecycle event to the configured invariant probe.
func (rt *runtime) probe(kind invariants.Kind, machine, jobID int) {
	if rt.opts.Probe == nil {
		return
	}
	rt.opts.Probe.Observe(invariants.Event{
		Time:    float64(rt.sim.Now()),
		Kind:    kind,
		Machine: machine,
		Job:     jobID,
	})
}

// probeAudit reports an external audit failure as a violation event.
func (rt *runtime) probeAudit(err error) {
	if rt.opts.Probe == nil {
		return
	}
	rt.opts.Probe.Observe(invariants.Event{
		Time:    float64(rt.sim.Now()),
		Kind:    invariants.Audit,
		Machine: -1,
		Job:     -1,
		Detail:  err.Error(),
	})
}

// armCrash rolls the injected-crash die for a freshly launched attempt.
// A doomed attempt crashes partway into its nominal compute time; the
// fraction comes from the same seeded rng, so the schedule of crashes is
// a pure function of the seed.
func (rt *runtime) armCrash(tk *runningTask, nominal float64) {
	p := rt.opts.TaskFailureProb
	if p <= 0 {
		return
	}
	crash := rt.rng.Float64() < p
	frac := rt.rng.Float64()
	if !crash {
		return
	}
	if nominal <= 0 {
		nominal = 1
	}
	tk.after(rt, des.Time(frac*nominal), func() { rt.crashAttempt(tk) })
}

// crashAttempt handles one injected attempt crash: the attempt aborts,
// the task's attempt count and the machine's failure count advance, and
// the task either requeues after exponential backoff or — with its budget
// exhausted — fails the whole job.
func (rt *runtime) crashAttempt(tk *runningTask) {
	if tk.done || tk.aborted {
		return
	}
	je := tk.je
	rt.probe(invariants.TaskCrash, tk.machine, je.job.ID)
	role, idx, att := tk.ident()
	rt.tr.TaskCrash(float64(rt.sim.Now()), role, je.job.ID, tk.st.idx, idx, att, tk.machine)
	var attempts int
	if tk.mapT != nil {
		tk.mapT.attempts++
		attempts = tk.mapT.attempts
	} else {
		tk.redT.attempts++
		attempts = tk.redT.attempts
	}
	rt.noteAttemptFailure(tk.machine)
	if attempts >= rt.opts.MaxTaskAttempts {
		rt.abortTask(tk, true, -1)
		rt.failJob(je, fmt.Sprintf("task attempt budget (%d) exhausted", rt.opts.MaxTaskAttempts))
		return
	}
	backoff := rt.opts.RetryBackoff * math.Pow(2, float64(attempts-1))
	rt.tr.TaskBackoff(float64(rt.sim.Now()), role, je.job.ID, tk.st.idx, idx, attempts, backoff)
	rt.abortTask(tk, true, des.Time(backoff))
}

// noteAttemptFailure charges a failed attempt to its machine and
// blacklists it at the threshold.
func (rt *runtime) noteAttemptFailure(m int) {
	if rt.opts.BlacklistThreshold < 0 {
		return
	}
	rt.machineFailures[m]++
	if rt.blacklisted[m] || rt.dead[m] || rt.machineFailures[m] < rt.opts.BlacklistThreshold {
		return
	}
	rt.blacklisted[m] = true
	rt.probe(invariants.Blacklist, m, -1)
	rt.tr.Blacklist(float64(rt.sim.Now()), m)
	rt.sim.After(des.Time(rt.opts.BlacklistCooldown), func() { rt.unblacklist(m) })
}

// unblacklist returns a machine to the slot pool after its cooldown,
// through the same repair hook transient machine recoveries use.
func (rt *runtime) unblacklist(m int) {
	if !rt.blacklisted[m] {
		return
	}
	rt.blacklisted[m] = false
	rt.machineFailures[m] = 0
	rt.probe(invariants.Unblacklist, m, -1)
	rt.tr.Unblacklist(float64(rt.sim.Now()), m)
	if rt.dead[m] {
		// Died during the cooldown: recoverMachine re-admits it (and
		// fires the repair hook) if the failure was transient.
		return
	}
	if rt.opts.OnMachineRepair != nil {
		rt.opts.OnMachineRepair(m, float64(rt.sim.Now()))
	}
	rt.requestDispatch()
}

// failJob marks a job terminally failed, aborting its running attempts.
func (rt *runtime) failJob(je *jobExec, reason string) {
	if je.done() {
		return
	}
	je.failed = true
	je.failReason = reason
	je.completion = float64(rt.sim.Now())
	rt.active--
	rt.failedJobs++
	rt.abortJobAttempts(je)
	rt.probe(invariants.JobFail, -1, je.job.ID)
	rt.tr.JobFail(float64(rt.sim.Now()), je.job.ID, reason)
	rt.onJobTerminal(je)
	rt.requestDispatch()
}

// abortJobAttempts kills every running attempt of the job without
// requeueing the work (the caller is failing or restarting the job).
// Machines are scanned in index order for determinism.
func (rt *runtime) abortJobAttempts(je *jobExec) {
	for m := 0; m < len(rt.freeSlots); m++ {
		lst := rt.running[m]
		if len(lst) == 0 {
			continue
		}
		attempts := append([]*runningTask(nil), lst...)
		for _, tk := range attempts {
			if tk.je == je {
				rt.abortTask(tk, true, -1)
			}
		}
	}
}

// failAM handles one scheduled application-master failure.
func (rt *runtime) failAM(jobID int) {
	var je *jobExec
	for _, cand := range rt.jobs {
		if cand.job.ID == jobID {
			je = cand
			break
		}
	}
	if je == nil || !je.submitted || je.done() || je.amDown {
		return
	}
	rt.probe(invariants.AMFail, -1, jobID)
	rt.tr.AMFail(float64(rt.sim.Now()), jobID)
	je.amFailures++
	if je.amFailures >= rt.opts.MaxAMAttempts {
		rt.failJob(je, fmt.Sprintf("AM attempt budget (%d) exhausted", rt.opts.MaxAMAttempts))
		return
	}
	je.amDown = true
	je.amAttempt++ // voids backoff requeues armed under the dead AM
	rt.abortJobAttempts(je)
	rt.sim.After(des.Time(rt.opts.AMRestartDelay), func() { rt.restartJob(je) })
}

// restartJob relaunches a job's application master: stages are rebuilt
// around whatever completed work survives on live machines, and the job
// resumes scheduling. Placement state (allowedRacks, the plan assignment)
// is untouched — Corral's rack commitments outlive the AM attempt.
func (rt *runtime) restartJob(je *jobExec) {
	if je.done() {
		return
	}
	je.amDown = false
	je.skips = 0
	for _, st := range je.stages {
		rt.recoverStage(st)
	}
	rt.probe(invariants.AMRestart, -1, je.job.ID)
	rt.tr.AMRestart(float64(rt.sim.Now()), je.job.ID)
	rt.requestDispatch()
}

// recoverStage rebuilds one stage's execution state for a restarted AM.
// Completed map outputs on live machines are kept (the restarted AM
// learns of them from the recovered job history, as YARN's
// yarn.app.mapreduce.am.job.recovery does); everything else returns to
// the pending queues with fresh attempt budgets. A reducing stage that
// lost any map output rewinds to the map phase: the rack-aggregated
// shuffle model cannot re-fetch individual partitions, so its reduces
// restart too (finishMapsPhase rebuilds them when the maps are redone).
func (rt *runtime) recoverStage(st *stageExec) {
	if st.phase == stageWaiting || st.phase == stageDone {
		return
	}
	st.byMachine = make(map[int][]*mapTask)
	st.byRack = make(map[int][]*mapTask)
	st.anyPref, st.anywhere = nil, nil
	st.pendingMapCount = 0
	st.mapsDone = 0
	st.mapsOnMachine = make(map[int]int)
	for i := range st.mapsOnRack {
		st.mapsOnRack[i] = 0
	}
	lostMaps := false
	for _, t := range st.maps {
		if t.doneOn >= 0 && !rt.dead[t.doneOn] {
			st.mapsDone++
			st.mapsOnMachine[t.doneOn]++
			st.mapsOnRack[rt.cluster.RackOf(t.doneOn)]++
			continue
		}
		if t.doneOn >= 0 {
			lostMaps = true
		}
		t.doneOn = -1
		t.attempts = 0
		t.speculated = false
		rt.requeueMap(st, t)
	}
	if st.phase != stageReducing {
		return
	}
	if lostMaps || st.pendingMapCount > 0 {
		// Shuffle input is gone: rewind to mapping. Reduce state is
		// rebuilt by finishMapsPhase once the maps are whole again.
		st.phase = stageMapping
		st.reduces = nil
		st.reduceQ = nil
		st.reducesDone = 0
		st.reduceMachines = nil
		return
	}
	// All map outputs intact: keep completed reduces on live machines,
	// re-pend the rest (reduceMachines is rebuilt in task-index order,
	// which is deterministic even though it differs from completion
	// order).
	st.reduceQ = st.reduceQ[:0]
	st.reducesDone = 0
	st.reduceMachines = st.reduceMachines[:0]
	for _, rT := range st.reduces {
		if rT.doneOn >= 0 && !rt.dead[rT.doneOn] {
			st.reducesDone++
			st.reduceMachines = append(st.reduceMachines, rT.doneOn)
			continue
		}
		rT.doneOn = -1
		rT.attempts = 0
		rT.speculated = false
		st.reduceQ = append(st.reduceQ, rT)
		rt.tr.TaskQueued(float64(rt.sim.Now()), trace.RoleReduce, st.je.job.ID, st.idx, rT.index, rT.attempts)
	}
}

// applyCorruption handles one scheduled Corruption event: a block on the
// machine loses one replica to silent corruption. Blocks whose last clean
// live copy would be destroyed are not eligible.
func (rt *runtime) applyCorruption(c Corruption) {
	if rt.dead[c.Machine] {
		return
	}
	var candidates []*dfs.Block
	for _, b := range rt.store.BlocksOn(c.Machine) {
		if rt.store.ReplicaCorrupt(b, c.Machine) {
			continue
		}
		clean := 0
		for _, r := range b.Replicas {
			if r != c.Machine && !rt.dead[r] && !rt.store.ReplicaCorrupt(b, r) {
				clean++
			}
		}
		if clean >= 1 {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return
	}
	b := candidates[rt.rng.Intn(len(candidates))]
	if rt.store.CorruptReplica(b, c.Machine) {
		rt.probe(invariants.Corruption, c.Machine, -1)
	}
}

// detectCorruption is the read-side checksum path: a reader that skipped
// a corrupt replica reports the block to the re-replication daemon, which
// copies a clean replica over the bad one (repair.go).
func (rt *runtime) detectCorruption(b *dfs.Block) {
	if rt.opts.DisableReReplication {
		return
	}
	rt.scheduleRepairs([]*dfs.Block{b})
}

// validateAttrition checks the attrition-related options at startup.
func validateAttrition(opts Options, machines int) error {
	if opts.TaskFailureProb < 0 || opts.TaskFailureProb > 1 {
		return fmt.Errorf("runtime: TaskFailureProb %g outside [0,1]", opts.TaskFailureProb)
	}
	for _, af := range opts.AMFailures {
		if af.At < 0 {
			return fmt.Errorf("runtime: AM failure at negative time %g", af.At)
		}
	}
	for _, c := range opts.Corruptions {
		if c.Machine < 0 || c.Machine >= machines {
			return fmt.Errorf("runtime: corruption targets machine %d, out of range", c.Machine)
		}
		if c.At < 0 {
			return fmt.Errorf("runtime: corruption at negative time %g", c.At)
		}
	}
	return nil
}
