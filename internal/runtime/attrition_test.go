package runtime

import (
	"reflect"
	"strings"
	"testing"

	"corral/internal/invariants"
	"corral/internal/job"
)

// countingProbe forwards events to an invariant monitor while counting
// per-kind occurrences, so tests can assert lifecycle behaviour.
type countingProbe struct {
	mon   *invariants.Monitor
	kinds map[invariants.Kind]int
}

func newCountingProbe(machines, slots int) *countingProbe {
	return &countingProbe{
		mon:   invariants.NewMonitor(machines, slots),
		kinds: make(map[invariants.Kind]int),
	}
}

func (p *countingProbe) Observe(e invariants.Event) {
	p.kinds[e.Kind]++
	p.mon.Observe(e)
}

func attritionOpts(seed int64) Options {
	return Options{
		Topology:          smallTopo(),
		BlockSize:         64e6,
		Seed:              seed,
		TaskFailureProb:   0.25,
		RetryBackoff:      0.5,
		BlacklistCooldown: 10,
	}
}

// Retried attempts must converge: with a moderate crash rate every job
// completes, crashes demonstrably happened, and the invariant monitor
// stays silent.
func TestAttritionRetriesComplete(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	opts := attritionOpts(41)
	opts.Probe = probe
	jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
	jobs[1].Arrival = 5
	res := mustRun(t, opts, jobs)
	for _, jr := range res.Jobs {
		if jr.Failed || jr.CompletionTime <= 0 {
			t.Fatalf("job %d failed=%v completion=%g under retryable attrition",
				jr.ID, jr.Failed, jr.CompletionTime)
		}
	}
	if probe.kinds[invariants.TaskCrash] == 0 {
		t.Fatal("no task crashes injected at TaskFailureProb=0.25 (vacuous test)")
	}
	if !probe.mon.Ended() {
		t.Fatal("monitor never saw SimEnd")
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("%d invariant violations in a retried run: %v", n, probe.mon.Violations())
	}
	// Degradation sanity: the same workload without crashes is faster.
	clean := attritionOpts(41)
	clean.TaskFailureProb = 0
	mkClean := []*job.Job{shuffleJob(1), shuffleJob(2)}
	mkClean[1].Arrival = 5
	cleanRes := mustRun(t, clean, mkClean)
	if res.Makespan < cleanRes.Makespan {
		t.Fatalf("attrition run (%g) finished before the clean run (%g)",
			res.Makespan, cleanRes.Makespan)
	}
}

// Two runs with the same seed must be bit-identical — the full attrition
// machinery (crash rolls, backoff timers, blacklisting, AM restart,
// corruption events) draws only from the seeded rng. A different seed
// must produce a different result, or the replay test proves nothing.
func TestAttritionDeterministicReplay(t *testing.T) {
	mk := func() []*job.Job {
		jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
		jobs[1].Arrival = 3
		return jobs
	}
	opts := attritionOpts(7)
	opts.AMFailures = []AMFailure{{At: 6, JobID: 1}}
	opts.Corruptions = []Corruption{{At: 0.5, Machine: 2}, {At: 1.0, Machine: 9}}
	a := mustRun(t, opts, mk())
	b := mustRun(t, opts, mk())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed attrition runs diverged:\na: %+v\nb: %+v", a, b)
	}
	opts2 := opts
	opts2.Seed = 8
	c := mustRun(t, opts2, mk())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results (replay test is vacuous)")
	}
}

// Exhausting the per-task attempt budget must fail the job terminally —
// not deadlock the simulation — and the failure must be a legal terminal
// state for the invariant monitor.
func TestAttemptBudgetFailsJob(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	opts := attritionOpts(5)
	opts.TaskFailureProb = 1 // every attempt crashes
	opts.MaxTaskAttempts = 3
	opts.Probe = probe
	res := mustRun(t, opts, []*job.Job{shuffleJob(1)})
	jr := res.Jobs[0]
	if !jr.Failed || res.FailedJobs != 1 {
		t.Fatalf("failed=%v failedJobs=%d, want terminal failure", jr.Failed, res.FailedJobs)
	}
	if !strings.Contains(jr.FailReason, "task attempt budget") {
		t.Fatalf("FailReason = %q, want attempt-budget failure", jr.FailReason)
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("terminal job failure raised %d violations: %v", n, probe.mon.Violations())
	}
}

// Machines that accumulate failures must be blacklisted out of the slot
// pool and re-admitted through the repair hook after the cooldown.
func TestBlacklistingAndRejoin(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	var repaired []int
	opts := attritionOpts(11)
	opts.TaskFailureProb = 0.5
	opts.BlacklistThreshold = 2
	opts.BlacklistCooldown = 5
	opts.Probe = probe
	opts.OnMachineRepair = func(m int, at float64) { repaired = append(repaired, m) }
	res := mustRun(t, opts, []*job.Job{shuffleJob(1), shuffleJob(2)})
	if res.FailedJobs != 0 {
		t.Fatalf("%d jobs failed; want all complete despite blacklisting", res.FailedJobs)
	}
	bl := probe.kinds[invariants.Blacklist]
	if bl == 0 {
		t.Fatal("no machine was blacklisted at threshold 2 with 50% crashes (vacuous test)")
	}
	if probe.kinds[invariants.Unblacklist] != bl {
		t.Fatalf("blacklist/unblacklist events %d/%d, want pairs",
			bl, probe.kinds[invariants.Unblacklist])
	}
	if len(repaired) != bl {
		t.Fatalf("repair hook fired %d times for %d blacklistings", len(repaired), bl)
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("blacklisting run raised %d violations: %v", n, probe.mon.Violations())
	}
}

// An AM failure mid-run must restart the job, reuse surviving map
// outputs, and still complete; the blast radius is bounded (the job is
// slower, not wedged). Rack commitments must survive the restart.
func TestAMRestartCompletes(t *testing.T) {
	topo := smallTopo()
	probe := newCountingProbe(topo.Machines(), topo.SlotsPerMachine)
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 13}, mk())

	opts := Options{Topology: topo, BlockSize: 64e6, Seed: 13, Probe: probe}
	opts.AMFailures = []AMFailure{{At: clean.Makespan / 2, JobID: 1}}
	rt, err := newRuntime(opts, mk())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	if probe.kinds[invariants.AMFail] != 1 || probe.kinds[invariants.AMRestart] != 1 {
		t.Fatalf("AMFail/AMRestart events = %d/%d, want 1/1",
			probe.kinds[invariants.AMFail], probe.kinds[invariants.AMRestart])
	}
	jr := res.Jobs[0]
	if jr.Failed || jr.CompletionTime <= 0 {
		t.Fatalf("job failed=%v completion=%g after AM restart", jr.Failed, jr.CompletionTime)
	}
	if res.Makespan < clean.Makespan {
		t.Fatalf("restarted run (%g) beat the clean run (%g)", res.Makespan, clean.Makespan)
	}
	// Restart preserved completed map outputs: the stage did not rewind
	// to recompute everything from scratch unless outputs were lost, and
	// no machine died here — so the map phase must not have doubled.
	st := rt.jobs[0].stages[0]
	if st.mapsDone != st.profile.MapTasks || st.reducesDone != st.profile.ReduceTasks {
		t.Fatalf("maps/reduces done = %d/%d, want %d/%d",
			st.mapsDone, st.reducesDone, st.profile.MapTasks, st.profile.ReduceTasks)
	}
	if n := probe.mon.ViolationCount(); n != 0 {
		t.Fatalf("AM restart raised %d violations: %v", n, probe.mon.Violations())
	}
}

// The MaxAMAttempts-th AM failure is terminal.
func TestAMBudgetFailsJob(t *testing.T) {
	opts := Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 17, MaxAMAttempts: 2, AMRestartDelay: 0.3}
	opts.AMFailures = []AMFailure{{At: 0.2, JobID: 1}, {At: 0.8, JobID: 1}}
	res := mustRun(t, opts, []*job.Job{shuffleJob(1)})
	jr := res.Jobs[0]
	if !jr.Failed || !strings.Contains(jr.FailReason, "AM attempt budget") {
		t.Fatalf("failed=%v reason=%q, want AM-budget failure", jr.Failed, jr.FailReason)
	}
}

// Corrupted replicas are checksum-detected at read time: the read fails
// over to a clean copy and the repair daemon restores the replica, with
// traffic accounted in RepairBytes.
func TestCorruptionReadFailoverAndRepair(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job {
		j := shuffleJob(1)
		j.Arrival = 1
		return []*job.Job{j}
	}
	rt, err := newRuntime(Options{Topology: topo, BlockSize: 64e6, Seed: 19}, mk())
	if err != nil {
		t.Fatal(err)
	}
	input, ok := rt.store.Open("job1-stage0-input")
	if !ok || len(input.Blocks) == 0 {
		t.Fatal("input file missing")
	}
	// Corrupt the primary replica of every input block before the job
	// arrives: the node-local-biased scheduler is certain to read at
	// least one of them.
	corrupted := 0
	for i := range input.Blocks {
		b := &input.Blocks[i]
		if rt.store.CorruptReplica(b, b.Replicas[0]) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no replica corrupted (vacuous test)")
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.Failed || jr.CompletionTime <= 0 {
		t.Fatalf("job failed=%v completion=%g reading around corruption", jr.Failed, jr.CompletionTime)
	}
	if res.RepairBytes <= 0 {
		t.Fatal("no repair traffic after corrupt replicas were read")
	}
	if got := rt.store.CorruptReplicas(); got >= corrupted {
		t.Fatalf("%d corrupt replicas remain of %d (none repaired)", got, corrupted)
	}
}

// vacuityProbe deliberately lies to the monitor — it swallows every
// TaskFinish and TaskAbort — to prove the monitor can fail: the slot
// conservation invariant must fire on an otherwise healthy run.
type vacuityProbe struct{ mon *invariants.Monitor }

func (p *vacuityProbe) Observe(e invariants.Event) {
	if e.Kind == invariants.TaskFinish || e.Kind == invariants.TaskAbort {
		return
	}
	p.mon.Observe(e)
}

func TestMonitorAntiVacuity(t *testing.T) {
	topo := smallTopo()
	probe := &vacuityProbe{mon: invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)}
	mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 23, Probe: probe},
		[]*job.Job{shuffleJob(1)})
	if probe.mon.ViolationCount() == 0 {
		t.Fatal("monitor saw only task starts yet reported no slot violation — it cannot fail")
	}
}
