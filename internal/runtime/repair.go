package runtime

// Re-replication daemon: when a machine dies, blocks that held a replica
// there are copied from a surviving replica to a new machine chosen by
// dfs.PlanRepairs (restoring the 2+1 rack spread). Each repair is a real
// simulated flow, so repair traffic contends with job traffic on the same
// links and shows up in the netsim byte accounting; completed repairs are
// committed back into the store so locality and load accounting follow the
// moved replica.

import (
	"corral/internal/dfs"
	"corral/internal/netsim"
)

// repairKey identifies one block slot being re-replicated.
type repairKey struct {
	blk  *dfs.Block
	slot int
}

// repairOp is one in-flight re-replication copy.
type repairOp struct {
	rep      dfs.Repair
	flow     *netsim.Flow
	done     bool
	canceled bool
}

// onMachineLost reacts to a machine death for the repair daemon: in-flight
// repairs reading from or writing to the dead machine are canceled and
// re-planned, and every block with a replica on it is queued for repair.
// Iteration is over the append-ordered repairList, never the map, so the
// cancel/restart order is deterministic.
func (rt *runtime) onMachineLost(m int) {
	if rt.opts.DisableReReplication {
		return
	}
	var affected []*dfs.Block
	for _, op := range rt.repairList {
		if op.done || op.canceled {
			continue
		}
		if op.rep.Src == m || op.rep.Dst == m {
			op.canceled = true
			rt.net.Cancel(op.flow)
			delete(rt.repairs, repairKey{op.rep.Block, op.rep.Slot})
			affected = append(affected, op.rep.Block)
		}
	}
	rt.scheduleRepairs(append(affected, rt.store.BlocksOn(m)...))
}

// scheduleRepairs plans and starts repair flows for the given blocks
// (duplicates are fine: slots already being repaired are skipped).
func (rt *runtime) scheduleRepairs(blocks []*dfs.Block) {
	started := make(map[*dfs.Block]bool, len(blocks))
	for _, b := range blocks {
		if started[b] {
			continue
		}
		started[b] = true
		busy := func(slot int) (int, bool) {
			if op, ok := rt.repairs[repairKey{b, slot}]; ok {
				return op.rep.Dst, true
			}
			return 0, false
		}
		for _, rep := range rt.store.PlanRepairs(b, busy) {
			rt.startRepair(rep)
		}
	}
}

// startRepair launches one re-replication flow. Repairs are unattributed
// background traffic (JobID -1, no coflow) — they share links with job
// flows but are not charged to any job.
func (rt *runtime) startRepair(rep dfs.Repair) {
	k := repairKey{rep.Block, rep.Slot}
	op := &repairOp{rep: rep}
	rt.repairs[k] = op
	rt.repairList = append(rt.repairList, op)
	rt.tr.RepairStart(float64(rt.sim.Now()), rep.Src, rep.Dst, rep.Block.Size)
	op.flow = rt.net.Start(rep.Src, rep.Dst, rep.Block.Size, 0, -1, func(*netsim.Flow) {
		if op.canceled {
			return
		}
		op.done = true
		delete(rt.repairs, k)
		rt.store.CommitRepair(op.rep)
		rt.repairBytes += op.rep.Block.Size
		rt.lastRepairDone = float64(rt.sim.Now())
		rt.tr.RepairCommit(float64(rt.sim.Now()), op.rep.Src, op.rep.Dst, op.rep.Block.Size)
	})
}
