package runtime

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"corral/internal/job"
	"corral/internal/snapshot"
	"corral/internal/trace"
)

// snapOpts is a fault-heavy configuration: machine failure with repair
// traffic, a degraded rack link, stragglers, task crashes and speculation
// all active, so a snapshot has to carry every state category at once.
func snapOpts(seed int64) Options {
	return Options{
		Topology:          smallTopo(),
		BlockSize:         64e6,
		Seed:              seed,
		TaskFailureProb:   0.1,
		RetryBackoff:      0.5,
		BlacklistCooldown: 10,
		StragglerFraction: 0.1,
		StragglerSlowdown: 2,
		Speculation:       true,
		Failures:          []Failure{{At: 5, Machine: 3, Downtime: 40}},
		LinkFaults:        []LinkFault{{At: 8, Rack: 1, Factor: 0.25}},
	}
}

func snapJobs() []*job.Job {
	j1, j2 := shuffleJob(1), shuffleJob(2)
	j2.Arrival = 6
	return []*job.Job{j1, j2}
}

// tracedRun runs to completion with a tracer attached and returns the
// result plus the trace's JSONL bytes.
func tracedRun(t *testing.T, opts Options, jobs []*job.Job) (*Result, []byte) {
	t.Helper()
	c := trace.NewCollector()
	opts.Trace = c.NewRun("snap-eq")
	res, err := Run(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSnapshotResumeEquivalence is the core crash-resume contract: capture
// mid-flight, tear the run down, restore from the snapshot, and the
// resumed run's Result and full trace must be bit-identical to an
// uninterrupted run under the same seed.
func TestSnapshotResumeEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 99} {
		opts := snapOpts(seed)
		base, baseTrace := tracedRun(t, opts, snapJobs())
		if base.Events < 100 {
			t.Fatalf("seed %d: only %d events; run too small to snapshot meaningfully", seed, base.Events)
		}
		for _, frac := range []float64{0.25, 0.5, 0.8} {
			idx := uint64(float64(base.Events) * frac)
			snap, err := CaptureAt(snapOpts(seed), snapJobs(), CheckpointTarget{EventIndex: idx})
			if err != nil {
				t.Fatalf("seed %d idx %d: capture: %v", seed, idx, err)
			}
			if snap.Meta.EventIndex != idx {
				t.Fatalf("seed %d: Meta.EventIndex = %d, want %d", seed, snap.Meta.EventIndex, idx)
			}
			// Round-trip through the codec so the equivalence claim covers
			// the serialized form, not just the in-memory struct.
			raw, err := snapshot.Encode(snap)
			if err != nil {
				t.Fatalf("seed %d idx %d: encode: %v", seed, idx, err)
			}
			decoded, err := snapshot.Decode(raw)
			if err != nil {
				t.Fatalf("seed %d idx %d: decode: %v", seed, idx, err)
			}
			c := trace.NewCollector()
			mon := newCountingProbe(opts.Topology.Machines(), opts.Topology.SlotsPerMachine)
			res, err := Resume(decoded, ResumeOptions{Trace: c.NewRun("snap-eq"), Probe: mon})
			if err != nil {
				t.Fatalf("seed %d idx %d: resume: %v", seed, idx, err)
			}
			if n := len(mon.mon.Violations()); n != 0 {
				t.Fatalf("seed %d idx %d: resumed run raised %d invariant violations: %v",
					seed, idx, n, mon.mon.Violations())
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("seed %d idx %d: resumed Result differs from uninterrupted run:\nresumed: %+v\nbase:    %+v",
					seed, idx, res, base)
			}
			var buf bytes.Buffer
			if err := c.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), baseTrace) {
				t.Fatalf("seed %d idx %d: resumed trace differs from uninterrupted run (%d vs %d bytes)",
					seed, idx, buf.Len(), len(baseTrace))
			}
		}
	}
}

// TestSnapshotSimTimeTarget: a SimTime target captures at the first event
// boundary reaching that time, and Meta records the event-exact position.
func TestSnapshotSimTimeTarget(t *testing.T) {
	snap, err := CaptureAt(snapOpts(7), snapJobs(), CheckpointTarget{SimTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.SimTime < 10 {
		t.Fatalf("captured at t=%g, want >= 10", snap.Meta.SimTime)
	}
	if snap.Meta.EventIndex == 0 {
		t.Fatal("Meta.EventIndex not recorded for SimTime target")
	}
	if _, err := Resume(snap, ResumeOptions{}); err != nil {
		t.Fatalf("resume from SimTime capture: %v", err)
	}
}

// TestSnapshotTargetPastEnd: a target the run never reaches is an error,
// not a silent no-op.
func TestSnapshotTargetPastEnd(t *testing.T) {
	base, err := Run(snapOpts(7), snapJobs())
	if err != nil {
		t.Fatal(err)
	}
	_, err = CaptureAt(snapOpts(7), snapJobs(), CheckpointTarget{EventIndex: base.Events + 1000})
	if err == nil || !strings.Contains(err.Error(), "not reached") {
		t.Fatalf("capture past sim end: err = %v, want 'not reached'", err)
	}
	_, err = CaptureAt(snapOpts(7), snapJobs(), CheckpointTarget{SimTime: 1e12})
	if err == nil || !strings.Contains(err.Error(), "not reached") {
		t.Fatalf("SimTime capture past sim end: err = %v, want 'not reached'", err)
	}
}

// TestSnapshotRejectsUnserializableHooks: a run holding an
// OnMachineRepair closure cannot be snapshotted — the error arrives
// before the simulation starts.
func TestSnapshotRejectsUnserializableHooks(t *testing.T) {
	opts := snapOpts(7)
	opts.OnMachineRepair = func(machine int, at float64) {}
	_, err := CaptureAt(opts, snapJobs(), CheckpointTarget{EventIndex: 50})
	if err == nil || !strings.Contains(err.Error(), "OnMachineRepair") {
		t.Fatalf("err = %v, want OnMachineRepair rejection", err)
	}
}

// leafPaths walks a State and returns the reflection path of every leaf
// field (bool/number/string), as a sequence of field-name / index steps.
func leafPaths(v reflect.Value, prefix []string, out *[][]string) {
	switch v.Kind() {
	case reflect.Pointer:
		if !v.IsNil() {
			leafPaths(v.Elem(), prefix, out)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			leafPaths(v.Field(i), append(append([]string(nil), prefix...), t.Field(i).Name), out)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			leafPaths(v.Index(i), append(append([]string(nil), prefix...), "#"+itoa(i)), out)
		}
	default:
		*out = append(*out, append([]string(nil), prefix...))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// navigate resolves a leaf path against a State and returns the
// addressable leaf value.
func navigate(v reflect.Value, path []string) reflect.Value {
	for _, step := range path {
		for v.Kind() == reflect.Pointer {
			v = v.Elem()
		}
		if step[0] == '#' {
			i := 0
			for _, c := range step[1:] {
				i = i*10 + int(c-'0')
			}
			v = v.Index(i)
		} else {
			v = v.FieldByName(step)
		}
	}
	for v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	return v
}

// corrupt flips a single leaf value to something different but
// schema-valid.
func corrupt(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		panic("corrupt: unhandled kind " + v.Kind().String())
	}
}

// TestSnapshotRestoreAuditCatchesCorruption is the anti-vacuity proof for
// the restore audit: corrupting any single State field — after decode, so
// section checksums cannot save us — must fail Resume and raise an
// invariant-monitor violation. Every leaf field of the captured State is
// enumerated; a deterministic spread of them (always covering all five
// state sections) is corrupted one at a time.
func TestSnapshotRestoreAuditCatchesCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep is slow in -short mode")
	}
	snap, err := CaptureAt(snapOpts(7), snapJobs(), CheckpointTarget{SimTime: 12})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := snapshot.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	var paths [][]string
	leafPaths(reflect.ValueOf(&snap.State), nil, &paths)
	if len(paths) < 100 {
		t.Fatalf("only %d leaf fields captured; state export looks hollow", len(paths))
	}
	sections := map[string]bool{}
	for _, p := range paths {
		sections[p[0]] = true
	}
	for _, want := range []string{"DES", "RNGDraws", "Runtime", "Net", "DFS"} {
		if !sections[want] {
			t.Fatalf("no leaf fields under State.%s; corruption sweep would not cover it", want)
		}
	}
	// Spread ~60 cases evenly over all leaves so every section and most
	// field kinds get hit without running thousands of replays.
	stride := len(paths) / 60
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(paths); i += stride {
		path := paths[i]
		name := strings.Join(path, ".")
		mutant, err := snapshot.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		leaf := navigate(reflect.ValueOf(&mutant.State), path)
		before := leaf.Interface()
		corrupt(leaf)
		mon := newCountingProbe(snap.Spec.Topology.Machines(), snap.Spec.Topology.SlotsPerMachine)
		_, err = Resume(mutant, ResumeOptions{Probe: mon})
		if err == nil {
			t.Errorf("State.%s: corrupted %v -> %v yet Resume succeeded (restore audit is vacuous)",
				name, before, leaf.Interface())
			continue
		}
		if !strings.Contains(err.Error(), "restore audit") {
			t.Errorf("State.%s: err = %v, want restore-audit error", name, err)
		}
		if len(mon.mon.Violations()) == 0 {
			t.Errorf("State.%s: restore audit failed without an invariant-monitor violation", name)
		}
	}
}
