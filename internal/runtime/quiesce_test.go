package runtime

import (
	"testing"

	"corral/internal/job"
)

// TestQuiesceTimeFoldsRepairTail pins the Makespan/QuiesceTime split: a
// machine failure after the last job completion leaves the cluster busy
// re-replicating, which must extend QuiesceTime but never Makespan (the
// paper's job-facing metric excludes repair traffic).
func TestQuiesceTimeFoldsRepairTail(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }

	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 61}, mk())
	if clean.QuiesceTime != clean.Makespan {
		t.Fatalf("no repairs ran, yet QuiesceTime %g != Makespan %g",
			clean.QuiesceTime, clean.Makespan)
	}

	// Kill a machine well after the job is done: its replicas are
	// re-replicated by flows that are pure repair tail.
	late := clean.Makespan + 5
	res := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 61,
		Failures: []Failure{{At: late, Machine: 0}},
	}, mk())
	if res.Makespan != clean.Makespan {
		t.Fatalf("post-completion failure changed Makespan: %g vs %g",
			res.Makespan, clean.Makespan)
	}
	if res.RepairBytes == 0 {
		t.Fatal("late failure triggered no re-replication; premise gone")
	}
	if res.QuiesceTime <= late {
		t.Fatalf("QuiesceTime %g does not cover the repair tail after the failure at %g",
			res.QuiesceTime, late)
	}

	// With the repair daemon off the tail disappears again.
	off := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 61,
		Failures:             []Failure{{At: late, Machine: 0}},
		DisableReReplication: true,
	}, mk())
	if off.QuiesceTime != off.Makespan {
		t.Fatalf("repairs disabled, yet QuiesceTime %g != Makespan %g",
			off.QuiesceTime, off.Makespan)
	}
}
