package runtime

// Failure-triggered replanning (Options.ReplanOnFailure): when a planned
// job loses a majority of its rack set's machines, or one of its racks is
// isolated by an uplink failure, the runtime re-invokes the offline
// planner instead of only dropping constraints. Running jobs with intact
// constraints enter the replan as commitments (their racks are busy until
// their planned completion), and racks currently blocked by faults are
// committed until their known recovery time — fault schedules are declared
// up front, so recovery times are computable. Affected and not-yet-started
// planned jobs receive fresh rack sets and priorities.
//
// Constraint dropping remains the safety net: failMachine/applyLinkFault
// drop an affected job's constraints before calling into here, so if the
// replan errors out — or hands a job racks that are themselves unusable —
// the job still runs unconstrained, exactly as in the paper's §3.1
// fallback.

import (
	"math"
	"sort"

	"corral/internal/des"
	"corral/internal/invariants"
	"corral/internal/model"
	"corral/internal/planner"
)

// farFuture stands in for "no scheduled recovery" when committing blocked
// racks: effectively never available.
const farFuture = 1e15

// replanOnFailure re-runs the planner at the current simulated time.
func (rt *runtime) replanOnFailure() {
	if rt.opts.Scheduler != Corral || rt.opts.Plan == nil {
		return
	}
	now := float64(rt.sim.Now())

	var commitments []planner.Commitment
	for r := 0; r < rt.cluster.Config.Racks; r++ {
		if until := rt.rackBlockedUntil(r, now); until > now {
			commitments = append(commitments, planner.Commitment{Racks: []int{r}, Until: until})
		}
	}

	var replanJobs []*jobExec
	in := planner.Input{
		Cluster:   model.FromTopology(rt.opts.Topology),
		Alpha:     -1,
		Objective: rt.opts.Plan.Objective,
	}
	for _, je := range rt.jobs {
		if je.done() || je.assignment == nil {
			continue
		}
		if je.allowedRacks != nil {
			// Unaffected by the fault: keep it where it was planned and
			// commit its racks until the planned completion (or now, if
			// already overdue). Only jobs whose constraints were actually
			// dropped are replanned — re-placing healthy jobs would let one
			// fault perturb the whole schedule.
			until := je.assignment.End()
			if until < now {
				until = now
			}
			commitments = append(commitments, planner.Commitment{
				Racks: append([]int(nil), je.allowedRacks...),
				Until: until,
			})
			continue
		}
		// Constraints dropped by the fault: replan. Replan clamps stale
		// arrivals on its own copies, so the runtime's job records keep
		// their absolute arrivals for metrics.
		in.Jobs = append(in.Jobs, je.job)
		replanJobs = append(replanJobs, je)
	}
	if len(in.Jobs) == 0 {
		return
	}
	in.Trace = rt.tr
	in.TraceTime = now

	budget := rt.opts.PlannerBudget
	if budget <= 0 {
		// Legacy behavior: the full replan is instantaneous and free.
		rt.replans++
		rt.tr.Replan(now, len(in.Jobs))
		rt.probe(invariants.Replan, -1, -1)
		next, err := planner.Replan(in, now, commitments)
		if err != nil {
			return // constraint-drop fallback already applied
		}
		rt.adoptReplan(replanJobs, next)
		return
	}

	// Budgeted planning: charge the deterministic cost model and walk the
	// fallback chain — full plan → incremental replan → greedy placement —
	// until a tier fits the budget. Planner-invoking tiers compute their
	// plan against the state at now+cost (that is when it lands) and adopt
	// it then; cluster conditions may shift meanwhile, so adoptReplan
	// re-validates every rack set at adoption time.
	J, R := len(in.Jobs), rt.cluster.Config.Racks
	S := 0
	for _, j := range in.Jobs {
		S += len(j.Stages)
	}
	if cost := planner.CostFull(J, R, S); cost <= budget {
		rt.degradations.Full++
		rt.replans++
		rt.tr.Replan(now, J)
		rt.probe(invariants.Replan, -1, -1)
		next, err := planner.Replan(in, now+cost, commitments)
		if err != nil {
			return
		}
		rt.sim.After(des.Time(cost), func() { rt.adoptReplan(replanJobs, next) })
		return
	} else {
		rt.tr.PlanBudgetExceeded(now, cost)
	}
	if cost := planner.CostIncremental(J, R, S); cost <= budget {
		rt.degradations.Incremental++
		rt.replans++
		rt.tr.Replan(now, J)
		rt.probe(invariants.Replan, -1, -1)
		rt.tr.Degrade(now, 1, J)
		widths := make(map[int]int, len(replanJobs))
		for _, je := range replanJobs {
			if je.assignment != nil {
				widths[je.job.ID] = len(je.assignment.Racks)
			}
		}
		next, err := planner.ReplanIncremental(in, now+cost, commitments, widths)
		if err != nil {
			return
		}
		rt.sim.After(des.Time(cost), func() { rt.adoptReplan(replanJobs, next) })
		return
	}
	// Greedy tier: no planner invocation at all. The triggering fault
	// already dropped the affected jobs' constraints, so they dispatch
	// unconstrained — exactly the Yarn-CS placement discipline.
	rt.degradations.Greedy++
	rt.tr.Degrade(now, 2, J)
}

// adoptReplan installs a replan's fresh assignments for the jobs whose
// constraints the triggering fault dropped. Jobs that finished, failed or
// regained constraints while the plan was being computed are skipped, as
// are rack sets no longer usable at adoption time (the constraint-drop
// fallback then stands).
func (rt *runtime) adoptReplan(replanJobs []*jobExec, next *planner.Plan) {
	changed := false
	for _, je := range replanJobs {
		if je.done() || je.allowedRacks != nil {
			continue
		}
		a := next.Assignments[je.job.ID]
		if a == nil || len(a.Racks) == 0 || !rt.racksUsable(a.Racks) {
			continue // stay unconstrained rather than adopt unusable racks
		}
		je.assignment = a
		je.allowedRacks = append([]int(nil), a.Racks...)
		changed = true
	}
	if changed {
		rt.sortDispatchOrder()
		rt.requestDispatch()
	}
}

// racksUsable reports whether a rack set is currently worth constraining
// to: a majority of its machines alive and no rack isolated by a failed
// uplink.
func (rt *runtime) racksUsable(racks []int) bool {
	total, deadIn := 0, 0
	for _, r := range racks {
		if rt.rackLinkFactor[r] == 0 {
			return false
		}
		lo, hi := rt.cluster.MachinesInRack(r)
		for m := lo; m < hi; m++ {
			total++
			if rt.dead[m] {
				deadIn++
			}
		}
	}
	return deadIn*2 <= total
}

// rackBlockedUntil estimates when rack r becomes (and stays) usable: the
// latest of its uplink outages' restoration times — current or scheduled;
// the fault schedule is declared up front, so "plan when you can" gets to
// see outages that have not happened yet — and the recovery time that
// brings a majority of its machines back.
func (rt *runtime) rackBlockedUntil(r int, now float64) float64 {
	until := now
	// Walk the uplink schedule in time order; whenever an outage starts at
	// or after now, the rack is committed until the restore that follows.
	factor := rt.rackLinkFactor[r]
	if factor == 0 {
		until = farFuture
	}
	for _, lf := range sortedFaultsFor(rt.opts.LinkFaults, r) {
		if lf.At < now {
			continue
		}
		if lf.Factor == 0 {
			factor, until = 0, farFuture
		} else if factor == 0 {
			factor = lf.Factor
			until = lf.At
		}
	}
	lo, hi := rt.cluster.MachinesInRack(r)
	total := hi - lo
	var recoveries []float64
	for m := lo; m < hi; m++ {
		if rt.dead[m] {
			recoveries = append(recoveries, rt.recoverAt[m])
		}
	}
	if len(recoveries)*2 > total {
		sort.Float64s(recoveries)
		alive := total - len(recoveries)
		k := 0
		for alive*2 <= total && k < len(recoveries) {
			alive++
			k++
		}
		t := recoveries[k-1]
		if math.IsInf(t, 1) {
			t = farFuture
		}
		if t > until {
			until = t
		}
	}
	return until
}

// sortedFaultsFor returns rack r's uplink faults in time order (stable, so
// same-instant faults keep declaration order, matching the DES tie-break).
func sortedFaultsFor(faults []LinkFault, r int) []LinkFault {
	var out []LinkFault
	for _, lf := range faults {
		if lf.Rack == r {
			out = append(out, lf)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
