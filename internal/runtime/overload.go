package runtime

// Overload hardening: streaming-arrival admission control and
// replan-storm suppression. Both features are off by default (zero
// Options values) and, when off, leave the runtime's event stream — and
// therefore every pre-existing trace, snapshot and Result — bit-identical
// to the legacy behavior.
//
// Admission control (Options.AdmissionLimit): arrivals pass through
// arrive() instead of submitting directly. At most AdmissionLimit jobs
// are admitted (submitted and not yet terminal) at once; excess arrivals
// park in a FIFO admission queue bounded by AdmissionQueueCap, and
// arrivals beyond the cap are shed — a deterministic terminal outcome,
// counted separately from attrition failures. Terminal jobs release
// their admission slot and drain the queue in arrival order.
//
// Replan-storm suppression (Options.ReplanWindow): fault-triggered
// replan requests route through requestReplan(). Each debounce window
// allows MaxReplansPerWindow immediate replans; further requests in the
// window are coalesced into one pending replan at the window's end, and
// every saturated window doubles the next window's length (exponential
// cooldown, capped at 8×). A burst of N rack faults then costs O(log N)
// planner invocations instead of N. The coalesced replan naturally
// skips an empty input delta: replanOnFailure returns before invoking
// the planner when no job still needs new constraints.

import (
	"fmt"

	"corral/internal/des"
	"corral/internal/invariants"
)

// maxReplanCooldown caps the exponential window-stretch factor.
const maxReplanCooldown = 8

// validateOverload checks the overload-hardening knobs at startup.
func validateOverload(opts Options) error {
	if opts.PlannerBudget < 0 {
		return fmt.Errorf("runtime: negative PlannerBudget %g", opts.PlannerBudget)
	}
	if opts.ReplanWindow < 0 {
		return fmt.Errorf("runtime: negative ReplanWindow %g", opts.ReplanWindow)
	}
	if opts.MaxReplansPerWindow < 0 {
		return fmt.Errorf("runtime: negative MaxReplansPerWindow %d", opts.MaxReplansPerWindow)
	}
	if opts.MaxReplansPerWindow > 0 && opts.ReplanWindow <= 0 {
		return fmt.Errorf("runtime: MaxReplansPerWindow requires ReplanWindow > 0")
	}
	if opts.AdmissionLimit < 0 {
		return fmt.Errorf("runtime: negative AdmissionLimit %d", opts.AdmissionLimit)
	}
	if opts.AdmissionQueueCap < 0 {
		return fmt.Errorf("runtime: negative AdmissionQueueCap %d", opts.AdmissionQueueCap)
	}
	if opts.AdmissionQueueCap > 0 && opts.AdmissionLimit <= 0 {
		return fmt.Errorf("runtime: AdmissionQueueCap requires AdmissionLimit > 0")
	}
	return nil
}

// arrive is the admission gate in front of submit. With admission control
// disabled it degenerates to an immediate submission — the legacy path.
func (rt *runtime) arrive(je *jobExec) {
	limit := rt.opts.AdmissionLimit
	if limit <= 0 {
		rt.submit(je)
		return
	}
	// The queue-empty check keeps admission strictly FIFO: a fresh arrival
	// never jumps jobs already waiting.
	if rt.admitted < limit && len(rt.admissionQueue) == 0 {
		rt.admitted++
		rt.submit(je)
		return
	}
	now := float64(rt.sim.Now())
	if len(rt.admissionQueue) < rt.opts.AdmissionQueueCap {
		rt.admissionQueue = append(rt.admissionQueue, je)
		rt.deferred++
		depth := len(rt.admissionQueue)
		if depth > rt.maxAdmissionQ {
			rt.maxAdmissionQ = depth
		}
		rt.probe(invariants.JobDefer, depth, je.job.ID)
		rt.tr.JobDeferred(now, je.job.ID, depth)
		return
	}
	rt.shedJob(je)
}

// shedJob rejects an arrival at admission-queue capacity: terminal,
// deterministic load shedding. Shed jobs were never submitted, never
// consume an admission slot, and are counted in Result.Shed rather than
// Result.FailedJobs.
func (rt *runtime) shedJob(je *jobExec) {
	now := float64(rt.sim.Now())
	je.failed = true
	je.failReason = "shed: admission queue at capacity"
	je.completion = now
	rt.active--
	rt.shed++
	depth := len(rt.admissionQueue)
	rt.probe(invariants.JobShed, depth, je.job.ID)
	rt.tr.JobShed(now, je.job.ID, depth)
}

// onJobTerminal releases a terminal job's admission slot and drains the
// admission queue in arrival order. Called from finishStage and failJob;
// only admitted (= submitted) jobs hold a slot.
func (rt *runtime) onJobTerminal(je *jobExec) {
	if rt.opts.AdmissionLimit <= 0 || !je.submitted {
		return
	}
	rt.admitted--
	for rt.admitted < rt.opts.AdmissionLimit && len(rt.admissionQueue) > 0 {
		next := rt.admissionQueue[0]
		rt.admissionQueue = rt.admissionQueue[1:]
		rt.admitted++
		rt.submit(next)
	}
}

// effectiveCooldown maps the stored cooldown to its multiplication
// factor. Zero — the value legacy runs and pre-PR-8 snapshots carry —
// means the baseline factor of 1.
func (rt *runtime) effectiveCooldown() int {
	if rt.replanCooldown < 1 {
		return 1
	}
	return rt.replanCooldown
}

// requestReplan routes a fault-triggered replan request through the
// storm suppressor. With suppression disabled it replans immediately —
// the legacy path.
func (rt *runtime) requestReplan() {
	w := rt.opts.ReplanWindow
	if w <= 0 {
		rt.replanOnFailure()
		return
	}
	now := float64(rt.sim.Now())
	if now >= rt.replanWindowEnd {
		// Opening a fresh window. A full cooldown span of quiet since the
		// last window decays the escalation back to baseline.
		if rt.replanCooldown > 1 && now >= rt.replanWindowEnd+w*float64(rt.replanCooldown) {
			rt.replanCooldown = 0
		}
		rt.replanWindowEnd = now + w*float64(rt.effectiveCooldown())
		rt.replansInWindow = 0
	}
	if rt.replansInWindow < rt.opts.MaxReplansPerWindow {
		rt.replansInWindow++
		rt.replanOnFailure()
		return
	}
	// Window saturated: coalesce into one pending replan at window end and
	// escalate the cooldown for the windows that follow.
	rt.replansSuppressed++
	rt.tr.ReplanSuppressed(now, rt.replanWindowEnd)
	if !rt.replanPending {
		rt.replanPending = true
		c := rt.effectiveCooldown() * 2
		if c > maxReplanCooldown {
			c = maxReplanCooldown
		}
		rt.replanCooldown = c
		rt.sim.At(des.Time(rt.replanWindowEnd), rt.firePendingReplan)
	}
}

// firePendingReplan runs the coalesced replan a saturated window parked
// at its end. It opens the next (cooldown-stretched) window and counts
// itself against it. An empty input delta — every affected job finished
// or regained constraints meanwhile — makes replanOnFailure a no-op.
func (rt *runtime) firePendingReplan() {
	if !rt.replanPending {
		return
	}
	rt.replanPending = false
	now := float64(rt.sim.Now())
	rt.replanWindowEnd = now + rt.opts.ReplanWindow*float64(rt.effectiveCooldown())
	rt.replansInWindow = 1
	rt.replanOnFailure()
}
