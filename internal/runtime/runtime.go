// Package runtime executes data-parallel jobs on the simulated cluster:
// it is the YARN-analogue resource manager plus per-job application
// masters, driving map tasks, shuffles, reduces and replicated output
// writes over the flow-level network simulator.
//
// Four scheduling policies are implemented, matching §6.1's comparison:
//
//   - YarnCS: the capacity scheduler baseline — FIFO job order with slot
//     backfill and delay scheduling for map locality; reducers go anywhere.
//   - Corral: the planner's {R_j, p_j} guidelines — input data pre-placed
//     in R_j, all tasks constrained to R_j, jobs picked by priority.
//   - LocalShuffle: Corral's task placement but HDFS-random data placement.
//   - ShuffleWatcher: per-job shuffle localisation to a rack subset chosen
//     greedily per job (no cross-job planning, no data placement).
//
// Determinism obligations: a simulation Result is a pure function of
// (SimConfig, jobs, seed). All randomness (data placement, failure and
// straggler injection) draws from one seeded *rand.Rand, slot and task
// scans go in index order, and order-sensitive work never ranges over a
// map unsorted (see the collect-and-sort idiom in exec.go).
package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"corral/internal/des"
	"corral/internal/dfs"
	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/topology"
	"corral/internal/trace"
)

// Kind selects the cluster scheduling policy.
type Kind int

// The four evaluated schedulers.
const (
	YarnCS Kind = iota
	Corral
	LocalShuffle
	ShuffleWatcher
)

func (k Kind) String() string {
	switch k {
	case YarnCS:
		return "yarn-cs"
	case Corral:
		return "corral"
	case LocalShuffle:
		return "local-shuffle"
	case ShuffleWatcher:
		return "shufflewatcher"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String, used when reconstructing a run
// from a serialized snapshot spec.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "yarn-cs":
		return YarnCS, nil
	case "corral":
		return Corral, nil
	case "local-shuffle":
		return LocalShuffle, nil
	case "shufflewatcher":
		return ShuffleWatcher, nil
	}
	return 0, fmt.Errorf("runtime: unknown scheduler %q", s)
}

// Options configures one simulated run.
type Options struct {
	Topology topology.Config
	// Network is the bandwidth-sharing policy; nil selects the incremental
	// max-min fast path (TCP-like rates, bit-identical to MaxMinFair).
	Network netsim.Policy
	// FlowEpoch, when positive, batches network rate recomputations to
	// multiples of this many simulated seconds: flow starts, cancels and
	// link faults inside one quantum are absorbed by a single re-waterfill
	// (completions still recompute exactly). The coarse knob for the
	// huge-shuffle tail at datacenter scale; zero keeps the exact
	// recompute-on-change behavior.
	FlowEpoch float64
	// Scheduler selects the policy; Corral and LocalShuffle require Plan.
	Scheduler Kind
	Plan      *planner.Plan
	Seed      int64
	// BlockSize for the DFS; 0 selects the default (256 MB).
	BlockSize float64
	// DelayNodeLocal / DelayRackLocal are delay-scheduling patience
	// thresholds, in skipped scheduling opportunities, before a job's map
	// tasks may run rack-local / anywhere. Zero selects defaults scaled to
	// the cluster size.
	DelayNodeLocal int
	DelayRackLocal int
	// OutputReplication for terminal stage outputs (default 3: one local
	// replica plus two on a remote rack).
	OutputReplication int
	// Heartbeat is the scheduler retry interval when jobs decline slots
	// waiting for locality (the delay-scheduling "wait"). Default 1s.
	Heartbeat float64
	// Failures kills machines at points in simulated time: running tasks
	// on a failed machine are aborted and re-executed elsewhere, and
	// planned jobs whose rack sets lose a majority of machines fall back
	// to unconstrained placement (§3.1). A Failure with Downtime > 0 is
	// transient: the machine recovers at At+Downtime.
	Failures []Failure
	// LinkFaults rescale rack uplink/downlink capacities at simulated
	// times (factor 0 = failed, 1 = restored). A permanent uplink failure
	// can wedge jobs whose transfers must cross it; fault traces should
	// always restore failed links eventually (chaos traces do).
	LinkFaults []LinkFault
	// ReplanOnFailure makes Corral re-invoke the offline planner when a
	// planned job loses its racks (majority machine loss or uplink
	// failure), with commitments for unaffected running jobs, instead of
	// only dropping the affected job's constraints (replan.go).
	ReplanOnFailure bool
	// DisableReReplication turns off the DFS repair daemon that re-creates
	// replicas lost to machine failures (repair.go). Repairs are on by
	// default because HDFS re-replication is part of the paper's assumed
	// substrate (§2).
	DisableReReplication bool
	// OnMachineRepair, if set, is invoked when a transiently failed
	// machine recovers — a hook for experiments that track repair events.
	// It runs inside the simulation; it must be deterministic.
	OnMachineRepair func(machine int, at float64)
	// StragglerFraction is the probability that a task's compute phase is
	// a straggler, running StragglerSlowdown (default 6) times slower —
	// the "outliers" of §3.3. Zero disables injection.
	StragglerFraction float64
	StragglerSlowdown float64
	// Speculation enables the speculative-execution watchdog: a task
	// running longer than SpeculationThreshold (default 2) times its
	// expected duration is relaunched.
	Speculation          bool
	SpeculationThreshold float64
	// AdhocShare is the capacity-scheduler queue share for ad-hoc jobs
	// under the plan-driven schedulers: when the ad-hoc queue is running
	// less than this fraction of all busy slots, a freed slot is offered
	// to ad-hoc jobs first (work-conserving both ways). Default 0.5.
	// Yarn-CS and ShuffleWatcher ignore it (single FIFO queue).
	AdhocShare float64
	// FailedMachines are dead from time zero: no slots, and DFS replicas
	// on them are unreadable. If more than half the machines of a planned
	// job's rack set are dead, Corral drops the job's placement
	// constraints (§3.1).
	FailedMachines []int
	// RemoteStorageInput makes every job read its input from the separate
	// storage cluster over the shared interconnect (§2's Azure/S3
	// scenario, §7 "Remote storage") instead of from pre-placed DFS
	// blocks. Requires Topology.RemoteStorageBandwidth > 0.
	RemoteStorageInput bool
	// InMemoryInput models Spark-like in-memory data (§7 "In-memory
	// systems"): terminal outputs are not written through the replicated
	// DFS pipeline, removing write traffic while shuffles still use the
	// network.
	InMemoryInput bool

	// TaskFailureProb is the per-attempt probability of an injected
	// transient task crash (container lost, JVM OOM, disk hiccup). A
	// crashed attempt counts against the task's attempt budget and is
	// requeued after a deterministic exponential backoff. Zero disables
	// injection.
	TaskFailureProb float64
	// MaxTaskAttempts is the per-task attempt budget (default 4, YARN's
	// mapreduce.map/reduce.maxattempts). A task that crashes this many
	// times fails its job terminally (JobResult.Failed).
	MaxTaskAttempts int
	// RetryBackoff is the base retry delay in seconds (default 1): a
	// task's k-th crash waits RetryBackoff·2^(k−1) before the task
	// re-enters the pending queues.
	RetryBackoff float64
	// BlacklistThreshold is how many failed attempts a machine accumulates
	// before it is blacklisted out of the slot pool and delay-scheduling
	// consideration (default 3, YARN's node-blacklisting threshold;
	// negative disables blacklisting).
	BlacklistThreshold int
	// BlacklistCooldown is how long in seconds a blacklisted machine sits
	// out (default 30). It rejoins with its failure count reset, via the
	// OnMachineRepair hook — the same path transient machine recoveries
	// take.
	BlacklistCooldown float64
	// AMFailures kills job application masters at points in simulated
	// time. The job's running attempts are lost; a restarted AM attempt
	// (capped by MaxAMAttempts) reuses completed map outputs that survive
	// on live machines and recomputes the rest, preserving the plan's rack
	// commitments.
	AMFailures []AMFailure
	// MaxAMAttempts caps application-master attempts per job (default 2,
	// YARN's yarn.resourcemanager.am.max-attempts): the MaxAMAttempts-th
	// AM failure fails the job terminally.
	MaxAMAttempts int
	// AMRestartDelay is the resource-manager relaunch delay in seconds
	// between an AM failure and the restarted attempt (default 5).
	AMRestartDelay float64
	// Corruptions silently corrupt one DFS block replica on a machine at a
	// simulated time. Reads checksum-detect corruption, fail over to the
	// next-closest clean replica, and hand the bad replica to the
	// re-replication daemon (counted in Result.RepairBytes).
	Corruptions []Corruption

	// PlannerBudget is the per-decision planning deadline in simulated
	// seconds. When > 0, every failure-triggered replan is charged its
	// deterministic cost (planner.CostFull / CostIncremental — a pure
	// function of jobs × racks × stages, never the wall clock) and its
	// assignments only take effect at t + cost. A decision whose full-plan
	// cost exceeds the budget degrades down the fallback chain: full plan →
	// commitments-only incremental replan → greedy Yarn-CS placement
	// (constraints stay dropped, §3.1's fallback). Each tier is traced and
	// counted in Result.Degradations. Zero keeps the legacy behavior:
	// planning is instantaneous and free.
	PlannerBudget float64
	// ReplanWindow enables replan-storm suppression: fault bursts within a
	// debounce window of this many simulated seconds are coalesced, with
	// at most MaxReplansPerWindow immediate replans per window and an
	// exponential cooldown (window length doubles, capped at 8×, while
	// bursts keep saturating it). Excess requests collapse into a single
	// pending replan at the window's end. Zero disables suppression.
	ReplanWindow float64
	// MaxReplansPerWindow caps immediate replans per suppression window
	// (default 1 when ReplanWindow > 0; meaningless without it).
	MaxReplansPerWindow int
	// AdmissionLimit enables streaming-arrival admission control: at most
	// this many admitted jobs may be in flight at once. Excess arrivals
	// wait in a bounded FIFO admission queue (Result.Deferred) and are
	// submitted as running jobs reach a terminal state; arrivals beyond
	// AdmissionQueueCap are deterministically shed (Result.Shed). Zero
	// disables admission control: every arrival submits immediately.
	AdmissionLimit int
	// AdmissionQueueCap bounds the admission queue (default 4×
	// AdmissionLimit; requires AdmissionLimit > 0).
	AdmissionQueueCap int
	// Probe, if set, receives runtime lifecycle events for invariant
	// monitoring (see internal/invariants). It runs inside the simulation;
	// it must be deterministic and must not call back into the runtime.
	Probe invariants.Probe
	// Trace, if set, receives the run's lifecycle events (task attempts,
	// flows, failures, repairs — see internal/trace). When nil, the runtime
	// asks the process-wide trace collector for a run tracer (installed by
	// corralsim -trace); with no collector installed either, tracing stays
	// on the zero-overhead disabled path.
	Trace *trace.Tracer
}

// JobResult captures per-job outcomes.
type JobResult struct {
	ID             int
	Name           string
	AdHoc          bool
	Arrival        float64
	Completion     float64 // absolute completion time
	CompletionTime float64 // Completion − Arrival
	Slots          int     // requested parallelism (Fig 2 metric)
	CrossRackBytes float64
	TaskSeconds    float64 // Σ task wall-clock times ("compute hours")
	ReduceSeconds  []float64
	RacksUsed      int
	// Failed marks a terminal failure (task attempt budget or AM attempt
	// budget exhausted). Completion then records the failure time.
	Failed     bool
	FailReason string
}

// AvgReduceTime returns the mean reduce-task duration (Fig 7c metric), or
// 0 for map-only jobs.
func (r *JobResult) AvgReduceTime() float64 {
	if len(r.ReduceSeconds) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.ReduceSeconds {
		s += v
	}
	return s / float64(len(r.ReduceSeconds))
}

// Result is the outcome of one run.
type Result struct {
	Scheduler      Kind
	Jobs           []JobResult
	Makespan       float64
	CrossRackBytes float64
	TaskSeconds    float64
	InputRackCoV   float64 // data balance of input placement (§6.2)
	Events         uint64
	// RepairBytes is DFS re-replication traffic (bytes copied by the
	// repair daemon after machine failures); included in the network's
	// total-byte accounting but not charged to any job.
	RepairBytes float64
	// QuiesceTime is when the cluster actually went quiet: the later of
	// Makespan (last job completion) and the last DFS repair commit.
	// Makespan deliberately excludes repair traffic — it is the paper's
	// job-facing metric — so a repair tail still in flight after the last
	// job finish shows up only here (and as the tracer's sim_end event).
	QuiesceTime float64
	// Replans counts failure-triggered planner re-invocations.
	Replans int
	// FailedJobs counts jobs that ended in terminal failure rather than
	// completion (attempt budgets exhausted under attrition).
	FailedJobs int
	// Degradations counts replan decisions by fallback tier (only budgeted
	// runs, PlannerBudget > 0, populate it).
	Degradations Degradations
	// ReplansSuppressed counts replan requests absorbed by the
	// storm-suppression debounce window.
	ReplansSuppressed int
	// Deferred counts arrivals parked in the admission queue; Shed counts
	// arrivals rejected at queue capacity (terminal, not in FailedJobs);
	// MaxAdmissionQueue is the peak queue depth observed.
	Deferred          int
	Shed              int
	MaxAdmissionQueue int
}

// Degradations breaks replan decisions down by fallback-chain tier: Full
// plans that fit the budget, commitments-only Incremental replans, and
// Greedy decisions (no planner call; affected jobs run with constraints
// dropped, the Yarn-CS placement).
type Degradations struct {
	Full        int
	Incremental int
	Greedy      int
}

// AvgCompletionTime returns the mean of per-job completion times.
func (r *Result) AvgCompletionTime() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	s := 0.0
	for _, j := range r.Jobs {
		s += j.CompletionTime
	}
	return s / float64(len(r.Jobs))
}

// CompletionTimes returns per-job completion times, sorted ascending.
func (r *Result) CompletionTimes() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.CompletionTime
	}
	sort.Float64s(out)
	return out
}

// Run simulates the given jobs to completion and returns the result.
func Run(opts Options, jobs []*job.Job) (*Result, error) {
	rt, err := newRuntime(opts, jobs)
	if err != nil {
		return nil, err
	}
	return rt.run()
}

type runtime struct {
	opts    Options
	sim     *des.Simulator
	cluster *topology.Cluster
	net     *netsim.Network
	store   *dfs.Store
	rng     *rand.Rand
	rngSrc  *countingSource

	freeSlots    []int
	dead         []bool
	deadCount    int
	running      [][]*runningTask // per-machine in-flight attempts
	machineOrder []int            // heartbeat visit order, reshuffled per pass

	// tkArena is the chunked attempt arena (newRunningTask): objects are
	// handed out chunk-by-chunk and never recycled.
	tkArena []runningTask
	// shufBuf is the reusable shuffle-path buffer for StartPath (which
	// interns paths and never retains the caller's slice).
	shufBuf [3]topology.LinkID

	// Attrition state: blacklisted machines keep their slots but receive
	// no new attempts until the cooldown expires; machineFailures counts
	// failed attempts per machine toward BlacklistThreshold.
	blacklisted     []bool
	machineFailures []int
	failedJobs      int

	// Fault state.
	rackLinkFactor []float64 // current uplink/downlink scale per rack
	recoverAt      []float64 // scheduled recovery per dead machine (+Inf none)
	repairs        map[repairKey]*repairOp
	repairList     []*repairOp // append-ordered, for deterministic iteration
	repairBytes    float64
	replans        int

	// Overload-hardening state (overload.go). replanCooldown stays 0 (an
	// effective factor of 1) until suppression first escalates, so legacy
	// runs — and pre-PR-8 snapshots of them — carry all-zero values here.
	degradations      Degradations
	replansSuppressed int
	replanWindowEnd   float64
	replansInWindow   int
	replanCooldown    int
	replanPending     bool
	admissionQueue    []*jobExec
	admitted          int
	deferred          int
	shed              int
	maxAdmissionQ     int

	jobs     []*jobExec
	byOrder  []*jobExec // dispatch order per policy
	active   int        // jobs not yet complete
	swLoad   []int      // ShuffleWatcher: per-rack assigned-job count
	coflowID netsim.CoflowID

	// runnableJobs is dispatch's per-pass scratch: the byOrder subsequence
	// with runnable tasks, rebuilt at the top of every dispatch.
	runnableJobs []*jobExec

	dispatchPending bool
	retryPending    bool
	declined        bool

	// Queue-share accounting for the planned vs ad-hoc capacity queues.
	runningPlanned int
	runningAdhoc   int
	haveAdhoc      bool
	havePlanned    bool

	// Tracing: tr is nil (disabled fast path) unless Options.Trace is set
	// or a process-wide collector is installed; lastRepairDone tracks the
	// final repair commit for Result.QuiesceTime.
	tr             *trace.Tracer
	lastRepairDone float64
}

func newRuntime(opts Options, jobs []*job.Job) (*runtime, error) {
	if opts.Scheduler == Corral || opts.Scheduler == LocalShuffle {
		if opts.Plan == nil {
			return nil, fmt.Errorf("runtime: scheduler %v requires a plan", opts.Scheduler)
		}
	}
	cluster, err := topology.New(opts.Topology)
	if err != nil {
		return nil, err
	}
	if opts.OutputReplication == 0 {
		opts.OutputReplication = 3
	}
	m := cluster.Config.Machines()
	if opts.DelayNodeLocal == 0 {
		opts.DelayNodeLocal = m
	}
	if opts.DelayRackLocal == 0 {
		opts.DelayRackLocal = 2 * m
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 1
	}
	if opts.AdhocShare <= 0 || opts.AdhocShare >= 1 {
		opts.AdhocShare = 0.5
	}
	if opts.StragglerSlowdown <= 1 {
		opts.StragglerSlowdown = 6
	}
	if opts.SpeculationThreshold <= 1 {
		opts.SpeculationThreshold = 2
	}
	if opts.MaxTaskAttempts <= 0 {
		opts.MaxTaskAttempts = 4
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 1
	}
	if opts.BlacklistThreshold == 0 {
		opts.BlacklistThreshold = 3
	}
	if opts.BlacklistCooldown <= 0 {
		opts.BlacklistCooldown = 30
	}
	if opts.MaxAMAttempts <= 0 {
		opts.MaxAMAttempts = 2
	}
	if opts.AMRestartDelay <= 0 {
		opts.AMRestartDelay = 5
	}
	if err := validateFailures(opts.Failures, cluster.Config.Machines()); err != nil {
		return nil, err
	}
	if err := validateLinkFaults(opts.LinkFaults, cluster.Config.Racks); err != nil {
		return nil, err
	}
	if err := validateAttrition(opts, cluster.Config.Machines()); err != nil {
		return nil, err
	}
	if err := validateOverload(opts); err != nil {
		return nil, err
	}
	// Resolve overload defaults before buildSpec records the options, so a
	// resumed run re-applies them idempotently (like Heartbeat above).
	if opts.ReplanWindow > 0 && opts.MaxReplansPerWindow <= 0 {
		opts.MaxReplansPerWindow = 1
	}
	if opts.AdmissionLimit > 0 && opts.AdmissionQueueCap <= 0 {
		opts.AdmissionQueueCap = 4 * opts.AdmissionLimit
	}
	if opts.RemoteStorageInput {
		if _, ok := cluster.StorageLink(); !ok {
			return nil, fmt.Errorf("runtime: RemoteStorageInput requires Topology.RemoteStorageBandwidth > 0")
		}
	}
	if opts.InMemoryInput {
		opts.OutputReplication = 1
	}
	if opts.FlowEpoch < 0 {
		return nil, fmt.Errorf("runtime: negative flow epoch %g", opts.FlowEpoch)
	}
	// Default to the incremental fast-path allocator: bit-identical rates
	// to MaxMinFair and GroupedMaxMin (see netsim/incremental.go) but
	// stateful, so each run gets a fresh instance — required for parallel
	// experiment sweeps.
	netPolicy := opts.Network
	if netPolicy == nil {
		netPolicy = netsim.NewIncrementalMaxMin()
	}
	sim := des.New()
	// The one seeded RNG stream (shared with the DFS) draws through a
	// counting wrapper so snapshots can record — and restore audits can
	// verify — exactly how many values a run has consumed (snapshot.go).
	rngSrc := newCountingSource(opts.Seed)
	rng := rand.New(rngSrc)
	rt := &runtime{
		opts:      opts,
		sim:       sim,
		cluster:   cluster,
		net:       netsim.New(sim, cluster, netPolicy),
		store:     dfs.New(cluster, opts.BlockSize, rng),
		rng:       rng,
		rngSrc:    rngSrc,
		freeSlots: make([]int, m),
		dead:      make([]bool, m),
		running:   make([][]*runningTask, m),
		swLoad:    make([]int, cluster.Config.Racks),
	}
	// The runtime honors the pooling discipline (every *Flow reference is
	// dropped in the done callback or cleared on abort), so retired flow
	// objects are recycled instead of churning the GC.
	rt.net.SetFlowPooling(true)
	if opts.FlowEpoch > 0 {
		rt.net.SetFlowEpoch(des.Time(opts.FlowEpoch))
	}
	rt.machineOrder = make([]int, m)
	for i := range rt.freeSlots {
		rt.freeSlots[i] = cluster.Config.SlotsPerMachine
		rt.machineOrder[i] = i
	}
	rt.blacklisted = make([]bool, m)
	rt.machineFailures = make([]int, m)

	// Attach tracing before any emission site (time-zero machine failures,
	// input upload) can fire. An explicit Options.Trace wins; otherwise ask
	// the process-wide collector, which returns nil (disabled) when no
	// -trace flag installed one.
	rt.tr = opts.Trace
	if rt.tr == nil {
		rt.tr = trace.NewRun(fmt.Sprintf("sim/%s/seed%d", opts.Scheduler, opts.Seed))
	}
	if rt.tr.Enabled() {
		for mi := 0; mi < m; mi++ {
			rt.tr.MachineMeta(mi, cluster.RackOf(mi))
		}
		for _, l := range cluster.Links() {
			rt.tr.LinkMeta(int(l.ID), l.Name, l.Capacity)
		}
	}
	rt.net.Trace = rt.tr
	rt.store.AttachTracer(rt.tr, func() float64 { return float64(sim.Now()) })

	if opts.Probe != nil {
		// Audit the bandwidth allocator after every recompute: any negative
		// or capacity-infeasible rate becomes an invariant violation.
		rt.net.OnAllocate = func() {
			if err := rt.net.AuditFeasibility(1e-6); err != nil {
				rt.probeAudit(err)
			}
		}
	}
	rt.rackLinkFactor = make([]float64, cluster.Config.Racks)
	for i := range rt.rackLinkFactor {
		rt.rackLinkFactor[i] = 1
	}
	rt.recoverAt = make([]float64, m)
	for i := range rt.recoverAt {
		rt.recoverAt[i] = math.Inf(1)
	}
	rt.repairs = make(map[repairKey]*repairOp)
	for _, f := range opts.FailedMachines {
		if f < 0 || f >= m {
			return nil, fmt.Errorf("runtime: failed machine %d out of range", f)
		}
		if !rt.dead[f] {
			rt.dead[f] = true
			rt.deadCount++
			rt.freeSlots[f] = 0
			rt.probe(invariants.MachineDown, f, -1)
			rt.tr.MachineDown(0, f)
			// Dead from time zero: no data was ever on them to repair, but
			// the store must know not to place or read replicas there.
			rt.store.MachineDown(f)
		}
	}

	// Materialize job executions and pre-place input data ("data is placed
	// at the desired location as it is uploaded", §2).
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		je, err := rt.prepareJob(j)
		if err != nil {
			return nil, err
		}
		rt.jobs = append(rt.jobs, je)
	}
	for _, je := range rt.jobs {
		if je.assignment != nil {
			rt.havePlanned = true
		} else {
			rt.haveAdhoc = true
		}
	}
	rt.sortDispatchOrder()
	return rt, nil
}

// prepareJob builds the execution state and uploads input files.
func (rt *runtime) prepareJob(j *job.Job) (*jobExec, error) {
	je := &jobExec{rt: rt, job: j, completion: -1}

	// Placement guidelines.
	usePlanData := false
	if rt.opts.Plan != nil && !j.AdHoc {
		if a := rt.opts.Plan.Assignments[j.ID]; a != nil {
			je.assignment = a
			switch rt.opts.Scheduler {
			case Corral:
				usePlanData = true
				je.allowedRacks = a.Racks
			case LocalShuffle:
				je.allowedRacks = a.Racks
			}
		}
	}
	// Rack-failure fallback (§3.1): if a majority of the machines in the
	// assigned racks are unreachable, ignore the guidelines.
	if je.allowedRacks != nil && rt.deadCount > 0 {
		total, deadIn := 0, 0
		for _, r := range je.allowedRacks {
			lo, hi := rt.cluster.MachinesInRack(r)
			for m := lo; m < hi; m++ {
				total++
				if rt.dead[m] {
					deadIn++
				}
			}
		}
		if deadIn*2 > total {
			je.allowedRacks = nil
			usePlanData = false
		}
	}

	// Upload input files for source stages (skipped entirely when input
	// lives in the remote storage cluster).
	for si := range j.Stages {
		if rt.opts.RemoteStorageInput {
			break
		}
		st := &j.Stages[si]
		if len(st.Upstream) > 0 || st.Profile.InputBytes <= 0 {
			continue
		}
		var policy dfs.Placement
		if usePlanData {
			policy = dfs.CorralPlacement{Racks: je.assignment.Racks}
		} else {
			policy = dfs.DefaultPlacement{}
		}
		name := fmt.Sprintf("job%d-stage%d-input", j.ID, si)
		f, err := rt.store.Create(name, st.Profile.InputBytes, policy)
		if err != nil {
			return nil, err
		}
		je.inputFiles = append(je.inputFiles, f)
		je.inputStage = append(je.inputStage, si)
	}
	return je, nil
}

// sortDispatchOrder fixes the static part of job ordering; arrival gating
// happens at dispatch time.
func (rt *runtime) sortDispatchOrder() {
	// FIFO by arrival (the capacity-scheduler baseline order, which also
	// keeps ad-hoc jobs from being starved by later-arriving planned work);
	// among same-arrival jobs, planned priority governs for the plan-driven
	// schedulers (§3.1: the slot goes to the highest-priority job).
	rt.byOrder = append(rt.byOrder[:0], rt.jobs...)
	sort.SliceStable(rt.byOrder, func(a, b int) bool {
		ja, jb := rt.byOrder[a], rt.byOrder[b]
		if ja.job.Arrival != jb.job.Arrival {
			return ja.job.Arrival < jb.job.Arrival
		}
		switch rt.opts.Scheduler {
		case Corral, LocalShuffle:
			pa, pb := ja.planPriority(), jb.planPriority()
			if pa != pb {
				return pa < pb
			}
		}
		return ja.job.ID < jb.job.ID
	})
}

func (rt *runtime) run() (*Result, error) {
	rt.start()
	rt.sim.Run()
	return rt.finish()
}

// start schedules the initial event set: job arrivals and every declared
// fault. Split from run so the snapshot layer (snapshot.go) can drive the
// event loop step by step between start and finish.
func (rt *runtime) start() {
	rt.active = len(rt.jobs)
	for _, je := range rt.jobs {
		je := je
		rt.sim.At(des.Time(je.job.Arrival), func() { rt.arrive(je) })
	}
	for _, f := range rt.opts.Failures {
		f := f
		rt.sim.At(des.Time(f.At), func() { rt.failMachineTransient(f) })
	}
	for _, lf := range rt.opts.LinkFaults {
		lf := lf
		rt.sim.At(des.Time(lf.At), func() { rt.applyLinkFault(lf) })
	}
	for _, af := range rt.opts.AMFailures {
		af := af
		rt.sim.At(des.Time(af.At), func() { rt.failAM(af.JobID) })
	}
	for _, c := range rt.opts.Corruptions {
		c := c
		rt.sim.At(des.Time(c.At), func() { rt.applyCorruption(c) })
	}
}

// finish runs the end-of-simulation audits and builds the Result. The
// event queue must have drained.
func (rt *runtime) finish() (*Result, error) {
	if rt.opts.Probe != nil {
		// Final audits: incremental DFS accounting must agree with a from-
		// scratch recount, then the monitor runs its end-of-simulation
		// checks (no leaked attempts, every job terminal).
		if err := rt.store.AuditAccounting(); err != nil {
			rt.probeAudit(err)
		}
		rt.probe(invariants.SimEnd, -1, -1)
	}

	res := &Result{
		Scheduler:      rt.opts.Scheduler,
		CrossRackBytes: rt.net.CrossRackBytes(),
		InputRackCoV:   rt.store.RackCoV(),
		Events:         rt.sim.Fired(),
		RepairBytes:    rt.repairBytes,
		Replans:        rt.replans,
		FailedJobs:     rt.failedJobs,

		Degradations:      rt.degradations,
		ReplansSuppressed: rt.replansSuppressed,
		Deferred:          rt.deferred,
		Shed:              rt.shed,
		MaxAdmissionQueue: rt.maxAdmissionQ,
	}
	for _, je := range rt.jobs {
		if je.completion < 0 {
			return nil, fmt.Errorf("runtime: job %d never completed (deadlock?)", je.job.ID)
		}
		jr := JobResult{
			ID:             je.job.ID,
			Name:           je.job.Name,
			AdHoc:          je.job.AdHoc,
			Arrival:        je.job.Arrival,
			Completion:     je.completion,
			CompletionTime: je.completion - je.job.Arrival,
			Slots:          je.job.Slots(),
			CrossRackBytes: rt.net.CrossRackBytesByJob(je.job.ID),
			TaskSeconds:    je.taskSeconds,
			ReduceSeconds:  je.reduceSeconds,
			RacksUsed:      je.racksUsed,
			Failed:         je.failed,
			FailReason:     je.failReason,
		}
		res.Jobs = append(res.Jobs, jr)
		res.TaskSeconds += jr.TaskSeconds
		if je.completion > res.Makespan {
			res.Makespan = je.completion
		}
	}
	res.QuiesceTime = math.Max(res.Makespan, rt.lastRepairDone)
	rt.tr.SimEnd(res.QuiesceTime)
	return res, nil
}
