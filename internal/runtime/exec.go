package runtime

import (
	"math"
	"sort"

	"corral/internal/des"
	"corral/internal/dfs"
	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/trace"
)

// jobExec is the application-master state for one job.
type jobExec struct {
	rt         *runtime
	job        *job.Job
	assignment *planner.Assignment
	// allowedRacks constrains task placement (Corral / LocalShuffle /
	// ShuffleWatcher). nil means unconstrained.
	allowedRacks []int

	inputFiles []*dfs.File // parallel with inputStage
	inputStage []int

	stages    []*stageExec
	submitted bool
	// skips is the delay-scheduling counter: scheduling opportunities this
	// job declined waiting for locality.
	skips      int
	completion float64
	// failed marks a terminal failure (attempt or AM budget exhausted);
	// completion then records the failure time, not a success.
	failed     bool
	failReason string
	// amDown suspends scheduling while the application master is being
	// restarted; amAttempt is a generation counter that invalidates backoff
	// requeues armed under a previous AM incarnation. amFailures counts AM
	// crashes against Options.MaxAMAttempts.
	amDown     bool
	amAttempt  int
	amFailures int

	taskSeconds   float64
	reduceSeconds []float64
	// racksTouched[r] marks racks the job has run attempts in; racksUsed
	// counts the marks (an indexed slice, not a map: touchRack is on the
	// per-attempt hot path).
	racksTouched []bool
	racksUsed    int
	stagesLeft   int
	// tasksLaunched counts attempts ever started — replanning treats jobs
	// with zero launches as freely re-assignable.
	tasksLaunched int
}

// touchRack marks rack r as used by the job.
func (je *jobExec) touchRack(r int) {
	if !je.racksTouched[r] {
		je.racksTouched[r] = true
		je.racksUsed++
	}
}

// planPriority orders planned jobs; ad-hoc and unplanned jobs sort last.
func (je *jobExec) planPriority() int {
	if je.assignment == nil {
		return math.MaxInt32
	}
	return je.assignment.Priority
}

// done reports whether the job has completed.
func (je *jobExec) done() bool { return je.completion >= 0 }

// allowsRack reports whether the job may run tasks in rack r.
func (je *jobExec) allowsRack(r int) bool {
	if je.allowedRacks == nil {
		return true
	}
	for _, a := range je.allowedRacks {
		if a == r {
			return true
		}
	}
	return false
}

type stagePhase int

const (
	stageWaiting stagePhase = iota // upstream not finished
	stageMapping                   // maps pending/running
	stageReducing
	stageDone
)

// stageExec tracks one DAG stage's execution.
type stageExec struct {
	je      *jobExec
	idx     int
	profile job.Profile
	phase   stagePhase

	inputFile        *dfs.File // source stages only
	remoteStorage    bool      // source stage reading the storage cluster
	upstreamMachines []int     // producer machines for derived stages

	// Pending map-task indexes. byMachine/byRack hold locality-preferred
	// tasks (lazily cleaned); anywhere holds preference-free tasks.
	pendingMapCount int
	byMachine       map[int][]*mapTask
	byRack          map[int][]*mapTask
	anyPref         []*mapTask // preferred somewhere; fallback at level 2
	anywhere        []*mapTask // no preference at all

	mapsDone      int
	mapsOnMachine map[int]int
	mapsOnRack    []int

	// maps holds every map task (index order) so AM restart can audit which
	// completed outputs survive; the locality indexes above only hold the
	// pending subset.
	maps []*mapTask

	// reduces holds every reduce task (index order); reduceQ is the pending
	// queue dispatch pops from. Attempts are interchangeable in placement,
	// but identity matters for the per-task attempt budget and AM-restart
	// recovery.
	reduces        []*reduceTask
	reduceQ        []*reduceTask
	reducesDone    int
	reduceMachines []int // where completed tasks ran (for downstream input)
	coflow         netsim.CoflowID
}

// mapTask is one pending map with its locality preference.
type mapTask struct {
	index      int
	bytes      float64
	blk        *dfs.Block // input block for source stages, nil otherwise
	srcMachine int        // upstream machine for derived stages, -1 if none
	assigned   bool
	// speculated marks a task whose attempt was killed by the speculation
	// watchdog: the relaunch runs at nominal speed with no watchdog.
	speculated bool
	// attempts counts crashed attempts against Options.MaxTaskAttempts.
	attempts int
	// doneOn records the machine of the completed attempt (-1 while
	// pending); AM restart reuses outputs whose machine is still alive.
	doneOn int
}

// reduceTask is one logical reduce task with its attempt history.
type reduceTask struct {
	index      int
	attempts   int
	speculated bool
	doneOn     int // machine of the completed attempt, -1 while pending
}

// nodeLocal reports whether machine m holds the task's input.
func (t *mapTask) nodeLocal(rt *runtime, m int) bool {
	if t.blk != nil {
		for _, r := range t.blk.Replicas {
			if r == m && !rt.dead[r] {
				return true
			}
		}
		return false
	}
	return t.srcMachine == m
}

// submit makes the job schedulable. ShuffleWatcher picks its rack subset
// here, greedily and independently per job (no cross-job coordination),
// preferring the racks that hold most of the job's input and breaking
// ties toward lower-indexed racks — which is what lets several large jobs
// pile onto the same racks, the pathology §6.2 describes.
func (rt *runtime) submit(je *jobExec) {
	je.submitted = true
	rt.probe(invariants.JobSubmit, -1, je.job.ID)
	rt.tr.JobSubmit(float64(rt.sim.Now()), je.job.ID, je.job.Name, je.job.Slots())
	je.racksTouched = make([]bool, rt.cluster.Config.Racks)
	if rt.opts.Scheduler == ShuffleWatcher && !je.job.AdHoc {
		je.allowedRacks = rt.shuffleWatcherRacks(je)
	}

	je.stagesLeft = len(je.job.Stages)
	je.stages = make([]*stageExec, len(je.job.Stages))
	for i := range je.job.Stages {
		st := &stageExec{
			je:            je,
			idx:           i,
			profile:       je.job.Stages[i].Profile,
			phase:         stageWaiting,
			byMachine:     make(map[int][]*mapTask),
			byRack:        make(map[int][]*mapTask),
			mapsOnMachine: make(map[int]int),
			mapsOnRack:    make([]int, rt.cluster.Config.Racks),
		}
		rt.coflowID++
		st.coflow = rt.coflowID
		je.stages[i] = st
	}
	for i, si := range je.inputStage {
		je.stages[si].inputFile = je.inputFiles[i]
	}
	if rt.opts.RemoteStorageInput {
		for _, st := range je.stages {
			if len(je.job.Stages[st.idx].Upstream) == 0 && st.profile.InputBytes > 0 {
				st.remoteStorage = true
			}
		}
	}
	// Start all source stages.
	for _, st := range je.stages {
		if len(je.job.Stages[st.idx].Upstream) == 0 {
			rt.startStage(st)
		}
	}
	rt.requestDispatch()
}

// shuffleWatcherRacks picks ⌈slots/rackSlots⌉ racks holding the most of
// the job's input data.
func (rt *runtime) shuffleWatcherRacks(je *jobExec) []int {
	cfg := rt.cluster.Config
	rackSlots := cfg.MachinesPerRack * cfg.SlotsPerMachine
	need := (je.job.Slots() + rackSlots - 1) / rackSlots
	if need < 1 {
		need = 1
	}
	if need > cfg.Racks {
		need = cfg.Racks
	}
	weight := make([]float64, cfg.Racks)
	for _, f := range je.inputFiles {
		for bi := range f.Blocks {
			for _, m := range f.Blocks[bi].Replicas {
				weight[rt.cluster.RackOf(m)] += f.Blocks[bi].Size
			}
		}
	}
	order := make([]int, cfg.Racks)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by weight desc, stable (ties toward low rack index).
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && weight[order[k]] > weight[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	return append([]int(nil), order[:need]...)
}

// startStage moves a stage into the mapping phase, materializing its map
// tasks with locality preferences.
func (rt *runtime) startStage(st *stageExec) {
	st.phase = stageMapping
	p := st.profile
	if p.MapTasks == 0 {
		rt.finishMapsPhase(st)
		return
	}
	perMap := p.InputBytes / float64(p.MapTasks)

	// One slab allocation for the whole stage's map tasks instead of one
	// per task; at datacenter scale a stage can carry tens of thousands.
	slab := make([]mapTask, p.MapTasks)
	for i := 0; i < p.MapTasks; i++ {
		t := &slab[i]
		t.index = i
		t.bytes = perMap
		t.srcMachine = -1
		t.doneOn = -1
		st.maps = append(st.maps, t)
		switch {
		case st.inputFile != nil && len(st.inputFile.Blocks) > 0:
			bi := i * len(st.inputFile.Blocks) / p.MapTasks
			t.blk = &st.inputFile.Blocks[bi]
			for _, m := range t.blk.Replicas {
				if rt.dead[m] {
					continue
				}
				st.byMachine[m] = append(st.byMachine[m], t)
				st.byRack[rt.cluster.RackOf(m)] = append(st.byRack[rt.cluster.RackOf(m)], t)
			}
			st.anyPref = append(st.anyPref, t)
		case len(st.upstreamMachines) > 0:
			m := st.upstreamMachines[i%len(st.upstreamMachines)]
			t.srcMachine = m
			st.byMachine[m] = append(st.byMachine[m], t)
			st.byRack[rt.cluster.RackOf(m)] = append(st.byRack[rt.cluster.RackOf(m)], t)
			st.anyPref = append(st.anyPref, t)
		default:
			st.anywhere = append(st.anywhere, t)
		}
		st.pendingMapCount++
		rt.tr.TaskQueued(float64(rt.sim.Now()), trace.RoleMap, st.je.job.ID, st.idx, t.index, t.attempts)
	}
	rt.requestDispatch()
}

// replicaClosest returns the cheapest live source for the task's input as
// read from machine m: node-local, then rack-local, then a remote replica
// whose rack uplink is not failed, then any live replica (the read parks
// until the uplink recovers). Corrupt replicas are checksum-detected at
// read time: they are skipped (the read fails over to the next-closest
// clean copy) and handed to the re-replication daemon. If every live
// replica is corrupt the read falls back to liveness-only selection — the
// client retry loop eventually succeeds against a repaired copy, and
// modelling that stall would add nothing the repair latency doesn't. The
// second return reports whether the selection failed over past a corrupt
// replica (surfaced in the trace as a block_read "failover").
func (rt *runtime) replicaClosest(t *mapTask, m int) (int, bool) {
	if t.blk == nil {
		return t.srcMachine, false
	}
	corruptSeen := false
	usable := func(r int) bool {
		if rt.dead[r] {
			return false
		}
		if rt.store.ReplicaCorrupt(t.blk, r) {
			corruptSeen = true
			return false
		}
		return true
	}
	src := -1
	pickTiers := func(ok func(int) bool) int {
		for _, r := range t.blk.Replicas {
			if r == m && ok(r) {
				return r
			}
		}
		for _, r := range t.blk.Replicas {
			if ok(r) && rt.cluster.SameRack(r, m) {
				return r
			}
		}
		for _, r := range t.blk.Replicas {
			if ok(r) && rt.rackLinkFactor[rt.cluster.RackOf(r)] > 0 {
				return r
			}
		}
		for _, r := range t.blk.Replicas {
			if ok(r) {
				return r
			}
		}
		return -1
	}
	src = pickTiers(usable)
	if corruptSeen {
		rt.detectCorruption(t.blk)
		if src < 0 {
			src = pickTiers(func(r int) bool { return !rt.dead[r] })
		}
	}
	return src, corruptSeen
}

// taskStarted/taskEnded maintain the queue-share accounting (and sample
// the cluster-wide slot-occupancy counter for the trace).
func (rt *runtime) taskStarted(je *jobExec) {
	je.tasksLaunched++
	if je.assignment != nil {
		rt.runningPlanned++
	} else {
		rt.runningAdhoc++
	}
	rt.tr.SlotsBusy(float64(rt.sim.Now()), rt.runningPlanned+rt.runningAdhoc)
}

func (rt *runtime) taskEnded(je *jobExec) {
	if je.assignment != nil {
		rt.runningPlanned--
	} else {
		rt.runningAdhoc--
	}
	rt.tr.SlotsBusy(float64(rt.sim.Now()), rt.runningPlanned+rt.runningAdhoc)
}

// runMap executes one map task on machine m: remote read (if the input is
// not node-local) followed by compute at B_M. The attempt is tracked so
// machine failures and the speculation watchdog can abort and requeue it.
func (rt *runtime) runMap(st *stageExec, t *mapTask, m int) {
	je := st.je
	rt.freeSlots[m]--
	rt.taskStarted(je)
	je.touchRack(rt.cluster.RackOf(m))
	tk := rt.track(je, st, t, nil, m)
	rt.tr.TaskStart(float64(rt.sim.Now()), trace.RoleMap, je.job.ID, st.idx, t.index, t.attempts, m)
	rt.armCrash(tk, t.bytes/st.profile.MapRate)

	src, failover := rt.replicaClosest(t, m)
	if src >= 0 && src != m && !st.remoteStorage {
		rt.tr.BlockRead(float64(rt.sim.Now()), je.job.ID, m, src, t.bytes, failover)
	}
	compute := func() {
		nominal := t.bytes / st.profile.MapRate
		dur := rt.computeDuration(tk, nominal)
		tk.after(rt, des.Time(dur), func() {
			tk.done = true
			rt.finishTracking(tk)
			rt.probe(invariants.TaskFinish, m, je.job.ID)
			rt.tr.TaskFinish(float64(rt.sim.Now()), trace.RoleMap, je.job.ID, st.idx, t.index, t.attempts, m,
				float64(rt.sim.Now()-tk.started))
			je.taskSeconds += float64(rt.sim.Now() - tk.started)
			rt.freeSlots[m]++
			rt.taskEnded(je)
			t.doneOn = m
			st.mapsDone++
			st.mapsOnMachine[m]++
			st.mapsOnRack[rt.cluster.RackOf(m)]++
			if st.mapsDone == st.profile.MapTasks {
				rt.finishMapsPhase(st)
			}
			rt.requestDispatch()
		})
	}
	if st.remoteStorage {
		// Fetch the split from the storage cluster over the shared
		// interconnect (§7 "Remote storage").
		tk.flow(rt, func(done func(*netsim.Flow)) *netsim.Flow {
			return rt.net.StartPath(rt.cluster.StoragePath(m), false, t.bytes,
				st.coflow, je.job.ID, done)
		}, compute)
		return
	}
	if src < 0 || src == m {
		// Node-local (or sourceless): the local read is folded into the
		// compute rate, as in the §4.3 model.
		compute()
		return
	}
	tk.flow(rt, func(done func(*netsim.Flow)) *netsim.Flow {
		return rt.net.Start(src, m, t.bytes, st.coflow, je.job.ID, done)
	}, compute)
}

// finishMapsPhase transitions a stage to reducing (or completes it for
// map-only stages).
func (rt *runtime) finishMapsPhase(st *stageExec) {
	if st.profile.ReduceTasks == 0 {
		// Map-only: outputs live on the map machines. Iterate machines in
		// index order so downstream input assignment stays deterministic.
		machines := make([]int, 0, len(st.mapsOnMachine))
		for m := range st.mapsOnMachine {
			machines = append(machines, m)
		}
		sort.Ints(machines)
		for _, m := range machines {
			for i := 0; i < st.mapsOnMachine[m]; i++ {
				st.reduceMachines = append(st.reduceMachines, m)
			}
		}
		rt.finishStage(st)
		return
	}
	st.phase = stageReducing
	// (Re)build the reduce set: fresh on the first transition, and again
	// when an AM restart rewound the stage to mapping after losing map
	// outputs — the shuffle must be re-fed, so reduces restart too.
	st.reduces = st.reduces[:0]
	st.reduceQ = st.reduceQ[:0]
	st.reducesDone = 0
	// Slab-allocated like the map tasks; a rebuild after an AM restart
	// gets a fresh slab (stale pointers in aborted attempts are inert).
	slab := make([]reduceTask, st.profile.ReduceTasks)
	for i := 0; i < st.profile.ReduceTasks; i++ {
		rT := &slab[i]
		rT.index = i
		rT.doneOn = -1
		st.reduces = append(st.reduces, rT)
		st.reduceQ = append(st.reduceQ, rT)
		rt.tr.TaskQueued(float64(rt.sim.Now()), trace.RoleReduce, st.je.job.ID, st.idx, rT.index, rT.attempts)
	}
	rt.requestDispatch()
}

// runReduce executes one attempt of reduce task rT on machine m: rack-
// aggregated shuffle fetch, compute at B_R, then a replicated output write
// for terminal stages. The attempt is tracked so failures and speculation
// can abort it.
func (rt *runtime) runReduce(st *stageExec, rT *reduceTask, m int) {
	je := st.je
	rt.freeSlots[m]--
	rt.taskStarted(je)
	je.touchRack(rt.cluster.RackOf(m))
	tk := rt.track(je, st, nil, rT, m)
	rt.tr.TaskStart(float64(rt.sim.Now()), trace.RoleReduce, je.job.ID, st.idx, rT.index, rT.attempts, m)
	p := st.profile
	perReduce := p.ShuffleBytes / float64(p.ReduceTasks)
	rt.armCrash(tk, p.OutputBytes/float64(p.ReduceTasks)/p.ReduceRate)

	finish := func() {
		tk.done = true
		rt.finishTracking(tk)
		rt.probe(invariants.TaskFinish, m, je.job.ID)
		dur := float64(rt.sim.Now() - tk.started)
		rt.tr.TaskFinish(float64(rt.sim.Now()), trace.RoleReduce, je.job.ID, st.idx, rT.index, rT.attempts, m, dur)
		je.taskSeconds += dur
		je.reduceSeconds = append(je.reduceSeconds, dur)
		rt.freeSlots[m]++
		rt.taskEnded(je)
		rT.doneOn = m
		st.reduceMachines = append(st.reduceMachines, m)
		st.reducesDone++
		if st.reducesDone == p.ReduceTasks {
			rt.finishStage(st)
		}
		rt.requestDispatch()
	}

	write := func() {
		tk.endCompute()
		outBytes := p.OutputBytes / float64(p.ReduceTasks)
		if outBytes <= 0 || !rt.isTerminal(st) || rt.opts.OutputReplication <= 1 {
			finish()
			return
		}
		rt.writeOutput(tk, st.coflow, m, outBytes, finish)
	}

	compute := func() {
		rt.tr.ShuffleDone(float64(rt.sim.Now()), je.job.ID, st.idx, rT.index, m)
		nominal := p.OutputBytes / float64(p.ReduceTasks) / p.ReduceRate
		tk.after(rt, des.Time(rt.computeDuration(tk, nominal)), write)
	}

	// Shuffle: one aggregated flow per source rack. The portion produced
	// on machine m itself never touches the network; the rest of m's rack
	// contends only on the reducer's downlink (full in-rack bisection);
	// remote racks traverse their uplink and the reducer rack's downlink.
	if perReduce <= 0 || p.MapTasks == 0 {
		compute()
		return
	}
	myRack := rt.cluster.RackOf(m)
	nm := float64(p.MapTasks)
	remainingFlows := 1 // guard so compute fires exactly once, async
	flowDone := func() {
		remainingFlows--
		if remainingFlows == 0 {
			compute()
		}
	}
	for r, cnt := range st.mapsOnRack {
		if cnt == 0 {
			continue
		}
		bytes := perReduce * float64(cnt) / nm
		if r == myRack {
			bytes -= perReduce * float64(st.mapsOnMachine[m]) / nm
			if bytes <= 0 {
				continue
			}
			remainingFlows++
			tk.flow(rt, func(done func(*netsim.Flow)) *netsim.Flow {
				// shufBuf is reusable: StartPath interns the path and the
				// flow keeps the canonical copy, never this buffer.
				rt.shufBuf[0] = rt.cluster.MachineDownlink(m)
				return rt.net.StartPath(rt.shufBuf[:1],
					false, bytes, st.coflow, je.job.ID, done)
			}, flowDone)
			continue
		}
		remainingFlows++
		tk.flow(rt, func(done func(*netsim.Flow)) *netsim.Flow {
			rt.shufBuf[0] = rt.cluster.RackUplink(r)
			rt.shufBuf[1] = rt.cluster.RackDownlink(myRack)
			rt.shufBuf[2] = rt.cluster.MachineDownlink(m)
			return rt.net.StartPath(rt.shufBuf[:3],
				true, bytes, st.coflow, je.job.ID, done)
		}, flowDone)
	}
	// Release the guard via a zero-byte loopback so compute runs (async)
	// even when all shuffle input was node-local.
	tk.flow(rt, func(done func(*netsim.Flow)) *netsim.Flow {
		return rt.net.Start(m, m, 0, 0, je.job.ID, done)
	}, flowDone)
}

// writeOutput models the replicated DFS write pipeline: the first replica
// stays local; one copy crosses to a machine on a remote rack and a second
// copy is made within that rack.
func (rt *runtime) writeOutput(tk *runningTask, coflow netsim.CoflowID, m int, bytes float64, done func()) {
	je := tk.je
	view := rt.store.View()
	myRack := rt.cluster.RackOf(m)
	remoteRack := myRack
	if rt.cluster.Config.Racks > 1 {
		remoteRack = rt.pickRemoteRack(myRack)
	}
	r2 := view.LeastLoadedMachineInRack(remoteRack, map[int]bool{m: true})
	if r2 < 0 {
		r2 = m
	}
	r3 := view.LeastLoadedMachineInRack(remoteRack, map[int]bool{m: true, r2: true})
	if r3 < 0 {
		r3 = r2
	}
	remaining := 2
	flowDone := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	tk.flow(rt, func(cb func(*netsim.Flow)) *netsim.Flow {
		return rt.net.Start(m, r2, bytes, coflow, je.job.ID, cb)
	}, flowDone)
	if rt.opts.OutputReplication >= 3 {
		tk.flow(rt, func(cb func(*netsim.Flow)) *netsim.Flow {
			return rt.net.Start(r2, r3, bytes, coflow, je.job.ID, cb)
		}, flowDone)
	} else {
		tk.flow(rt, func(cb func(*netsim.Flow)) *netsim.Flow {
			return rt.net.Start(m, m, 0, 0, je.job.ID, cb)
		}, flowDone)
	}
}

// pickRemoteRack returns a uniformly random rack != myRack, deterministic-
// ally walking past racks isolated by a failed uplink when possible (a
// write into such a rack would park until the link recovers).
func (rt *runtime) pickRemoteRack(myRack int) int {
	racks := rt.cluster.Config.Racks
	r := rt.rng.Intn(racks - 1)
	if r >= myRack {
		r++
	}
	if rt.rackLinkFactor[r] > 0 {
		return r
	}
	for off := 1; off < racks; off++ {
		c := (r + off) % racks
		if c != myRack && rt.rackLinkFactor[c] > 0 {
			return c
		}
	}
	return r
}

// isTerminal reports whether no later stage consumes st's output.
func (rt *runtime) isTerminal(st *stageExec) bool {
	for i := st.idx + 1; i < len(st.je.job.Stages); i++ {
		for _, u := range st.je.job.Stages[i].Upstream {
			if u == st.idx {
				return false
			}
		}
	}
	return true
}

// finishStage marks a stage done and wakes downstream stages whose inputs
// are now all available.
func (rt *runtime) finishStage(st *stageExec) {
	st.phase = stageDone
	je := st.je
	je.stagesLeft--
	if je.stagesLeft == 0 {
		je.completion = float64(rt.sim.Now())
		rt.active--
		rt.probe(invariants.JobDone, -1, je.job.ID)
		rt.tr.JobDone(float64(rt.sim.Now()), je.job.ID)
		rt.onJobTerminal(je)
		rt.requestDispatch()
		return
	}
	for i := st.idx + 1; i < len(je.job.Stages); i++ {
		down := je.stages[i]
		if down.phase != stageWaiting {
			continue
		}
		ready := true
		consumes := false
		for _, u := range je.job.Stages[i].Upstream {
			if u == st.idx {
				consumes = true
			}
			if je.stages[u].phase != stageDone {
				ready = false
			}
		}
		if !consumes || !ready {
			continue
		}
		// Collect upstream producer machines for input locality.
		var ups []int
		for _, u := range je.job.Stages[i].Upstream {
			ups = append(ups, je.stages[u].reduceMachines...)
		}
		down.upstreamMachines = ups
		rt.startStage(down)
	}
	rt.requestDispatch()
}
