package runtime

import "corral/internal/des"

// Dispatch: the resource-manager side of the runtime. Whenever slots free
// up or new tasks become runnable, pending tasks are matched to free slots
// according to the configured policy.
//
// Job order is fixed by sortDispatchOrder (FIFO for Yarn-CS and
// ShuffleWatcher; planner priority for Corral/LocalShuffle, with ad-hoc
// jobs after all planned jobs). Placement constraints (allowedRacks) are
// hard; locality preferences for map tasks are soft and widen with delay
// scheduling (§3.1, [48]): after DelayNodeLocal declined opportunities a
// job accepts rack-local slots, after DelayRackLocal any slot.

// shuffleMachineOrder re-permutes the heartbeat order (Fisher-Yates on the
// runtime's seeded rng, so runs stay deterministic).
func (rt *runtime) shuffleMachineOrder() {
	n := len(rt.machineOrder)
	for i := n - 1; i > 0; i-- {
		j := rt.rng.Intn(i + 1)
		rt.machineOrder[i], rt.machineOrder[j] = rt.machineOrder[j], rt.machineOrder[i]
	}
}

// requestDispatch coalesces dispatch work to one event per instant.
func (rt *runtime) requestDispatch() {
	if rt.dispatchPending {
		return
	}
	rt.dispatchPending = true
	rt.sim.After(0, func() {
		rt.dispatchPending = false
		rt.dispatch()
	})
}

// runnableTasks reports how many tasks the job could offer to a slot right
// now: pending (unassigned) maps plus queued reduces across all stages.
// Zero means a dispatch visit to this job is a guaranteed no-op — nothing
// to pop, and the delay-scheduling decline path needs a pending map too.
//
//corral:hotpath
func (je *jobExec) runnableTasks() int {
	n := 0
	for _, st := range je.stages {
		n += st.pendingMapCount + len(st.reduceQ)
	}
	return n
}

// dispatch greedily fills free slots until no job accepts one. If jobs
// declined slots waiting for locality, a heartbeat retry is scheduled —
// that retry is when the delay-scheduling skip counters actually buy the
// job wider locality, so the "delay" is real simulated time.
//
// Machines are visited in a freshly shuffled order on every pass: YARN
// node-manager heartbeats arrive in effectively random order, and a fixed
// index order would let the FIFO scheduler pack jobs into low-numbered
// racks "for free".
func (rt *runtime) dispatch() {
	rt.declined = false
	// One pass over the job list narrows the per-slot scan to jobs that can
	// actually use a slot. Dispatch order is preserved (runnableJobs is a
	// subsequence of byOrder) and the skipped jobs are exactly those whose
	// offerSlotTo visit would have been a no-op, so assignments, skip
	// counters and the rng stream are unchanged. Nothing dispatch launches
	// can make a job runnable synchronously (all completions and stage
	// transitions arrive as later events), so one snapshot per dispatch
	// suffices; jobs draining to zero mid-pass are lazily skipped.
	rt.runnableJobs = rt.runnableJobs[:0]
	for _, je := range rt.byOrder {
		if je.submitted && !je.done() && !je.amDown && je.runnableTasks() > 0 {
			rt.runnableJobs = append(rt.runnableJobs, je)
		}
	}
	for {
		assigned := false
		rt.shuffleMachineOrder()
		for _, m := range rt.machineOrder {
			if rt.dead[m] || rt.blacklisted[m] {
				continue
			}
			for rt.freeSlots[m] > 0 && rt.offerSlot(m) {
				assigned = true
			}
		}
		if !assigned {
			break
		}
	}
	if rt.declined && !rt.retryPending {
		rt.retryPending = true
		rt.sim.After(des.Time(rt.opts.Heartbeat), func() {
			rt.retryPending = false
			rt.dispatch()
		})
	}
}

// offerSlot offers one slot on machine m. Under the plan-driven
// schedulers with both planned and ad-hoc jobs present, the two groups
// form capacity-scheduler queues: the freed slot goes first to whichever
// queue is under its share (work-conserving in both directions). With a
// single queue the slot is offered in plain dispatch order.
func (rt *runtime) offerSlot(m int) bool {
	queued := (rt.opts.Scheduler == Corral || rt.opts.Scheduler == LocalShuffle) &&
		rt.havePlanned && rt.haveAdhoc
	if !queued {
		return rt.offerSlotTo(m, nil)
	}
	planned := func(je *jobExec) bool { return je.assignment != nil }
	adhoc := func(je *jobExec) bool { return je.assignment == nil }
	adhocFirst := float64(rt.runningAdhoc) <
		rt.opts.AdhocShare*float64(rt.runningPlanned+rt.runningAdhoc+1)
	if adhocFirst {
		return rt.offerSlotTo(m, adhoc) || rt.offerSlotTo(m, planned)
	}
	return rt.offerSlotTo(m, planned) || rt.offerSlotTo(m, adhoc)
}

// offerSlotTo offers one slot on machine m to jobs in dispatch order that
// match the filter (nil = all). It returns true if a task was launched.
//
//corral:hotpath
func (rt *runtime) offerSlotTo(m int, filter func(*jobExec) bool) bool {
	rack := rt.cluster.RackOf(m)
	for _, je := range rt.runnableJobs {
		if je.done() || je.amDown || je.runnableTasks() == 0 {
			continue
		}
		if filter != nil && !filter(je) {
			continue
		}
		if !je.allowsRack(rack) {
			continue
		}
		hadMaps := false
		level := je.localityLevel(rt)

		// 1) Node-local maps from any mapping stage.
		for _, st := range je.stages {
			if st.phase != stageMapping {
				continue
			}
			if st.pendingMapCount > 0 {
				hadMaps = true
			}
			if t := popTask(st.byMachine, m, st); t != nil {
				je.skips = 0
				rt.runMap(st, t, m)
				return true
			}
		}
		// 2) Preference-free maps.
		for _, st := range je.stages {
			if st.phase != stageMapping {
				continue
			}
			if t := popSlice(&st.anywhere, st); t != nil {
				rt.runMap(st, t, m)
				return true
			}
		}
		// 3) Reduce tasks (no soft locality; constraints already applied).
		for _, st := range je.stages {
			if st.phase == stageReducing && len(st.reduceQ) > 0 {
				rT := st.reduceQ[len(st.reduceQ)-1]
				st.reduceQ = st.reduceQ[:len(st.reduceQ)-1]
				rt.runReduce(st, rT, m)
				return true
			}
		}
		// 4) Rack-local maps once patience level allows.
		if level >= 1 {
			for _, st := range je.stages {
				if st.phase != stageMapping {
					continue
				}
				if t := popTask(st.byRack, rack, st); t != nil {
					rt.runMap(st, t, m)
					return true
				}
			}
		}
		// 5) Any map once fully patient.
		if level >= 2 {
			for _, st := range je.stages {
				if st.phase != stageMapping {
					continue
				}
				if t := popSlice(&st.anyPref, st); t != nil {
					rt.runMap(st, t, m)
					return true
				}
			}
		}
		if hadMaps {
			// Declined for locality: one delay-scheduling skip.
			je.skips++
			rt.declined = true
		}
	}
	return false
}

// localityLevel maps the job's skip counter to an allowed locality level:
// 0 node-local only, 1 rack-local, 2 anywhere.
func (je *jobExec) localityLevel(rt *runtime) int {
	switch {
	case je.skips < rt.opts.DelayNodeLocal:
		return 0
	case je.skips < rt.opts.DelayRackLocal:
		return 1
	}
	return 2
}

// popTask pops an unassigned task from an index bucket, lazily discarding
// entries already assigned through other buckets.
func popTask(idx map[int][]*mapTask, key int, st *stageExec) *mapTask {
	lst := idx[key]
	for len(lst) > 0 {
		t := lst[len(lst)-1]
		lst = lst[:len(lst)-1]
		if !t.assigned {
			idx[key] = lst
			t.assigned = true
			st.pendingMapCount--
			return t
		}
	}
	if len(lst) == 0 {
		delete(idx, key)
	} else {
		idx[key] = lst
	}
	return nil
}

// popSlice pops an unassigned task from a plain list.
func popSlice(lst *[]*mapTask, st *stageExec) *mapTask {
	l := *lst
	for len(l) > 0 {
		t := l[len(l)-1]
		l = l[:len(l)-1]
		if !t.assigned {
			*lst = l
			t.assigned = true
			st.pendingMapCount--
			return t
		}
	}
	*lst = l
	return nil
}
