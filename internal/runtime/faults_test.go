package runtime

import (
	"math"
	"reflect"
	"testing"

	"corral/internal/dfs"
	"corral/internal/job"
	"corral/internal/planner"
)

// --- S1: watchdog timers are canceled on normal completion ------------------

func TestWatchdogCanceledAfterCompletion(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	// Every task straggles at 1.5x, below the 2x watchdog threshold: each
	// watchdog is armed but the task finishes first. With finishTracking
	// canceling owned timers, no watchdog ever fires, so the run must be
	// bit-identical to the same run without speculation (canceled events
	// are not counted by des.Fired).
	base := Options{
		Topology: topo, BlockSize: 64e6, Seed: 31,
		StragglerFraction: 1, StragglerSlowdown: 1.5, SpeculationThreshold: 2,
	}
	noSpec := mustRun(t, base, mk())
	withSpec := base
	withSpec.Speculation = true
	spec := mustRun(t, withSpec, mk())
	if !reflect.DeepEqual(noSpec, spec) {
		t.Fatalf("armed-but-unfired watchdogs changed the run:\nno spec: %+v\nspec:    %+v",
			noSpec, spec)
	}
}

// --- S2: at most one speculative relaunch per task --------------------------

func TestSpeculativeRelaunchCappedAtOne(t *testing.T) {
	topo := smallTopo()
	// Every attempt straggles at 6x and the watchdog fires at 2x. Without
	// the one-relaunch cap the relaunch re-rolls the straggler dice,
	// straggles again, and is killed again, forever. With the cap the
	// backup copy runs at nominal speed and the run terminates.
	rt, err := newRuntime(Options{
		Topology: topo, BlockSize: 64e6, Seed: 32,
		StragglerFraction: 1, StragglerSlowdown: 6,
		Speculation: true, SpeculationThreshold: 2,
	}, []*job.Job{shuffleJob(1)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete with universal stragglers + speculation")
	}
	st := rt.jobs[0].stages[0]
	if st.mapsDone != 8 || st.reducesDone != 8 {
		t.Fatalf("maps/reduces done = %d/%d, want 8/8", st.mapsDone, st.reducesDone)
	}
}

// --- S3: requeueMap under repeated failures ---------------------------------

func TestRequeueMapReplicaFiltering(t *testing.T) {
	rt, err := newRuntime(Options{Topology: smallTopo(), Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	newStage := func() *stageExec {
		return &stageExec{
			byMachine:     make(map[int][]*mapTask),
			byRack:        make(map[int][]*mapTask),
			mapsOnMachine: make(map[int]int),
			mapsOnRack:    make([]int, rt.cluster.Config.Racks),
		}
	}
	blk := &dfs.Block{Size: 1, Replicas: []int{0, 1, 4}}

	// One replica machine dead: the task keeps its two live preferences.
	st := newStage()
	rt.dead[0] = true
	tk := &mapTask{blk: blk, srcMachine: -1, assigned: true}
	rt.requeueMap(st, tk)
	if len(st.byMachine[0]) != 0 || len(st.byMachine[1]) != 1 || len(st.byMachine[4]) != 1 {
		t.Fatalf("byMachine after one dead replica = %v", st.byMachine)
	}
	if len(st.anyPref) != 1 || len(st.anywhere) != 0 {
		t.Fatalf("anyPref/anywhere = %d/%d, want 1/0", len(st.anyPref), len(st.anywhere))
	}
	if st.pendingMapCount != 1 || tk.assigned {
		t.Fatalf("pendingMapCount=%d assigned=%v, want 1/false", st.pendingMapCount, tk.assigned)
	}

	// All replicas dead: only now does the task land in anywhere.
	st = newStage()
	rt.dead[1], rt.dead[4] = true, true
	tk2 := &mapTask{blk: blk, srcMachine: -1, assigned: true}
	rt.requeueMap(st, tk2)
	if len(st.anywhere) != 1 || len(st.anyPref) != 0 || len(st.byMachine) != 0 {
		t.Fatalf("all-replicas-dead requeue: anywhere=%d anyPref=%d byMachine=%v",
			len(st.anywhere), len(st.anyPref), st.byMachine)
	}
}

func TestMapRunsOnceAcrossRepeatedFailures(t *testing.T) {
	topo := smallTopo()
	// Machine 0 dies twice (recovering in between); its rack-mates with
	// the sibling replicas die alongside it the second time. The affected
	// map tasks must complete exactly once each.
	rt, err := newRuntime(Options{
		Topology: topo, BlockSize: 64e6, Seed: 33,
		Failures: []Failure{
			{At: 0.3, Machine: 0, Downtime: 1.0},
			{At: 2.0, Machine: 0, Downtime: 1.0},
			{At: 2.0, Machine: 1, Downtime: 1.0},
			{At: 2.0, Machine: 2, Downtime: 1.0},
			{At: 2.0, Machine: 3, Downtime: 1.0},
		},
	}, []*job.Job{shuffleJob(1)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not survive repeated transient failures")
	}
	st := rt.jobs[0].stages[0]
	if st.mapsDone != st.profile.MapTasks {
		t.Fatalf("mapsDone = %d, want %d (each task exactly once)", st.mapsDone, st.profile.MapTasks)
	}
	if st.reducesDone != st.profile.ReduceTasks {
		t.Fatalf("reducesDone = %d, want %d", st.reducesDone, st.profile.ReduceTasks)
	}
}

// --- S4: rack-majority fallback mid-shuffle ---------------------------------

func TestRackMajorityLossMidShuffle(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	// Pin the job to a single rack so losing that rack's majority is
	// guaranteed to trip the deadIn*2 > total fallback.
	plan := &planner.Plan{
		Objective: planner.MinimizeMakespan,
		Assignments: map[int]*planner.Assignment{
			1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 30},
		},
	}
	clean := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 34},
		[]*job.Job{shuffleJob(1)})
	// Maps of this shuffle-dominated job finish in well under half the
	// makespan; at 0.5*makespan the job is mid-shuffle. Kill 3 of the 4
	// machines of its planned rack then.
	at := 0.5 * clean.Makespan
	lo := 0 * topo.MachinesPerRack
	rt, err := newRuntime(Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 34,
		Failures: []Failure{
			{At: at, Machine: lo}, {At: at, Machine: lo + 1}, {At: at, Machine: lo + 2},
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.CompletionTime <= 0 {
		t.Fatal("job did not finish after losing its planned rack mid-shuffle")
	}
	if jr.Completion <= at {
		t.Fatalf("job finished at %g, before the failure at %g — not mid-shuffle", jr.Completion, at)
	}
	if rt.jobs[0].allowedRacks != nil {
		t.Fatalf("constraints not dropped: allowedRacks = %v", rt.jobs[0].allowedRacks)
	}
	if jr.RacksUsed < 2 {
		t.Fatalf("job stayed on %d rack(s); deadIn*2 > total fallback did not widen it", jr.RacksUsed)
	}
}

// --- transient failures ------------------------------------------------------

func TestTransientFailureRecovers(t *testing.T) {
	topo := smallTopo()
	var recovered []float64
	res := mustRun(t, Options{
		Topology: topo, BlockSize: 64e6, Seed: 35,
		Failures: []Failure{{At: 0.5, Machine: 0, Downtime: 2}},
		OnMachineRepair: func(m int, at float64) {
			if m == 0 {
				recovered = append(recovered, at)
			}
		},
	}, []*job.Job{shuffleJob(1)})
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete across a transient failure")
	}
	if len(recovered) != 1 || math.Abs(recovered[0]-2.5) > 1e-9 {
		t.Fatalf("recovery hook calls = %v, want one at t=2.5", recovered)
	}
}

func TestFailureValidationDowntime(t *testing.T) {
	opts := Options{Topology: smallTopo(), Failures: []Failure{{At: 1, Machine: 0, Downtime: -1}}}
	if _, err := Run(opts, nil); err == nil {
		t.Fatal("negative downtime not rejected")
	}
	bad := Options{Topology: smallTopo(), LinkFaults: []LinkFault{{At: 1, Rack: 99, Factor: 1}}}
	if _, err := Run(bad, nil); err == nil {
		t.Fatal("out-of-range link fault rack not rejected")
	}
	neg := Options{Topology: smallTopo(), LinkFaults: []LinkFault{{At: 1, Rack: 0, Factor: -0.5}}}
	if _, err := Run(neg, nil); err == nil {
		t.Fatal("negative link fault factor not rejected")
	}
}

// --- link faults -------------------------------------------------------------

func TestLinkFaultSlowsAndRecovers(t *testing.T) {
	topo := smallTopo()
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }
	clean := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 36}, mk())
	// Fail every rack uplink for a window mid-run; all cross-rack traffic
	// parks, then resumes. The job must finish, later than clean.
	var faults []LinkFault
	for r := 0; r < topo.Racks; r++ {
		faults = append(faults,
			LinkFault{At: 0.3 * clean.Makespan, Rack: r, Factor: 0},
			LinkFault{At: 0.3*clean.Makespan + 5, Rack: r, Factor: 1})
	}
	faulty := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 36, LinkFaults: faults}, mk())
	if faulty.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete across a full uplink outage")
	}
	if faulty.Makespan <= clean.Makespan {
		t.Fatalf("outage did not slow the run: %g vs clean %g", faulty.Makespan, clean.Makespan)
	}
}

func TestUplinkFailureDropsConstraints(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	plan := &planner.Plan{
		Objective: planner.MinimizeMakespan,
		Assignments: map[int]*planner.Assignment{
			1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 30},
		},
	}
	clean := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 37},
		[]*job.Job{shuffleJob(1)})
	rt, err := newRuntime(Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 37,
		LinkFaults: []LinkFault{
			{At: 0.4 * clean.Makespan, Rack: 0, Factor: 0},
			{At: 0.4*clean.Makespan + 30, Rack: 0, Factor: 1},
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete after its planned rack was isolated")
	}
	if rt.jobs[0].allowedRacks != nil {
		t.Fatalf("uplink failure left constraints in place: %v", rt.jobs[0].allowedRacks)
	}
}

// --- re-replication integration (acceptance: 2+1 spread + netsim bytes) -----

func TestReReplicationRestoresSpread(t *testing.T) {
	topo := smallTopo()
	opts := Options{Topology: topo, BlockSize: 64e6, Seed: 38}
	mk := func() []*job.Job { return []*job.Job{shuffleJob(1)} }

	// Clean run: record total network bytes and which blocks live on the
	// victim machine. Same seed => identical placement in both runs.
	rtClean, err := newRuntime(opts, mk())
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := rtClean.run()
	if err != nil {
		t.Fatal(err)
	}
	input, ok := rtClean.store.Open("job1-stage0-input")
	if !ok || len(input.Blocks) == 0 {
		t.Fatal("input file missing")
	}
	victim := input.Blocks[0].Replicas[0]
	affected := make(map[int]bool) // block indices with a replica on victim
	for i := range input.Blocks {
		for _, m := range input.Blocks[i].Replicas {
			if m == victim {
				affected[i] = true
			}
		}
	}

	// Failure run: kill the victim permanently after the job is done, so
	// the byte-accounting delta is exactly the repair traffic.
	failOpts := opts
	failOpts.Failures = []Failure{{At: resClean.Makespan + 5, Machine: victim}}
	rtFail, err := newRuntime(failOpts, mk())
	if err != nil {
		t.Fatal(err)
	}
	resFail, err := rtFail.run()
	if err != nil {
		t.Fatal(err)
	}
	if resFail.RepairBytes <= 0 {
		t.Fatal("no repair bytes recorded after a machine with replicas died")
	}
	delta := rtFail.net.TotalBytes() - rtClean.net.TotalBytes()
	if math.Abs(delta-resFail.RepairBytes) > 1e-3 {
		t.Fatalf("netsim byte delta %g != repair bytes %g", delta, resFail.RepairBytes)
	}

	file, ok := rtFail.store.Open("job1-stage0-input")
	if !ok {
		t.Fatal("input file missing after failure run")
	}
	for i := range file.Blocks {
		b := &file.Blocks[i]
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(b.Replicas))
		}
		spread := make(map[int]int)
		for _, m := range b.Replicas {
			if m == victim {
				t.Fatalf("block %d still has a replica on the dead machine: %v", i, b.Replicas)
			}
			if !rtFail.store.Alive(m) {
				t.Fatalf("block %d replica on dead machine %d", i, m)
			}
			spread[rtFail.cluster.RackOf(m)]++
		}
		if !affected[i] {
			continue
		}
		// Affected blocks were re-replicated; the 2+1 arrangement must be
		// restored: exactly two racks, at most two replicas per rack.
		if len(spread) != 2 {
			t.Fatalf("repaired block %d spans %d racks (%v), want 2", i, len(spread), spread)
		}
		for r, c := range spread {
			if c > 2 {
				t.Fatalf("repaired block %d has %d replicas on rack %d", i, c, r)
			}
		}
	}
}

// --- failure-triggered replanning -------------------------------------------

func TestReplanOnFailureReassigns(t *testing.T) {
	topo := smallTopo()
	j1 := shuffleJob(1)
	j2 := shuffleJob(2)
	j2.Arrival = 20 // arrives after the failure below
	jobs := []*job.Job{j1, j2}
	// Both jobs planned onto rack 0; the failure guts that rack before
	// job 2 arrives, so the replan must move (or unconstrain) job 2.
	plan := &planner.Plan{
		Objective: planner.MinimizeMakespan,
		Assignments: map[int]*planner.Assignment{
			1: {JobID: 1, Racks: []int{0}, Start: 0, EstLatency: 15},
			2: {JobID: 2, Racks: []int{0}, Start: 20, EstLatency: 15},
		},
	}
	deadRack := 0
	lo := deadRack * topo.MachinesPerRack
	rt, err := newRuntime(Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 39,
		ReplanOnFailure: true,
		Failures: []Failure{
			{At: 1, Machine: lo}, {At: 1, Machine: lo + 1}, {At: 1, Machine: lo + 2},
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans < 1 {
		t.Fatal("rack-majority loss did not trigger a replan")
	}
	for _, jr := range res.Jobs {
		if jr.CompletionTime <= 0 {
			t.Fatalf("job %d never completed under replanning", jr.ID)
		}
	}
	// The not-yet-arrived job should have been replanned away from the
	// mostly-dead rack (or left unconstrained) — never pinned to it alone.
	if r2 := rt.jobs[1].allowedRacks; len(r2) == 1 && r2[0] == deadRack {
		t.Fatalf("job 2 replanned onto the failed rack alone: %v", r2)
	}
}

func TestReplanDeterminism(t *testing.T) {
	run := func() *Result {
		topo := smallTopo()
		jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
		plan := planFor(t, topo, []*job.Job{shuffleJob(1), shuffleJob(2)}, planner.MinimizeMakespan)
		return mustRun(t, Options{
			Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 40,
			ReplanOnFailure: true,
			Failures: []Failure{
				{At: 0.5, Machine: 0, Downtime: 3}, {At: 0.5, Machine: 1, Downtime: 3},
				{At: 0.5, Machine: 2, Downtime: 3},
			},
			LinkFaults: []LinkFault{{At: 1, Rack: 1, Factor: 0.25}, {At: 4, Rack: 1, Factor: 1}},
		}, jobs)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replan+fault run nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
}
