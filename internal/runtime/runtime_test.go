package runtime

import (
	"math"
	"testing"

	"corral/internal/job"
	"corral/internal/model"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/topology"
)

const gbps = 1e9 / 8

// smallTopo: 4 racks x 4 machines x 2 slots, 10 Gbps NICs, 5:1.
func smallTopo() topology.Config {
	return topology.Config{
		Racks:            4,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

// shuffleJob is a one-rack-friendly, shuffle-heavy MapReduce job.
func shuffleJob(id int) *job.Job {
	return job.MapReduce(id, "shuffle", job.Profile{
		InputBytes:   512e6,
		ShuffleBytes: 2e9,
		OutputBytes:  100e6,
		MapTasks:     8,
		ReduceTasks:  8,
		MapRate:      2e8,
		ReduceRate:   2e8,
	})
}

func planFor(t *testing.T, topo topology.Config, jobs []*job.Job, obj planner.Objective) *planner.Plan {
	t.Helper()
	p, err := planner.New(planner.Input{
		Cluster:   model.FromTopology(topo),
		Jobs:      jobs,
		Alpha:     -1,
		Objective: obj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustRun(t *testing.T, opts Options, jobs []*job.Job) *Result {
	t.Helper()
	res, err := Run(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleJobCompletes(t *testing.T) {
	jobs := []*job.Job{shuffleJob(1)}
	res := mustRun(t, Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 1}, jobs)
	if len(res.Jobs) != 1 {
		t.Fatalf("results for %d jobs, want 1", len(res.Jobs))
	}
	jr := res.Jobs[0]
	if jr.CompletionTime <= 0 {
		t.Fatalf("completion time = %g", jr.CompletionTime)
	}
	// Sanity upper bound: the whole job moves ~2.6 GB over >= 1 Gbps
	// effective paths with compute ~ (64e6/2e8)s per task.
	if jr.CompletionTime > 300 {
		t.Fatalf("completion time = %g, implausibly slow", jr.CompletionTime)
	}
	if len(jr.ReduceSeconds) != 8 {
		t.Fatalf("reduce samples = %d, want 8", len(jr.ReduceSeconds))
	}
	if jr.TaskSeconds <= 0 {
		t.Fatal("no task seconds recorded")
	}
	if res.Makespan != jr.Completion {
		t.Fatalf("makespan %g != single job completion %g", res.Makespan, jr.Completion)
	}
}

func TestCorralRequiresPlan(t *testing.T) {
	if _, err := Run(Options{Topology: smallTopo(), Scheduler: Corral}, nil); err == nil {
		t.Fatal("Corral without plan not rejected")
	}
	if _, err := Run(Options{Topology: smallTopo(), Scheduler: LocalShuffle}, nil); err == nil {
		t.Fatal("LocalShuffle without plan not rejected")
	}
}

func TestCorralConstrainsRacks(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1), shuffleJob(2), shuffleJob(3), shuffleJob(4)}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 2,
	}, jobs)
	for _, jr := range res.Jobs {
		a := plan.Assignments[jr.ID]
		if jr.RacksUsed > len(a.Racks) {
			t.Fatalf("job %d touched %d racks, plan allows %d", jr.ID, jr.RacksUsed, len(a.Racks))
		}
	}
}

func TestCorralBeatsYarnCSOnShuffleHeavyBatch(t *testing.T) {
	// The paper's headline: joint data+task placement cuts makespan and
	// cross-rack bytes (Fig 6, Fig 7a).
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)

	yarn := mustRun(t, Options{Topology: topo, Scheduler: YarnCS, BlockSize: 64e6, Seed: 3}, jobs)
	corral := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 3}, jobs)

	if corral.Makespan >= yarn.Makespan {
		t.Fatalf("Corral makespan %g >= Yarn-CS %g", corral.Makespan, yarn.Makespan)
	}
	if corral.CrossRackBytes >= yarn.CrossRackBytes {
		t.Fatalf("Corral cross-rack %g >= Yarn-CS %g", corral.CrossRackBytes, yarn.CrossRackBytes)
	}
}

func TestLocalShuffleBetween(t *testing.T) {
	// LocalShuffle shares Corral's task placement but not its data
	// placement, so its cross-rack usage must be at least Corral's.
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	corral := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 4}, jobs)
	local := mustRun(t, Options{Topology: topo, Scheduler: LocalShuffle, Plan: plan, BlockSize: 64e6, Seed: 4}, jobs)
	if local.CrossRackBytes < corral.CrossRackBytes {
		t.Fatalf("LocalShuffle cross-rack %g < Corral %g", local.CrossRackBytes, corral.CrossRackBytes)
	}
}

func TestShuffleWatcherRuns(t *testing.T) {
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	res := mustRun(t, Options{Topology: topo, Scheduler: ShuffleWatcher, BlockSize: 64e6, Seed: 5}, jobs)
	for _, jr := range res.Jobs {
		if jr.CompletionTime <= 0 {
			t.Fatalf("job %d did not complete", jr.ID)
		}
		// ShuffleWatcher confines each of these one-rack jobs to one rack.
		if jr.RacksUsed > 1 {
			t.Fatalf("job %d used %d racks under ShuffleWatcher", jr.ID, jr.RacksUsed)
		}
	}
}

func TestDAGJobExecutes(t *testing.T) {
	p := job.Profile{
		InputBytes: 256e6, ShuffleBytes: 256e6, OutputBytes: 64e6,
		MapTasks: 4, ReduceTasks: 4, MapRate: 2e8, ReduceRate: 2e8,
	}
	dag := &job.Job{ID: 1, Name: "dag", Recurring: true, Stages: []job.Stage{
		{Name: "extract", Profile: p},
		{Name: "left", Profile: p, Upstream: []int{0}},
		{Name: "right", Profile: p, Upstream: []int{0}},
		{Name: "join", Profile: p, Upstream: []int{1, 2}},
	}}
	res := mustRun(t, Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 6}, []*job.Job{dag})
	jr := res.Jobs[0]
	if jr.CompletionTime <= 0 {
		t.Fatal("DAG did not complete")
	}
	// All four stages ran reducers.
	if len(jr.ReduceSeconds) != 16 {
		t.Fatalf("reduce samples = %d, want 16", len(jr.ReduceSeconds))
	}
}

func TestMapOnlyJob(t *testing.T) {
	j := job.MapReduce(1, "maponly", job.Profile{
		InputBytes: 256e6, MapTasks: 4, MapRate: 2e8,
	})
	res := mustRun(t, Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 7}, []*job.Job{j})
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("map-only job did not complete")
	}
	if len(res.Jobs[0].ReduceSeconds) != 0 {
		t.Fatal("map-only job recorded reduce tasks")
	}
}

func TestOnlineArrivals(t *testing.T) {
	j1, j2 := shuffleJob(1), shuffleJob(2)
	j2.Arrival = 500
	res := mustRun(t, Options{Topology: smallTopo(), BlockSize: 64e6, Seed: 8}, []*job.Job{j1, j2})
	for _, jr := range res.Jobs {
		if jr.Completion < jr.Arrival {
			t.Fatalf("job %d completed before arrival", jr.ID)
		}
	}
	var late JobResult
	for _, jr := range res.Jobs {
		if jr.ID == 2 {
			late = jr
		}
	}
	if late.Completion < 500 {
		t.Fatal("late job ran before its arrival")
	}
}

func TestAdHocJobsRunUnderCorral(t *testing.T) {
	topo := smallTopo()
	planned := []*job.Job{shuffleJob(1), shuffleJob(2)}
	adhoc := shuffleJob(3)
	adhoc.AdHoc = true
	adhoc.Recurring = false
	all := append(append([]*job.Job{}, planned...), adhoc)
	plan := planFor(t, topo, planned, planner.MinimizeMakespan)
	res := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 9}, all)
	for _, jr := range res.Jobs {
		if jr.CompletionTime <= 0 {
			t.Fatalf("job %d (adhoc=%v) did not complete", jr.ID, jr.AdHoc)
		}
	}
}

func TestFailureFallbackReleasesConstraints(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	a := plan.Assignments[1]
	if len(a.Racks) != 1 {
		t.Skipf("plan gave %d racks; test wants a 1-rack assignment", len(a.Racks))
	}
	// Kill 3 of 4 machines in the assigned rack: majority dead -> fallback.
	cl := topology.MustNew(topo)
	mlo, _ := cl.MachinesInRack(a.Racks[0])
	failed := []int{mlo, mlo + 1, mlo + 2}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6,
		Seed: 10, FailedMachines: failed,
	}, jobs)
	if res.Jobs[0].CompletionTime <= 0 {
		t.Fatal("job did not complete after rack failure")
	}
	// Fallback means the job may use other racks.
	if res.Jobs[0].RacksUsed < 2 {
		t.Fatalf("job stayed on %d rack(s) despite majority failure", res.Jobs[0].RacksUsed)
	}
}

func TestFailedMachineValidation(t *testing.T) {
	if _, err := Run(Options{Topology: smallTopo(), FailedMachines: []int{999}}, nil); err == nil {
		t.Fatal("out-of-range failed machine not rejected")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		topo := smallTopo()
		var jobs []*job.Job
		for i := 1; i <= 6; i++ {
			j := shuffleJob(i)
			j.Arrival = float64(i) * 10
			jobs = append(jobs, j)
		}
		plan := planFor(t, topo, jobs, planner.MinimizeAvgCompletion)
		return mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 11}, jobs)
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.CrossRackBytes != b.CrossRackBytes {
		t.Fatalf("nondeterministic: (%g,%g) vs (%g,%g)",
			a.Makespan, a.CrossRackBytes, b.Makespan, b.CrossRackBytes)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Completion != b.Jobs[i].Completion {
			t.Fatalf("job %d completion differs", a.Jobs[i].ID)
		}
	}
}

func TestVarysPolicyRuns(t *testing.T) {
	topo := smallTopo()
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, shuffleJob(i))
	}
	res := mustRun(t, Options{
		Topology: topo, Scheduler: YarnCS, Network: netsim.Varys{},
		BlockSize: 64e6, Seed: 12,
	}, jobs)
	if res.Makespan <= 0 {
		t.Fatal("Varys run produced no makespan")
	}
}

func TestCorralSingleRackJobCrossRackOnlyFromWrites(t *testing.T) {
	// A planned 1-rack job reads locally and shuffles in-rack; the only
	// cross-rack bytes should come from the replicated output write.
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1)}
	plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
	if len(plan.Assignments[1].Racks) != 1 {
		t.Skip("plan spread the job; premise gone")
	}
	res := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 13}, jobs)
	jr := res.Jobs[0]
	// Output = 100e6; one cross-rack replica copy.
	if jr.CrossRackBytes > 150e6 {
		t.Fatalf("cross-rack bytes = %g, want ~100e6 (writes only)", jr.CrossRackBytes)
	}
	if jr.CrossRackBytes < 50e6 {
		t.Fatalf("cross-rack bytes = %g, output replication missing?", jr.CrossRackBytes)
	}
}

func TestBackgroundTrafficHurtsYarnMoreThanCorral(t *testing.T) {
	// Fig 12's direction: as background core traffic rises, Corral's edge
	// over Yarn-CS grows (its jobs mostly avoid the core).
	gap := func(bg float64) float64 {
		topo := smallTopo()
		topo.BackgroundPerRack = bg
		var jobs []*job.Job
		for i := 1; i <= 4; i++ {
			jobs = append(jobs, shuffleJob(i))
		}
		plan := planFor(t, topo, jobs, planner.MinimizeMakespan)
		y := mustRun(t, Options{Topology: topo, Scheduler: YarnCS, BlockSize: 64e6, Seed: 14}, jobs)
		c := mustRun(t, Options{Topology: topo, Scheduler: Corral, Plan: plan, BlockSize: 64e6, Seed: 14}, jobs)
		return y.Makespan - c.Makespan
	}
	low := gap(0)
	high := gap(4 * gbps) // half the 8 Gbps uplink
	if high <= low {
		t.Fatalf("Corral's absolute edge did not grow with background traffic: %g -> %g", low, high)
	}
}

func TestResultAggregates(t *testing.T) {
	topo := smallTopo()
	jobs := []*job.Job{shuffleJob(1), shuffleJob(2)}
	res := mustRun(t, Options{Topology: topo, BlockSize: 64e6, Seed: 15}, jobs)
	if got := res.AvgCompletionTime(); got <= 0 {
		t.Fatalf("avg completion = %g", got)
	}
	ct := res.CompletionTimes()
	if len(ct) != 2 || ct[0] > ct[1] {
		t.Fatalf("CompletionTimes = %v", ct)
	}
	if math.IsNaN(res.InputRackCoV) {
		t.Fatal("InputRackCoV is NaN")
	}
}
