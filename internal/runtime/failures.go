package runtime

// Failure handling and straggler mitigation.
//
// Mid-run machine failures (§3.1, §7 "Dealing with failures"): when a
// machine dies, its running tasks are aborted — their pending timers and
// network flows are canceled — and requeued for rescheduling elsewhere.
// DFS replicas on dead machines become unreadable (the remaining replicas
// keep the data available, as the paper's 2+1 replica spread guarantees),
// and if a majority of the machines in a planned job's rack set are dead,
// the job's placement constraints are dropped so it can use any available
// resources.
//
// Simplification (documented in DESIGN.md): outputs of *completed* map
// tasks on a failed machine are not re-executed — only in-flight work is
// lost. Re-running completed upstream work would require per-partition
// shuffle bookkeeping that the rack-aggregated flow model intentionally
// avoids.
//
// Stragglers (§3.3 lists "failures, outliers" as the runtime factors the
// offline model ignores): with probability StragglerFraction a task's
// compute phase runs StragglerSlowdown times slower. With speculation
// enabled, a watchdog fires once the task has run SpeculationThreshold
// times its expected duration and relaunches it — modelling the backup
// copy overtaking the straggler.

import (
	"fmt"

	"corral/internal/des"
	"corral/internal/netsim"
)

// Failure kills one machine at a point in simulated time.
type Failure struct {
	At      float64
	Machine int
}

// runningTask tracks one in-flight task attempt so it can be aborted.
type runningTask struct {
	je      *jobExec
	st      *stageExec
	mapT    *mapTask // nil for reduce attempts
	machine int
	started des.Time
	aborted bool
	done    bool
	events  []*des.Event
	flows   []*netsim.Flow
}

// track registers a new running attempt.
func (rt *runtime) track(je *jobExec, st *stageExec, t *mapTask, m int) *runningTask {
	tk := &runningTask{je: je, st: st, mapT: t, machine: m, started: rt.sim.Now()}
	rt.running[m] = append(rt.running[m], tk)
	return tk
}

// finishTracking removes a completed attempt from the running set.
func (rt *runtime) finishTracking(tk *runningTask) {
	lst := rt.running[tk.machine]
	for i, other := range lst {
		if other == tk {
			lst[i] = lst[len(lst)-1]
			rt.running[tk.machine] = lst[:len(lst)-1]
			return
		}
	}
}

// after schedules a timer owned by the attempt; it is canceled on abort.
func (tk *runningTask) after(rt *runtime, d des.Time, fn func()) {
	ev := rt.sim.After(d, func() {
		if tk.aborted {
			return
		}
		fn()
	})
	tk.events = append(tk.events, ev)
}

// flow starts a network flow owned by the attempt.
func (tk *runningTask) flow(rt *runtime, start func(done func(*netsim.Flow)) *netsim.Flow, done func()) {
	f := start(func(*netsim.Flow) {
		if tk.aborted {
			return
		}
		done()
	})
	tk.flows = append(tk.flows, f)
}

// abort cancels the attempt's timers and flows and requeues its work.
// freeSlot controls whether the slot is returned (false when the machine
// itself died).
func (rt *runtime) abort(tk *runningTask, freeSlot bool) {
	if tk.aborted || tk.done {
		return
	}
	tk.aborted = true
	for _, ev := range tk.events {
		ev.Cancel()
	}
	for _, f := range tk.flows {
		rt.net.Cancel(f)
	}
	rt.finishTracking(tk)
	rt.taskEnded(tk.je)
	if freeSlot {
		rt.freeSlots[tk.machine]++
	}
	// Requeue the work.
	if tk.mapT != nil {
		rt.requeueMap(tk.st, tk.mapT)
	} else {
		tk.st.pendingReduces++
	}
	rt.requestDispatch()
}

// requeueMap returns an aborted map task to its stage's pending indexes,
// skipping now-dead replica machines.
func (rt *runtime) requeueMap(st *stageExec, t *mapTask) {
	t.assigned = false
	st.pendingMapCount++
	switch {
	case t.blk != nil:
		pushed := false
		for _, m := range t.blk.Replicas {
			if rt.dead[m] {
				continue
			}
			st.byMachine[m] = append(st.byMachine[m], t)
			st.byRack[rt.cluster.RackOf(m)] = append(st.byRack[rt.cluster.RackOf(m)], t)
			pushed = true
		}
		if pushed {
			st.anyPref = append(st.anyPref, t)
		} else {
			st.anywhere = append(st.anywhere, t)
		}
	case t.srcMachine >= 0 && !rt.dead[t.srcMachine]:
		st.byMachine[t.srcMachine] = append(st.byMachine[t.srcMachine], t)
		st.byRack[rt.cluster.RackOf(t.srcMachine)] = append(st.byRack[rt.cluster.RackOf(t.srcMachine)], t)
		st.anyPref = append(st.anyPref, t)
	default:
		st.anywhere = append(st.anywhere, t)
	}
}

// failMachine kills machine m at the current simulated time.
func (rt *runtime) failMachine(m int) {
	if rt.dead[m] {
		return
	}
	rt.dead[m] = true
	rt.deadCount++
	rt.freeSlots[m] = 0
	// Abort running attempts (slot not returned: the machine is gone).
	attempts := append([]*runningTask(nil), rt.running[m]...)
	for _, tk := range attempts {
		rt.abort(tk, false)
	}
	// Rack-failure fallback for submitted jobs (§3.1).
	for _, je := range rt.jobs {
		if je.allowedRacks == nil || je.done() {
			continue
		}
		total, deadIn := 0, 0
		for _, r := range je.allowedRacks {
			lo, hi := rt.cluster.MachinesInRack(r)
			for mm := lo; mm < hi; mm++ {
				total++
				if rt.dead[mm] {
					deadIn++
				}
			}
		}
		if deadIn*2 > total {
			je.allowedRacks = nil
		}
	}
	rt.requestDispatch()
}

// validateFailures checks configured failures at startup.
func validateFailures(failures []Failure, machines int) error {
	for _, f := range failures {
		if f.Machine < 0 || f.Machine >= machines {
			return fmt.Errorf("runtime: failure targets machine %d, out of range", f.Machine)
		}
		if f.At < 0 {
			return fmt.Errorf("runtime: failure at negative time %g", f.At)
		}
	}
	return nil
}

// computeDuration applies straggler injection to a task's nominal compute
// time and arms the speculation watchdog if enabled.
func (rt *runtime) computeDuration(tk *runningTask, nominal float64) float64 {
	dur := nominal
	if rt.opts.StragglerFraction > 0 && rt.rng.Float64() < rt.opts.StragglerFraction {
		dur *= rt.opts.StragglerSlowdown
	}
	if rt.opts.Speculation && dur > nominal {
		threshold := rt.opts.SpeculationThreshold
		watch := des.Time(nominal * threshold)
		tk.after(rt, watch, func() {
			// Still running past the threshold: relaunch (the backup copy
			// wins; the straggling attempt is killed).
			rt.abort(tk, true)
		})
	}
	return dur
}
