package runtime

// Failure handling and straggler mitigation.
//
// Mid-run machine failures (§3.1, §7 "Dealing with failures"): when a
// machine dies, its running tasks are aborted — their pending timers and
// network flows are canceled — and requeued for rescheduling elsewhere.
// DFS replicas on dead machines become unreadable (the remaining replicas
// keep the data available, as the paper's 2+1 replica spread guarantees)
// and are re-replicated onto survivors by the repair daemon (repair.go).
// If a majority of the machines in a planned job's rack set are dead, the
// job's placement constraints are dropped so it can use any available
// resources — or, with Options.ReplanOnFailure, the planner is re-invoked
// with commitments for unaffected running jobs (replan.go).
//
// Failures are transient when Failure.Downtime > 0: the machine recovers
// at At+Downtime, rejoining the slot pool, and its disk is treated as
// intact — replicas not yet repaired away become readable again.
//
// Link faults (LinkFault) degrade or fail a rack's uplink+downlink at a
// simulated time; in-flight flows re-share via the netsim recompute, and
// flows crossing a fully failed link park until a later fault restores it.
//
// Simplification (documented in DESIGN.md): outputs of *completed* map
// tasks on a failed machine are not re-executed — only in-flight work is
// lost. Re-running completed upstream work would require per-partition
// shuffle bookkeeping that the rack-aggregated flow model intentionally
// avoids. (Transient recovery narrows the window this matters: a
// recovered machine's map outputs are served again once it is back.)
//
// Stragglers (§3.3 lists "failures, outliers" as the runtime factors the
// offline model ignores): with probability StragglerFraction a task's
// compute phase runs StragglerSlowdown times slower. With speculation
// enabled, a watchdog fires once the task has run SpeculationThreshold
// times its expected duration and relaunches it — modelling the backup
// copy overtaking the straggler. Each task gets at most one speculative
// relaunch, and the relaunched attempt runs at nominal speed (the backup
// copy that overtook the straggler), so speculation always terminates.

import (
	"fmt"
	"math"

	"corral/internal/des"
	"corral/internal/invariants"
	"corral/internal/netsim"
	"corral/internal/trace"
)

// Failure kills one machine at a point in simulated time. A positive
// Downtime makes the failure transient: the machine recovers (slots and
// disk) at At+Downtime. Zero means the machine never comes back.
type Failure struct {
	At       float64
	Machine  int
	Downtime float64
}

// LinkFault rescales one rack's uplink and downlink capacity at a point in
// simulated time. Factor 1 restores the full topology capacity; 0 fails
// the links outright (flows crossing them park until a later fault with a
// positive factor). Faults for the same rack apply in time order; the
// last one wins.
type LinkFault struct {
	At     float64
	Rack   int
	Factor float64
}

// runningTask tracks one in-flight task attempt so it can be aborted.
type runningTask struct {
	je       *jobExec
	st       *stageExec
	mapT     *mapTask    // nil for reduce attempts
	redT     *reduceTask // nil for map attempts
	machine  int
	started  des.Time
	aborted  bool
	done     bool
	noSpec   bool // speculative relaunch: nominal speed, no watchdog
	watchdog *des.Event
	events   []*des.Event
	flows    []*netsim.Flow
}

// ident returns the attempt's trace identity (role, task index, attempt).
func (tk *runningTask) ident() (trace.Role, int, int) {
	if tk.mapT != nil {
		return trace.RoleMap, tk.mapT.index, tk.mapT.attempts
	}
	return trace.RoleReduce, tk.redT.index, tk.redT.attempts
}

// newRunningTask hands out attempt objects from a chunked arena: one
// allocation per chunk instead of one per attempt. Objects are never
// recycled — an attempt's deferred closures (watchdog, requeue, flow done)
// may hold the pointer past its lifetime, and a never-reused object makes
// every such access trivially safe while still cutting allocation count
// ~chunkwise.
//
//corral:hotpath
func (rt *runtime) newRunningTask() *runningTask {
	const chunk = 256
	if len(rt.tkArena) == cap(rt.tkArena) {
		rt.tkArena = make([]runningTask, 0, chunk)
	}
	rt.tkArena = rt.tkArena[:len(rt.tkArena)+1]
	return &rt.tkArena[len(rt.tkArena)-1]
}

// track registers a new running attempt (exactly one of t, rT is set).
func (rt *runtime) track(je *jobExec, st *stageExec, t *mapTask, rT *reduceTask, m int) *runningTask {
	tk := rt.newRunningTask()
	*tk = runningTask{je: je, st: st, mapT: t, redT: rT, machine: m, started: rt.sim.Now()}
	if (t != nil && t.speculated) || (rT != nil && rT.speculated) {
		tk.noSpec = true
	}
	rt.running[m] = append(rt.running[m], tk)
	rt.probe(invariants.TaskStart, m, je.job.ID)
	return tk
}

// finishTracking removes a completed attempt from the running set and
// cancels its owned timers (notably the speculation watchdog), so finished
// tasks leave no dead events in the DES queue. Canceling the timer that is
// currently firing is a harmless no-op.
func (rt *runtime) finishTracking(tk *runningTask) {
	for _, ev := range tk.events {
		ev.Cancel()
	}
	lst := rt.running[tk.machine]
	for i, other := range lst {
		if other == tk {
			lst[i] = lst[len(lst)-1]
			rt.running[tk.machine] = lst[:len(lst)-1]
			return
		}
	}
}

// after schedules a timer owned by the attempt; it is canceled on abort.
func (tk *runningTask) after(rt *runtime, d des.Time, fn func()) {
	ev := rt.sim.After(d, func() {
		if tk.aborted {
			return
		}
		fn()
	})
	tk.events = append(tk.events, ev)
}

// flow starts a network flow owned by the attempt. The completion wrapper
// drops the attempt's reference before anything else: under flow pooling
// (enabled by newRuntime) the *netsim.Flow is recycled once its done
// callback returns, so a stale entry in tk.flows could alias a different,
// still-active flow by the time abortTask cancels the list.
func (tk *runningTask) flow(rt *runtime, start func(done func(*netsim.Flow)) *netsim.Flow, done func()) {
	f := start(func(fin *netsim.Flow) {
		tk.removeFlow(fin)
		if tk.aborted {
			return
		}
		done()
	})
	tk.flows = append(tk.flows, f)
}

// removeFlow drops one flow reference by identity (swap-remove; order is
// irrelevant, Cancel on abort is order-independent).
func (tk *runningTask) removeFlow(f *netsim.Flow) {
	for i, other := range tk.flows {
		if other == f {
			last := len(tk.flows) - 1
			tk.flows[i] = tk.flows[last]
			tk.flows[last] = nil
			tk.flows = tk.flows[:last]
			return
		}
	}
}

// abort cancels the attempt's timers and flows and requeues its work
// immediately. freeSlot controls whether the slot is returned (false when
// the machine itself died).
func (rt *runtime) abort(tk *runningTask, freeSlot bool) {
	rt.abortTask(tk, freeSlot, 0)
}

// abortTask cancels the attempt's timers and flows. requeueDelay controls
// what happens to the work: negative drops it (the job is failing
// terminally or an AM restart will rebuild the stage), zero requeues it
// now, positive requeues it after a retry backoff. A delayed requeue is
// voided if the job reaches a terminal state — or restarts its AM — first.
func (rt *runtime) abortTask(tk *runningTask, freeSlot bool, requeueDelay des.Time) {
	if tk.aborted || tk.done {
		return
	}
	tk.aborted = true
	for _, ev := range tk.events {
		ev.Cancel()
	}
	// Cancel and immediately forget the attempt's flows: once canceled they
	// retire at the next recompute and (under pooling) are recycled, after
	// which these references must never be used again.
	for i, f := range tk.flows {
		rt.net.Cancel(f)
		tk.flows[i] = nil
	}
	tk.flows = tk.flows[:0]
	rt.finishTracking(tk)
	rt.taskEnded(tk.je)
	rt.probe(invariants.TaskAbort, tk.machine, tk.je.job.ID)
	role, idx, att := tk.ident()
	rt.tr.TaskAbort(float64(rt.sim.Now()), role, tk.je.job.ID, tk.st.idx, idx, att, tk.machine)
	if freeSlot {
		rt.freeSlots[tk.machine]++
	}
	if requeueDelay < 0 {
		rt.requestDispatch()
		return
	}
	je, st := tk.je, tk.st
	gen := je.amAttempt
	requeue := func() {
		if je.done() || je.amDown || je.amAttempt != gen {
			return
		}
		if tk.mapT != nil {
			rt.requeueMap(st, tk.mapT)
		} else {
			st.reduceQ = append(st.reduceQ, tk.redT)
			rt.tr.TaskQueued(float64(rt.sim.Now()), trace.RoleReduce, je.job.ID, st.idx, tk.redT.index, tk.redT.attempts)
		}
		rt.requestDispatch()
	}
	if requeueDelay > 0 {
		rt.sim.After(requeueDelay, requeue)
	} else {
		requeue()
	}
	rt.requestDispatch()
}

// requeueMap returns an aborted map task to its stage's pending indexes,
// skipping now-dead replica machines.
func (rt *runtime) requeueMap(st *stageExec, t *mapTask) {
	t.assigned = false
	st.pendingMapCount++
	// Enabled-guarded: st.je may be nil for synthetic stages in tests, so
	// even the argument expression must not run on the disabled path.
	if rt.tr.Enabled() {
		rt.tr.TaskQueued(float64(rt.sim.Now()), trace.RoleMap, st.je.job.ID, st.idx, t.index, t.attempts)
	}
	switch {
	case t.blk != nil:
		pushed := false
		for _, m := range t.blk.Replicas {
			if rt.dead[m] {
				continue
			}
			st.byMachine[m] = append(st.byMachine[m], t)
			st.byRack[rt.cluster.RackOf(m)] = append(st.byRack[rt.cluster.RackOf(m)], t)
			pushed = true
		}
		if pushed {
			st.anyPref = append(st.anyPref, t)
		} else {
			st.anywhere = append(st.anywhere, t)
		}
	case t.srcMachine >= 0 && !rt.dead[t.srcMachine]:
		st.byMachine[t.srcMachine] = append(st.byMachine[t.srcMachine], t)
		st.byRack[rt.cluster.RackOf(t.srcMachine)] = append(st.byRack[rt.cluster.RackOf(t.srcMachine)], t)
		st.anyPref = append(st.anyPref, t)
	default:
		st.anywhere = append(st.anywhere, t)
	}
}

// failMachineTransient handles one scheduled Failure event: the machine
// dies now and, for transient failures, a recovery is scheduled. A failure
// hitting an already-dead machine is absorbed (its recovery, if any, was
// scheduled by the earlier failure).
func (rt *runtime) failMachineTransient(f Failure) {
	if rt.dead[f.Machine] {
		return
	}
	if f.Downtime > 0 {
		at := float64(rt.sim.Now()) + f.Downtime
		rt.recoverAt[f.Machine] = at
		m := f.Machine
		rt.sim.At(des.Time(at), func() { rt.recoverMachine(m) })
	} else {
		rt.recoverAt[f.Machine] = math.Inf(1)
	}
	rt.failMachine(f.Machine)
}

// recoverMachine brings a transiently failed machine back: slots rejoin
// the pool and replicas still recorded on it (not yet repaired away)
// become readable again — the disk survived the outage.
func (rt *runtime) recoverMachine(m int) {
	if !rt.dead[m] {
		return
	}
	rt.dead[m] = false
	rt.deadCount--
	rt.probe(invariants.MachineUp, m, -1)
	rt.tr.MachineUp(float64(rt.sim.Now()), m)
	rt.freeSlots[m] = rt.cluster.Config.SlotsPerMachine
	rt.recoverAt[m] = math.Inf(1)
	rt.store.MachineUp(m)
	if rt.opts.OnMachineRepair != nil {
		rt.opts.OnMachineRepair(m, float64(rt.sim.Now()))
	}
	rt.requestDispatch()
}

// failMachine kills machine m at the current simulated time.
func (rt *runtime) failMachine(m int) {
	if rt.dead[m] {
		return
	}
	rt.dead[m] = true
	rt.deadCount++
	rt.probe(invariants.MachineDown, m, -1)
	rt.tr.MachineDown(float64(rt.sim.Now()), m)
	rt.freeSlots[m] = 0
	if math.IsInf(rt.recoverAt[m], 1) || rt.recoverAt[m] <= float64(rt.sim.Now()) {
		rt.recoverAt[m] = math.Inf(1)
	}
	// Abort running attempts (slot not returned: the machine is gone).
	attempts := append([]*runningTask(nil), rt.running[m]...)
	for _, tk := range attempts {
		rt.abort(tk, false)
	}
	// The DFS loses the machine's replicas; the repair daemon re-creates
	// them on survivors (repair.go).
	rt.store.MachineDown(m)
	rt.onMachineLost(m)
	// Rack-failure fallback for submitted jobs (§3.1). With replanning
	// enabled, constraints are still dropped first — the job keeps making
	// progress even if the replan fails — and then the planner is asked
	// for fresh guidelines.
	replanNeeded := false
	for _, je := range rt.jobs {
		if je.allowedRacks == nil || je.done() {
			continue
		}
		total, deadIn := 0, 0
		for _, r := range je.allowedRacks {
			lo, hi := rt.cluster.MachinesInRack(r)
			for mm := lo; mm < hi; mm++ {
				total++
				if rt.dead[mm] {
					deadIn++
				}
			}
		}
		if deadIn*2 > total {
			je.allowedRacks = nil
			if je.assignment != nil {
				replanNeeded = true
			}
		}
	}
	if replanNeeded && rt.opts.ReplanOnFailure {
		rt.requestReplan()
	}
	rt.requestDispatch()
}

// applyLinkFault rescales a rack's uplink and downlink. A full failure
// (factor 0) triggers the same fallback/replan path as losing the rack's
// machines: jobs constrained to the isolated rack would otherwise stall on
// cross-rack transfers until recovery.
func (rt *runtime) applyLinkFault(lf LinkFault) {
	prev := rt.rackLinkFactor[lf.Rack]
	rt.rackLinkFactor[lf.Rack] = lf.Factor
	rt.net.SetLinkCapacityFactor(rt.cluster.RackUplink(lf.Rack), lf.Factor)
	rt.net.SetLinkCapacityFactor(rt.cluster.RackDownlink(lf.Rack), lf.Factor)
	if lf.Factor == 0 && prev > 0 {
		replanNeeded := false
		for _, je := range rt.jobs {
			if je.allowedRacks == nil || je.done() {
				continue
			}
			for _, r := range je.allowedRacks {
				if r == lf.Rack {
					je.allowedRacks = nil
					if je.assignment != nil {
						replanNeeded = true
					}
					break
				}
			}
		}
		if replanNeeded && rt.opts.ReplanOnFailure {
			rt.requestReplan()
		}
	}
	rt.requestDispatch()
}

// validateFailures checks configured failures at startup.
func validateFailures(failures []Failure, machines int) error {
	for _, f := range failures {
		if f.Machine < 0 || f.Machine >= machines {
			return fmt.Errorf("runtime: failure targets machine %d, out of range", f.Machine)
		}
		if f.At < 0 {
			return fmt.Errorf("runtime: failure at negative time %g", f.At)
		}
		if f.Downtime < 0 {
			return fmt.Errorf("runtime: failure with negative downtime %g", f.Downtime)
		}
	}
	return nil
}

// validateLinkFaults checks configured link faults at startup.
func validateLinkFaults(faults []LinkFault, racks int) error {
	for _, lf := range faults {
		if lf.Rack < 0 || lf.Rack >= racks {
			return fmt.Errorf("runtime: link fault targets rack %d, out of range", lf.Rack)
		}
		if lf.At < 0 {
			return fmt.Errorf("runtime: link fault at negative time %g", lf.At)
		}
		if lf.Factor < 0 {
			return fmt.Errorf("runtime: link fault with negative factor %g", lf.Factor)
		}
	}
	return nil
}

// computeDuration applies straggler injection to a task's nominal compute
// time and arms the speculation watchdog if enabled. A speculative
// relaunch (noSpec) runs at nominal speed with no watchdog — it models the
// backup copy that overtook the straggler, and caps each task at one
// speculative relaunch so a StragglerFraction of 1 cannot livelock.
func (rt *runtime) computeDuration(tk *runningTask, nominal float64) float64 {
	if tk.noSpec {
		return nominal
	}
	dur := nominal
	if rt.opts.StragglerFraction > 0 && rt.rng.Float64() < rt.opts.StragglerFraction {
		dur *= rt.opts.StragglerSlowdown
	}
	if rt.opts.Speculation && dur > nominal {
		threshold := rt.opts.SpeculationThreshold
		watch := des.Time(nominal * threshold)
		ev := rt.sim.After(watch, func() {
			if tk.aborted {
				return
			}
			// Still running past the threshold: relaunch (the backup copy
			// wins; the straggling attempt is killed).
			rt.abortSpeculative(tk)
		})
		tk.events = append(tk.events, ev)
		tk.watchdog = ev
	}
	return dur
}

// endCompute cancels the speculation watchdog when the monitored compute
// phase ends. Straggler slowdown is injected into compute only, and the
// watchdog threshold is scaled to the compute nominal — letting it run into
// a reduce's output-write phase would kill healthy attempts whose write is
// merely contended.
func (tk *runningTask) endCompute() {
	if tk.watchdog != nil {
		tk.watchdog.Cancel()
		tk.watchdog = nil
	}
}

// abortSpeculative kills a straggling attempt and marks its task so the
// relaunch skips the straggler roll (one backup copy per task).
func (rt *runtime) abortSpeculative(tk *runningTask) {
	if tk.mapT != nil {
		tk.mapT.speculated = true
	} else {
		tk.redT.speculated = true
	}
	rt.abort(tk, true)
}
