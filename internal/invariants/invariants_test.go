package invariants

import (
	"strings"
	"testing"
)

func ev(t float64, k Kind, machine, job int) Event {
	return Event{Time: t, Kind: k, Machine: machine, Job: job}
}

// TestCleanRunNoViolations: a well-formed lifecycle produces no
// violations — the monitor must not fire on healthy runs.
func TestCleanRunNoViolations(t *testing.T) {
	m := NewMonitor(4, 2)
	for _, e := range []Event{
		ev(0, JobSubmit, -1, 1),
		ev(1, TaskStart, 0, 1),
		ev(1, TaskStart, 0, 1), // second slot on machine 0
		ev(2, TaskFinish, 0, 1),
		ev(2, MachineDown, 3, -1),
		ev(3, TaskFinish, 0, 1),
		ev(4, MachineUp, 3, -1),
		ev(4, TaskStart, 3, 1),
		ev(5, TaskFinish, 3, 1),
		ev(5, JobDone, -1, 1),
		ev(5, SimEnd, -1, -1),
	} {
		m.Observe(e)
	}
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("clean run produced %d violations: %v", n, m.Violations())
	}
	if !m.Ended() {
		t.Fatal("SimEnd not recorded")
	}
}

// TestSlotConservation: more concurrent attempts than slots must fire.
func TestSlotConservation(t *testing.T) {
	m := NewMonitor(2, 1)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	assertViolation(t, m, "exceed 1 slots")

	m2 := NewMonitor(2, 1)
	m2.Observe(ev(1, TaskFinish, 0, 1))
	assertViolation(t, m2, "went negative")
}

// TestDeadAndBlacklistedPlacement: attempts must never start on dead or
// blacklisted machines.
func TestDeadAndBlacklistedPlacement(t *testing.T) {
	m := NewMonitor(2, 2)
	m.Observe(ev(0, MachineDown, 1, -1))
	m.Observe(ev(1, TaskStart, 1, 7))
	assertViolation(t, m, "dead machine 1")

	m2 := NewMonitor(2, 2)
	m2.Observe(ev(0, Blacklist, 0, -1))
	m2.Observe(ev(1, TaskStart, 0, 7))
	assertViolation(t, m2, "blacklisted machine 0")

	// After unblacklist the machine is schedulable again.
	m3 := NewMonitor(2, 2)
	m3.Observe(ev(0, Blacklist, 0, -1))
	m3.Observe(ev(5, Unblacklist, 0, -1))
	m3.Observe(ev(6, TaskStart, 0, 7))
	if m3.ViolationCount() != 0 {
		t.Fatalf("unexpected violations: %v", m3.Violations())
	}
}

// TestTimeMonotonicity: a decreasing event time must fire.
func TestTimeMonotonicity(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(ev(5, JobSubmit, -1, 1))
	m.Observe(ev(4, JobSubmit, -1, 2))
	assertViolation(t, m, "went backwards")
}

// TestTerminality: double-terminal and never-terminal jobs must fire.
func TestTerminality(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, JobDone, -1, 1))
	m.Observe(ev(2, JobFail, -1, 1))
	assertViolation(t, m, "second terminal event")

	m2 := NewMonitor(1, 1)
	m2.Observe(ev(0, JobSubmit, -1, 1))
	m2.Observe(ev(0, JobSubmit, -1, 2))
	m2.Observe(ev(1, JobDone, -1, 1))
	m2.Observe(ev(2, SimEnd, -1, -1))
	assertViolation(t, m2, "never reached a terminal state")

	// A failed job is terminal: no violation.
	m3 := NewMonitor(1, 1)
	m3.Observe(ev(0, JobSubmit, -1, 3))
	m3.Observe(ev(1, JobFail, -1, 3))
	m3.Observe(ev(2, SimEnd, -1, -1))
	if m3.ViolationCount() != 0 {
		t.Fatalf("failed-but-terminal job flagged: %v", m3.Violations())
	}
}

// TestLeakedAttemptAtEnd: an attempt still running at SimEnd must fire.
func TestLeakedAttemptAtEnd(t *testing.T) {
	m := NewMonitor(2, 2)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	m.Observe(ev(2, JobDone, -1, 1))
	m.Observe(ev(3, SimEnd, -1, -1))
	assertViolation(t, m, "still running at simulation end")
}

// TestAuditEvents: external audit failures become violations verbatim.
func TestAuditEvents(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(Event{Time: 3, Kind: Audit, Machine: -1, Job: -1, Detail: "link 4 oversubscribed"})
	assertViolation(t, m, "link 4 oversubscribed")
}

// TestViolationCap: the stored list is capped but the count keeps going.
func TestViolationCap(t *testing.T) {
	m := NewMonitor(1, 1)
	for i := 0; i < maxViolations+50; i++ {
		m.Violationf("v%d", i)
	}
	if got := len(m.Violations()); got != maxViolations {
		t.Fatalf("stored %d violations, want cap %d", got, maxViolations)
	}
	if m.ViolationCount() != maxViolations+50 {
		t.Fatalf("count %d, want %d", m.ViolationCount(), maxViolations+50)
	}
}

func assertViolation(t *testing.T, m *Monitor, substr string) {
	t.Helper()
	if m.ViolationCount() == 0 {
		t.Fatalf("expected a violation containing %q, got none", substr)
	}
	for _, v := range m.Violations() {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("no violation contains %q; got %v", substr, m.Violations())
}

// TestReplanRateBound: the armed replan-rate invariant fires when more
// than max replans land inside the trailing window, and stays quiet for
// a paced stream or when disarmed.
func TestReplanRateBound(t *testing.T) {
	m := NewMonitor(4, 2)
	m.BoundReplanRate(2, 10)
	for _, tm := range []float64{0, 3, 20, 35} { // never >2 in any 10 s
		m.Observe(ev(tm, Replan, -1, -1))
	}
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("paced replans produced %d violations: %v", n, m.Violations())
	}

	m = NewMonitor(4, 2)
	m.BoundReplanRate(2, 10)
	for _, tm := range []float64{40, 41, 42} { // 3 within 10 s
		m.Observe(ev(tm, Replan, -1, -1))
	}
	if n := m.ViolationCount(); n != 1 {
		t.Fatalf("burst produced %d violations, want 1: %v", n, m.Violations())
	}
	if !strings.Contains(m.Violations()[0], "replans within") {
		t.Fatalf("unexpected message %q", m.Violations()[0])
	}

	// Disarmed: any burst is fine.
	m = NewMonitor(4, 2)
	for i := 0; i < 50; i++ {
		m.Observe(ev(1, Replan, -1, -1))
	}
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("disarmed monitor produced %d violations", n)
	}
}

// TestAdmissionQueueBound: JobDefer depths above the armed cap fire; the
// depth rides in the Machine field and must not be range-checked as a
// machine index.
func TestAdmissionQueueBound(t *testing.T) {
	m := NewMonitor(4, 2)
	m.BoundAdmissionQueue(3)
	m.Observe(ev(1, JobDefer, 3, 7)) // at cap: fine (depth 3 > 4 machines would misfire machineOK)
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("in-bound defer produced %d violations: %v", n, m.Violations())
	}
	m.Observe(ev(2, JobDefer, 4, 8))
	if n := m.ViolationCount(); n != 1 {
		t.Fatalf("over-cap defer produced %d violations, want 1: %v", n, m.Violations())
	}
	if !strings.Contains(m.Violations()[0], "admission queue depth") {
		t.Fatalf("unexpected message %q", m.Violations()[0])
	}
}

// TestShedTerminality: a shed job is terminal without submission (no
// violation), but double-terminal still fires — including shed-then-done.
func TestShedTerminality(t *testing.T) {
	m := NewMonitor(4, 2)
	m.Observe(ev(1, JobShed, -1, 9))
	m.Observe(ev(5, SimEnd, -1, -1))
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("shed job produced %d violations: %v", n, m.Violations())
	}

	m = NewMonitor(4, 2)
	m.Observe(ev(1, JobShed, -1, 9))
	m.Observe(ev(2, JobShed, -1, 9))
	if n := m.ViolationCount(); n != 1 {
		t.Fatalf("double shed produced %d violations, want 1: %v", n, m.Violations())
	}

	m = NewMonitor(4, 2)
	m.Observe(ev(0, JobSubmit, -1, 9))
	m.Observe(ev(1, JobShed, -1, 9))
	m.Observe(ev(2, JobDone, -1, 9))
	if n := m.ViolationCount(); n != 1 {
		t.Fatalf("shed-then-done produced %d violations, want 1: %v", n, m.Violations())
	}
}
