package invariants

import (
	"strings"
	"testing"
)

func ev(t float64, k Kind, machine, job int) Event {
	return Event{Time: t, Kind: k, Machine: machine, Job: job}
}

// TestCleanRunNoViolations: a well-formed lifecycle produces no
// violations — the monitor must not fire on healthy runs.
func TestCleanRunNoViolations(t *testing.T) {
	m := NewMonitor(4, 2)
	for _, e := range []Event{
		ev(0, JobSubmit, -1, 1),
		ev(1, TaskStart, 0, 1),
		ev(1, TaskStart, 0, 1), // second slot on machine 0
		ev(2, TaskFinish, 0, 1),
		ev(2, MachineDown, 3, -1),
		ev(3, TaskFinish, 0, 1),
		ev(4, MachineUp, 3, -1),
		ev(4, TaskStart, 3, 1),
		ev(5, TaskFinish, 3, 1),
		ev(5, JobDone, -1, 1),
		ev(5, SimEnd, -1, -1),
	} {
		m.Observe(e)
	}
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("clean run produced %d violations: %v", n, m.Violations())
	}
	if !m.Ended() {
		t.Fatal("SimEnd not recorded")
	}
}

// TestSlotConservation: more concurrent attempts than slots must fire.
func TestSlotConservation(t *testing.T) {
	m := NewMonitor(2, 1)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	assertViolation(t, m, "exceed 1 slots")

	m2 := NewMonitor(2, 1)
	m2.Observe(ev(1, TaskFinish, 0, 1))
	assertViolation(t, m2, "went negative")
}

// TestDeadAndBlacklistedPlacement: attempts must never start on dead or
// blacklisted machines.
func TestDeadAndBlacklistedPlacement(t *testing.T) {
	m := NewMonitor(2, 2)
	m.Observe(ev(0, MachineDown, 1, -1))
	m.Observe(ev(1, TaskStart, 1, 7))
	assertViolation(t, m, "dead machine 1")

	m2 := NewMonitor(2, 2)
	m2.Observe(ev(0, Blacklist, 0, -1))
	m2.Observe(ev(1, TaskStart, 0, 7))
	assertViolation(t, m2, "blacklisted machine 0")

	// After unblacklist the machine is schedulable again.
	m3 := NewMonitor(2, 2)
	m3.Observe(ev(0, Blacklist, 0, -1))
	m3.Observe(ev(5, Unblacklist, 0, -1))
	m3.Observe(ev(6, TaskStart, 0, 7))
	if m3.ViolationCount() != 0 {
		t.Fatalf("unexpected violations: %v", m3.Violations())
	}
}

// TestTimeMonotonicity: a decreasing event time must fire.
func TestTimeMonotonicity(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(ev(5, JobSubmit, -1, 1))
	m.Observe(ev(4, JobSubmit, -1, 2))
	assertViolation(t, m, "went backwards")
}

// TestTerminality: double-terminal and never-terminal jobs must fire.
func TestTerminality(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, JobDone, -1, 1))
	m.Observe(ev(2, JobFail, -1, 1))
	assertViolation(t, m, "second terminal event")

	m2 := NewMonitor(1, 1)
	m2.Observe(ev(0, JobSubmit, -1, 1))
	m2.Observe(ev(0, JobSubmit, -1, 2))
	m2.Observe(ev(1, JobDone, -1, 1))
	m2.Observe(ev(2, SimEnd, -1, -1))
	assertViolation(t, m2, "never reached a terminal state")

	// A failed job is terminal: no violation.
	m3 := NewMonitor(1, 1)
	m3.Observe(ev(0, JobSubmit, -1, 3))
	m3.Observe(ev(1, JobFail, -1, 3))
	m3.Observe(ev(2, SimEnd, -1, -1))
	if m3.ViolationCount() != 0 {
		t.Fatalf("failed-but-terminal job flagged: %v", m3.Violations())
	}
}

// TestLeakedAttemptAtEnd: an attempt still running at SimEnd must fire.
func TestLeakedAttemptAtEnd(t *testing.T) {
	m := NewMonitor(2, 2)
	m.Observe(ev(0, JobSubmit, -1, 1))
	m.Observe(ev(1, TaskStart, 0, 1))
	m.Observe(ev(2, JobDone, -1, 1))
	m.Observe(ev(3, SimEnd, -1, -1))
	assertViolation(t, m, "still running at simulation end")
}

// TestAuditEvents: external audit failures become violations verbatim.
func TestAuditEvents(t *testing.T) {
	m := NewMonitor(1, 1)
	m.Observe(Event{Time: 3, Kind: Audit, Machine: -1, Job: -1, Detail: "link 4 oversubscribed"})
	assertViolation(t, m, "link 4 oversubscribed")
}

// TestViolationCap: the stored list is capped but the count keeps going.
func TestViolationCap(t *testing.T) {
	m := NewMonitor(1, 1)
	for i := 0; i < maxViolations+50; i++ {
		m.Violationf("v%d", i)
	}
	if got := len(m.Violations()); got != maxViolations {
		t.Fatalf("stored %d violations, want cap %d", got, maxViolations)
	}
	if m.ViolationCount() != maxViolations+50 {
		t.Fatalf("count %d, want %d", m.ViolationCount(), maxViolations+50)
	}
}

func assertViolation(t *testing.T, m *Monitor, substr string) {
	t.Helper()
	if m.ViolationCount() == 0 {
		t.Fatalf("expected a violation containing %q, got none", substr)
	}
	for _, v := range m.Violations() {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("no violation contains %q; got %v", substr, m.Violations())
}
