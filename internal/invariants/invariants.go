// Package invariants is the runtime invariant monitor behind the
// corralcheck fuzzer: the simulation runtime streams lifecycle events
// (task attempts, machine state changes, AM restarts, job terminations)
// into a Monitor, which checks the safety properties every run must obey
// regardless of the fault trace thrown at it:
//
//   - slot conservation: a machine never runs more concurrent attempts
//     than it has slots, and attempt counts never go negative;
//   - placement safety: no attempt ever starts on a dead or blacklisted
//     machine;
//   - event-time monotonicity: observed event times never decrease;
//   - terminality: every submitted job either completes or fails,
//     exactly once, and nothing is still running at simulation end;
//   - externally audited properties (per-link flow-rate feasibility from
//     netsim, byte conservation from the DFS) reported through Audit
//     events.
//
// The package deliberately imports nothing from the simulation stack so
// the runtime can depend on it without cycles; richer checks that need
// netsim or dfs internals run in those packages and report their verdict
// here as Audit events.
//
// Determinism obligations: a Monitor's violation list is a pure function
// of the observed event sequence — no maps are ranged unsorted, no
// randomness, no wall clock.
package invariants

import (
	"fmt"
	"sort"
)

// Kind enumerates the event types the runtime emits.
type Kind int

// Lifecycle event kinds.
const (
	// JobSubmit: a job became schedulable (Job set).
	JobSubmit Kind = iota
	// TaskStart: an attempt began on Machine for Job.
	TaskStart
	// TaskFinish: an attempt completed successfully on Machine.
	TaskFinish
	// TaskAbort: an in-flight attempt was killed (machine death, AM
	// death, speculation, or crash); its slot-usage ends here.
	TaskAbort
	// TaskCrash: informational — an attempt suffered an injected
	// transient failure. A TaskAbort for the same attempt follows.
	TaskCrash
	// MachineDown / MachineUp: machine liveness transitions.
	MachineDown
	MachineUp
	// Blacklist / Unblacklist: scheduling-pool membership transitions
	// driven by accumulated attempt failures.
	Blacklist
	Unblacklist
	// AMFail / AMRestart: a job lost its application master / the
	// restarted attempt resumed.
	AMFail
	AMRestart
	// JobDone / JobFail: terminal job outcomes.
	JobDone
	JobFail
	// Corruption: a DFS replica was corrupted (Machine set).
	Corruption
	// Audit: an externally checked invariant failed; Detail carries the
	// message. Always recorded as a violation.
	Audit
	// SimEnd: the event queue drained; final checks run here.
	SimEnd
	// Replan: the runtime invoked the planner for a failure-triggered
	// replan. Checked against the BoundReplanRate budget when armed.
	Replan
	// JobDefer: an arrival was parked in the admission queue; Machine
	// carries the queue depth (not a machine index). Checked against the
	// BoundAdmissionQueue cap when armed.
	JobDefer
	// JobShed: an arrival was rejected at admission-queue capacity. A
	// terminal outcome — shed jobs are never submitted, so terminality is
	// checked without the submission requirement.
	JobShed
)

var kindNames = map[Kind]string{
	JobSubmit: "job-submit", TaskStart: "task-start", TaskFinish: "task-finish",
	TaskAbort: "task-abort", TaskCrash: "task-crash",
	MachineDown: "machine-down", MachineUp: "machine-up",
	Blacklist: "blacklist", Unblacklist: "unblacklist",
	AMFail: "am-fail", AMRestart: "am-restart",
	JobDone: "job-done", JobFail: "job-fail",
	Corruption: "corruption", Audit: "audit", SimEnd: "sim-end",
	Replan: "replan", JobDefer: "job-defer", JobShed: "job-shed",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one observation from the runtime. Machine and Job are -1 when
// not applicable.
type Event struct {
	Time    float64
	Kind    Kind
	Machine int
	Job     int
	Detail  string
}

// Probe receives the runtime's event stream. runtime.Options.Probe
// accepts any implementation; Monitor is the checking one.
type Probe interface {
	Observe(Event)
}

// maxViolations caps stored violation messages so a badly broken run
// cannot allocate without bound; the count keeps incrementing.
const maxViolations = 100

// Monitor checks the invariants over an event stream. Zero value is not
// usable; call NewMonitor.
type Monitor struct {
	machines int
	slots    int

	lastTime    float64
	sawEvent    bool
	runningOn   []int
	down        []bool
	blacklisted []bool

	submitted map[int]bool
	terminal  map[int]Kind

	// Overload bounds; zero values keep the checks disarmed so existing
	// gates observe the new event kinds without new obligations.
	replanMax    int
	replanWindow float64
	replanTimes  []float64
	admissionCap int

	violations []string
	count      int
	ended      bool
}

// NewMonitor creates a monitor for a cluster of the given shape.
func NewMonitor(machines, slotsPerMachine int) *Monitor {
	return &Monitor{
		machines:    machines,
		slots:       slotsPerMachine,
		runningOn:   make([]int, machines),
		down:        make([]bool, machines),
		blacklisted: make([]bool, machines),
		submitted:   make(map[int]bool),
		terminal:    make(map[int]Kind),
	}
}

// BoundReplanRate arms the replan-rate invariant: more than max Replan
// events within any trailing window of the given length (seconds of
// simulated time) is a violation. Verifies that replan-storm suppression
// actually bounds planner invocations under fault bursts.
func (m *Monitor) BoundReplanRate(max int, window float64) {
	m.replanMax = max
	m.replanWindow = window
}

// BoundAdmissionQueue arms the admission-queue invariant: a JobDefer
// event reporting a queue depth above cap is a violation. Verifies that
// admission control keeps the pending-arrival backlog bounded.
func (m *Monitor) BoundAdmissionQueue(cap int) {
	m.admissionCap = cap
}

// Violationf records one invariant violation.
func (m *Monitor) Violationf(format string, args ...any) {
	m.count++
	if len(m.violations) < maxViolations {
		m.violations = append(m.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the recorded violation messages (capped; see
// ViolationCount for the true total).
func (m *Monitor) Violations() []string {
	return append([]string(nil), m.violations...)
}

// ViolationCount returns the total number of violations observed.
func (m *Monitor) ViolationCount() int { return m.count }

// Ended reports whether a SimEnd event was observed.
func (m *Monitor) Ended() bool { return m.ended }

// machineOK validates a machine index for events that carry one.
func (m *Monitor) machineOK(e Event) bool {
	if e.Machine < 0 || e.Machine >= m.machines {
		m.Violationf("t=%.3f %v: machine %d out of range [0,%d)", e.Time, e.Kind, e.Machine, m.machines)
		return false
	}
	return true
}

// Observe checks one event against the invariants.
func (m *Monitor) Observe(e Event) {
	if m.sawEvent && e.Time < m.lastTime {
		m.Violationf("t=%.3f %v: event time went backwards (last %.3f)", e.Time, e.Kind, m.lastTime)
	}
	if e.Time >= m.lastTime {
		m.lastTime = e.Time
	}
	m.sawEvent = true

	switch e.Kind {
	case JobSubmit:
		m.submitted[e.Job] = true
	case TaskStart:
		if !m.machineOK(e) {
			return
		}
		if m.down[e.Machine] {
			m.Violationf("t=%.3f job %d: attempt started on dead machine %d", e.Time, e.Job, e.Machine)
		}
		if m.blacklisted[e.Machine] {
			m.Violationf("t=%.3f job %d: attempt started on blacklisted machine %d", e.Time, e.Job, e.Machine)
		}
		m.runningOn[e.Machine]++
		if m.runningOn[e.Machine] > m.slots {
			m.Violationf("t=%.3f machine %d: %d concurrent attempts exceed %d slots",
				e.Time, e.Machine, m.runningOn[e.Machine], m.slots)
		}
	case TaskFinish, TaskAbort:
		if !m.machineOK(e) {
			return
		}
		m.runningOn[e.Machine]--
		if m.runningOn[e.Machine] < 0 {
			m.Violationf("t=%.3f machine %d: attempt count went negative on %v", e.Time, e.Machine, e.Kind)
		}
	case TaskCrash, Corruption, AMFail, AMRestart:
		// Informational; range-check only.
		if e.Machine >= 0 {
			m.machineOK(e)
		}
	case MachineDown:
		if m.machineOK(e) {
			m.down[e.Machine] = true
		}
	case MachineUp:
		if m.machineOK(e) {
			m.down[e.Machine] = false
		}
	case Blacklist:
		if m.machineOK(e) {
			m.blacklisted[e.Machine] = true
		}
	case Unblacklist:
		if m.machineOK(e) {
			m.blacklisted[e.Machine] = false
		}
	case JobDone, JobFail:
		if prev, ok := m.terminal[e.Job]; ok {
			m.Violationf("t=%.3f job %d: second terminal event %v (already %v)", e.Time, e.Job, e.Kind, prev)
		}
		m.terminal[e.Job] = e.Kind
		if !m.submitted[e.Job] {
			m.Violationf("t=%.3f job %d: terminal event %v without submission", e.Time, e.Job, e.Kind)
		}
	case Replan:
		if m.replanWindow > 0 {
			m.replanTimes = append(m.replanTimes, e.Time)
			// Drop times outside the trailing window (t-window, t].
			cut := 0
			for cut < len(m.replanTimes) && m.replanTimes[cut] <= e.Time-m.replanWindow {
				cut++
			}
			m.replanTimes = m.replanTimes[cut:]
			if len(m.replanTimes) > m.replanMax {
				m.Violationf("t=%.3f: %d replans within the last %.3f s exceed the bound of %d",
					e.Time, len(m.replanTimes), m.replanWindow, m.replanMax)
			}
		}
	case JobDefer:
		// Machine carries the admission-queue depth, not a machine index.
		if m.admissionCap > 0 && e.Machine > m.admissionCap {
			m.Violationf("t=%.3f job %d: admission queue depth %d exceeds the cap of %d",
				e.Time, e.Job, e.Machine, m.admissionCap)
		}
	case JobShed:
		// Terminal without the submission requirement: shed jobs never
		// entered the scheduler.
		if prev, ok := m.terminal[e.Job]; ok {
			m.Violationf("t=%.3f job %d: second terminal event %v (already %v)", e.Time, e.Job, e.Kind, prev)
		}
		m.terminal[e.Job] = e.Kind
	case Audit:
		m.Violationf("t=%.3f audit failed: %s", e.Time, e.Detail)
	case SimEnd:
		m.ended = true
		m.finish(e.Time)
	default:
		m.Violationf("t=%.3f: unknown event kind %d", e.Time, int(e.Kind))
	}
}

// finish runs the end-of-simulation checks: nothing still running, every
// submitted job terminal.
func (m *Monitor) finish(at float64) {
	for mach, n := range m.runningOn {
		if n != 0 {
			m.Violationf("t=%.3f machine %d: %d attempts still running at simulation end", at, mach, n)
		}
	}
	// Collect-and-sort: violation order must not depend on map iteration.
	var jobs []int
	for j := range m.submitted {
		jobs = append(jobs, j)
	}
	sort.Ints(jobs)
	for _, j := range jobs {
		if _, ok := m.terminal[j]; !ok {
			m.Violationf("t=%.3f job %d: submitted but never reached a terminal state", at, j)
		}
	}
}
