// Package trace is the deterministic, simulation-time-only event tracer
// behind `corralsim -trace` and `cmd/corraltrace`. The runtime, network
// simulator, DFS and planner emit typed lifecycle events into a per-run
// Tracer; a Collector gathers the runs of one process-wide experiment
// invocation and exports them as flat JSONL (for scripting and
// corraltrace) or Chrome trace-event JSON (for Perfetto).
//
// Three properties are contracts, not aspirations:
//
//   - Nil safety / zero overhead when disabled. Every emit method is
//     defined on *Tracer with a nil receiver check and scalar arguments
//     only, so the disabled path performs no allocations (pinned by
//     TestDisabledTracerZeroAlloc and BenchmarkTracerDisabledEmit).
//     Instrumentation sites that need extra work to build an event guard
//     it with Enabled().
//   - Simulation time only. Event timestamps are des.Time seconds; the
//     package never reads the wall clock (corralvet's wallclock check
//     runs over it), so a trace is a pure function of (config, jobs,
//     seed).
//   - Order invariance. Events within one run are buffered in emission
//     order, which the DES makes deterministic. Across runs, export
//     ordering is by (label, serialized content) — see collector.go — so
//     traces are bit-identical regardless of the -workers fan-out that
//     registered the runs.
package trace

// Kind enumerates the event taxonomy. The names (see kindNames) are the
// "ev" field of the JSONL export and are part of the trace format.
type Kind uint8

// Runtime lifecycle, network, DFS and planner event kinds.
const (
	// Metadata, emitted once per run before simulated time starts.
	KMachineMeta Kind = iota // machine, rack
	KLinkMeta                // link, value=capacity, detail=name

	// Job and task-attempt lifecycle (runtime).
	KJobSubmit   // job, value=slots, detail=name
	KJobDone     // job
	KJobFail     // job, detail=reason
	KTaskQueued  // role, job, stage, task, attempt
	KTaskStart   // role, job, stage, task, attempt, machine
	KTaskFinish  // role, job, stage, task, attempt, machine, value=duration
	KTaskCrash   // role, job, stage, task, attempt, machine
	KTaskAbort   // role, job, stage, task, attempt, machine
	KTaskBackoff // role, job, stage, task, attempt, value=delay
	KShuffleDone // job, stage, task, machine (reduce shuffle phase ended)
	KSlotsBusy   // value=occupied slots cluster-wide (counter)
	KMachineDown // machine
	KMachineUp   // machine
	KBlacklist   // machine
	KUnblacklist // machine
	KAMFail      // job
	KAMRestart   // job
	KReplan      // value=jobs being replanned
	KSimEnd      // value=quiesce time

	// Flow-level network (netsim).
	KFlowStart  // flow, job, src, dst, value=bytes, detail="cross" if cross-rack
	KFlowFinish // flow, value=bytes
	KFlowCancel // flow, value=bytes actually sent
	KFlowRate   // flow, value=new rate (emitted on change only)
	KLinkUtil   // link, value=utilization fraction (counter, on change only)
	KLinkCap    // link, value=new capacity (link faults)

	// DFS (block store).
	KDFSCreate    // value=bytes, detail=file name
	KDFSCorrupt   // machine, value=block bytes
	KBlockRead    // job, dst=reader, src=replica, value=bytes, detail="failover" if corrupt-failover
	KRepairStart  // src, dst, value=bytes
	KRepairCommit // src, dst, value=bytes

	// Planner.
	KPlanStart  // value=jobs, detail=objective
	KPlanAssign // job, attempt=priority, value=planned start, detail=rack set
	KPlanDone   // value=objective value

	// Overload hardening: budgeted planning, replan-storm suppression and
	// streaming-arrival admission control.
	KPlanBudgetExceeded // value=estimated full-plan cost exceeding the budget
	KDegrade            // attempt=fallback tier (1=incremental, 2=greedy), value=jobs affected
	KReplanSuppressed   // value=coalesced fire time of the pending replan
	KJobDeferred        // job, value=admission queue depth after the deferral
	KJobShed            // job, value=admission queue depth at the shed

	numKinds
)

var kindNames = [numKinds]string{
	KMachineMeta:  "machine_meta",
	KLinkMeta:     "link_meta",
	KJobSubmit:    "job_submit",
	KJobDone:      "job_done",
	KJobFail:      "job_fail",
	KTaskQueued:   "task_queued",
	KTaskStart:    "task_start",
	KTaskFinish:   "task_finish",
	KTaskCrash:    "task_crash",
	KTaskAbort:    "task_abort",
	KTaskBackoff:  "task_backoff",
	KShuffleDone:  "shuffle_done",
	KSlotsBusy:    "slots_busy",
	KMachineDown:  "machine_down",
	KMachineUp:    "machine_up",
	KBlacklist:    "blacklist",
	KUnblacklist:  "unblacklist",
	KAMFail:       "am_fail",
	KAMRestart:    "am_restart",
	KReplan:       "replan",
	KSimEnd:       "sim_end",
	KFlowStart:    "flow_start",
	KFlowFinish:   "flow_finish",
	KFlowCancel:   "flow_cancel",
	KFlowRate:     "flow_rate",
	KLinkUtil:     "link_util",
	KLinkCap:      "link_cap",
	KDFSCreate:    "dfs_create",
	KDFSCorrupt:   "dfs_corrupt",
	KBlockRead:    "block_read",
	KRepairStart:  "repair_start",
	KRepairCommit: "repair_commit",
	KPlanStart:    "plan_start",
	KPlanAssign:   "plan_assign",
	KPlanDone:     "plan_done",

	KPlanBudgetExceeded: "plan_budget_exceeded",
	KDegrade:            "degrade",
	KReplanSuppressed:   "replan_suppressed",
	KJobDeferred:        "job_deferred",
	KJobShed:            "job_shed",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Role distinguishes map from reduce attempts in task lifecycle events.
type Role uint8

// Task roles.
const (
	RoleNone Role = iota
	RoleMap
	RoleReduce
)

func (r Role) String() string {
	switch r {
	case RoleMap:
		return "map"
	case RoleReduce:
		return "reduce"
	}
	return ""
}

// Event is one trace record. Integer fields not used by the event's Kind
// are -1; Value and Detail are Kind-specific (see the Kind constants).
// Events are value types appended to a per-run buffer — emitting one
// performs at most an amortized slice growth, never a boxing allocation.
type Event struct {
	T      float64 // simulation time, seconds
	Kind   Kind
	Role   Role
	Job    int
	Stage  int
	Task   int
	Att    int // attempt number, or planner priority for KPlanAssign
	Mach   int
	Link   int
	Src    int
	Dst    int
	Flow   int64
	Value  float64
	Detail string
}

// Tracer buffers the events of one simulation (or planner) run, in
// emission order. A nil *Tracer is valid and discards everything — the
// emit methods below are all nil-safe, which is the disabled fast path.
// A Tracer is not goroutine-safe; each run owns its tracer exclusively
// (runs fan out across workers, events within a run do not).
type Tracer struct {
	label  string
	events []Event
}

// New creates a standalone tracer (outside any Collector).
func New(label string) *Tracer { return &Tracer{label: label} }

// Enabled reports whether emissions are recorded. Instrumentation sites
// that must do extra work to build an event (fmt, per-link scans) guard
// on this; plain emit calls rely on the methods' own nil checks.
func (t *Tracer) Enabled() bool { return t != nil }

// Label returns the run label given at creation.
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Events returns the buffered events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// unset pre-fills the fields a Kind does not use.
//
//corral:hotpath
func unsetEvent(now float64, k Kind) Event {
	return Event{T: now, Kind: k, Job: -1, Stage: -1, Task: -1, Att: -1,
		Mach: -1, Link: -1, Src: -1, Dst: -1, Flow: -1}
}

// MachineMeta records machine→rack topology (timestamp 0, pre-sim).
//
//corral:hotpath
func (t *Tracer) MachineMeta(machine, rack int) {
	if t == nil {
		return
	}
	e := unsetEvent(0, KMachineMeta)
	e.Mach, e.Link = machine, -1
	e.Src = rack // rack rides in Src: Event has no dedicated rack field
	t.events = append(t.events, e)
}

// LinkMeta records a link's name and base capacity (timestamp 0).
//
//corral:hotpath
func (t *Tracer) LinkMeta(link int, name string, capacity float64) {
	if t == nil {
		return
	}
	e := unsetEvent(0, KLinkMeta)
	e.Link, e.Value, e.Detail = link, capacity, name
	t.events = append(t.events, e)
}

// JobSubmit records a job entering the scheduler.
//
//corral:hotpath
func (t *Tracer) JobSubmit(now float64, job int, name string, slots int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KJobSubmit)
	e.Job, e.Value, e.Detail = job, float64(slots), name
	t.events = append(t.events, e)
}

// JobDone records a job's last stage completing.
//
//corral:hotpath
func (t *Tracer) JobDone(now float64, job int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KJobDone)
	e.Job = job
	t.events = append(t.events, e)
}

// JobFail records a terminal job failure.
//
//corral:hotpath
func (t *Tracer) JobFail(now float64, job int, reason string) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KJobFail)
	e.Job, e.Detail = job, reason
	t.events = append(t.events, e)
}

//corral:hotpath
func (t *Tracer) taskEvent(now float64, k Kind, role Role, job, stage, task, attempt, machine int) {
	e := unsetEvent(now, k)
	e.Role, e.Job, e.Stage, e.Task, e.Att, e.Mach = role, job, stage, task, attempt, machine
	t.events = append(t.events, e)
}

// TaskQueued records a task (re-)entering the pending queues.
//
//corral:hotpath
func (t *Tracer) TaskQueued(now float64, role Role, job, stage, task, attempt int) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskQueued, role, job, stage, task, attempt, -1)
}

// TaskStart records an attempt launching on a machine.
//
//corral:hotpath
func (t *Tracer) TaskStart(now float64, role Role, job, stage, task, attempt, machine int) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskStart, role, job, stage, task, attempt, machine)
}

// TaskFinish records an attempt completing; dur is its wall-clock
// (simulated) duration.
//
//corral:hotpath
func (t *Tracer) TaskFinish(now float64, role Role, job, stage, task, attempt, machine int, dur float64) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskFinish, role, job, stage, task, attempt, machine)
	t.events[len(t.events)-1].Value = dur
}

// TaskCrash records an injected attempt crash.
//
//corral:hotpath
func (t *Tracer) TaskCrash(now float64, role Role, job, stage, task, attempt, machine int) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskCrash, role, job, stage, task, attempt, machine)
}

// TaskAbort records an attempt killed by failure/speculation/AM restart.
//
//corral:hotpath
func (t *Tracer) TaskAbort(now float64, role Role, job, stage, task, attempt, machine int) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskAbort, role, job, stage, task, attempt, machine)
}

// TaskBackoff records the retry backoff delay before a crashed task
// re-enters the pending queues.
//
//corral:hotpath
func (t *Tracer) TaskBackoff(now float64, role Role, job, stage, task, attempt int, delay float64) {
	if t == nil {
		return
	}
	t.taskEvent(now, KTaskBackoff, role, job, stage, task, attempt, -1)
	t.events[len(t.events)-1].Value = delay
}

// ShuffleDone records a reduce attempt's shuffle phase completing.
//
//corral:hotpath
func (t *Tracer) ShuffleDone(now float64, job, stage, task, machine int) {
	if t == nil {
		return
	}
	t.taskEvent(now, KShuffleDone, RoleReduce, job, stage, task, -1, machine)
}

// SlotsBusy samples the cluster-wide occupied-slot counter.
//
//corral:hotpath
func (t *Tracer) SlotsBusy(now float64, busy int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KSlotsBusy)
	e.Value = float64(busy)
	t.events = append(t.events, e)
}

//corral:hotpath
func (t *Tracer) machineEvent(now float64, k Kind, machine int) {
	e := unsetEvent(now, k)
	e.Mach = machine
	t.events = append(t.events, e)
}

// MachineDown records a machine failure.
//
//corral:hotpath
func (t *Tracer) MachineDown(now float64, machine int) {
	if t == nil {
		return
	}
	t.machineEvent(now, KMachineDown, machine)
}

// MachineUp records a transient failure recovering.
//
//corral:hotpath
func (t *Tracer) MachineUp(now float64, machine int) {
	if t == nil {
		return
	}
	t.machineEvent(now, KMachineUp, machine)
}

// Blacklist records a machine leaving the slot pool at the failed-attempt
// threshold.
//
//corral:hotpath
func (t *Tracer) Blacklist(now float64, machine int) {
	if t == nil {
		return
	}
	t.machineEvent(now, KBlacklist, machine)
}

// Unblacklist records a machine rejoining after its cooldown.
//
//corral:hotpath
func (t *Tracer) Unblacklist(now float64, machine int) {
	if t == nil {
		return
	}
	t.machineEvent(now, KUnblacklist, machine)
}

// AMFail records an application-master kill.
//
//corral:hotpath
func (t *Tracer) AMFail(now float64, job int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KAMFail)
	e.Job = job
	t.events = append(t.events, e)
}

// AMRestart records a restarted AM resuming its job.
//
//corral:hotpath
func (t *Tracer) AMRestart(now float64, job int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KAMRestart)
	e.Job = job
	t.events = append(t.events, e)
}

// Replan records a failure-triggered planner re-invocation covering n jobs.
//
//corral:hotpath
func (t *Tracer) Replan(now float64, jobs int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KReplan)
	e.Value = float64(jobs)
	t.events = append(t.events, e)
}

// SimEnd records the run's quiesce time (last job completion or repair
// commit, whichever is later).
//
//corral:hotpath
func (t *Tracer) SimEnd(quiesce float64) {
	if t == nil {
		return
	}
	e := unsetEvent(quiesce, KSimEnd)
	e.Value = quiesce
	t.events = append(t.events, e)
}

// FlowStart records a network flow starting. src/dst are -1 for
// rack-aggregated path flows whose source is a machine set.
//
//corral:hotpath
func (t *Tracer) FlowStart(now float64, flow int64, job, src, dst int, bytes float64, cross bool) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KFlowStart)
	e.Flow, e.Job, e.Src, e.Dst, e.Value = flow, job, src, dst, bytes
	if cross {
		e.Detail = "cross"
	}
	t.events = append(t.events, e)
}

// FlowFinish records a flow completing its bytes.
//
//corral:hotpath
func (t *Tracer) FlowFinish(now float64, flow int64, bytes float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KFlowFinish)
	e.Flow, e.Value = flow, bytes
	t.events = append(t.events, e)
}

// FlowCancel records a flow aborted mid-transfer; sent is what crossed
// the wire before the abort.
//
//corral:hotpath
func (t *Tracer) FlowCancel(now float64, flow int64, sent float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KFlowCancel)
	e.Flow, e.Value = flow, sent
	t.events = append(t.events, e)
}

// FlowRate records a flow's allocated rate changing at a recompute point.
//
//corral:hotpath
func (t *Tracer) FlowRate(now float64, flow int64, rate float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KFlowRate)
	e.Flow, e.Value = flow, rate
	t.events = append(t.events, e)
}

// LinkUtil samples a link's utilization fraction at a recompute point
// (emitted on change only).
//
//corral:hotpath
func (t *Tracer) LinkUtil(now float64, link int, util float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KLinkUtil)
	e.Link, e.Value = link, util
	t.events = append(t.events, e)
}

// LinkCap records a link-fault capacity change.
//
//corral:hotpath
func (t *Tracer) LinkCap(now float64, link int, capacity float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KLinkCap)
	e.Link, e.Value = link, capacity
	t.events = append(t.events, e)
}

// DFSCreate records a file being placed into the block store.
//
//corral:hotpath
func (t *Tracer) DFSCreate(now float64, name string, bytes float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KDFSCreate)
	e.Value, e.Detail = bytes, name
	t.events = append(t.events, e)
}

// DFSCorrupt records a replica on a machine going silently corrupt.
//
//corral:hotpath
func (t *Tracer) DFSCorrupt(now float64, machine int, bytes float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KDFSCorrupt)
	e.Mach, e.Value = machine, bytes
	t.events = append(t.events, e)
}

// BlockRead records a remote DFS block read; failover marks a read that
// checksum-skipped a corrupt replica.
//
//corral:hotpath
func (t *Tracer) BlockRead(now float64, job, reader, replica int, bytes float64, failover bool) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KBlockRead)
	e.Job, e.Dst, e.Src, e.Value = job, reader, replica, bytes
	if failover {
		e.Detail = "failover"
	}
	t.events = append(t.events, e)
}

// RepairStart records the re-replication daemon launching a copy.
//
//corral:hotpath
func (t *Tracer) RepairStart(now float64, src, dst int, bytes float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KRepairStart)
	e.Src, e.Dst, e.Value = src, dst, bytes
	t.events = append(t.events, e)
}

// RepairCommit records a repair copy landing in the store.
//
//corral:hotpath
func (t *Tracer) RepairCommit(now float64, src, dst int, bytes float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KRepairCommit)
	e.Src, e.Dst, e.Value = src, dst, bytes
	t.events = append(t.events, e)
}

// PlanStart records a planner invocation over n jobs. now is simulation
// time for replans, 0 for offline planning.
//
//corral:hotpath
func (t *Tracer) PlanStart(now float64, jobs int, objective string) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KPlanStart)
	e.Value, e.Detail = float64(jobs), objective
	t.events = append(t.events, e)
}

// PlanAssign records one job's planned rack set, priority and start.
//
//corral:hotpath
func (t *Tracer) PlanAssign(now float64, job, priority int, start float64, racks []int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KPlanAssign)
	e.Job, e.Att, e.Value = job, priority, start
	e.Detail = formatRacks(racks)
	t.events = append(t.events, e)
}

// PlanDone records the plan's estimated objective value.
//
//corral:hotpath
func (t *Tracer) PlanDone(now float64, objective float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KPlanDone)
	e.Value = objective
	t.events = append(t.events, e)
}

// PlanBudgetExceeded records a replan decision whose estimated full-plan
// cost exceeds Options.PlannerBudget, forcing a fallback tier.
//
//corral:hotpath
func (t *Tracer) PlanBudgetExceeded(now float64, cost float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KPlanBudgetExceeded)
	e.Value = cost
	t.events = append(t.events, e)
}

// Degrade records a fallback-chain step: tier 1 is the commitments-only
// incremental replan, tier 2 the greedy Yarn-CS placement; jobs is the
// number of pending jobs affected.
//
//corral:hotpath
func (t *Tracer) Degrade(now float64, tier, jobs int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KDegrade)
	e.Att, e.Value = tier, float64(jobs)
	t.events = append(t.events, e)
}

// ReplanSuppressed records a replan request absorbed by the storm
// debounce window; fireAt is when the coalesced replan will run.
//
//corral:hotpath
func (t *Tracer) ReplanSuppressed(now float64, fireAt float64) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KReplanSuppressed)
	e.Value = fireAt
	t.events = append(t.events, e)
}

// JobDeferred records an arrival parked in the admission queue; depth is
// the queue depth including this job.
//
//corral:hotpath
func (t *Tracer) JobDeferred(now float64, job, depth int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KJobDeferred)
	e.Job, e.Value = job, float64(depth)
	t.events = append(t.events, e)
}

// JobShed records an arrival rejected because the admission queue is at
// capacity; depth is the (full) queue depth at the shed.
//
//corral:hotpath
func (t *Tracer) JobShed(now float64, job, depth int) {
	if t == nil {
		return
	}
	e := unsetEvent(now, KJobShed)
	e.Job, e.Value = job, float64(depth)
	t.events = append(t.events, e)
}

// formatRacks renders a rack set as "r0 r2 r5".
func formatRacks(racks []int) string {
	b := make([]byte, 0, 4*len(racks))
	for i, r := range racks {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, 'r')
		b = appendInt(b, int64(r))
	}
	return string(b)
}
