package trace

import (
	"io"
	"testing"
)

// BenchmarkTracerDisabledEmit pins the disabled fast path: a nil tracer
// must cost a handful of nanoseconds and zero allocations per emit —
// this is what lets every runtime/netsim/dfs call site emit
// unconditionally.
func BenchmarkTracerDisabledEmit(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TaskStart(1, RoleMap, 0, 0, i, 1, 2)
		tr.TaskFinish(2, RoleMap, 0, 0, i, 1, 2, 1)
		tr.FlowRate(1, int64(i), 0.5)
		tr.LinkUtil(1, 3, 0.5)
	}
}

// BenchmarkTracerEnabledEmit measures the live emission cost (amortized
// slice append of one value-type Event).
func BenchmarkTracerEnabledEmit(b *testing.B) {
	tr := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TaskStart(1, RoleMap, 0, 0, i, 1, 2)
	}
}

func benchCollector(events int) *Collector {
	c := NewCollector()
	tr := c.NewRun("bench")
	tr.MachineMeta(0, 0)
	tr.LinkMeta(0, "l0", 1e9)
	for i := 0; i < events; i++ {
		tr.TaskStart(float64(i), RoleMap, 0, 0, i, 1, i%8)
		tr.TaskFinish(float64(i)+1, RoleMap, 0, 0, i, 1, i%8, 1)
		tr.LinkUtil(float64(i), 0, float64(i%10)/10)
	}
	return c
}

// BenchmarkWriteJSONL measures export throughput for a 3k-event run.
func BenchmarkWriteJSONL(b *testing.B) {
	c := benchCollector(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteChrome measures Chrome trace-event export for the same run.
func BenchmarkWriteChrome(b *testing.B) {
	c := benchCollector(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.WriteChrome(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
