package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Collector gathers the tracers of one experiment invocation. Experiment
// sweeps fan simulation runs out over a worker pool, so NewRun is
// goroutine-safe; registration order is whatever the pool produced and is
// deliberately NOT part of the export contract. Export ordering sorts
// finished runs by (label, serialized content): two replays of the same
// seeded experiment register the same run set with the same per-run
// bytes, so the sorted output is bit-identical for any worker count —
// runs with identical label AND identical content are interchangeable,
// making the remaining tie order irrelevant.
type Collector struct {
	mu   sync.Mutex
	runs []*Tracer
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// NewRun registers and returns a tracer for one simulation or planner
// run. The label should identify the run's configuration (scheduler,
// seed, ...), not its execution order.
func (c *Collector) NewRun(label string) *Tracer {
	t := New(label)
	c.mu.Lock()
	c.runs = append(c.runs, t)
	c.mu.Unlock()
	return t
}

// Runs returns how many runs have registered.
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// Events returns the total event count across all runs.
func (c *Collector) Events() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.runs {
		n += len(t.events)
	}
	return n
}

// runBlob is one run serialized for export: the label plus its JSONL
// event lines (without the run header). Sorting on (label, blob) is the
// collector's determinism mechanism.
type runBlob struct {
	label string
	t     *Tracer
	blob  []byte
}

// sortedRuns snapshots and orders the registered runs deterministically.
func (c *Collector) sortedRuns() []runBlob {
	c.mu.Lock()
	runs := append([]*Tracer(nil), c.runs...)
	c.mu.Unlock()
	out := make([]runBlob, len(runs))
	for i, t := range runs {
		var b []byte
		for ei := range t.events {
			b = appendEventJSON(b, &t.events[ei])
			b = append(b, '\n')
		}
		out[i] = runBlob{label: t.label, t: t, blob: b}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].label != out[j].label {
			return out[i].label < out[j].label
		}
		return string(out[i].blob) < string(out[j].blob)
	})
	return out
}

// active is the process-wide collector, installed by corralsim -trace (or
// tests). runtime.Run and planner.New consult it so the 20+ experiment
// call sites need no per-site plumbing; nil (the default) keeps every
// emit on the disabled fast path.
var active atomic.Pointer[Collector]

// Install makes c the process-wide collector; nil uninstalls. Callers
// that install temporarily (tests) must uninstall before returning.
func Install(c *Collector) { active.Store(c) }

// Active returns the installed collector, or nil.
func Active() *Collector { return active.Load() }

// NewRun registers a run with the installed collector; with none
// installed it returns a nil tracer (the disabled fast path).
func NewRun(label string) *Tracer {
	if c := Active(); c != nil {
		return c.NewRun(label)
	}
	return nil
}
