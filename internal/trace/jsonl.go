package trace

// JSONL export: one JSON object per line. The first line of each run is a
// header {"run":N,"label":...}; every following line is one event with
// only the fields its Kind defines (see the field masks below). Encoding
// is hand-rolled on purpose: field order, float formatting ('g', shortest
// round-trip) and escaping are fixed here, so identical event buffers
// always serialize to identical bytes — the property the bit-identical
// replay tests pin.

import (
	"io"
	"strconv"
)

// Field-presence bits, one per Event field a Kind may populate.
const (
	fRole uint16 = 1 << iota
	fJob
	fStage
	fTask
	fAtt
	fMach
	fRack // machine_meta's rack, carried in Event.Src
	fLink
	fSrc
	fDst
	fFlow
	fValue
	fDetail
)

const taskIdent = fRole | fJob | fStage | fTask | fAtt

var kindFields = [numKinds]uint16{
	KMachineMeta:  fMach | fRack,
	KLinkMeta:     fLink | fValue | fDetail,
	KJobSubmit:    fJob | fValue | fDetail,
	KJobDone:      fJob,
	KJobFail:      fJob | fDetail,
	KTaskQueued:   taskIdent,
	KTaskStart:    taskIdent | fMach,
	KTaskFinish:   taskIdent | fMach | fValue,
	KTaskCrash:    taskIdent | fMach,
	KTaskAbort:    taskIdent | fMach,
	KTaskBackoff:  taskIdent | fValue,
	KShuffleDone:  fRole | fJob | fStage | fTask | fMach,
	KSlotsBusy:    fValue,
	KMachineDown:  fMach,
	KMachineUp:    fMach,
	KBlacklist:    fMach,
	KUnblacklist:  fMach,
	KAMFail:       fJob,
	KAMRestart:    fJob,
	KReplan:       fValue,
	KSimEnd:       fValue,
	KFlowStart:    fFlow | fJob | fSrc | fDst | fValue | fDetail,
	KFlowFinish:   fFlow | fValue,
	KFlowCancel:   fFlow | fValue,
	KFlowRate:     fFlow | fValue,
	KLinkUtil:     fLink | fValue,
	KLinkCap:      fLink | fValue,
	KDFSCreate:    fValue | fDetail,
	KDFSCorrupt:   fMach | fValue,
	KBlockRead:    fJob | fSrc | fDst | fValue | fDetail,
	KRepairStart:  fSrc | fDst | fValue,
	KRepairCommit: fSrc | fDst | fValue,
	KPlanStart:    fValue | fDetail,
	KPlanAssign:   fJob | fAtt | fValue | fDetail,
	KPlanDone:     fValue,

	KPlanBudgetExceeded: fValue,
	KDegrade:            fAtt | fValue,
	KReplanSuppressed:   fValue,
	KJobDeferred:        fJob | fValue,
	KJobShed:            fJob | fValue,
}

func appendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// appendFloat uses shortest round-trip formatting: deterministic and
// exact, so re-parsing a trace reproduces the simulated values bit for
// bit.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString escapes s as a JSON string (RFC 8259): quotes,
// backslashes and control bytes are escaped; everything else — including
// raw UTF-8 — passes through.
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func appendField(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return appendInt(b, v)
}

// appendEventJSON serializes one event as a single-line JSON object.
func appendEventJSON(b []byte, e *Event) []byte {
	b = append(b, `{"t":`...)
	b = appendFloat(b, e.T)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	m := kindFields[e.Kind]
	if m&fRole != 0 && e.Role != RoleNone {
		b = append(b, `,"role":"`...)
		b = append(b, e.Role.String()...)
		b = append(b, '"')
	}
	if m&fJob != 0 {
		b = appendField(b, "job", int64(e.Job))
	}
	if m&fStage != 0 {
		b = appendField(b, "stage", int64(e.Stage))
	}
	if m&fTask != 0 {
		b = appendField(b, "task", int64(e.Task))
	}
	if m&fAtt != 0 {
		b = appendField(b, "att", int64(e.Att))
	}
	if m&fMach != 0 {
		b = appendField(b, "mach", int64(e.Mach))
	}
	if m&fRack != 0 {
		b = appendField(b, "rack", int64(e.Src))
	}
	if m&fLink != 0 {
		b = appendField(b, "link", int64(e.Link))
	}
	if m&fSrc != 0 {
		b = appendField(b, "src", int64(e.Src))
	}
	if m&fDst != 0 {
		b = appendField(b, "dst", int64(e.Dst))
	}
	if m&fFlow != 0 {
		b = appendField(b, "flow", e.Flow)
	}
	if m&fValue != 0 {
		b = append(b, `,"value":`...)
		b = appendFloat(b, e.Value)
	}
	if m&fDetail != 0 && e.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, e.Detail)
	}
	return append(b, '}')
}

// WriteJSONL writes every run, deterministically ordered, as JSONL: a
// {"run":N,"label":...} header line per run followed by its event lines.
func (c *Collector) WriteJSONL(w io.Writer) error {
	var b []byte
	for i, run := range c.sortedRuns() {
		b = b[:0]
		b = append(b, `{"run":`...)
		b = appendInt(b, int64(i))
		b = append(b, `,"label":`...)
		b = appendJSONString(b, run.label)
		b = append(b, `,"events":`...)
		b = appendInt(b, int64(len(run.t.events)))
		b = append(b, '}', '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
		if _, err := w.Write(run.blob); err != nil {
			return err
		}
	}
	return nil
}
