package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// emitAll exercises every emit method once against t (which may be nil).
func emitAll(t *Tracer) {
	t.MachineMeta(3, 1)
	t.LinkMeta(2, "rack1-up", 1e9)
	t.JobSubmit(0.5, 0, "job-a", 40)
	t.JobDone(9.5, 0)
	t.JobFail(9.6, 1, "am retries exhausted")
	t.TaskQueued(1, RoleMap, 0, 0, 7, 1)
	t.TaskStart(1.5, RoleMap, 0, 0, 7, 1, 3)
	t.TaskFinish(2.5, RoleMap, 0, 0, 7, 1, 3, 1.0)
	t.TaskCrash(2.6, RoleMap, 0, 0, 8, 1, 4)
	t.TaskAbort(2.7, RoleReduce, 0, 1, 2, 1, 5)
	t.TaskBackoff(2.8, RoleMap, 0, 0, 8, 2, 0.25)
	t.ShuffleDone(3.0, 0, 1, 2, 5)
	t.SlotsBusy(3.1, 12)
	t.MachineDown(4, 9)
	t.MachineUp(5, 9)
	t.Blacklist(5.5, 4)
	t.Unblacklist(6.5, 4)
	t.AMFail(6.6, 1)
	t.AMRestart(6.9, 1)
	t.Replan(7, 3)
	t.SimEnd(10.25)
	t.FlowStart(1.1, 42, 0, 3, 5, 1<<20, true)
	t.FlowFinish(1.9, 42, 1<<20)
	t.FlowCancel(1.95, 43, 512)
	t.FlowRate(1.2, 42, 5e8)
	t.LinkUtil(1.2, 2, 0.75)
	t.LinkCap(4.5, 2, 5e8)
	t.DFSCreate(0, "input-0", 1<<30)
	t.DFSCorrupt(3.3, 6, 1<<26)
	t.BlockRead(1.4, 0, 3, 11, 1<<26, true)
	t.RepairStart(4.1, 6, 8, 1<<26)
	t.RepairCommit(4.9, 6, 8, 1<<26)
	t.PlanStart(0, 5, "makespan")
	t.PlanAssign(0, 0, 1, 0.0, []int{0, 2})
	t.PlanDone(0, 123.5)
}

// emitAllCount must track emitAll: one event per call above.
const emitAllCount = 35

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	emitAll(tr) // must not panic
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Label() != "" || tr.Events() != nil {
		t.Fatal("nil tracer leaked state")
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tr.TaskStart(1, RoleMap, 0, 0, 1, 1, 2)
		tr.TaskFinish(2, RoleMap, 0, 0, 1, 1, 2, 1)
		tr.FlowStart(1, 7, 0, 1, 2, 1e6, false)
		tr.LinkUtil(1, 3, 0.5)
		tr.SlotsBusy(1, 4)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v allocs/op, want 0", allocs)
	}
}

func TestEmitAllBuffered(t *testing.T) {
	tr := New("test")
	emitAll(tr)
	if got := len(tr.Events()); got != emitAllCount {
		t.Fatalf("buffered %d events, want %d", got, emitAllCount)
	}
	if !tr.Enabled() || tr.Label() != "test" {
		t.Fatal("tracer state wrong")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("Kind %d has no name", k)
		}
		if kindFields[k] == 0 && k != KJobDone {
			// every kind except pure-identity ones defines fields; job_done
			// legitimately has only fJob, so 0 means a table gap.
			if kindFields[k] == 0 {
				t.Errorf("Kind %s has no field mask", k)
			}
		}
	}
	if Kind(200).String() != "kind?" {
		t.Error("out-of-range Kind String")
	}
	if RoleMap.String() != "map" || RoleReduce.String() != "reduce" || RoleNone.String() != "" {
		t.Error("Role String wrong")
	}
}

func TestJSONLValid(t *testing.T) {
	c := NewCollector()
	emitAll(c.NewRun("run-a"))
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != emitAllCount+1 {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), emitAllCount+1)
	}
	var hdr struct {
		Run    int    `json:"run"`
		Label  string `json:"label"`
		Events int    `json:"events"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header not JSON: %v", err)
	}
	if hdr.Label != "run-a" || hdr.Events != emitAllCount {
		t.Fatalf("bad header %+v", hdr)
	}
	for i, ln := range lines[1:] {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i+1, err, ln)
		}
		if _, ok := m["ev"]; !ok {
			t.Fatalf("line %d missing ev: %s", i+1, ln)
		}
		if _, ok := m["t"]; !ok {
			t.Fatalf("line %d missing t: %s", i+1, ln)
		}
	}
	// Pin a couple of format details the replay tests depend on.
	if !strings.Contains(buf.String(), `"ev":"task_start","role":"map","job":0,"stage":0,"task":7,"att":1,"mach":3`) {
		t.Error("task_start line format drifted")
	}
	if !strings.Contains(buf.String(), `"ev":"flow_start"`) || !strings.Contains(buf.String(), `"detail":"cross"`) {
		t.Error("flow_start cross marker missing")
	}
	if !strings.Contains(buf.String(), `"detail":"r0 r2"`) {
		t.Error("plan_assign rack-set format drifted")
	}
}

func TestJSONStringEscaping(t *testing.T) {
	got := string(appendJSONString(nil, "a\"b\\c\nd\x01é"))
	want := "\"a\\\"b\\\\c\\u000ad\\u0001é\""
	if got != want {
		t.Fatalf("got %s want %s", got, want)
	}
	var back string
	if err := json.Unmarshal([]byte(got), &back); err != nil {
		t.Fatalf("escaped string not valid JSON: %v", err)
	}
	if back != "a\"b\\c\nd\x01é" {
		t.Fatalf("round-trip mismatch: %q", back)
	}
}

func TestChromeValid(t *testing.T) {
	c := NewCollector()
	emitAll(c.NewRun("run-a"))
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phs := map[string]int{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M", "X", "C", "i":
			phs[ph]++
		default:
			t.Fatalf("unexpected ph %q in %v", ph, ev)
		}
		if ph == "X" {
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("X event without dur: %v", ev)
			}
		}
	}
	// emitAll starts one map task (finished), one map crash-with-no-start
	// pair is absent, and the reduce abort has no matching start → exactly
	// one task span.
	if spans != 1 {
		t.Fatalf("got %d X spans, want 1", spans)
	}
	for _, ph := range []string{"M", "C", "i"} {
		if phs[ph] == 0 {
			t.Fatalf("no %q events in Chrome export", ph)
		}
	}
}

func TestChromeShuffleSpanNested(t *testing.T) {
	c := NewCollector()
	tr := c.NewRun("r")
	tr.TaskStart(1, RoleReduce, 0, 1, 2, 1, 5)
	tr.ShuffleDone(3, 0, 1, 2, 5)
	tr.TaskFinish(4, RoleReduce, 0, 1, 2, 1, 5, 3)
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"name":"reduce j0 s1 t2"`) {
		t.Error("reduce span missing")
	}
	if !strings.Contains(s, `"name":"shuffle"`) {
		t.Error("nested shuffle span missing")
	}
}

func TestCollectorOrderInvariance(t *testing.T) {
	build := func(order []int) *Collector {
		c := NewCollector()
		for _, i := range order {
			tr := c.NewRun([]string{"run-a", "run-b"}[i])
			if i == 0 {
				tr.TaskStart(1, RoleMap, 0, 0, 0, 1, 0)
				tr.TaskFinish(2, RoleMap, 0, 0, 0, 1, 0, 1)
			} else {
				tr.SlotsBusy(1, 3)
			}
		}
		return c
	}
	c1, c2 := build([]int{0, 1}), build([]int{1, 0})
	var j1, j2, g1, g2 bytes.Buffer
	if err := c1.WriteJSONL(&j1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteJSONL(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSONL export depends on registration order")
	}
	if err := c1.WriteChrome(&g1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteChrome(&g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1.Bytes(), g2.Bytes()) {
		t.Error("Chrome export depends on registration order")
	}
	if c1.Runs() != 2 || c1.Events() != 3 {
		t.Errorf("collector counts wrong: runs=%d events=%d", c1.Runs(), c1.Events())
	}
}

func TestGlobalInstall(t *testing.T) {
	if Active() != nil {
		t.Fatal("collector installed at test start")
	}
	if tr := NewRun("x"); tr != nil {
		t.Fatal("NewRun without collector must return nil tracer")
	}
	c := NewCollector()
	Install(c)
	defer Install(nil)
	if Active() != c {
		t.Fatal("Active() lost the installed collector")
	}
	tr := NewRun("y")
	if !tr.Enabled() {
		t.Fatal("NewRun with installed collector returned nil")
	}
	if c.Runs() != 1 {
		t.Fatal("run not registered")
	}
}
