package trace

// Chrome trace-event export (the Perfetto/chrome://tracing JSON format).
// Each run becomes one "process": machine slots are thread lanes carrying
// task-attempt spans (ph "X", with the reduce shuffle phase as a nested
// span), slot occupancy and per-link utilization are counter tracks
// (ph "C"), and job/machine/AM/plan/repair lifecycle events are process-
// scoped instants (ph "i") on a "cluster" lane. High-volume flow-level
// events (flow_start/finish/rate, block_read, task_queued/backoff) are
// JSONL-only — Perfetto is for the timeline shape, the JSONL stream for
// scripting.
//
// Timestamps are simulation seconds scaled to microseconds. The encoder
// is hand-rolled like jsonl.go and consumes sortedRuns(), so the output
// bytes are a pure function of the collected events.

import "io"

// chromeLaneBase offsets machine lanes past the cluster lane (tid 0).
// Machine m's slot-lane l gets tid = chromeLaneBase + m*chromeMaxLanes + l.
const (
	chromeLaneBase = 1000
	chromeMaxLanes = 64
)

type spanKey struct {
	role             Role
	job, stage, task int
}

type openSpan struct {
	start     float64
	att       int
	machine   int
	lane      int
	shuffleAt float64 // reduce shuffle end, -1 until shuffle_done
}

// chromeWriter accumulates trace-event objects for one export.
type chromeWriter struct {
	w     io.Writer
	buf   []byte
	first bool
	err   error
	named map[int]bool // lane tids with thread metadata already emitted
}

func (cw *chromeWriter) flush() {
	if cw.err != nil || len(cw.buf) == 0 {
		cw.buf = cw.buf[:0]
		return
	}
	_, cw.err = cw.w.Write(cw.buf)
	cw.buf = cw.buf[:0]
}

// open starts one trace-event object, handling the comma separator.
func (cw *chromeWriter) open(ph string, pid, tid int) {
	if cw.first {
		cw.first = false
	} else {
		cw.buf = append(cw.buf, ',', '\n')
	}
	cw.buf = append(cw.buf, `{"ph":"`...)
	cw.buf = append(cw.buf, ph...)
	cw.buf = append(cw.buf, `","pid":`...)
	cw.buf = appendInt(cw.buf, int64(pid))
	cw.buf = append(cw.buf, `,"tid":`...)
	cw.buf = appendInt(cw.buf, int64(tid))
}

func (cw *chromeWriter) ts(t float64) {
	cw.buf = append(cw.buf, `,"ts":`...)
	cw.buf = appendFloat(cw.buf, t*1e6)
}

func (cw *chromeWriter) name(n string) {
	cw.buf = append(cw.buf, `,"name":`...)
	cw.buf = appendJSONString(cw.buf, n)
}

func (cw *chromeWriter) close() {
	cw.buf = append(cw.buf, '}')
	if len(cw.buf) >= 1<<16 {
		cw.flush()
	}
}

// meta emits a metadata record with a single string arg "name".
func (cw *chromeWriter) meta(kind string, pid, tid int, value string) {
	cw.open("M", pid, tid)
	cw.name(kind)
	cw.buf = append(cw.buf, `,"args":{"name":`...)
	cw.buf = appendJSONString(cw.buf, value)
	cw.buf = append(cw.buf, '}')
	cw.close()
}

// sortIndex pins a lane's UI position.
func (cw *chromeWriter) sortIndex(pid, tid, idx int) {
	cw.open("M", pid, tid)
	cw.name("thread_sort_index")
	cw.buf = append(cw.buf, `,"args":{"sort_index":`...)
	cw.buf = appendInt(cw.buf, int64(idx))
	cw.buf = append(cw.buf, '}')
	cw.close()
}

// instant emits a process-scoped instant on the cluster lane.
func (cw *chromeWriter) instant(pid int, t float64, name string) {
	cw.open("i", pid, 0)
	cw.ts(t)
	cw.name(name)
	cw.buf = append(cw.buf, `,"cat":"lifecycle","s":"p"`...)
	cw.close()
}

// counter emits one sample of a named counter track.
func (cw *chromeWriter) counter(pid int, t float64, track, series string, v float64) {
	cw.open("C", pid, 0)
	cw.ts(t)
	cw.name(track)
	cw.buf = append(cw.buf, `,"args":{"`...)
	cw.buf = append(cw.buf, series...)
	cw.buf = append(cw.buf, `":`...)
	cw.buf = appendFloat(cw.buf, v)
	cw.buf = append(cw.buf, '}')
	cw.close()
}

// span emits a complete (ph "X") task-attempt span.
func (cw *chromeWriter) span(pid, tid int, start, end float64, name string, e *Event, att int, status string) {
	cw.open("X", pid, tid)
	cw.ts(start)
	cw.buf = append(cw.buf, `,"dur":`...)
	cw.buf = appendFloat(cw.buf, (end-start)*1e6)
	cw.name(name)
	cw.buf = append(cw.buf, `,"cat":"task","args":{"job":`...)
	cw.buf = appendInt(cw.buf, int64(e.Job))
	cw.buf = append(cw.buf, `,"stage":`...)
	cw.buf = appendInt(cw.buf, int64(e.Stage))
	cw.buf = append(cw.buf, `,"task":`...)
	cw.buf = appendInt(cw.buf, int64(e.Task))
	cw.buf = append(cw.buf, `,"att":`...)
	cw.buf = appendInt(cw.buf, int64(att))
	cw.buf = append(cw.buf, `,"status":"`...)
	cw.buf = append(cw.buf, status...)
	cw.buf = append(cw.buf, '"', '}')
	cw.close()
}

// taskName renders "map j3 s0 t17" without fmt (export-path hot loop).
func taskName(role Role, job, stage, task int) string {
	b := make([]byte, 0, 24)
	b = append(b, role.String()...)
	b = append(b, " j"...)
	b = appendInt(b, int64(job))
	b = append(b, " s"...)
	b = appendInt(b, int64(stage))
	b = append(b, " t"...)
	b = appendInt(b, int64(task))
	return string(b)
}

func machineLaneName(machine, lane, rack int) string {
	b := make([]byte, 0, 24)
	b = append(b, 'm')
	b = appendInt(b, int64(machine))
	b = append(b, " s"...)
	b = appendInt(b, int64(lane))
	b = append(b, " (rack "...)
	b = appendInt(b, int64(rack))
	b = append(b, ')')
	return string(b)
}

// WriteChrome writes the collected runs as a Chrome trace-event JSON
// document, one process per run, deterministically ordered and encoded.
func (c *Collector) WriteChrome(w io.Writer) error {
	cw := &chromeWriter{w: w, first: true}
	cw.buf = append(cw.buf, `{"displayTimeUnit":"ms","traceEvents":[`...)
	cw.buf = append(cw.buf, '\n')
	for i, run := range c.sortedRuns() {
		pid := i + 1
		writeChromeRun(cw, pid, run)
		if cw.err != nil {
			return cw.err
		}
	}
	cw.buf = append(cw.buf, "\n]}\n"...)
	cw.flush()
	return cw.err
}

func writeChromeRun(cw *chromeWriter, pid int, run runBlob) {
	cw.meta("process_name", pid, 0, run.label)
	cw.meta("thread_name", pid, 0, "cluster")
	cw.sortIndex(pid, 0, 0)

	rackOf := map[int]int{}      // machine → rack (from machine_meta)
	linkName := map[int]string{} // link → name (from link_meta)
	laneBusy := map[int][]bool{} // machine → slot-lane occupancy
	open := map[spanKey]*openSpan{}

	link := func(id int) string {
		if n, ok := linkName[id]; ok {
			return n
		}
		return "link" + string(appendInt(nil, int64(id)))
	}

	for ei := range run.t.events {
		e := &run.t.events[ei]
		switch e.Kind {
		case KMachineMeta:
			rackOf[e.Mach] = e.Src
		case KLinkMeta:
			linkName[e.Link] = e.Detail

		case KTaskStart:
			lanes := laneBusy[e.Mach]
			if lanes == nil {
				lanes = make([]bool, chromeMaxLanes)
				laneBusy[e.Mach] = lanes
			}
			lane := chromeMaxLanes - 1
			for l := range lanes {
				if !lanes[l] {
					lane = l
					break
				}
			}
			if !lanes[lane] {
				lanes[lane] = true
				tid := chromeLaneBase + e.Mach*chromeMaxLanes + lane
				if !cw.laneNamed(tid) {
					cw.meta("thread_name", pid, tid, machineLaneName(e.Mach, lane, rackOf[e.Mach]))
					cw.sortIndex(pid, tid, tid)
				}
			}
			open[spanKey{e.Role, e.Job, e.Stage, e.Task}] = &openSpan{
				start: e.T, att: e.Att, machine: e.Mach, lane: lane, shuffleAt: -1,
			}

		case KShuffleDone:
			if sp := open[spanKey{RoleReduce, e.Job, e.Stage, e.Task}]; sp != nil {
				sp.shuffleAt = e.T
			}

		case KTaskFinish, KTaskCrash, KTaskAbort:
			k := spanKey{e.Role, e.Job, e.Stage, e.Task}
			sp := open[k]
			if sp == nil {
				break
			}
			delete(open, k)
			if lanes := laneBusy[sp.machine]; lanes != nil && sp.lane < len(lanes) {
				lanes[sp.lane] = false
			}
			status := "ok"
			if e.Kind == KTaskCrash {
				status = "crash"
			} else if e.Kind == KTaskAbort {
				status = "abort"
			}
			tid := chromeLaneBase + sp.machine*chromeMaxLanes + sp.lane
			cw.span(pid, tid, sp.start, e.T, taskName(e.Role, e.Job, e.Stage, e.Task), e, sp.att, status)
			if e.Role == RoleReduce && sp.shuffleAt >= sp.start {
				cw.span(pid, tid, sp.start, sp.shuffleAt, "shuffle", e, sp.att, "ok")
			}

		case KSlotsBusy:
			cw.counter(pid, e.T, "slots busy", "busy", e.Value)
		case KLinkUtil:
			cw.counter(pid, e.T, "util "+link(e.Link), "util", e.Value)
		case KLinkCap:
			cw.instant(pid, e.T, "link "+link(e.Link)+" cap "+string(appendFloat(nil, e.Value)))

		case KJobSubmit:
			cw.instant(pid, e.T, "submit j"+string(appendInt(nil, int64(e.Job)))+" "+e.Detail)
		case KJobDone:
			cw.instant(pid, e.T, "done j"+string(appendInt(nil, int64(e.Job))))
		case KJobFail:
			cw.instant(pid, e.T, "fail j"+string(appendInt(nil, int64(e.Job)))+": "+e.Detail)
		case KMachineDown:
			cw.instant(pid, e.T, "m"+string(appendInt(nil, int64(e.Mach)))+" down")
		case KMachineUp:
			cw.instant(pid, e.T, "m"+string(appendInt(nil, int64(e.Mach)))+" up")
		case KBlacklist:
			cw.instant(pid, e.T, "m"+string(appendInt(nil, int64(e.Mach)))+" blacklisted")
		case KUnblacklist:
			cw.instant(pid, e.T, "m"+string(appendInt(nil, int64(e.Mach)))+" unblacklisted")
		case KAMFail:
			cw.instant(pid, e.T, "AM fail j"+string(appendInt(nil, int64(e.Job))))
		case KAMRestart:
			cw.instant(pid, e.T, "AM restart j"+string(appendInt(nil, int64(e.Job))))
		case KReplan:
			cw.instant(pid, e.T, "replan ("+string(appendInt(nil, int64(e.Value)))+" jobs)")
		case KSimEnd:
			cw.instant(pid, e.T, "quiesce")
		case KDFSCorrupt:
			cw.instant(pid, e.T, "corrupt replica m"+string(appendInt(nil, int64(e.Mach))))
		case KRepairStart:
			cw.instant(pid, e.T, "repair m"+string(appendInt(nil, int64(e.Src)))+"→m"+string(appendInt(nil, int64(e.Dst))))
		case KRepairCommit:
			cw.instant(pid, e.T, "repair commit m"+string(appendInt(nil, int64(e.Dst))))
		case KPlanStart:
			cw.instant(pid, e.T, "plan start ("+string(appendInt(nil, int64(e.Value)))+" jobs, "+e.Detail+")")
		case KPlanAssign:
			cw.instant(pid, e.T, "plan j"+string(appendInt(nil, int64(e.Job)))+" → "+e.Detail)
		case KPlanDone:
			cw.instant(pid, e.T, "plan done")
		case KPlanBudgetExceeded:
			cw.instant(pid, e.T, "plan budget exceeded (cost "+string(appendFloat(nil, e.Value))+"s)")
		case KDegrade:
			tier := "incremental"
			if e.Att == 2 {
				tier = "greedy"
			}
			cw.instant(pid, e.T, "degrade → "+tier+" ("+string(appendInt(nil, int64(e.Value)))+" jobs)")
		case KReplanSuppressed:
			cw.instant(pid, e.T, "replan suppressed (fires t="+string(appendFloat(nil, e.Value))+")")
		case KJobDeferred:
			cw.instant(pid, e.T, "defer j"+string(appendInt(nil, int64(e.Job)))+" (queue "+string(appendInt(nil, int64(e.Value)))+")")
		case KJobShed:
			cw.instant(pid, e.T, "shed j"+string(appendInt(nil, int64(e.Job)))+" (queue "+string(appendInt(nil, int64(e.Value)))+")")
		}
		if cw.err != nil {
			return
		}
	}
	cw.resetLanes()
}

// laneNamed tracks which lane tids already carry thread metadata, per run.
func (cw *chromeWriter) laneNamed(tid int) bool {
	if cw.named == nil {
		cw.named = map[int]bool{}
	}
	if cw.named[tid] {
		return true
	}
	cw.named[tid] = true
	return false
}

func (cw *chromeWriter) resetLanes() { cw.named = nil }
