package dfs

// Snapshot support: CaptureState exports the store's observable state —
// every file's block layout with per-slot corruption marks, the
// incrementally maintained load accounting and machine liveness — as plain
// serializable data. Snapshots use it both for offline inspection and for
// the restore audit, where the state of a deterministically replayed store
// must be field-identical to the captured one. The blocksOn index is
// excluded: it is a lazily pruned cache whose contents are derivable from
// the file set and would make equality depend on pruning history.

import "sort"

// BlockState is the serializable view of one block: its replica machines
// and, aligned slot-for-slot, whether each replica is corrupt.
type BlockState struct {
	Size     float64
	Replicas []int
	Corrupt  []bool
}

// FileState is the serializable view of one file.
type FileState struct {
	Name   string
	Size   float64
	Blocks []BlockState
}

// StoreState is the complete serializable store state.
type StoreState struct {
	BlockSize    float64
	Files        []FileState // sorted by name
	MachineBytes []float64
	RackBytes    []float64
	Alive        []bool
}

// CaptureState exports the store's observable state, files sorted by name
// so the export never depends on map iteration order.
func (s *Store) CaptureState() *StoreState {
	st := &StoreState{
		BlockSize:    s.blockSize,
		MachineBytes: append([]float64(nil), s.view.machineBytes...),
		RackBytes:    append([]float64(nil), s.view.rackBytes...),
		Alive:        append([]bool(nil), s.view.alive...),
	}
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	st.Files = make([]FileState, 0, len(names))
	for _, name := range names {
		f := s.files[name]
		fs := FileState{Name: f.Name, Size: f.Size, Blocks: make([]BlockState, len(f.Blocks))}
		for i := range f.Blocks {
			b := &f.Blocks[i]
			bs := BlockState{
				Size:     b.Size,
				Replicas: append([]int(nil), b.Replicas...),
				Corrupt:  make([]bool, len(b.Replicas)),
			}
			for slot := range b.Replicas {
				bs.Corrupt[slot] = s.corrupt[replicaSlot{b, slot}]
			}
			fs.Blocks[i] = bs
		}
		st.Files = append(st.Files, fs)
	}
	return st
}
