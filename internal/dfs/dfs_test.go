package dfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"corral/internal/topology"
)

const gbps = 1e9 / 8

func testCluster() *topology.Cluster {
	return topology.MustNew(topology.Config{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  8,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
}

func newStore(seed int64) *Store {
	return New(testCluster(), 0, rand.New(rand.NewSource(seed)))
}

func TestCreateBasics(t *testing.T) {
	s := newStore(1)
	size := 3.5 * DefaultBlockSize
	f, err := s.Create("input", size, DefaultPlacement{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	total := 0.0
	for i, b := range f.Blocks {
		total += b.Size
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(b.Replicas))
		}
	}
	if math.Abs(total-size) > 1 {
		t.Fatalf("sum of block sizes = %g, want %g", total, size)
	}
	// Last block is the remainder.
	if got := f.Blocks[3].Size; math.Abs(got-0.5*DefaultBlockSize) > 1 {
		t.Fatalf("last block size = %g, want half block", got)
	}
	if got, ok := s.Open("input"); !ok || got != f {
		t.Fatal("Open did not return the created file")
	}
	if got, ok := s.Open("absent"); ok || got != nil {
		t.Fatal("Open returned a file for an absent name")
	}
}

func TestCreateErrors(t *testing.T) {
	s := newStore(1)
	if _, err := s.Create("f", 100, DefaultPlacement{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("f", 100, DefaultPlacement{}); err == nil {
		t.Fatal("duplicate create did not error")
	}
	if _, err := s.Create("g", -1, DefaultPlacement{}); err == nil {
		t.Fatal("negative size did not error")
	}
}

func TestZeroByteFile(t *testing.T) {
	s := newStore(1)
	f, err := s.Create("empty", 0, DefaultPlacement{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 0 {
		t.Fatalf("empty file has %d blocks, want 0", len(f.Blocks))
	}
}

func TestDefaultPlacementFaultTolerance(t *testing.T) {
	// Every chunk must span exactly two racks: replicas {1 on rack A, 2 on
	// rack B} per the paper's §2 policy (as arranged by assignReplicas).
	s := newStore(7)
	cl := testCluster()
	f, err := s.Create("big", 50*DefaultBlockSize, DefaultPlacement{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Blocks {
		racks := map[int]int{}
		for _, m := range b.Replicas {
			racks[cl.RackOf(m)]++
		}
		if len(racks) != 2 {
			t.Fatalf("block %d spans %d racks, want 2", i, len(racks))
		}
		// No two replicas on the same machine.
		seen := map[int]bool{}
		for _, m := range b.Replicas {
			if seen[m] {
				t.Fatalf("block %d has duplicate replica machine %d", i, m)
			}
			seen[m] = true
		}
	}
}

func TestCorralPlacementTargetsRacks(t *testing.T) {
	s := newStore(3)
	cl := testCluster()
	target := []int{2, 5}
	f, err := s.Create("planned", 40*DefaultBlockSize, CorralPlacement{Racks: target})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Blocks {
		primary := cl.RackOf(b.Replicas[0])
		if primary != 2 && primary != 5 {
			t.Fatalf("block %d primary replica on rack %d, want one of %v", i, primary, target)
		}
		// Remaining replicas on a single different rack.
		other := cl.RackOf(b.Replicas[1])
		if other == primary {
			t.Fatalf("block %d: remote replicas on the primary rack", i)
		}
		if cl.RackOf(b.Replicas[2]) != other {
			t.Fatalf("block %d: third replica not co-racked with second", i)
		}
	}
}

func TestCorralPlacementEmptyRacksPanics(t *testing.T) {
	s := newStore(3)
	defer func() {
		if recover() == nil {
			t.Fatal("empty rack set did not panic")
		}
	}()
	s.Create("x", 100, CorralPlacement{})
}

func TestClosestReplica(t *testing.T) {
	s := newStore(1)
	b := &Block{Size: 1, Replicas: []int{5, 40, 100}}
	if got := s.ClosestReplica(b, 5); got != 5 {
		t.Fatalf("same-machine replica = %d, want 5", got)
	}
	// Machine 10 is in rack 0 with replica 5.
	if got := s.ClosestReplica(b, 10); got != 5 {
		t.Fatalf("same-rack replica = %d, want 5", got)
	}
	// Machine 200 (rack 6) shares no rack: falls back to first replica.
	if got := s.ClosestReplica(b, 200); got != 5 {
		t.Fatalf("remote fallback = %d, want 5", got)
	}
	// Machine 41 is in rack 1 with replica 40.
	if got := s.ClosestReplica(b, 41); got != 40 {
		t.Fatalf("same-rack preference = %d, want 40", got)
	}
}

func TestRackCoVImprovesWithLeastLoaded(t *testing.T) {
	// Corral placement (least-loaded remote rack) should yield lower CoV
	// than default random placement, mirroring §6.2 (0.004 vs 0.014).
	corral := newStore(11)
	def := newStore(11)
	for i := 0; i < 60; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		// Rotate target racks like a planner output would.
		corral.Create(name, 4*DefaultBlockSize, CorralPlacement{Racks: []int{i % 7}})
		def.Create(name, 4*DefaultBlockSize, DefaultPlacement{})
	}
	if corral.RackCoV() > def.RackCoV() {
		t.Fatalf("Corral CoV %g > default CoV %g", corral.RackCoV(), def.RackCoV())
	}
	if corral.RackCoV() > 0.05 {
		t.Fatalf("Corral CoV %g, want near 0", corral.RackCoV())
	}
}

func TestTotalBytesAccounting(t *testing.T) {
	s := newStore(1)
	s.Create("f", 2*DefaultBlockSize, DefaultPlacement{})
	want := 3 * 2 * DefaultBlockSize // 3 replicas
	if got := s.TotalBytes(); math.Abs(got-float64(want)) > 1 {
		t.Fatalf("TotalBytes = %g, want %g", got, float64(want))
	}
}

func TestFixedPlacement(t *testing.T) {
	s := newStore(1)
	f, err := s.Create("pinned", 100, FixedPlacement{Machines: []int{3, 33, 63}})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Blocks[0].Replicas
	if got[0] != 3 || got[1] != 33 || got[2] != 63 {
		t.Fatalf("replicas = %v, want [3 33 63]", got)
	}
}

func TestConfigurableReplication(t *testing.T) {
	s := newStore(1)
	f, _ := s.Create("r2", 100, DefaultPlacement{Replicas: 2})
	if len(f.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(f.Blocks[0].Replicas))
	}
}

func TestCorruptionRepairLifecycle(t *testing.T) {
	s := newStore(5)
	f, err := s.Create("data", 2*DefaultBlockSize, DefaultPlacement{})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]
	victim := b.Replicas[1]
	if !s.CorruptReplica(b, victim) {
		t.Fatal("CorruptReplica found nothing to corrupt")
	}
	if s.CorruptReplica(b, victim) {
		t.Fatal("second corruption of the same replica should find no clean copy")
	}
	if !s.ReplicaCorrupt(b, victim) {
		t.Fatal("ReplicaCorrupt did not report the corrupted replica")
	}
	if s.ReplicaCorrupt(b, b.Replicas[0]) {
		t.Fatal("clean replica reported corrupt")
	}
	if s.CorruptReplicas() != 1 {
		t.Fatalf("CorruptReplicas = %d, want 1", s.CorruptReplicas())
	}

	reps := s.PlanRepairs(b, nil)
	if len(reps) != 1 {
		t.Fatalf("planned %d repairs for one corrupt replica, want 1", len(reps))
	}
	r := reps[0]
	if b.Replicas[r.Slot] != victim {
		t.Fatalf("repair targets slot %d (machine %d), want the corrupt machine %d", r.Slot, b.Replicas[r.Slot], victim)
	}
	if s.ReplicaCorrupt(b, r.Src) || !s.Alive(r.Src) {
		t.Fatalf("repair source %d is not a live clean replica", r.Src)
	}
	for _, m := range b.Replicas {
		if r.Dst == m {
			t.Fatalf("repair destination %d already holds a replica (%v)", r.Dst, b.Replicas)
		}
	}
	s.CommitRepair(r)
	if s.CorruptReplicas() != 0 {
		t.Fatalf("CorruptReplicas = %d after repair, want 0", s.CorruptReplicas())
	}
	if s.ReplicaCorrupt(b, r.Dst) {
		t.Fatal("repaired replica still marked corrupt")
	}
	if err := s.AuditAccounting(); err != nil {
		t.Fatalf("accounting diverged after corruption repair: %v", err)
	}
}

func TestPlanRepairsNeedsCleanSource(t *testing.T) {
	s := newStore(6)
	f, err := s.Create("doomed", DefaultBlockSize, DefaultPlacement{})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]
	for _, m := range append([]int(nil), b.Replicas...) {
		s.CorruptReplica(b, m)
	}
	if reps := s.PlanRepairs(b, nil); reps != nil {
		t.Fatalf("planned repairs with no clean source: %v", reps)
	}
}

func TestAuditAccounting(t *testing.T) {
	s := newStore(9)
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		if _, err := s.Create(name, 3*DefaultBlockSize, DefaultPlacement{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AuditAccounting(); err != nil {
		t.Fatalf("clean store failed audit: %v", err)
	}
	// Tamper with the incremental accounting: the audit must notice.
	s.view.machineBytes[0] += 12345
	if err := s.AuditAccounting(); err == nil {
		t.Fatal("audit missed tampered machine accounting")
	}
}

// Property: any sequence of default-policy creates keeps replica invariants:
// 3 distinct machines, exactly 2 racks, accounting consistent.
func TestQuickPlacementInvariants(t *testing.T) {
	cl := testCluster()
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s := New(cl, 0, rand.New(rand.NewSource(seed)))
		expectTotal := 0.0
		for i, sz := range sizes {
			size := float64(sz) * 1e7
			name := "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
			file, err := s.Create(name, size, DefaultPlacement{})
			if err != nil {
				return false
			}
			for _, b := range file.Blocks {
				expectTotal += 3 * b.Size
				if len(b.Replicas) != 3 {
					return false
				}
				racks := map[int]bool{}
				machines := map[int]bool{}
				for _, m := range b.Replicas {
					if m < 0 || m >= cl.Config.Machines() {
						return false
					}
					racks[cl.RackOf(m)] = true
					if machines[m] {
						return false
					}
					machines[m] = true
				}
				if len(racks) != 2 {
					return false
				}
			}
		}
		return math.Abs(s.TotalBytes()-expectTotal) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
