package dfs

import (
	"math"
	"math/rand"
	"testing"

	"corral/internal/topology"
)

// smallStore: 3 racks x 3 machines for exact repair scenarios.
func smallStore() *Store {
	c := topology.MustNew(topology.Config{
		Racks:            3,
		MachinesPerRack:  3,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	return New(c, 0, rand.New(rand.NewSource(1)))
}

func rackSpread(s *Store, b *Block) map[int]int {
	spread := make(map[int]int)
	for _, m := range b.Replicas {
		spread[s.cluster.RackOf(m)]++
	}
	return spread
}

func TestPlanRepairsRestoresCrossRackCopy(t *testing.T) {
	s := smallStore()
	// 2 replicas on rack 0 (machines 0,1), 1 on rack 1 (machine 3).
	f, err := s.Create("f", 100, FixedPlacement{Machines: []int{0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]

	// Kill the lone cross-rack holder: survivors all on rack 0, so the
	// repair must target a different rack.
	s.MachineDown(3)
	reps := s.PlanRepairs(b, nil)
	if len(reps) != 1 {
		t.Fatalf("planned %d repairs, want 1", len(reps))
	}
	r := reps[0]
	if r.Slot != 2 || r.Block != b {
		t.Fatalf("repair targets slot %d of %p, want slot 2 of %p", r.Slot, r.Block, b)
	}
	if !s.Alive(r.Src) || !s.Alive(r.Dst) {
		t.Fatalf("repair uses dead machines: src %d dst %d", r.Src, r.Dst)
	}
	if got := s.cluster.RackOf(r.Dst); got == 0 {
		t.Fatalf("repair destination rack = %d, want a rack other than 0", got)
	}
	s.CommitRepair(r)
	spread := rackSpread(s, b)
	if len(spread) != 2 || spread[0] != 2 {
		t.Fatalf("post-repair spread = %v, want 2 on rack 0 + 1 elsewhere", spread)
	}
}

func TestPlanRepairsKeepsSpreadWhenMinorityRackDies(t *testing.T) {
	s := smallStore()
	f, err := s.Create("f", 100, FixedPlacement{Machines: []int{0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]
	// Kill one of the two rack-0 holders: survivors span racks 0 and 1,
	// so the new copy joins the rack with fewer replicas... both have one;
	// lower rack index (0) wins, restoring the 2+1 split.
	s.MachineDown(0)
	reps := s.PlanRepairs(b, nil)
	if len(reps) != 1 {
		t.Fatalf("planned %d repairs, want 1", len(reps))
	}
	s.CommitRepair(reps[0])
	spread := rackSpread(s, b)
	if len(spread) != 2 {
		t.Fatalf("post-repair spread = %v, want exactly 2 racks", spread)
	}
	for _, m := range b.Replicas {
		if !s.Alive(m) {
			t.Fatalf("replica still on dead machine %d: %v", m, b.Replicas)
		}
	}
}

func TestPlanRepairsSkipsUnreadableAndBusySlots(t *testing.T) {
	s := smallStore()
	f, err := s.Create("f", 100, FixedPlacement{Machines: []int{0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]
	// All holders dead: nothing to copy from.
	s.MachineDown(0)
	s.MachineDown(1)
	s.MachineDown(3)
	if reps := s.PlanRepairs(b, nil); len(reps) != 0 {
		t.Fatalf("planned %d repairs for an unreadable block, want 0", len(reps))
	}
	// One holder back: two repairs needed, but slot 1 already in flight.
	s.MachineUp(0)
	busy := func(slot int) (int, bool) {
		if slot == 1 {
			return 6, true // in-flight repair headed to rack 2
		}
		return 0, false
	}
	reps := s.PlanRepairs(b, busy)
	if len(reps) != 1 {
		t.Fatalf("planned %d repairs with one slot busy, want 1", len(reps))
	}
	if reps[0].Slot != 2 {
		t.Fatalf("repair slot = %d, want 2 (slot 1 is busy)", reps[0].Slot)
	}
	if reps[0].Dst == 6 {
		t.Fatal("repair destination collides with the in-flight repair's target")
	}
}

func TestBlocksOnFollowsRepairs(t *testing.T) {
	s := smallStore()
	f, err := s.Create("f", 100, FixedPlacement{Machines: []int{0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b := &f.Blocks[0]
	if got := s.BlocksOn(3); len(got) != 1 || got[0] != b {
		t.Fatalf("BlocksOn(3) = %v, want [block]", got)
	}
	s.MachineDown(3)
	reps := s.PlanRepairs(b, nil)
	if len(reps) != 1 {
		t.Fatalf("planned %d repairs, want 1", len(reps))
	}
	before := s.TotalBytes()
	s.CommitRepair(reps[0])
	if got := s.TotalBytes(); math.Abs(got-before) > 1e-6 {
		t.Fatalf("TotalBytes changed across repair: %g -> %g", before, got)
	}
	if got := s.BlocksOn(3); len(got) != 0 {
		t.Fatalf("BlocksOn(3) after repair = %v, want empty", got)
	}
	if got := s.BlocksOn(reps[0].Dst); len(got) != 1 || got[0] != b {
		t.Fatalf("BlocksOn(dst=%d) = %v, want [block]", reps[0].Dst, got)
	}
	if s.View().MachineBytes(3) != 0 {
		t.Fatalf("machine 3 still accounts %g bytes after repair", s.View().MachineBytes(3))
	}
}

func TestLeastLoadedMachineInRackSkipsDead(t *testing.T) {
	s := smallStore()
	s.MachineDown(0) // machine 0 is the emptiest in rack 0 but dead
	got := s.View().LeastLoadedMachineInRack(0, nil)
	if got == 0 {
		t.Fatal("least-loaded pick returned a dead machine with live ones available")
	}
	// Whole rack dead: fallback still returns a machine (upload-time
	// placement must not dangle).
	s.MachineDown(1)
	s.MachineDown(2)
	if got := s.View().LeastLoadedMachineInRack(0, nil); got < 0 || got > 2 {
		t.Fatalf("fallback pick = %d, want a machine in rack 0", got)
	}
}
