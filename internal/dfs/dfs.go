// Package dfs models the distributed file system (HDFS in the paper) that
// stores job input and output data as replicated blocks.
//
// The paper's fault-tolerance policy (§2): data is divided into chunks,
// each replicated three times — two replicas on one rack, the third on a
// different rack, every chunk placed independently.
//
// Corral's modification (§3.1, §5): for planned jobs, one replica of each
// chunk is placed on a randomly chosen rack from the job's assigned rack
// set R_j; the remaining replicas go to another rack chosen from the rest
// of the cluster. §4.5 additionally supplements the plan by "greedily
// placing the last two data replicas on the least loaded rack".
//
// Determinism obligations: block placement is a pure function of
// (inputs, seed) — all "random" choices draw from the caller-injected
// seeded *rand.Rand, and ties (e.g. least-loaded rack) break by index.
package dfs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"corral/internal/topology"
	"corral/internal/trace"
)

// DefaultBlockSize is the chunk size used when a Config leaves it zero.
const DefaultBlockSize = 256 * 1 << 20 // 256 MB

// Block is one replicated chunk of a file.
type Block struct {
	Size     float64
	Replicas []int // machine indices, first is the "primary" replica
}

// File is a named collection of blocks.
type File struct {
	Name   string
	Size   float64
	Blocks []Block
}

// Placement decides where one block's replicas live.
type Placement interface {
	// Place returns the replica machines for one block. It may consult the
	// store's load accounting through the provided view.
	Place(view *View, rng *rand.Rand) []int
	Name() string
}

// View gives placement policies read access to cluster shape and current
// load.
type View struct {
	Cluster      *topology.Cluster
	machineBytes []float64
	rackBytes    []float64
	alive        []bool
}

// MachineBytes returns bytes currently stored on machine m.
func (v *View) MachineBytes(m int) float64 { return v.machineBytes[m] }

// RackBytes returns bytes currently stored on rack r.
func (v *View) RackBytes(r int) float64 { return v.rackBytes[r] }

// Alive reports whether machine m is up (see Store.MachineDown/MachineUp).
func (v *View) Alive(m int) bool { return v.alive[m] }

// LeastLoadedMachineInRack returns the live machine in rack r with the
// fewest stored bytes, excluding machines in the exclude set (pass nil for
// none). If every live machine is excluded — or the whole rack is dead —
// it falls back to load order over dead machines so placement at upload
// time never dangles; repair planning re-checks liveness itself.
func (v *View) LeastLoadedMachineInRack(r int, exclude map[int]bool) int {
	lo, hi := v.Cluster.MachinesInRack(r)
	best, bestBytes := -1, math.Inf(1)
	for m := lo; m < hi; m++ {
		if exclude[m] || !v.alive[m] {
			continue
		}
		if v.machineBytes[m] < bestBytes {
			best, bestBytes = m, v.machineBytes[m]
		}
	}
	if best >= 0 {
		return best
	}
	for m := lo; m < hi; m++ {
		if exclude[m] {
			continue
		}
		if v.machineBytes[m] < bestBytes {
			best, bestBytes = m, v.machineBytes[m]
		}
	}
	return best
}

// LeastLoadedRack returns the rack with the fewest stored bytes, excluding
// racks in the exclude set.
func (v *View) LeastLoadedRack(exclude map[int]bool) int {
	best, bestBytes := -1, math.Inf(1)
	for r := 0; r < v.Cluster.Config.Racks; r++ {
		if exclude[r] {
			continue
		}
		if v.rackBytes[r] < bestBytes {
			best, bestBytes = r, v.rackBytes[r]
		}
	}
	return best
}

// Store is the file system: a set of files plus per-machine load
// accounting.
type Store struct {
	cluster   *topology.Cluster
	blockSize float64
	rng       *rand.Rand
	files     map[string]*File
	view      View

	// blocksOn indexes, per machine, the blocks that (may) hold a replica
	// there. Entries are appended at create/repair time and lazily dropped
	// by BlocksOn once a repair moves the replica away.
	blocksOn [][]*Block

	// corrupt marks replica slots whose on-disk data is bad (fault
	// injection). A corrupt replica still occupies space and its machine
	// may be live, but reads checksum-detect it and fail over; repair
	// re-creates the slot from a clean holder and clears the mark.
	corrupt map[replicaSlot]bool

	// tr receives file-creation and corruption events; now supplies the
	// simulation clock (the store has no simulator reference of its own).
	// Both are nil until AttachTracer.
	tr  *trace.Tracer
	now func() float64
}

// replicaSlot names one replica of one block (Replicas[Slot]).
type replicaSlot struct {
	blk  *Block
	slot int
}

// New creates an empty store. blockSize <= 0 selects DefaultBlockSize.
// The rng drives replica placement; callers seed it for determinism.
func New(cluster *topology.Cluster, blockSize float64, rng *rand.Rand) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Store{
		cluster:   cluster,
		blockSize: blockSize,
		rng:       rng,
		files:     make(map[string]*File),
		corrupt:   make(map[replicaSlot]bool),
	}
	m := cluster.Config.Machines()
	s.view = View{
		Cluster:      cluster,
		machineBytes: make([]float64, m),
		rackBytes:    make([]float64, cluster.Config.Racks),
		alive:        make([]bool, m),
	}
	for i := range s.view.alive {
		s.view.alive[i] = true
	}
	s.blocksOn = make([][]*Block, m)
	return s
}

// MachineDown marks machine m dead: placement and repair target selection
// skip it, and its replicas count as lost until MachineUp.
func (s *Store) MachineDown(m int) { s.view.alive[m] = false }

// MachineUp marks machine m live again. Replicas still recorded on m (not
// yet repaired away) become readable again — the model treats a recovered
// machine's disk as intact.
func (s *Store) MachineUp(m int) { s.view.alive[m] = true }

// Alive reports whether machine m is up.
func (s *Store) Alive(m int) bool { return s.view.alive[m] }

// AttachTracer points the store at a run's tracer; now supplies simulation
// time for its emissions. A nil tracer detaches.
func (s *Store) AttachTracer(tr *trace.Tracer, now func() float64) {
	s.tr = tr
	s.now = now
}

func (s *Store) traceNow() float64 {
	if s.now == nil {
		return 0
	}
	return s.now()
}

// CorruptReplica marks one of block b's replicas on machine m as corrupt
// (silent data corruption; detected by checksum on read). It reports
// whether a clean replica on m existed to corrupt.
func (s *Store) CorruptReplica(b *Block, m int) bool {
	for slot, r := range b.Replicas {
		if r == m && !s.corrupt[replicaSlot{b, slot}] {
			s.corrupt[replicaSlot{b, slot}] = true
			s.tr.DFSCorrupt(s.traceNow(), m, b.Size)
			return true
		}
	}
	return false
}

// ReplicaCorrupt reports whether block b's replica on machine m is
// corrupt. Readers use it to checksum-verify a candidate source and fail
// over to the next-closest clean replica.
func (s *Store) ReplicaCorrupt(b *Block, m int) bool {
	for slot, r := range b.Replicas {
		if r == m && s.corrupt[replicaSlot{b, slot}] {
			return true
		}
	}
	return false
}

// CorruptReplicas returns the number of currently corrupt replica slots.
func (s *Store) CorruptReplicas() int { return len(s.corrupt) }

// BlockSize returns the store's chunk size in bytes.
func (s *Store) BlockSize() float64 { return s.blockSize }

// View exposes load accounting (read-only by convention).
func (s *Store) View() *View { return &s.view }

// Create writes a file of the given size, placing each block independently
// with the policy. It returns an error if the name already exists.
func (s *Store) Create(name string, size float64, policy Placement) (*File, error) {
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("dfs: negative file size %g", size)
	}
	f := &File{Name: name, Size: size}
	nBlocks := int(math.Ceil(size / s.blockSize))
	if size > 0 && nBlocks == 0 {
		nBlocks = 1
	}
	rest := size
	for i := 0; i < nBlocks; i++ {
		b := Block{Size: math.Min(s.blockSize, rest)}
		rest -= b.Size
		b.Replicas = policy.Place(&s.view, s.rng)
		if len(b.Replicas) == 0 {
			return nil, fmt.Errorf("dfs: policy %s returned no replicas", policy.Name())
		}
		for _, m := range b.Replicas {
			s.view.machineBytes[m] += b.Size
			s.view.rackBytes[s.cluster.RackOf(m)] += b.Size
		}
		f.Blocks = append(f.Blocks, b)
	}
	// Index replicas only after the append loop: &f.Blocks[i] is stable
	// from here on (callers and the repair daemon hold these pointers).
	for i := range f.Blocks {
		for _, m := range f.Blocks[i].Replicas {
			s.blocksOn[m] = append(s.blocksOn[m], &f.Blocks[i])
		}
	}
	s.files[name] = f
	s.tr.DFSCreate(s.traceNow(), name, size)
	return f, nil
}

// Open returns the named file; ok is false when no such file exists.
// Callers must check ok — an absent file is a caller bug (bad name or a
// read before upload) and has to fail loudly at the call site instead of
// surfacing later as a nil dereference mid-simulation.
func (s *Store) Open(name string) (f *File, ok bool) {
	f, ok = s.files[name]
	return f, ok
}

// ClosestReplica returns the replica of block b that is cheapest for a
// reader on machine m: same machine, then same rack, then any (first)
// remote replica.
func (s *Store) ClosestReplica(b *Block, m int) int {
	for _, r := range b.Replicas {
		if r == m {
			return r
		}
	}
	for _, r := range b.Replicas {
		if s.cluster.SameRack(r, m) {
			return r
		}
	}
	return b.Replicas[0]
}

// RackCoV returns the coefficient of variation of bytes stored per rack —
// the paper's data-balance metric (§6.2: Corral ≤ 0.004 vs HDFS ≤ 0.014).
func (s *Store) RackCoV() float64 {
	n := float64(len(s.view.rackBytes))
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, b := range s.view.rackBytes {
		mean += b
	}
	mean /= n
	if mean == 0 {
		return 0
	}
	variance := 0.0
	for _, b := range s.view.rackBytes {
		d := b - mean
		variance += d * d
	}
	variance /= n
	return math.Sqrt(variance) / mean
}

// TotalBytes returns the total stored bytes across all replicas.
func (s *Store) TotalBytes() float64 {
	t := 0.0
	for _, b := range s.view.machineBytes {
		t += b
	}
	return t
}

// --- re-replication ---------------------------------------------------------

// Repair is one planned re-replication copy: read the block from Src and
// re-create the replica in slot Slot (currently recorded on a dead machine)
// on Dst. The caller transfers Block.Size bytes over the network and then
// calls CommitRepair.
type Repair struct {
	Block *Block
	Slot  int // index into Block.Replicas being replaced
	Src   int // live machine to copy from
	Dst   int // live machine to copy to
}

// BlocksOn returns the distinct blocks holding a replica on machine m, in
// creation/repair order. Stale index entries (replicas since repaired away)
// are dropped as a side effect.
func (s *Store) BlocksOn(m int) []*Block {
	kept := s.blocksOn[m][:0]
	var out []*Block
	seen := make(map[*Block]bool)
	for _, b := range s.blocksOn[m] {
		holds := false
		for _, r := range b.Replicas {
			if r == m {
				holds = true
				break
			}
		}
		if !holds {
			continue
		}
		kept = append(kept, b)
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	s.blocksOn[m] = kept
	return out
}

// PlanRepairs plans re-replication for b's replicas that are lost (their
// machine is dead) or corrupt (checksum-detected bad data on a live
// machine). busy, if non-nil, reports slots with an in-flight repair and
// the destination it targets, so double-repair is avoided and in-flight
// destinations count toward the rack spread. Targets restore the 2+1
// arrangement: while the surviving replicas sit on a single rack, the copy
// goes to the least-loaded other rack; otherwise it goes to the surviving
// rack holding the fewest replicas (ties toward the lower rack index).
// Copies always read from a live clean replica; if none exists, repair is
// skipped — the block is unreadable until a holder recovers.
func (s *Store) PlanRepairs(b *Block, busy func(slot int) (dst int, ok bool)) []Repair {
	var holders []int // live clean holders plus in-flight repair destinations
	var avoid []int   // machines unusable as targets: all replicas + in-flight
	var srcs []int    // live clean holders only (valid copy sources)
	for slot, m := range b.Replicas {
		avoid = append(avoid, m)
		if s.view.alive[m] && !s.corrupt[replicaSlot{b, slot}] {
			holders = append(holders, m)
			srcs = append(srcs, m)
		} else if busy != nil {
			if dst, ok := busy(slot); ok {
				holders = append(holders, dst)
				avoid = append(avoid, dst)
			}
		}
	}
	if len(srcs) == 0 {
		return nil
	}
	src := srcs[0]
	var out []Repair
	for slot, m := range b.Replicas {
		if s.view.alive[m] && !s.corrupt[replicaSlot{b, slot}] {
			continue
		}
		if busy != nil {
			if _, ok := busy(slot); ok {
				continue
			}
		}
		dst := s.repairTarget(holders, avoid)
		if dst < 0 {
			continue
		}
		out = append(out, Repair{Block: b, Slot: slot, Src: src, Dst: dst})
		holders = append(holders, dst)
		avoid = append(avoid, dst)
	}
	return out
}

// repairTarget picks the machine for one re-created replica. holders
// (live clean replicas and in-flight destinations) drive the rack-spread
// choice; avoid additionally excludes machines already carrying any
// replica of the block — including corrupt ones, so the re-created copy
// never lands next to the bad data it replaces.
func (s *Store) repairTarget(holders, avoid []int) int {
	racks := s.cluster.Config.Racks
	cnt := make([]int, racks)
	exclude := make(map[int]bool, len(avoid))
	for _, m := range holders {
		cnt[s.cluster.RackOf(m)]++
	}
	for _, m := range avoid {
		exclude[m] = true
	}
	holderRacks, firstRack := 0, -1
	for r := 0; r < racks; r++ {
		if cnt[r] > 0 {
			holderRacks++
			if firstRack < 0 {
				firstRack = r
			}
		}
	}
	target := -1
	if holderRacks == 1 && racks > 1 {
		// All holders on one rack: re-establish the cross-rack copy on the
		// least-loaded live rack elsewhere.
		target = s.leastLoadedLiveRack(firstRack, exclude)
	}
	if target < 0 {
		// Spread already spans racks (or no other rack is usable): add to
		// the holder rack with the fewest replicas, lower index on ties.
		for r := 0; r < racks; r++ {
			if cnt[r] == 0 || !s.rackUsable(r, exclude) {
				continue
			}
			if target < 0 || cnt[r] < cnt[target] {
				target = r
			}
		}
	}
	if target < 0 {
		// Holder racks are full of holders/dead machines: any usable rack.
		target = s.leastLoadedLiveRack(-1, exclude)
	}
	if target < 0 {
		return -1
	}
	m := s.view.LeastLoadedMachineInRack(target, exclude)
	if m < 0 || !s.view.alive[m] {
		return -1
	}
	return m
}

// rackUsable reports whether rack r has a live machine outside exclude.
func (s *Store) rackUsable(r int, exclude map[int]bool) bool {
	lo, hi := s.cluster.MachinesInRack(r)
	for m := lo; m < hi; m++ {
		if s.view.alive[m] && !exclude[m] {
			return true
		}
	}
	return false
}

// leastLoadedLiveRack returns the rack (≠ skip) with the fewest stored
// bytes among racks holding a live non-excluded machine, or -1.
func (s *Store) leastLoadedLiveRack(skip int, exclude map[int]bool) int {
	best, bestBytes := -1, math.Inf(1)
	for r := 0; r < s.cluster.Config.Racks; r++ {
		if r == skip || !s.rackUsable(r, exclude) {
			continue
		}
		if s.view.rackBytes[r] < bestBytes {
			best, bestBytes = r, s.view.rackBytes[r]
		}
	}
	return best
}

// CommitRepair installs a finished repair: the slot's replica moves from
// the lost or corrupt holder to Dst, with load accounting following the
// bytes. The slot's corruption mark, if any, is cleared — the new copy
// came from a clean source.
func (s *Store) CommitRepair(r Repair) {
	old := r.Block.Replicas[r.Slot]
	sz := r.Block.Size
	s.view.machineBytes[old] -= sz
	s.view.rackBytes[s.cluster.RackOf(old)] -= sz
	r.Block.Replicas[r.Slot] = r.Dst
	s.view.machineBytes[r.Dst] += sz
	s.view.rackBytes[s.cluster.RackOf(r.Dst)] += sz
	s.blocksOn[r.Dst] = append(s.blocksOn[r.Dst], r.Block)
	delete(s.corrupt, replicaSlot{r.Block, r.Slot})
}

// AuditAccounting recomputes the per-machine and per-rack byte accounting
// from the file set and compares it with the incrementally maintained
// view — the byte-conservation invariant: creates and repairs move
// accounting around but never create or destroy it. Returns nil when they
// agree within epsilon, an error naming the first divergence otherwise.
func (s *Store) AuditAccounting() error {
	machines := make([]float64, len(s.view.machineBytes))
	// Collect-and-sort: files is a map; audit order must be deterministic.
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := s.files[name]
		for i := range f.Blocks {
			b := &f.Blocks[i]
			if len(b.Replicas) == 0 {
				return fmt.Errorf("dfs audit: file %q block %d has no replicas", name, i)
			}
			for _, m := range b.Replicas {
				if m < 0 || m >= len(machines) {
					return fmt.Errorf("dfs audit: file %q block %d replica on machine %d out of range", name, i, m)
				}
				machines[m] += b.Size
			}
		}
	}
	const eps = 1e-3 // bytes; block sizes are large, float error is tiny
	racks := make([]float64, len(s.view.rackBytes))
	for m, got := range machines {
		if diff := got - s.view.machineBytes[m]; diff > eps || diff < -eps {
			return fmt.Errorf("dfs audit: machine %d accounts %.1f bytes, files hold %.1f", m, s.view.machineBytes[m], got)
		}
		racks[s.cluster.RackOf(m)] += got
	}
	for r, got := range racks {
		if diff := got - s.view.rackBytes[r]; diff > eps || diff < -eps {
			return fmt.Errorf("dfs audit: rack %d accounts %.1f bytes, files hold %.1f", r, s.view.rackBytes[r], got)
		}
	}
	return nil
}
