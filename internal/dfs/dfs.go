// Package dfs models the distributed file system (HDFS in the paper) that
// stores job input and output data as replicated blocks.
//
// The paper's fault-tolerance policy (§2): data is divided into chunks,
// each replicated three times — two replicas on one rack, the third on a
// different rack, every chunk placed independently.
//
// Corral's modification (§3.1, §5): for planned jobs, one replica of each
// chunk is placed on a randomly chosen rack from the job's assigned rack
// set R_j; the remaining replicas go to another rack chosen from the rest
// of the cluster. §4.5 additionally supplements the plan by "greedily
// placing the last two data replicas on the least loaded rack".
//
// Determinism obligations: block placement is a pure function of
// (inputs, seed) — all "random" choices draw from the caller-injected
// seeded *rand.Rand, and ties (e.g. least-loaded rack) break by index.
package dfs

import (
	"fmt"
	"math"
	"math/rand"

	"corral/internal/topology"
)

// DefaultBlockSize is the chunk size used when a Config leaves it zero.
const DefaultBlockSize = 256 * 1 << 20 // 256 MB

// Block is one replicated chunk of a file.
type Block struct {
	Size     float64
	Replicas []int // machine indices, first is the "primary" replica
}

// File is a named collection of blocks.
type File struct {
	Name   string
	Size   float64
	Blocks []Block
}

// Placement decides where one block's replicas live.
type Placement interface {
	// Place returns the replica machines for one block. It may consult the
	// store's load accounting through the provided view.
	Place(view *View, rng *rand.Rand) []int
	Name() string
}

// View gives placement policies read access to cluster shape and current
// load.
type View struct {
	Cluster      *topology.Cluster
	machineBytes []float64
	rackBytes    []float64
}

// MachineBytes returns bytes currently stored on machine m.
func (v *View) MachineBytes(m int) float64 { return v.machineBytes[m] }

// RackBytes returns bytes currently stored on rack r.
func (v *View) RackBytes(r int) float64 { return v.rackBytes[r] }

// LeastLoadedMachineInRack returns the machine in rack r with the fewest
// stored bytes, excluding machines in the exclude set (pass nil for none).
func (v *View) LeastLoadedMachineInRack(r int, exclude map[int]bool) int {
	lo, hi := v.Cluster.MachinesInRack(r)
	best, bestBytes := -1, math.Inf(1)
	for m := lo; m < hi; m++ {
		if exclude[m] {
			continue
		}
		if v.machineBytes[m] < bestBytes {
			best, bestBytes = m, v.machineBytes[m]
		}
	}
	return best
}

// LeastLoadedRack returns the rack with the fewest stored bytes, excluding
// racks in the exclude set.
func (v *View) LeastLoadedRack(exclude map[int]bool) int {
	best, bestBytes := -1, math.Inf(1)
	for r := 0; r < v.Cluster.Config.Racks; r++ {
		if exclude[r] {
			continue
		}
		if v.rackBytes[r] < bestBytes {
			best, bestBytes = r, v.rackBytes[r]
		}
	}
	return best
}

// Store is the file system: a set of files plus per-machine load
// accounting.
type Store struct {
	cluster   *topology.Cluster
	blockSize float64
	rng       *rand.Rand
	files     map[string]*File
	view      View
}

// New creates an empty store. blockSize <= 0 selects DefaultBlockSize.
// The rng drives replica placement; callers seed it for determinism.
func New(cluster *topology.Cluster, blockSize float64, rng *rand.Rand) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Store{
		cluster:   cluster,
		blockSize: blockSize,
		rng:       rng,
		files:     make(map[string]*File),
	}
	s.view = View{
		Cluster:      cluster,
		machineBytes: make([]float64, cluster.Config.Machines()),
		rackBytes:    make([]float64, cluster.Config.Racks),
	}
	return s
}

// BlockSize returns the store's chunk size in bytes.
func (s *Store) BlockSize() float64 { return s.blockSize }

// View exposes load accounting (read-only by convention).
func (s *Store) View() *View { return &s.view }

// Create writes a file of the given size, placing each block independently
// with the policy. It returns an error if the name already exists.
func (s *Store) Create(name string, size float64, policy Placement) (*File, error) {
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("dfs: negative file size %g", size)
	}
	f := &File{Name: name, Size: size}
	nBlocks := int(math.Ceil(size / s.blockSize))
	if size > 0 && nBlocks == 0 {
		nBlocks = 1
	}
	rest := size
	for i := 0; i < nBlocks; i++ {
		b := Block{Size: math.Min(s.blockSize, rest)}
		rest -= b.Size
		b.Replicas = policy.Place(&s.view, s.rng)
		if len(b.Replicas) == 0 {
			return nil, fmt.Errorf("dfs: policy %s returned no replicas", policy.Name())
		}
		for _, m := range b.Replicas {
			s.view.machineBytes[m] += b.Size
			s.view.rackBytes[s.cluster.RackOf(m)] += b.Size
		}
		f.Blocks = append(f.Blocks, b)
	}
	s.files[name] = f
	return f, nil
}

// Open returns the named file, or nil if absent.
func (s *Store) Open(name string) *File { return s.files[name] }

// ClosestReplica returns the replica of block b that is cheapest for a
// reader on machine m: same machine, then same rack, then any (first)
// remote replica.
func (s *Store) ClosestReplica(b *Block, m int) int {
	for _, r := range b.Replicas {
		if r == m {
			return r
		}
	}
	for _, r := range b.Replicas {
		if s.cluster.SameRack(r, m) {
			return r
		}
	}
	return b.Replicas[0]
}

// RackCoV returns the coefficient of variation of bytes stored per rack —
// the paper's data-balance metric (§6.2: Corral ≤ 0.004 vs HDFS ≤ 0.014).
func (s *Store) RackCoV() float64 {
	n := float64(len(s.view.rackBytes))
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, b := range s.view.rackBytes {
		mean += b
	}
	mean /= n
	if mean == 0 {
		return 0
	}
	variance := 0.0
	for _, b := range s.view.rackBytes {
		d := b - mean
		variance += d * d
	}
	variance /= n
	return math.Sqrt(variance) / mean
}

// TotalBytes returns the total stored bytes across all replicas.
func (s *Store) TotalBytes() float64 {
	t := 0.0
	for _, b := range s.view.machineBytes {
		t += b
	}
	return t
}
