package dfs

import "math/rand"

// DefaultPlacement is the HDFS-like policy from §2: for each chunk, two
// replicas on one (randomly chosen) rack and the third on a different
// rack, each chunk placed independently and uniformly at random — both the
// racks and the machines within them. The resulting spread is what gives
// HDFS its per-rack CoV of ~0.014 in §6.2.
type DefaultPlacement struct {
	Replicas int // 0 means 3
}

// Name implements Placement.
func (DefaultPlacement) Name() string { return "hdfs-default" }

// Place implements Placement.
func (p DefaultPlacement) Place(view *View, rng *rand.Rand) []int {
	n := p.Replicas
	if n == 0 {
		n = 3
	}
	racks := view.Cluster.Config.Racks
	primaryRack := rng.Intn(racks)
	var remoteRack int
	if racks == 1 {
		remoteRack = primaryRack
	} else {
		remoteRack = rng.Intn(racks - 1)
		if remoteRack >= primaryRack {
			remoteRack++
		}
	}
	replicas := make([]int, 0, n)
	used := make(map[int]bool, n)
	pick := func(rack int) {
		lo, hi := view.Cluster.MachinesInRack(rack)
		for tries := 0; ; tries++ {
			m := lo + rng.Intn(hi-lo)
			if !used[m] || tries > 8 || hi-lo <= len(replicas) {
				used[m] = true
				replicas = append(replicas, m)
				return
			}
		}
	}
	pick(primaryRack)
	for i := 1; i < n; i++ {
		pick(remoteRack)
	}
	return replicas
}

// CorralPlacement implements the joint data/compute placement policy
// (§3.1): one replica of each chunk goes to a randomly chosen rack from
// the job's assigned rack set R_j; the remaining replicas go to another
// rack. Per §4.5 the supplementary heuristic places the last replicas on
// the least-loaded rack, which together with the planner's imbalance
// penalty keeps input data balanced across the cluster.
type CorralPlacement struct {
	Racks    []int // the job's assigned racks R_j; must be non-empty
	Replicas int   // 0 means 3
}

// Name implements Placement.
func (CorralPlacement) Name() string { return "corral" }

// Place implements Placement.
func (p CorralPlacement) Place(view *View, rng *rand.Rand) []int {
	n := p.Replicas
	if n == 0 {
		n = 3
	}
	if len(p.Racks) == 0 {
		panic("dfs: CorralPlacement with empty rack set")
	}
	primaryRack := p.Racks[rng.Intn(len(p.Racks))]
	var remoteRack int
	if view.Cluster.Config.Racks == 1 {
		remoteRack = primaryRack
	} else {
		remoteRack = view.LeastLoadedRack(map[int]bool{primaryRack: true})
	}
	return assignReplicas(view, n, primaryRack, remoteRack)
}

// assignReplicas puts the first replica on the primary rack and the
// remaining n-1 on the remote rack (the 2-plus-1 pattern with the single
// copy on the primary rack, which is the Corral arrangement; for the
// default policy the labels are symmetric so the same split reproduces
// "two on one rack, one on another" with the roles swapped).
func assignReplicas(view *View, n, primaryRack, remoteRack int) []int {
	replicas := make([]int, 0, n)
	used := make(map[int]bool, n)
	pick := func(rack int) {
		m := view.LeastLoadedMachineInRack(rack, used)
		if m < 0 {
			// Rack exhausted (more replicas than machines); reuse allowed.
			m = view.LeastLoadedMachineInRack(rack, nil)
		}
		used[m] = true
		replicas = append(replicas, m)
	}
	pick(primaryRack)
	for i := 1; i < n; i++ {
		pick(remoteRack)
	}
	return replicas
}

// FixedPlacement pins every replica to an explicit machine list; used in
// tests to construct exact scenarios.
type FixedPlacement struct{ Machines []int }

// Name implements Placement.
func (FixedPlacement) Name() string { return "fixed" }

// Place implements Placement.
func (p FixedPlacement) Place(view *View, rng *rand.Rand) []int {
	out := make([]int, len(p.Machines))
	copy(out, p.Machines)
	return out
}
