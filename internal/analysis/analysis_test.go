package analysis

import (
	"strings"
	"testing"
)

func TestMalformedSuppressionsAreReported(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

//corralvet:ok
func a() {}

//corralvet:ok maporder
func b() {}

//corralvet:ok nosuchcheck because reasons
func c() {}
`)
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) != 3 {
		t.Fatalf("want 3 malformed-suppression diagnostics, got %d: %v", len(diags), diags)
	}
	wantParts := []string{"malformed suppression", "needs a reason", "unknown check"}
	for i, part := range wantParts {
		if diags[i].Check != "corralvet" {
			t.Errorf("diag %d: check = %q, want corralvet", i, diags[i].Check)
		}
		if !strings.Contains(diags[i].Message, part) {
			t.Errorf("diag %d: message %q does not mention %q", i, diags[i].Message, part)
		}
	}
}

func TestSuppressionOnlySilencesNamedCheck(t *testing.T) {
	// A wallclock suppression must not hide the seedrand finding on the
	// same line.
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

import (
	"math/rand"
	"time"
)

func f() int {
	//corralvet:ok wallclock measuring host time on purpose
	_ = time.Now()
	return rand.Intn(6)
}
`)
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) != 1 || diags[0].Check != "seedrand" {
		t.Fatalf("want exactly one seedrand diagnostic, got %v", diags)
	}
}

func TestDiagnosticsAreOrdered(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

import (
	"math/rand"
	"time"
)

func late() int { return rand.Intn(6) }

func early() { _ = time.Now() }
`)
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Errorf("diagnostics out of order: %v", diags)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("maporder, floateq")
	if err != nil || len(got) != 2 || got[0].Name != "maporder" || got[1].Name != "floateq" {
		t.Fatalf("ByName: got %v, err %v", got, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus): want error")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\"): got %d analyzers, err %v", len(all), err)
	}
}

func TestDiagnosticString(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

import "math/rand"

func f() int { return rand.Intn(6) }
`)
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
	s := diags[0].String()
	if !strings.Contains(s, "[seedrand]") || !strings.Contains(s, ":5:") {
		t.Errorf("Diagnostic.String() = %q, want file:5:col: [seedrand] ...", s)
	}
}
