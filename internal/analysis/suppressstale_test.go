package analysis

import (
	"go/token"
	"strings"
	"testing"
	"time"
)

// suppressstale needs the framework's pre-suppression view, so these
// tests drive RunAnalyzers with multi-analyzer selections directly
// instead of the single-analyzer runFixture harness.

const staleFixture = `package fixture

import "time"

// live: the directive absorbs a real wallclock finding on its own line.
func live() time.Time {
	return time.Now() //corralvet:ok wallclock fixture measures host time on purpose
}

// lineAbove: coverage from the line above is also a use.
func lineAbove() time.Time {
	//corralvet:ok wallclock fixture measures host time on purpose
	return time.Now()
}

func stale() int {
	x := 1 //corralvet:ok wallclock nothing here fires wallclock
	return x
}

func otherCheck() int {
	y := 2 //corralvet:ok floateq belongs to a check outside this run
	return y
}
`

func TestSuppressStaleReportsOrphanedDirectives(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", staleFixture)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{WallClock, SuppressStale})
	if len(diags) != 1 {
		t.Fatalf("want exactly the one stale wallclock directive, got %v", diags)
	}
	d := diags[0]
	if d.Check != "suppressstale" {
		t.Errorf("check = %q, want suppressstale", d.Check)
	}
	if !strings.Contains(d.Message, "no wallclock diagnostic") || !strings.Contains(d.Message, "stale suppression") {
		t.Errorf("message should identify the orphaned wallclock directive: %q", d.Message)
	}
	if d.Fix == "" {
		t.Errorf("stale-suppression finding should carry a removal fix: %+v", d)
	}
	wantLine := fixtureLine(t, staleFixture, "nothing here fires wallclock")
	if d.Pos.Line != wantLine {
		t.Errorf("finding at line %d, want the directive line %d", d.Pos.Line, wantLine)
	}
}

// A directive naming a check that is not part of the current selection
// must not be condemned: `-checks maporder` cannot know whether a
// floateq annotation still earns its keep.
func TestSuppressStaleOnlyAuditsChecksThatRan(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

func f() int {
	y := 2 //corralvet:ok floateq belongs to a check outside this run
	return y
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{WallClock, SuppressStale})
	if len(diags) != 0 {
		t.Fatalf("floateq did not run, so its directive must not be audited: %v", diags)
	}

	// With floateq in the run the same directive is provably stale.
	diags = RunAnalyzers([]*Package{pkg}, []*Analyzer{FloatEq, SuppressStale})
	if len(diags) != 1 || diags[0].Check != "suppressstale" {
		t.Fatalf("floateq ran and found nothing, want the directive reported stale: %v", diags)
	}
}

// Without suppressstale in the selection the audit must stay off
// entirely, preserving v1 behavior for narrowed -checks runs.
func TestNoStaleAuditWithoutSuppressStale(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", staleFixture)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{WallClock})
	if len(diags) != 0 {
		t.Fatalf("suppressstale not selected, want no diagnostics: %v", diags)
	}
}

// A diagnostic reachable from two directives (own line and line above)
// keeps both alive — neither may be reported stale.
func TestSuppressStaleKeepsDoublyCoveringDirectivesAlive(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

import "time"

func f() time.Time {
	//corralvet:ok wallclock covered from the line above
	return time.Now() //corralvet:ok wallclock covered on the same line
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{WallClock, SuppressStale})
	if len(diags) != 0 {
		t.Fatalf("both directives absorb the same finding, want none stale: %v", diags)
	}
}

// fixtureLine locates the 1-based line containing marker in src.
func fixtureLine(t *testing.T, src, marker string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in fixture", marker)
	return 0
}

func TestSelect(t *testing.T) {
	got, err := Select("", "suppressstale")
	if err != nil {
		t.Fatalf("Select skip: %v", err)
	}
	if len(got) != len(Analyzers())-1 {
		t.Errorf("skip suppressstale: got %d analyzers", len(got))
	}
	for _, a := range got {
		if a.Name == "suppressstale" {
			t.Errorf("suppressstale survived -skip")
		}
	}
	if _, err := Select("maporder", "bogus"); err == nil {
		t.Error("unknown skip name must error")
	}
	if _, err := Select("maporder", "maporder"); err == nil {
		t.Error("empty selection must error")
	}
	got, err = Select("floateq,maporder", "")
	if err != nil || len(got) != 2 {
		t.Fatalf("Select subset: got %v, err %v", got, err)
	}
}

func TestRunAnalyzersTimedAttributesEveryAnalyzer(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

func f() {}
`)
	// Deterministic fake clock: each reading advances 1ms.
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	_, timings := RunAnalyzersTimed([]*Package{pkg}, Analyzers(), clock)
	if len(timings) != len(Analyzers()) {
		t.Fatalf("want a timing per analyzer, got %v", timings)
	}
	for _, a := range Analyzers() {
		if timings[a.Name] <= 0 {
			t.Errorf("analyzer %s has no attributed time: %v", a.Name, timings[a.Name])
		}
	}

	// nil clock: timing off, diagnostics unchanged.
	if _, timings := RunAnalyzersTimed([]*Package{pkg}, Analyzers(), nil); timings != nil {
		t.Errorf("nil clock should disable timing, got %v", timings)
	}
}

func TestDiagnosticStringRendersRelatedAndFix(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a.go", Line: 3, Column: 1},
		Check:   "sweepsafe",
		Message: "non-slot write",
		Related: []Related{{Pos: token.Position{Filename: "a.go", Line: 1, Column: 5}, Message: "closure passed to parallelFor here"}},
		Fix:     "write only slots[i]",
	}
	s := d.String()
	for _, want := range []string{
		"a.go:3:1: [sweepsafe] non-slot write",
		"\n\ta.go:1:5: closure passed to parallelFor here",
		"\n\tfix: write only slots[i]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Diagnostic.String() = %q, missing %q", s, want)
		}
	}
}
