package analysis

import "testing"

func TestMapOrderAppendWithoutSort(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

func collect(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}
`)
}

func TestMapOrderCollectAndSortIsSilent(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

import "sort"

func collect(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSlice(m map[string]float64) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return names[a] < names[b] })
	return names
}
`)
}

func TestMapOrderLoopLocalAppendIsSilent(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

func sums(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
`)
}

func TestMapOrderEmit(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

import (
	"fmt"
	"strings"
)

func dump(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Println(k)        // want maporder
		b.WriteString(k)      // want maporder
		fmt.Fprintf(&b, "%d", v) // want maporder
	}
	return b.String()
}
`)
}

func TestMapOrderChannelSend(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

func feed(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want maporder
	}
}
`)
}

func TestMapOrderSequenceStateReceivers(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

import (
	"math/rand"

	"corral/internal/des"
	"corral/internal/netsim"
)

func jitter(m map[int]float64, rng *rand.Rand) float64 {
	total := 0.0
	for range m {
		total += rng.Float64() // want maporder
	}
	return total
}

func schedule(m map[int]float64, sim *des.Simulator, net *netsim.Network) {
	for k, v := range m {
		sim.After(des.Time(v), func() {}) // want maporder
		net.Start(k, k, v)                // want maporder
	}
}
`)
}

func TestMapOrderAggregationIsSilent(t *testing.T) {
	// Pure commutative aggregation over values does not externalize
	// iteration order (float rounding aside, which floateq's epsilon
	// guidance covers at comparison sites).
	runFixture(t, MapOrder, `package fixture

func count(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func mirror(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
`)
}

func TestMapOrderSuppression(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

func collect(m map[int]int) []int {
	var keys []int
	for k := range m {
		//corralvet:ok maporder order consumed by an order-insensitive set union downstream
		keys = append(keys, k)
	}
	return keys
}
`)
}

func TestMapOrderRangeOverSliceIsSilent(t *testing.T) {
	runFixture(t, MapOrder, `package fixture

func collect(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
`)
}
