package analysis

import "testing"

func TestSeedRandGlobalFunctions(t *testing.T) {
	runFixture(t, SeedRand, `package fixture

import "math/rand"

func roll() int {
	rand.Shuffle(3, func(i, j int) {}) // want seedrand
	_ = rand.Float64()                 // want seedrand
	return rand.Intn(6)                // want seedrand
}
`)
}

func TestSeedRandInjectedRngIsSilent(t *testing.T) {
	runFixture(t, SeedRand, `package fixture

import "math/rand"

func roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(3, func(i, j int) {})
	_ = rng.Float64()
	return rng.Intn(6)
}
`)
}

func TestSeedRandTimeSeededSource(t *testing.T) {
	runFixture(t, SeedRand, `package fixture

import (
	"math/rand"
	"time"
)

func sneaky() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seedrand seedrand
}
`)
}

func TestSeedRandSuppression(t *testing.T) {
	runFixture(t, SeedRand, `package fixture

import "math/rand"

func quickAndDirty() int {
	//corralvet:ok seedrand demo helper, result does not feed the simulation
	return rand.Intn(6)
}
`)
}
