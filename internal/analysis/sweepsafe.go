package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SweepSafe statically enforces the parallel-sweep write discipline from
// internal/experiments/parallel.go: a closure handed to parallelFor runs
// concurrently on an unspecified worker, so the only write it may make
// to state captured from outside the closure is an index-addressed slot
// store — slots[i] = ..., where i is the closure's own index parameter.
// Everything else (captured scalar mutation, appends to captured slices,
// captured-map writes, stores at any other index, writes through a
// captured pointer, channel sends) either races outright or makes the
// merged result depend on worker scheduling, breaking the
// worker-count-invariance that TestSweepWorkerCountInvariance can only
// sample dynamically and only on executed paths.
//
// Writes to variables declared inside the closure are loop-local scratch
// and always fine, as is writing through a local pointer previously
// aimed at a slot (out := &outs[i]; out.field = ...).
var SweepSafe = &Analyzer{
	Name: "sweepsafe",
	Doc:  "non-slot writes to captured state inside a parallelFor closure (breaks worker-count invariance)",
	Run:  runSweepSafe,
}

func runSweepSafe(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit, ok := sweepClosureArg(pass.Info, call)
			if !ok {
				return true
			}
			checkSweepClosure(pass, call, lit)
			return true
		})
	}
}

// sweepClosureArg matches a parallelFor(n, func(i int) error {...}) call
// and returns the closure literal. Matching is by callee name plus shape
// (a function literal with a single int parameter as the last argument)
// so the check follows the convention, not one package's symbol.
func sweepClosureArg(info *types.Info, call *ast.CallExpr) (*ast.FuncLit, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "parallelFor" || len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return nil, false
	}
	// The signature, not the AST field list, carries the real parameter
	// count: func(i, j int) is one field with two names.
	tv, ok := info.Types[lit]
	if !ok {
		return nil, false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return nil, false
	}
	b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Int {
		return nil, false
	}
	return lit, true
}

// checkSweepClosure walks one closure body and reports every write whose
// target is captured state not addressed by the closure's index param.
func checkSweepClosure(pass *Pass, call *ast.CallExpr, lit *ast.FuncLit) {
	var idxObj types.Object
	if names := lit.Type.Params.List[0].Names; len(names) == 1 {
		idxObj = pass.Info.Defs[names[0]]
	}
	// A variable is closure-local iff its declaration lies inside the
	// literal; everything else (enclosing locals, package vars) is shared.
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}

	report := func(n ast.Node, target ast.Expr, form string) {
		pass.Report(Finding{
			Pos: n.Pos(),
			Message: form + " " + exprString(target) +
				" captured by a parallelFor closure: cell writes must be index-addressed slot stores (slots[i] = ...)",
			Related: []RelatedPos{{Pos: call.Pos(), Message: "closure passed to parallelFor here"}},
			Fix:     "precompute a slots slice sized to n, write only slots[i] inside the closure, and merge serially in index order after parallelFor returns",
		})
	}
	checkWrite := func(n ast.Node, target ast.Expr) {
		root, slotAddressed, mapWrite := sweepWritePath(pass.Info, target, idxObj)
		if root == nil || local(root) || root == idxObj {
			return
		}
		switch {
		case mapWrite:
			report(n, target, "write to map")
		case !slotAddressed:
			report(n, target, "non-slot write to")
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs := ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" || pass.Info.Defs[id] != nil {
						continue // declaration or discard, not a shared write
					}
					// Appends get their own message: they are the most
					// common accidental form (element order leaks worker
					// scheduling even when growth happens not to race).
					if len(n.Rhs) == len(n.Lhs) {
						if c, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, c) {
							if obj := pass.Info.ObjectOf(id); obj != nil && !local(obj) && obj != idxObj {
								report(n, lhs, "append to slice")
								continue
							}
						}
					}
				}
				checkWrite(n, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n, ast.Unparen(n.X))
		case *ast.SendStmt:
			if root, _, _ := sweepWritePath(pass.Info, ast.Unparen(n.Chan), idxObj); root != nil && !local(root) {
				report(n, n.Chan, "send on channel")
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					checkWrite(n, ast.Unparen(n.Key))
				}
				if n.Value != nil {
					checkWrite(n, ast.Unparen(n.Value))
				}
			}
		}
		return true
	})
}

// sweepWritePath resolves the access path of a write target. It returns
// the root variable the path starts from, whether some step indexes a
// slice/array by exactly the closure's index parameter (the slot-store
// exemption), and whether some step writes through a map (never exempt:
// concurrent map writes race regardless of key).
func sweepWritePath(info *types.Info, e ast.Expr, idxObj types.Object) (root types.Object, slotAddressed, mapWrite bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if _, ok := obj.(*types.Var); !ok {
				return nil, slotAddressed, mapWrite
			}
			return obj, slotAddressed, mapWrite
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mapWrite = true
				} else if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok && idxObj != nil && info.ObjectOf(id) == idxObj {
					slotAddressed = true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.ParenExpr:
			e = ast.Unparen(x.X)
		default:
			return nil, slotAddressed, mapWrite
		}
	}
}
