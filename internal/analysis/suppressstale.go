package analysis

import "sort"

// SuppressStale cross-references every well-formed //corralvet:ok
// directive against the diagnostics its named check actually raised and
// reports directives that no longer suppress anything. Suppressions are
// the escape hatch of every other analyzer; without this audit the
// annotation inventory rots — code gets refactored, the finding moves or
// disappears, and the stale comment keeps granting an exemption at a
// line where a new, genuine violation could later land unseen.
//
// A directive is audited only when its named check ran in the same
// invocation (running `-checks maporder` must not condemn a floateq
// annotation), and only well-formed directives are considered — the
// malformed/unknown-check forms are already reported unconditionally by
// the framework.
//
// The audit is framework-driven: it needs every analyzer's raw (pre-
// suppression) diagnostics, which a per-package Run hook never sees, so
// RunAnalyzers performs it after the suppression filter when this
// analyzer is selected. Run is therefore a no-op.
var SuppressStale = &Analyzer{
	Name: "suppressstale",
	Doc:  "//corralvet:ok directives that no longer suppress any diagnostic of a check that ran",
	Run:  func(*Pass) {},
}

// auditSuppressions returns one diagnostic per unused directive whose
// check is in ran. Results are collected from the suppression map and
// sorted by position so the audit's output is deterministic.
func auditSuppressions(sup suppressions, ran map[string]bool) []Diagnostic {
	var stale []Diagnostic
	for _, byCheck := range sup {
		for check, s := range byCheck {
			if s.used || !ran[check] {
				continue
			}
			stale = append(stale, Diagnostic{
				Pos:     s.pos,
				Check:   SuppressStale.Name,
				Message: "stale suppression: no " + check + " diagnostic on this line or the line below; delete the //corralvet:ok or re-justify it",
				Fix:     "remove the //corralvet:ok " + check + " directive",
			})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return stale
}
