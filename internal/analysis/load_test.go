package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a miniature module on disk for loader tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadResolvesPatternsAndModulePaths(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":           "module example/mini\n\ngo 1.22\n",
		"root.go":          "package mini\n\nconst Root = 1\n",
		"internal/a/a.go":  "package a\n\nfunc A() int { return 1 }\n",
		"internal/b/b.go":  "package b\n\nimport \"example/mini/internal/a\"\n\nfunc B() int { return a.A() }\n",
		"testdata/skip.go": "package broken !!!\n",
	})
	pkgs, err := Load(LoadConfig{Dir: dir}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
		if p.Module != "example/mini" {
			t.Errorf("%s: Module = %q, want example/mini", p.Path, p.Module)
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: incomplete package", p.Path)
		}
	}
	want := []string{"example/mini", "example/mini/internal/a", "example/mini/internal/b"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
}

// TestLoadTypeIdentity guards the canonical-instance invariant: a package
// imported by two others must be the same *types.Package, or cross-package
// assignments fail to type-check.
func TestLoadTypeIdentity(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":          "module example/mini\n\ngo 1.22\n",
		"internal/j/j.go": "package j\n\ntype Job struct{ ID int }\n",
		"internal/m/m.go": "package m\n\nimport \"example/mini/internal/j\"\n\nfunc Wrap(x *j.Job) *j.Job { return x }\n",
		"internal/u/u.go": "package u\n\nimport (\n\t\"example/mini/internal/j\"\n\t\"example/mini/internal/m\"\n)\n\nfunc Use() *j.Job { return m.Wrap(&j.Job{ID: 1}) }\n",
	})
	if _, err := Load(LoadConfig{Dir: dir}, "./..."); err != nil {
		t.Fatalf("Load: %v", err)
	}
}

func TestLoadWithTests(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                  "module example/mini\n\ngo 1.22\n",
		"internal/a/a.go":         "package a\n\nfunc A() int { return 1 }\n",
		"internal/a/help_test.go": "package a\n\nfunc helper() int { return A() }\n",
		"internal/a/ext_test.go":  "package a_test\n\nimport \"example/mini/internal/a\"\n\nvar _ = a.A\n",
	})
	pkgs, err := Load(LoadConfig{Dir: dir, Tests: true}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := map[string]bool{"example/mini/internal/a": true, "example/mini/internal/a_test": true}
	if len(paths) != 2 || !want[paths[0]] || !want[paths[1]] {
		t.Fatalf("paths = %v, want the package and its external test package", paths)
	}
}

func TestLoadOnRealRepoFindsAnnotatedSites(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	// The repo itself must stay corralvet-clean; this is the same
	// invariant CI enforces via `go run ./cmd/corralvet ./...`.
	pkgs, err := Load(LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the full module, got %d packages", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
