package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose bodies are
// order-sensitive: Go randomizes map iteration order per run, so any
// observable effect that depends on visit order breaks bit-for-bit
// reproducibility.
//
// Order-sensitive bodies are those that
//   - append to a variable declared outside the loop (unless every such
//     variable is sorted after the loop — the collect-and-sort idiom used
//     in internal/runtime/exec.go),
//   - emit output (fmt print family, builtin print/println, Write* /
//     AddRow methods, channel sends), or
//   - consume order-sensitive simulator state: a *math/rand.Rand (stream
//     position depends on call order), the *des.Simulator clock/queue
//     (event sequence numbers depend on scheduling order), or the
//     *netsim.Network flow API (flow setup order feeds the allocator).
//
// The fix is to collect the keys, sort them, and range over the sorted
// slice; truly order-insensitive loops can be annotated with
// //corralvet:ok maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map with an order-sensitive body (append/emit/rand/schedule) without collect-and-sort",
	Run:  runMapOrder,
}

// emitMethods are method names that externalize values in call order.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "Printf": true, "Print": true, "Println": true,
}

// fmtEmitFuncs are fmt package functions that write to a sink (the pure
// Sprint family is excluded; its results flow into appends or emits that
// are caught separately).
var fmtEmitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// orderSensitiveRecvs are receiver types whose methods consume hidden
// sequence state, making call order observable. Module-relative entries
// (leading "/") are resolved against the analyzed module's path.
var orderSensitiveRecvs = []struct{ pkg, name string }{
	{"math/rand", "Rand"},
	{"math/rand/v2", "Rand"},
	{"/internal/des", "Simulator"},
	{"/internal/netsim", "Network"},
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapRanges(pass, fd.Body)
		}
	}
}

// checkFuncMapRanges finds map ranges in one function body and checks
// each against the function's trailing sort calls.
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Variables declared inside the loop body: appends to those are
	// loop-local scratch, not an escape of iteration order.
	local := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	type appendSite struct {
		target ast.Expr
		pos    ast.Node
	}
	var appends []appendSite

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map %s: iteration order is random per run", exprString(rng.X))
		case *ast.AssignStmt:
			// lhs = append(lhs, ...) with lhs declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				target := n.Lhs[i]
				if id, ok := ast.Unparen(target).(*ast.Ident); ok && local[pass.Info.ObjectOf(id)] {
					continue
				}
				appends = append(appends, appendSite{target: target, pos: n})
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, rng, n)
		}
		return true
	})

	for _, a := range appends {
		if sortedAfter(pass, funcBody, rng, a.target) {
			continue
		}
		pass.Reportf(a.pos.Pos(),
			"append to %s inside range over map %s without sorting afterwards: element order is random per run; collect keys and sort first (see internal/runtime/exec.go finishMapsPhase)",
			exprString(a.target), exprString(rng.X))
	}
}

// checkMapRangeCall flags emitting / sequence-consuming calls inside a
// map-range body.
func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	if isPkgFunc(pass.Info, call, "fmt", fmtEmitFuncs) {
		pass.Reportf(call.Pos(), "output inside range over map %s: emit order is random per run", exprString(rng.X))
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			pass.Reportf(call.Pos(), "output inside range over map %s: emit order is random per run", exprString(rng.X))
			return
		}
	}
	recv := recvNamed(pass.Info, call)
	if recv == nil {
		return
	}
	if f := calleeFunc(pass.Info, call); f != nil && emitMethods[f.Name()] {
		pass.Reportf(call.Pos(), "%s.%s inside range over map %s: emit order is random per run", recv.Obj().Name(), f.Name(), exprString(rng.X))
		return
	}
	for _, r := range orderSensitiveRecvs {
		pkg := r.pkg
		if strings.HasPrefix(pkg, "/") {
			pkg = pass.Module + pkg
		}
		if namedIs(recv, pkg, r.name) {
			pass.Reportf(call.Pos(),
				"call on %s.%s inside range over map %s: consumes sequence state, so iteration order changes the simulation",
				pkg, r.name, exprString(rng.X))
			return
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortFuncs are sort/slices calls that establish a deterministic order;
// the first argument is the slice being sorted.
var sortFuncs = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether target is passed to a sort call positioned
// after the range statement within the same function.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	want := exprString(target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		if !isPkgFunc(pass.Info, call, "sort", sortFuncs) && !isPkgFunc(pass.Info, call, "slices", sortFuncs) {
			return true
		}
		if exprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}
