package analysis

// Test harness for the analyzers: fixtures are in-memory Go sources,
// type-checked for real (stdlib via the source importer, fake module
// dependencies via fixtureDeps), then run through RunAnalyzers so that
// suppression comments are honored exactly as in production.
//
// Expected findings are marked in the fixture itself: a comment
// `// want <check>` on a line asserts that exactly that check fires on
// that line. The harness fails on both missed and surplus diagnostics,
// so each fixture proves an analyzer fires on the violating form and
// stays silent on the corrected or annotated form.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// One fileset + source importer shared by all fixture tests: the source
// importer re-type-checks stdlib packages from source, which is too slow
// to repeat per test.
var (
	fixtureFset = token.NewFileSet()
	stdImporter types.Importer
	stdOnce     sync.Once
)

func sharedStdImporter() types.Importer {
	stdOnce.Do(func() {
		stdImporter = importer.ForCompiler(fixtureFset, "source", nil)
	})
	return stdImporter
}

// fixtureDeps are miniature stand-ins for the simulator packages the
// maporder receiver rule recognizes, so analyzer tests stay hermetic.
var fixtureDeps = map[string]string{
	"corral/internal/des": `package des
type Time float64
type Simulator struct{ now Time }
func (s *Simulator) Now() Time { return s.now }
func (s *Simulator) After(d Time, fn func()) {}
`,
	"corral/internal/netsim": `package netsim
type Flow struct{}
type Network struct{}
func (n *Network) Start(src, dst int, bytes float64) *Flow { return nil }
`,
}

type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	return im.std.Import(path)
}

// checkFixture type-checks one in-memory source file as the package with
// the given import path.
func checkFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	im := &fixtureImporter{std: sharedStdImporter(), pkgs: map[string]*types.Package{}}
	for depPath, depSrc := range fixtureDeps {
		if !strings.Contains(src, fmt.Sprintf("%q", depPath)) {
			continue
		}
		f, err := parser.ParseFile(fixtureFset, depPath+"/dep.go", depSrc, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing dep %s: %v", depPath, err)
		}
		conf := types.Config{Importer: im}
		p, err := conf.Check(depPath, fixtureFset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatalf("type-checking dep %s: %v", depPath, err)
		}
		im.pkgs[depPath] = p
	}

	fileName := strings.ReplaceAll(path, "/", "_") + "_fixture.go"
	f, err := parser.ParseFile(fixtureFset, fileName, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &Package{
		Path:   path,
		Module: "corral",
		Fset:   fixtureFset,
		Files:  []*ast.File{f},
		Types:  tpkg,
		Info:   info,
	}
}

// wantsIn extracts `// want <check>` markers as line -> expected checks.
func wantsIn(pkg *Package) map[int][]string {
	out := map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				out[line] = append(out[line], strings.Fields(rest)...)
			}
		}
	}
	return out
}

// runFixture analyzes src under the given analyzer (at import path
// "corral/internal/fixture" unless overridden via pathOverride) and
// asserts the diagnostics match the fixture's `// want` markers exactly.
func runFixture(t *testing.T, a *Analyzer, src string, pathOverride ...string) {
	t.Helper()
	path := "corral/internal/fixture"
	if len(pathOverride) > 0 {
		path = pathOverride[0]
	}
	pkg := checkFixture(t, path, src)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	want := wantsIn(pkg)

	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Check)
	}
	for line, checks := range want {
		for _, c := range checks {
			if !remove(got, line, c) {
				t.Errorf("line %d: expected %s diagnostic, none reported", line, c)
			}
		}
	}
	for line, checks := range got {
		for _, c := range checks {
			t.Errorf("line %d: unexpected %s diagnostic", line, c)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("reported: %s", d)
		}
	}
}

// remove deletes one occurrence of check at line from got, reporting
// whether it was present.
func remove(got map[int][]string, line int, check string) bool {
	for i, c := range got[line] {
		if c == check {
			got[line] = append(got[line][:i], got[line][i+1:]...)
			if len(got[line]) == 0 {
				delete(got, line)
			}
			return true
		}
	}
	return false
}
