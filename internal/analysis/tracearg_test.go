package analysis

import (
	"strings"
	"testing"
)

// tracearg only targets the real tracer package, so the fixtures load
// under the corral/internal/trace import path with a standalone Tracer.
const traceFixturePath = "corral/internal/trace"

func TestTraceArgAcceptsContractConformingEmits(t *testing.T) {
	runFixture(t, TraceArg, `package trace

type Event struct{ T float64 }

type Tracer struct {
	events []Event
}

// Emit conforms: pointer receiver, nil guard first, scalar-shaped params.
func (t *Tracer) Emit(now float64, job int, name string, racks []int) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{T: now})
}

// Accessors return values, so they are not emit methods.
func (t *Tracer) Enabled() bool { return t != nil }

// Unexported helpers are internal plumbing, not API surface.
func (t *Tracer) helper(now float64) {
	t.events = append(t.events, Event{T: now})
}
`, traceFixturePath)
}

func TestTraceArgFlagsContractViolations(t *testing.T) {
	runFixture(t, TraceArg, `package trace

type Event struct{ T float64 }

type Tracer struct {
	events []Event
}

func (t *Tracer) NoGuard(now float64) { // want tracearg
	t.events = append(t.events, Event{T: now})
}

func (t *Tracer) GuardNotFirst(now float64) { // want tracearg
	x := now
	if t == nil {
		return
	}
	t.events = append(t.events, Event{T: x})
}

func (t Tracer) ValueReceiver(now float64) { // want tracearg
	_ = now
}

func (t *Tracer) BoxedParam(v any) { // want tracearg
	if t == nil {
		return
	}
	_ = v
}

func (t *Tracer) MapParam(m map[int]int) { // want tracearg
	if t == nil {
		return
	}
	_ = m
}

func (t *Tracer) Variadic(vals ...float64) { // want tracearg
	if t == nil {
		return
	}
	_ = vals
}
`, traceFixturePath)
}

// Methods on other types in the trace package, and Tracer-named types in
// other packages, are out of scope.
func TestTraceArgScopedToTraceTracer(t *testing.T) {
	runFixture(t, TraceArg, `package trace

type sink struct{}

func (s *sink) Push(v any) { _ = v }
`, traceFixturePath)

	runFixture(t, TraceArg, `package fixture

type Tracer struct{}

func (t *Tracer) Emit(v any) { _ = v }
`)
}

// TestTraceArgFiresOnSeededBug: dropping the nil guard from an emit
// method must produce a finding that names the missing guard.
func TestTraceArgFiresOnSeededBug(t *testing.T) {
	pkg := checkFixture(t, traceFixturePath, `package trace

type Event struct{ T float64 }

type Tracer struct{ events []Event }

func (t *Tracer) TaskPlaced(now float64, task int) {
	t.events = append(t.events, Event{T: now})
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{TraceArg})
	if len(diags) != 1 {
		t.Fatalf("emit method without nil guard: want exactly 1 finding, got %v", diags)
	}
	d := diags[0]
	if d.Check != "tracearg" || !strings.Contains(d.Message, "nil") || d.Fix == "" {
		t.Errorf("finding should explain the missing nil-receiver guard and carry a fix: %+v", d)
	}
}
