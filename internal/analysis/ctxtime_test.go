package analysis

import "testing"

func TestCtxTimeBareConversions(t *testing.T) {
	runFixture(t, CtxTime, `package fixture

import "time"

type seconds float64

func mix(sec float64, d time.Duration, s seconds) (time.Duration, float64) {
	bad := time.Duration(sec) // want ctxtime
	raw := float64(d)         // want ctxtime
	worse := time.Duration(s) // want ctxtime
	return bad + worse, raw
}
`)
}

func TestCtxTimeScaleAwareConversionsAreSilent(t *testing.T) {
	runFixture(t, CtxTime, `package fixture

import "time"

func bridge(sec float64, d time.Duration) (time.Duration, float64) {
	in := time.Duration(sec * float64(time.Second))
	out := d.Seconds()
	return in, out
}

func untouched(d time.Duration) int64 {
	return int64(d) // integer conversion keeps the ns scale explicit
}
`)
}

func TestCtxTimeSuppression(t *testing.T) {
	runFixture(t, CtxTime, `package fixture

import "time"

func nanos(d time.Duration) float64 {
	//corralvet:ok ctxtime raw nanoseconds wanted for histogram bucketing
	return float64(d)
}
`)
}
