package analysis

import "testing"

// The fixture defines its own parallelFor with the canonical signature;
// sweepsafe matches by name + shape, so the harness stays hermetic.
const sweepFixturePrelude = `package fixture

func parallelFor(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
`

func TestSweepSafeAllowsSlotDiscipline(t *testing.T) {
	runFixture(t, SweepSafe, sweepFixturePrelude+`
type cell struct {
	count int
	list  []int
}

func clean(n int) ([]float64, error) {
	slots := make([]float64, n)
	outs := make([]cell, n)
	err := parallelFor(n, func(i int) error {
		v := float64(i) * 2 // closure-local scratch: fine
		slots[i] = v        // index-addressed slot store: fine
		out := &outs[i]     // local pointer aimed at own slot: fine
		out.count++
		out.list = append(out.list, i)
		outs[i].count = out.count
		var local []int
		local = append(local, i) // local append: fine
		_ = local
		return nil
	})
	return slots, err
}

// A different index-parameter name is still the index parameter.
func cleanNamedCi(n int) error {
	results := make([]int, n)
	return parallelFor(n, func(ci int) error {
		results[ci] = ci
		return nil
	})
}
`)
}

func TestSweepSafeFlagsSharedWrites(t *testing.T) {
	runFixture(t, SweepSafe, sweepFixturePrelude+`
type counter struct{ n int }

func violations(n int) error {
	total := 0.0
	var all []int
	seen := map[int]bool{}
	slots := make([]float64, n)
	shared := &counter{}
	ch := make(chan int, n)
	return parallelFor(n, func(i int) error {
		total += float64(i)  // want sweepsafe
		all = append(all, i) // want sweepsafe
		seen[i] = true       // want sweepsafe
		slots[i+1] = 1       // want sweepsafe
		slots[0] = 2         // want sweepsafe
		shared.n++           // want sweepsafe
		ch <- i              // want sweepsafe
		return nil
	})
}

func annotated(n int) error {
	hits := 0
	return parallelFor(n, func(i int) error {
		//corralvet:ok sweepsafe demo fixture: intentional race stand-in
		hits++
		return nil
	})
}
`)
}

// TestSweepSafeFiresOnSeededBug is the anti-vacuity guarantee behind the
// acceptance criterion "seeding a shared-write bug into a parallelFor
// closure makes make vet fail": the exact bug shape must produce at
// least one finding, with the closure's call site attached as a related
// position.
func TestSweepSafeFiresOnSeededBug(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", sweepFixturePrelude+`
func seeded(n int) (float64, error) {
	sum := 0.0
	err := parallelFor(n, func(i int) error {
		sum += float64(i)
		return nil
	})
	return sum, err
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{SweepSafe})
	if len(diags) != 1 {
		t.Fatalf("seeded shared-write bug: want exactly 1 sweepsafe finding, got %v", diags)
	}
	d := diags[0]
	if d.Check != "sweepsafe" || d.Fix == "" {
		t.Errorf("finding missing check/fix: %+v", d)
	}
	if len(d.Related) != 1 {
		t.Fatalf("want the parallelFor call as a related position, got %+v", d.Related)
	}
	if d.Related[0].Pos.Line >= d.Pos.Line {
		t.Errorf("related parallelFor position %d should precede the write at %d", d.Related[0].Pos.Line, d.Pos.Line)
	}
}

// Unrelated helpers named parallelFor but with a different shape (no
// closure literal, or a multi-parameter closure) must not be checked.
func TestSweepSafeIgnoresOtherShapes(t *testing.T) {
	runFixture(t, SweepSafe, `package fixture

func parallelFor(n int, fn func(i, j int) error) error { return fn(0, 0) }

func other(n int) error {
	sum := 0
	return parallelFor(n, func(i, j int) error {
		sum += i + j // two-parameter closure: not the sweep convention
		return nil
	})
}
`)
}
