package analysis

import "testing"

func TestFloatEqComputedComparison(t *testing.T) {
	runFixture(t, FloatEq, `package fixture

type Time float64

func converged(rate, want float64, a, b Time) bool {
	if rate == want { // want floateq
		return true
	}
	return a != b // want floateq
}
`)
}

func TestFloatEqSentinelConstantsAreSilent(t *testing.T) {
	runFixture(t, FloatEq, `package fixture

const unset = -1.0

func classify(demand float64) int {
	if demand == 0 {
		return 0
	}
	if demand != unset {
		return 1
	}
	return 2
}
`)
}

func TestFloatEqComparatorsAreSilent(t *testing.T) {
	runFixture(t, FloatEq, `package fixture

import "sort"

type byScore struct{ score []float64 }

func (s byScore) Len() int      { return len(s.score) }
func (s byScore) Swap(i, j int) { s.score[i], s.score[j] = s.score[j], s.score[i] }
func (s byScore) Less(i, j int) bool {
	if s.score[i] != s.score[j] {
		return s.score[i] < s.score[j]
	}
	return i < j
}

type entry struct {
	f  float64
	id int
}

func order(entries []entry, score []float64) {
	tie := func(a, b int) bool {
		if score[a] != score[b] {
			return score[a] > score[b]
		}
		return a < b
	}
	sort.Slice(entries, func(x, y int) bool {
		if entries[x].f != entries[y].f {
			return entries[x].f < entries[y].f
		}
		return tie(entries[x].id, entries[y].id)
	})
}
`)
}

func TestFloatEqEpsilonHelperShapeIsFlagged(t *testing.T) {
	// func(a, b float64) bool is the epsilon-helper shape, not a
	// comparator over indexes; exact equality inside it is the very bug
	// the helper should fix.
	runFixture(t, FloatEq, `package fixture

func equal(a, b float64) bool {
	return a == b // want floateq
}
`)
}

func TestFloatEqSuppression(t *testing.T) {
	runFixture(t, FloatEq, `package fixture

func sameInstant(a, b float64, c int) bool {
	//corralvet:ok floateq exact identity intended: both sides copy the same scheduled instant
	return a == b && c > 0
}
`)
}
