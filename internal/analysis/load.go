package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path   string // import path, e.g. "corral/internal/netsim"
	Dir    string
	Module string // module path from go.mod, e.g. "corral"
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the working directory patterns are resolved against; it must
	// be inside a module. Empty means the process working directory.
	Dir string
	// Tests includes _test.go files. In-package test files are checked
	// together with their package; external (_test-suffixed package)
	// files are checked as their own package against that augmented
	// instance, mirroring `go test` compilation.
	Tests bool
}

// Load resolves go-style package patterns ("./...", "./internal/netsim")
// to type-checked packages. Only directories below the module root are
// supported; there are no external module dependencies to resolve
// (go.mod is dependency-free by design), so stdlib imports come from the
// source importer and module-local imports are loaded recursively from
// the tree itself. Every package path maps to exactly one canonical
// *types.Package instance, so cross-package type identity holds.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return nil, err
		}
	}
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:      token.NewFileSet(),
		modDir:    modDir,
		modPath:   modPath,
		full:      map[string]*Package{},
		overrides: map[string]*types.Package{},
		loading:   map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}

	var out []*Package
	for _, d := range dirs {
		ip, err := ld.importPath(d)
		if err != nil {
			return nil, err
		}
		names, testNames, extNames, err := goFilesIn(d)
		if err != nil {
			return nil, err
		}
		if !cfg.Tests {
			if len(names) == 0 {
				continue
			}
			p, err := ld.load(ip, d)
			if err != nil {
				return nil, err
			}
			p.Module = modPath
			out = append(out, p)
			continue
		}
		if len(names)+len(testNames) > 0 {
			// Augmented instance: package + in-package test files. Not
			// cached as the canonical instance — other packages must link
			// against the non-test build.
			aug, err := ld.checkFiles(ip, d, append(append([]string{}, names...), testNames...))
			if err != nil {
				return nil, err
			}
			aug.Module = modPath
			out = append(out, aug)
			if len(extNames) > 0 {
				ld.overrides[ip] = aug.Types
				ext, err := ld.checkFiles(ip+"_test", d, extNames)
				delete(ld.overrides, ip)
				if err != nil {
					return nil, err
				}
				ext.Module = modPath
				out = append(out, ext)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves patterns to a sorted, de-duplicated list of
// directories containing Go files.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(filepath.Join(base, rest))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		d := filepath.Join(base, pat)
		if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		add(d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// goFilesIn splits a directory's Go files into non-test, in-package test,
// and external-package test files.
func goFilesIn(dir string) (names, testNames, extNames []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		path := filepath.Join(dir, n)
		if !strings.HasSuffix(n, "_test.go") {
			names = append(names, path)
			continue
		}
		ext, err := isExternalTest(path)
		if err != nil {
			return nil, nil, nil, err
		}
		if ext {
			extNames = append(extNames, path)
		} else {
			testNames = append(testNames, path)
		}
	}
	return names, testNames, extNames, nil
}

// isExternalTest reports whether the file declares a _test-suffixed
// package (checked as a separate package from the one under test).
func isExternalTest(path string) (bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly)
	if err != nil {
		return false, err
	}
	return strings.HasSuffix(f.Name.Name, "_test"), nil
}

// loader type-checks packages, resolving module-local imports from the
// source tree and everything else (stdlib) via the source importer.
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	modDir  string
	modPath string
	// full caches the canonical (non-test) instance per import path.
	full map[string]*Package
	// overrides temporarily substitutes a test-augmented instance while
	// its external test package is checked.
	overrides map[string]*types.Package
	loading   map[string]bool // import-cycle guard
}

// importPath maps a directory below the module root to its import path.
func (ld *loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(ld.modDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, ld.modDir)
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirOf inverts importPath for module-local paths.
func (ld *loader) dirOf(path string) string {
	return filepath.Join(ld.modDir, strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/"))
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.overrides[path]; ok {
		return p, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.load(path, ld.dirOf(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// load returns the canonical non-test instance of a module-local
// package, checking it on first use.
func (ld *loader) load(path, dir string) (*Package, error) {
	if p, ok := ld.full[path]; ok {
		return p, nil
	}
	names, _, _, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	p, err := ld.checkFiles(path, dir, names)
	if err != nil {
		return nil, err
	}
	ld.full[path] = p
	return p, nil
}

// checkFiles parses and type-checks one package's files.
func (ld *loader) checkFiles(path, dir string, fileNames []string) (*Package, error) {
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	sort.Strings(fileNames)
	var files []*ast.File
	for _, fn := range fileNames {
		f, err := parser.ParseFile(ld.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
