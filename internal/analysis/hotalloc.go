package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is an allocation-site analyzer for functions marked with a
// //corral:hotpath directive in their doc comment. The marked functions
// are the simulator's per-event inner loops — the grouped allocator's
// recompute path and the tracer's emit methods — whose allocation-free
// steady state is load-bearing (the ROADMAP's 10k-machine runs execute
// them millions of times) but is only guarded dynamically, by two
// benchmarks that miss unexecuted branches. HotAlloc flags the
// allocation idioms that creep into such code:
//
//   - composite literals whose address is taken (&T{...}: heap escape),
//   - slice literals with elements and map literals (always allocate),
//   - any call into package fmt (formats into fresh buffers and boxes
//     every operand),
//   - string concatenation (builds a fresh string each evaluation),
//   - interface boxing of scalar arguments (a basic-typed value passed
//     to an interface parameter allocates unless inlined away),
//   - append growth on a local slice declared without capacity (var s
//     []T / s := []T{} / make(len 0): every growth reallocates).
//
// Value composite literals, appends to reused scratch reachable from the
// receiver or captured state, and make calls on the grow-once path are
// deliberately not flagged — round-stamped scratch reuse is exactly the
// idiom the hot paths are built on (see netsim/grouped.go).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation sites (escaping literals, fmt, string concat, boxing, growing append) in //corral:hotpath functions",
	Run:  runHotAlloc,
}

// hotPathMarker is the doc-comment directive that opts a function in.
const hotPathMarker = "corral:hotpath"

// isHotPath reports whether fd's doc comment carries //corral:hotpath.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, hotPathMarker) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotPathFunc(pass, fd)
		}
	}
}

func checkHotPathFunc(pass *Pass, fd *ast.FuncDecl) {
	unprealloc := unpreallocatedLocals(pass, fd.Body)
	concats := stringConcats(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(Finding{
						Pos:     n.Pos(),
						Message: "address of composite literal escapes to the heap on the //corral:hotpath function " + fd.Name.Name,
						Fix:     "reuse a preallocated object (round-stamped scratch) or pass the value itself",
					})
				}
			}
		case *ast.CompositeLit:
			checkHotPathComposite(pass, fd, n)
		case *ast.BinaryExpr:
			if concats[n] {
				pass.Report(Finding{
					Pos:     n.OpPos,
					Message: "string concatenation allocates on the //corral:hotpath function " + fd.Name.Name,
					Fix:     "append into a reused []byte scratch buffer instead",
				})
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok && isString(tv.Type) {
					pass.Report(Finding{
						Pos:     n.TokPos,
						Message: "string concatenation allocates on the //corral:hotpath function " + fd.Name.Name,
						Fix:     "append into a reused []byte scratch buffer instead",
					})
				}
			}
		case *ast.CallExpr:
			checkHotPathCall(pass, fd, n, unprealloc)
		}
		return true
	})
}

// checkHotPathComposite flags slice literals with elements and all map
// literals. Struct/array values live on the stack and empty slice
// literals point at the runtime's zero base, so neither is reported
// (empty-slice append growth is the unpreallocatedLocals rule's job).
func checkHotPathComposite(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		if len(lit.Elts) > 0 {
			pass.Report(Finding{
				Pos:     lit.Pos(),
				Message: "slice literal allocates on the //corral:hotpath function " + fd.Name.Name,
				Fix:     "hoist to a package-level table or reuse scratch",
			})
		}
	case *types.Map:
		pass.Report(Finding{
			Pos:     lit.Pos(),
			Message: "map literal allocates on the //corral:hotpath function " + fd.Name.Name,
			Fix:     "hoist to a package-level table or use round-stamped dense slices",
		})
	}
}

func checkHotPathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, unprealloc map[types.Object]bool) {
	if f := calleeFunc(pass.Info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Report(Finding{
			Pos:     call.Pos(),
			Message: "fmt." + f.Name() + " allocates (buffer + boxed operands) on the //corral:hotpath function " + fd.Name.Name,
			Fix:     "use strconv appends into reused scratch, or move formatting off the hot path",
		})
		return // don't double-report every operand as boxing below
	}
	if isBuiltinAppend(pass.Info, call) && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && unprealloc[pass.Info.ObjectOf(id)] {
			pass.Report(Finding{
				Pos:     call.Pos(),
				Message: "append grows un-preallocated local slice " + id.Name + " on the //corral:hotpath function " + fd.Name.Name,
				Fix:     "preallocate with make(len 0, cap n) or reuse scratch truncated with s[:0]",
			})
		}
		return
	}
	checkHotPathBoxing(pass, fd, call)
}

// checkHotPathBoxing flags basic-typed (scalar/string) arguments passed
// to interface parameters: the conversion boxes the scalar on the heap.
// Type-parameter params are exempt — generic calls instantiate, they do
// not box.
func checkHotPathBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // conversion, builtin, or type expression
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isTP := param.(*types.TypeParam); isTP {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.IsNil() || atv.Value != nil {
			continue // constants convert via static data, no runtime box
		}
		if _, isBasic := atv.Type.Underlying().(*types.Basic); isBasic {
			pass.Report(Finding{
				Pos:     arg.Pos(),
				Message: "scalar argument " + exprString(arg) + " boxes into an interface parameter on the //corral:hotpath function " + fd.Name.Name,
				Fix:     "keep hot-path signatures scalar-typed (see the tracearg contract) or hoist the call off the hot path",
			})
		}
	}
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringConcats collects the outermost string-typed + expressions in
// body: a+b+c parses as (a+b)+c and should read as one finding, so inner
// operands of a reported concat are excluded.
func stringConcats(pass *Pass, body *ast.BlockStmt) map[*ast.BinaryExpr]bool {
	all := map[*ast.BinaryExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.ADD {
			// Constant folds ("a"+"b") cost nothing at run time.
			if tv, ok := pass.Info.Types[b]; ok && isString(tv.Type) && tv.Value == nil {
				all[b] = true
			}
		}
		return true
	})
	for b := range all {
		if x, ok := ast.Unparen(b.X).(*ast.BinaryExpr); ok {
			delete(all, x)
		}
		if y, ok := ast.Unparen(b.Y).(*ast.BinaryExpr); ok {
			delete(all, y)
		}
	}
	return all
}

// unpreallocatedLocals finds body-local slice variables declared with no
// capacity — `var s []T`, `s := []T{}`, `s := make([]T, 0)` — whose
// appends therefore reallocate as they grow. Receiver/param/captured
// slices are excluded: appending to those is the reusable-scratch idiom.
func unpreallocatedLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(id *ast.Ident, init ast.Expr) {
		obj := pass.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			out[obj] = true // var s []T
			return
		}
		switch e := ast.Unparen(init).(type) {
		case *ast.CompositeLit:
			if len(e.Elts) == 0 {
				out[obj] = true // s := []T{}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" && len(e.Args) == 2 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if lit, ok := ast.Unparen(e.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
						out[obj] = true // s := make([]T, 0)
					}
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						mark(name, vs.Values[i])
					} else {
						mark(name, nil)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					mark(id, n.Rhs[i])
				}
			}
		}
		return true
	})
	return out
}
