package analysis

import (
	"strings"
	"testing"
)

func TestHotAllocIgnoresUnmarkedFunctions(t *testing.T) {
	runFixture(t, HotAlloc, `package fixture

import "fmt"

// cold has no //corral:hotpath marker: every allocation idiom is fine.
func cold(n int, name string) string {
	m := map[int]int{n: n}
	_ = m
	p := &struct{ n int }{n}
	_ = p
	return fmt.Sprintf("%d", n) + name
}
`)
}

func TestHotAllocFlagsAllocationIdioms(t *testing.T) {
	runFixture(t, HotAlloc, `package fixture

import "fmt"

type rec struct {
	vals []int
	name string
}

func box(v any) {}

//corral:hotpath
func hot(r *rec, n int, name string) {
	r.vals = append(r.vals, n) // receiver-reachable scratch: fine
	pre := make([]int, 0, n)
	pre = append(pre, n) // preallocated: fine
	_ = pre
	val := rec{name: name} // value composite: stack, fine
	_ = val
	box(3)         // constant converts via static data: fine
	box(&val)      // pointer arg is already a word: fine

	var local []int
	local = append(local, n) // want hotalloc
	_ = local
	zero := make([]int, 0)
	zero = append(zero, n) // want hotalloc
	_ = zero
	s := fmt.Sprintf("%d", n) // want hotalloc
	_ = s
	_ = name + "!" // want hotalloc
	acc := ""
	acc += name // want hotalloc
	_ = acc
	p := &rec{} // want hotalloc
	_ = p
	lits := []int{1, 2} // want hotalloc
	_ = lits
	m := map[int]int{} // want hotalloc
	_ = m
	box(n) // want hotalloc
}
`)
}

// A chained concatenation a+b+c is one allocation cascade and must read
// as one finding, not one per + operator.
func TestHotAllocReportsChainedConcatOnce(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

//corral:hotpath
func chain(a, b, c string) string {
	return a + b + c
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{HotAlloc})
	if len(diags) != 1 {
		t.Fatalf("want one finding for the whole chain, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "string concatenation") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

// TestHotAllocFiresOnSeededBug backs the acceptance criterion "seeding a
// fmt.Sprintf into a hotpath function makes make vet fail".
func TestHotAllocFiresOnSeededBug(t *testing.T) {
	pkg := checkFixture(t, "corral/internal/fixture", `package fixture

import "fmt"

//corral:hotpath
func seeded(n int) string {
	return fmt.Sprintf("rate=%d", n)
}
`)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{HotAlloc})
	if len(diags) != 1 {
		t.Fatalf("seeded fmt.Sprintf on a hotpath: want exactly 1 finding, got %v", diags)
	}
	d := diags[0]
	if d.Check != "hotalloc" || !strings.Contains(d.Message, "fmt.Sprintf") || d.Fix == "" {
		t.Errorf("finding should name fmt.Sprintf and carry a fix: %+v", d)
	}
}

// The marker must sit in the doc comment; one buried in the body does
// not opt the function in.
func TestHotAllocMarkerMustBeInDocComment(t *testing.T) {
	runFixture(t, HotAlloc, `package fixture

import "fmt"

func notMarked(n int) string {
	//corral:hotpath
	return fmt.Sprintf("%d", n)
}
`)
}
