package analysis

import "testing"

func TestWallClockInSimPackage(t *testing.T) {
	runFixture(t, WallClock, `package fixture

import "time"

func elapsed() float64 {
	start := time.Now() // want wallclock
	time.Sleep(time.Millisecond) // want wallclock
	return time.Since(start).Seconds() // want wallclock
}
`)
}

func TestWallClockPureTimeUseIsSilent(t *testing.T) {
	runFixture(t, WallClock, `package fixture

import "time"

func format(d time.Duration) string {
	return d.String()
}

func seconds(d time.Duration) float64 {
	return d.Seconds()
}
`)
}

func TestWallClockOutsideInternalIsSilent(t *testing.T) {
	runFixture(t, WallClock, `package main

import "time"

func main() {
	_ = time.Now()
}
`, "corral/cmd/tool")
}

func TestWallClockSuppression(t *testing.T) {
	runFixture(t, WallClock, `package fixture

import "time"

func plannerWallTime() float64 {
	start := time.Now() //corralvet:ok wallclock measuring the planner itself, not simulated time
	//corralvet:ok wallclock measuring the planner itself, not simulated time
	return time.Since(start).Seconds()
}
`)
}
