package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands (including
// named float types such as des.Time). Computed floats — rates, demands,
// completion times — accumulate rounding, so exact comparison encodes an
// assumption about the arithmetic that silently breaks when evaluation
// order changes; use an epsilon comparison helper instead.
//
// Two idioms are exempt because exact comparison is the correct tool:
//
//   - comparisons against compile-time constants (x == 0, x != sentinel):
//     exact-representation checks on values the program assigned
//     literally, the dominant deliberate pattern in this codebase;
//   - comparisons inside comparator-shaped functions — func(T, T) bool
//     with non-float T, i.e. sort.Slice literals, Less methods, and named
//     tie-break helpers — where an epsilon would destroy the strict weak
//     ordering that sorting requires.
//
// Remaining intentional exact comparisons (e.g. same-instant event
// coalescing on des.Time) carry a //corralvet:ok floateq <reason>
// annotation.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= between computed float operands; compare with an epsilon helper",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Walk(&floatEqWalker{pass: pass}, file)
	}
}

// floatEqWalker tracks the innermost enclosing function so comparator
// bodies can be exempted.
type floatEqWalker struct {
	pass         *Pass
	inComparator bool
}

func (w *floatEqWalker) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl:
		sig, _ := w.pass.Info.Defs[n.Name].Type().(*types.Signature)
		return &floatEqWalker{pass: w.pass, inComparator: comparatorShaped(sig)}
	case *ast.FuncLit:
		sig, _ := w.pass.Info.Types[n].Type.(*types.Signature)
		return &floatEqWalker{pass: w.pass, inComparator: comparatorShaped(sig)}
	case *ast.BinaryExpr:
		w.check(n)
	}
	return w
}

func (w *floatEqWalker) check(be *ast.BinaryExpr) {
	if w.inComparator || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	xt, xok := w.pass.Info.Types[be.X]
	yt, yok := w.pass.Info.Types[be.Y]
	if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
		return
	}
	// Constant operand => sentinel check, allowed.
	if xt.Value != nil || yt.Value != nil {
		return
	}
	w.pass.Reportf(be.OpPos,
		"%s %s %s compares computed floats exactly; use an epsilon comparison (or annotate if exact identity is intended)",
		exprString(be.X), be.Op, exprString(be.Y))
}

// comparatorShaped reports whether sig is func(T, T) bool with non-float
// T: the shape of sort comparators and tie-break helpers, where exact
// float comparison is required for a strict weak ordering. A float T
// (func(a, b float64) bool) is exactly the epsilon-helper shape and is
// not exempt.
func comparatorShaped(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params, results := sig.Params(), sig.Results()
	if params.Len() != 2 || results.Len() != 1 {
		return false
	}
	rb, ok := results.At(0).Type().Underlying().(*types.Basic)
	if !ok || rb.Kind() != types.Bool {
		return false
	}
	t0, t1 := params.At(0).Type(), params.At(1).Type()
	return types.Identical(t0, t1) && !isFloat(t0)
}
