package analysis

import "testing"

// BenchmarkCorralvetSelfRun times the full nine-analyzer suite over the
// whole module. Loading is excluded from the timed region: the source
// importer dominates wall time and measures the host filesystem, not the
// analyzers. The findings metric is semantic — the tree must be
// corralvet-clean, so the bench-regression gate pins it at zero; the
// packages metric tracks suite coverage and moves only when packages are
// added or removed (refresh the baseline with `make bench`).
func BenchmarkCorralvetSelfRun(b *testing.B) {
	pkgs, err := Load(LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		b.Fatal(err)
	}
	suite := Analyzers()
	var findings int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings = len(RunAnalyzers(pkgs, suite))
	}
	b.ReportMetric(float64(findings), "findings")
	b.ReportMetric(float64(len(pkgs)), "packages")
}
