package analysis

import (
	"go/ast"
	"go/types"
)

// CtxTime flags direct numeric conversions between time.Duration and
// floating-point types. The simulator stores all durations as float
// seconds (des.Time); time.Duration counts integer nanoseconds. A bare
// float64(d) or time.Duration(f) silently mixes the two scales by a
// factor of 1e9 — the correct bridges are d.Seconds() on the way out and
// an expression scaled by time.Second (e.g.
// time.Duration(sec * float64(time.Second))) on the way in.
//
// Conversions whose argument already mentions a time.Duration operand
// (the time.Second scale factor) are recognized as scale-aware and not
// flagged.
var CtxTime = &Analyzer{
	Name: "ctxtime",
	Doc:  "bare conversion between time.Duration (ns) and float seconds; use d.Seconds() or scale by time.Second",
	Run:  runCtxTime,
}

func runCtxTime(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			target, isConv := conversionTo(pass.Info, call)
			if !isConv {
				return true
			}
			arg := call.Args[0]
			argTV, ok := pass.Info.Types[arg]
			if !ok {
				return true
			}
			switch {
			case isDuration(target) && isFloatNotDuration(argTV.Type):
				if mentionsDuration(pass.Info, arg) {
					return true // scaled by time.Second or similar
				}
				pass.Reportf(call.Pos(),
					"time.Duration(%s) interprets float seconds as nanoseconds; scale by time.Second first",
					exprString(arg))
			case isFloatNotDuration(target) && isDuration(argTV.Type):
				if argTV.Value != nil {
					return true // float64(time.Second): the scale-factor idiom
				}
				pass.Reportf(call.Pos(),
					"%s(%s) yields raw nanoseconds as a float; use (%s).Seconds() for seconds",
					exprString(call.Fun), exprString(arg), exprString(arg))
			}
			return true
		})
	}
}

// isFloatNotDuration reports a floating-point type (Duration itself is
// integer-based, but guard anyway against named wrappers).
func isFloatNotDuration(t types.Type) bool {
	return isFloat(t) && !isDuration(t)
}
