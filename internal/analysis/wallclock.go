package analysis

import (
	"go/ast"
)

// WallClock flags wall-clock time inside simulation packages (anything
// under <module>/internal/). Simulation time must come exclusively from
// the virtual clock in internal/des; reading the host clock makes a run
// a function of the machine it ran on instead of (inputs, seed).
//
// Deliberate wall-clock measurements (e.g. reporting the planner's own
// running time in internal/experiments) are annotated with
// //corralvet:ok wallclock <reason>.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock time (time.Now/Since/Sleep/...) inside simulation packages; use the internal/des virtual clock",
	Run:  runWallClock,
}

// wallClockFuncs are time-package functions that read or depend on the
// host clock. Pure constructors and formatters (time.Date, time.Unix,
// d.Seconds) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallClock(pass *Pass) {
	if !isSimPackage(pass) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.Info, call, "time", wallClockFuncs) {
				f := calleeFunc(pass.Info, call)
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock inside a simulation package; simulated time must come from internal/des (Simulator.Now)",
					f.Name())
			}
			return true
		})
	}
}
