package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// TraceArg structurally enforces the tracer's zero-alloc disabled-path
// contract (internal/trace, "Nil safety / zero overhead when disabled"):
// every *emit method* — an exported method on *trace.Tracer with no
// results — must
//
//  1. be declared on the pointer receiver with a named receiver (a value
//     receiver cannot observe a nil tracer),
//  2. begin with the literal nil guard `if t == nil { return }` as its
//     very first statement, with no init clause — so nothing, allocation
//     or otherwise, runs before the disabled path bails out, and
//  3. take only scalar-shaped parameters: basics (ints, floats, bool,
//     string), named types over basics (trace.Role, des.Time), and
//     slices/arrays of those. Interface parameters (including any),
//     variadics, maps, chans, funcs and pointers are banned — they box
//     or tempt callers into building arguments before the guard.
//
// TestDisabledTracerZeroAlloc and BenchmarkTracerDisabledEmit pin the
// same contract dynamically, but only for the emit methods and argument
// shapes they happen to exercise; this check covers every method,
// including ones added after the benchmark was written.
var TraceArg = &Analyzer{
	Name: "tracearg",
	Doc:  "trace.Tracer emit methods must start with the nil-receiver guard and take scalar/string params only",
	Run:  runTraceArg,
}

func runTraceArg(pass *Pass) {
	tracerPath := pass.Module + "/internal/trace"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Recv() == nil || sig.Results().Len() > 0 || !fd.Name.IsExported() {
				continue // accessors (Enabled, Label, Events) and helpers are not emit methods
			}
			recv := sig.Recv().Type()
			ptr, isPtr := recv.(*types.Pointer)
			named, _ := recv.(*types.Named)
			if isPtr {
				named, _ = ptr.Elem().(*types.Named)
			}
			if !namedIs(named, tracerPath, "Tracer") {
				continue
			}
			checkEmitMethod(pass, fd, sig, isPtr)
		}
	}
}

func checkEmitMethod(pass *Pass, fd *ast.FuncDecl, sig *types.Signature, ptrRecv bool) {
	if !ptrRecv {
		pass.Report(Finding{
			Pos:     fd.Name.Pos(),
			Message: "emit method " + fd.Name.Name + " has a value receiver: a nil *Tracer can never reach it, so the disabled path breaks",
			Fix:     "declare the method on *Tracer and start with `if t == nil { return }`",
		})
		return // the guard checks below presuppose a pointer receiver
	}
	if sig.Variadic() {
		pass.Report(Finding{
			Pos:     fd.Name.Pos(),
			Message: "emit method " + fd.Name.Name + " is variadic: callers allocate the argument slice before the nil guard can bail out",
			Fix:     "take a fixed scalar parameter list",
		})
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if scalarShaped(p.Type()) {
			continue
		}
		name := p.Name()
		if name == "" || name == "_" {
			name = "#" + strconv.Itoa(i)
		}
		pass.Report(Finding{
			Pos: fd.Name.Pos(),
			Message: "emit method " + fd.Name.Name + " parameter " + name + " has type " + p.Type().String() +
				": emit methods take only scalars, strings, and slices of those, so the disabled path cannot box or build arguments",
			Fix: "pass the underlying scalars and format inside the method after the nil guard",
		})
	}
	checkNilGuard(pass, fd)
}

// checkNilGuard requires the method body to open with `if <recv> == nil
// { return }` — no init statement, nil on either side, a bare return.
func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		recvName = names[0].Name
	}
	if recvName == "" {
		pass.Report(Finding{
			Pos:     fd.Name.Pos(),
			Message: "emit method " + fd.Name.Name + " has an unnamed receiver, so it cannot nil-guard the disabled path",
			Fix:     "name the receiver and start with `if t == nil { return }`",
		})
		return
	}
	bad := func() {
		pass.Report(Finding{
			Pos:     fd.Name.Pos(),
			Message: "emit method " + fd.Name.Name + " must begin with `if " + recvName + " == nil { return }` before any other work",
			Fix:     "make the nil-receiver guard the first statement",
		})
	}
	if len(fd.Body.List) == 0 {
		bad()
		return
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		bad()
		return
	}
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL || !isRecvNilComparison(pass, cond, recvName) {
		bad()
		return
	}
	if len(ifs.Body.List) != 1 {
		bad()
		return
	}
	ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 0 {
		bad()
		return
	}
}

// isRecvNilComparison matches `recv == nil` or `nil == recv`.
func isRecvNilComparison(pass *Pass, cond *ast.BinaryExpr, recvName string) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recvName
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && tv.IsNil()
	}
	return (isRecv(cond.X) && isNil(cond.Y)) || (isNil(cond.X) && isRecv(cond.Y))
}

// scalarShaped reports whether t is allowed in an emit signature: basic
// kinds, named types whose underlying is basic, and slices/arrays of
// scalar-shaped element types.
func scalarShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Slice:
		return scalarShaped(u.Elem())
	case *types.Array:
		return scalarShaped(u.Elem())
	}
	return false
}
