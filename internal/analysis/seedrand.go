package analysis

import (
	"go/ast"
)

// SeedRand flags randomness that does not flow through an injected,
// seeded *rand.Rand: the math/rand (and math/rand/v2) package-level
// functions draw from a shared global source — auto-seeded since Go 1.20,
// so two runs of the same binary produce different streams — and
// time-seeded sources are nondeterministic by construction.
//
// The approved pattern everywhere in this codebase is
//
//	rng := rand.New(rand.NewSource(seed))
//
// with rng threaded explicitly to every consumer.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc:  "global math/rand top-level functions or time-seeded sources; thread a seeded *rand.Rand instead",
	Run:  runSeedRand,
}

// globalRandFuncs are math/rand package-level functions backed by the
// process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// globalRandV2Funcs is the math/rand/v2 equivalent.
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

// randConstructors take a seed or source; a wall-clock expression inside
// their arguments defeats reproducibility even though the constructor
// itself is fine.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeedRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.Info, call, "math/rand", globalRandFuncs) ||
				isPkgFunc(pass.Info, call, "math/rand/v2", globalRandV2Funcs) {
				f := calleeFunc(pass.Info, call)
				pass.Reportf(call.Pos(),
					"rand.%s uses the auto-seeded global source; draw from an injected seeded *rand.Rand instead",
					f.Name())
				return true
			}
			if isPkgFunc(pass.Info, call, "math/rand", randConstructors) ||
				isPkgFunc(pass.Info, call, "math/rand/v2", randConstructors) {
				for _, arg := range call.Args {
					if containsWallClockCall(pass, arg) {
						pass.Reportf(call.Pos(),
							"random source seeded from the wall clock; seeds must be explicit inputs")
						return true
					}
				}
			}
			return true
		})
	}
}

// containsWallClockCall reports whether e contains a call into the time
// package's clock readers (time.Now().UnixNano() and friends).
func containsWallClockCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(pass.Info, call, "time", wallClockFuncs) {
			found = true
			return false
		}
		return true
	})
	return found
}
