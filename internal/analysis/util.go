package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for builtins, conversions,
// and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether call invokes a package-level function of
// pkgPath whose name is in names.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return names[f.Name()]
}

// recvNamed returns the defined type of a method call's receiver
// (dereferencing a pointer receiver), or nil for non-method calls.
func recvNamed(info *types.Info, call *ast.CallExpr) *types.Named {
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedIs reports whether n is the defined type pkgPath.name.
func namedIs(n *types.Named, pkgPath, name string) bool {
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isFloat reports whether t's underlying type is a floating-point kind
// (covering named float types like des.Time).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isDuration reports whether t is exactly time.Duration.
func isDuration(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && namedIs(n, "time", "Duration")
}

// mentionsDuration reports whether any operand inside e has type
// time.Duration (e.g. the time.Second in f*float64(time.Second)), which
// marks a scale-aware expression.
func mentionsDuration(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[x]; ok && isDuration(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSimPackage reports whether the pass's package is simulation code:
// anything under <module>/internal/.
func isSimPackage(pass *Pass) bool {
	prefix := pass.Module + "/internal/"
	return strings.HasPrefix(pass.Pkg.Path(), prefix) ||
		strings.HasPrefix(strings.TrimSuffix(pass.Pkg.Path(), "_test"), prefix)
}

// conversionTo reports whether call is a type conversion and returns the
// target type if so.
func conversionTo(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}
