// Package analysis implements corralvet, a vet-style static-analysis
// suite enforcing the simulator's determinism contract (see DESIGN.md,
// "Determinism contract"). Every experiment result in EXPERIMENTS.md
// depends on a run being a pure function of (inputs, seed); the analyzers
// here turn the hand-maintained conventions that guarantee that — sorted
// map iteration, virtual time only, injected seeded randomness, no exact
// float equality, no second-scale/nanosecond-scale mixing — into
// build-time diagnostics.
//
// The package is stdlib-only: packages are loaded with go/parser and
// type-checked with go/types backed by the source importer, so go.mod
// stays dependency-free.
//
// A finding that is intentional is suppressed with a comment on the same
// line or the line directly above:
//
//	//corralvet:ok <check> <reason>
//
// The reason is mandatory; an annotation without one is itself reported.
//
// Determinism obligations of this package: corralvet only reads source
// trees; its diagnostics are emitted in (file, line, column) order so its
// own output is stable across runs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and suppressions
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the module path ("corral"); analyzers that apply only to
	// simulation packages test Pkg.Path() against Module + "/internal/".
	Module string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzers returns the full corralvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		SeedRand,
		FloatEq,
		CtxTime,
	}
}

// ByName resolves a comma-separated check list ("maporder,floateq").
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q", n)
		}
	}
	return out, nil
}

// suppressionDirective is the comment prefix recognized on the flagged
// line or the line directly above it.
const suppressionDirective = "corralvet:ok"

// suppressionKey identifies one (file, line) slot.
type suppressionKey struct {
	file string
	line int
}

// suppressions maps (file, line) -> set of suppressed check names.
type suppressions map[suppressionKey]map[string]bool

// collectSuppressions scans the comments of files for corralvet:ok
// directives. Malformed directives (no check name, or no reason) are
// returned as diagnostics so they cannot silently suppress nothing.
func collectSuppressions(fset *token.FileSet, files []*ast.File, knownChecks map[string]bool) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressionDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, suppressionDirective))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: "malformed suppression: want //corralvet:ok <check> <reason>"})
					continue
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: fmt.Sprintf("suppression of %q needs a reason: //corralvet:ok %s <reason>", fields[0], fields[0])})
					continue
				case knownChecks != nil && !knownChecks[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: fmt.Sprintf("suppression names unknown check %q", fields[0])})
					continue
				}
				k := suppressionKey{file: pos.Filename, line: pos.Line}
				if sup[k] == nil {
					sup[k] = map[string]bool{}
				}
				sup[k][fields[0]] = true
			}
		}
	}
	return sup, bad
}

// suppressed reports whether d is covered by a directive on its line or
// the line directly above.
func (s suppressions) suppressed(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if s[suppressionKey{file: d.Pos.Filename, line: line}][d.Check] {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the given analyzers to every package and returns
// the surviving (non-suppressed) diagnostics in (file, line, col, check)
// order, plus diagnostics for malformed suppression comments.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   pkg.Module,
				diags:    &raw,
			}
			a.Run(pass)
		}
		sup, bad := collectSuppressions(pkg.Fset, pkg.Files, known)
		for _, d := range raw {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
		out = append(out, bad...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// exprString renders an expression compactly for diagnostics and for the
// collected-and-sorted idiom match in maporder (textual identity is
// sufficient there: the idiom appends to and sorts the same local).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.BasicLit:
		return e.Value
	}
	return "<expr>"
}
