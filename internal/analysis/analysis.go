// Package analysis implements corralvet, a vet-style static-analysis
// suite enforcing the simulator's determinism contract (see DESIGN.md,
// "Determinism contract"). Every experiment result in EXPERIMENTS.md
// depends on a run being a pure function of (inputs, seed); the analyzers
// here turn the hand-maintained conventions that guarantee that — sorted
// map iteration, virtual time only, injected seeded randomness, no exact
// float equality, no second-scale/nanosecond-scale mixing — into
// build-time diagnostics.
//
// The package is stdlib-only: packages are loaded with go/parser and
// type-checked with go/types backed by the source importer, so go.mod
// stays dependency-free.
//
// A finding that is intentional is suppressed with a comment on the same
// line or the line directly above:
//
//	//corralvet:ok <check> <reason>
//
// The reason is mandatory; an annotation without one is itself reported.
//
// Determinism obligations of this package: corralvet only reads source
// trees; its diagnostics are emitted in (file, line, column) order so its
// own output is stable across runs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and suppressions
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the module path ("corral"); analyzers that apply only to
	// simulation packages test Pkg.Path() against Module + "/internal/".
	Module string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic under construction: analyzers hand token.Pos
// values and Report resolves them against the pass's FileSet, so checks
// never deal in token.Position directly.
type Finding struct {
	Pos     token.Pos
	Message string
	Related []RelatedPos // optional secondary positions (e.g. the parallelFor call a closure was passed to)
	Fix     string       // optional suggested-fix text, shown by -json consumers and CI annotations
}

// RelatedPos is one secondary position of a Finding.
type RelatedPos struct {
	Pos     token.Pos
	Message string
}

// Report records a structured diagnostic.
func (p *Pass) Report(f Finding) {
	d := Diagnostic{
		Pos:     p.Fset.Position(f.Pos),
		Check:   p.Analyzer.Name,
		Message: f.Message,
		Fix:     f.Fix,
	}
	for _, r := range f.Related {
		d.Related = append(d.Related, Related{Pos: p.Fset.Position(r.Pos), Message: r.Message})
	}
	*p.diags = append(*p.diags, d)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	Related []Related // secondary positions, in analyzer-chosen order
	Fix     string    // suggested fix, empty when the analyzer has none
}

// Related is a resolved secondary position attached to a Diagnostic.
type Related struct {
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	for _, r := range d.Related {
		s += fmt.Sprintf("\n\t%s:%d:%d: %s", r.Pos.Filename, r.Pos.Line, r.Pos.Column, r.Message)
	}
	if d.Fix != "" {
		s += fmt.Sprintf("\n\tfix: %s", d.Fix)
	}
	return s
}

// Analyzers returns the full corralvet suite in stable order: the five
// determinism checks from v1, then the v2 concurrency/allocation contract
// checks, then the suppression-inventory audit.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		SeedRand,
		FloatEq,
		CtxTime,
		SweepSafe,
		HotAlloc,
		TraceArg,
		SuppressStale,
	}
}

// ByName resolves a comma-separated check list ("maporder,floateq").
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q", n)
		}
	}
	return out, nil
}

// Select resolves the -checks / -skip pair: checks names the subset to
// run (empty means all), skip removes checks from that subset. Both
// validate their names so a typo cannot silently run the wrong gate.
func Select(checks, skip string) ([]*Analyzer, error) {
	selected, err := ByName(checks)
	if err != nil {
		return nil, err
	}
	if skip == "" {
		return selected, nil
	}
	drop, err := ByName(skip)
	if err != nil {
		return nil, err
	}
	dropSet := map[string]bool{}
	for _, a := range drop {
		dropSet[a.Name] = true
	}
	var out []*Analyzer
	for _, a := range selected {
		if !dropSet[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("check selection %q minus %q leaves nothing to run", checks, skip)
	}
	return out, nil
}

// suppressionDirective is the comment prefix recognized on the flagged
// line or the line directly above it.
const suppressionDirective = "corralvet:ok"

// suppressionKey identifies one (file, line) slot.
type suppressionKey struct {
	file string
	line int
}

// suppression is one well-formed //corralvet:ok directive. used flips
// when the directive absorbs at least one raw diagnostic, which is what
// the suppressstale audit cross-references.
type suppression struct {
	pos  token.Position // the directive comment itself
	used bool
}

// suppressions maps (file, line) -> suppressed check name -> directive.
type suppressions map[suppressionKey]map[string]*suppression

// collectSuppressions scans the comments of files for corralvet:ok
// directives. Malformed directives (no check name, or no reason) are
// returned as diagnostics so they cannot silently suppress nothing.
func collectSuppressions(fset *token.FileSet, files []*ast.File, knownChecks map[string]bool) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressionDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, suppressionDirective))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: "malformed suppression: want //corralvet:ok <check> <reason>"})
					continue
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: fmt.Sprintf("suppression of %q needs a reason: //corralvet:ok %s <reason>", fields[0], fields[0])})
					continue
				case knownChecks != nil && !knownChecks[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Check: "corralvet",
						Message: fmt.Sprintf("suppression names unknown check %q", fields[0])})
					continue
				}
				k := suppressionKey{file: pos.Filename, line: pos.Line}
				if sup[k] == nil {
					sup[k] = map[string]*suppression{}
				}
				sup[k][fields[0]] = &suppression{pos: pos}
			}
		}
	}
	return sup, bad
}

// suppressed reports whether d is covered by a directive on its line or
// the line directly above, marking every covering directive as used (a
// diagnostic reachable from two directives keeps both alive).
func (s suppressions) suppressed(d Diagnostic) bool {
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if sup := s[suppressionKey{file: d.Pos.Filename, line: line}][d.Check]; sup != nil {
			sup.used = true
			hit = true
		}
	}
	return hit
}

// Timings is per-analyzer elapsed time summed over all packages.
type Timings map[string]time.Duration

// RunAnalyzers applies the given analyzers to every package and returns
// the surviving (non-suppressed) diagnostics in (file, line, col, check)
// order, plus diagnostics for malformed suppression comments and (when
// the suppressstale audit is selected) for directives that no longer
// suppress anything.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(pkgs, analyzers, nil)
	return diags
}

// RunAnalyzersTimed is RunAnalyzers with per-check wall-clock attribution
// for `corralvet -v`. The clock is injected (pass time.Now) so this
// package itself never reads the host clock; a nil clock skips timing.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer, clock func() time.Time) ([]Diagnostic, Timings) {
	known := map[string]bool{}
	auditStale := false
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		if a == SuppressStale {
			auditStale = true
		}
	}
	var timings Timings
	if clock != nil {
		timings = Timings{}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   pkg.Module,
				diags:    &raw,
			}
			if clock == nil {
				a.Run(pass)
				continue
			}
			start := clock()
			a.Run(pass)
			timings[a.Name] += clock().Sub(start)
		}
		sup, bad := collectSuppressions(pkg.Fset, pkg.Files, known)
		for _, d := range raw {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
		out = append(out, bad...)
		if auditStale {
			out = append(out, auditSuppressions(sup, ran)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, timings
}

// exprString renders an expression compactly for diagnostics and for the
// collected-and-sorted idiom match in maporder (textual identity is
// sufficient there: the idiom appends to and sorts the same local).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.BasicLit:
		return e.Value
	}
	return "<expr>"
}
