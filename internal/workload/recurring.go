package workload

import (
	"math"
	"math/rand"
)

// Recurring-job telemetry (§2, Fig 1): production recurring jobs run the
// same script whenever new data arrives, so per-instance input sizes form
// a predictable time series with weekday/weekend structure. The paper
// predicts a job instance's input size by averaging the same job's
// instances at the same time of day over previous days of the same class
// (weekday vs weekend), reaching ~6.5% mean absolute percentage error.

// Instance is one run of a recurring job.
type Instance struct {
	Day       int     // 0-based day index
	SlotOfDay int     // which run within the day
	InputSize float64 // bytes
}

// Series is one recurring job's instance history.
type Series struct {
	Name       string
	RunsPerDay int
	Instances  []Instance
	baseSize   float64
}

// SeriesConfig controls synthetic telemetry generation.
type SeriesConfig struct {
	Seed       int64
	Jobs       int     // number of distinct recurring jobs (paper: 20)
	Days       int     // history length (paper: ~30)
	RunsPerDay int     // instances per day per job
	Noise      float64 // lognormal sigma of day-to-day noise (~0.065 for 6.5%)
}

func (c SeriesConfig) withDefaults() SeriesConfig {
	if c.Jobs == 0 {
		c.Jobs = 20
	}
	if c.Days == 0 {
		c.Days = 30
	}
	if c.RunsPerDay == 0 {
		c.RunsPerDay = 4
	}
	if c.Noise == 0 {
		c.Noise = 0.065
	}
	return c
}

// GenerateSeries produces synthetic recurring-job telemetry: each job has
// a base size (log-uniform across GB..tens of TB, as in Fig 1), a diurnal
// slot factor, a weekday/weekend factor, and multiplicative lognormal
// noise.
func GenerateSeries(cfg SeriesConfig) []Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Series, cfg.Jobs)
	for ji := range out {
		base := math.Exp(math.Log(1*GB) + rng.Float64()*(math.Log(30000*GB)-math.Log(1*GB)))
		weekendFactor := 0.4 + rng.Float64()*0.4 // weekends carry less data
		slotFactor := make([]float64, cfg.RunsPerDay)
		for s := range slotFactor {
			slotFactor[s] = 0.7 + rng.Float64()*0.6
		}
		s := Series{Name: "recurring-" + itoa(ji+1), RunsPerDay: cfg.RunsPerDay, baseSize: base}
		for d := 0; d < cfg.Days; d++ {
			f := 1.0
			if isWeekend(d) {
				f = weekendFactor
			}
			for slot := 0; slot < cfg.RunsPerDay; slot++ {
				noise := math.Exp(cfg.Noise * rng.NormFloat64())
				s.Instances = append(s.Instances, Instance{
					Day:       d,
					SlotOfDay: slot,
					InputSize: base * f * slotFactor[slot] * noise,
				})
			}
		}
		out[ji] = s
	}
	return out
}

// isWeekend labels days 5 and 6 of each 7-day week.
func isWeekend(day int) bool { return day%7 >= 5 }

// Predict estimates the input size of the instance on (day, slot) by
// averaging the same slot on previous days of the same weekday/weekend
// class — the paper's predictor. It returns 0 when no history exists.
func (s *Series) Predict(day, slot int) float64 {
	weekend := isWeekend(day)
	sum, n := 0.0, 0
	for _, inst := range s.Instances {
		if inst.Day >= day || inst.SlotOfDay != slot {
			continue
		}
		if isWeekend(inst.Day) != weekend {
			continue
		}
		sum += inst.InputSize
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Actual returns the recorded instance size at (day, slot), or 0.
func (s *Series) Actual(day, slot int) float64 {
	for _, inst := range s.Instances {
		if inst.Day == day && inst.SlotOfDay == slot {
			return inst.InputSize
		}
	}
	return 0
}

// PredictionError returns the mean absolute percentage error of the
// predictor evaluated on every instance from warmupDays onward.
func PredictionError(series []Series, warmupDays int) float64 {
	sum, n := 0.0, 0
	for si := range series {
		s := &series[si]
		for _, inst := range s.Instances {
			if inst.Day < warmupDays {
				continue
			}
			pred := s.Predict(inst.Day, inst.SlotOfDay)
			if pred <= 0 {
				continue
			}
			sum += math.Abs(pred-inst.InputSize) / inst.InputSize
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
