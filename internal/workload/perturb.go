package workload

import (
	"math/rand"

	"corral/internal/job"
)

// Sensitivity-analysis helpers (§6.5, Fig 13): the planner plans on one
// version of the workload while the cluster runs another — either the data
// sizes differ (prediction error) or arrivals shift (upload/dependency
// delays).

// Clone deep-copies a job list so one copy can be perturbed independently.
func Clone(jobs []*job.Job) []*job.Job {
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := *j
		c.Stages = append([]job.Stage(nil), j.Stages...)
		for si := range c.Stages {
			c.Stages[si].Upstream = append([]int(nil), j.Stages[si].Upstream...)
		}
		out[i] = &c
	}
	return out
}

// PerturbSizes returns a deep copy of jobs whose data volumes are each
// multiplied by an independent uniform factor in [1-errFrac, 1+errFrac]
// (Fig 13a's error injection: "we varied the amount of data processed by
// jobs up to 50%").
func PerturbSizes(jobs []*job.Job, errFrac float64, seed int64) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	out := Clone(jobs)
	for _, j := range out {
		f := 1 + (rng.Float64()*2-1)*errFrac
		if f < 0.01 {
			f = 0.01
		}
		for si := range j.Stages {
			p := &j.Stages[si].Profile
			p.InputBytes *= f
			p.ShuffleBytes *= f
			p.OutputBytes *= f
		}
	}
	return out
}

// PerturbArrivals returns a deep copy of jobs where a fraction of jobs
// gets a random start-time shift in [-delay, +delay] seconds, clamped at
// zero (Fig 13b: f of the jobs delayed within ±t).
func PerturbArrivals(jobs []*job.Job, fraction, delay float64, seed int64) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	out := Clone(jobs)
	for _, j := range out {
		if rng.Float64() >= fraction {
			continue
		}
		j.Arrival += (rng.Float64()*2 - 1) * delay
		if j.Arrival < 0 {
			j.Arrival = 0
		}
	}
	return out
}

// MarkAdHoc flags every job in the list as ad hoc (unplannable) and
// returns the list for chaining.
func MarkAdHoc(jobs []*job.Job) []*job.Job {
	for _, j := range jobs {
		j.AdHoc = true
		j.Recurring = false
	}
	return jobs
}

// Renumber re-assigns contiguous IDs starting at first so two generated
// lists can be merged without collisions.
func Renumber(jobs []*job.Job, first int) []*job.Job {
	for i, j := range jobs {
		j.ID = first + i
	}
	return jobs
}
