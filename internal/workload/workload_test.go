package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"corral/internal/job"
)

func validateAll(t *testing.T, jobs []*job.Job) {
	t.Helper()
	seen := map[int]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
}

func TestW1Mix(t *testing.T) {
	jobs := W1(Config{Seed: 1})
	if len(jobs) != 90 {
		t.Fatalf("W1 default = %d jobs, want 90", len(jobs))
	}
	validateAll(t, jobs)
	var small, medium, large int
	for _, j := range jobs {
		switch j.Name {
		case "w1-small":
			small++
			if j.Slots() > 60 {
				t.Fatalf("small job with %d slots", j.Slots())
			}
		case "w1-medium":
			medium++
		case "w1-large":
			large++
			if j.Slots() < 500 {
				t.Fatalf("large job with only %d slots", j.Slots())
			}
		}
	}
	if small == 0 || medium == 0 || large == 0 {
		t.Fatalf("missing size class: %d/%d/%d", small, medium, large)
	}
	// Selectivity range: shuffle within [in/4, 4in].
	for _, j := range jobs {
		r := j.ShuffleBytes() / j.InputBytes()
		if r < 0.2 || r > 5 {
			t.Fatalf("selectivity %g outside the 4:1..1:4 envelope", r)
		}
	}
}

func TestW2Skew(t *testing.T) {
	jobs := W2(Config{Seed: 2})
	if len(jobs) != 400 {
		t.Fatalf("W2 default = %d jobs, want 400", len(jobs))
	}
	validateAll(t, jobs)
	giants := 0
	tiny := 0
	for _, j := range jobs {
		switch j.Name {
		case "w2-giant":
			giants++
			if got := j.ShuffleBytes() / j.InputBytes(); math.Abs(got-1.8) > 0.01 {
				t.Fatalf("giant shuffle ratio = %g, want 1.8", got)
			}
			if j.InputBytes() < 5000*GB {
				t.Fatalf("giant input = %g, want ~5.5TB", j.InputBytes())
			}
		case "w2-tiny":
			tiny++
			if j.InputBytes() > 200e6 {
				t.Fatalf("tiny job input = %g > 200MB", j.InputBytes())
			}
			if j.ShuffleBytes() > 75e6 {
				t.Fatalf("tiny job shuffle = %g > 75MB", j.ShuffleBytes())
			}
		}
	}
	if giants != 2 {
		t.Fatalf("giants = %d, want 2", giants)
	}
	if float64(tiny) < 0.85*float64(len(jobs)) {
		t.Fatalf("tiny fraction = %d/%d, want ~90%%", tiny, len(jobs))
	}
}

func TestW3MatchesTable1(t *testing.T) {
	jobs := W3(Config{Seed: 3, Jobs: 4000}) // large sample for stable stats
	validateAll(t, jobs)
	var inputs, shuffles, tasks []float64
	for _, j := range jobs {
		inputs = append(inputs, j.InputBytes())
		shuffles = append(shuffles, j.ShuffleBytes())
		tasks = append(tasks, float64(j.TotalTasks()))
	}
	p := func(v []float64, q float64) float64 {
		sort.Float64s(v)
		return v[int(q*float64(len(v)-1))]
	}
	// Table 1: input 7.1 / 162.3 GB, shuffle 6 / 71.5 GB at p50/p95.
	if got := p(inputs, 0.5) / GB; got < 5 || got > 10 {
		t.Fatalf("W3 median input = %.1f GB, want ~7.1", got)
	}
	if got := p(inputs, 0.95) / GB; got < 110 || got > 230 {
		t.Fatalf("W3 p95 input = %.1f GB, want ~162", got)
	}
	if got := p(shuffles, 0.5) / GB; got < 4 || got > 9 {
		t.Fatalf("W3 median shuffle = %.1f GB, want ~6", got)
	}
	if got := p(shuffles, 0.95) / GB; got < 50 || got > 100 {
		t.Fatalf("W3 p95 shuffle = %.1f GB, want ~71.5", got)
	}
}

func TestTPCHDags(t *testing.T) {
	jobs := TPCH(Config{Seed: 4}, 0)
	if len(jobs) != 15 {
		t.Fatalf("TPCH = %d queries, want 15", len(jobs))
	}
	validateAll(t, jobs)
	for _, j := range jobs {
		if !j.IsDAG() {
			t.Fatalf("query %s is not a DAG", j.Name)
		}
		if len(j.Stages) < 3 {
			t.Fatalf("query %s has %d stages, want >= 3 (scan+join+agg)", j.Name, len(j.Stages))
		}
		// Scans dominate bytes: input >> total shuffle (CPU/disk-bound).
		if j.ShuffleBytes() > j.InputBytes() {
			t.Fatalf("query %s shuffle %g > input %g", j.Name, j.ShuffleBytes(), j.InputBytes())
		}
	}
}

func TestScaleShrinksBytesNotStructure(t *testing.T) {
	full := W1(Config{Seed: 5})
	scaled := W1(Config{Seed: 5, Scale: 0.1})
	if len(full) != len(scaled) {
		t.Fatal("scale changed job count")
	}
	for i := range full {
		ratio := scaled[i].InputBytes() / full[i].InputBytes()
		if math.Abs(ratio-0.1) > 1e-9 {
			t.Fatalf("job %d scale ratio = %g, want 0.1", i, ratio)
		}
	}
}

func TestArrivalWindow(t *testing.T) {
	jobs := W1(Config{Seed: 6, ArrivalWindow: 3600})
	anyNonZero := false
	for _, j := range jobs {
		if j.Arrival < 0 || j.Arrival > 3600 {
			t.Fatalf("arrival %g outside window", j.Arrival)
		}
		if j.Arrival > 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Fatal("no job got a nonzero arrival")
	}
	batch := W1(Config{Seed: 6})
	for _, j := range batch {
		if j.Arrival != 0 {
			t.Fatal("batch workload has nonzero arrivals")
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := W3(Config{Seed: 7})
	b := W3(Config{Seed: 7})
	for i := range a {
		if a[i].InputBytes() != b[i].InputBytes() {
			t.Fatal("generation not deterministic")
		}
	}
	c := W3(Config{Seed: 8})
	same := true
	for i := range a {
		if a[i].InputBytes() != c[i].InputBytes() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestRecurringPredictability(t *testing.T) {
	series := GenerateSeries(SeriesConfig{Seed: 9})
	if len(series) != 20 {
		t.Fatalf("series = %d, want 20", len(series))
	}
	mape := PredictionError(series, 7)
	// §2: ~6.5% average error. Our noise parameter is 6.5%, so the
	// averaging predictor should land near (slightly below) that.
	if mape <= 0.01 || mape > 0.12 {
		t.Fatalf("prediction MAPE = %g, want ~0.065", mape)
	}
}

func TestPredictorSeparatesWeekdayWeekend(t *testing.T) {
	series := GenerateSeries(SeriesConfig{Seed: 10, Days: 28})
	s := &series[0]
	// Day 14 is a weekday, day 19 a weekend day.
	wd := s.Predict(14, 0)
	we := s.Predict(19, 0)
	if wd <= 0 || we <= 0 {
		t.Fatal("predictor returned zero with history available")
	}
	if we >= wd {
		t.Fatalf("weekend prediction %g >= weekday %g despite weekend dip", we, wd)
	}
}

func TestPredictNoHistory(t *testing.T) {
	series := GenerateSeries(SeriesConfig{Seed: 11, Days: 3})
	if got := series[0].Predict(0, 0); got != 0 {
		t.Fatalf("Predict with no history = %g, want 0", got)
	}
}

func TestPerturbSizes(t *testing.T) {
	jobs := W1(Config{Seed: 12, Jobs: 30})
	pert := PerturbSizes(jobs, 0.5, 13)
	if len(pert) != len(jobs) {
		t.Fatal("length changed")
	}
	changed := false
	for i := range jobs {
		r := pert[i].InputBytes() / jobs[i].InputBytes()
		if r < 0.49 || r > 1.51 {
			t.Fatalf("perturbation ratio %g outside [0.5, 1.5]", r)
		}
		if r != 1 {
			changed = true
		}
		// Original untouched (deep copy).
		if jobs[i].Stages[0].Profile.InputBytes != jobs[i].InputBytes() {
			t.Fatal("original mutated")
		}
	}
	if !changed {
		t.Fatal("no job was perturbed")
	}
}

func TestPerturbArrivals(t *testing.T) {
	jobs := W1(Config{Seed: 14, Jobs: 50, ArrivalWindow: 600})
	pert := PerturbArrivals(jobs, 0.5, 240, 15)
	moved := 0
	for i := range jobs {
		if pert[i].Arrival != jobs[i].Arrival {
			moved++
			if math.Abs(pert[i].Arrival-jobs[i].Arrival) > 240 && jobs[i].Arrival > 240 {
				t.Fatalf("arrival moved by %g > 240", math.Abs(pert[i].Arrival-jobs[i].Arrival))
			}
		}
		if pert[i].Arrival < 0 {
			t.Fatal("negative arrival after perturbation")
		}
	}
	if moved == 0 || moved == len(jobs) {
		t.Fatalf("moved = %d of %d, want roughly half", moved, len(jobs))
	}
}

func TestMarkAdHocAndRenumber(t *testing.T) {
	jobs := W1(Config{Seed: 16, Jobs: 5})
	MarkAdHoc(jobs)
	for _, j := range jobs {
		if !j.AdHoc || j.Recurring {
			t.Fatal("MarkAdHoc did not flip flags")
		}
	}
	Renumber(jobs, 100)
	for i, j := range jobs {
		if j.ID != 100+i {
			t.Fatalf("renumbered ID = %d, want %d", j.ID, 100+i)
		}
	}
}

func TestSlotsPerJobMix(t *testing.T) {
	slots := SlotsPerJobMix(17, 5000, 0.75)
	under := 0
	for _, s := range slots {
		if s < 1 || s > 10000 {
			t.Fatalf("slot count %d out of range", s)
		}
		if s <= 240 {
			under++
		}
	}
	frac := float64(under) / float64(len(slots))
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("under-one-rack fraction = %g, want ~0.75", frac)
	}
}

// Property: every workload generator yields valid jobs for any seed.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64) bool {
		for _, jobs := range [][]*job.Job{
			W1(Config{Seed: seed, Jobs: 12}),
			W2(Config{Seed: seed, Jobs: 20}),
			W3(Config{Seed: seed, Jobs: 12}),
			TPCH(Config{Seed: seed, Jobs: 4}, 0),
		} {
			for _, j := range jobs {
				if j.Validate() != nil {
					return false
				}
				if j.InputBytes() <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
