// Package workload generates the four evaluation workloads of §6.1 at a
// configurable scale, plus the recurring-job telemetry used in §2:
//
//   - W1: Quantcast-derived — a mix of small (≤50 tasks), medium (≤500)
//     and large (≥1000 tasks) MapReduce jobs with selectivities between
//     4:1 and 1:4.
//   - W2: SWIM/Yahoo-derived — 400 jobs, highly skewed: ~90% tiny jobs
//     (≤200 MB input, ≤75 MB shuffle) plus two ~5.5 TB giants whose
//     shuffle is ~1.8× their input.
//   - W3: Microsoft Cosmos-derived — 200 jobs matching Table 1's
//     percentiles (tasks 180/2060, input 7.1/162.3 GB, shuffle 6/71.5 GB
//     at the 50th/95th).
//   - TPC-H: 15 Hive-style DAG queries over a shared database, each a
//     small tree of MapReduce stages spending ~20% of its time in shuffle.
//
// Byte sizes are scaled by Config.Scale so full experiments stay fast in
// simulation; ratios (selectivity, skew, shuffle/input) are preserved,
// which is what the reproduced trends depend on.
//
// Determinism obligations: each generator is a pure function of
// (Config, Config.Seed) — all sampling draws from a *rand.Rand seeded
// with Config.Seed, in a fixed job order, so a seed pins the workload.
package workload

import (
	"math"
	"math/rand"

	"corral/internal/job"
)

// GB is 10^9 bytes.
const GB = 1e9

// Config controls generation.
type Config struct {
	// Scale multiplies all byte sizes (default 1.0). Experiments use
	// sub-1 scales to keep task counts simulator-friendly.
	Scale float64
	// Seed drives all sampling.
	Seed int64
	// Jobs overrides the workload's default job count when > 0.
	Jobs int
	// ArrivalWindow spreads arrivals uniformly over [0, window] seconds
	// (the paper uses 60 min for §6.2.2). Zero means batch (all at 0).
	ArrivalWindow float64
	// MapRate/ReduceRate are per-task processing rates; defaults 100 MB/s.
	MapRate    float64
	ReduceRate float64
	// TaskScale multiplies W1's class-defined task counts (default 1).
	// Experiments use sub-1 values together with proportionally smaller
	// clusters, preserving the job-size : rack-slots ratio.
	TaskScale float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.MapRate <= 0 {
		c.MapRate = 100e6
	}
	if c.ReduceRate <= 0 {
		c.ReduceRate = 100e6
	}
	if c.TaskScale <= 0 {
		c.TaskScale = 1
	}
	return c
}

// taskCount sizes a stage's task count so per-task input is ~targetPerTask
// bytes, within [1, max].
func taskCount(bytes, targetPerTask float64, max int) int {
	n := int(math.Ceil(bytes / targetPerTask))
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}

// mr builds one MapReduce job with task counts derived from data sizes.
func mr(cfg Config, id int, name string, in, shuffle, out float64, rng *rand.Rand) *job.Job {
	const perTask = 256e6 // one block per map task
	maps := taskCount(in, perTask, 4000)
	reduces := taskCount(math.Max(shuffle, out), 2*perTask, 1000)
	j := job.MapReduce(id, name, job.Profile{
		InputBytes:   in,
		ShuffleBytes: shuffle,
		OutputBytes:  out,
		MapTasks:     maps,
		ReduceTasks:  reduces,
		MapRate:      cfg.MapRate,
		ReduceRate:   cfg.ReduceRate,
	})
	if cfg.ArrivalWindow > 0 {
		j.Arrival = rng.Float64() * cfg.ArrivalWindow
	}
	return j
}

// W1 generates the Quantcast-derived mix: equal thirds of small, medium
// and large jobs with selectivities drawn from [4:1 .. 1:4]. Default 90
// jobs.
func W1(cfg Config) []*job.Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Jobs
	if n == 0 {
		n = 90
	}
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		// The size classes are task-count classes (§6.1): small ≤ 50,
		// medium ≤ 500, large ≥ 1000 tasks. Tasks come first; bytes follow.
		var maps, reduces int
		switch i % 3 {
		case 0: // small
			maps = rng.Intn(31) + 4 // 4..34
			reduces = maps / 2
		case 1: // medium
			maps = rng.Intn(250) + 80 // 80..329
			reduces = maps / 2
		default: // large
			maps = rng.Intn(1000) + 700 // 700..1699
			reduces = maps / 2
		}
		maps = int(float64(maps) * cfg.TaskScale)
		reduces = int(float64(reduces) * cfg.TaskScale)
		if maps < 1 {
			maps = 1
		}
		if reduces < 1 {
			reduces = 1
		}
		in := float64(maps) * 256e6 * (0.5 + rng.Float64()) * cfg.Scale / cfg.TaskScale
		// Selectivity in [0.25, 4]: shuffle = in * s1, out = shuffle * s2.
		s1 := math.Exp((rng.Float64()*2 - 1) * math.Ln2 * 2) // 0.25..4 log-uniform
		s2 := math.Exp((rng.Float64()*2 - 1) * math.Ln2 * 2)
		shuffle := in * s1
		out := clampFloat(shuffle*s2, 0, in*4)
		j := job.MapReduce(i+1, w1Name(i), job.Profile{
			InputBytes:   in,
			ShuffleBytes: shuffle,
			OutputBytes:  out,
			MapTasks:     maps,
			ReduceTasks:  reduces,
			MapRate:      cfg.MapRate,
			ReduceRate:   cfg.ReduceRate,
		})
		if cfg.ArrivalWindow > 0 {
			j.Arrival = rng.Float64() * cfg.ArrivalWindow
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func w1Name(i int) string {
	switch i % 3 {
	case 0:
		return "w1-small"
	case 1:
		return "w1-medium"
	}
	return "w1-large"
}

// W2 generates the SWIM/Yahoo-derived skewed mix: ~90% tiny jobs plus two
// giants reading ~5.5 TB each with shuffle ≈ 1.8× input. Default 400 jobs.
func W2(cfg Config) []*job.Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Jobs
	if n == 0 {
		n = 400
	}
	jobs := make([]*job.Job, 0, n)
	giants := 2
	if n < 10 {
		giants = 1
	}
	for i := 0; i < n; i++ {
		var in, shuffle, out float64
		switch {
		case i < giants:
			in = 5500 * GB * cfg.Scale
			shuffle = in * 1.8
			out = in * 0.2
		case i < n/10: // mid tier
			in = (1 + rng.Float64()*20) * GB * cfg.Scale
			shuffle = in * (0.3 + rng.Float64())
			out = shuffle * 0.5
		default: // tiny: <= 200 MB input, <= 75 MB shuffle
			in = (20 + rng.Float64()*180) * 1e6 * cfg.Scale
			shuffle = math.Min(in*(0.2+rng.Float64()*0.3), 75e6*cfg.Scale)
			out = shuffle * 0.5
		}
		name := "w2-tiny"
		if i < giants {
			name = "w2-giant"
		} else if i < n/10 {
			name = "w2-mid"
		}
		jobs = append(jobs, mr(cfg, i+1, name, in, shuffle, out, rng))
	}
	return jobs
}

// W3 generates the Cosmos-derived workload matching Table 1: lognormal
// input sizes with median ~7.1 GB and 95th percentile ~162 GB; shuffle
// median ~6 GB / p95 ~71.5 GB; task counts median ~180 / p95 ~2060.
// Default 200 jobs.
func W3(cfg Config) []*job.Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Jobs
	if n == 0 {
		n = 200
	}
	// Lognormal with given median m and p95 q: mu = ln m,
	// sigma = ln(q/m)/1.645.
	sample := func(median, p95 float64) float64 {
		mu := math.Log(median)
		sigma := math.Log(p95/median) / 1.645
		return math.Exp(mu + sigma*rng.NormFloat64())
	}
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		in := sample(7.1*GB, 162.3*GB) * cfg.Scale
		shuffle := sample(6*GB, 71.5*GB) * cfg.Scale
		out := shuffle * (0.2 + rng.Float64()*0.6)
		j := mr(cfg, i+1, "w3", in, shuffle, out, rng)
		jobs = append(jobs, j)
	}
	return jobs
}

// TPCH generates nq Hive-style DAG queries (default 15, as in §6.3) over a
// shared database of dbBytes (paper: 200 GB, ORC). Each query is a small
// tree: 1-3 scan stages feeding joins/aggregations, shaped so shuffle time
// is a minority share (§6.3 observes ~20%).
func TPCH(cfg Config, dbBytes float64) []*job.Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Jobs
	if n == 0 {
		n = 15
	}
	if dbBytes <= 0 {
		dbBytes = 200 * GB
	}
	dbBytes *= cfg.Scale
	const perTask = 256e6
	mkStage := func(name string, in, shuffle, out float64, up []int) job.Stage {
		return job.Stage{
			Name: name,
			Profile: job.Profile{
				InputBytes:   in,
				ShuffleBytes: shuffle,
				OutputBytes:  out,
				MapTasks:     taskCount(in, perTask, 2000),
				ReduceTasks:  taskCount(math.Max(shuffle, out), 2*perTask, 500),
				MapRate:      cfg.MapRate,
				ReduceRate:   cfg.ReduceRate,
			},
			Upstream: up,
		}
	}
	jobs := make([]*job.Job, 0, n)
	for q := 0; q < n; q++ {
		// Queries scan 10-60% of the database across 1-3 tables.
		scans := rng.Intn(3) + 1
		var stages []job.Stage
		var scanIdx []int
		for s := 0; s < scans; s++ {
			in := dbBytes * (0.1 + rng.Float64()*0.2)
			// Scans are selective: shuffle « input (keeps the workload
			// CPU/disk-heavy as §6.3 observes).
			shuffle := in * (0.05 + rng.Float64()*0.15)
			out := shuffle * 0.8
			scanIdx = append(scanIdx, len(stages))
			stages = append(stages, mkStage("scan", in, shuffle, out, nil))
		}
		// Join/aggregate stage consumes all scans.
		joinIn := 0.0
		for _, si := range scanIdx {
			joinIn += stages[si].Profile.OutputBytes
		}
		join := len(stages)
		stages = append(stages, mkStage("join", joinIn, joinIn*0.5, joinIn*0.3, scanIdx))
		// Final aggregation.
		aggIn := stages[join].Profile.OutputBytes
		stages = append(stages, mkStage("agg", aggIn, aggIn*0.3, aggIn*0.1, []int{join}))

		j := &job.Job{
			ID:        q + 1,
			Name:      "tpch-q" + itoa(q+1),
			Recurring: true,
			Stages:    stages,
		}
		if cfg.ArrivalWindow > 0 {
			j.Arrival = rng.Float64() * cfg.ArrivalWindow
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SlotsPerJobMix generates the Fig 2 distribution for one "production
// cluster": job slot requests whose CDF puts the given fraction under one
// rack (240 slots). Returns sorted slot counts.
func SlotsPerJobMix(seed int64, n int, underOneRack float64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		if rng.Float64() < underOneRack {
			// Log-uniform in [1, 240].
			out[i] = int(math.Exp(rng.Float64()*math.Log(240))) + 0
		} else {
			// Log-uniform in (240, 10000].
			lo, hi := math.Log(240), math.Log(10000)
			out[i] = int(math.Exp(lo + rng.Float64()*(hi-lo)))
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}
