// Package datadeps implements the §7 "Data-job dependencies" extension:
// in general the relation between datasets and jobs is a bipartite graph —
// one dataset can feed many jobs, and one job can read many datasets. The
// paper sketches the solution: "using the schedule of the offline planner,
// formulate a simple LP with variables representing what fraction of each
// dataset is allocated to each rack and the cost function capturing the
// amount of cross-rack data transferred".
//
// This package solves that placement. The LP is
//
//	max  Σ_{j,d} b_jd · Σ_{r ∈ R_j} x_dr        (locally read bytes)
//	s.t. Σ_r x_dr = 1                     ∀d
//	     Σ_d size_d · x_dr ≤ cap_r        ∀r    (optional capacity)
//	     x ≥ 0
//
// Its structure (per-dataset simplex constraints coupled only by rack
// capacities) makes the classic greedy exact when capacities are slack and
// a strong approximation otherwise: place datasets in decreasing order of
// read weight, each on the rack(s) covering the most consumer bytes, and
// split across racks only when capacity binds.
//
// Determinism obligations: placement is a pure function of the datasets,
// jobs and plan — greedy order is fully specified (weight, then id), with
// no randomness and no map-iteration-order dependence.
package datadeps

import (
	"fmt"
	"sort"
)

// Dataset is one shared input collection.
type Dataset struct {
	ID    int
	Bytes float64 // stored size (primary replica)
}

// Read records that a job consumes part (or all) of a dataset.
type Read struct {
	DatasetID int
	JobID     int
	Bytes     float64
}

// Input describes one placement problem.
type Input struct {
	Racks int
	// RackCapacity bounds the primary-replica bytes a rack may hold;
	// 0 means unconstrained.
	RackCapacity float64
	Datasets     []Dataset
	Reads        []Read
	// JobRacks is each consuming job's planned rack set R_j.
	JobRacks map[int][]int
}

// Validate reports structural problems.
func (in Input) Validate() error {
	if in.Racks <= 0 {
		return fmt.Errorf("datadeps: Racks = %d", in.Racks)
	}
	ids := map[int]bool{}
	for _, d := range in.Datasets {
		if d.Bytes < 0 {
			return fmt.Errorf("datadeps: dataset %d has negative size", d.ID)
		}
		if ids[d.ID] {
			return fmt.Errorf("datadeps: duplicate dataset %d", d.ID)
		}
		ids[d.ID] = true
	}
	for _, rd := range in.Reads {
		if !ids[rd.DatasetID] {
			return fmt.Errorf("datadeps: read of unknown dataset %d", rd.DatasetID)
		}
		if rd.Bytes < 0 {
			return fmt.Errorf("datadeps: negative read size")
		}
		racks, ok := in.JobRacks[rd.JobID]
		if !ok {
			return fmt.Errorf("datadeps: job %d has no rack assignment", rd.JobID)
		}
		for _, r := range racks {
			if r < 0 || r >= in.Racks {
				return fmt.Errorf("datadeps: job %d assigned rack %d out of range", rd.JobID, r)
			}
		}
	}
	return nil
}

// Placement is a fractional dataset→rack assignment.
type Placement struct {
	// Fractions[datasetID][rack] in [0,1], summing to 1 per dataset.
	Fractions map[int][]float64
}

// Place solves the placement problem greedily (see the package comment).
func Place(in Input) (*Placement, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	// weight[d][r] = bytes of d read by jobs whose rack set includes r.
	weight := make(map[int][]float64, len(in.Datasets))
	total := make(map[int]float64, len(in.Datasets))
	for _, d := range in.Datasets {
		weight[d.ID] = make([]float64, in.Racks)
	}
	for _, rd := range in.Reads {
		for _, r := range in.JobRacks[rd.JobID] {
			weight[rd.DatasetID][r] += rd.Bytes
		}
		total[rd.DatasetID] += rd.Bytes
	}

	order := append([]Dataset(nil), in.Datasets...)
	sort.SliceStable(order, func(a, b int) bool {
		if total[order[a].ID] != total[order[b].ID] {
			return total[order[a].ID] > total[order[b].ID]
		}
		return order[a].ID < order[b].ID
	})

	capLeft := make([]float64, in.Racks)
	for r := range capLeft {
		if in.RackCapacity > 0 {
			capLeft[r] = in.RackCapacity
		} else {
			capLeft[r] = -1 // unconstrained sentinel
		}
	}

	out := &Placement{Fractions: make(map[int][]float64, len(in.Datasets))}
	for _, d := range order {
		frac := make([]float64, in.Racks)
		remaining := 1.0
		w := weight[d.ID]
		for remaining > 1e-12 {
			// Best rack by covered weight (ties toward lower index), among
			// racks with capacity left.
			best := -1
			for r := 0; r < in.Racks; r++ {
				if capLeft[r] == 0 {
					continue
				}
				if best == -1 || w[r] > w[best] {
					best = r
				}
			}
			if best == -1 {
				// Capacity exhausted everywhere: spill evenly (violating
				// capacity is worse than spreading).
				for r := 0; r < in.Racks; r++ {
					frac[r] += remaining / float64(in.Racks)
				}
				remaining = 0
				break
			}
			take := remaining
			if capLeft[best] > 0 {
				byCap := capLeft[best] / maxf(d.Bytes, 1)
				if byCap < take {
					take = byCap
				}
			}
			if take <= 0 {
				capLeft[best] = 0
				continue
			}
			frac[best] += take
			remaining -= take
			if capLeft[best] > 0 {
				capLeft[best] -= take * d.Bytes
				if capLeft[best] < 1e-9 {
					capLeft[best] = 0
				}
			}
		}
		out.Fractions[d.ID] = frac
	}
	return out, nil
}

// CrossRackReadBytes returns the bytes jobs must pull across racks under
// the placement: for each read, the fraction of the dataset outside the
// job's rack set.
func CrossRackReadBytes(in Input, p *Placement) float64 {
	cross := 0.0
	for _, rd := range in.Reads {
		frac := p.Fractions[rd.DatasetID]
		local := 0.0
		for _, r := range in.JobRacks[rd.JobID] {
			local += frac[r]
		}
		if local > 1 {
			local = 1
		}
		cross += rd.Bytes * (1 - local)
	}
	return cross
}

// UniformPlacement spreads every dataset evenly across all racks — the
// baseline "HDFS random" behavior for comparison.
func UniformPlacement(in Input) *Placement {
	p := &Placement{Fractions: make(map[int][]float64, len(in.Datasets))}
	for _, d := range in.Datasets {
		frac := make([]float64, in.Racks)
		for r := range frac {
			frac[r] = 1 / float64(in.Racks)
		}
		p.Fractions[d.ID] = frac
	}
	return p
}

// PerJobPlacement models the paper's default assumption ("each job reads
// its own dataset"): every dataset follows its single heaviest consumer's
// rack set, ignoring other consumers.
func PerJobPlacement(in Input) *Placement {
	heaviest := map[int]Read{}
	for _, rd := range in.Reads {
		if cur, ok := heaviest[rd.DatasetID]; !ok || rd.Bytes > cur.Bytes {
			heaviest[rd.DatasetID] = rd
		}
	}
	p := &Placement{Fractions: make(map[int][]float64, len(in.Datasets))}
	for _, d := range in.Datasets {
		frac := make([]float64, in.Racks)
		if rd, ok := heaviest[d.ID]; ok {
			racks := in.JobRacks[rd.JobID]
			for _, r := range racks {
				frac[r] = 1 / float64(len(racks))
			}
		} else {
			for r := range frac {
				frac[r] = 1 / float64(in.Racks)
			}
		}
		p.Fractions[d.ID] = frac
	}
	return p
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
