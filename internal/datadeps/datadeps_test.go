package datadeps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func simpleInput() Input {
	return Input{
		Racks:    4,
		Datasets: []Dataset{{ID: 1, Bytes: 100}, {ID: 2, Bytes: 50}},
		Reads: []Read{
			{DatasetID: 1, JobID: 10, Bytes: 100},
			{DatasetID: 1, JobID: 11, Bytes: 100},
			{DatasetID: 2, JobID: 12, Bytes: 50},
		},
		JobRacks: map[int][]int{
			10: {0},
			11: {0, 1},
			12: {3},
		},
	}
}

func TestValidate(t *testing.T) {
	in := simpleInput()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := simpleInput()
	bad.Racks = 0
	if bad.Validate() == nil {
		t.Fatal("zero racks accepted")
	}
	bad = simpleInput()
	bad.Reads = append(bad.Reads, Read{DatasetID: 99, JobID: 10, Bytes: 1})
	if bad.Validate() == nil {
		t.Fatal("read of unknown dataset accepted")
	}
	bad = simpleInput()
	bad.Reads[0].JobID = 999
	if bad.Validate() == nil {
		t.Fatal("read by unassigned job accepted")
	}
	bad = simpleInput()
	bad.JobRacks[10] = []int{7}
	if bad.Validate() == nil {
		t.Fatal("out-of-range job rack accepted")
	}
}

func TestPlaceFollowsConsumers(t *testing.T) {
	in := simpleInput()
	p, err := Place(in)
	if err != nil {
		t.Fatal(err)
	}
	// Dataset 1: both consumers cover rack 0 -> everything on rack 0.
	if got := p.Fractions[1][0]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("dataset 1 fraction on rack 0 = %g, want 1", got)
	}
	// Dataset 2: consumer on rack 3.
	if got := p.Fractions[2][3]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("dataset 2 fraction on rack 3 = %g, want 1", got)
	}
	if CrossRackReadBytes(in, p) > 1e-9 {
		t.Fatalf("cross-rack bytes = %g, want 0", CrossRackReadBytes(in, p))
	}
}

func TestPlaceBeatsBaselines(t *testing.T) {
	in := simpleInput()
	p, _ := Place(in)
	smart := CrossRackReadBytes(in, p)
	uniform := CrossRackReadBytes(in, UniformPlacement(in))
	perJob := CrossRackReadBytes(in, PerJobPlacement(in))
	if smart > uniform {
		t.Fatalf("greedy %g worse than uniform %g", smart, uniform)
	}
	if smart > perJob {
		t.Fatalf("greedy %g worse than per-job %g", smart, perJob)
	}
	// Uniform leaves most reads remote on a 4-rack cluster.
	if uniform <= smart {
		t.Fatalf("uniform %g should exceed dataset-aware %g here", uniform, smart)
	}
}

func TestSharedDatasetConflict(t *testing.T) {
	// One dataset read by two jobs on disjoint racks: per-job placement
	// strands the second consumer; the greedy picks the heavier side.
	in := Input{
		Racks:    2,
		Datasets: []Dataset{{ID: 1, Bytes: 10}},
		Reads: []Read{
			{DatasetID: 1, JobID: 1, Bytes: 30}, // rack 0
			{DatasetID: 1, JobID: 2, Bytes: 70}, // rack 1
		},
		JobRacks: map[int][]int{1: {0}, 2: {1}},
	}
	p, err := Place(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fractions[1][1] < 0.99 {
		t.Fatalf("dataset should follow the heavier consumer: %v", p.Fractions[1])
	}
	if got := CrossRackReadBytes(in, p); math.Abs(got-30) > 1e-9 {
		t.Fatalf("cross-rack = %g, want 30 (the lighter consumer)", got)
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	in := Input{
		Racks:        2,
		RackCapacity: 60,
		Datasets:     []Dataset{{ID: 1, Bytes: 100}},
		Reads:        []Read{{DatasetID: 1, JobID: 1, Bytes: 100}},
		JobRacks:     map[int][]int{1: {0}},
	}
	p, err := Place(in)
	if err != nil {
		t.Fatal(err)
	}
	// Only 60 of 100 bytes fit on rack 0; the rest spills to rack 1.
	if p.Fractions[1][0] > 0.6+1e-9 {
		t.Fatalf("capacity violated: %v", p.Fractions[1])
	}
	sum := p.Fractions[1][0] + p.Fractions[1][1]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %g", sum)
	}
}

func TestUnreadDatasetStillPlaced(t *testing.T) {
	in := Input{
		Racks:    3,
		Datasets: []Dataset{{ID: 1, Bytes: 10}},
	}
	p, err := Place(in)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range p.Fractions[1] {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("unread dataset fractions sum to %g", sum)
	}
}

// Property: fractions are a distribution per dataset, capacities hold, and
// the greedy never does worse than uniform or per-job placement.
func TestQuickPlacementDominance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		racks := rng.Intn(6) + 2
		nd := rng.Intn(8) + 1
		nj := rng.Intn(10) + 1
		in := Input{Racks: racks, JobRacks: map[int][]int{}}
		for d := 1; d <= nd; d++ {
			in.Datasets = append(in.Datasets, Dataset{ID: d, Bytes: float64(rng.Intn(100) + 1)})
		}
		for j := 1; j <= nj; j++ {
			k := rng.Intn(racks) + 1
			perm := rng.Perm(racks)
			in.JobRacks[j] = perm[:k]
			reads := rng.Intn(3) + 1
			for x := 0; x < reads; x++ {
				in.Reads = append(in.Reads, Read{
					DatasetID: rng.Intn(nd) + 1,
					JobID:     j,
					Bytes:     float64(rng.Intn(1000) + 1),
				})
			}
		}
		p, err := Place(in)
		if err != nil {
			return false
		}
		for _, d := range in.Datasets {
			sum := 0.0
			for _, fr := range p.Fractions[d.ID] {
				if fr < -1e-9 {
					return false
				}
				sum += fr
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		smart := CrossRackReadBytes(in, p)
		if smart > CrossRackReadBytes(in, UniformPlacement(in))+1e-6 {
			return false
		}
		if smart > CrossRackReadBytes(in, PerJobPlacement(in))+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
