package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"corral/internal/des"
	"corral/internal/topology"
)

// scriptOp is one step of a randomized differential script. The same script
// replays against a MaxMinFair network and a GroupedMaxMin network; any
// divergence in rates, completion times or accounting fails the test.
type scriptOp struct {
	at     des.Time
	kind   int // 0 start machine-pair, 1 start rack-aggregated, 2 cancel, 3 link fault
	src    int
	dst    int
	bytes  float64
	target int     // cancel: index into started flows
	link   int     // fault: link id
	factor float64 // fault: capacity factor
}

// genScript builds a deterministic op mix: machine-pair flows (in-rack,
// cross-rack and loopback), exec-shaped rack-aggregated StartPath flows,
// mid-transfer cancels, and link faults including full outages.
func genScript(rng *rand.Rand, c *topology.Cluster, nOps int) []scriptOp {
	machines := c.Config.Racks * c.Config.MachinesPerRack
	ops := make([]scriptOp, 0, nOps)
	started := 0
	for i := 0; i < nOps; i++ {
		op := scriptOp{at: des.Time(rng.Float64() * 3.0)}
		switch r := rng.Float64(); {
		case r < 0.55 || started == 0:
			op.kind = 0
			op.src = rng.Intn(machines)
			if rng.Float64() < 0.1 {
				op.dst = op.src // loopback
			} else {
				op.dst = rng.Intn(machines)
			}
			op.bytes = rng.Float64() * 4 * gbps
			if rng.Float64() < 0.05 {
				op.bytes = 0
			}
			started++
		case r < 0.75:
			op.kind = 1
			op.src = rng.Intn(c.Config.Racks) // source rack
			op.dst = rng.Intn(machines)       // destination machine
			op.bytes = rng.Float64() * 4 * gbps
			started++
		case r < 0.9:
			op.kind = 2
			op.target = rng.Intn(started)
		default:
			op.kind = 3
			op.link = rng.Intn(c.NumLinks())
			op.factor = []float64{0, 0.3, 1}[rng.Intn(3)]
		}
		ops = append(ops, op)
	}
	return ops
}

// rateSnap is one allocation observed through OnAllocate: every active
// flow's rate, bit-exact, in network flow order.
type rateSnap struct {
	at    des.Time
	ids   []int64
	rates []uint64
}

type runLog struct {
	snaps       []rateSnap
	completions map[int64]des.Time
	cross       uint64
	total       uint64
	served      int64
}

// replay runs the script against a fresh simulator/network under p and
// returns the full bit-exact allocation log.
func replay(c *topology.Cluster, ops []scriptOp, p Policy) runLog {
	return replayWith(c, ops, p, 0, false)
}

// replayWith is replay with the scale knobs dialed: a flow-epoch batching
// quantum and/or Flow-object pooling. Under pooling a handle is dead once
// its flow completes or is canceled, so the cancel ops consult a liveness
// table — skipping a dead handle is exactly the reference's
// cancel-finished-flow no-op.
func replayWith(c *topology.Cluster, ops []scriptOp, p Policy, epoch des.Time, pooling bool) runLog {
	sim := des.New()
	n := New(sim, c, p)
	n.SetFlowEpoch(epoch)
	n.SetFlowPooling(pooling)
	log := runLog{completions: make(map[int64]des.Time)}
	n.OnAllocate = func() {
		s := rateSnap{at: sim.Now()}
		for _, f := range n.flows {
			s.ids = append(s.ids, f.ID)
			s.rates = append(s.rates, math.Float64bits(f.rate))
		}
		log.snaps = append(log.snaps, s)
	}
	var handles []*Flow
	var dead []bool
	register := func(f *Flow) { handles = append(handles, f); dead = append(dead, false) }
	onDone := func() func(*Flow) {
		idx := len(handles) // the flow this callback belongs to
		return func(f *Flow) {
			dead[idx] = true
			log.completions[f.ID] = sim.Now()
		}
	}
	for _, op := range ops {
		op := op
		sim.At(op.at, func() {
			switch op.kind {
			case 0:
				register(n.Start(op.src, op.dst, op.bytes, 0, 0, onDone()))
			case 1:
				// Exec-shaped rack-aggregated shuffle path (see exec.go).
				var path []topology.LinkID
				cross := c.RackOf(op.dst) != op.src
				if cross {
					path = []topology.LinkID{c.RackUplink(op.src), c.RackDownlink(c.RackOf(op.dst)), c.MachineDownlink(op.dst)}
				} else {
					path = []topology.LinkID{c.MachineDownlink(op.dst)}
				}
				register(n.StartPath(path, cross, op.bytes, 0, 0, onDone()))
			case 2:
				if op.target < len(handles) && !dead[op.target] {
					n.Cancel(handles[op.target])
					dead[op.target] = true // retired at the next recompute
				}
			case 3:
				n.SetLinkCapacityFactor(topology.LinkID(op.link), op.factor)
			}
		})
	}
	// Clear any end-of-script outages so parked flows can drain and the
	// simulator runs to quiescence.
	sim.At(4.0, func() {
		for l := 0; l < c.NumLinks(); l++ {
			n.SetLinkCapacityFactor(topology.LinkID(l), 1)
		}
	})
	sim.Run()
	log.cross = math.Float64bits(n.CrossRackBytes())
	log.total = math.Float64bits(n.TotalBytes())
	log.served = n.FlowsServed()
	return log
}

// TestGroupedBitIdenticalToMaxMinFair is the differential gate for the
// grouped allocator: across seeded randomized scripts mixing in-rack,
// cross-rack, loopback and rack-aggregated flows with mid-transfer cancels
// and link faults, every allocation's rates, every completion time and all
// byte accounting must match MaxMinFair bit for bit.
func TestGroupedBitIdenticalToMaxMinFair(t *testing.T) {
	c := topology.MustNew(topology.Config{
		Racks:            4,
		MachinesPerRack:  5,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	for seed := int64(1); seed <= 8; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), c, 300)
		ref := replay(c, ops, MaxMinFair{})
		got := replay(c, ops, NewGroupedMaxMin())
		if len(ref.snaps) != len(got.snaps) {
			t.Fatalf("seed %d: %d allocations under maxmin, %d under grouped", seed, len(ref.snaps), len(got.snaps))
		}
		for i := range ref.snaps {
			if !reflect.DeepEqual(ref.snaps[i], got.snaps[i]) {
				t.Fatalf("seed %d: allocation %d diverges:\n maxmin:  %+v\n grouped: %+v", seed, i, ref.snaps[i], got.snaps[i])
			}
		}
		if !reflect.DeepEqual(ref.completions, got.completions) {
			t.Fatalf("seed %d: completion times diverge", seed)
		}
		if ref.cross != got.cross || ref.total != got.total || ref.served != got.served {
			t.Fatalf("seed %d: accounting diverges: maxmin (cross %x total %x served %d) grouped (cross %x total %x served %d)",
				seed, ref.cross, ref.total, ref.served, got.cross, got.total, got.served)
		}
	}
}

// TestGroupedBatchedRecompute verifies the same-instant batching contract: a
// burst of N flow starts triggers exactly one allocation, and N simultaneous
// completions are absorbed without any further allocation.
func TestGroupedBatchedRecompute(t *testing.T) {
	sim, n := newNet(t, NewGroupedMaxMin())
	allocs := 0
	n.OnAllocate = func() { allocs++ }
	// 4 equal flows per destination machine in rack 1, all from rack 0's
	// uplink: identical paths within each destination, identical rates, so
	// every flow completes at the same instant.
	for dst := 4; dst < 8; dst++ {
		for k := 0; k < 4; k++ {
			n.Start(k%4, dst, 1*gbps, 0, 0, nil)
		}
	}
	sim.Run()
	if allocs != 1 {
		t.Fatalf("burst of 16 same-instant starts triggered %d allocations, want exactly 1", allocs)
	}
}

// TestGroupedRequiresInternedFlows documents the pathID contract: flows
// constructed outside Network.StartPath cannot be grouped and must panic
// loudly rather than silently collapse into one class.
func TestGroupedRequiresInternedFlows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GroupedMaxMin accepted a flow with pathID 0")
		}
	}()
	f := &Flow{ID: 1, Bytes: 1, remaining: 1, path: []topology.LinkID{0, 1}}
	caps := []float64{gbps, gbps}
	NewGroupedMaxMin().Allocate([]*Flow{f}, caps, make([]float64, 2))
}

// TestGroupedAllocateSteadyStateZeroAlloc pins the zero-alloc contract:
// once scratch is warm, recomputes allocate nothing.
func TestGroupedAllocateSteadyStateZeroAlloc(t *testing.T) {
	c := topology.MustNew(topology.Config{
		Racks:            4,
		MachinesPerRack:  5,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	sim := des.New()
	n := New(sim, c, NewGroupedMaxMin())
	for dst := 0; dst < 20; dst++ {
		for src := 0; src < 20; src++ {
			if src != dst {
				n.Start(src, dst, 100*gbps, 0, 0, nil)
			}
		}
	}
	// Fire the initial recompute so n.flows is populated and rates exist.
	for sim.Step() && n.ActiveFlows() == 0 {
	}
	g := NewGroupedMaxMin()
	g.Allocate(n.flows, n.caps, n.scratch) // warm the scratch
	avg := testing.AllocsPerRun(100, func() {
		g.Allocate(n.flows, n.caps, n.scratch)
	})
	if avg != 0 {
		t.Fatalf("steady-state Allocate performs %.1f allocations per call, want 0", avg)
	}
}
