package netsim

import (
	"testing"

	"corral/internal/des"
	"corral/internal/topology"
)

// benchNetwork builds a paper-scale cluster (50 racks × 40 machines, §6.6)
// carrying ~nFlows exec-shaped shuffle flows. Jobs are heterogeneous the way
// real workload traces are: each destination machine runs a varying number
// of reducers (1–8) pulling rack-aggregated transfers from a varying fan-in
// of source racks (1–10), spread across the whole cluster. Reducers on one
// machine pulling from the same rack share identical link paths — the
// equivalence structure GroupedMaxMin exploits — while the uneven per-link
// loads make bottlenecks cascade through many fill levels, as they do in
// the W1–W4 sweeps.
func benchNetwork(b *testing.B, nFlows int) *Network {
	b.Helper()
	c := topology.MustNew(topology.Config{
		Racks:            50,
		MachinesPerRack:  40,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	sim := des.New()
	n := New(sim, c, MaxMinFair{})
	started := 0
	for dst := 0; started < nFlows; dst = (dst + 137) % (c.Config.Racks * c.Config.MachinesPerRack) {
		dstRack := c.RackOf(dst)
		reducers := 1 + dst%8
		srcRacks := 1 + dst%10
		for s := 0; s < srcRacks && started < nFlows; s++ {
			srcRack := (dstRack + 1 + s*5) % c.Config.Racks
			path := []topology.LinkID{c.RackUplink(srcRack), c.RackDownlink(dstRack), c.MachineDownlink(dst)}
			for r := 0; r < reducers && started < nFlows; r++ {
				n.StartPath(path, true, 1*gbps, CoflowID(dst), 0, nil)
				started++
			}
		}
	}
	return n
}

func benchmarkAllocate(b *testing.B, p Policy, nFlows int) {
	n := benchNetwork(b, nFlows)
	p.Allocate(n.flows, n.caps, n.scratch) // warm any policy scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Allocate(n.flows, n.caps, n.scratch)
	}
}

func BenchmarkRecomputeMaxMin1k(b *testing.B)  { benchmarkAllocate(b, MaxMinFair{}, 1000) }
func BenchmarkRecomputeMaxMin10k(b *testing.B) { benchmarkAllocate(b, MaxMinFair{}, 10000) }

func BenchmarkRecomputeGrouped1k(b *testing.B)  { benchmarkAllocate(b, NewGroupedMaxMin(), 1000) }
func BenchmarkRecomputeGrouped10k(b *testing.B) { benchmarkAllocate(b, NewGroupedMaxMin(), 10000) }

// benchmarkAllocateChurn measures the recompute-under-churn regime the
// incremental allocator is built for: every iteration one rack uplink's
// capacity flips (a link fault toggling), dirtying that component only, and
// the allocator recomputes. For the stateful allocators the cache is warm —
// this is the per-event cost a long simulation actually pays, as opposed to
// benchmarkAllocate's identical-input rounds.
func benchmarkAllocateChurn(b *testing.B, p Policy, nFlows int) {
	n := benchNetwork(b, nFlows)
	p.Allocate(n.flows, n.caps, n.scratch) // warm policy cache/scratch
	base := make([]float64, len(n.caps))
	copy(base, n.caps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := int(topoRackUplink(n, i%50))
		if i%2 == 0 {
			n.caps[l] = base[l] * 0.9
		} else {
			n.caps[l] = base[l]
		}
		p.Allocate(n.flows, n.caps, n.scratch)
	}
	b.StopTimer()
	if inc, ok := p.(*IncrementalMaxMin); ok {
		if incRounds, _ := inc.Rounds(); b.N > 4 && incRounds == 0 {
			b.Fatal("incremental path never taken: the benchmark is measuring the full pass")
		}
	}
}

// topoRackUplink resolves rack r's uplink on the benchmark cluster.
func topoRackUplink(n *Network, r int) topology.LinkID { return n.cluster.RackUplink(r) }

func BenchmarkRecomputeIncremental1k(b *testing.B) {
	benchmarkAllocateChurn(b, NewIncrementalMaxMin(), 1000)
}
func BenchmarkRecomputeIncremental10k(b *testing.B) {
	benchmarkAllocateChurn(b, NewIncrementalMaxMin(), 10000)
}

// BenchmarkRecomputeGroupedChurn10k is the incremental benchmark's control:
// the same churn stream through the full grouped pass, so the two rows'
// ratio is the incremental win in isolation.
func BenchmarkRecomputeGroupedChurn10k(b *testing.B) {
	benchmarkAllocateChurn(b, NewGroupedMaxMin(), 10000)
}
