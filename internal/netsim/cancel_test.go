package netsim

import (
	"math"
	"testing"

	"corral/internal/des"
)

func TestCancelReleasesBandwidth(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var tLong des.Time
	// Two flows share the 8 Gbps uplink; the short one is canceled at
	// t=0.25s, after which the long one runs at full uplink speed.
	// Long: 8 Gb total. Phase 1 (0..0.25s) at 4 Gbps -> 1 Gb done.
	// Phase 2 at 8 Gbps -> 7 Gb / 8 Gbps = 0.875s. Total 1.125s.
	victim := n.Start(0, 4, 100*gbps, 0, 1, func(*Flow) { t.Fatal("canceled flow completed") })
	n.Start(1, 5, 8*gbps, 0, 2, func(*Flow) { tLong = sim.Now() })
	sim.At(0.25, func() { n.Cancel(victim) })
	sim.Run()
	if math.Abs(float64(tLong)-1.125) > 1e-6 {
		t.Fatalf("long flow finished at %v, want 1.125s", tLong)
	}
	if !victim.Canceled() {
		t.Fatal("victim not marked canceled")
	}
}

func TestCancelAccountsPartialBytes(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	// Cross-rack flow at 8 Gbps, canceled after 0.5s -> 4 Gb sent.
	f := n.Start(0, 4, 100*gbps, 0, 3, nil)
	sim.At(0.5, func() { n.Cancel(f) })
	sim.Run()
	want := 4 * gbps
	if math.Abs(n.CrossRackBytes()-want) > 1e3 {
		t.Fatalf("cross-rack bytes after cancel = %g, want %g", n.CrossRackBytes(), want)
	}
	if math.Abs(n.CrossRackBytesByJob(3)-want) > 1e3 {
		t.Fatalf("per-job accounting = %g, want %g", n.CrossRackBytesByJob(3), want)
	}
}

func TestCancelLoopbackSuppressesCallback(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	fired := false
	f := n.Start(2, 2, 1e9, 0, 1, func(*Flow) { fired = true })
	n.Cancel(f)
	sim.Run()
	if fired {
		t.Fatal("canceled loopback callback fired")
	}
}

func TestCancelIdempotentAndNil(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	n.Cancel(nil) // must not panic
	f := n.Start(0, 1, 1e9, 0, 1, nil)
	n.Cancel(f)
	n.Cancel(f)
	sim.Run()
	if n.ActiveFlows() != 0 {
		t.Fatal("canceled flow still active")
	}
}

func TestCancelAfterCompletionIsNoop(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	completed := false
	f := n.Start(0, 1, 1e6, 0, 1, func(*Flow) { completed = true })
	sim.Run()
	if !completed {
		t.Fatal("flow did not complete")
	}
	before := n.TotalBytes()
	n.Cancel(f)
	sim.Run()
	if n.TotalBytes() != before {
		t.Fatal("late cancel changed accounting")
	}
}

func TestLinkBytesAccounting(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	cl := testCluster(t)
	n.Start(0, 4, 1e9, 0, 1, nil)
	sim.Run()
	up := n.LinkBytes(cl.MachineUplink(0))
	if math.Abs(up-1e9) > 1e3 {
		t.Fatalf("uplink carried %g bytes, want 1e9", up)
	}
	rackUp := n.LinkBytes(cl.RackUplink(0))
	if math.Abs(rackUp-1e9) > 1e3 {
		t.Fatalf("rack uplink carried %g bytes, want 1e9", rackUp)
	}
	// Untouched link carried nothing.
	if got := n.LinkBytes(cl.MachineUplink(9)); got != 0 {
		t.Fatalf("idle link carried %g bytes", got)
	}
}
