package netsim

import "corral/internal/topology"

// IncrementalMaxMin is the datacenter-scale fast path over GroupedMaxMin:
// instead of re-waterfilling the whole network on every recompute, it
// diffs the current round's (path, member-count) groups and link
// capacities against a cache of the previous round and re-fills only the
// connected components whose inputs changed, copying cached rates into
// every clean component.
//
// Why that is bit-identical to GroupedMaxMin: component filling is fully
// local (see grouped.go) — a component's rates are a pure function of its
// (path, count) group multiset and its links' capacities, computed with a
// deterministic float sequence. A component is marked dirty when any of
// those inputs could have changed:
//
//   - a link used this round carries a different capacity than cached
//     (link fault or repair);
//   - a group's member count differs from the cached count — covering new
//     groups (cached count 0), grown and shrunk groups;
//   - a path active last round vanished entirely; its links that are
//     still in use are marked per-link, because the vanished path may
//     have bridged components that are separate now (links no longer
//     used by anyone cannot influence any current component).
//
// If none of those fire for a component, its current group multiset and
// link capacities are provably identical to a component of the cached
// round (any group that could have joined or left it would have tripped a
// rule), so the cached per-group rates ARE the rates a full fill would
// compute. The seeded differential tests in incremental_test.go enforce
// the equivalence bit-for-bit against both GroupedMaxMin and MaxMinFair,
// across starts, cancels, link faults and flow-epoch batching.
//
// When the dirty set exceeds FallbackFrac of all groups the allocator
// runs the plain full grouped pass (same code path, so trivially
// bit-identical) — diffing overhead is only paid when it buys real work
// reduction. The cache is rebuilt after every non-empty round either way.
//
// Like GroupedMaxMin it is stateful and single-Network: use
// NewIncrementalMaxMin per simulation. The cache participates in
// snapshot/resume without serialization because restore replays the event
// history, rebuilding the cache through the same allocation sequence.
type IncrementalMaxMin struct {
	GroupedMaxMin

	// FallbackFrac is the dirty-group fraction above which Allocate
	// abandons the incremental path for the full grouped pass.
	// NewIncrementalMaxMin sets 0.25; tests tune it to force either path.
	FallbackFrac float64

	// Cache of the previous non-empty round, keyed by interned pathID.
	// prevCount[id] == 0 means the path was absent. prevCaps is refreshed
	// only for links used in a round; stale entries are harmless because a
	// link that re-enters use always does so under a new or changed group
	// (see the dirty rules above).
	prevCount []int
	prevRate  []float64
	prevPath  [][]topology.LinkID
	prevIDs   []int32
	prevCaps  []float64
	haveCache bool

	// compDirty is per-round scratch sized to numComps.
	compDirty []bool

	// incRounds/fullRounds count Allocate calls served by the incremental
	// path vs the full pass (including cache-cold rounds); tests use them
	// to prove the incremental path actually ran (anti-vacuity).
	incRounds  int
	fullRounds int
}

// NewIncrementalMaxMin returns an incremental allocator for use by one
// Network, with the default 25% dirty-set fallback threshold.
func NewIncrementalMaxMin() *IncrementalMaxMin {
	return &IncrementalMaxMin{FallbackFrac: 0.25}
}

// Name implements Policy.
func (inc *IncrementalMaxMin) Name() string { return "maxmin-incremental" }

// Rounds reports how many Allocate calls took the incremental path and
// how many ran the full grouped pass (fallback or cold cache).
func (inc *IncrementalMaxMin) Rounds() (incremental, full int) {
	return inc.incRounds, inc.fullRounds
}

// Allocate implements Policy. Panics like GroupedMaxMin on flows not
// started via Network.StartPath.
//
// Steady state is allocation-free: all cache and scratch slices grow once
// and are reused, pinned by TestIncrementalAllocateSteadyStateZeroAlloc
// and the hotalloc analyzer.
//
//corral:hotpath
func (inc *IncrementalMaxMin) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	g := &inc.GroupedMaxMin
	remaining := scratch
	copy(remaining, caps)
	if len(flows) == 0 {
		// Nothing to rate; the cache still describes the last non-empty
		// round and stays valid for the next diff (capacity changes made
		// meanwhile are caught by the caps rule then).
		return
	}
	g.build(flows, len(remaining))
	g.partition()

	useInc := false
	if inc.haveCache {
		dirtyGroups := inc.markDirty(caps)
		useInc = float64(dirtyGroups) <= inc.FallbackFrac*float64(len(g.groups))
	}

	if useInc {
		inc.incRounds++
		// Clean components: freeze every group at its cached rate, exactly
		// what a full fill would produce for identical inputs.
		for gi := range g.groups {
			if !inc.compDirty[g.gcomp[gi]] {
				grp := &g.groups[gi]
				grp.frozen = true
				grp.rate = inc.prevRate[grp.id]
			}
		}
		// Dirty components re-fill from scratch; their links are disjoint
		// from every clean component's, so the shared remaining array
		// (still at raw caps for these links) gives the same arithmetic
		// as a full pass.
		for ci := 0; ci < g.numComps; ci++ {
			if inc.compDirty[ci] {
				g.fillComponent(ci, remaining)
			}
		}
	} else {
		inc.fullRounds++
		for ci := 0; ci < g.numComps; ci++ {
			g.fillComponent(ci, remaining)
		}
	}
	g.assignRates(flows)
	inc.updateCache(caps)
}

// markDirty applies the three dirty rules against the cache and returns
// the number of groups living in dirty components (the work a dirty-set
// re-fill must do, compared against FallbackFrac by the caller).
//
//corral:hotpath
func (inc *IncrementalMaxMin) markDirty(caps []float64) int {
	g := &inc.GroupedMaxMin
	if len(inc.compDirty) < g.numComps {
		inc.compDirty = make([]bool, g.numComps)
	} else {
		for ci := 0; ci < g.numComps; ci++ {
			inc.compDirty[ci] = false
		}
	}

	// Rule: capacity changed on a used link. Stale prevCaps entries (link
	// unused in the cached round) at worst over-mark: such a link's
	// component is dirty via the new-group rule anyway.
	for _, l := range g.used {
		if l < len(inc.prevCaps) {
			//corralvet:ok floateq exact identity intended: cached-capacity diff; near-equal capacities are real changes that must dirty the component
			if caps[l] != inc.prevCaps[l] {
				inc.compDirty[g.compOf[l]] = true
			}
		} else {
			inc.compDirty[g.compOf[l]] = true
		}
	}

	// Rule: group member count changed (covers new groups: cached 0).
	for gi := range g.groups {
		grp := &g.groups[gi]
		id := int(grp.id)
		if id >= len(inc.prevCount) || inc.prevCount[id] != grp.count {
			inc.compDirty[g.gcomp[gi]] = true
		}
	}

	// Rule: path vanished since the cached round. Mark its links that are
	// still in use — the vanished path may have bridged components that
	// are separate now, so each link dirties its own current component.
	for _, id32 := range inc.prevIDs {
		id := int(id32)
		if id < len(g.gstamp) && g.gstamp[id] == g.round {
			continue // still active
		}
		for _, l := range inc.prevPath[id] {
			li := int(l)
			if g.cstamp[li] == g.round {
				inc.compDirty[g.compOf[li]] = true
			}
		}
	}

	dirtyGroups := 0
	for gi := range g.groups {
		if inc.compDirty[g.gcomp[gi]] {
			dirtyGroups++
		}
	}
	return dirtyGroups
}

// updateCache records this round's groups, rates and used-link capacities
// as the baseline for the next diff.
//
//corral:hotpath
func (inc *IncrementalMaxMin) updateCache(caps []float64) {
	g := &inc.GroupedMaxMin
	for _, id := range inc.prevIDs {
		inc.prevCount[id] = 0
	}
	inc.prevIDs = inc.prevIDs[:0]
	for gi := range g.groups {
		grp := &g.groups[gi]
		id := int(grp.id)
		if id >= len(inc.prevCount) {
			inc.prevCount = append(inc.prevCount, make([]int, id+1-len(inc.prevCount))...)
			inc.prevRate = append(inc.prevRate, make([]float64, id+1-len(inc.prevRate))...)
			inc.prevPath = append(inc.prevPath, make([][]topology.LinkID, id+1-len(inc.prevPath))...)
		}
		inc.prevCount[id] = grp.count
		inc.prevRate[id] = grp.rate
		inc.prevPath[id] = grp.path
		inc.prevIDs = append(inc.prevIDs, grp.id)
	}
	if len(inc.prevCaps) < len(caps) {
		inc.prevCaps = append(inc.prevCaps, make([]float64, len(caps)-len(inc.prevCaps))...)
	}
	for _, l := range g.used {
		inc.prevCaps[l] = caps[l]
	}
	inc.haveCache = true
}
