package netsim

import (
	"math"
	"sort"
)

// Varys is a coflow-aware bandwidth allocator in the style of
// Chowdhury et al., "Efficient Coflow Scheduling with Varys" (SIGCOMM'14),
// which the paper combines with Corral in §6.6 (Fig 14).
//
// It implements the two core mechanisms:
//
//   - SEBF (smallest effective bottleneck first): coflows are served in
//     increasing order of their bottleneck completion time Γ, computed on
//     the links' remaining capacity.
//   - MADD (minimum allocation for desired duration): within a coflow every
//     flow gets just enough bandwidth to finish at Γ together, so no flow
//     hogs capacity that cannot shorten the coflow.
//
// Leftover bandwidth is backfilled max-min across all flows (work
// conservation), which is how Varys stays work-conserving in practice.
// Flows without a coflow (Coflow == 0) only participate in the backfill
// stage, i.e. they behave like background TCP flows.
type Varys struct{}

// Name implements Policy.
func (Varys) Name() string { return "varys" }

// Allocate implements Policy.
func (Varys) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	remaining := scratch
	copy(remaining, caps)

	// Group flows by coflow.
	groups := make(map[CoflowID][]*Flow)
	var order []CoflowID
	for _, f := range flows {
		f.rate = 0
		if f.Coflow == 0 {
			continue
		}
		if _, seen := groups[f.Coflow]; !seen {
			order = append(order, f.Coflow)
		}
		groups[f.Coflow] = append(groups[f.Coflow], f)
	}

	// SEBF: sort coflows by bottleneck duration on the *full* capacities
	// (static ordering, as Varys' admission ordering does), then allocate
	// greedily on remaining capacity.
	type scored struct {
		id    CoflowID
		gamma float64
	}
	scoredCoflows := make([]scored, 0, len(order))
	for _, id := range order {
		scoredCoflows = append(scoredCoflows, scored{id, bottleneckDuration(groups[id], caps)})
	}
	sort.Slice(scoredCoflows, func(i, j int) bool {
		if scoredCoflows[i].gamma != scoredCoflows[j].gamma {
			return scoredCoflows[i].gamma < scoredCoflows[j].gamma
		}
		return scoredCoflows[i].id < scoredCoflows[j].id // deterministic
	})

	for _, sc := range scoredCoflows {
		group := groups[sc.id]
		gamma := bottleneckDuration(group, remaining)
		if gamma <= 0 || math.IsInf(gamma, 1) { // zero-size or starved coflow
			continue
		}
		// MADD: rate so that every flow finishes at gamma.
		for _, f := range group {
			r := f.remaining / gamma
			// Clamp to what the path still has (guards numerical dust).
			for _, l := range f.path {
				if remaining[l] < r {
					r = remaining[l]
				}
			}
			if r < 0 {
				r = 0
			}
			f.rate = r
			for _, l := range f.path {
				remaining[l] -= r
				if remaining[l] < 0 {
					remaining[l] = 0
				}
			}
		}
	}

	// Work conservation: backfill remaining capacity max-min across all
	// flows (coflow members included, on top of their MADD rates).
	maxMinFill(flows, remaining, func(f *Flow) float64 { return f.rate })
}

// bottleneckDuration returns Γ: the smallest time in which the coflow's
// flows could all finish given per-link capacities, i.e. the max over links
// of (coflow bytes on the link / link capacity). Returns +Inf if any used
// link has no capacity.
func bottleneckDuration(group []*Flow, capacity []float64) float64 {
	bytesOnLink := make([]float64, len(capacity))
	for _, f := range group {
		for _, l := range f.path {
			bytesOnLink[int(l)] += f.remaining
		}
	}
	gamma := 0.0
	for l, b := range bytesOnLink {
		if b == 0 {
			continue
		}
		if capacity[l] <= 0 {
			return math.Inf(1)
		}
		if d := b / capacity[l]; d > gamma {
			gamma = d
		}
	}
	return gamma
}
