package netsim

import (
	"math"
	"testing"

	"corral/internal/des"
)

// A cross-rack flow re-shares when its rack uplink is degraded mid-flight.
func TestLinkDegradationReshares(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	c := testCluster(t)
	var doneAt des.Time
	// 8 Gb over the 8 Gbps uplink: would finish at 1s undisturbed.
	n.Start(0, 4, 8*gbps, 0, 1, func(*Flow) { doneAt = sim.Now() })
	// At 0.5s the uplink drops to half capacity: 4 Gb remain at 4 Gbps,
	// so the flow needs one more second -> finishes at 1.5s.
	sim.At(0.5, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 0.5) })
	sim.Run()
	if math.Abs(float64(doneAt)-1.5) > 1e-6 {
		t.Fatalf("flow over half-degraded uplink finished at %v, want 1.5s", doneAt)
	}
	if got := n.LinkCapacity(c.RackUplink(0)); math.Abs(got-4*gbps) > 1 {
		t.Fatalf("LinkCapacity after degradation = %g, want %g", got, 4*gbps)
	}
}

// A failed uplink parks in-flight flows (no starvation panic); restoring it
// resumes them and they complete.
func TestLinkFailureParksAndResumes(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	c := testCluster(t)
	var doneAt des.Time
	n.Start(0, 4, 8*gbps, 0, 1, func(*Flow) { doneAt = sim.Now() })
	// Fail at 0.25s (2 Gb sent), restore at 1.25s: the remaining 6 Gb
	// take 0.75s at full rate -> finishes at 2.0s.
	sim.At(0.25, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 0) })
	sim.At(1.25, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 1) })
	sim.Run()
	if math.Abs(float64(doneAt)-2.0) > 1e-6 {
		t.Fatalf("flow across fail/restore finished at %v, want 2.0s", doneAt)
	}
}

// With one flow parked on a failed link, unaffected flows keep completing.
func TestLinkFailureDoesNotBlockOtherFlows(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	c := testCluster(t)
	var parkedDone, otherDone des.Time
	n.Start(0, 4, 8*gbps, 0, 1, func(*Flow) { parkedDone = sim.Now() })
	n.Start(5, 6, 10*gbps, 0, 2, func(*Flow) { otherDone = sim.Now() })
	sim.At(0, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 0) })
	sim.At(3, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 1) })
	sim.Run()
	if math.Abs(float64(otherDone)-1.0) > 1e-6 {
		t.Fatalf("intra-rack flow finished at %v, want 1.0s despite remote fault", otherDone)
	}
	if math.Abs(float64(parkedDone)-4.0) > 1e-6 {
		t.Fatalf("parked flow finished at %v, want 4.0s (3s outage + 1s transfer)", parkedDone)
	}
}

// Failing a link under the Varys policy parks the affected coflow too.
func TestLinkFailureVarys(t *testing.T) {
	sim, n := newNet(t, Varys{})
	c := testCluster(t)
	var doneAt des.Time
	n.Start(0, 4, 8*gbps, 7, 1, func(*Flow) { doneAt = sim.Now() })
	sim.At(0.5, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 0) })
	sim.At(1.5, func() { n.SetLinkCapacityFactor(c.RackUplink(0), 1) })
	sim.Run()
	if doneAt <= 1.5 {
		t.Fatalf("coflow finished at %v, before its failed uplink recovered", doneAt)
	}
}
