package netsim

// MaxMinFair allocates link bandwidth by progressive filling (water
// filling), the standard emulation of long-lived TCP flows: all flows'
// rates rise together until some link saturates; that link's flows freeze
// at their current rate and filling continues on the rest.
//
// This matches the paper's §6.6 baseline: "a max-min fair bandwidth
// allocation mechanism to emulate TCP".
//
// Filling is component-local: the link–flow graph is first partitioned
// into connected components (flows sharing no link, directly or
// transitively, cannot influence each other's max-min share) and each
// component is water-filled independently with its own fill level. The
// rates are the same max-min fixpoint a single global fill computes, but
// the floating-point operation sequence of one component never depends on
// another component's bottleneck events — the arithmetic locality
// IncrementalMaxMin relies on to reuse cached rates for untouched
// components bit-exactly (see incremental.go).
type MaxMinFair struct{}

// Name implements Policy.
func (MaxMinFair) Name() string { return "maxmin" }

// Allocate implements Policy.
func (MaxMinFair) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	remaining := scratch
	copy(remaining, caps)
	if len(flows) == 0 {
		return
	}

	// Union links that share a flow; each union-find root identifies one
	// connected component. Components touch disjoint link sets, so filling
	// them in any order against the shared remaining array is exact.
	parent := make([]int, len(remaining))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, f := range flows {
		r0 := find(int(f.path[0]))
		for _, l := range f.path[1:] {
			r := find(int(l))
			if r != r0 {
				parent[r] = r0
			}
		}
	}

	// Bucket flows per component in first-seen flow order, preserving the
	// caller's flow order inside each bucket (determinism: the Network
	// iterates flows in start order).
	roots := make([]int, 0, 8)
	buckets := make(map[int][]*Flow, 8)
	for _, f := range flows {
		r := find(int(f.path[0]))
		if _, ok := buckets[r]; !ok {
			roots = append(roots, r)
		}
		buckets[r] = append(buckets[r], f)
	}
	for _, r := range roots {
		maxMinFill(buckets[r], remaining, func(f *Flow) float64 { return 0 })
	}
}

// maxMinFill water-fills the given flows on the remaining link capacities,
// setting each flow's rate to base(f) + its max-min share. remaining is
// consumed in place. Flows with an empty path are given an unbounded share
// by construction and must be excluded by the caller (Network never passes
// them in).
//
// Link charging is link-centric: when the common fill level rises by delta,
// each link is charged delta·(unfrozen flows on it) in ONE floating-point
// operation rather than one subtraction per flow. This is the arithmetic
// contract GroupedMaxMin reproduces — both compute the same float sequence
// from the same integer link counts, which is what makes the grouped
// allocator bit-identical to this reference (see grouped.go and the
// differential tests). MaxMinFair calls it once per connected component;
// Varys uses it globally for work-conserving backfill, where component
// decoupling is irrelevant (nothing caches Varys rates).
func maxMinFill(flows []*Flow, remaining []float64, base func(*Flow) float64) {
	if len(flows) == 0 {
		return
	}
	// unfrozenOnLink[l] = number of still-filling flows using link l.
	// Indexed slices (not maps) keep iteration order — and therefore
	// floating-point rounding — deterministic across runs.
	unfrozenOnLink := make([]int, len(remaining))
	for _, f := range flows {
		f.rate = base(f)
		for _, l := range f.path {
			unfrozenOnLink[int(l)]++
		}
	}
	frozen := make([]bool, len(flows))
	unfrozenCount := len(flows)
	level := 0.0 // current common fill level added on top of base rates

	for unfrozenCount > 0 {
		// Find the link that saturates first as the level rises.
		bottleneck := -1
		bottleneckLevel := 0.0
		for l, cnt := range unfrozenOnLink {
			if cnt == 0 {
				continue
			}
			lv := level + remaining[l]/float64(cnt)
			if bottleneck == -1 || lv < bottleneckLevel {
				bottleneck = l
				bottleneckLevel = lv
			}
		}
		if bottleneck == -1 {
			// No capacity-constrained links left (cannot happen on our
			// topology since every flow crosses two NICs), freeze at level.
			break
		}
		delta := bottleneckLevel - level
		// Raise every unfrozen flow by delta, then charge each link once
		// for all its unfrozen flows.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.rate += delta
		}
		for l, cnt := range unfrozenOnLink {
			if cnt == 0 {
				continue
			}
			remaining[l] -= delta * float64(cnt)
			if remaining[l] < 0 {
				remaining[l] = 0 // numerical dust
			}
		}
		level = bottleneckLevel
		// Freeze flows on the bottleneck link.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			for _, l := range f.path {
				if int(l) == bottleneck {
					frozen[i] = true
					unfrozenCount--
					for _, l2 := range f.path {
						unfrozenOnLink[int(l2)]--
					}
					break
				}
			}
		}
		remaining[bottleneck] = 0
		unfrozenOnLink[bottleneck] = 0
	}
}
