package netsim

// MaxMinFair allocates link bandwidth by progressive filling (water
// filling), the standard emulation of long-lived TCP flows: all flows'
// rates rise together until some link saturates; that link's flows freeze
// at their current rate and filling continues on the rest.
//
// This matches the paper's §6.6 baseline: "a max-min fair bandwidth
// allocation mechanism to emulate TCP".
type MaxMinFair struct{}

// Name implements Policy.
func (MaxMinFair) Name() string { return "maxmin" }

// Allocate implements Policy.
func (MaxMinFair) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	remaining := scratch
	copy(remaining, caps)
	maxMinFill(flows, remaining, func(f *Flow) float64 { return 0 })
}

// maxMinFill water-fills the given flows on the remaining link capacities,
// setting each flow's rate to base(f) + its max-min share. remaining is
// consumed in place. Flows with an empty path are given an unbounded share
// by construction and must be excluded by the caller (Network never passes
// them in).
//
// Link charging is link-centric: when the common fill level rises by delta,
// each link is charged delta·(unfrozen flows on it) in ONE floating-point
// operation rather than one subtraction per flow. This is the arithmetic
// contract GroupedMaxMin reproduces — both compute the same float sequence
// from the same integer link counts, which is what makes the grouped
// allocator bit-identical to this reference (see grouped.go and the
// differential tests).
func maxMinFill(flows []*Flow, remaining []float64, base func(*Flow) float64) {
	if len(flows) == 0 {
		return
	}
	// unfrozenOnLink[l] = number of still-filling flows using link l.
	// Indexed slices (not maps) keep iteration order — and therefore
	// floating-point rounding — deterministic across runs.
	unfrozenOnLink := make([]int, len(remaining))
	for _, f := range flows {
		f.rate = base(f)
		for _, l := range f.path {
			unfrozenOnLink[int(l)]++
		}
	}
	frozen := make([]bool, len(flows))
	unfrozenCount := len(flows)
	level := 0.0 // current common fill level added on top of base rates

	for unfrozenCount > 0 {
		// Find the link that saturates first as the level rises.
		bottleneck := -1
		bottleneckLevel := 0.0
		for l, cnt := range unfrozenOnLink {
			if cnt == 0 {
				continue
			}
			lv := level + remaining[l]/float64(cnt)
			if bottleneck == -1 || lv < bottleneckLevel {
				bottleneck = l
				bottleneckLevel = lv
			}
		}
		if bottleneck == -1 {
			// No capacity-constrained links left (cannot happen on our
			// topology since every flow crosses two NICs), freeze at level.
			break
		}
		delta := bottleneckLevel - level
		// Raise every unfrozen flow by delta, then charge each link once
		// for all its unfrozen flows.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.rate += delta
		}
		for l, cnt := range unfrozenOnLink {
			if cnt == 0 {
				continue
			}
			remaining[l] -= delta * float64(cnt)
			if remaining[l] < 0 {
				remaining[l] = 0 // numerical dust
			}
		}
		level = bottleneckLevel
		// Freeze flows on the bottleneck link.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			for _, l := range f.path {
				if int(l) == bottleneck {
					frozen[i] = true
					unfrozenCount--
					for _, l2 := range f.path {
						unfrozenOnLink[int(l2)]--
					}
					break
				}
			}
		}
		remaining[bottleneck] = 0
		unfrozenOnLink[bottleneck] = 0
	}
}
