package netsim

import (
	"slices"

	"corral/internal/topology"
)

// GroupedMaxMin is a drop-in fast path for MaxMinFair: it collapses flows
// sharing an identical link path (same Network-interned pathID) into one
// equivalence class before water-filling. On the two-level CLOS there are
// only O(racks²) distinct paths regardless of flow count — the execution
// engine's rack-aggregated shuffle transfers reuse a handful of paths per
// destination machine — so the fill loop runs over hundreds of groups
// instead of tens of thousands of flows.
//
// Equivalence contract: rates are bit-identical to MaxMinFair. Flows in one
// class are indistinguishable to progressive filling (same links, same
// freeze instant), and maxMinFill charges links with one aggregated
// delta·count operation per link per level, which is exactly the arithmetic
// performed here on group counts. Each member flow's rate in the reference
// is the same sum 0 + δ₁ + δ₂ + … accumulated below per group. The seeded
// differential tests in grouped_test.go enforce this bit-for-bit.
//
// Like the reference, filling is component-local: used links are
// partitioned into connected components via the groups' paths, and each
// component is filled with its own level/accumulator against its own links
// only. A component's rates are therefore a pure function of its
// (path, member-count) multiset and its links' capacities — the invariant
// IncrementalMaxMin exploits to reuse cached rates for components whose
// inputs did not change (see incremental.go).
//
// The allocator keeps reusable scratch keyed by pathID and link id, with
// round-stamping instead of clearing, so steady-state Allocate calls do not
// allocate. It is stateful: use one instance per Network (NewGroupedMaxMin),
// never share an instance across concurrently running simulations.
type GroupedMaxMin struct {
	// Per-pathID scratch, grown as new paths are interned. groupOf[id] is
	// only meaningful when gstamp[id] == round.
	groupOf []int32
	gstamp  []int32
	groups  []pathGroup

	// Per-link scratch. cnt[l] (unfrozen member flows on link l) and
	// linkGroups[l] (indices of groups whose path crosses l) are only
	// meaningful when cstamp[l] == round. used holds the id-sorted links
	// with any members, so the fill loop never scans the full link table.
	cnt        []int
	linkGroups [][]int32
	cstamp     []int32
	used       []int

	// Connected-component scratch, valid per round like cnt. parent is the
	// union-find forest over used links; compOf[l] is link l's dense
	// component ordinal (assigned in ascending-link-id order, so ordinals
	// are deterministic); compLinks[c] lists component c's links ascending;
	// gcomp[gi] is group gi's component; compGroups[c]/compRate[c] hold the
	// component's group count and final fill accumulator.
	parent     []int32
	compOf     []int32
	compLinks  [][]int32
	gcomp      []int32
	compGroups []int32
	compRate   []float64
	numComps   int

	round int32
}

type pathGroup struct {
	path   []topology.LinkID
	id     int32 // interned pathID: the group's stable identity across rounds
	count  int   // member flows
	rate   float64
	frozen bool
}

// NewGroupedMaxMin returns a grouped allocator for use by one Network.
func NewGroupedMaxMin() *GroupedMaxMin { return &GroupedMaxMin{} }

// Name implements Policy.
func (g *GroupedMaxMin) Name() string { return "maxmin-grouped" }

// Allocate implements Policy. Panics if any flow was constructed outside
// Network.StartPath (pathID 0): grouping needs the interned path identity.
//
// The steady state is allocation-free (round-stamped scratch, grow-once
// slices), pinned dynamically by BenchmarkRecomputeGrouped10k and
// statically by the hotalloc analyzer via the marker below.
//
//corral:hotpath
func (g *GroupedMaxMin) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	remaining := scratch
	copy(remaining, caps)
	if len(flows) == 0 {
		return
	}
	g.build(flows, len(remaining))
	g.partition()
	for ci := 0; ci < g.numComps; ci++ {
		g.fillComponent(ci, remaining)
	}
	g.assignRates(flows)
}

// build groups the flows by interned pathID, recomputes the per-link
// member counts, group lists and used-link set, and unions links sharing a
// group into the component forest. Shared by GroupedMaxMin and
// IncrementalMaxMin; round-stamped scratch keeps it allocation-free in the
// steady state.
//
//corral:hotpath
func (g *GroupedMaxMin) build(flows []*Flow, nLinks int) {
	g.round++
	if g.round < 0 { // stamp counter wrapped; invalidate all stamps
		for i := range g.gstamp {
			g.gstamp[i] = 0
		}
		for i := range g.cstamp {
			g.cstamp[i] = 0
		}
		g.round = 1
	}

	// Build equivalence classes in flow order (deterministic: the Network
	// iterates flows in start order).
	g.groups = g.groups[:0]
	for _, f := range flows {
		id := int(f.pathID)
		if id == 0 {
			panic("netsim: GroupedMaxMin requires flows started via Network.StartPath (pathID unset)")
		}
		if id >= len(g.groupOf) {
			g.groupOf = append(g.groupOf, make([]int32, id+1-len(g.groupOf))...)
			g.gstamp = append(g.gstamp, make([]int32, id+1-len(g.gstamp))...)
		}
		if g.gstamp[id] != g.round {
			g.gstamp[id] = g.round
			g.groupOf[id] = int32(len(g.groups))
			g.groups = append(g.groups, pathGroup{path: f.path, id: f.pathID, count: 1})
		} else {
			g.groups[g.groupOf[id]].count++
		}
	}

	// Per-link unfrozen member counts, per-link group membership, and the
	// sorted used-link list.
	if len(g.cnt) < nLinks {
		g.cnt = make([]int, nLinks)
		g.cstamp = make([]int32, nLinks)
		g.parent = make([]int32, nLinks)
		g.compOf = make([]int32, nLinks)
		lg := make([][]int32, nLinks)
		copy(lg, g.linkGroups) // keep already-grown member slices
		g.linkGroups = lg
	}
	g.used = g.used[:0]
	for gi := range g.groups {
		grp := &g.groups[gi]
		for _, l := range grp.path {
			li := int(l)
			if g.cstamp[li] != g.round {
				g.cstamp[li] = g.round
				g.cnt[li] = 0
				g.linkGroups[li] = g.linkGroups[li][:0]
				g.parent[li] = int32(li)
				g.compOf[li] = -1
				g.used = append(g.used, li)
			}
			g.cnt[li] += grp.count
			g.linkGroups[li] = append(g.linkGroups[li], int32(gi))
		}
		// Union the group's links into one component.
		r0 := g.find(int32(grp.path[0]))
		for _, l := range grp.path[1:] {
			r := g.find(int32(l))
			if r != r0 {
				g.parent[r] = r0
			}
		}
	}
	// Ascending link ids make the bottleneck scan pick the same link as the
	// reference's full-table scan (strict < keeps the lowest id on ties).
	slices.Sort(g.used)
}

// find resolves link l's union-find root with path compression. Only valid
// for links stamped in the current round.
func (g *GroupedMaxMin) find(l int32) int32 {
	for g.parent[l] != l {
		g.parent[l] = g.parent[g.parent[l]]
		l = g.parent[l]
	}
	return l
}

// partition assigns dense component ordinals to the used links (in
// ascending-link-id order, hence deterministic), collects each component's
// link list, and tags every group with its component.
//
//corral:hotpath
func (g *GroupedMaxMin) partition() {
	g.numComps = 0
	for _, l := range g.used {
		r := g.find(int32(l))
		c := g.compOf[r]
		if c < 0 {
			c = int32(g.numComps)
			g.compOf[r] = c
			if g.numComps < len(g.compLinks) {
				g.compLinks[g.numComps] = g.compLinks[g.numComps][:0]
				g.compGroups[g.numComps] = 0
			} else {
				g.compLinks = append(g.compLinks, nil)
				g.compGroups = append(g.compGroups, 0)
				g.compRate = append(g.compRate, 0)
			}
			g.numComps++
		}
		g.compOf[l] = c
		g.compLinks[c] = append(g.compLinks[c], int32(l))
	}
	g.gcomp = g.gcomp[:0]
	for gi := range g.groups {
		c := g.compOf[int(g.groups[gi].path[0])]
		g.gcomp = append(g.gcomp, c)
		g.compGroups[c]++
	}
}

// fillComponent water-fills one component's groups over its own links.
// Every unfrozen group has base rate 0 and receives the same delta at every
// level, so one shared accumulator (rateAcc, summed with exactly the
// reference's 0 + δ₁ + δ₂ + … operation order) stands in for all of them: a
// group's rate is the accumulator's value at the instant it freezes. The
// final accumulator is saved per component so groups left unfrozen (no
// constrained links, impossible on our topology but kept for parity with
// the reference's early break) pick it up in assignRates.
//
//corral:hotpath
func (g *GroupedMaxMin) fillComponent(ci int, remaining []float64) {
	links := g.compLinks[ci]
	unfrozen := int(g.compGroups[ci])
	level := 0.0
	rateAcc := 0.0
	for unfrozen > 0 {
		bottleneck := -1
		bottleneckLevel := 0.0
		for _, l32 := range links {
			l := int(l32)
			c := g.cnt[l]
			if c == 0 {
				continue
			}
			lv := level + remaining[l]/float64(c)
			if bottleneck == -1 || lv < bottleneckLevel {
				bottleneck = l
				bottleneckLevel = lv
			}
		}
		if bottleneck == -1 {
			break
		}
		delta := bottleneckLevel - level
		rateAcc += delta
		for _, l32 := range links {
			l := int(l32)
			c := g.cnt[l]
			if c == 0 {
				continue
			}
			remaining[l] -= delta * float64(c)
			if remaining[l] < 0 {
				remaining[l] = 0 // numerical dust
			}
		}
		level = bottleneckLevel
		for _, gi := range g.linkGroups[bottleneck] {
			grp := &g.groups[gi]
			if grp.frozen {
				continue
			}
			grp.frozen = true
			grp.rate = rateAcc
			unfrozen--
			for _, l2 := range grp.path {
				g.cnt[int(l2)] -= grp.count
			}
		}
		remaining[bottleneck] = 0
		g.cnt[bottleneck] = 0
	}
	g.compRate[ci] = rateAcc
}

// assignRates copies group rates to member flows, giving groups that never
// froze their component's final accumulator (the reference's early-break
// behavior, per component).
//
//corral:hotpath
func (g *GroupedMaxMin) assignRates(flows []*Flow) {
	for gi := range g.groups {
		grp := &g.groups[gi]
		if !grp.frozen {
			grp.rate = g.compRate[g.gcomp[gi]]
		}
	}
	for _, f := range flows {
		f.rate = g.groups[g.groupOf[int(f.pathID)]].rate
	}
}
