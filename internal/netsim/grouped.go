package netsim

import (
	"slices"

	"corral/internal/topology"
)

// GroupedMaxMin is a drop-in fast path for MaxMinFair: it collapses flows
// sharing an identical link path (same Network-interned pathID) into one
// equivalence class before water-filling. On the two-level CLOS there are
// only O(racks²) distinct paths regardless of flow count — the execution
// engine's rack-aggregated shuffle transfers reuse a handful of paths per
// destination machine — so the fill loop runs over hundreds of groups
// instead of tens of thousands of flows.
//
// Equivalence contract: rates are bit-identical to MaxMinFair. Flows in one
// class are indistinguishable to progressive filling (same links, same
// freeze instant), and maxMinFill charges links with one aggregated
// delta·count operation per link per level, which is exactly the arithmetic
// performed here on group counts. Each member flow's rate in the reference
// is the same sum 0 + δ₁ + δ₂ + … accumulated below per group. The seeded
// differential tests in grouped_test.go enforce this bit-for-bit.
//
// The allocator keeps reusable scratch keyed by pathID and link id, with
// round-stamping instead of clearing, so steady-state Allocate calls do not
// allocate. It is stateful: use one instance per Network (NewGroupedMaxMin),
// never share an instance across concurrently running simulations.
type GroupedMaxMin struct {
	// Per-pathID scratch, grown as new paths are interned. groupOf[id] is
	// only meaningful when gstamp[id] == round.
	groupOf []int32
	gstamp  []int32
	groups  []pathGroup

	// Per-link scratch. cnt[l] (unfrozen member flows on link l) and
	// linkGroups[l] (indices of groups whose path crosses l) are only
	// meaningful when cstamp[l] == round. used holds the id-sorted links
	// with any members, so the fill loop never scans the full link table.
	cnt        []int
	linkGroups [][]int32
	cstamp     []int32
	used       []int

	round int32
}

type pathGroup struct {
	path   []topology.LinkID
	count  int // member flows
	rate   float64
	frozen bool
}

// NewGroupedMaxMin returns a grouped allocator for use by one Network.
func NewGroupedMaxMin() *GroupedMaxMin { return &GroupedMaxMin{} }

// Name implements Policy.
func (g *GroupedMaxMin) Name() string { return "maxmin-grouped" }

// Allocate implements Policy. Panics if any flow was constructed outside
// Network.StartPath (pathID 0): grouping needs the interned path identity.
//
// The steady state is allocation-free (round-stamped scratch, grow-once
// slices), pinned dynamically by BenchmarkRecomputeGrouped10k and
// statically by the hotalloc analyzer via the marker below.
//
//corral:hotpath
func (g *GroupedMaxMin) Allocate(flows []*Flow, caps []float64, scratch []float64) {
	remaining := scratch
	copy(remaining, caps)
	if len(flows) == 0 {
		return
	}

	g.round++
	if g.round < 0 { // stamp counter wrapped; invalidate all stamps
		for i := range g.gstamp {
			g.gstamp[i] = 0
		}
		for i := range g.cstamp {
			g.cstamp[i] = 0
		}
		g.round = 1
	}

	// Build equivalence classes in flow order (deterministic: the Network
	// iterates flows in start order).
	g.groups = g.groups[:0]
	for _, f := range flows {
		id := int(f.pathID)
		if id == 0 {
			panic("netsim: GroupedMaxMin requires flows started via Network.StartPath (pathID unset)")
		}
		if id >= len(g.groupOf) {
			g.groupOf = append(g.groupOf, make([]int32, id+1-len(g.groupOf))...)
			g.gstamp = append(g.gstamp, make([]int32, id+1-len(g.gstamp))...)
		}
		if g.gstamp[id] != g.round {
			g.gstamp[id] = g.round
			g.groupOf[id] = int32(len(g.groups))
			g.groups = append(g.groups, pathGroup{path: f.path, count: 1})
		} else {
			g.groups[g.groupOf[id]].count++
		}
	}

	// Per-link unfrozen member counts, per-link group membership, and the
	// sorted used-link list.
	if len(g.cnt) < len(remaining) {
		g.cnt = make([]int, len(remaining))
		g.cstamp = make([]int32, len(remaining))
		lg := make([][]int32, len(remaining))
		copy(lg, g.linkGroups) // keep already-grown member slices
		g.linkGroups = lg
	}
	g.used = g.used[:0]
	for gi := range g.groups {
		grp := &g.groups[gi]
		for _, l := range grp.path {
			li := int(l)
			if g.cstamp[li] != g.round {
				g.cstamp[li] = g.round
				g.cnt[li] = 0
				g.linkGroups[li] = g.linkGroups[li][:0]
				g.used = append(g.used, li)
			}
			g.cnt[li] += grp.count
			g.linkGroups[li] = append(g.linkGroups[li], int32(gi))
		}
	}
	// Ascending link ids make the bottleneck scan pick the same link as the
	// reference's full-table scan (strict < keeps the lowest id on ties).
	slices.Sort(g.used)

	// Water-fill over groups. Every unfrozen group has base rate 0 and
	// receives the same delta at every level, so one shared accumulator
	// (rateAcc, summed with exactly the reference's 0 + δ₁ + δ₂ + …
	// operation order) stands in for all of them: a group's rate is the
	// accumulator's value at the instant it freezes. That removes the
	// per-level sweep over all groups — freezing touches only the
	// bottleneck link's member groups via linkGroups.
	unfrozen := len(g.groups)
	level := 0.0
	rateAcc := 0.0
	for unfrozen > 0 {
		bottleneck := -1
		bottleneckLevel := 0.0
		for _, l := range g.used {
			c := g.cnt[l]
			if c == 0 {
				continue
			}
			lv := level + remaining[l]/float64(c)
			if bottleneck == -1 || lv < bottleneckLevel {
				bottleneck = l
				bottleneckLevel = lv
			}
		}
		if bottleneck == -1 {
			break
		}
		delta := bottleneckLevel - level
		rateAcc += delta
		for _, l := range g.used {
			c := g.cnt[l]
			if c == 0 {
				continue
			}
			remaining[l] -= delta * float64(c)
			if remaining[l] < 0 {
				remaining[l] = 0 // numerical dust
			}
		}
		level = bottleneckLevel
		for _, gi := range g.linkGroups[bottleneck] {
			grp := &g.groups[gi]
			if grp.frozen {
				continue
			}
			grp.frozen = true
			grp.rate = rateAcc
			unfrozen--
			for _, l2 := range grp.path {
				g.cnt[int(l2)] -= grp.count
			}
		}
		remaining[bottleneck] = 0
		g.cnt[bottleneck] = 0
	}
	if unfrozen > 0 {
		// No constrained links left: the remaining groups keep the sum
		// accumulated so far, exactly like the reference's early break.
		for gi := range g.groups {
			grp := &g.groups[gi]
			if !grp.frozen {
				grp.rate = rateAcc
			}
		}
	}

	for _, f := range flows {
		f.rate = g.groups[g.groupOf[int(f.pathID)]].rate
	}
}
