package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"corral/internal/des"
	"corral/internal/topology"
)

const gbps = 1e9 / 8

func testCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	return topology.MustNew(topology.Config{
		Racks:            3,
		MachinesPerRack:  4,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5, // rack uplink = 4*10/5 = 8 Gbps
	})
}

func newNet(t *testing.T, p Policy) (*des.Simulator, *Network) {
	t.Helper()
	sim := des.New()
	return sim, New(sim, testCluster(t), p)
}

func TestSingleFlowNICLimited(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var doneAt des.Time
	// Intra-rack flow: limited by the 10 Gbps NIC.
	n.Start(0, 1, 10*gbps, 0, 1, func(*Flow) { doneAt = sim.Now() })
	sim.Run()
	if math.Abs(float64(doneAt)-1.0) > 1e-6 {
		t.Fatalf("10Gb intra-rack flow on a 10Gbps NIC finished at %v, want 1s", doneAt)
	}
}

func TestSingleFlowCrossRackLimited(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var doneAt des.Time
	// Cross-rack flow: limited by the 8 Gbps rack uplink.
	n.Start(0, 4, 8*gbps, 0, 1, func(*Flow) { doneAt = sim.Now() })
	sim.Run()
	if math.Abs(float64(doneAt)-1.0) > 1e-6 {
		t.Fatalf("8Gb cross-rack flow on an 8Gbps uplink finished at %v, want 1s", doneAt)
	}
}

func TestTwoFlowsShareUplink(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var t1, t2 des.Time
	// Two flows from different machines in rack 0 to rack 1 share the
	// 8 Gbps uplink: 4 Gbps each.
	n.Start(0, 4, 4*gbps, 0, 1, func(*Flow) { t1 = sim.Now() })
	n.Start(1, 5, 4*gbps, 0, 2, func(*Flow) { t2 = sim.Now() })
	sim.Run()
	if math.Abs(float64(t1)-1.0) > 1e-6 || math.Abs(float64(t2)-1.0) > 1e-6 {
		t.Fatalf("equal flows finished at %v and %v, want 1s each", t1, t2)
	}
}

func TestShortFlowFreesBandwidth(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var tShort, tLong des.Time
	// Share 8Gbps uplink. Short: 2Gb, long: 6Gb.
	// Phase 1: both at 4 Gbps; short finishes at 0.5s (2/4).
	// Phase 2: long has 4Gb left at 8 Gbps -> +0.5s. Total 1.0s.
	n.Start(0, 4, 2*gbps, 0, 1, func(*Flow) { tShort = sim.Now() })
	n.Start(1, 5, 6*gbps, 0, 2, func(*Flow) { tLong = sim.Now() })
	sim.Run()
	if math.Abs(float64(tShort)-0.5) > 1e-6 {
		t.Fatalf("short flow finished at %v, want 0.5s", tShort)
	}
	if math.Abs(float64(tLong)-1.0) > 1e-6 {
		t.Fatalf("long flow finished at %v, want 1.0s", tLong)
	}
}

func TestIntraRackFullBisection(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	// Four disjoint intra-rack pairs: all should run at full NIC speed in
	// parallel (full bisection within the rack).
	var finish [2]des.Time
	n.Start(0, 1, 10*gbps, 0, 1, func(*Flow) { finish[0] = sim.Now() })
	n.Start(2, 3, 10*gbps, 0, 2, func(*Flow) { finish[1] = sim.Now() })
	sim.Run()
	for i, at := range finish {
		if math.Abs(float64(at)-1.0) > 1e-6 {
			t.Fatalf("disjoint intra-rack flow %d finished at %v, want 1s", i, at)
		}
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	// Flow A: 0->1 intra-rack (NIC limited, should get leftover 10Gbps... )
	// Flow B and C: 2->4 and 3->5 cross rack (uplink 8Gbps shared: 4 each).
	// A shares no links with B/C, so A gets the full 10 Gbps.
	var ta des.Time
	n.Start(0, 1, 10*gbps, 0, 1, func(*Flow) { ta = sim.Now() })
	n.Start(2, 4, 100*gbps, 0, 2, nil)
	n.Start(3, 5, 100*gbps, 0, 3, nil)
	sim.RunUntil(0)
	rates := n.Rates()
	if len(rates) != 3 {
		t.Fatalf("active flows = %d, want 3", len(rates))
	}
	sim.Run()
	if math.Abs(float64(ta)-1.0) > 1e-6 {
		t.Fatalf("independent intra-rack flow finished at %v, want 1s", ta)
	}
}

func TestLoopbackFlow(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	var done bool
	n.Start(3, 3, 1e12, 0, 1, func(*Flow) { done = true })
	sim.Run()
	if !done {
		t.Fatal("loopback flow never completed")
	}
	if n.CrossRackBytes() != 0 {
		t.Fatal("loopback flow counted as cross-rack")
	}
	if sim.Now() > 2 {
		t.Fatalf("loopback copy took %v, want ~1s at loopback rate", sim.Now())
	}
}

func TestZeroByteFlowCompletesAsync(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	calls := 0
	n.Start(0, 4, 0, 0, 1, func(*Flow) {
		calls++
		// Starting a new flow from inside a completion callback must work.
		n.Start(4, 0, 0, 0, 1, func(*Flow) { calls++ })
	})
	if calls != 0 {
		t.Fatal("zero-byte flow completed synchronously")
	}
	sim.Run()
	if calls != 2 {
		t.Fatalf("completion callbacks = %d, want 2", calls)
	}
}

func TestCrossRackAccounting(t *testing.T) {
	sim, n := newNet(t, MaxMinFair{})
	n.Start(0, 4, 1000, 0, 7, nil) // cross-rack
	n.Start(0, 1, 500, 0, 7, nil)  // intra-rack
	n.Start(1, 8, 200, 0, 9, nil)  // cross-rack, other job
	n.Start(2, 9, 100, 0, -1, nil) // unattributed
	sim.Run()
	if got := n.CrossRackBytes(); got != 1300 {
		t.Fatalf("CrossRackBytes = %g, want 1300", got)
	}
	if got := n.CrossRackBytesByJob(7); got != 1000 {
		t.Fatalf("job 7 cross-rack = %g, want 1000", got)
	}
	if got := n.CrossRackBytesByJob(9); got != 200 {
		t.Fatalf("job 9 cross-rack = %g, want 200", got)
	}
	if got := n.TotalBytes(); got != 1800 {
		t.Fatalf("TotalBytes = %g, want 1800", got)
	}
}

func TestNegativeFlowPanics(t *testing.T) {
	_, n := newNet(t, MaxMinFair{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative flow size did not panic")
		}
	}()
	n.Start(0, 1, -5, 0, 1, nil)
}

// checkFeasible asserts no link carries more than its capacity and no flow
// has a negative rate.
func checkFeasible(t *testing.T, cl *topology.Cluster, flows []*Flow) {
	t.Helper()
	usage := make([]float64, cl.NumLinks())
	for _, f := range flows {
		if f.rate < -1e-9 {
			t.Fatalf("flow %d has negative rate %g", f.ID, f.rate)
		}
		for _, l := range f.path {
			usage[l] += f.rate
		}
	}
	for i, l := range cl.Links() {
		if usage[i] > l.Capacity*(1+1e-9)+1e-6 {
			t.Fatalf("link %s oversubscribed: %g > %g", l.Name, usage[i], l.Capacity)
		}
	}
}

// Property: max-min allocations are feasible and every flow is bottlenecked
// on at least one saturated link (Pareto efficiency of max-min fairness).
func TestQuickMaxMinFeasibleAndSaturated(t *testing.T) {
	cl := testCluster(t)
	nMachines := cl.Config.Machines()
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(count%20) + 1
		flows := make([]*Flow, 0, k)
		for i := 0; i < k; i++ {
			src := rng.Intn(nMachines)
			dst := rng.Intn(nMachines)
			if src == dst {
				dst = (dst + 1) % nMachines
			}
			fl := &Flow{ID: int64(i), Src: src, Dst: dst, remaining: 1e9}
			fl.path, fl.CrossRack = cl.Path(src, dst)
			flows = append(flows, fl)
		}
		caps := make([]float64, cl.NumLinks())
		for i, l := range cl.Links() {
			caps[i] = l.Capacity
		}
		scratch := make([]float64, len(caps))
		MaxMinFair{}.Allocate(flows, caps, scratch)

		usage := make([]float64, cl.NumLinks())
		for _, fl := range flows {
			if fl.rate <= 0 {
				return false // every flow must get bandwidth
			}
			for _, l := range fl.path {
				usage[l] += fl.rate
			}
		}
		for i, l := range cl.Links() {
			if usage[i] > l.Capacity*(1+1e-6) {
				return false
			}
		}
		// Pareto efficiency: each flow crosses >= 1 saturated link.
		for _, fl := range flows {
			saturated := false
			for _, l := range fl.path {
				if usage[l] >= cl.Links()[l].Capacity*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Varys allocations are always feasible and work-conserving in
// the sense that total allocated rate >= max-min's total (it backfills).
func TestQuickVarysFeasible(t *testing.T) {
	cl := testCluster(t)
	nMachines := cl.Config.Machines()
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(count%20) + 2
		flows := make([]*Flow, 0, k)
		for i := 0; i < k; i++ {
			src := rng.Intn(nMachines)
			dst := rng.Intn(nMachines)
			if src == dst {
				dst = (dst + 1) % nMachines
			}
			fl := &Flow{
				ID: int64(i), Src: src, Dst: dst,
				remaining: float64(rng.Intn(1000)+1) * 1e6,
				Coflow:    CoflowID(rng.Intn(4)), // some in coflows, some not
			}
			fl.path, fl.CrossRack = cl.Path(src, dst)
			flows = append(flows, fl)
		}
		caps := make([]float64, cl.NumLinks())
		for i, l := range cl.Links() {
			caps[i] = l.Capacity
		}
		scratch := make([]float64, len(caps))
		Varys{}.Allocate(flows, caps, scratch)

		usage := make([]float64, cl.NumLinks())
		for _, fl := range flows {
			if fl.rate < -1e-9 {
				return false
			}
			for _, l := range fl.path {
				usage[l] += fl.rate
			}
		}
		for i, l := range cl.Links() {
			if usage[i] > l.Capacity*(1+1e-6)+1e-3 {
				return false
			}
		}
		// Work conservation: some bandwidth is always allocated. (Individual
		// flows may legitimately get zero under strict coflow priority when
		// a higher-priority coflow saturates their links.)
		total := 0.0
		for _, fl := range flows {
			total += fl.rate
		}
		return total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVarysPrioritizesSmallCoflow(t *testing.T) {
	sim, n := newNet(t, Varys{})
	var tSmall, tBig des.Time
	// Two coflows compete for the rack 0 uplink (8 Gbps).
	// Small coflow: 2 Gb; big coflow: 16 Gb. Under SEBF the small coflow
	// finishes first, far sooner than its fair-share time.
	big := func(*Flow) { tBig = sim.Now() }
	n.Start(0, 4, 16*gbps, CoflowID(2), 2, big)
	n.Start(1, 5, 2*gbps, CoflowID(1), 1, func(*Flow) { tSmall = sim.Now() })
	sim.Run()
	if tSmall >= tBig {
		t.Fatalf("small coflow finished at %v, after big at %v", tSmall, tBig)
	}
	// Under plain fair sharing the small coflow would finish at 0.5s
	// (2Gb at 4Gbps). Under SEBF it gets priority: ~0.25s at 8 Gbps.
	if float64(tSmall) > 0.45 {
		t.Fatalf("SEBF small coflow finished at %v, want ~0.25s (< fair-share 0.5s)", tSmall)
	}
	// Work conservation: the big coflow still finishes around 18/8 = 2.25s.
	if math.Abs(float64(tBig)-2.25) > 0.1 {
		t.Fatalf("big coflow finished at %v, want ~2.25s", tBig)
	}
}

func TestVarysMADDNoWastedBandwidth(t *testing.T) {
	// A coflow with two flows of different sizes through the same uplink:
	// MADD gives the bigger flow more bandwidth so both finish together.
	cl := testCluster(t)
	f1 := &Flow{ID: 1, Src: 0, Dst: 4, remaining: 6 * gbps, Coflow: 1}
	f1.path, _ = cl.Path(0, 4)
	f2 := &Flow{ID: 2, Src: 1, Dst: 5, remaining: 2 * gbps, Coflow: 1}
	f2.path, _ = cl.Path(1, 5)
	caps := make([]float64, cl.NumLinks())
	for i, l := range cl.Links() {
		caps[i] = l.Capacity
	}
	scratch := make([]float64, len(caps))
	Varys{}.Allocate([]*Flow{f1, f2}, caps, scratch)
	// Gamma = 8Gb/8Gbps = 1s -> f1 at 6Gbps, f2 at 2Gbps (plus any backfill
	// headroom on NICs, but uplink is the binding constraint).
	ratio := f1.rate / f2.rate
	if math.Abs(ratio-3.0) > 0.01 {
		t.Fatalf("MADD rate ratio = %g, want 3 (proportional to sizes)", ratio)
	}
}

func TestManyFlowsDeterministic(t *testing.T) {
	run := func() (des.Time, float64) {
		sim := des.New()
		n := New(sim, testCluster(t), MaxMinFair{})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200; i++ {
			src := rng.Intn(12)
			dst := rng.Intn(12)
			if src == dst {
				dst = (dst + 1) % 12
			}
			n.Start(src, dst, float64(rng.Intn(1000)+1)*1e6, 0, i%5, nil)
		}
		sim.Run()
		return sim.Now(), n.CrossRackBytes()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("simulation not deterministic: (%v,%g) vs (%v,%g)", t1, c1, t2, c2)
	}
	if t1 <= 0 {
		t.Fatal("simulation finished instantly")
	}
}

func TestBackgroundTrafficSlowsCrossRack(t *testing.T) {
	run := func(bg float64) des.Time {
		sim := des.New()
		cl := topology.MustNew(topology.Config{
			Racks: 3, MachinesPerRack: 4, SlotsPerMachine: 2,
			NICBandwidth: 10 * gbps, Oversubscription: 5,
			BackgroundPerRack: bg,
		})
		n := New(sim, cl, MaxMinFair{})
		n.Start(0, 4, 8*gbps, 0, 1, nil)
		sim.Run()
		return sim.Now()
	}
	noBG := run(0)
	withBG := run(4 * gbps) // halves the 8 Gbps uplink
	if math.Abs(float64(withBG)/float64(noBG)-2.0) > 1e-6 {
		t.Fatalf("background traffic slowdown = %g, want 2x", float64(withBG)/float64(noBG))
	}
}
