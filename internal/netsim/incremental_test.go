package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"corral/internal/des"
	"corral/internal/topology"
)

// incFlow builds a Flow the way StartPath would have, with an explicit
// interned pathID, for driving allocators directly in tests.
func incFlow(id int64, pathID int32, path []topology.LinkID) *Flow {
	return &Flow{ID: id, Bytes: 1, remaining: 1, path: path, pathID: pathID}
}

// ratesBits captures every flow's rate bit-exactly, in slice order.
func ratesBits(flows []*Flow) []uint64 {
	out := make([]uint64, len(flows))
	for i, f := range flows {
		out[i] = math.Float64bits(f.rate)
	}
	return out
}

// assertSameAsFresh allocates the same flow set under a fresh GroupedMaxMin
// and a fresh MaxMinFair and requires the candidate's rates to match both
// bit for bit.
func assertSameAsFresh(t *testing.T, label string, flows []*Flow, caps []float64) {
	t.Helper()
	got := ratesBits(flows)
	scratch := make([]float64, len(caps))
	NewGroupedMaxMin().Allocate(flows, caps, scratch)
	if want := ratesBits(flows); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: rates diverge from fresh GroupedMaxMin:\n got:  %v\n want: %v", label, got, want)
	}
	MaxMinFair{}.Allocate(flows, caps, scratch)
	if want := ratesBits(flows); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: rates diverge from fresh MaxMinFair:\n got:  %v\n want: %v", label, got, want)
	}
}

// TestIncrementalFallbackBoundary drives the dirty set across the
// full-recompute threshold from both sides: with FallbackFrac 0.25 over 8
// single-link groups the boundary is 2 dirty groups, so rounds dirtying
// 1 and 2 groups must take the incremental path and a round dirtying 3
// must fall back — with bit-identical rates throughout.
func TestIncrementalFallbackBoundary(t *testing.T) {
	const nGroups = 8
	caps := make([]float64, nGroups)
	for i := range caps {
		caps[i] = float64(i+1) * gbps // distinct caps so rates are distinct
	}
	scratch := make([]float64, nGroups)
	// paths[k] is the single-link path of group k (pathID k+1).
	paths := make([][]topology.LinkID, nGroups)
	for k := range paths {
		paths[k] = []topology.LinkID{topology.LinkID(k)}
	}
	var flows []*Flow
	nextID := int64(1)
	addFlow := func(group int) {
		flows = append(flows, incFlow(nextID, int32(group+1), paths[group]))
		nextID++
	}
	for k := 0; k < nGroups; k++ {
		addFlow(k)
	}

	inc := NewIncrementalMaxMin()
	round := func(label string, wantInc, wantFull int) {
		t.Helper()
		inc.Allocate(flows, caps, scratch)
		assertSameAsFresh(t, label, flows, caps)
		if gotInc, gotFull := inc.Rounds(); gotInc != wantInc || gotFull != wantFull {
			t.Fatalf("%s: rounds (inc %d, full %d), want (inc %d, full %d)",
				label, gotInc, gotFull, wantInc, wantFull)
		}
	}

	round("cold cache", 0, 1)          // no cache: full pass
	addFlow(0)                         // group 1 count 1→2
	round("1 dirty ≤ 2", 1, 1)         // under threshold: incremental
	addFlow(1)                         // groups 2,3 change
	addFlow(2)                         //
	round("2 dirty ≤ 2", 2, 1)         // exactly at threshold: incremental
	addFlow(3)                         // groups 4,5,6 change
	addFlow(4)                         //
	addFlow(5)                         //
	round("3 dirty > 2", 2, 2)         // over threshold: full fallback
	round("0 dirty (no change)", 3, 2) // clean cache hit: incremental
}

// TestIncrementalDirtyRules exercises each cache-invalidation rule in
// isolation — capacity change, vanished bridging path, and pure cache
// reuse — with FallbackFrac 1 so the incremental path always runs when a
// cache exists, and verifies rates stay bit-identical to a full pass.
func TestIncrementalDirtyRules(t *testing.T) {
	caps := []float64{2 * gbps, 3 * gbps, 5 * gbps, 7 * gbps}
	scratch := make([]float64, len(caps))
	pathA := []topology.LinkID{0}
	pathB := []topology.LinkID{1}
	pathC := []topology.LinkID{0, 1} // bridges A's and B's components
	pathD := []topology.LinkID{2, 3}
	fA := incFlow(1, 1, pathA)
	fB := incFlow(2, 2, pathB)
	fC := incFlow(3, 3, pathC)
	fD := incFlow(4, 4, pathD)

	inc := NewIncrementalMaxMin()
	inc.FallbackFrac = 1

	all := []*Flow{fA, fB, fC, fD}
	inc.Allocate(all, caps, scratch)
	assertSameAsFresh(t, "cold", all, caps)

	// Vanished bridge: dropping C splits {0,1} into two components; both
	// must be re-filled, D's component is untouched.
	noBridge := []*Flow{fA, fB, fD}
	inc.Allocate(noBridge, caps, scratch)
	assertSameAsFresh(t, "vanished bridge", noBridge, caps)

	// Capacity change on link 0 dirties only A's component.
	caps[0] = 1 * gbps
	inc.Allocate(noBridge, caps, scratch)
	assertSameAsFresh(t, "capacity change", noBridge, caps)

	// No change at all: pure cache reuse must reproduce the same rates.
	before := ratesBits(noBridge)
	inc.Allocate(noBridge, caps, scratch)
	if !reflect.DeepEqual(before, ratesBits(noBridge)) {
		t.Fatal("clean cache reuse changed rates")
	}
	assertSameAsFresh(t, "clean reuse", noBridge, caps)

	if gotInc, _ := inc.Rounds(); gotInc != 3 {
		t.Fatalf("incremental path ran %d times, want 3 (vanish, caps, reuse)", gotInc)
	}
}

// TestIncrementalBitIdenticalToGrouped is the differential gate for the
// incremental allocator: the PR 4 randomized scripts (starts, cancels,
// link faults, rack-aggregated paths) replayed under GroupedMaxMin and
// IncrementalMaxMin must produce bit-identical allocations, completions
// and accounting — at the default fallback threshold and with the
// fallback disabled (FallbackFrac 1, maximum incremental coverage).
func TestIncrementalBitIdenticalToGrouped(t *testing.T) {
	c := topology.MustNew(topology.Config{
		Racks:            4,
		MachinesPerRack:  5,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	totalInc := 0
	for seed := int64(1); seed <= 8; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), c, 300)
		ref := replay(c, ops, NewGroupedMaxMin())
		for _, frac := range []float64{0.25, 1} {
			inc := NewIncrementalMaxMin()
			inc.FallbackFrac = frac
			got := replay(c, ops, inc)
			if len(ref.snaps) != len(got.snaps) {
				t.Fatalf("seed %d frac %v: %d allocations under grouped, %d under incremental",
					seed, frac, len(ref.snaps), len(got.snaps))
			}
			for i := range ref.snaps {
				if !reflect.DeepEqual(ref.snaps[i], got.snaps[i]) {
					t.Fatalf("seed %d frac %v: allocation %d diverges:\n grouped:     %+v\n incremental: %+v",
						seed, frac, i, ref.snaps[i], got.snaps[i])
				}
			}
			if !reflect.DeepEqual(ref.completions, got.completions) {
				t.Fatalf("seed %d frac %v: completion times diverge", seed, frac)
			}
			if ref.cross != got.cross || ref.total != got.total || ref.served != got.served {
				t.Fatalf("seed %d frac %v: accounting diverges", seed, frac)
			}
			gotInc, _ := inc.Rounds()
			totalInc += gotInc
		}
	}
	if totalInc == 0 {
		t.Fatal("incremental path never ran across any seed: differential test is vacuous")
	}
}

// TestIncrementalBitIdenticalUnderEpochAndPooling runs the differential
// scripts with the scale knobs on: a flow-epoch batching quantum (same on
// both sides — batching changes the recompute schedule, which must stay a
// pure function of the change sequence) and Flow pooling on the
// incremental side only (object recycling must be invisible to rates,
// completions and accounting).
func TestIncrementalBitIdenticalUnderEpochAndPooling(t *testing.T) {
	c := topology.MustNew(topology.Config{
		Racks:            4,
		MachinesPerRack:  5,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	const epoch = des.Time(0.05)
	batchedSomewhere := false
	for seed := int64(1); seed <= 4; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), c, 300)
		exact := replay(c, ops, NewGroupedMaxMin())
		ref := replayWith(c, ops, NewGroupedMaxMin(), epoch, false)
		got := replayWith(c, ops, NewIncrementalMaxMin(), epoch, true)
		if !reflect.DeepEqual(ref.snaps, got.snaps) {
			t.Fatalf("seed %d: allocations diverge between grouped and pooled incremental under epoch batching", seed)
		}
		if !reflect.DeepEqual(ref.completions, got.completions) {
			t.Fatalf("seed %d: completion times diverge under epoch batching", seed)
		}
		if ref.cross != got.cross || ref.total != got.total || ref.served != got.served {
			t.Fatalf("seed %d: accounting diverges under epoch batching", seed)
		}
		if len(ref.snaps) < len(exact.snaps) {
			batchedSomewhere = true
		}
	}
	if !batchedSomewhere {
		t.Fatal("epoch batching never coalesced a recompute on any seed: test is vacuous")
	}
}

// TestFlowEpochQuantizesRecomputes pins the batching contract directly: a
// burst of starts spread inside one quantum triggers exactly one
// allocation, at the epoch boundary.
func TestFlowEpochQuantizesRecomputes(t *testing.T) {
	sim, n := newNet(t, NewIncrementalMaxMin())
	n.SetFlowEpoch(0.25)
	var at []des.Time
	n.OnAllocate = func() { at = append(at, sim.Now()) }
	for i := 0; i < 5; i++ {
		d := des.Time(0.01 + float64(i)*0.02)
		sim.At(d, func() { n.Start(0, 4, 1*gbps, 0, 0, nil) })
	}
	sim.Run()
	if len(at) == 0 || at[0] != 0.25 {
		t.Fatalf("first allocation at %v, want exactly at the 0.25 epoch boundary (allocations: %v)", at, at)
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("allocation times regressed: %v", at)
		}
	}
}

// TestFlowPoolingRecyclesObjects proves the pool actually engages: after
// flows retire, new starts reuse the same Flow objects.
func TestFlowPoolingRecyclesObjects(t *testing.T) {
	sim, n := newNet(t, NewIncrementalMaxMin())
	n.SetFlowPooling(true)
	first := n.Start(0, 4, 1*gbps, 0, 0, nil)
	sim.Run()
	if len(n.flowPool) != 1 {
		t.Fatalf("pool holds %d flows after completion, want 1", len(n.flowPool))
	}
	second := n.Start(1, 5, 1*gbps, 0, 0, nil)
	if second != first {
		t.Fatal("retired Flow object was not recycled for the next start")
	}
	sim.Run()
	// Loopback flows must never come from (or land in) the pool.
	loop := n.Start(2, 2, 1*gbps, 0, 0, nil)
	if loop == second {
		t.Fatal("loopback flow was served from the pool")
	}
	sim.Run()
	if len(n.flowPool) != 1 {
		t.Fatalf("pool holds %d flows after loopback completion, want 1 (loopback never pooled)", len(n.flowPool))
	}
}

// TestIncrementalAllocateSteadyStateZeroAlloc pins the zero-alloc
// contract for the incremental path: once cache and scratch are warm,
// recomputes — diff, clean-component reuse and cache refresh included —
// allocate nothing.
func TestIncrementalAllocateSteadyStateZeroAlloc(t *testing.T) {
	c := topology.MustNew(topology.Config{
		Racks:            4,
		MachinesPerRack:  5,
		SlotsPerMachine:  2,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	})
	sim := des.New()
	n := New(sim, c, NewGroupedMaxMin())
	for dst := 0; dst < 20; dst++ {
		for src := 0; src < 20; src++ {
			if src != dst {
				n.Start(src, dst, 100*gbps, 0, 0, nil)
			}
		}
	}
	for sim.Step() && n.ActiveFlows() == 0 {
	}
	inc := NewIncrementalMaxMin()
	inc.Allocate(n.flows, n.caps, n.scratch) // cold full pass, grows scratch
	inc.Allocate(n.flows, n.caps, n.scratch) // first diff, grows compDirty
	avg := testing.AllocsPerRun(100, func() {
		inc.Allocate(n.flows, n.caps, n.scratch)
	})
	if avg != 0 {
		t.Fatalf("steady-state Allocate performs %.1f allocations per call, want 0", avg)
	}
	if gotInc, _ := inc.Rounds(); gotInc == 0 {
		t.Fatal("incremental path never ran: zero-alloc test is vacuous")
	}
}
