package netsim

// Snapshot support: CaptureState exports every piece of observable network
// state as plain serializable data. The export is used two ways: written
// into a snapshot for offline inspection (corralsnap), and recomputed after
// a deterministic replay to audit that the restored network is
// field-identical to the captured one. Tracer-dependent fields
// (Flow.lastRate, prevUtil/traceLoad) are deliberately excluded — tracing
// must never perturb a run, so it must never perturb a snapshot either.

import "sort"

// FlowState is the serializable view of one in-flight flow. The completion
// callback and the raw link path are omitted: callbacks are closures, and
// the path is identified by the interned PathID (see PathIntern).
type FlowState struct {
	ID        int64
	Src, Dst  int
	Bytes     float64
	Coflow    CoflowID
	JobID     int
	CrossRack bool
	PathID    int32
	Remaining float64
	Rate      float64
	Canceled  bool
}

// PathIntern records one entry of the path-interning table: the encoded
// link path (4 little-endian bytes per LinkID, hex-printable via the
// snapshot JSON codec) and its dense id.
type PathIntern struct {
	Key []byte
	ID  int32
}

// JobBytes is one (jobID, bytes) cross-rack accounting entry.
type JobBytes struct {
	JobID int
	Bytes float64
}

// State is the complete serializable network state.
type State struct {
	Flows       []FlowState
	Caps        []float64
	Paths       []PathIntern // sorted by ID
	NumPaths    int32
	NextID      int64
	LastAdvance float64
	TotalCross  float64
	TotalBytes  float64
	FlowsServed int64
	CrossByJob  []JobBytes // sorted by JobID
	LinkBytes   []float64
}

// CaptureState exports the network's observable state. Flows appear in
// their internal (insertion) order, which is itself deterministic; the
// interning table and per-job accounting are sorted so the export never
// depends on map iteration order.
func (n *Network) CaptureState() *State {
	s := &State{
		Flows:       make([]FlowState, len(n.flows)),
		Caps:        append([]float64(nil), n.caps...),
		NumPaths:    n.numPaths,
		NextID:      n.nextID,
		LastAdvance: float64(n.lastAdvance),
		TotalCross:  n.totalCross,
		TotalBytes:  n.totalBytes,
		FlowsServed: n.flowsServed,
		LinkBytes:   append([]float64(nil), n.linkBytes...),
	}
	for i, f := range n.flows {
		s.Flows[i] = FlowState{
			ID:        f.ID,
			Src:       f.Src,
			Dst:       f.Dst,
			Bytes:     f.Bytes,
			Coflow:    f.Coflow,
			JobID:     f.JobID,
			CrossRack: f.CrossRack,
			PathID:    f.pathID,
			Remaining: f.remaining,
			Rate:      f.rate,
			Canceled:  f.canceled,
		}
	}
	s.Paths = make([]PathIntern, 0, len(n.pathIDs))
	for k, id := range n.pathIDs {
		s.Paths = append(s.Paths, PathIntern{Key: []byte(k), ID: id})
	}
	sort.Slice(s.Paths, func(i, j int) bool { return s.Paths[i].ID < s.Paths[j].ID })
	s.CrossByJob = make([]JobBytes, 0, len(n.crossByJob))
	for j, b := range n.crossByJob {
		s.CrossByJob = append(s.CrossByJob, JobBytes{JobID: j, Bytes: b})
	}
	sort.Slice(s.CrossByJob, func(i, j int) bool { return s.CrossByJob[i].JobID < s.CrossByJob[j].JobID })
	return s
}
